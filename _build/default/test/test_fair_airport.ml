(* Tests for Fair Airport (Appendix B): rule-by-rule behaviour of the
   rate regulator, GSQ priority, ASQ tag inheritance (rule 5), the
   Theorem 9 delay guarantee and the Theorem 8 fairness bound. *)

open Sfq_base
open Sfq_core
open Sfq_netsim
open Sfq_analysis

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let pkt ~flow ~seq ~len () = Packet.make ~flow ~seq ~len ~born:0.0 ()
let flow_seq p = (p.Packet.flow, p.Packet.seq)

(* ------------------------------------------------------------------ *)
(* Mechanics                                                            *)

let test_first_packet_goes_gsq () =
  (* First packet's EAT = arrival, so at dequeue time it is already
     eligible: it must be served through the GSQ. *)
  let fa = Fair_airport.create (Weights.uniform 10.0) in
  Fair_airport.enqueue fa ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:10 ());
  (match Fair_airport.dequeue fa ~now:0.0 with
  | Some p -> check_int "served" 1 p.Packet.seq
  | None -> Alcotest.fail "expected packet");
  check_int "via gsq" 1 (Fair_airport.gsq_served fa);
  check_int "not via asq" 0 (Fair_airport.asq_served fa)

let test_burst_overflows_to_asq () =
  (* A burst above the reserved rate: only the eligible prefix goes
     through the GSQ; the rest is served by the ASQ (work
     conservation). *)
  let fa = Fair_airport.create (Weights.uniform 10.0) in
  for seq = 1 to 5 do
    Fair_airport.enqueue fa ~now:0.0 (pkt ~flow:1 ~seq ~len:10 ())
  done;
  (* At t=0 only packet 1 is eligible (EAT of seq 2 is 1.0). *)
  let drained = Sched.drain (Fair_airport.sched fa) ~now:0.0 in
  check_int "all served" 5 (List.length drained);
  check_int "one via gsq" 1 (Fair_airport.gsq_served fa);
  check_int "rest via asq" 4 (Fair_airport.asq_served fa);
  check_bool "per-flow FIFO" true
    (List.map (fun p -> p.Packet.seq) drained = [ 1; 2; 3; 4; 5 ])

let test_eligibility_advances_with_time () =
  let fa = Fair_airport.create (Weights.uniform 10.0) in
  Fair_airport.enqueue fa ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:10 ());
  Fair_airport.enqueue fa ~now:0.0 (pkt ~flow:1 ~seq:2 ~len:10 ());
  ignore (Fair_airport.dequeue fa ~now:0.0);
  (* At t=1.0 packet 2's EAT (1.0) has been reached: GSQ again. *)
  ignore (Fair_airport.dequeue fa ~now:1.0);
  check_int "both via gsq" 2 (Fair_airport.gsq_served fa)

let test_asq_service_does_not_advance_regulator () =
  (* Rule 4: a packet served from the ASQ does not consume regulator
     budget — the next packet's eligibility is computed from the same
     clock, so it too can pass through the GSQ at its own EAT. *)
  let fa = Fair_airport.create (Weights.uniform 10.0) in
  Fair_airport.enqueue fa ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:10 ());
  Fair_airport.enqueue fa ~now:0.0 (pkt ~flow:1 ~seq:2 ~len:10 ());
  ignore (Fair_airport.dequeue fa ~now:0.0) |> ignore;
  (* Packet 1 via GSQ; packet 2 now served early via ASQ at t=0. *)
  ignore (Fair_airport.dequeue fa ~now:0.0);
  check_int "asq served one" 1 (Fair_airport.asq_served fa);
  (* Packet 3 arrives at t=5, long past the regulator floor (which
     advanced only for packet 1): it is eligible immediately. *)
  Fair_airport.enqueue fa ~now:5.0 (pkt ~flow:1 ~seq:3 ~len:10 ());
  ignore (Fair_airport.dequeue fa ~now:5.0);
  check_int "gsq served two" 2 (Fair_airport.gsq_served fa)

let test_gsq_priority_over_asq () =
  (* Two flows: flow 1's packet is eligible, flow 2's is not (its
     earlier packet consumed the budget). The eligible one must win
     even if flow 2's ASQ start tag is smaller. *)
  let fa = Fair_airport.create (Weights.uniform 10.0) in
  Fair_airport.enqueue fa ~now:0.0 (pkt ~flow:2 ~seq:1 ~len:10 ());
  Fair_airport.enqueue fa ~now:0.0 (pkt ~flow:2 ~seq:2 ~len:10 ());
  Fair_airport.enqueue fa ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:10 ());
  (* At t=0: eligible = 2.1 and 1.1 (both first packets). Dequeue
     order: GSQ by Virtual Clock stamp (tie by release order). *)
  let first = Fair_airport.dequeue fa ~now:0.0 in
  let second = Fair_airport.dequeue fa ~now:0.0 in
  check_bool "both eligible served first" true
    (match (first, second) with
    | Some a, Some b ->
      List.sort compare [ flow_seq a; flow_seq b ] = [ (1, 1); (2, 1) ]
    | _ -> false);
  (* Third dequeue at t=0: GSQ empty (2.2 not eligible), ASQ serves. *)
  (match Fair_airport.dequeue fa ~now:0.0 with
  | Some p -> check_bool "asq serves 2.2" true (flow_seq p = (2, 2))
  | None -> Alcotest.fail "work conservation violated");
  check_int "asq count" 1 (Fair_airport.asq_served fa)

let test_work_conserving () =
  (* Even with everything ineligible, the server never idles while
     packets are queued. *)
  let fa = Fair_airport.create (Weights.uniform 0.001) in
  for seq = 1 to 4 do
    Fair_airport.enqueue fa ~now:0.0 (pkt ~flow:1 ~seq ~len:1000 ())
  done;
  check_int "all served at t=0" 4
    (List.length (Sched.drain (Fair_airport.sched fa) ~now:0.0))

let test_size_backlog () =
  let fa = Fair_airport.create (Weights.uniform 10.0) in
  Fair_airport.enqueue fa ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:10 ());
  Fair_airport.enqueue fa ~now:0.0 (pkt ~flow:2 ~seq:1 ~len:10 ());
  check_int "size" 2 (Fair_airport.size fa);
  check_int "backlog 1" 1 (Fair_airport.backlog fa 1);
  ignore (Fair_airport.dequeue fa ~now:0.0);
  check_int "size after" 1 (Fair_airport.size fa)

(* ------------------------------------------------------------------ *)
(* Guarantees                                                           *)

(* Theorem 9: paced flow among greedy competitors on a constant-rate
   server departs by EAT + l/r + lmax/C. *)
let test_theorem9_delay_guarantee () =
  let capacity = 1000.0 in
  let tagged_rate = 100.0 in
  let weights = Weights.of_fun (fun f -> if f = 0 then tagged_rate else 300.0) in
  let sim = Sim.create () in
  let fa = Fair_airport.create weights in
  let server =
    Server.create sim ~name:"fa" ~rate:(Rate_process.constant capacity)
      ~sched:(Fair_airport.sched fa) ()
  in
  let worst = ref neg_infinity in
  Server.on_depart server (fun p ~start:_ ~departed ->
      if p.Packet.flow = 0 then begin
        (* Paced at the reservation, so EAT = born. *)
        let bound =
          Bounds.wfq_departure ~eat:p.Packet.born ~len:(float_of_int p.Packet.len)
            ~rate:tagged_rate ~lmax:100.0 ~capacity
        in
        worst := Float.max !worst (departed -. bound)
      end);
  for flow = 1 to 3 do
    ignore
      (Source.greedy sim ~server ~flow ~len:100 ~total:100_000 ~window:4 ~start:0.0 ())
  done;
  ignore
    (Source.cbr sim ~target:(Server.inject server) ~flow:0 ~len:100 ~rate:tagged_rate
       ~start:0.0 ~stop:10.0);
  Sim.run sim ~until:11.0;
  check_bool "within Theorem 9 bound" true (!worst <= 1e-9)

(* Theorem 8: fairness within 3(l/r + l/r) + 2 lmax/C on a server whose
   capacity fluctuates above a floor. *)
let test_theorem8_fairness () =
  let sim = Sim.create () in
  let rng = Sfq_util.Rng.create 77 in
  let rate =
    Rate_process.fc_random ~c:750.0 ~delta:1.0e9 ~seg:0.5 ~spread:250.0 ~rng
  in
  let r = 250.0 in
  let fa = Fair_airport.create (Weights.uniform r) in
  let server = Server.create sim ~name:"fa" ~rate ~sched:(Fair_airport.sched fa) () in
  let log = Service_log.attach server in
  ignore (Source.greedy sim ~server ~flow:1 ~len:100 ~total:100_000 ~window:4 ~start:0.0 ());
  ignore (Source.greedy sim ~server ~flow:2 ~len:100 ~total:100_000 ~window:4 ~start:0.0 ());
  Sim.run sim ~until:60.0;
  let h = Fairness.exact_h log ~f:1 ~m:2 ~r_f:r ~r_m:r ~until:(Sim.now sim) in
  let bound =
    Bounds.h_fair_airport ~lmax_f:100.0 ~r_f:r ~lmax_m:100.0 ~r_m:r ~lmax:100.0
      ~capacity:500.0
  in
  check_bool "within Theorem 8 bound" true (h <= bound +. 1e-9)

(* Conservation property with random interleavings. *)
let prop_conservation =
  QCheck.Test.make ~name:"fair airport: conservation + per-flow FIFO" ~count:150
    QCheck.(list_of_size Gen.(1 -- 50) (pair (int_range 1 3) (int_range 1 500)))
    (fun ops ->
      let fa = Fair_airport.create (Weights.uniform 10.0) in
      let seqs = Hashtbl.create 8 in
      let injected = ref [] in
      let now = ref 0.0 in
      List.iter
        (fun (flow, len) ->
          now := !now +. 0.05;
          let seq = (try Hashtbl.find seqs flow with Not_found -> 0) + 1 in
          Hashtbl.replace seqs flow seq;
          injected := (flow, seq) :: !injected;
          Fair_airport.enqueue fa ~now:!now (pkt ~flow ~seq ~len ()))
        ops;
      let out = List.map flow_seq (Sched.drain (Fair_airport.sched fa) ~now:(!now +. 1.0)) in
      let conserved = List.sort compare out = List.sort compare !injected in
      let fifo =
        let last = Hashtbl.create 8 in
        List.for_all
          (fun (flow, seq) ->
            let prev = try Hashtbl.find last flow with Not_found -> 0 in
            Hashtbl.replace last flow seq;
            seq = prev + 1)
          out
      in
      conserved && fifo && Fair_airport.size fa = 0)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "fair_airport"
    [
      ( "mechanics",
        [
          Alcotest.test_case "first packet via gsq" `Quick test_first_packet_goes_gsq;
          Alcotest.test_case "burst overflows to asq" `Quick test_burst_overflows_to_asq;
          Alcotest.test_case "eligibility advances" `Quick test_eligibility_advances_with_time;
          Alcotest.test_case "rule 4: asq keeps regulator clock" `Quick
            test_asq_service_does_not_advance_regulator;
          Alcotest.test_case "gsq priority" `Quick test_gsq_priority_over_asq;
          Alcotest.test_case "work conserving" `Quick test_work_conserving;
          Alcotest.test_case "size/backlog" `Quick test_size_backlog;
        ] );
      ( "guarantees",
        [
          Alcotest.test_case "Theorem 9 delay" `Quick test_theorem9_delay_guarantee;
          Alcotest.test_case "Theorem 8 fairness" `Quick test_theorem8_fairness;
        ] );
      ("properties", [ q prop_conservation ]);
    ]
