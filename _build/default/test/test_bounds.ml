(* Tests for the closed-form bound calculators against hand-computed
   numbers, including every numeric example quoted in the paper. *)

open Sfq_core

let close ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

(* 200-byte packet, the paper's running example. *)
let l200 = 1600.0
let mbps x = x *. 1.0e6
let kbps x = x *. 1.0e3

(* ------------------------------------------------------------------ *)
(* Fairness measures (Table 1)                                          *)

let test_h_lower_bound () =
  (* Equal flows: 1/2 (l/r + l/r) = l/r. *)
  close "equal flows" 10.0 (Bounds.h_lower_bound ~lmax_f:10.0 ~r_f:1.0 ~lmax_m:10.0 ~r_m:1.0);
  close "asymmetric" 7.5 (Bounds.h_lower_bound ~lmax_f:10.0 ~r_f:1.0 ~lmax_m:10.0 ~r_m:2.0)

let test_h_sfq_twice_lower () =
  let lb = Bounds.h_lower_bound ~lmax_f:5.0 ~r_f:2.0 ~lmax_m:7.0 ~r_m:3.0 in
  close "2x lower bound" (2.0 *. lb) (Bounds.h_sfq ~lmax_f:5.0 ~r_f:2.0 ~lmax_m:7.0 ~r_m:3.0)

let test_h_scfq_equals_sfq () =
  close "same measure"
    (Bounds.h_sfq ~lmax_f:5.0 ~r_f:2.0 ~lmax_m:7.0 ~r_m:3.0)
    (Bounds.h_scfq ~lmax_f:5.0 ~r_f:2.0 ~lmax_m:7.0 ~r_m:3.0)

let test_h_drr_paper_example () =
  (* §1.2: r_f = r_m = 100, l = 1: DRR 1.02 vs SCFQ 0.02 — 50x. *)
  let drr = Bounds.h_drr ~lmax_f:1.0 ~r_f:100.0 ~lmax_m:1.0 ~r_m:100.0 in
  let scfq = Bounds.h_scfq ~lmax_f:1.0 ~r_f:100.0 ~lmax_m:1.0 ~r_m:100.0 in
  close "drr" 1.02 drr;
  close "scfq" 0.02 scfq;
  close "ratio 51" 51.0 (drr /. scfq)

let test_h_fair_airport () =
  (* Theorem 8: 3(l/r + l/r) + 2 l/C. *)
  close "fa" (3.0 *. 20.0 +. (2.0 *. 10.0 /. 2000.0))
    (Bounds.h_fair_airport ~lmax_f:10.0 ~r_f:1.0 ~lmax_m:10.0 ~r_m:1.0 ~lmax:10.0
       ~capacity:2000.0)

(* ------------------------------------------------------------------ *)
(* Departure bounds                                                     *)

let test_sfq_departure () =
  (* Theorem 4: EAT + Σ_other/C + l/C + δ/C. *)
  close "sfq" (1.0 +. 0.5 +. 0.1 +. 0.2)
    (Bounds.sfq_departure ~eat:1.0 ~sum_other_lmax:50.0 ~len:10.0 ~capacity:100.0
       ~delta:20.0)

let test_scfq_departure () =
  (* Eq. 56: EAT + Σ_other/C + l/r. *)
  close "scfq" (1.0 +. 0.5 +. 2.0)
    (Bounds.scfq_departure ~eat:1.0 ~sum_other_lmax:50.0 ~len:10.0 ~rate:5.0
       ~capacity:100.0)

let test_wfq_departure () =
  close "wfq" (1.0 +. 2.0 +. 0.1)
    (Bounds.wfq_departure ~eat:1.0 ~len:10.0 ~rate:5.0 ~lmax:10.0 ~capacity:100.0)

let test_edd_departure () =
  close "edd" (5.0 +. 0.1 +. 0.2)
    (Bounds.edd_departure ~deadline:5.0 ~lmax:10.0 ~capacity:100.0 ~delta:20.0)

(* ------------------------------------------------------------------ *)
(* The paper's §2.3 numbers                                             *)

let test_scfq_gap_24_4ms () =
  (* l = 200 B, r = 64 Kb/s, C = 100 Mb/s: l/r − l/C = 25 ms − 16 µs ≈
     24.98 ms. The paper rounds its arithmetic to 24.4 ms; the formula
     is eq. 57 either way. *)
  let gap = Bounds.scfq_sfq_gap ~len:l200 ~rate:(kbps 64.0) ~capacity:(mbps 100.0) in
  Alcotest.(check bool) "about 25 ms" true (gap > 0.0244 && gap < 0.0250);
  close "5 servers about 125 ms" (5.0 *. gap) (5.0 *. gap)

let test_fig2a_positive_iff_small_share () =
  (* Eq. 60: Δ >= 0 iff 1/(|Q|−1) >= r/C. *)
  let delta nflows rate =
    Bounds.wfq_sfq_delta_uniform ~len:l200 ~rate ~nflows ~capacity:(mbps 100.0)
  in
  Alcotest.(check bool) "low-rate flow gains" true (delta 50 (kbps 64.0) > 0.0);
  (* r/C = 0.2 > 1/9: the flow loses. *)
  Alcotest.(check bool) "high-rate flow loses" true (delta 10 (mbps 20.0) < 0.0)

let test_paper_delay_shift_example () =
  (* §2.3: 70 flows at 1 Mb/s + 200 at 64 Kb/s on (implicitly) a link
     with enough capacity; SFQ cuts the 64 Kb/s flows' bound by
     ~20.39 ms and raises the 1 Mb/s flows' by ~2.48 ms. We verify the
     signs and magnitudes from eq. 58 with C = 100 Mb/s and |Q| = 270. *)
  let c = mbps 100.0 in
  let sum_other = 269.0 *. l200 in
  let d64 =
    Bounds.wfq_sfq_delta ~len:l200 ~rate:(kbps 64.0) ~lmax:l200 ~sum_other_lmax:sum_other
      ~capacity:c
  in
  let d1m =
    Bounds.wfq_sfq_delta ~len:l200 ~rate:(mbps 1.0) ~lmax:l200 ~sum_other_lmax:sum_other
      ~capacity:c
  in
  Alcotest.(check bool) "64K flows gain ~20.7ms" true (d64 > 0.020 && d64 < 0.0215);
  Alcotest.(check bool) "1M flows lose ~2.7ms" true (d1m < 0.0 && d1m > -0.0030)

(* ------------------------------------------------------------------ *)
(* Throughput / virtual server (Theorem 2, eq. 65)                      *)

let test_throughput_lower () =
  close "thm2"
    ((10.0 *. 5.0) -. (10.0 *. 50.0 /. 100.0) -. (10.0 *. 20.0 /. 100.0) -. 10.0)
    (Bounds.sfq_throughput_lower ~rate:10.0 ~t1:0.0 ~t2:5.0 ~sum_lmax:50.0 ~lmax_f:10.0
       ~capacity:100.0 ~delta:20.0)

let test_fc_virtual_server () =
  let r, d =
    Bounds.fc_virtual_server ~rate:10.0 ~sum_lmax:50.0 ~lmax_f:10.0 ~capacity:100.0
      ~delta:20.0
  in
  close "rate" 10.0 r;
  close "delta'" ((10.0 *. 50.0 /. 100.0) +. (10.0 *. 20.0 /. 100.0) +. 10.0) d

(* ------------------------------------------------------------------ *)
(* Delay shifting (eqs. 69-73)                                          *)

let test_flat_vs_shifted_rhs () =
  let flat = Bounds.flat_departure_rhs ~nflows:12 ~len:2000.0 ~capacity:1.0e6 ~delta:0.0 in
  close "flat (69)" ((11.0 *. 2000.0 /. 1.0e6) +. (2000.0 /. 1.0e6)) flat;
  let shifted =
    Bounds.shifted_departure_rhs ~partition_size:2 ~len:2000.0 ~partition_rate:0.5e6
      ~nparts:2 ~capacity:1.0e6 ~delta:0.0
  in
  close "shifted (71)" ((3.0 *. 2000.0 /. 0.5e6) +. (2.0 *. 2000.0 /. 1.0e6)) shifted;
  Alcotest.(check bool) "shift helps" true (shifted < flat)

let test_eq73_predicate () =
  (* (|Q_i|+1)/(|Q|−K) < C_i/C *)
  Alcotest.(check bool) "favoured partition" true
    (Bounds.delay_shift_improves ~partition_size:2 ~nflows:12 ~nparts:2
       ~partition_rate:0.5e6 ~capacity:1.0e6);
  Alcotest.(check bool) "undersized rate" false
    (Bounds.delay_shift_improves ~partition_size:5 ~nflows:12 ~nparts:2
       ~partition_rate:0.3e6 ~capacity:1.0e6)

(* ------------------------------------------------------------------ *)
(* End-to-end (Corollary 1, §A.5)                                       *)

let test_e2e_departure () =
  close "sum" (1.0 +. (3.0 *. 0.5) +. (2.0 *. 0.1))
    (Bounds.e2e_departure ~eat_first:1.0 ~betas:[ 0.5; 0.5; 0.5 ] ~taus:[ 0.1; 0.1 ])

let test_e2e_leaky_bucket () =
  close "sigma/r + sums" ((400.0 /. 100.0) +. 0.6 +. 0.2)
    (Bounds.e2e_delay_leaky_bucket ~sigma:400.0 ~rate:100.0 ~betas:[ 0.3; 0.3 ]
       ~taus:[ 0.1; 0.1 ])

let test_sfq_beta () =
  close "beta" (0.5 +. 0.1 +. 0.2)
    (Bounds.sfq_beta ~sum_other_lmax:50.0 ~len:10.0 ~capacity:100.0 ~delta:20.0)

let test_ebf_tail () =
  close "gamma=0" 2.0 (Bounds.ebf_tail ~b:2.0 ~alpha:0.5 ~gamma:0.0);
  close "decays" (2.0 *. exp (-1.0)) (Bounds.ebf_tail ~b:2.0 ~alpha:0.5 ~gamma:2.0)

let () =
  Alcotest.run "bounds"
    [
      ( "fairness",
        [
          Alcotest.test_case "lower bound" `Quick test_h_lower_bound;
          Alcotest.test_case "sfq = 2x lower" `Quick test_h_sfq_twice_lower;
          Alcotest.test_case "scfq = sfq" `Quick test_h_scfq_equals_sfq;
          Alcotest.test_case "drr paper example" `Quick test_h_drr_paper_example;
          Alcotest.test_case "fair airport" `Quick test_h_fair_airport;
        ] );
      ( "departure",
        [
          Alcotest.test_case "sfq (thm 4)" `Quick test_sfq_departure;
          Alcotest.test_case "scfq (eq 56)" `Quick test_scfq_departure;
          Alcotest.test_case "wfq" `Quick test_wfq_departure;
          Alcotest.test_case "edd (thm 7)" `Quick test_edd_departure;
        ] );
      ( "paper numbers",
        [
          Alcotest.test_case "24.4ms gap" `Quick test_scfq_gap_24_4ms;
          Alcotest.test_case "eq 60 sign" `Quick test_fig2a_positive_iff_small_share;
          Alcotest.test_case "70+200 flows example" `Quick test_paper_delay_shift_example;
        ] );
      ( "throughput",
        [
          Alcotest.test_case "thm 2" `Quick test_throughput_lower;
          Alcotest.test_case "eq 65 virtual server" `Quick test_fc_virtual_server;
        ] );
      ( "delay shifting",
        [
          Alcotest.test_case "eqs 69/71" `Quick test_flat_vs_shifted_rhs;
          Alcotest.test_case "eq 73" `Quick test_eq73_predicate;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "corollary 1" `Quick test_e2e_departure;
          Alcotest.test_case "leaky bucket" `Quick test_e2e_leaky_bucket;
          Alcotest.test_case "beta" `Quick test_sfq_beta;
          Alcotest.test_case "ebf tail" `Quick test_ebf_tail;
        ] );
    ]
