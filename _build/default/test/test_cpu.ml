(* Tests for the SFQ CPU scheduler. *)

open Sfq_netsim
open Sfq_cpu

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let nominal = 1.0e6 (* work-units per second at full speed *)

let test_single_thread_runs () =
  let sim = Sim.create () in
  let cpu = Cpu_sched.create sim ~speed:(Rate_process.constant nominal) () in
  let th = Cpu_sched.spawn cpu ~name:"t" ~weight:1.0 in
  Sim.schedule sim ~at:0.0 (fun () -> Cpu_sched.add_work th 5_000.0);
  Sim.run_all sim ();
  check_float "all work done" 5_000.0 (Cpu_sched.cpu_time th);
  check_float "nothing pending" 0.0 (Cpu_sched.pending_work th);
  check_int "slept once" 1 (Cpu_sched.completions th);
  (* 5000 work-units at 1e6/s = 5 ms of simulated time. *)
  check_float "took 5ms" 0.005 (Sim.now sim)

let test_weighted_shares () =
  (* Two always-busy threads with weights 1:3 must accumulate CPU time
     in ratio 1:3 (within one quantum). *)
  let sim = Sim.create () in
  let cpu = Cpu_sched.create sim ~speed:(Rate_process.constant nominal) () in
  let a = Cpu_sched.spawn cpu ~name:"a" ~weight:1.0 in
  let b = Cpu_sched.spawn cpu ~name:"b" ~weight:3.0 in
  Sim.schedule sim ~at:0.0 (fun () ->
      Cpu_sched.add_work a 1.0e9;
      Cpu_sched.add_work b 1.0e9);
  Sim.run sim ~until:1.0;
  let ta = Cpu_sched.cpu_time a and tb = Cpu_sched.cpu_time b in
  check_bool "3x share" true (Float.abs ((tb /. ta) -. 3.0) < 0.05);
  check_bool "work conserving" true (ta +. tb >= nominal *. 0.99)

let test_weighted_shares_variable_speed () =
  (* Same, but the CPU speed fluctuates (an FC process): the ratio must
     still hold — SFQ's whole point. *)
  let sim = Sim.create () in
  let rng = Sfq_util.Rng.create 8 in
  let speed =
    Rate_process.fc_random ~c:(0.6 *. nominal) ~delta:50_000.0 ~seg:0.01
      ~spread:(0.4 *. nominal) ~rng
  in
  let cpu = Cpu_sched.create sim ~speed () in
  let a = Cpu_sched.spawn cpu ~name:"a" ~weight:1.0 in
  let b = Cpu_sched.spawn cpu ~name:"b" ~weight:3.0 in
  Sim.schedule sim ~at:0.0 (fun () ->
      Cpu_sched.add_work a 1.0e9;
      Cpu_sched.add_work b 1.0e9);
  Sim.run sim ~until:2.0;
  let ta = Cpu_sched.cpu_time a and tb = Cpu_sched.cpu_time b in
  check_bool "3x share on fluctuating CPU" true (Float.abs ((tb /. ta) -. 3.0) < 0.05)

let test_interactive_latency () =
  (* A lightly loaded interactive thread competing with two batch hogs
     gets scheduled within ~two quanta of waking. *)
  let sim = Sim.create () in
  let cpu = Cpu_sched.create sim ~speed:(Rate_process.constant nominal) ~quantum:1000 () in
  let ui = Cpu_sched.spawn cpu ~name:"ui" ~weight:0.2 in
  let b1 = Cpu_sched.spawn cpu ~name:"b1" ~weight:0.4 in
  let b2 = Cpu_sched.spawn cpu ~name:"b2" ~weight:0.4 in
  Sim.schedule sim ~at:0.0 (fun () ->
      Cpu_sched.add_work b1 1.0e9;
      Cpu_sched.add_work b2 1.0e9);
  let worst = ref 0.0 in
  let woke = Hashtbl.create 16 in
  Cpu_sched.on_slice cpu (fun th ~start:_ ~finished ~work:_ ->
      if Cpu_sched.thread_name th = "ui" then begin
        match Hashtbl.find_opt woke (Cpu_sched.completions th) with
        | Some at -> worst := Float.max !worst (finished -. at)
        | None -> ()
      end);
  (* Wake the UI thread every 50 ms for one quantum of work. *)
  for i = 0 to 19 do
    Sim.schedule sim ~at:(0.05 *. float_of_int i) (fun () ->
        Hashtbl.replace woke (Cpu_sched.completions ui) (Sim.now sim);
        Cpu_sched.add_work ui 1000.0)
  done;
  Sim.run sim ~until:1.1;
  (* One quantum is 1 ms; three quanta of wait is the worst tolerable. *)
  check_bool "interactive latency within 3 quanta" true (!worst <= 0.003)

let test_sleep_wake_no_credit () =
  (* A thread that slept must not burst ahead on waking: right after a
     wake, the sleeper cannot be more than one quantum ahead of the
     continuously-busy competitor in post-wake service. *)
  let sim = Sim.create () in
  let cpu = Cpu_sched.create sim ~speed:(Rate_process.constant nominal) () in
  let sleeper = Cpu_sched.spawn cpu ~name:"s" ~weight:1.0 in
  let busy = Cpu_sched.spawn cpu ~name:"b" ~weight:1.0 in
  Sim.schedule sim ~at:0.0 (fun () -> Cpu_sched.add_work busy 1.0e9);
  (* Sleeper wakes at 0.5 s with lots of work. *)
  Sim.schedule sim ~at:0.5 (fun () -> Cpu_sched.add_work sleeper 1.0e9);
  Sim.run sim ~until:0.6;
  let ts = Cpu_sched.cpu_time sleeper in
  (* In [0.5, 0.6] there are 1e5 work-units; fair split is 5e4. *)
  check_bool "no stale credit" true (ts <= 5.0e4 +. 2_000.0);
  check_bool "but does get its share" true (ts >= 5.0e4 -. 2_000.0)

let test_quantum_bounds_slice () =
  let sim = Sim.create () in
  let cpu = Cpu_sched.create sim ~speed:(Rate_process.constant nominal) ~quantum:500 () in
  let th = Cpu_sched.spawn cpu ~name:"t" ~weight:1.0 in
  let max_slice = ref 0 in
  Cpu_sched.on_slice cpu (fun _ ~start:_ ~finished:_ ~work ->
      max_slice := Stdlib.max !max_slice work);
  Sim.schedule sim ~at:0.0 (fun () -> Cpu_sched.add_work th 10_000.0);
  Sim.run_all sim ();
  check_int "never exceeds quantum" 500 !max_slice;
  check_float "accounting exact" 10_000.0 (Cpu_sched.cpu_time th)

let test_validation () =
  let sim = Sim.create () in
  check_bool "bad quantum" true
    (try
       ignore (Cpu_sched.create sim ~speed:(Rate_process.constant 1.0) ~quantum:0 ());
       false
     with Invalid_argument _ -> true);
  let cpu = Cpu_sched.create sim ~speed:(Rate_process.constant 1.0) () in
  check_bool "bad weight" true
    (try
       ignore (Cpu_sched.spawn cpu ~name:"x" ~weight:0.0);
       false
     with Invalid_argument _ -> true);
  let th = Cpu_sched.spawn cpu ~name:"x" ~weight:1.0 in
  check_bool "bad work" true
    (try
       Cpu_sched.add_work th 0.0;
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "cpu"
    [
      ( "cpu_sched",
        [
          Alcotest.test_case "single thread" `Quick test_single_thread_runs;
          Alcotest.test_case "weighted shares" `Quick test_weighted_shares;
          Alcotest.test_case "shares on variable speed" `Quick test_weighted_shares_variable_speed;
          Alcotest.test_case "interactive latency" `Quick test_interactive_latency;
          Alcotest.test_case "sleep/wake no credit" `Quick test_sleep_wake_no_credit;
          Alcotest.test_case "quantum bounds slice" `Quick test_quantum_bounds_slice;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
