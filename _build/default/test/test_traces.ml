(* Golden traces: hand-computed service orders for every discipline
   over shared scenarios. Each case documents, packet by packet, what
   the algorithm's tags are and therefore exactly which order must come
   out. These are the library's executable worked examples; if a
   refactor changes any discipline's semantics, the diff shows up here
   first.

   Scenario A ("burst duel"): flow 1 (weight 1) and flow 2 (weight 2)
   both dump three 6-bit packets at t = 0. Tags, by eqs. 1-5:

     flow 1 (r=1): S = 0,  6, 12   F =  6, 12, 18
     flow 2 (r=2): S = 0,  3,  6   F =  3,  6,  9

   Scenario B ("late joiner"): flow 1 dumps four 6-bit packets at t=0;
   flow 2's single 6-bit packet arrives after two services. Tag values
   depend on each algorithm's virtual time — worked out per case.

   All runs drain with dequeue-only calls at a fixed instant, i.e. the
   server-asks-for-work pattern (now after all arrivals), so virtual
   times evolve exactly as each algorithm's definition prescribes. *)

open Sfq_base
open Sfq_sched

let pkt ~flow ~seq ~len () = Packet.make ~flow ~seq ~len ~born:0.0 ()
let flow_seq p = (p.Packet.flow, p.Packet.seq)

let check_order = Alcotest.(check (list (pair int int)))

let weights_a = Weights.of_list [ (1, 1.0); (2, 2.0) ]

let burst_duel sched =
  List.iter
    (fun flow ->
      for seq = 1 to 3 do
        sched.Sched.enqueue ~now:0.0 (pkt ~flow ~seq ~len:6 ())
      done)
    [ 1; 2 ];
  List.map flow_seq (Sched.drain sched ~now:0.0)

(* --- Scenario A, per discipline ----------------------------------- *)

let test_sfq_burst_duel () =
  (* Start-tag order with arrival ties:
     (1,1) S=0 ties (2,1) S=0 -> flow 1 arrived first;
     then (2,2) S=3, then (1,2) S=6 ties (2,3) S=6 -> flow 1 enqueued
     earlier (uid), then (1,3) S=12. *)
  let s = Sfq_core.Sfq.sched (Sfq_core.Sfq.create weights_a) in
  check_order "sfq"
    [ (1, 1); (2, 1); (2, 2); (1, 2); (2, 3); (1, 3) ]
    (burst_duel s)

let test_scfq_burst_duel () =
  (* Finish-tag order: F2=3 first? No - all tags assigned at t=0 with
     v=0: flow1 F = 6,12,18; flow2 F = 3,6,9. Order: (2,1) F3,
     (1,1) F6 ties (2,2) F6 -> flow 1's was pushed first (uid 1 < 4);
     then (2,3) F9, (1,2) F12, (1,3) F18. *)
  let s = Scfq.sched (Scfq.create weights_a) in
  check_order "scfq"
    [ (2, 1); (1, 1); (2, 2); (2, 3); (1, 2); (1, 3) ]
    (burst_duel s)

let test_wfq_fluid_burst_duel () =
  (* All arrivals at t=0 with v=0: same finish tags as SCFQ (the GPS
     clock never advances between the simultaneous arrivals), so the
     same order. *)
  let s = Wfq.sched (Wfq.create ~capacity:3.0 weights_a) in
  check_order "wfq"
    [ (2, 1); (1, 1); (2, 2); (2, 3); (1, 2); (1, 3) ]
    (burst_duel s)

let test_fqs_burst_duel () =
  (* WFQ tags, start order: S1 = 0,6,12; S2 = 0,3,6. Same key values as
     SFQ and same uid tie-breaks. *)
  let s = Fqs.sched (Fqs.create ~capacity:3.0 weights_a) in
  check_order "fqs"
    [ (1, 1); (2, 1); (2, 2); (1, 2); (2, 3); (1, 3) ]
    (burst_duel s)

let test_wf2q_burst_duel () =
  (* Eligibility gating on top of WFQ's F order. Serving one packet of
     the fluid's 9 bits of virtual work advances v by 2 per... worked
     trace: at v=0 eligible = {(1,1) S0 F6, (2,1) S0 F3}: pick (2,1).
     After each dequeue v advances with fluid time; with capacity 3 and
     both flows fluid-backlogged v reaches 3 when 9 bits served; here
     dequeues happen at one instant so v stays 0 and only S=0 packets
     are eligible: (2,1), then (1,1); then nothing eligible -> smallest
     start tag serves (2,2) S3, then (2,3) S6 vs (1,2) S6 tie -> uid:
     (1,2) enqueued earlier; then (2,3), (1,3). *)
  let s = Wf2q.sched (Wf2q.create ~capacity:3.0 weights_a) in
  check_order "wf2q"
    [ (2, 1); (1, 1); (2, 2); (1, 2); (2, 3); (1, 3) ]
    (burst_duel s)

let test_vc_burst_duel () =
  (* Virtual Clock stamps EAT + l/r with EAT chains from t=0:
     flow1: 6, 12, 18; flow2: 3, 6, 9 — numerically the same keys as
     SCFQ here, same order. *)
  let s = Virtual_clock.sched (Virtual_clock.create weights_a) in
  check_order "vc"
    [ (2, 1); (1, 1); (2, 2); (2, 3); (1, 2); (1, 3) ]
    (burst_duel s)

let test_drr_burst_duel () =
  (* Quantum 6 per unit weight: flow 1 gets 6 bits/round (one packet),
     flow 2 gets 12 (two packets). Active list order: flow 1 first. *)
  let s = Drr.sched (Drr.create ~quantum:6.0 weights_a) in
  check_order "drr"
    [ (1, 1); (2, 1); (2, 2); (1, 2); (2, 3); (1, 3) ]
    (burst_duel s)

let test_wrr_burst_duel () =
  (* Credits: ceil(weight) -> flow 1 sends 1/round, flow 2 sends 2. *)
  let s = Wrr.sched (Wrr.create weights_a) in
  check_order "wrr"
    [ (1, 1); (2, 1); (2, 2); (1, 2); (2, 3); (1, 3) ]
    (burst_duel s)

let test_fifo_burst_duel () =
  let s = Fifo.sched (Fifo.create ()) in
  check_order "fifo"
    [ (1, 1); (1, 2); (1, 3); (2, 1); (2, 2); (2, 3) ]
    (burst_duel s)

(* --- Scenario B: late joiner --------------------------------------- *)

(* Flow 1 (weight 1) dumps four 6-bit packets at t=0; two dequeues
   happen; then flow 2 (weight 2) arrives with one 6-bit packet. *)
let late_joiner sched =
  for seq = 1 to 4 do
    sched.Sched.enqueue ~now:0.0 (pkt ~flow:1 ~seq ~len:6 ())
  done;
  let first = List.map flow_seq (Sched.drain_n sched ~now:0.0 2) in
  sched.Sched.enqueue ~now:0.0 (pkt ~flow:2 ~seq:1 ~len:6 ());
  first @ List.map flow_seq (Sched.drain sched ~now:0.0)

let test_sfq_late_joiner () =
  (* Flow 1 tags: S = 0,6,12,18. After two services v = S(in service)
     = 6. Flow 2 joins: S = max(6, 0) = 6 — tie with (1,3)'s S? No:
     (1,3) has S = 12. Order: (2,1) S6 before (1,3) S12, (1,4) S18. *)
  let s = Sfq_core.Sfq.sched (Sfq_core.Sfq.create weights_a) in
  check_order "sfq late joiner"
    [ (1, 1); (1, 2); (2, 1); (1, 3); (1, 4) ]
    (late_joiner s)

let test_scfq_late_joiner () =
  (* Flow 1 F = 6,12,18,24. After two services v = F(in service) = 12.
     Flow 2: S = max(12, 0), F = 12 + 3 = 15 < 18. *)
  let s = Scfq.sched (Scfq.create weights_a) in
  check_order "scfq late joiner"
    [ (1, 1); (1, 2); (2, 1); (1, 3); (1, 4) ]
    (late_joiner s)

let test_vc_late_joiner () =
  (* VC stamps flow 1: 6,12,18,24 (EAT chain from t=0). Flow 2 arrives
     at real time 0 (no time passed in this instant-drain test):
     stamp = 0 + 3 = 3 — beats every remaining flow-1 stamp. VC's
     "punishment" only appears when real time passes; at one instant
     the late flow wins outright. *)
  let s = Virtual_clock.sched (Virtual_clock.create weights_a) in
  check_order "vc late joiner"
    [ (1, 1); (1, 2); (2, 1); (1, 3); (1, 4) ]
    (late_joiner s)

let test_fifo_late_joiner () =
  let s = Fifo.sched (Fifo.create ()) in
  check_order "fifo late joiner"
    [ (1, 1); (1, 2); (1, 3); (1, 4); (2, 1) ]
    (late_joiner s)

(* --- Scenario C: mixed lengths under SFQ --------------------------- *)

let test_sfq_mixed_lengths () =
  (* Equal weights 1; flow 1 sends 10-bit packets, flow 2 sends 5-bit.
     Flow 2 must get two services per flow-1 service (byte fairness in
     start-tag form):
       flow1 S = 0, 10, 20;  flow2 S = 0, 5, 10, 15, 20, 25. *)
  let w = Weights.uniform 1.0 in
  let s = Sfq_core.Sfq.sched (Sfq_core.Sfq.create w) in
  for seq = 1 to 3 do
    s.Sched.enqueue ~now:0.0 (pkt ~flow:1 ~seq ~len:10 ())
  done;
  for seq = 1 to 6 do
    s.Sched.enqueue ~now:0.0 (pkt ~flow:2 ~seq ~len:5 ())
  done;
  check_order "sfq mixed lengths"
    [ (1, 1); (2, 1); (2, 2); (1, 2); (2, 3); (2, 4); (1, 3); (2, 5); (2, 6) ]
    (List.map flow_seq (Sched.drain s ~now:0.0))

let () =
  Alcotest.run "traces"
    [
      ( "burst duel",
        [
          Alcotest.test_case "sfq" `Quick test_sfq_burst_duel;
          Alcotest.test_case "scfq" `Quick test_scfq_burst_duel;
          Alcotest.test_case "wfq fluid" `Quick test_wfq_fluid_burst_duel;
          Alcotest.test_case "fqs" `Quick test_fqs_burst_duel;
          Alcotest.test_case "wf2q" `Quick test_wf2q_burst_duel;
          Alcotest.test_case "virtual clock" `Quick test_vc_burst_duel;
          Alcotest.test_case "drr" `Quick test_drr_burst_duel;
          Alcotest.test_case "wrr" `Quick test_wrr_burst_duel;
          Alcotest.test_case "fifo" `Quick test_fifo_burst_duel;
        ] );
      ( "late joiner",
        [
          Alcotest.test_case "sfq" `Quick test_sfq_late_joiner;
          Alcotest.test_case "scfq" `Quick test_scfq_late_joiner;
          Alcotest.test_case "virtual clock" `Quick test_vc_late_joiner;
          Alcotest.test_case "fifo" `Quick test_fifo_late_joiner;
        ] );
      ( "mixed lengths",
        [ Alcotest.test_case "sfq" `Quick test_sfq_mixed_lengths ] );
    ]
