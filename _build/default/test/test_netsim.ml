(* Tests for the network simulator substrate: event queue, rate
   processes (FC/EBF by construction), servers, traffic sources, the
   MPEG model, TCP Reno and tandem wiring. *)

open Sfq_base
open Sfq_netsim
open Sfq_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let pkt ?(born = 0.0) ~flow ~seq ~len () = Packet.make ~flow ~seq ~len ~born ()

let fifo () = Sfq_sched.Fifo.sched (Sfq_sched.Fifo.create ())

(* ------------------------------------------------------------------ *)
(* Sim                                                                  *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~at:2.0 (fun () -> log := 2 :: !log);
  Sim.schedule sim ~at:1.0 (fun () -> log := 1 :: !log);
  Sim.schedule sim ~at:3.0 (fun () -> log := 3 :: !log);
  Sim.run_all sim ();
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  check_float "clock at last event" 3.0 (Sim.now sim)

let test_sim_same_time_fifo () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.schedule sim ~at:1.0 (fun () -> log := i :: !log)
  done;
  Sim.run_all sim ();
  Alcotest.(check (list int)) "schedule order" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_sim_past_rejected () =
  let sim = Sim.create () in
  Sim.schedule sim ~at:1.0 (fun () -> ());
  Sim.run_all sim ();
  check_bool "raises" true
    (try
       Sim.schedule sim ~at:0.5 (fun () -> ());
       false
     with Invalid_argument _ -> true)

let test_sim_run_until () =
  let sim = Sim.create () in
  let fired = ref 0 in
  List.iter (fun at -> Sim.schedule sim ~at (fun () -> incr fired)) [ 1.0; 2.0; 3.0 ];
  Sim.run sim ~until:2.0;
  check_int "two fired" 2 !fired;
  check_float "clock" 2.0 (Sim.now sim);
  check_int "one pending" 1 (Sim.pending sim);
  Sim.run sim ~until:10.0;
  check_int "all fired" 3 !fired;
  check_float "clock advanced to until" 10.0 (Sim.now sim)

let test_sim_cascade () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 10 then Sim.schedule_after sim ~delay:0.1 tick
  in
  Sim.schedule sim ~at:0.0 tick;
  Sim.run_all sim ();
  check_int "cascaded" 10 !count;
  check_int "events_fired" 10 (Sim.events_fired sim)

let test_sim_same_instant_reschedule () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~at:1.0 (fun () ->
      log := "a" :: !log;
      Sim.schedule sim ~at:1.0 (fun () -> log := "b" :: !log));
  Sim.run_all sim ();
  Alcotest.(check (list string)) "same instant ok" [ "a"; "b" ] (List.rev !log)

(* ------------------------------------------------------------------ *)
(* Rate_process                                                         *)

let test_rp_constant () =
  let rp = Rate_process.constant 100.0 in
  check_float "rate" 100.0 (Rate_process.rate_at rp 5.0);
  check_float "work" 500.0 (Rate_process.work rp ~t1:1.0 ~t2:6.0);
  check_float "serve" 2.0 (Rate_process.time_to_serve rp ~from:1.0 ~amount:100.0);
  check_float "nominal" 100.0 (Rate_process.nominal_rate rp);
  check_bool "delta 0" true (Rate_process.nominal_delta rp = Some 0.0)

let test_rp_of_segments () =
  (* 10 b/s for 1s, then 100 b/s forever. *)
  let rp = Rate_process.of_segments [ (1.0, 10.0) ] ~tail:100.0 in
  check_float "phase 1 rate" 10.0 (Rate_process.rate_at rp 0.5);
  check_float "phase 2 rate" 100.0 (Rate_process.rate_at rp 1.5);
  check_float "work across boundary" (10.0 +. 50.0) (Rate_process.work rp ~t1:0.0 ~t2:1.5);
  (* Serving 60 bits from t=0: 10 in the first second, 50 more in 0.5s. *)
  check_float "serve across boundary" 1.5 (Rate_process.time_to_serve rp ~from:0.0 ~amount:60.0)

let test_rp_zero_rate_segment () =
  let rp = Rate_process.of_segments [ (1.0, 0.0) ] ~tail:10.0 in
  (* Nothing served during the dead second. *)
  check_float "waits out zero" 2.0 (Rate_process.time_to_serve rp ~from:0.0 ~amount:10.0)

let test_rp_on_off () =
  let rp = Rate_process.on_off ~on_rate:10.0 ~on:1.0 ~off:1.0 () in
  check_float "on" 10.0 (Rate_process.rate_at rp 0.5);
  check_float "off" 0.0 (Rate_process.rate_at rp 1.5);
  check_float "on again" 10.0 (Rate_process.rate_at rp 2.5);
  check_float "work over cycle" 10.0 (Rate_process.work rp ~t1:0.0 ~t2:2.0)

let test_rp_square_fc () =
  let rp = Rate_process.square ~c:100.0 ~swing:50.0 ~period:2.0 in
  check_float "high" 150.0 (Rate_process.rate_at rp 0.5);
  check_float "low" 50.0 (Rate_process.rate_at rp 1.5);
  check_bool "nominal delta" true (Rate_process.nominal_delta rp = Some 50.0);
  (* FC check on a grid: W(t1,t2) >= c(t2-t1) - delta. *)
  let ok = ref true in
  for i = 0 to 40 do
    for j = i + 1 to 40 do
      let t1 = 0.25 *. float_of_int i and t2 = 0.25 *. float_of_int j in
      let w = Rate_process.work rp ~t1 ~t2 in
      if w < (100.0 *. (t2 -. t1)) -. 50.0 -. 1e-6 then ok := false
    done
  done;
  check_bool "FC(100, 50) holds on grid" true !ok

let test_rp_validation () =
  check_bool "constant <= 0" true
    (try ignore (Rate_process.constant 0.0); false with Invalid_argument _ -> true);
  check_bool "square swing" true
    (try ignore (Rate_process.square ~c:1.0 ~swing:1.0 ~period:1.0); false
     with Invalid_argument _ -> true);
  check_bool "negative from" true
    (try ignore (Rate_process.work (Rate_process.constant 1.0) ~t1:(-1.0) ~t2:0.0); false
     with Invalid_argument _ -> true)

let prop_fc_random_respects_delta =
  (* The defining property: the drawdown of C·t − W(t) never exceeds
     delta, on any sampled interval, for any seed. *)
  QCheck.Test.make ~name:"fc_random satisfies Definition 1" ~count:60
    QCheck.(pair (int_range 1 10_000) (int_range 1 5))
    (fun (seed, spread_factor) ->
      let c = 100.0 in
      let delta = 200.0 in
      let rng = Rng.create seed in
      let rp =
        Rate_process.fc_random ~c ~delta ~seg:0.5
          ~spread:(20.0 *. float_of_int spread_factor)
          ~rng
      in
      let ok = ref true in
      for i = 0 to 60 do
        for j = i + 1 to 60 do
          let t1 = 0.5 *. float_of_int i and t2 = 0.5 *. float_of_int j in
          let w = Rate_process.work rp ~t1 ~t2 in
          if w < (c *. (t2 -. t1)) -. delta -. 1e-6 then ok := false
        done
      done;
      !ok)

let test_rp_ebf_positive_rates () =
  let rng = Rng.create 3 in
  let rp = Rate_process.ebf ~c:100.0 ~scale:80.0 ~seg:0.1 ~rng in
  for i = 0 to 200 do
    check_bool "positive" true (Rate_process.rate_at rp (0.1 *. float_of_int i) > 0.0)
  done

(* ------------------------------------------------------------------ *)
(* Server                                                               *)

let test_server_serves_at_rate () =
  let sim = Sim.create () in
  let server = Server.create sim ~name:"s" ~rate:(Rate_process.constant 100.0) ~sched:(fifo ()) () in
  let departures = ref [] in
  Server.on_depart server (fun p ~start ~departed ->
      departures := (p.Packet.seq, start, departed) :: !departures);
  Sim.schedule sim ~at:0.0 (fun () ->
      Server.inject server (pkt ~flow:1 ~seq:1 ~len:100 ());
      Server.inject server (pkt ~flow:1 ~seq:2 ~len:50 ()));
  Sim.run_all sim ();
  (match List.rev !departures with
  | [ (1, s1, d1); (2, s2, d2) ] ->
    check_float "start 1" 0.0 s1;
    check_float "depart 1" 1.0 d1;
    check_float "start 2 back-to-back" 1.0 s2;
    check_float "depart 2" 1.5 d2
  | _ -> Alcotest.fail "expected two departures");
  check_float "work done" 150.0 (Server.work_done server);
  check_int "departed" 2 (Server.departed server)

let test_server_work_conserving_idle_gap () =
  let sim = Sim.create () in
  let server = Server.create sim ~name:"s" ~rate:(Rate_process.constant 100.0) ~sched:(fifo ()) () in
  let departed = ref [] in
  Server.on_depart server (fun p ~start:_ ~departed:d -> departed := (p.Packet.seq, d) :: !departed);
  Sim.schedule sim ~at:0.0 (fun () -> Server.inject server (pkt ~flow:1 ~seq:1 ~len:100 ()));
  Sim.schedule sim ~at:5.0 (fun () -> Server.inject server (pkt ~flow:1 ~seq:2 ~len:100 ()));
  Sim.run_all sim ();
  (match List.rev !departed with
  | [ (1, d1); (2, d2) ] ->
    check_float "first" 1.0 d1;
    check_float "second starts on arrival" 6.0 d2
  | _ -> Alcotest.fail "expected two")

let test_server_priority_bypass () =
  let sim = Sim.create () in
  let server = Server.create sim ~name:"s" ~rate:(Rate_process.constant 100.0) ~sched:(fifo ()) () in
  let order = ref [] in
  Server.on_depart server (fun p ~start:_ ~departed:_ -> order := p.Packet.flow :: !order);
  Sim.schedule sim ~at:0.0 (fun () ->
      Server.inject server (pkt ~flow:1 ~seq:1 ~len:100 ());
      (* queued behind flow 1 in FIFO, but priority jumps it *)
      Server.inject server (pkt ~flow:2 ~seq:1 ~len:100 ());
      Server.inject_priority server (pkt ~flow:3 ~seq:1 ~len:100 ()));
  Sim.run_all sim ();
  (* Flow 1 is already in service (non-preemptive); the priority packet
     goes next. *)
  Alcotest.(check (list int)) "priority order" [ 1; 3; 2 ] (List.rev !order)

let test_server_buffer_drop () =
  let sim = Sim.create () in
  let server =
    Server.create sim ~name:"s" ~rate:(Rate_process.constant 1.0) ~sched:(fifo ())
      ~flow_buffer_limit:2 ()
  in
  let drops = ref [] in
  Server.on_drop server (fun p -> drops := p.Packet.seq :: !drops);
  Sim.schedule sim ~at:0.0 (fun () ->
      (* seq 1 enters service immediately; 2 and 3 fill the buffer;
         4 is dropped. *)
      for seq = 1 to 4 do
        Server.inject server (pkt ~flow:1 ~seq ~len:1 ())
      done);
  Sim.run sim ~until:0.5;
  check_int "one drop" 1 (Server.drops server);
  Alcotest.(check (list int)) "dropped seq 4" [ 4 ] !drops

let test_server_inject_handler_fires () =
  let sim = Sim.create () in
  let server = Server.create sim ~name:"s" ~rate:(Rate_process.constant 1.0) ~sched:(fifo ()) () in
  let seen = ref 0 in
  Server.on_inject server (fun _ -> incr seen);
  Sim.schedule sim ~at:0.0 (fun () ->
      Server.inject server (pkt ~flow:1 ~seq:1 ~len:1 ());
      Server.inject_priority server (pkt ~flow:2 ~seq:1 ~len:1 ()));
  Sim.run sim ~until:0.1;
  check_int "both arrivals seen" 2 !seen

let test_server_variable_rate_service () =
  (* 10 b/s for 1 s then 100 b/s: a 60-bit packet injected at 0 ends at
     1.5 s. *)
  let sim = Sim.create () in
  let rp = Rate_process.of_segments [ (1.0, 10.0) ] ~tail:100.0 in
  let server = Server.create sim ~name:"s" ~rate:rp ~sched:(fifo ()) () in
  let departed = ref 0.0 in
  Server.on_depart server (fun _ ~start:_ ~departed:d -> departed := d);
  Sim.schedule sim ~at:0.0 (fun () -> Server.inject server (pkt ~flow:1 ~seq:1 ~len:60 ()));
  Sim.run_all sim ();
  check_float "completion across segments" 1.5 !departed

(* ------------------------------------------------------------------ *)
(* Sources                                                              *)

let collect_arrivals sim =
  let log = ref [] in
  let target p = log := (Sim.now sim, p.Packet.flow, p.Packet.seq) :: !log in
  (target, fun () -> List.rev !log)

let test_source_cbr () =
  let sim = Sim.create () in
  let target, got = collect_arrivals sim in
  let c = Source.cbr sim ~target ~flow:1 ~len:100 ~rate:100.0 ~start:0.0 ~stop:3.5 in
  Sim.run_all sim ();
  (* Interval 1s: packets at 0,1,2,3. *)
  check_int "count" 4 (List.length (got ()));
  check_int "sent counter" 4 c.Source.sent;
  (match got () with
  | (t1, _, s1) :: (t2, _, s2) :: _ ->
    check_float "first at start" 0.0 t1;
    check_int "seq 1" 1 s1;
    check_float "spacing" 1.0 t2;
    check_int "seq 2" 2 s2
  | _ -> Alcotest.fail "expected packets")

let test_source_poisson_mean_rate () =
  let sim = Sim.create () in
  let target, got = collect_arrivals sim in
  let rng = Rng.create 11 in
  ignore (Source.poisson sim ~target ~flow:1 ~len:100 ~rate:100.0 ~rng ~start:0.0 ~stop:1000.0);
  Sim.run_all sim ();
  let n = List.length (got ()) in
  (* Expect ~1000 packets (one per second on average). *)
  check_bool "mean rate within 10%" true (n > 900 && n < 1100)

let test_source_on_off () =
  let sim = Sim.create () in
  let target, got = collect_arrivals sim in
  ignore
    (Source.on_off sim ~target ~flow:1 ~len:100 ~peak_rate:100.0 ~on:2.0 ~off:3.0 ~start:0.0
       ~stop:4.9);
  Sim.run_all sim ();
  let times = List.map (fun (t, _, _) -> t) (got ()) in
  (* Two packets in the first on-period (0,1), silence during [2,5). *)
  check_bool "burst then gap" true
    (List.for_all (fun t -> t <= 1.0 +. 1e-9 || t >= 4.0) times)

let test_source_burst () =
  let sim = Sim.create () in
  let target, got = collect_arrivals sim in
  ignore (Source.burst sim ~target ~flow:1 ~len:10 ~burst_size:3 ~interval:1.0 ~start:0.0 ~stop:1.5);
  Sim.run_all sim ();
  check_int "two bursts of 3" 6 (List.length (got ()))

let test_source_leaky_bucket_conformance () =
  let sim = Sim.create () in
  let target, got = collect_arrivals sim in
  let sigma = 500.0 and rho = 100.0 and len = 100 in
  ignore
    (Source.leaky_bucket sim ~target ~flow:1 ~len ~sigma ~rho ~flush_every:0.25 ~start:0.0
       ~stop:50.0);
  Sim.run_all sim ();
  let arrivals = List.map (fun (t, _, _) -> t) (got ()) in
  check_bool "non-empty" true (arrivals <> []);
  (* Conformance: bits in any window [t1,t2] <= sigma + rho (t2-t1). *)
  let arr = Array.of_list arrivals in
  let n = Array.length arr in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let bits = float_of_int ((j - i + 1) * len) in
      if bits > sigma +. (rho *. (arr.(j) -. arr.(i))) +. 1e-6 then ok := false
    done
  done;
  check_bool "(sigma, rho) conformance" true !ok

let test_source_greedy_budget () =
  let sim = Sim.create () in
  let server = Server.create sim ~name:"s" ~rate:(Rate_process.constant 100.0) ~sched:(fifo ()) () in
  let c = Source.greedy sim ~server ~flow:1 ~len:100 ~total:10 ~window:3 ~start:0.0 () in
  Sim.run_all sim ();
  check_int "exactly total" 10 c.Source.sent;
  check_int "all served" 10 (Server.departed server);
  check_bool "finish time = 10 pkts at 1s each" true
    (match c.Source.finished_at with Some t -> Float.abs (t -. 10.0) < 1e-9 | None -> false)

let test_source_greedy_keeps_backlog () =
  let sim = Sim.create () in
  let server = Server.create sim ~name:"s" ~rate:(Rate_process.constant 100.0) ~sched:(fifo ()) () in
  ignore (Source.greedy sim ~server ~flow:1 ~len:100 ~total:100 ~window:4 ~start:0.0 ());
  (* Mid-run the flow must be backlogged (window > 1 outstanding). *)
  Sim.run sim ~until:0.35;
  check_bool "backlogged mid-run" true ((Server.sched server).Sched.backlog 1 > 0)

let test_source_validation () =
  let sim = Sim.create () in
  let target _ = () in
  check_bool "cbr rate" true
    (try
       ignore (Source.cbr sim ~target ~flow:1 ~len:10 ~rate:0.0 ~start:0.0 ~stop:1.0);
       false
     with Invalid_argument _ -> true);
  check_bool "len" true
    (try
       ignore (Source.cbr sim ~target ~flow:1 ~len:0 ~rate:1.0 ~start:0.0 ~stop:1.0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Mpeg                                                                 *)

let test_mpeg_average_rate () =
  let sim = Sim.create () in
  let bits = ref 0 in
  let target p = bits := !bits + p.Packet.len in
  let rng = Rng.create 21 in
  let stats =
    Mpeg.vbr sim ~target ~flow:1 ~avg_rate:1.21e6 ~rng ~start:0.0 ~stop:30.0 ()
  in
  Sim.run_all sim ();
  let rate = float_of_int !bits /. 30.0 in
  check_bool "within 15% of 1.21 Mb/s" true (rate > 1.0e6 && rate < 1.45e6);
  check_int "frames ~ 30fps*30s" 899 stats.Mpeg.frames

let test_mpeg_deterministic_sigma0 () =
  (* With sigma = 0 frame sizes follow the exact GOP pattern. *)
  let run () =
    let sim = Sim.create () in
    let ns = ref [] in
    let target p = ns := p.Packet.seq :: !ns in
    let rng = Rng.create 1 in
    ignore (Mpeg.vbr sim ~target ~flow:1 ~avg_rate:1.0e6 ~sigma:0.0 ~rng ~start:0.0 ~stop:2.0 ());
    Sim.run_all sim ();
    !ns
  in
  check_bool "deterministic" true (run () = run ())

let test_mpeg_i_frames_bigger () =
  (* With sigma = 0 the I frame of each GOP carries ~5x a B frame. *)
  let sim = Sim.create () in
  let per_frame = Hashtbl.create 32 in
  let frame_of t = int_of_float (t *. 30.0 +. 1e-9) in
  let target p =
    let f = frame_of (Sim.now sim) in
    Hashtbl.replace per_frame f ((try Hashtbl.find per_frame f with Not_found -> 0) + p.Packet.len)
  in
  let rng = Rng.create 1 in
  ignore (Mpeg.vbr sim ~target ~flow:1 ~avg_rate:1.0e6 ~sigma:0.0 ~rng ~start:0.0 ~stop:0.45 ());
  Sim.run_all sim ();
  let size f = try Hashtbl.find per_frame f with Not_found -> 0 in
  check_bool "I > B" true (size 0 > 4 * size 1)

(* ------------------------------------------------------------------ *)
(* Tcp                                                                  *)

let test_tcp_delivers_in_order () =
  let sim = Sim.create () in
  let server =
    Server.create sim ~name:"s" ~rate:(Rate_process.constant 1.0e6) ~sched:(fifo ()) ()
  in
  let t = Tcp.reno sim ~server ~flow:1 ~pkt_len:8000 ~start:0.0 () in
  Sim.run sim ~until:2.0;
  check_bool "delivered plenty" true (Tcp.delivered t > 50);
  (* The delivery series is strictly increasing. *)
  let rec increasing = function
    | (_, a) :: ((_, b) :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  check_bool "monotone" true (increasing (Tcp.delivery_series t))

let test_tcp_saturates_link () =
  let sim = Sim.create () in
  let server =
    Server.create sim ~name:"s" ~rate:(Rate_process.constant 1.0e6) ~sched:(fifo ())
      ~flow_buffer_limit:50 ()
  in
  let t = Tcp.reno sim ~server ~flow:1 ~pkt_len:8000 ~start:0.0 () in
  Sim.run sim ~until:5.0;
  (* 1 Mb/s / 8000 b = 125 pps; in ~5 s it should approach 600. *)
  check_bool "throughput near capacity" true (Tcp.delivered t > 450)

let test_tcp_recovers_from_loss () =
  let sim = Sim.create () in
  let server =
    Server.create sim ~name:"s" ~rate:(Rate_process.constant 1.0e5) ~sched:(fifo ())
      ~flow_buffer_limit:5 ()
  in
  let t = Tcp.reno sim ~server ~flow:1 ~pkt_len:8000 ~start:0.0 () in
  Sim.run sim ~until:10.0;
  let halfway = Tcp.delivered t in
  Sim.run sim ~until:20.0;
  check_bool "drops occurred" true (Server.drops server > 0);
  check_bool "retransmits counted" true (Tcp.retransmits t > 0);
  (* Recovery means sustained progress after the loss episodes, not a
     particular throughput: the second half must deliver too. *)
  check_bool "keeps delivering after losses" true (Tcp.delivered t > halfway + 20)

let test_tcp_delivered_before () =
  let sim = Sim.create () in
  let server =
    Server.create sim ~name:"s" ~rate:(Rate_process.constant 1.0e6) ~sched:(fifo ()) ()
  in
  let t = Tcp.reno sim ~server ~flow:1 ~pkt_len:8000 ~start:0.0 () in
  Sim.run sim ~until:2.0;
  let early = Tcp.delivered_before t 1.0 in
  let late = Tcp.delivered_before t 2.0 in
  check_bool "monotone window counts" true (0 < early && early < late);
  check_int "total consistent" (Tcp.delivered t) late

let test_tcp_two_flows_share_fifo () =
  let sim = Sim.create () in
  let server =
    Server.create sim ~name:"s" ~rate:(Rate_process.constant 1.0e6) ~sched:(fifo ())
      ~flow_buffer_limit:20 ()
  in
  let t1 = Tcp.reno sim ~server ~flow:1 ~pkt_len:8000 ~start:0.0 () in
  let t2 = Tcp.reno sim ~server ~flow:2 ~pkt_len:8000 ~start:0.0 () in
  Sim.run sim ~until:5.0;
  check_bool "both progress" true (Tcp.delivered t1 > 100 && Tcp.delivered t2 > 100)

(* ------------------------------------------------------------------ *)
(* Tandem and Trace                                                     *)

let test_tandem_wiring () =
  let sim = Sim.create () in
  let s1 = Server.create sim ~name:"s1" ~rate:(Rate_process.constant 100.0) ~sched:(fifo ()) () in
  let s2 = Server.create sim ~name:"s2" ~rate:(Rate_process.constant 100.0) ~sched:(fifo ()) () in
  let tandem = Tandem.chain sim ~servers:[ s1; s2 ] ~prop_delays:[ 0.5 ] () in
  let exits = ref [] in
  Tandem.on_exit tandem (fun p ~departed -> exits := (p.Packet.seq, departed) :: !exits);
  Sim.schedule sim ~at:0.0 (fun () -> Tandem.inject tandem (pkt ~flow:1 ~seq:1 ~len:100 ()));
  Sim.run_all sim ();
  (match !exits with
  | [ (1, d) ] ->
    (* 1s at hop 1 + 0.5 prop + 1s at hop 2. *)
    check_float "end-to-end time" 2.5 d
  | _ -> Alcotest.fail "expected one exit")

let test_tandem_forward_filter () =
  let sim = Sim.create () in
  let s1 = Server.create sim ~name:"s1" ~rate:(Rate_process.constant 100.0) ~sched:(fifo ()) () in
  let s2 = Server.create sim ~name:"s2" ~rate:(Rate_process.constant 100.0) ~sched:(fifo ()) () in
  let tandem =
    Tandem.chain sim ~servers:[ s1; s2 ] ~prop_delays:[ 0.0 ]
      ~forward:(fun p -> p.Packet.flow = 1)
      ()
  in
  Sim.schedule sim ~at:0.0 (fun () ->
      Server.inject s1 (pkt ~flow:1 ~seq:1 ~len:100 ());
      Server.inject s1 (pkt ~flow:9 ~seq:1 ~len:100 ()));
  Sim.run_all sim ();
  check_int "only flow 1 forwarded" 1 (Server.departed s2);
  ignore tandem

let test_tandem_validation () =
  let sim = Sim.create () in
  let s1 = Server.create sim ~name:"s1" ~rate:(Rate_process.constant 1.0) ~sched:(fifo ()) () in
  check_bool "mismatched delays" true
    (try
       ignore (Tandem.chain sim ~servers:[ s1 ] ~prop_delays:[ 0.1 ] ());
       false
     with Invalid_argument _ -> true);
  check_bool "empty chain" true
    (try
       ignore (Tandem.chain sim ~servers:[] ~prop_delays:[] ());
       false
     with Invalid_argument _ -> true)

let test_trace_records () =
  let sim = Sim.create () in
  let server = Server.create sim ~name:"s" ~rate:(Rate_process.constant 100.0) ~sched:(fifo ()) () in
  let trace = Trace.attach server in
  Sim.schedule sim ~at:0.0 (fun () ->
      Server.inject server (pkt ~flow:1 ~seq:1 ~len:100 ());
      Server.inject server (pkt ~flow:1 ~seq:2 ~len:100 ()));
  Sim.run_all sim ();
  check_int "count" 2 (Trace.count trace);
  (match Trace.of_flow trace 1 with
  | [ r1; r2 ] ->
    check_float "arrived" 0.0 r1.Trace.arrived;
    check_float "start" 0.0 r1.Trace.start;
    check_float "departed" 1.0 r1.Trace.departed;
    check_float "second queued" 1.0 r2.Trace.start;
    check_float "second departed" 2.0 r2.Trace.departed
  | _ -> Alcotest.fail "expected two records");
  check_float "max delay" 2.0 (Trace.max_delay trace 1);
  Alcotest.(check (array (float 1e-9))) "delays" [| 1.0; 2.0 |] (Trace.delays trace 1)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "netsim"
    [
      ( "sim",
        [
          Alcotest.test_case "ordering" `Quick test_sim_ordering;
          Alcotest.test_case "same-time fifo" `Quick test_sim_same_time_fifo;
          Alcotest.test_case "past rejected" `Quick test_sim_past_rejected;
          Alcotest.test_case "run until" `Quick test_sim_run_until;
          Alcotest.test_case "cascade" `Quick test_sim_cascade;
          Alcotest.test_case "same-instant reschedule" `Quick test_sim_same_instant_reschedule;
        ] );
      ( "rate_process",
        [
          Alcotest.test_case "constant" `Quick test_rp_constant;
          Alcotest.test_case "of_segments" `Quick test_rp_of_segments;
          Alcotest.test_case "zero-rate segment" `Quick test_rp_zero_rate_segment;
          Alcotest.test_case "on_off" `Quick test_rp_on_off;
          Alcotest.test_case "square is FC" `Quick test_rp_square_fc;
          Alcotest.test_case "validation" `Quick test_rp_validation;
          Alcotest.test_case "ebf positive" `Quick test_rp_ebf_positive_rates;
          q prop_fc_random_respects_delta;
        ] );
      ( "server",
        [
          Alcotest.test_case "serves at rate" `Quick test_server_serves_at_rate;
          Alcotest.test_case "work conserving" `Quick test_server_work_conserving_idle_gap;
          Alcotest.test_case "priority bypass" `Quick test_server_priority_bypass;
          Alcotest.test_case "buffer drop" `Quick test_server_buffer_drop;
          Alcotest.test_case "inject handler" `Quick test_server_inject_handler_fires;
          Alcotest.test_case "variable-rate service" `Quick test_server_variable_rate_service;
        ] );
      ( "sources",
        [
          Alcotest.test_case "cbr" `Quick test_source_cbr;
          Alcotest.test_case "poisson mean" `Quick test_source_poisson_mean_rate;
          Alcotest.test_case "on_off" `Quick test_source_on_off;
          Alcotest.test_case "burst" `Quick test_source_burst;
          Alcotest.test_case "leaky bucket conformance" `Quick test_source_leaky_bucket_conformance;
          Alcotest.test_case "greedy budget" `Quick test_source_greedy_budget;
          Alcotest.test_case "greedy backlog" `Quick test_source_greedy_keeps_backlog;
          Alcotest.test_case "validation" `Quick test_source_validation;
        ] );
      ( "mpeg",
        [
          Alcotest.test_case "average rate" `Quick test_mpeg_average_rate;
          Alcotest.test_case "deterministic" `Quick test_mpeg_deterministic_sigma0;
          Alcotest.test_case "I frames bigger" `Quick test_mpeg_i_frames_bigger;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "in order" `Quick test_tcp_delivers_in_order;
          Alcotest.test_case "saturates link" `Quick test_tcp_saturates_link;
          Alcotest.test_case "recovers from loss" `Quick test_tcp_recovers_from_loss;
          Alcotest.test_case "delivered_before" `Quick test_tcp_delivered_before;
          Alcotest.test_case "two flows" `Quick test_tcp_two_flows_share_fifo;
        ] );
      ( "tandem+trace",
        [
          Alcotest.test_case "wiring" `Quick test_tandem_wiring;
          Alcotest.test_case "forward filter" `Quick test_tandem_forward_filter;
          Alcotest.test_case "validation" `Quick test_tandem_validation;
          Alcotest.test_case "trace records" `Quick test_trace_records;
        ] );
    ]
