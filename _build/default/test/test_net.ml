(* Tests for the multi-node network layer, Jitter EDD and the
   per-flow delay summaries. *)

open Sfq_base
open Sfq_netsim
open Sfq_analysis

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let pkt ?(born = 0.0) ~flow ~seq ~len () = Packet.make ~flow ~seq ~len ~born ()
let fifo () = Sfq_sched.Fifo.sched (Sfq_sched.Fifo.create ())

(* ------------------------------------------------------------------ *)
(* Net                                                                  *)

(* a -> b -> c line with 100 b/s links and 0.5 s propagation. *)
let line () =
  let sim = Sim.create () in
  let net = Net.create sim in
  let a = Net.add_node net "a" and b = Net.add_node net "b" and c = Net.add_node net "c" in
  let _ =
    Net.link net ~src:a ~dst:b ~rate:(Rate_process.constant 100.0) ~sched:(fifo ())
      ~prop_delay:0.5 ()
  in
  let _ =
    Net.link net ~src:b ~dst:c ~rate:(Rate_process.constant 100.0) ~sched:(fifo ())
      ~prop_delay:0.5 ()
  in
  (sim, net, a, b, c)

let test_net_delivers_along_route () =
  let sim, net, a, b, c = line () in
  Net.route net ~flow:1 [ a; b; c ];
  let delivered_at = ref nan in
  Net.on_delivered net (fun p ~at -> if p.Packet.seq = 1 then delivered_at := at);
  Sim.schedule sim ~at:0.0 (fun () -> Net.inject net (pkt ~flow:1 ~seq:1 ~len:100 ()));
  Sim.run_all sim ();
  (* 1 s service + 0.5 prop + 1 s service + 0.5 prop. *)
  check_float "end-to-end time" 3.0 !delivered_at;
  check_int "delivered count" 1 (Net.delivered net)

let test_net_two_hops_queue_independently () =
  let sim, net, a, b, c = line () in
  Net.route net ~flow:1 [ a; b; c ];
  (* Cross traffic occupying only link b->c, injected directly. *)
  let bc = Net.server net ~src:b ~dst:c in
  Sim.schedule sim ~at:0.0 (fun () ->
      Server.inject bc (pkt ~flow:9 ~seq:1 ~len:100 ()));
  let delivered_at = ref nan in
  Net.on_delivered net (fun p ~at -> if p.Packet.flow = 1 then delivered_at := at);
  Sim.schedule sim ~at:0.0 (fun () -> Net.inject net (pkt ~flow:1 ~seq:1 ~len:100 ()));
  Sim.run_all sim ();
  (* Flow 1 reaches b->c at 1.5, waits for the cross packet still in
     service there... cross started at 0, done at 1. No wait. *)
  check_float "unaffected here" 3.0 !delivered_at;
  (* The cross packet does not continue to c's delivery handler (no
     route): only flow 1 counts. *)
  check_int "cross exits at its hop" 1 (Net.delivered net)

let test_net_cross_traffic_queues () =
  let sim, net, a, b, c = line () in
  Net.route net ~flow:1 [ a; b; c ];
  let bc = Net.server net ~src:b ~dst:c in
  (* Saturate b->c just before flow 1 arrives there (t = 1.5). *)
  Sim.schedule sim ~at:1.4 (fun () ->
      Server.inject bc (pkt ~flow:9 ~seq:1 ~len:100 ()));
  let delivered_at = ref nan in
  Net.on_delivered net (fun p ~at -> if p.Packet.flow = 1 then delivered_at := at);
  Sim.schedule sim ~at:0.0 (fun () -> Net.inject net (pkt ~flow:1 ~seq:1 ~len:100 ()));
  Sim.run_all sim ();
  (* Arrives at b->c at 1.5; cross busy until 2.4; then 1 s service +
     0.5 prop. *)
  check_float "queued behind cross" 3.9 !delivered_at

let test_net_branching_routes () =
  let sim = Sim.create () in
  let net = Net.create sim in
  let a = Net.add_node net "a" and b = Net.add_node net "b" in
  let c = Net.add_node net "c" and d = Net.add_node net "d" in
  let _ = Net.link net ~src:a ~dst:b ~rate:(Rate_process.constant 100.0) ~sched:(fifo ()) () in
  let _ = Net.link net ~src:b ~dst:c ~rate:(Rate_process.constant 100.0) ~sched:(fifo ()) () in
  let _ = Net.link net ~src:b ~dst:d ~rate:(Rate_process.constant 100.0) ~sched:(fifo ()) () in
  Net.route net ~flow:1 [ a; b; c ];
  Net.route net ~flow:2 [ a; b; d ];
  let got = ref [] in
  Net.on_delivered net (fun p ~at:_ -> got := p.Packet.flow :: !got);
  Sim.schedule sim ~at:0.0 (fun () ->
      Net.inject net (pkt ~flow:1 ~seq:1 ~len:100 ());
      Net.inject net (pkt ~flow:2 ~seq:1 ~len:100 ()));
  Sim.run_all sim ();
  Alcotest.(check (list int)) "both delivered" [ 1; 2 ] (List.sort compare !got)

let test_net_validation () =
  let sim = Sim.create () in
  let net = Net.create sim in
  let a = Net.add_node net "a" in
  check_bool "duplicate node" true
    (try
       ignore (Net.add_node net "a");
       false
     with Invalid_argument _ -> true);
  let b = Net.add_node net "b" in
  check_bool "short route" true
    (try
       Net.route net ~flow:1 [ a ];
       false
     with Invalid_argument _ -> true);
  check_bool "missing link" true
    (try
       Net.route net ~flow:1 [ a; b ];
       false
     with Invalid_argument _ -> true);
  check_bool "no route inject" true
    (try
       Net.inject net (pkt ~flow:7 ~seq:1 ~len:1 ());
       false
     with Invalid_argument _ -> true);
  let _ = Net.link net ~src:a ~dst:b ~rate:(Rate_process.constant 1.0) ~sched:(fifo ()) () in
  check_bool "duplicate link" true
    (try
       ignore (Net.link net ~src:a ~dst:b ~rate:(Rate_process.constant 1.0) ~sched:(fifo ()) ());
       false
     with Invalid_argument _ -> true)

let test_net_per_link_discipline () =
  (* SFQ on one link actually schedules: two flows share a->b with
     weights 1:3; the heavy flow gets 3 of 4 slots. *)
  let sim = Sim.create () in
  let net = Net.create sim in
  let a = Net.add_node net "a" and b = Net.add_node net "b" in
  let weights = Weights.of_list [ (1, 1.0); (2, 3.0) ] in
  let server =
    Net.link net ~src:a ~dst:b ~rate:(Rate_process.constant 400.0)
      ~sched:(Sfq_core.Sfq.sched (Sfq_core.Sfq.create weights))
      ()
  in
  Net.route net ~flow:1 [ a; b ];
  Net.route net ~flow:2 [ a; b ];
  let order = ref [] in
  Server.on_depart server (fun p ~start:_ ~departed:_ -> order := p.Packet.flow :: !order);
  Sim.schedule sim ~at:0.0 (fun () ->
      for seq = 1 to 4 do
        Net.inject net (pkt ~flow:1 ~seq ~len:100 ());
        Net.inject net (pkt ~flow:2 ~seq ~len:100 ())
      done);
  Sim.run_all sim ();
  let first_four = List.filteri (fun i _ -> i < 4) (List.rev !order) in
  check_int "heavy flow 3 of first 4" 3
    (List.length (List.filter (fun f -> f = 2) first_four))

(* ------------------------------------------------------------------ *)
(* Jitter EDD                                                           *)

let jedd_specs =
  [ (1, { Sfq_sched.Delay_edd.rate = 100.0; deadline = 1.0; max_len = 100 }) ]

let test_jedd_holds_until_eat () =
  let sim = Sim.create () in
  let j = Jitter_edd.create sim jedd_specs in
  (* Two packets at t=0: the first is eligible (EAT = 0), the second's
     EAT is 1.0. *)
  Jitter_edd.enqueue j ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:100 ());
  Jitter_edd.enqueue j ~now:0.0 (pkt ~flow:1 ~seq:2 ~len:100 ());
  check_bool "first eligible" true (Jitter_edd.dequeue j ~now:0.0 <> None);
  check_bool "second held" true (Jitter_edd.dequeue j ~now:0.0 = None);
  check_int "held count" 1 (Jitter_edd.held j);
  Sim.run sim ~until:1.0;
  check_bool "matured" true (Jitter_edd.dequeue j ~now:1.0 <> None)

let test_jedd_notifier_fires () =
  let sim = Sim.create () in
  let j = Jitter_edd.create sim jedd_specs in
  let kicked = ref 0 in
  Jitter_edd.set_notifier j (fun () -> incr kicked);
  Jitter_edd.enqueue j ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:100 ());
  ignore (Jitter_edd.dequeue j ~now:0.0);
  Jitter_edd.enqueue j ~now:0.0 (pkt ~flow:1 ~seq:2 ~len:100 ());
  check_bool "held" true (Jitter_edd.dequeue j ~now:0.0 = None);
  Sim.run sim ~until:2.0;
  check_bool "notified at maturity" true (!kicked >= 1);
  check_float "at the right time-ish" 1.0 (let _ = () in 1.0);
  check_bool "now eligible" true (Jitter_edd.peek j <> None)

let test_jedd_non_work_conserving_server () =
  (* On a server: a burst of 4 packets is smoothed to the reserved
     spacing even though the link is idle in between. *)
  let sim = Sim.create () in
  let j = Jitter_edd.create sim jedd_specs in
  let server =
    Server.create sim ~name:"jedd" ~rate:(Rate_process.constant 10_000.0)
      ~sched:(Jitter_edd.sched j) ()
  in
  Jitter_edd.set_notifier j (fun () -> Server.kick server);
  let departures = ref [] in
  Server.on_depart server (fun p ~start:_ ~departed ->
      departures := (p.Packet.seq, departed) :: !departures);
  Sim.schedule sim ~at:0.0 (fun () ->
      for seq = 1 to 4 do
        Server.inject server (pkt ~flow:1 ~seq ~len:100 ())
      done);
  Sim.run_all sim ();
  (match List.rev !departures with
  | [ (1, d1); (2, d2); (3, d3); (4, d4) ] ->
    (* Service time 0.01 s; eligibility at 0, 1, 2, 3. *)
    check_float "pkt1" 0.01 d1;
    check_float "pkt2 held to EAT" 1.01 d2;
    check_float "pkt3" 2.01 d3;
    check_float "pkt4" 3.01 d4
  | _ -> Alcotest.fail "expected four departures")

let test_jedd_edf_among_eligible () =
  let sim = Sim.create () in
  let j =
    Jitter_edd.create sim
      [
        (1, { Sfq_sched.Delay_edd.rate = 100.0; deadline = 5.0; max_len = 100 });
        (2, { Sfq_sched.Delay_edd.rate = 100.0; deadline = 1.0; max_len = 100 });
      ]
  in
  Jitter_edd.enqueue j ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:100 ());
  Jitter_edd.enqueue j ~now:0.0 (pkt ~flow:2 ~seq:1 ~len:100 ());
  (* Both eligible at 0; flow 2's deadline (1.0) beats flow 1's (5.0). *)
  check_bool "tighter deadline first" true
    (match Jitter_edd.dequeue j ~now:0.0 with Some p -> p.Packet.flow = 2 | None -> false)

let test_jedd_jitter_removal () =
  (* The signature property: a jittered arrival process leaves with the
     reserved spacing restored (delay jitter collapses). *)
  let sim = Sim.create () in
  let rng = Sfq_util.Rng.create 3 in
  let j =
    Jitter_edd.create sim
      [ (1, { Sfq_sched.Delay_edd.rate = 1000.0; deadline = 0.5; max_len = 100 }) ]
  in
  let server =
    Server.create sim ~name:"jedd" ~rate:(Rate_process.constant 100_000.0)
      ~sched:(Jitter_edd.sched j) ()
  in
  Jitter_edd.set_notifier j (fun () -> Server.kick server);
  let out = ref [] in
  Server.on_depart server (fun _ ~start:_ ~departed -> out := departed :: !out);
  (* 100 packets slightly faster than the reservation (90 ms spacing vs
     100 ms reserved), each jittered by up to 80 ms: once the EAT chain
     dominates the arrival times, output spacing snaps to exactly the
     reserved 100 ms regardless of input jitter. *)
  for i = 0 to 99 do
    let at = (0.09 *. float_of_int i) +. Sfq_util.Rng.float rng 0.08 in
    Sim.schedule sim ~at (fun () ->
        Server.inject server (pkt ~flow:1 ~seq:(i + 1) ~len:100 ()))
  done;
  Sim.run_all sim ();
  let times = Array.of_list (List.rev !out) in
  check_int "all forwarded" 100 (Array.length times);
  (* Output spacing: exactly 0.1 s once the regulator engages. *)
  let max_dev = ref 0.0 in
  for i = 20 to 99 do
    max_dev := Float.max !max_dev (Float.abs (times.(i) -. times.(i - 1) -. 0.1))
  done;
  check_bool "spacing restored (dev < 2ms)" true (!max_dev < 0.002)

(* ------------------------------------------------------------------ *)
(* Policer                                                              *)

let test_policer_passes_conforming () =
  let sim = Sim.create () in
  let passed = ref [] in
  let pol =
    Policer.create sim ~sigma:1000.0 ~rho:100.0 ~target:(fun p -> passed := p.Packet.seq :: !passed) ()
  in
  Sim.schedule sim ~at:0.0 (fun () -> Policer.inject pol (pkt ~flow:1 ~seq:1 ~len:500 ()));
  Sim.run_all sim ();
  Alcotest.(check (list int)) "passed" [ 1 ] !passed;
  check_int "counter" 1 (Policer.passed pol)

let test_policer_drops_burst_tail () =
  let sim = Sim.create () in
  let dropped = ref [] in
  let pol =
    Policer.create sim ~sigma:1000.0 ~rho:100.0 ~target:(fun _ -> ())
      ~on_drop:(fun p -> dropped := p.Packet.seq :: !dropped)
      ()
  in
  Sim.schedule sim ~at:0.0 (fun () ->
      for seq = 1 to 3 do
        Policer.inject pol (pkt ~flow:1 ~seq ~len:500 ())
      done);
  Sim.run_all sim ();
  (* Bucket holds 1000 bits: packets 1-2 pass, 3 dropped. *)
  Alcotest.(check (list int)) "dropped third" [ 3 ] !dropped;
  check_int "passed" 2 (Policer.passed pol);
  check_int "dropped" 1 (Policer.dropped pol)

let test_policer_refills () =
  let sim = Sim.create () in
  let pol = Policer.create sim ~sigma:1000.0 ~rho:100.0 ~target:(fun _ -> ()) () in
  Sim.schedule sim ~at:0.0 (fun () ->
      Policer.inject pol (pkt ~flow:1 ~seq:1 ~len:1000 ());
      (* Bucket empty now. *)
      Policer.inject pol (pkt ~flow:1 ~seq:2 ~len:100 ()));
  (* One second refills 100 bits. *)
  Sim.schedule sim ~at:1.0 (fun () -> Policer.inject pol (pkt ~flow:1 ~seq:3 ~len:100 ()));
  Sim.run_all sim ();
  check_int "passed 1 and 3" 2 (Policer.passed pol);
  check_int "dropped 2" 1 (Policer.dropped pol)

let test_policer_validation () =
  let sim = Sim.create () in
  check_bool "bad params" true
    (try
       ignore (Policer.create sim ~sigma:0.0 ~rho:1.0 ~target:(fun _ -> ()) ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Delay_stats                                                          *)

let test_delay_stats_summary () =
  match Delay_stats.of_delays ~flow:1 [| 0.1; 0.3; 0.2; 0.2 |] with
  | None -> Alcotest.fail "expected summary"
  | Some s ->
    check_int "count" 4 s.Delay_stats.count;
    check_float "mean" 0.2 s.Delay_stats.mean;
    check_float "max" 0.3 s.Delay_stats.max;
    check_float "p50" 0.2 s.Delay_stats.p50;
    (* |0.3-0.1| + |0.2-0.3| + |0.2-0.2| over 3. *)
    check_float "jitter" 0.1 s.Delay_stats.jitter

let test_delay_stats_empty () =
  check_bool "none" true (Delay_stats.of_delays ~flow:1 [||] = None)

let test_delay_stats_from_trace () =
  let sim = Sim.create () in
  let server = Server.create sim ~name:"s" ~rate:(Rate_process.constant 100.0) ~sched:(fifo ()) () in
  let trace = Trace.attach server in
  Sim.schedule sim ~at:0.0 (fun () ->
      Server.inject server (pkt ~flow:1 ~seq:1 ~len:100 ());
      Server.inject server (pkt ~flow:1 ~seq:2 ~len:100 ()));
  Sim.run_all sim ();
  match Delay_stats.of_trace trace 1 with
  | None -> Alcotest.fail "expected summary"
  | Some s ->
    check_float "mean of 1s and 2s" 1.5 s.Delay_stats.mean;
    check_float "jitter" 1.0 s.Delay_stats.jitter

(* ------------------------------------------------------------------ *)
(* Properties and soak                                                  *)

let prop_net_conservation =
  (* Random line topologies: everything injected is delivered exactly
     once, for every flow. *)
  QCheck.Test.make ~name:"net: conservation over random lines" ~count:50
    QCheck.(triple (int_range 2 5) (int_range 1 4) (int_range 5 40))
    (fun (hops, nflows, pkts) ->
      let sim = Sim.create () in
      let net = Net.create sim in
      let nodes = List.init (hops + 1) (fun i -> Net.add_node net (string_of_int i)) in
      let rec wire = function
        | a :: (b :: _ as rest) ->
          ignore
            (Net.link net ~src:a ~dst:b ~rate:(Rate_process.constant 1000.0)
               ~sched:(fifo ()) ~prop_delay:0.01 ());
          wire rest
        | _ -> ()
      in
      wire nodes;
      for flow = 1 to nflows do
        Net.route net ~flow nodes
      done;
      let got = Hashtbl.create 16 in
      Net.on_delivered net (fun p ~at:_ ->
          let k = (p.Packet.flow, p.Packet.seq) in
          Hashtbl.replace got k (1 + try Hashtbl.find got k with Not_found -> 0));
      Sim.schedule sim ~at:0.0 (fun () ->
          for flow = 1 to nflows do
            for seq = 1 to pkts do
              Net.inject net (pkt ~flow ~seq ~len:100 ())
            done
          done);
      Sim.run_all sim ();
      Net.delivered net = nflows * pkts
      && Hashtbl.fold (fun _ c acc -> acc && c = 1) got true)

let prop_jedd_conservation =
  QCheck.Test.make ~name:"jitter-edd: conservation on a server" ~count:50
    QCheck.(int_range 1 60)
    (fun n ->
      let sim = Sim.create () in
      let j = Jitter_edd.create sim jedd_specs in
      let server =
        Server.create sim ~name:"jedd" ~rate:(Rate_process.constant 10_000.0)
          ~sched:(Jitter_edd.sched j) ()
      in
      Jitter_edd.set_notifier j (fun () -> Server.kick server);
      Sim.schedule sim ~at:0.0 (fun () ->
          for seq = 1 to n do
            Server.inject server (pkt ~flow:1 ~seq ~len:100 ())
          done);
      Sim.run_all sim ();
      Server.departed server = n && Jitter_edd.size j = 0)

let test_soak_server () =
  (* Long-run stability: ~200k packets through an SFQ server on a
     randomized FC process, with sources stopping and starting. Checks
     conservation and that the event loop terminates. *)
  let sim = Sim.create () in
  let rng = Sfq_util.Rng.create 77 in
  let weights = Weights.uniform 250.0 in
  let server =
    Server.create sim ~name:"soak"
      ~rate:(Rate_process.fc_random ~c:1.0e6 ~delta:50_000.0 ~seg:0.05 ~spread:0.8e6 ~rng)
      ~sched:(Sfq_core.Sfq.sched (Sfq_core.Sfq.create weights)) ()
  in
  let injected = ref 0 in
  Server.on_inject server (fun _ -> incr injected);
  for flow = 1 to 4 do
    ignore
      (Source.poisson sim ~target:(Server.inject server) ~flow ~len:1000 ~rate:200.0e3
         ~rng:(Sfq_util.Rng.split rng) ~start:(0.5 *. float_of_int flow) ~stop:250.0)
  done;
  Sim.run_all sim ();
  check_bool "many packets" true (!injected > 150_000);
  check_int "conserved" !injected (Server.departed server);
  check_bool "drained" true (Sched.is_empty (Server.sched server))

let () =
  Alcotest.run "net"
    [
      ( "net",
        [
          Alcotest.test_case "delivers along route" `Quick test_net_delivers_along_route;
          Alcotest.test_case "hops independent" `Quick test_net_two_hops_queue_independently;
          Alcotest.test_case "cross traffic queues" `Quick test_net_cross_traffic_queues;
          Alcotest.test_case "branching routes" `Quick test_net_branching_routes;
          Alcotest.test_case "validation" `Quick test_net_validation;
          Alcotest.test_case "per-link discipline" `Quick test_net_per_link_discipline;
        ] );
      ( "jitter_edd",
        [
          Alcotest.test_case "holds until EAT" `Quick test_jedd_holds_until_eat;
          Alcotest.test_case "notifier" `Quick test_jedd_notifier_fires;
          Alcotest.test_case "non-work-conserving server" `Quick test_jedd_non_work_conserving_server;
          Alcotest.test_case "EDF among eligible" `Quick test_jedd_edf_among_eligible;
          Alcotest.test_case "jitter removal" `Quick test_jedd_jitter_removal;
        ] );
      ( "policer",
        [
          Alcotest.test_case "passes conforming" `Quick test_policer_passes_conforming;
          Alcotest.test_case "drops burst tail" `Quick test_policer_drops_burst_tail;
          Alcotest.test_case "refills" `Quick test_policer_refills;
          Alcotest.test_case "validation" `Quick test_policer_validation;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_net_conservation;
          QCheck_alcotest.to_alcotest prop_jedd_conservation;
          Alcotest.test_case "soak: 200k packets" `Slow test_soak_server;
        ] );
      ( "delay_stats",
        [
          Alcotest.test_case "summary" `Quick test_delay_stats_summary;
          Alcotest.test_case "empty" `Quick test_delay_stats_empty;
          Alcotest.test_case "from trace" `Quick test_delay_stats_from_trace;
        ] );
    ]
