(* Tests for hierarchical SFQ (§3): construction, classification, tag
   mechanics across levels, fairness of subtree shares under a
   fluctuating parent share (Example 3), and mixing inner disciplines
   (Delay EDD inside a class). *)

open Sfq_base
open Sfq_core
open Sfq_sched

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let pkt ~flow ~seq ~len () = Packet.make ~flow ~seq ~len ~born:0.0 ()
let flow_seq p = (p.Packet.flow, p.Packet.seq)

let fifo_leaf () = Fifo.sched (Fifo.create ())

(* Two leaves under the root, equal weights, flows 1 and 2. *)
let two_leaf () =
  let h = Hsfq.create () in
  let l1 = Hsfq.add_leaf h ~parent:(Hsfq.root h) ~weight:1.0 (fifo_leaf ()) in
  let l2 = Hsfq.add_leaf h ~parent:(Hsfq.root h) ~weight:1.0 (fifo_leaf ()) in
  Hsfq.set_classifier h (Hsfq.classifier_by_flow [ (1, l1); (2, l2) ]);
  h

(* ------------------------------------------------------------------ *)
(* Construction and classification errors                              *)

let test_no_classifier () =
  let h = Hsfq.create () in
  let _ = Hsfq.add_leaf h ~parent:(Hsfq.root h) ~weight:1.0 (fifo_leaf ()) in
  Alcotest.check_raises "no classifier"
    (Invalid_argument "Hsfq.enqueue: no classifier set") (fun () ->
      Hsfq.enqueue h ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:1 ()))

let test_bad_weight () =
  let h = Hsfq.create () in
  Alcotest.check_raises "weight" (Invalid_argument "Hsfq: weight must be positive")
    (fun () -> ignore (Hsfq.add_class h ~parent:(Hsfq.root h) ~weight:0.0))

let test_leaf_parent_rejected () =
  let h = Hsfq.create () in
  let leaf = Hsfq.add_leaf h ~parent:(Hsfq.root h) ~weight:1.0 (fifo_leaf ()) in
  Alcotest.check_raises "leaf parent" (Invalid_argument "Hsfq: parent class is a leaf")
    (fun () -> ignore (Hsfq.add_class h ~parent:leaf ~weight:1.0))

let test_classifier_to_internal_rejected () =
  let h = Hsfq.create () in
  let c = Hsfq.add_class h ~parent:(Hsfq.root h) ~weight:1.0 in
  Hsfq.set_classifier h (fun _ -> c);
  Alcotest.check_raises "internal target"
    (Invalid_argument "Hsfq.enqueue: classifier returned a non-leaf class") (fun () ->
      Hsfq.enqueue h ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:1 ()))

let test_foreign_class_rejected () =
  let h1 = Hsfq.create () and h2 = Hsfq.create () in
  let foreign = Hsfq.add_leaf h2 ~parent:(Hsfq.root h2) ~weight:1.0 (fifo_leaf ()) in
  Hsfq.set_classifier h1 (fun _ -> foreign);
  let _ = Hsfq.add_leaf h1 ~parent:(Hsfq.root h1) ~weight:1.0 (fifo_leaf ()) in
  Alcotest.check_raises "foreign class"
    (Invalid_argument "Hsfq.enqueue: class from another hierarchy") (fun () ->
      Hsfq.enqueue h1 ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:1 ()))

(* ------------------------------------------------------------------ *)
(* Basic scheduling                                                     *)

let test_single_leaf_fifo () =
  let h = Hsfq.create () in
  let l = Hsfq.add_leaf h ~parent:(Hsfq.root h) ~weight:1.0 (fifo_leaf ()) in
  Hsfq.set_classifier h (fun _ -> l);
  for seq = 1 to 3 do
    Hsfq.enqueue h ~now:0.0 (pkt ~flow:1 ~seq ~len:10 ())
  done;
  check_int "size" 3 (Hsfq.size h);
  let order = List.map (fun p -> p.Packet.seq) (Sched.drain (Hsfq.sched h) ~now:0.0) in
  Alcotest.(check (list int)) "fifo through hierarchy" [ 1; 2; 3 ] order

let test_two_leaves_interleave () =
  let h = two_leaf () in
  for seq = 1 to 3 do
    Hsfq.enqueue h ~now:0.0 (pkt ~flow:1 ~seq ~len:10 ());
    Hsfq.enqueue h ~now:0.0 (pkt ~flow:2 ~seq ~len:10 ())
  done;
  let order = List.map flow_seq (Sched.drain (Hsfq.sched h) ~now:0.0) in
  Alcotest.(check (list (pair int int))) "alternating"
    [ (1, 1); (2, 1); (1, 2); (2, 2); (1, 3); (2, 3) ]
    order

let test_weighted_leaves () =
  let h = Hsfq.create () in
  let l1 = Hsfq.add_leaf h ~parent:(Hsfq.root h) ~weight:2.0 (fifo_leaf ()) in
  let l2 = Hsfq.add_leaf h ~parent:(Hsfq.root h) ~weight:1.0 (fifo_leaf ()) in
  Hsfq.set_classifier h (Hsfq.classifier_by_flow [ (1, l1); (2, l2) ]);
  for seq = 1 to 4 do
    Hsfq.enqueue h ~now:0.0 (pkt ~flow:1 ~seq ~len:10 ())
  done;
  for seq = 1 to 2 do
    Hsfq.enqueue h ~now:0.0 (pkt ~flow:2 ~seq ~len:10 ())
  done;
  (* Weight-2 leaf emits twice as often. Start tags: leaf1 0,5,10,15;
     leaf2 0,10; the tie at 10 goes to leaf2 (its tag was assigned
     first). *)
  let order = List.map flow_seq (Sched.drain (Hsfq.sched h) ~now:0.0) in
  Alcotest.(check (list (pair int int))) "2:1 emission"
    [ (1, 1); (2, 1); (1, 2); (2, 2); (1, 3); (1, 4) ]
    order

let test_backlog_aggregates () =
  let h = two_leaf () in
  Hsfq.enqueue h ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:10 ());
  Hsfq.enqueue h ~now:0.0 (pkt ~flow:2 ~seq:1 ~len:10 ());
  Hsfq.enqueue h ~now:0.0 (pkt ~flow:2 ~seq:2 ~len:10 ());
  check_int "flow 1" 1 (Hsfq.backlog h 1);
  check_int "flow 2" 2 (Hsfq.backlog h 2);
  check_int "size" 3 (Hsfq.size h)

let test_peek_matches_dequeue () =
  let h = two_leaf () in
  Hsfq.enqueue h ~now:0.0 (pkt ~flow:2 ~seq:1 ~len:10 ());
  Hsfq.enqueue h ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:10 ());
  let rec go () =
    match (Hsfq.peek h, Hsfq.dequeue h ~now:0.0) with
    | None, None -> true
    | Some a, Some b -> flow_seq a = flow_seq b && go ()
    | _ -> false
  in
  check_bool "peek consistent" true (go ())

let test_idle_class_no_stale_credit () =
  (* A class idle while another is served must not accumulate credit:
     when it reactivates its start tag snaps to the parent's v. *)
  let h = two_leaf () in
  for seq = 1 to 4 do
    Hsfq.enqueue h ~now:0.0 (pkt ~flow:1 ~seq ~len:10 ())
  done;
  (* Serve two of flow 1 (v moves to 10), then flow 2 arrives. *)
  ignore (Hsfq.dequeue h ~now:0.0);
  ignore (Hsfq.dequeue h ~now:0.0);
  Hsfq.enqueue h ~now:0.0 (pkt ~flow:2 ~seq:1 ~len:10 ());
  (* Flow 2's leaf activates at v = 10, not at 0: it gets one packet
     in (start tag 10 vs flow 1's remaining 20, 30) but cannot claim
     the two services it missed. *)
  let order = List.map flow_seq (Sched.drain (Hsfq.sched h) ~now:0.0) in
  Alcotest.(check (list (pair int int))) "no stale credit"
    [ (2, 1); (1, 3); (1, 4) ]
    order

(* ------------------------------------------------------------------ *)
(* Nested hierarchy (Example 3 mechanics)                               *)

let nested () =
  (* root{A{C,D}, B}; all weights 1; flows: C=1, D=2, B=3. *)
  let h = Hsfq.create () in
  let a = Hsfq.add_class h ~parent:(Hsfq.root h) ~weight:1.0 in
  let b = Hsfq.add_leaf h ~parent:(Hsfq.root h) ~weight:1.0 (fifo_leaf ()) in
  let c = Hsfq.add_leaf h ~parent:a ~weight:1.0 (fifo_leaf ()) in
  let d = Hsfq.add_leaf h ~parent:a ~weight:1.0 (fifo_leaf ()) in
  Hsfq.set_classifier h (Hsfq.classifier_by_flow [ (1, c); (2, d); (3, b) ]);
  h

let count_flows order =
  List.fold_left
    (fun (c, d, b) p ->
      match p.Packet.flow with
      | 1 -> (c + 1, d, b)
      | 2 -> (c, d + 1, b)
      | _ -> (c, d, b + 1))
    (0, 0, 0) order

let test_nested_b_idle () =
  let h = nested () in
  for seq = 1 to 6 do
    Hsfq.enqueue h ~now:0.0 (pkt ~flow:1 ~seq ~len:10 ());
    Hsfq.enqueue h ~now:0.0 (pkt ~flow:2 ~seq ~len:10 ())
  done;
  (* B idle: C and D alternate — each gets half the link. *)
  let first_six = List.filteri (fun i _ -> i < 6) (Sched.drain (Hsfq.sched h) ~now:0.0) in
  let c, d, b = count_flows first_six in
  check_int "C half" 3 c;
  check_int "D half" 3 d;
  check_int "B none" 0 b

let test_nested_b_active () =
  let h = nested () in
  for seq = 1 to 8 do
    Hsfq.enqueue h ~now:0.0 (pkt ~flow:1 ~seq ~len:10 ());
    Hsfq.enqueue h ~now:0.0 (pkt ~flow:2 ~seq ~len:10 ());
    Hsfq.enqueue h ~now:0.0 (pkt ~flow:3 ~seq ~len:10 ())
  done;
  (* All active: B gets 1/2, C and D 1/4 each. Check over the first 8
     emissions. *)
  let first_eight = List.filteri (fun i _ -> i < 8) (Sched.drain (Hsfq.sched h) ~now:0.0) in
  let c, d, b = count_flows first_eight in
  check_int "B half" 4 b;
  check_int "C quarter" 2 c;
  check_int "D quarter" 2 d

let test_class_vtime_accessor () =
  let h = nested () in
  Hsfq.enqueue h ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:10 ());
  ignore (Hsfq.dequeue h ~now:0.0);
  check_bool "root vtime defined" true (Hsfq.class_vtime h (Hsfq.root h) >= 0.0)

(* Three levels: root{A{B{x,y}, z}, w}, all weights 1. Shares follow
   the recursive halving the paper's eq. 65 argument formalizes:
   w = 1/2, z = 1/4, x = y = 1/8. *)
let test_three_levels () =
  let h = Hsfq.create () in
  let a = Hsfq.add_class h ~parent:(Hsfq.root h) ~weight:1.0 in
  let b = Hsfq.add_class h ~parent:a ~weight:1.0 in
  let x = Hsfq.add_leaf h ~parent:b ~weight:1.0 (fifo_leaf ()) in
  let y = Hsfq.add_leaf h ~parent:b ~weight:1.0 (fifo_leaf ()) in
  let z = Hsfq.add_leaf h ~parent:a ~weight:1.0 (fifo_leaf ()) in
  let w = Hsfq.add_leaf h ~parent:(Hsfq.root h) ~weight:1.0 (fifo_leaf ()) in
  Hsfq.set_classifier h (Hsfq.classifier_by_flow [ (1, x); (2, y); (3, z); (4, w) ]);
  for seq = 1 to 16 do
    List.iter (fun flow -> Hsfq.enqueue h ~now:0.0 (pkt ~flow ~seq ~len:10 ())) [ 1; 2; 3; 4 ]
  done;
  let first = Sched.drain_n (Hsfq.sched h) ~now:0.0 16 in
  let count f = List.length (List.filter (fun p -> p.Packet.flow = f) first) in
  check_int "w: half" 8 (count 4);
  check_int "z: quarter" 4 (count 3);
  check_int "x: eighth" 2 (count 1);
  check_int "y: eighth" 2 (count 2)

(* The deepest leaf still drains completely once the others empty. *)
let test_three_levels_drain () =
  let h = Hsfq.create () in
  let a = Hsfq.add_class h ~parent:(Hsfq.root h) ~weight:1.0 in
  let b = Hsfq.add_class h ~parent:a ~weight:1.0 in
  let x = Hsfq.add_leaf h ~parent:b ~weight:1.0 (fifo_leaf ()) in
  let w = Hsfq.add_leaf h ~parent:(Hsfq.root h) ~weight:1.0 (fifo_leaf ()) in
  Hsfq.set_classifier h (Hsfq.classifier_by_flow [ (1, x); (4, w) ]);
  for seq = 1 to 5 do
    Hsfq.enqueue h ~now:0.0 (pkt ~flow:1 ~seq ~len:10 ())
  done;
  Hsfq.enqueue h ~now:0.0 (pkt ~flow:4 ~seq:1 ~len:10 ());
  let out = List.map flow_seq (Sched.drain (Hsfq.sched h) ~now:0.0) in
  check_int "all six" 6 (List.length out);
  check_int "empty" 0 (Hsfq.size h)

(* ------------------------------------------------------------------ *)
(* Mixed inner discipline                                               *)

let test_edd_leaf () =
  (* A class whose inner discipline is Delay EDD: intra-class order is
     by deadline even though inter-class order is SFQ. *)
  let h = Hsfq.create () in
  let edd =
    Delay_edd.create
      [
        (1, { Delay_edd.rate = 10.0; deadline = 5.0; max_len = 10 });
        (2, { Delay_edd.rate = 10.0; deadline = 1.0; max_len = 10 });
      ]
  in
  let l = Hsfq.add_leaf h ~parent:(Hsfq.root h) ~weight:1.0 (Delay_edd.sched edd) in
  Hsfq.set_classifier h (fun _ -> l);
  Hsfq.enqueue h ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:10 ());
  Hsfq.enqueue h ~now:0.0 (pkt ~flow:2 ~seq:1 ~len:10 ());
  let order = List.map (fun p -> p.Packet.flow) (Sched.drain (Hsfq.sched h) ~now:0.0) in
  Alcotest.(check (list int)) "EDF inside the class" [ 2; 1 ] order

(* ------------------------------------------------------------------ *)
(* Hierarchical guarantees (Theorem 1 inside a class, eq. 65)          *)

open Sfq_netsim
open Sfq_analysis

(* Theorem 1 inside class A while A's bandwidth fluctuates because a
   sibling class B turns on and off at random: the two leaves of A must
   stay within the SFQ fairness bound for their weights. *)
let prop_class_fairness_under_fluctuation =
  QCheck.Test.make ~name:"hsfq: Theorem 1 holds inside a class with fluctuating share"
    ~count:40
    QCheck.(triple (int_range 1 1000) (int_range 1 3) (int_range 1 3))
    (fun (seed, wc, wd) ->
      (* QCheck's shrinker can step outside int_range; clamp. *)
      let wc = Stdlib.max 1 wc and wd = Stdlib.max 1 wd in
      let rng = Sfq_util.Rng.create seed in
      let r_c = 100.0 *. float_of_int wc and r_d = 100.0 *. float_of_int wd in
      let h = Hsfq.create () in
      let a = Hsfq.add_class h ~parent:(Hsfq.root h) ~weight:1.0 in
      let b = Hsfq.add_leaf h ~parent:(Hsfq.root h) ~weight:1.0 (fifo_leaf ()) in
      let c = Hsfq.add_leaf h ~parent:a ~weight:r_c (fifo_leaf ()) in
      let d = Hsfq.add_leaf h ~parent:a ~weight:r_d (fifo_leaf ()) in
      Hsfq.set_classifier h (Hsfq.classifier_by_flow [ (1, c); (2, d); (3, b) ]);
      let sim = Sim.create () in
      let server =
        Server.create sim ~name:"h" ~rate:(Rate_process.constant 1000.0)
          ~sched:(Hsfq.sched h) ()
      in
      let log = Service_log.attach server in
      (* Leaves of A: continuously backlogged. *)
      ignore (Source.greedy sim ~server ~flow:1 ~len:500 ~total:100_000 ~window:4 ~start:0.0 ());
      ignore (Source.greedy sim ~server ~flow:2 ~len:500 ~total:100_000 ~window:4 ~start:0.0 ());
      (* Sibling B: random on/off bursts stealing half the link. *)
      let t = ref 0.0 in
      for _ = 1 to 10 do
        let on = 2.0 +. Sfq_util.Rng.float rng 20.0 in
        let off = 2.0 +. Sfq_util.Rng.float rng 20.0 in
        let at = !t +. off in
        let n = int_of_float (on *. 1.0 (* pkts at ~500 b/s share *)) + 1 in
        Sim.schedule sim ~at (fun () ->
            for seq = 1 to n do
              Server.inject server (pkt ~flow:3 ~seq ~len:500 ())
            done);
        t := at +. on
      done;
      Sim.run sim ~until:200.0;
      let hm = Fairness.exact_h log ~f:1 ~m:2 ~r_f:r_c ~r_m:r_d ~until:(Sim.now sim) in
      let bound = Sfq_core.Bounds.h_sfq ~lmax_f:500.0 ~r_f:r_c ~lmax_m:500.0 ~r_m:r_d in
      hm <= bound +. 1e-6)

(* eq. 65: the virtual server a class sees is FC with the predicted
   parameters. Class A has rate weight r_a on a constant-rate link
   shared with a backlogged sibling; A's aggregate service must satisfy
   W_A(t1,t2) >= share*(t2-t1) - delta' on a grid of intervals. *)
let test_virtual_server_fc () =
  let capacity = 1000.0 in
  let r_a = 400.0 and r_b = 600.0 in
  let len = 500 in
  let h = Hsfq.create () in
  let a = Hsfq.add_leaf h ~parent:(Hsfq.root h) ~weight:r_a (fifo_leaf ()) in
  let b = Hsfq.add_leaf h ~parent:(Hsfq.root h) ~weight:r_b (fifo_leaf ()) in
  Hsfq.set_classifier h (Hsfq.classifier_by_flow [ (1, a); (2, b) ]);
  let sim = Sim.create () in
  let server =
    Server.create sim ~name:"vs" ~rate:(Rate_process.constant capacity) ~sched:(Hsfq.sched h) ()
  in
  let log = Service_log.attach server in
  ignore (Source.greedy sim ~server ~flow:1 ~len ~total:100_000 ~window:4 ~start:0.0 ());
  ignore (Source.greedy sim ~server ~flow:2 ~len ~total:100_000 ~window:4 ~start:0.0 ());
  Sim.run sim ~until:120.0;
  let _, delta' =
    Sfq_core.Bounds.fc_virtual_server ~rate:r_a
      ~sum_lmax:(float_of_int (2 * len))
      ~lmax_f:(float_of_int len) ~capacity ~delta:0.0
  in
  let ok = ref true in
  List.iter
    (fun span ->
      let t1 = ref 1.0 in
      while !t1 +. span < 110.0 do
        let w = Service_log.service log 1 ~t1:!t1 ~t2:(!t1 +. span) in
        if w < (r_a *. span) -. delta' -. 1e-6 then ok := false;
        t1 := !t1 +. (span /. 2.0)
      done)
    [ 0.5; 1.0; 5.0; 20.0 ];
  check_bool "eq. 65 FC parameters hold on grid" true !ok

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)

let prop_conservation =
  QCheck.Test.make ~name:"hsfq: conservation + per-flow FIFO" ~count:150
    QCheck.(list_of_size Gen.(1 -- 60) (pair (int_range 1 4) (int_range 1 999)))
    (fun ops ->
      let h = Hsfq.create () in
      let a = Hsfq.add_class h ~parent:(Hsfq.root h) ~weight:2.0 in
      let l1 = Hsfq.add_leaf h ~parent:a ~weight:1.0 (fifo_leaf ()) in
      let l2 = Hsfq.add_leaf h ~parent:a ~weight:3.0 (fifo_leaf ()) in
      let l3 = Hsfq.add_leaf h ~parent:(Hsfq.root h) ~weight:1.0 (fifo_leaf ()) in
      let l4 = Hsfq.add_leaf h ~parent:(Hsfq.root h) ~weight:0.5 (fifo_leaf ()) in
      Hsfq.set_classifier h (Hsfq.classifier_by_flow [ (1, l1); (2, l2); (3, l3); (4, l4) ]);
      let seqs = Hashtbl.create 8 in
      let injected = ref [] in
      List.iter
        (fun (flow, len) ->
          let seq = (try Hashtbl.find seqs flow with Not_found -> 0) + 1 in
          Hashtbl.replace seqs flow seq;
          injected := (flow, seq) :: !injected;
          Hsfq.enqueue h ~now:0.0 (pkt ~flow ~seq ~len ()))
        ops;
      let out = List.map flow_seq (Sched.drain (Hsfq.sched h) ~now:0.0) in
      let conserved = List.sort compare out = List.sort compare !injected in
      let fifo =
        let last = Hashtbl.create 8 in
        List.for_all
          (fun (flow, seq) ->
            let prev = try Hashtbl.find last flow with Not_found -> 0 in
            Hashtbl.replace last flow seq;
            seq = prev + 1)
          out
      in
      conserved && fifo && Hsfq.size h = 0)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "hsfq"
    [
      ( "construction",
        [
          Alcotest.test_case "no classifier" `Quick test_no_classifier;
          Alcotest.test_case "bad weight" `Quick test_bad_weight;
          Alcotest.test_case "leaf parent rejected" `Quick test_leaf_parent_rejected;
          Alcotest.test_case "internal target rejected" `Quick test_classifier_to_internal_rejected;
          Alcotest.test_case "foreign class rejected" `Quick test_foreign_class_rejected;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "single leaf fifo" `Quick test_single_leaf_fifo;
          Alcotest.test_case "two leaves interleave" `Quick test_two_leaves_interleave;
          Alcotest.test_case "weighted leaves" `Quick test_weighted_leaves;
          Alcotest.test_case "backlog aggregates" `Quick test_backlog_aggregates;
          Alcotest.test_case "peek" `Quick test_peek_matches_dequeue;
          Alcotest.test_case "no stale credit" `Quick test_idle_class_no_stale_credit;
        ] );
      ( "nested",
        [
          Alcotest.test_case "B idle" `Quick test_nested_b_idle;
          Alcotest.test_case "B active" `Quick test_nested_b_active;
          Alcotest.test_case "class vtime" `Quick test_class_vtime_accessor;
        ] );
      ( "three levels",
        [
          Alcotest.test_case "recursive shares" `Quick test_three_levels;
          Alcotest.test_case "drains" `Quick test_three_levels_drain;
        ] );
      ("mixed", [ Alcotest.test_case "Delay EDD leaf" `Quick test_edd_leaf ]);
      ( "guarantees",
        [
          q prop_class_fairness_under_fluctuation;
          Alcotest.test_case "eq. 65 virtual server" `Quick test_virtual_server_fc;
        ] );
      ("properties", [ q prop_conservation ]);
    ]
