test/test_base.ml: Alcotest Flow_table List Packet Queue Sched Sfq_base String Weights
