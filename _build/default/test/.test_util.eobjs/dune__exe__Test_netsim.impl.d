test/test_netsim.ml: Alcotest Array Float Hashtbl List Mpeg Packet QCheck QCheck_alcotest Rate_process Rng Sched Server Sfq_base Sfq_netsim Sfq_sched Sfq_util Sim Source Tandem Tcp Trace
