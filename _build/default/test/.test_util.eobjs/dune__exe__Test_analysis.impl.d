test/test_analysis.ml: Alcotest Csv_out Fairness Filename Float List Packet Printf Rate_process Server Service_log Sfq_analysis Sfq_base Sfq_netsim Sfq_sched Sfq_util Sim Sys
