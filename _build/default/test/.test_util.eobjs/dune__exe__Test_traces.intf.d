test/test_traces.mli:
