test/test_cpu.ml: Alcotest Cpu_sched Float Hashtbl Rate_process Sfq_cpu Sfq_netsim Sfq_util Sim Stdlib
