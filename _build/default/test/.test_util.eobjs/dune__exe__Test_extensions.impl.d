test/test_extensions.ml: Admission Alcotest Array Float Gen Hashtbl List Packet QCheck QCheck_alcotest Sched Sfq_base Sfq_core Sfq_experiments Sfq_netsim Sfq_sched Shaper Sim Source Weights Wf2q Wfq
