test/test_fair_airport.mli:
