test/test_traces.ml: Alcotest Drr Fifo Fqs List Packet Scfq Sched Sfq_base Sfq_core Sfq_sched Virtual_clock Weights Wf2q Wfq Wrr
