test/test_util.ml: Alcotest Array Ds_heap Float Gen Histogram List Printf QCheck QCheck_alcotest Rng Running_min Sfq_util Stats String Text_table Vec
