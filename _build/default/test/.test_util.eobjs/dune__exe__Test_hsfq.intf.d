test/test_hsfq.mli:
