test/test_sfq.mli:
