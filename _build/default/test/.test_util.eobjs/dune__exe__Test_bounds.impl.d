test/test_bounds.ml: Alcotest Bounds Sfq_core
