(* Tests for the core SFQ scheduler: tag computation (eqs. 4-5),
   virtual time evolution (§2 steps 2-3), generalized per-packet rates
   (eq. 36), tie-breaking, and Theorem 1's fairness bound as a
   property over randomized workloads on randomized variable-rate
   servers. *)

open Sfq_base
open Sfq_core
open Sfq_netsim
open Sfq_analysis

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let pkt ?rate ?(born = 0.0) ~flow ~seq ~len () = Packet.make ?rate ~flow ~seq ~len ~born ()
let flow_seq p = (p.Packet.flow, p.Packet.seq)

(* ------------------------------------------------------------------ *)
(* Tag computation (eqs. 4-5)                                           *)

let test_first_packet_tags () =
  let s = Sfq.create (Weights.uniform 2.0) in
  let stag, ftag = Sfq.enqueue_tagged s ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:8 ()) in
  check_float "S = v = 0" 0.0 stag;
  check_float "F = S + l/r" 4.0 ftag

let test_backlogged_chain () =
  let s = Sfq.create (Weights.uniform 2.0) in
  let _ = Sfq.enqueue_tagged s ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:8 ()) in
  let stag, ftag = Sfq.enqueue_tagged s ~now:0.0 (pkt ~flow:1 ~seq:2 ~len:4 ()) in
  check_float "S2 = F1" 4.0 stag;
  check_float "F2 = S2 + l2/r" 6.0 ftag

let test_vtime_is_start_of_in_service () =
  let s = Sfq.create (Weights.uniform 1.0) in
  Sfq.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:10 ());
  Sfq.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:2 ~len:10 ());
  check_float "v before service" 0.0 (Sfq.vtime s);
  ignore (Sfq.dequeue s ~now:0.0);
  check_float "v = S(p1) = 0" 0.0 (Sfq.vtime s);
  ignore (Sfq.dequeue s ~now:0.0);
  check_float "v = S(p2) = 10" 10.0 (Sfq.vtime s)

let test_vtime_not_bumped_while_serving () =
  (* The queue being empty while a packet is in service must NOT end
     the busy period (the Example-1 regression this library once had):
     packets arriving during that service see v = S(in service). *)
  let s = Sfq.create (Weights.uniform 1.0) in
  Sfq.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:10 ());
  ignore (Sfq.dequeue s ~now:0.0);
  (* queue now empty, packet conceptually in service; new arrival: *)
  let stag, _ = Sfq.enqueue_tagged s ~now:0.0 (pkt ~flow:2 ~seq:1 ~len:10 ()) in
  check_float "S = v = 0, not F(p1)" 0.0 stag

let test_busy_period_end_bumps_vtime () =
  let s = Sfq.create (Weights.uniform 1.0) in
  Sfq.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:10 ());
  ignore (Sfq.dequeue s ~now:0.0);
  (* Server polls empty queue: busy period over. *)
  check_bool "idle poll" true (Sfq.dequeue s ~now:1.0 = None);
  check_float "v = max served finish" 10.0 (Sfq.vtime s);
  (* A reactivating flow starts at the bumped v. *)
  let stag, _ = Sfq.enqueue_tagged s ~now:2.0 (pkt ~flow:2 ~seq:1 ~len:10 ()) in
  check_float "new busy period start" 10.0 stag

let test_orders_by_start_tag () =
  let s = Sfq.create (Weights.of_list [ (1, 1.0); (2, 2.0) ]) in
  Sfq.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:6 ());
  Sfq.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:2 ~len:6 ());
  Sfq.enqueue s ~now:0.0 (pkt ~flow:2 ~seq:1 ~len:6 ());
  Sfq.enqueue s ~now:0.0 (pkt ~flow:2 ~seq:2 ~len:6 ());
  (* S: flow1 -> 0, 6; flow2 -> 0, 3. Order: (1,1), (2,1) [tie, arrival],
     (2,2) S=3, (1,2) S=6. *)
  let order = List.map flow_seq (Sched.drain (Sfq.sched s) ~now:0.0) in
  Alcotest.(check (list (pair int int))) "start order"
    [ (1, 1); (2, 1); (2, 2); (1, 2) ]
    order

let test_generalized_rate_override () =
  (* §2.3, eq. 36: finish tag uses the per-packet rate. *)
  let s = Sfq.create (Weights.uniform 1.0) in
  let _, f1 = Sfq.enqueue_tagged s ~now:0.0 (pkt ~rate:4.0 ~flow:1 ~seq:1 ~len:8 ()) in
  check_float "F uses packet rate" 2.0 f1;
  let s2, f2 = Sfq.enqueue_tagged s ~now:0.0 (pkt ~flow:1 ~seq:2 ~len:8 ()) in
  check_float "chains from override" 2.0 s2;
  check_float "flow weight resumes" 10.0 f2

let test_tie_break_low_rate () =
  let w = Weights.of_list [ (1, 100.0); (2, 1.0) ] in
  let s = Sfq.create ~tie:(Sfq_sched.Tag_queue.Low_rate (fun f -> Weights.get w f)) w in
  Sfq.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:100 ());
  Sfq.enqueue s ~now:0.0 (pkt ~flow:2 ~seq:1 ~len:1 ());
  (* Both start tags 0; low-rate flow 2 preferred. *)
  check_bool "low-rate first" true
    (match Sfq.dequeue s ~now:0.0 with Some p -> p.Packet.flow = 2 | None -> false)

let test_backlog_and_size () =
  let s = Sfq.create (Weights.uniform 1.0) in
  Sfq.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:1 ());
  Sfq.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:2 ~len:1 ());
  Sfq.enqueue s ~now:0.0 (pkt ~flow:2 ~seq:1 ~len:1 ());
  check_int "size" 3 (Sfq.size s);
  check_int "backlog 1" 2 (Sfq.backlog s 1);
  check_int "backlog 2" 1 (Sfq.backlog s 2);
  ignore (Sfq.dequeue s ~now:0.0);
  check_int "size after" 2 (Sfq.size s)

let test_peek_matches_dequeue () =
  let s = Sfq.create (Weights.uniform 1.0) in
  Sfq.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:5 ());
  Sfq.enqueue s ~now:0.0 (pkt ~flow:2 ~seq:1 ~len:3 ());
  let peeked = Sfq.peek s in
  let popped = Sfq.dequeue s ~now:0.0 in
  check_bool "same" true
    (match (peeked, popped) with Some a, Some b -> flow_seq a = flow_seq b | _ -> false)

let test_reactivation_uses_old_finish () =
  (* A flow that idles mid-busy-period resumes at max(v, F_prev). *)
  let s = Sfq.create (Weights.uniform 1.0) in
  Sfq.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:100 ());
  Sfq.enqueue s ~now:0.0 (pkt ~flow:2 ~seq:1 ~len:10 ());
  ignore (Sfq.dequeue s ~now:0.0);
  (* in service: flow 1 (S=0); v=0 *)
  ignore (Sfq.dequeue s ~now:0.0);
  (* flow 2 served; v = 0 still (its S=0) *)
  (* Flow 2 returns while flow 1's F=100 not reached: S = max(0, 10). *)
  let stag, _ = Sfq.enqueue_tagged s ~now:0.0 (pkt ~flow:2 ~seq:2 ~len:10 ()) in
  check_float "resume at F_prev" 10.0 stag

(* ------------------------------------------------------------------ *)
(* Theorem 1 as a property                                              *)

(* Random workload of two flows with random weights and packet sizes on
   a random fluctuating server; the empirical H must stay within
   l_f^max/r_f + l_m^max/r_m (plus float tolerance). *)
let prop_theorem1 =
  let gen =
    QCheck.Gen.(
      quad (int_range 1 1000) (* seed *)
        (int_range 20 80) (* packets per flow *)
        (int_range 1 4) (* weight ratio f *)
        (int_range 1 4) (* weight ratio m *))
  in
  QCheck.Test.make ~name:"Theorem 1: SFQ fairness bound on variable-rate servers"
    ~count:60 (QCheck.make gen ~print:QCheck.Print.(quad int int int int))
    (fun (seed, n, wf, wm) ->
      let rng = Sfq_util.Rng.create seed in
      let r_f = 10.0 *. float_of_int wf and r_m = 10.0 *. float_of_int wm in
      let weights = Weights.of_list [ (1, r_f); (2, r_m) ] in
      let sim = Sim.create () in
      let rate =
        Rate_process.fc_random ~c:100.0 ~delta:500.0 ~seg:1.0 ~spread:80.0 ~rng
      in
      let server = Server.create sim ~name:"t1" ~rate ~sched:(Sfq.sched (Sfq.create weights)) () in
      let log = Service_log.attach server in
      let lmax_f = ref 0 and lmax_m = ref 0 in
      (* Random per-packet lengths; both flows dumped at t=0 so they
         stay backlogged throughout. *)
      Sim.schedule sim ~at:0.0 (fun () ->
          for seq = 1 to n do
            let lf = 100 + Sfq_util.Rng.int rng 900 in
            let lm = 100 + Sfq_util.Rng.int rng 900 in
            lmax_f := Stdlib.max !lmax_f lf;
            lmax_m := Stdlib.max !lmax_m lm;
            Server.inject server (pkt ~flow:1 ~seq ~len:lf ());
            Server.inject server (pkt ~flow:2 ~seq ~len:lm ())
          done);
      Sim.run_all sim ();
      let h = Fairness.exact_h log ~f:1 ~m:2 ~r_f ~r_m ~until:(Sim.now sim) in
      let bound =
        Bounds.h_sfq ~lmax_f:(float_of_int !lmax_f) ~r_f ~lmax_m:(float_of_int !lmax_m)
          ~r_m
      in
      h <= bound +. 1e-6)

(* Conservation under randomized interleaving of enqueues and dequeues
   (not just bulk drain). *)
let prop_interleaved_conservation =
  QCheck.Test.make ~name:"SFQ: interleaved enqueue/dequeue conservation" ~count:200
    QCheck.(list (pair bool (pair (int_range 1 3) (int_range 1 500))))
    (fun ops ->
      let s = Sfq.create (Weights.uniform 1.0) in
      let seqs = Hashtbl.create 8 in
      let injected = ref 0 and popped = ref 0 in
      let now = ref 0.0 in
      List.iter
        (fun (is_pop, (flow, len)) ->
          now := !now +. 0.1;
          if is_pop then begin
            match Sfq.dequeue s ~now:!now with Some _ -> incr popped | None -> ()
          end
          else begin
            let seq = (try Hashtbl.find seqs flow with Not_found -> 0) + 1 in
            Hashtbl.replace seqs flow seq;
            Sfq.enqueue s ~now:!now (pkt ~flow ~seq ~len ());
            incr injected
          end)
        ops;
      popped := !popped + List.length (Sched.drain (Sfq.sched s) ~now:!now);
      !injected = !popped && Sfq.size s = 0)

(* Start tags are non-decreasing in the order packets are served
   during one busy period (the defining invariant of SFQ order). *)
let prop_service_order_monotone =
  QCheck.Test.make ~name:"SFQ: served start tags are non-decreasing" ~count:150
    QCheck.(list_of_size Gen.(2 -- 50) (pair (int_range 1 4) (int_range 1 999)))
    (fun ops ->
      let s = Sfq.create (Weights.uniform 10.0) in
      let seqs = Hashtbl.create 8 in
      let tags = Hashtbl.create 64 in
      List.iter
        (fun (flow, len) ->
          let seq = (try Hashtbl.find seqs flow with Not_found -> 0) + 1 in
          Hashtbl.replace seqs flow seq;
          let stag, _ = Sfq.enqueue_tagged s ~now:0.0 (pkt ~flow ~seq ~len ()) in
          Hashtbl.replace tags (flow, seq) stag)
        ops;
      let drained = Sched.drain (Sfq.sched s) ~now:0.0 in
      let rec monotone prev = function
        | [] -> true
        | p :: rest ->
          let stag = Hashtbl.find tags (flow_seq p) in
          stag >= prev -. 1e-12 && monotone stag rest
      in
      monotone neg_infinity drained)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "sfq"
    [
      ( "tags",
        [
          Alcotest.test_case "first packet" `Quick test_first_packet_tags;
          Alcotest.test_case "backlogged chain" `Quick test_backlogged_chain;
          Alcotest.test_case "generalized rate" `Quick test_generalized_rate_override;
          Alcotest.test_case "reactivation uses F_prev" `Quick test_reactivation_uses_old_finish;
        ] );
      ( "vtime",
        [
          Alcotest.test_case "v = S(in service)" `Quick test_vtime_is_start_of_in_service;
          Alcotest.test_case "not bumped while serving" `Quick test_vtime_not_bumped_while_serving;
          Alcotest.test_case "busy period end" `Quick test_busy_period_end_bumps_vtime;
        ] );
      ( "order",
        [
          Alcotest.test_case "by start tag" `Quick test_orders_by_start_tag;
          Alcotest.test_case "low-rate tie break" `Quick test_tie_break_low_rate;
          Alcotest.test_case "backlog/size" `Quick test_backlog_and_size;
          Alcotest.test_case "peek" `Quick test_peek_matches_dequeue;
        ] );
      ( "properties",
        [ q prop_theorem1; q prop_interleaved_conservation; q prop_service_order_monotone ] );
    ]
