(* Integration tests: run every experiment of DESIGN.md's index (at
   reduced scale where a knob exists) and assert the paper's
   qualitative claims — who wins, by roughly what factor, which bounds
   hold. *)

open Sfq_experiments

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* E1: Example 1. *)
let test_ex1 () =
  let r = Ex1_wfq_unfair.run () in
  (* The paper's exact service order. *)
  Alcotest.(check (list (pair int int)))
    "order" [ (1, 1); (2, 1); (2, 2); (2, 3); (1, 2) ] r.Ex1_wfq_unfair.wfq_order;
  check_bool "WFQ ~2x lower bound" true
    (r.Ex1_wfq_unfair.wfq_h > 1.9 *. r.Ex1_wfq_unfair.h_lower_bound);
  check_bool "SFQ within Theorem 1" true
    (r.Ex1_wfq_unfair.sfq_h <= r.Ex1_wfq_unfair.h_sfq_bound +. 1e-9);
  check_bool "SFQ at most half of WFQ's H" true
    (r.Ex1_wfq_unfair.sfq_h <= 0.51 *. r.Ex1_wfq_unfair.wfq_h)

(* E2: Example 2. *)
let test_ex2 () =
  let r = Ex2_variable_rate.run ~c:10.0 () in
  Alcotest.(check (float 1e-6)) "v(1) = C" 10.0 r.Ex2_variable_rate.wfq_v1;
  check_bool "WFQ starves the late flow" true
    (r.Ex2_variable_rate.wfq_wm <= 1.0
    && r.Ex2_variable_rate.wfq_wf >= r.Ex2_variable_rate.c -. 1.5);
  check_bool "SFQ splits evenly" true
    (Float.abs (r.Ex2_variable_rate.sfq_wf -. r.Ex2_variable_rate.sfq_wm) <= 1.0)

(* E3: Fig 1(b). *)
let test_fig1 () =
  let r = Fig1_tcp_fairness.run () in
  let sfq = r.Fig1_tcp_fairness.sfq and wfq = r.Fig1_tcp_fairness.wfq_real in
  (* SFQ: near-even split once source 3 starts. *)
  check_bool "SFQ roughly fair" true
    (sfq.Fig1_tcp_fairness.src3_window > sfq.Fig1_tcp_fairness.src2_window / 2);
  (* WFQ (practical clock): the late flow is starved by a wide margin. *)
  check_bool "WFQ starves src3" true
    (wfq.Fig1_tcp_fairness.src3_window * 4 < wfq.Fig1_tcp_fairness.src2_window);
  check_bool "src3 barely delivers early on under WFQ" true
    (wfq.Fig1_tcp_fairness.src3_first_435ms < sfq.Fig1_tcp_fairness.src3_first_435ms / 2);
  check_bool "video near 1.21 Mb/s" true
    (r.Fig1_tcp_fairness.video_rate_bps > 1.0e6 && r.Fig1_tcp_fairness.video_rate_bps < 1.45e6)

(* E4: Table 1. *)
let test_table1 () =
  let r = Table1_fairness.run ~quick:true () in
  let bound = r.Table1_fairness.h_bound_equal in
  let row name =
    List.find (fun (row : Table1_fairness.row) -> row.disc = name) r.Table1_fairness.rows
  in
  let sfq = row "SFQ" and wfq = row "WFQ" and vc = row "VirtualClock" and drr = row "DRR" in
  let scfq = row "SCFQ" in
  (* SFQ within Theorem 1 everywhere. *)
  check_bool "sfq backlogged" true (sfq.h_backlogged <= bound +. 1e-6);
  check_bool "sfq variable" true (sfq.h_variable <= bound +. 1e-6);
  check_bool "sfq catch-up" true (sfq.h_catch_up <= bound +. 1e-6);
  check_bool "sfq high-weight" true
    (sfq.h_high_weight <= r.Table1_fairness.h_bound_high +. 1e-6);
  (* SCFQ too (same measure). *)
  check_bool "scfq variable" true (scfq.h_variable <= bound +. 1e-6);
  (* WFQ breaks on the variable-rate scenario. *)
  check_bool "wfq variable-rate blow-up" true (wfq.h_variable > 2.0 *. bound);
  (* Virtual Clock breaks on catch-up. *)
  check_bool "vc catch-up blow-up" true (vc.h_catch_up > 2.0 *. bound);
  (* DRR breaks on high weights (the 50x example). *)
  check_bool "drr high-weight blow-up" true
    (drr.h_high_weight > 10.0 *. r.Table1_fairness.h_bound_high)

(* E5: Fig 2(a). *)
let test_fig2a () =
  let r = Fig2a_delay_reduction.run ~quick:true () in
  (* Closed form: the reduction shrinks as flows are added (eq. 59) and
     grows as the rate drops. *)
  let find n rate =
    List.find
      (fun (p : Fig2a_delay_reduction.point) -> p.nflows = n && p.rate = rate)
      r.Fig2a_delay_reduction.closed_form
  in
  check_bool "more flows, less gain" true ((find 10 64.0e3).delta_ms > (find 90 64.0e3).delta_ms);
  check_bool "lower rate, more gain" true ((find 50 32.0e3).delta_ms > (find 50 256.0e3).delta_ms);
  (* Simulated gap within 20% of eq. 59. *)
  List.iter
    (fun (p : Fig2a_delay_reduction.sim_point) ->
      let measured = p.wfq_max_ms -. p.sfq_max_ms in
      check_bool "measured near predicted" true
        (Float.abs (measured -. p.predicted_delta_ms) < 0.2 *. p.predicted_delta_ms +. 0.5))
    r.Fig2a_delay_reduction.simulated

(* E6: Fig 2(b), scaled down. *)
let test_fig2b () =
  let r = Fig2b_avg_delay.run ~duration:30.0 () in
  (* At ~80% utilization WFQ's average delay for low-throughput flows
     is substantially higher (paper: 53%). *)
  let p80 =
    List.find (fun (p : Fig2b_avg_delay.point) -> p.n_low = 3) r.Fig2b_avg_delay.points
  in
  check_bool "WFQ worse at 80%" true (p80.ratio > 1.2);
  (* And SFQ is never worse on average across the sweep. *)
  List.iter
    (fun (p : Fig2b_avg_delay.point) ->
      check_bool "sfq <= wfq" true (p.sfq_avg_ms <= p.wfq_avg_ms +. 0.5))
    r.Fig2b_avg_delay.points

(* E7: SCFQ gap. *)
let test_scfq_gap () =
  let r = Scfq_delay_gap.run () in
  check_bool "gap ~25ms" true
    (r.Scfq_delay_gap.gap_one_server_ms > 24.0 && r.Scfq_delay_gap.gap_one_server_ms < 25.5);
  check_bool "5x over 5 servers" true
    (Float.abs (r.Scfq_delay_gap.gap_five_servers_ms -. (5.0 *. r.Scfq_delay_gap.gap_one_server_ms))
    < 1e-6);
  check_bool "SCFQ within its bound" true
    (r.Scfq_delay_gap.scfq_max_ms <= r.Scfq_delay_gap.scfq_bound_ms +. 1e-6);
  check_bool "SFQ within Theorem 4" true
    (r.Scfq_delay_gap.sfq_max_ms <= r.Scfq_delay_gap.sfq_bound_ms +. 1e-6);
  check_bool "SCFQ much worse than SFQ" true
    (r.Scfq_delay_gap.scfq_max_ms > 10.0 *. r.Scfq_delay_gap.sfq_max_ms)

(* E8: Fig 3(b), scaled down. *)
let test_fig3 () =
  let r = Fig3_link_sharing.run ~pkts_per_conn:1200 () in
  (match r.Fig3_link_sharing.phases with
  | [ p1; p2; _p3 ] ->
    let near x y = Float.abs (x -. y) < 0.25 *. y in
    (* Phase 1: 1:2:3. *)
    check_bool "phase1 2:1" true (near p1.rates_mbps.(1) (2.0 *. p1.rates_mbps.(0)));
    check_bool "phase1 3:1" true (near p1.rates_mbps.(2) (3.0 *. p1.rates_mbps.(0)));
    (* Phase 2: conn 3 done; 1:2 among survivors. *)
    check_bool "phase2 2:1" true (near p2.rates_mbps.(1) (2.0 *. p2.rates_mbps.(0)))
  | _ -> Alcotest.fail "expected three phases");
  (* Weight-3 connection finishes first, weight-1 last. *)
  let f = r.Fig3_link_sharing.finish_times in
  check_bool "finish order" true (f.(2) < f.(1) && f.(1) < f.(0))

(* E9: hierarchical sharing. *)
let test_hier () =
  let r = Hier_sharing.run () in
  let near x y = Float.abs (x -. y) < 0.05 in
  check_bool "phase1 C" true (near r.Hier_sharing.phase1.c 0.5);
  check_bool "phase1 D" true (near r.Hier_sharing.phase1.d 0.5);
  check_bool "phase2 C" true (near r.Hier_sharing.phase2.c 0.25);
  check_bool "phase2 D" true (near r.Hier_sharing.phase2.d 0.25);
  check_bool "phase2 B" true (near r.Hier_sharing.phase2.b 0.5);
  check_bool "phase3 C" true (near r.Hier_sharing.phase3.c 0.5)

(* E10: delay shifting. *)
let test_delay_shift () =
  let r = Delay_shifting.run () in
  check_bool "eq 73 satisfied" true r.Delay_shifting.eq73_satisfied;
  check_bool "favoured bound drops" true
    (r.Delay_shifting.shifted_bound_fav_ms < r.Delay_shifting.flat_bound_ms);
  check_bool "other bound rises" true
    (r.Delay_shifting.shifted_bound_other_ms > r.Delay_shifting.flat_bound_ms);
  (* All measurements stay within their bounds. *)
  check_bool "flat fav within" true
    (r.Delay_shifting.flat_measured_fav_ms <= r.Delay_shifting.flat_bound_ms +. 1e-6);
  check_bool "shifted fav within" true
    (r.Delay_shifting.shifted_measured_fav_ms <= r.Delay_shifting.shifted_bound_fav_ms +. 1e-6);
  check_bool "shifted other within" true
    (r.Delay_shifting.shifted_measured_other_ms <= r.Delay_shifting.shifted_bound_other_ms +. 1e-6)

(* E11: Theorems 2/3/4/5. *)
let test_bounds () =
  let r = Bound_validation.run () in
  check_bool "Theorem 2 held" true (r.Bound_validation.thm2_worst_slack_bits >= 0.0);
  check_bool "Theorem 4 held" true (r.Bound_validation.thm4_worst_slack_ms >= 0.0);
  check_int "checked many packets" 30005 r.Bound_validation.thm4_packets;
  (* The EBF tail is non-increasing in gamma. *)
  let rec non_increasing = function
    | (a : Bound_validation.ebf_point) :: (b :: _ as rest) ->
      a.violations >= b.violations && non_increasing rest
    | _ -> true
  in
  check_bool "EBF tail decays" true (non_increasing r.Bound_validation.ebf_tail)

(* E12: end-to-end. *)
let test_e2e () =
  let r = End_to_end.run () in
  List.iter
    (fun (p : End_to_end.point) ->
      check_bool "measured below bound" true (p.measured_max_ms <= p.bound_ms +. 1e-6))
    r.End_to_end.points;
  (* Both grow with K. *)
  let ms = List.map (fun (p : End_to_end.point) -> p.measured_max_ms) r.End_to_end.points in
  check_bool "grows with K" true (List.nth ms 4 > List.nth ms 0)

(* E13: Fair Airport. *)
let test_fair_airport () =
  let r = Fair_airport_exp.run () in
  check_bool "FA within Theorem 9" true
    (r.Fair_airport_exp.fa_max_ms <= r.Fair_airport_exp.wfq_bound_ms +. 1e-6);
  check_bool "FA fairness within Theorem 8" true
    (r.Fair_airport_exp.fa_h <= r.Fair_airport_exp.fa_h_bound +. 1e-9);
  check_bool "both queues used" true
    (r.Fair_airport_exp.gsq_served > 0 && r.Fair_airport_exp.asq_served > 0)

let () =
  Alcotest.run "experiments"
    [
      ( "paper",
        [
          Alcotest.test_case "E1 example 1" `Quick test_ex1;
          Alcotest.test_case "E2 example 2" `Quick test_ex2;
          Alcotest.test_case "E3 fig 1b" `Slow test_fig1;
          Alcotest.test_case "E4 table 1" `Quick test_table1;
          Alcotest.test_case "E5 fig 2a" `Quick test_fig2a;
          Alcotest.test_case "E6 fig 2b" `Slow test_fig2b;
          Alcotest.test_case "E7 scfq gap" `Quick test_scfq_gap;
          Alcotest.test_case "E8 fig 3b" `Quick test_fig3;
          Alcotest.test_case "E9 hierarchy" `Quick test_hier;
          Alcotest.test_case "E10 delay shifting" `Quick test_delay_shift;
          Alcotest.test_case "E11 bounds" `Slow test_bounds;
          Alcotest.test_case "E12 end-to-end" `Quick test_e2e;
          Alcotest.test_case "E13 fair airport" `Quick test_fair_airport;
        ] );
    ]
