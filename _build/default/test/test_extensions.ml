(* Tests for the extension modules: WF2Q, the leaky-bucket shaper,
   admission control, and the two extra experiments (priority residual,
   tie-break ablation). *)

open Sfq_base
open Sfq_core
open Sfq_sched
open Sfq_netsim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let pkt ~flow ~seq ~len () = Packet.make ~flow ~seq ~len ~born:0.0 ()
let flow_seq p = (p.Packet.flow, p.Packet.seq)

(* ------------------------------------------------------------------ *)
(* WF2Q                                                                 *)

let test_wf2q_eligibility () =
  (* Two packets of a weight-1 flow at t=0 on assumed capacity 1:
     S = 0 and 10. At t=0 only the first is eligible; WFQ would send
     either (same F order), but WF2Q must not send the second before
     the fluid system reaches its start tag. A competing flow's packet
     with larger F but eligible S goes first. *)
  let w = Weights.uniform 1.0 in
  let s = Wf2q.create ~capacity:1.0 w in
  Wf2q.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:10 ());
  Wf2q.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:2 ~len:10 ());
  Wf2q.enqueue s ~now:0.0 (pkt ~flow:2 ~seq:1 ~len:15 ());
  (* F tags: 1.1 -> 10; 1.2 -> 20; 2.1 -> 15. At v=0, eligible = {1.1
     (S=0), 2.1 (S=0)}: minimum F among them is 1.1. Then 2.1 (F=15)
     must precede 1.2 (F=20) even though WFQ ties differently: 1.2
     becomes eligible only at v=10. *)
  let a = Wf2q.dequeue s ~now:0.0 in
  let b = Wf2q.dequeue s ~now:0.0 in
  let c = Wf2q.dequeue s ~now:0.0 in
  check_bool "first" true (match a with Some p -> flow_seq p = (1, 1) | None -> false);
  check_bool "eligible F order" true (match b with Some p -> flow_seq p = (2, 1) | None -> false);
  check_bool "last" true (match c with Some p -> flow_seq p = (1, 2) | None -> false)

let test_wf2q_work_conserving () =
  (* A packet whose start tag is in the fluid future must still be
     served rather than idling the server. *)
  let w = Weights.uniform 1.0 in
  let s = Wf2q.create ~capacity:1.0 w in
  Wf2q.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:10 ());
  ignore (Wf2q.dequeue s ~now:0.0);
  Wf2q.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:2 ~len:10 ());
  (* S(1.2) = 10 > v(0) = 0: not eligible, but nothing else queued. *)
  check_bool "served anyway" true (Wf2q.dequeue s ~now:0.0 <> None)

let test_wf2q_no_example1_burst () =
  (* Example 1's workload: WFQ serves m's full backlog inside a window
     where f gets nothing; WF2Q's eligibility forbids the m burst. *)
  let w = Weights.uniform 1.0 in
  let run_disc make =
    let s = make () in
    List.iter
      (fun (flow, seq, len) -> s.Sched.enqueue ~now:0.0 (pkt ~flow ~seq ~len ()))
      [ (1, 1, 9999); (1, 2, 10000); (2, 1, 10000); (2, 2, 4999); (2, 3, 4999) ];
    List.map flow_seq (Sched.drain s ~now:0.0)
  in
  let wfq = run_disc (fun () -> Wfq.sched (Wfq.create ~capacity:2.0 w)) in
  let wf2q = run_disc (fun () -> Wf2q.sched (Wf2q.create ~capacity:2.0 w)) in
  (* WFQ: the paper's pathological order. *)
  Alcotest.(check (list (pair int int)))
    "wfq order" [ (1, 1); (2, 1); (2, 2); (2, 3); (1, 2) ] wfq;
  (* WF2Q: flow 1's second packet interleaves before m's tail. *)
  check_bool "wf2q interleaves" true (wf2q <> wfq);
  let m_run =
    (* longest consecutive run of flow-2 packets *)
    let best = ref 0 and cur = ref 0 in
    List.iter
      (fun (f, _) ->
        if f = 2 then incr cur else cur := 0;
        if !cur > !best then best := !cur)
      wf2q;
    !best
  in
  check_bool "no 3-packet burst" true (m_run <= 2)

let test_wf2q_size_backlog () =
  let s = Wf2q.create ~capacity:10.0 (Weights.uniform 1.0) in
  Wf2q.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:1 ~len:10 ());
  Wf2q.enqueue s ~now:0.0 (pkt ~flow:1 ~seq:2 ~len:10 ());
  check_int "size" 2 (Wf2q.size s);
  check_int "backlog" 2 (Wf2q.backlog s 1);
  ignore (Wf2q.dequeue s ~now:0.0);
  check_int "after" 1 (Wf2q.size s)

let prop_wf2q_conservation =
  QCheck.Test.make ~name:"wf2q: conservation + per-flow FIFO" ~count:150
    QCheck.(list_of_size Gen.(1 -- 60) (pair (int_range 1 4) (int_range 1 999)))
    (fun ops ->
      let s = Wf2q.sched (Wf2q.create ~capacity:1000.0 (Weights.uniform 10.0)) in
      let seqs = Hashtbl.create 8 in
      let injected = ref [] in
      List.iteri
        (fun i (flow, len) ->
          let seq = (try Hashtbl.find seqs flow with Not_found -> 0) + 1 in
          Hashtbl.replace seqs flow seq;
          injected := (flow, seq) :: !injected;
          s.Sched.enqueue ~now:(0.01 *. float_of_int i)
            (Packet.make ~flow ~seq ~len ~born:0.0 ()))
        ops;
      let out = List.map flow_seq (Sched.drain s ~now:1000.0) in
      let conserved = List.sort compare out = List.sort compare !injected in
      let fifo =
        let last = Hashtbl.create 8 in
        List.for_all
          (fun (flow, seq) ->
            let prev = try Hashtbl.find last flow with Not_found -> 0 in
            Hashtbl.replace last flow seq;
            seq = prev + 1)
          out
      in
      conserved && fifo)

(* ------------------------------------------------------------------ *)
(* Shaper                                                               *)

let test_shaper_passes_conforming () =
  let sim = Sim.create () in
  let out = ref [] in
  let shaper =
    Shaper.create sim ~sigma:1000.0 ~rho:100.0 ~target:(fun p ->
        out := (Sim.now sim, p.Packet.seq) :: !out)
  in
  (* One small packet with a full bucket: released immediately. *)
  Sim.schedule sim ~at:0.0 (fun () -> Shaper.inject shaper (pkt ~flow:1 ~seq:1 ~len:500 ()));
  Sim.run_all sim ();
  (match !out with
  | [ (t, 1) ] -> check_float "immediate" 0.0 t
  | _ -> Alcotest.fail "expected one release")

let test_shaper_delays_burst () =
  let sim = Sim.create () in
  let out = ref [] in
  let shaper =
    Shaper.create sim ~sigma:1000.0 ~rho:100.0 ~target:(fun p ->
        out := (Sim.now sim, p.Packet.seq) :: !out)
  in
  (* Burst of 3 x 500 bits against a 1000-bit bucket at 100 b/s:
     two leave at t=0, the third waits 5 s for tokens. *)
  Sim.schedule sim ~at:0.0 (fun () ->
      for seq = 1 to 3 do
        Shaper.inject shaper (pkt ~flow:1 ~seq ~len:500 ())
      done);
  Sim.run_all sim ();
  (match List.rev !out with
  | [ (t1, 1); (t2, 2); (t3, 3) ] ->
    check_float "first" 0.0 t1;
    check_float "second" 0.0 t2;
    check_bool "third waits ~5s" true (Float.abs (t3 -. 5.0) < 1e-6)
  | _ -> Alcotest.fail "expected three releases");
  check_int "released counter" 3 (Shaper.released shaper)

let test_shaper_output_conforms () =
  (* Property-style: a violent on-off source through the shaper never
     exceeds sigma + rho*(t2-t1) bits in any output window. *)
  let sim = Sim.create () in
  let sigma = 5000.0 and rho = 1000.0 and len = 1000 in
  let times = ref [] in
  let shaper =
    Shaper.create sim ~sigma ~rho ~target:(fun _ -> times := Sim.now sim :: !times)
  in
  ignore
    (Source.on_off sim ~target:(Shaper.inject shaper) ~flow:1 ~len ~peak_rate:50_000.0
       ~on:0.5 ~off:0.5 ~start:0.0 ~stop:20.0);
  Sim.run_all sim ();
  let arr = Array.of_list (List.rev !times) in
  let n = Array.length arr in
  check_bool "some output" true (n > 10);
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let bits = float_of_int ((j - i + 1) * len) in
      if bits > sigma +. (rho *. (arr.(j) -. arr.(i))) +. float_of_int len +. 1e-6 then
        ok := false
    done
  done;
  check_bool "(sigma, rho) conformance" true !ok

let test_shaper_fifo_order () =
  let sim = Sim.create () in
  let out = ref [] in
  let shaper =
    Shaper.create sim ~sigma:2000.0 ~rho:1000.0 ~target:(fun p -> out := p.Packet.seq :: !out)
  in
  Sim.schedule sim ~at:0.0 (fun () ->
      for seq = 1 to 6 do
        Shaper.inject shaper (pkt ~flow:1 ~seq ~len:1000 ())
      done);
  Sim.run_all sim ();
  Alcotest.(check (list int)) "order preserved" [ 1; 2; 3; 4; 5; 6 ] (List.rev !out)

let test_shaper_validation () =
  let sim = Sim.create () in
  check_bool "bad params" true
    (try
       ignore (Shaper.create sim ~sigma:0.0 ~rho:1.0 ~target:(fun _ -> ()));
       false
     with Invalid_argument _ -> true);
  let shaper = Shaper.create sim ~sigma:100.0 ~rho:1.0 ~target:(fun _ -> ()) in
  check_bool "oversized packet" true
    (try
       Shaper.inject shaper (pkt ~flow:1 ~seq:1 ~len:200 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Admission                                                            *)

let server100 = { Admission.capacity = 100.0; delta = 20.0 }

let spec flow rate max_len = { Admission.flow; rate; max_len }

let test_admission_accepts_within_capacity () =
  check_bool "fits" true
    (Admission.admissible server100 [ spec 1 40.0 10; spec 2 60.0 10 ]);
  check_bool "overflows" false
    (Admission.admissible server100 [ spec 1 40.0 10; spec 2 61.0 10 ])

let test_admission_validation () =
  check_bool "duplicate flow" true
    (try
       ignore (Admission.admissible server100 [ spec 1 1.0 1; spec 1 1.0 1 ]);
       false
     with Invalid_argument _ -> true);
  check_bool "bad rate" true
    (try
       ignore (Admission.admissible server100 [ spec 1 0.0 1 ]);
       false
     with Invalid_argument _ -> true)

let test_admission_guarantees () =
  match Admission.admit server100 [ spec 1 40.0 10; spec 2 60.0 20 ] with
  | None -> Alcotest.fail "should admit"
  | Some [ g1; g2 ] ->
    (* Theorem 4 for flow 1: (20 + 10 + 20)/100 = 0.5. *)
    check_float "flow1 delay bound" 0.5 g1.Admission.delay_bound;
    (* Theorem 2 deficit for flow 1: 40*30/100 + 40*20/100 + 10 = 30. *)
    check_float "flow1 deficit" 30.0 g1.Admission.throughput_deficit;
    (* Theorem 1 vs flow 2: 10/40 + 20/60. *)
    (match g1.Admission.fairness_vs with
    | [ (2, h) ] -> check_float "H(1,2)" ((10.0 /. 40.0) +. (20.0 /. 60.0)) h
    | _ -> Alcotest.fail "expected one pair");
    check_bool "flow2 present" true (g2.Admission.spec.Admission.flow = 2)
  | Some _ -> Alcotest.fail "expected two guarantees"

let test_admission_rejects () =
  check_bool "none" true (Admission.admit server100 [ spec 1 101.0 10 ] = None)

let test_admission_spare () =
  check_float "spare" 30.0
    (Admission.max_admissible_rate server100 [ spec 1 70.0 10 ])

let test_admission_e2e () =
  let servers = [ server100; server100 ] in
  let g =
    Admission.e2e_guarantee ~servers ~per_hop_others_lmax:[ 50.0; 50.0 ]
      ~spec:(spec 1 10.0 10) ~prop_delays:[ 0.1 ] ~sigma:40.0
  in
  (* sigma/r + 2*beta + tau = 4.0 + 2*(0.5+0.1+0.2) + 0.1. *)
  check_float "bound" (4.0 +. (2.0 *. 0.8) +. 0.1) g

let test_admission_e2e_validation () =
  check_bool "mismatch" true
    (try
       ignore
         (Admission.e2e_guarantee ~servers:[ server100 ] ~per_hop_others_lmax:[]
            ~spec:(spec 1 1.0 1) ~prop_delays:[] ~sigma:10.0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* New experiments                                                      *)

let test_priority_residual () =
  let r = Sfq_experiments.Priority_residual.run () in
  check_bool "FC residual model holds" true r.Sfq_experiments.Priority_residual.residual_fc_holds;
  check_bool "Theorem 4 with residual params holds" true
    (r.Sfq_experiments.Priority_residual.thm4_worst_slack_ms >= 0.0);
  check_bool "many packets" true (r.Sfq_experiments.Priority_residual.packets_checked > 10_000)

let test_tie_break_ablation () =
  let r = Sfq_experiments.Tie_break_ablation.run () in
  match r.Sfq_experiments.Tie_break_ablation.rows with
  | [ arrival; low_first; high_first ] ->
    let open Sfq_experiments.Tie_break_ablation in
    (* Tie independence of the delay guarantee: max delays agree. *)
    check_bool "max tie-independent" true
      (Float.abs (arrival.low_max_ms -. low_first.low_max_ms) < 0.5
      && Float.abs (arrival.low_max_ms -. high_first.low_max_ms) < 0.5);
    (* Low-rate-first trims the low-rate average. *)
    check_bool "low-rate-first helps" true (low_first.low_avg_ms < arrival.low_avg_ms)
  | _ -> Alcotest.fail "expected three rows"

let test_gsfq () =
  let r = Sfq_experiments.Gsfq_video.run () in
  let open Sfq_experiments.Gsfq_video in
  check_bool "Theorem 4 held with per-packet rates" true (r.gsfq_worst_slack_ms >= -1e-6);
  check_bool "many packets" true (r.packets_checked > 1000);
  check_bool "per-packet rates cut I-frame worst delay" true
    (r.gsfq_iframe_max_ms < r.fixed_iframe_max_ms)

let test_e2e_ebf () =
  let r = Sfq_experiments.E2e_ebf.run () in
  let open Sfq_experiments.E2e_ebf in
  check_int "composed bound never violated where informative" 0 r.violations;
  (* The empirical tail must actually decay. *)
  (match (List.nth_opt r.points 0, List.nth_opt r.points 7) with
  | Some first, Some last -> check_bool "tail decays" true (last.empirical < first.empirical)
  | _ -> Alcotest.fail "expected 8 points");
  check_bool "base positive" true (r.base_ms > 0.0)

let test_busy_rule_ablation () =
  let r = Sfq_experiments.Busy_rule_ablation.run () in
  let open Sfq_experiments.Busy_rule_ablation in
  check_bool "correct rule at half the bound" true (r.h_idle_poll <= 0.51 *. r.bound);
  check_bool "shortcut doubles H" true (r.h_on_empty >= 1.9 *. r.h_idle_poll);
  check_bool "still within Theorem 1" true (r.h_on_empty <= r.bound +. 1e-9)

let test_fig1_topology () =
  let r = Sfq_experiments.Fig1_topology.run () in
  let open Sfq_experiments.Fig1_topology in
  check_bool "WFQ starves late flow over the real topology" true
    (r.wfq.src3_window * 4 < r.wfq.src2_window);
  check_bool "SFQ splits evenly over the real topology" true
    (r.sfq.src3_window > r.sfq.src2_window / 2)

(* Table 1 with WF2Q included: WF2Q behaves like WFQ on variable-rate. *)
let test_table1_wf2q_row () =
  let r = Sfq_experiments.Table1_fairness.run ~quick:true () in
  let row name =
    List.find
      (fun (row : Sfq_experiments.Table1_fairness.row) -> row.disc = name)
      r.Sfq_experiments.Table1_fairness.rows
  in
  let wf2q = row "WF2Q" in
  let bound = r.Sfq_experiments.Table1_fairness.h_bound_equal in
  check_bool "fair when rates match" true (wf2q.h_backlogged <= bound +. 1e-6);
  check_bool "still breaks on variable-rate (assumed clock)" true
    (wf2q.h_variable > 2.0 *. bound)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "extensions"
    [
      ( "wf2q",
        [
          Alcotest.test_case "eligibility" `Quick test_wf2q_eligibility;
          Alcotest.test_case "work conserving" `Quick test_wf2q_work_conserving;
          Alcotest.test_case "no example-1 burst" `Quick test_wf2q_no_example1_burst;
          Alcotest.test_case "size/backlog" `Quick test_wf2q_size_backlog;
          q prop_wf2q_conservation;
        ] );
      ( "shaper",
        [
          Alcotest.test_case "passes conforming" `Quick test_shaper_passes_conforming;
          Alcotest.test_case "delays burst" `Quick test_shaper_delays_burst;
          Alcotest.test_case "output conforms" `Quick test_shaper_output_conforms;
          Alcotest.test_case "fifo order" `Quick test_shaper_fifo_order;
          Alcotest.test_case "validation" `Quick test_shaper_validation;
        ] );
      ( "admission",
        [
          Alcotest.test_case "capacity check" `Quick test_admission_accepts_within_capacity;
          Alcotest.test_case "validation" `Quick test_admission_validation;
          Alcotest.test_case "guarantees" `Quick test_admission_guarantees;
          Alcotest.test_case "rejects" `Quick test_admission_rejects;
          Alcotest.test_case "spare capacity" `Quick test_admission_spare;
          Alcotest.test_case "e2e" `Quick test_admission_e2e;
          Alcotest.test_case "e2e validation" `Quick test_admission_e2e_validation;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "E15 priority residual" `Slow test_priority_residual;
          Alcotest.test_case "E16 tie-break ablation" `Slow test_tie_break_ablation;
          Alcotest.test_case "E17 generalized SFQ" `Slow test_gsfq;
          Alcotest.test_case "E18 EBF end-to-end" `Slow test_e2e_ebf;
          Alcotest.test_case "E19 busy-rule ablation" `Quick test_busy_rule_ablation;
          Alcotest.test_case "E20 fig 1 topology" `Slow test_fig1_topology;
          Alcotest.test_case "table 1 WF2Q row" `Quick test_table1_wf2q_row;
        ] );
    ]
