(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md's experiment index E1-E13), then
   runs the Bechamel micro-benchmarks behind Table 1's computational-
   efficiency column (E14).

   dune exec bench/main.exe            -- everything
   dune exec bench/main.exe -- quick   -- smaller workloads
   dune exec bench/main.exe -- micro   -- only the Bechamel suite *)

open Sfq_base
open Sfq_experiments

let line = String.make 78 '='

let section title =
  Printf.printf "%s\n%s\n%s\n\n" line title line

(* ------------------------------------------------------------------ *)
(* E1-E13: the paper's tables and figures                               *)

let run_experiments ~quick =
  section "SFQ paper reproduction: tables and figures (DESIGN.md E1-E13)";
  Ex1_wfq_unfair.(print (run ()));
  Ex2_variable_rate.(print (run ()));
  Fig1_tcp_fairness.(print (run ()));
  Table1_fairness.(print (run ~quick ()));
  Fig2a_delay_reduction.(print (run ~quick ()));
  Fig2b_avg_delay.(print (run ~duration:(if quick then 50.0 else 200.0) ()));
  Scfq_delay_gap.(print (run ()));
  Fig3_link_sharing.(print (run ~pkts_per_conn:(if quick then 1500 else 4000) ()));
  Hier_sharing.(print (run ()));
  Delay_shifting.(print (run ()));
  Bound_validation.(print (run ()));
  End_to_end.(print (run ()));
  Fair_airport_exp.(print (run ()));
  Priority_residual.(print (run ()));
  Tie_break_ablation.(print (run ()));
  Gsfq_video.(print (run ()));
  E2e_ebf.(print (run ()));
  Busy_rule_ablation.(print (run ()));
  Fig1_topology.(print (run ()))

(* ------------------------------------------------------------------ *)
(* E14: per-packet cost of each discipline (Table 1, complexity column) *)

let flow_counts = [ 4; 64; 512 ]

let disciplines nflows =
  let weights = Weights.uniform 1000.0 in
  let capacity = 1000.0 *. float_of_int nflows in
  [
    ("fifo", fun () -> Disc.make Disc.Fifo weights);
    ("sfq", fun () -> Disc.make Disc.Sfq weights);
    ("scfq", fun () -> Disc.make Disc.Scfq weights);
    ("wfq-fluid", fun () -> Disc.make (Disc.Wfq { capacity }) weights);
    ("wfq-real", fun () -> Disc.make (Disc.Wfq_real { capacity }) weights);
    ("fqs", fun () -> Disc.make (Disc.Fqs { capacity }) weights);
    ("wf2q", fun () -> Disc.make (Disc.Wf2q { capacity }) weights);
    ("drr", fun () -> Disc.make (Disc.Drr { quantum = 1000.0 }) weights);
    ("wrr", fun () -> Disc.make Disc.Wrr weights);
    ("virtual-clock", fun () -> Disc.make Disc.Virtual_clock weights);
    ("fair-airport", fun () -> Disc.make Disc.Fair_airport weights);
  ]

(* Steady state: the queue holds one packet per flow; each measured run
   enqueues one packet (round-robin over flows) and dequeues one. The
   clock passed in advances so time-driven disciplines do real work. *)
let op_test ~name ~nflows make_sched =
  let sched = make_sched () in
  let seqs = Array.make nflows 0 in
  let now = ref 0.0 in
  let flow = ref 0 in
  for f = 0 to nflows - 1 do
    seqs.(f) <- 1;
    sched.Sched.enqueue ~now:0.0 (Packet.make ~flow:f ~seq:1 ~len:1000 ~born:0.0 ())
  done;
  Bechamel.Test.make
    ~name:(Printf.sprintf "%s/%d flows" name nflows)
    (Bechamel.Staged.stage (fun () ->
         let f = !flow in
         flow := (f + 1) mod nflows;
         seqs.(f) <- seqs.(f) + 1;
         now := !now +. 1e-4;
         sched.Sched.enqueue ~now:!now
           (Packet.make ~flow:f ~seq:seqs.(f) ~len:1000 ~born:!now ());
         ignore (sched.Sched.dequeue ~now:!now)))

let run_micro () =
  section "E14: per-packet enqueue+dequeue cost (Table 1 complexity column)";
  let open Bechamel in
  let tests =
    List.concat_map
      (fun nflows ->
        List.map (fun (name, make) -> op_test ~name ~nflows make) (disciplines nflows))
      flow_counts
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let table = Sfq_util.Text_table.create [ "discipline"; "flows"; "ns/packet" ] in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg [ Toolkit.Instance.monotonic_clock ] elt in
          let est = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          let ns =
            match Analyze.OLS.estimates est with Some (x :: _) -> x | Some [] | None -> nan
          in
          match String.split_on_char '/' (Test.Elt.name elt) with
          | [ disc; flows ] ->
            Sfq_util.Text_table.add_row table
              [ disc; flows; Printf.sprintf "%.0f" ns ]
          | _ ->
            Sfq_util.Text_table.add_row table
              [ Test.Elt.name elt; ""; Printf.sprintf "%.0f" ns ])
        (Test.elements test))
    tests;
  Sfq_util.Text_table.print table;
  print_endline
    "(SFQ and SCFQ pay one O(log Q) heap operation per packet; WFQ's fluid clock\n\
    \ adds the GPS simulation on top; DRR/WRR are O(1); Fair Airport runs two\n\
    \ schedulers. The paper's claim: SFQ has SCFQ's cost, below WFQ's.)";
  print_newline ()

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "quick" args in
  let micro_only = List.mem "micro" args in
  if not micro_only then run_experiments ~quick;
  run_micro ()
