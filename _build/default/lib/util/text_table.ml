type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t row =
  let ncols = List.length t.headers in
  let n = List.length row in
  if n > ncols then invalid_arg "Text_table.add_row: too many cells";
  let padded = row @ List.init (ncols - n) (fun _ -> "") in
  t.rows <- padded :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let width col =
    List.fold_left
      (fun acc row -> Stdlib.max acc (String.length (List.nth row col)))
      0 all
  in
  let widths = List.init ncols width in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let line row =
    String.concat "  " (List.map2 pad row widths) ^ "\n"
  in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) ^ "\n" in
  line t.headers ^ sep ^ String.concat "" (List.map line rows)

let print t = print_string (render t)

let cell_f ?(decimals = 3) x = Printf.sprintf "%.*f" decimals x
let cell_pct x = Printf.sprintf "%.1f%%" (100.0 *. x)
