(** Drawdown tracker for a real-valued process observed at increasing
    sample points.

    Feed values of a process [X(t)] (in order); [drawdown] is
    [max_{t1 <= t2} (X(t2) - X(t1))] over everything observed so far,
    i.e. the maximum rise above the running minimum. The FC rate
    process uses this with [X(t) = C*t - W(t)] to enforce the
    Fluctuation Constrained property (Definition 1 of the paper) by
    construction: Definition 1 holds iff the drawdown of [X] never
    exceeds [delta]. *)

type t

val create : unit -> t
val observe : t -> float -> unit
val running_min : t -> float
(** +inf before the first observation. *)

val drawdown : t -> float
(** 0 before the first observation. *)

val headroom : t -> budget:float -> float
(** [headroom t ~budget] is how much the process may still rise above
    its current value before the drawdown would exceed [budget]:
    [budget - (last - running_min)]. +inf before the first
    observation. *)
