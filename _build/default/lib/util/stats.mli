(** Streaming and batch descriptive statistics.

    {!t} is a Welford accumulator: numerically stable running mean and
    variance plus min/max, O(1) per observation, no sample storage. The
    batch helpers ([percentile], [median]) operate on explicit float
    arrays and are used where order statistics are needed (delay
    distributions). *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 with fewer than two observations. *)

val stddev : t -> float
val min_value : t -> float
(** +inf when empty. *)

val max_value : t -> float
(** -inf when empty. *)

val merge : t -> t -> t
(** Accumulator equivalent to having observed both streams. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]]; linear interpolation
    between closest ranks. Sorts a copy; the input is not modified.
    @raise Invalid_argument on an empty array or [p] outside range. *)

val median : float array -> float

val mean_of : float array -> float
(** @raise Invalid_argument on an empty array. *)
