(** Minimal fixed-width text tables for experiment reports.

    The bench harness prints paper-vs-measured tables; this keeps the
    formatting in one place. Columns are sized to their widest cell;
    all output is plain ASCII so it diffs cleanly in
    [bench_output.txt]. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells; longer
    rows raise [Invalid_argument]. *)

val render : t -> string
(** The full table, including a header separator line, newline
    terminated. *)

val print : t -> unit
(** [render] to stdout. *)

val cell_f : ?decimals:int -> float -> string
(** Format a float cell ([decimals] defaults to 3). *)

val cell_pct : float -> string
(** Format a ratio as a percentage with one decimal, e.g. [0.53] ->
    ["53.0%"]. *)
