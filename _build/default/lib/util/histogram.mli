(** Fixed-bin histograms with ASCII rendering.

    Used by experiment reports to show delay distributions (what the
    paper's averages and maxima summarize) without any plotting
    dependency. Values below/above the range land in saturating
    first/last bins. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** @raise Invalid_argument unless [lo < hi] and [bins > 0]. *)

val add : t -> float -> unit
val count : t -> int
val bin_counts : t -> int array
val bin_bounds : t -> int -> float * float
(** Bounds of bin [i]. @raise Invalid_argument out of range. *)

val render : ?width:int -> t -> string
(** One line per bin: range, count, and a proportional bar. *)
