lib/util/rng.mli:
