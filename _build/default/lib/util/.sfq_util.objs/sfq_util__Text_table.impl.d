lib/util/text_table.ml: List Printf Stdlib String
