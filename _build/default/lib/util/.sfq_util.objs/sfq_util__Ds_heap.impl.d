lib/util/ds_heap.ml: Array List
