lib/util/ds_heap.mli:
