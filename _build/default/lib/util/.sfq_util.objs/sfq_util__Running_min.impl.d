lib/util/running_min.ml:
