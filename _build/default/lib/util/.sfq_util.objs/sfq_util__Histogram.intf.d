lib/util/histogram.mli:
