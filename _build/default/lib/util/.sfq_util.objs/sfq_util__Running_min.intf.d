lib/util/running_min.mli:
