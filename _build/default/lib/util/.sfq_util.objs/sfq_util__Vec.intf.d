lib/util/vec.mli:
