lib/util/stats.mli:
