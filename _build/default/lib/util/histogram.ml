type t = { lo : float; hi : float; counts : int array; mutable total : int }

let create ~lo ~hi ~bins =
  if lo >= hi || bins <= 0 then invalid_arg "Histogram.create: need lo < hi and bins > 0";
  { lo; hi; counts = Array.make bins 0; total = 0 }

let nbins t = Array.length t.counts

let add t x =
  let bins = nbins t in
  let idx =
    if x < t.lo then 0
    else if x >= t.hi then bins - 1
    else begin
      let i = int_of_float (float_of_int bins *. (x -. t.lo) /. (t.hi -. t.lo)) in
      Stdlib.min i (bins - 1)
    end
  in
  t.counts.(idx) <- t.counts.(idx) + 1;
  t.total <- t.total + 1

let count t = t.total
let bin_counts t = Array.copy t.counts

let bin_bounds t i =
  if i < 0 || i >= nbins t then invalid_arg "Histogram.bin_bounds: out of range";
  let w = (t.hi -. t.lo) /. float_of_int (nbins t) in
  (t.lo +. (float_of_int i *. w), t.lo +. (float_of_int (i + 1) *. w))

let render ?(width = 40) t =
  let peak = Array.fold_left Stdlib.max 1 t.counts in
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i c ->
      let a, b = bin_bounds t i in
      let bar = String.make (c * width / peak) '#' in
      Buffer.add_string buf (Printf.sprintf "%10.4f-%10.4f %7d %s\n" a b c bar))
    t.counts;
  Buffer.contents buf
