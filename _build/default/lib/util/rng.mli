(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic component of the library (Poisson sources, MPEG
    frame sizes, FC/EBF rate processes, property-test workload
    generators) takes an explicit [Rng.t] so that simulations are
    reproducible from a seed, independently of the global [Random]
    state. Splitmix64 is small, fast, passes BigCrush, and — unlike
    [Random.State] — has a documented, stable algorithm, so recorded
    experiment outputs stay valid across OCaml releases. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] is a new generator whose stream is independent of the
    continuation of [t]'s stream (it is seeded from [t]'s next
    output). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. [bound] must be
    positive. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be
    positive. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean (inverse-CDF
    method). *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normally distributed (Box–Muller; one draw per call, the antithetic
    variate is discarded for simplicity). *)

val lognormal : t -> mu:float -> sigma:float -> float
(** exp of a Gaussian with parameters [mu], [sigma] (parameters of the
    underlying normal, not of the lognormal itself). *)

val laplace : t -> mu:float -> b:float -> float
(** Laplace (double-exponential) with location [mu] and scale [b]; used
    by the EBF rate process, whose deviation tail must be exponentially
    bounded by construction. *)
