type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = Int64.of_int seed }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

(* 53 uniform mantissa bits, in [0,1). *)
let unit_float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float t bound =
  if bound <= 0.0 then invalid_arg "Rng.float: bound must be positive";
  unit_float t *. bound

let uniform t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.uniform: hi < lo";
  lo +. (unit_float t *. (hi -. lo))

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Modulo bias is below 2^-40 for the bounds used here. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 1) (Int64.of_int bound))

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1.0 -. unit_float t in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let u1 = 1.0 -. unit_float t in
  let u2 = unit_float t in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (gaussian t ~mu ~sigma)

let laplace t ~mu ~b =
  let u = unit_float t -. 0.5 in
  let sign = if u < 0.0 then -1.0 else 1.0 in
  mu -. (b *. sign *. log (1.0 -. (2.0 *. Float.abs u)))
