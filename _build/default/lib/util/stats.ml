type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; sum = 0.0; min_v = infinity; max_v = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0.0 else t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min_value t = t.min_v
let max_value t = t.max_v

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
    in
    {
      n;
      mean;
      m2;
      sum = a.sum +. b.sum;
      min_v = Float.min a.min_v b.min_v;
      max_v = Float.max a.max_v b.max_v;
    }
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0,100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 50.0

let mean_of xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean_of: empty array";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int n
