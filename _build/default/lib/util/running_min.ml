type t = {
  mutable min_v : float;
  mutable last : float;
  mutable max_drawdown : float;
  mutable seen : bool;
}

let create () = { min_v = infinity; last = nan; max_drawdown = 0.0; seen = false }

let observe t x =
  t.seen <- true;
  t.last <- x;
  if x < t.min_v then t.min_v <- x;
  let dd = x -. t.min_v in
  if dd > t.max_drawdown then t.max_drawdown <- dd

let running_min t = t.min_v
let drawdown t = t.max_drawdown

let headroom t ~budget =
  if not t.seen then infinity else budget -. (t.last -. t.min_v)
