open Sfq_util
open Sfq_base
open Sfq_core
open Sfq_netsim
open Sfq_analysis

type ebf_point = { gamma : float; violations : int; samples : int }

type result = {
  thm2_worst_slack_bits : float;
  thm2_intervals : int;
  thm4_worst_slack_ms : float;
  thm4_packets : int;
  ebf_tail : ebf_point list;
}

let capacity = 1.0e6
let delta = 20_000.0 (* bits *)
let pkt_len = 8 * 250
let nflows = 5
let flow_rate = capacity /. float_of_int nflows (* Σ r_n = C exactly *)
let duration = 60.0

(* Theorem 2: all flows continuously backlogged on an FC server. *)
let thm2 ~seed =
  let sim = Sim.create () in
  let rng = Rng.create seed in
  let rate = Rate_process.fc_random ~c:capacity ~delta ~seg:0.05 ~spread:(0.5 *. capacity) ~rng in
  let weights = Weights.uniform flow_rate in
  let server =
    Server.create sim ~name:"thm2" ~rate ~sched:(Disc.make Disc.Sfq weights) ()
  in
  let log = Service_log.attach server in
  for flow = 1 to nflows do
    ignore (Source.greedy sim ~server ~flow ~len:pkt_len ~total:1_000_000 ~window:4 ~start:0.0 ())
  done;
  Sim.run sim ~until:duration;
  let sum_lmax = float_of_int (nflows * pkt_len) in
  let worst = ref infinity and count = ref 0 in
  let grid = [ 0.5; 1.0; 2.0; 5.0; 10.0; 20.0 ] in
  List.iter
    (fun span ->
      let t1 = ref 1.0 in
      while !t1 +. span < duration -. 1.0 do
        let t2 = !t1 +. span in
        incr count;
        let w = Service_log.service log 1 ~t1:!t1 ~t2 in
        let bound =
          Bounds.sfq_throughput_lower ~rate:flow_rate ~t1:!t1 ~t2 ~sum_lmax
            ~lmax_f:(float_of_int pkt_len) ~capacity ~delta
        in
        worst := Float.min !worst (w -. bound);
        t1 := !t1 +. (span /. 2.0)
      done)
    grid;
  (!worst, !count)

(* Theorem 4: paced flows (arrival = EAT); check each departure. *)
let thm4 ~seed =
  let sim = Sim.create () in
  let rng = Rng.create (seed + 1) in
  let rate = Rate_process.fc_random ~c:capacity ~delta ~seg:0.05 ~spread:(0.5 *. capacity) ~rng in
  let weights = Weights.uniform flow_rate in
  let server = Server.create sim ~name:"thm4" ~rate ~sched:(Disc.make Disc.Sfq weights) () in
  (* EAT per flow, recomputed exactly as eq. 37 from arrivals. *)
  let eat = Sfq_sched.Eat.create () in
  let worst = ref infinity and count = ref 0 in
  let sum_other_lmax = float_of_int ((nflows - 1) * pkt_len) in
  let eat_of = Hashtbl.create 64 in
  Server.on_inject server (fun p ->
      let e =
        Sfq_sched.Eat.on_arrival eat ~now:(Sim.now sim) ~flow:p.Packet.flow ~len:p.Packet.len
          ~rate:flow_rate
      in
      Hashtbl.replace eat_of (p.Packet.flow, p.Packet.seq) e);
  Server.on_depart server (fun p ~start:_ ~departed ->
      match Hashtbl.find_opt eat_of (p.Packet.flow, p.Packet.seq) with
      | None -> ()
      | Some e ->
        incr count;
        let bound =
          Bounds.sfq_departure ~eat:e ~sum_other_lmax ~len:(float_of_int p.Packet.len)
            ~capacity ~delta
        in
        worst := Float.min !worst (bound -. departed));
  for flow = 1 to nflows do
    ignore
      (Source.cbr sim ~target:(Server.inject server) ~flow ~len:pkt_len ~rate:flow_rate
         ~start:0.0 ~stop:duration)
  done;
  Sim.run sim ~until:(duration +. 2.0);
  (1000.0 *. !worst, !count)

(* Theorems 3/5: EBF tail of the throughput shortfall. *)
let ebf ~seed =
  let sim = Sim.create () in
  let rng = Rng.create (seed + 2) in
  let rate = Rate_process.ebf ~c:capacity ~scale:(0.3 *. capacity) ~seg:0.05 ~rng in
  let weights = Weights.uniform flow_rate in
  let server = Server.create sim ~name:"ebf" ~rate ~sched:(Disc.make Disc.Sfq weights) () in
  let log = Service_log.attach server in
  for flow = 1 to nflows do
    ignore (Source.greedy sim ~server ~flow ~len:pkt_len ~total:1_000_000 ~window:4 ~start:0.0 ())
  done;
  Sim.run sim ~until:duration;
  let sum_lmax = float_of_int (nflows * pkt_len) in
  let span = 1.0 in
  let gammas = [ 0.0; 10_000.0; 20_000.0; 40_000.0; 80_000.0 ] in
  List.map
    (fun gamma ->
      let violations = ref 0 and samples = ref 0 in
      let t1 = ref 1.0 in
      while !t1 +. span < duration -. 1.0 do
        let t2 = !t1 +. span in
        incr samples;
        let w = Service_log.service log 1 ~t1:!t1 ~t2 in
        let bound =
          Bounds.sfq_throughput_lower ~rate:flow_rate ~t1:!t1 ~t2 ~sum_lmax
            ~lmax_f:(float_of_int pkt_len) ~capacity ~delta:0.0
          -. (flow_rate *. gamma /. capacity)
        in
        if w < bound then incr violations;
        t1 := !t1 +. 0.25
      done;
      { gamma; violations = !violations; samples = !samples })
    gammas

let run ?(seed = 3) () =
  let thm2_worst_slack_bits, thm2_intervals = thm2 ~seed in
  let thm4_worst_slack_ms, thm4_packets = thm4 ~seed in
  { thm2_worst_slack_bits; thm2_intervals; thm4_worst_slack_ms; thm4_packets; ebf_tail = ebf ~seed }

let print r =
  print_endline "== Theorems 2/4 (FC) and 3/5 (EBF) bound validation ==";
  Printf.printf
    "Theorem 2 (throughput): worst slack %.0f bits over %d intervals (>= 0 means the bound held)\n"
    r.thm2_worst_slack_bits r.thm2_intervals;
  Printf.printf
    "Theorem 4 (delay): worst slack %.3f ms over %d packets (>= 0 means the bound held)\n"
    r.thm4_worst_slack_ms r.thm4_packets;
  print_endline "EBF tail (throughput shortfall beyond gamma):";
  let t = Text_table.create [ "gamma bits"; "violations"; "samples"; "frequency" ] in
  List.iter
    (fun p ->
      Text_table.add_row t
        [
          Printf.sprintf "%.0f" p.gamma;
          string_of_int p.violations;
          string_of_int p.samples;
          (if p.samples = 0 then "-"
           else Printf.sprintf "%.3f" (float_of_int p.violations /. float_of_int p.samples));
        ])
    r.ebf_tail;
  Text_table.print t;
  print_endline "(frequency should decay roughly exponentially in gamma: Definition 2.)";
  print_newline ()
