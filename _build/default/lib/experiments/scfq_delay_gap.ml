open Sfq_util
open Sfq_base
open Sfq_core
open Sfq_netsim

type result = {
  gap_one_server_ms : float;
  gap_five_servers_ms : float;
  scfq_max_ms : float;
  sfq_max_ms : float;
  wfq_max_ms : float;
  scfq_bound_ms : float;
  sfq_bound_ms : float;
}

let capacity = 100.0e6
let pkt_len = 8 * 200
let flow_rate = 64.0e3

let simulate spec ~nflows =
  let tagged = 0 in
  let others = List.init (nflows - 1) (fun i -> i + 1) in
  let other_rate = (capacity -. flow_rate) /. float_of_int (nflows - 1) in
  let weights =
    Weights.of_list ((tagged, flow_rate) :: List.map (fun f -> (f, other_rate)) others)
  in
  let sim = Sim.create () in
  let server =
    Server.create sim ~name:"scfq-gap" ~rate:(Rate_process.constant capacity)
      ~sched:(Disc.make spec weights) ()
  in
  let trace = Trace.attach server in
  let horizon = 0.3 in
  let backlog_pkts =
    int_of_float (capacity *. horizon /. float_of_int (pkt_len * (nflows - 1))) + 50
  in
  Sim.schedule sim ~at:0.0 (fun () ->
      List.iter
        (fun flow ->
          for seq = 1 to backlog_pkts do
            Server.inject server (Packet.make ~flow ~seq ~len:pkt_len ~born:0.0 ())
          done)
        others);
  ignore
    (Source.cbr sim ~target:(Server.inject server) ~flow:tagged ~len:pkt_len ~rate:flow_rate
       ~start:0.0 ~stop:horizon);
  Sim.run sim ~until:(horizon +. 1.0);
  1000.0 *. Trace.max_delay trace tagged

let run ?(nflows = 20) () =
  let len = float_of_int pkt_len in
  let gap = Bounds.scfq_sfq_gap ~len ~rate:flow_rate ~capacity in
  let sum_other_lmax = float_of_int (nflows - 1) *. len in
  {
    gap_one_server_ms = 1000.0 *. gap;
    gap_five_servers_ms = 5000.0 *. gap;
    scfq_max_ms = simulate Disc.Scfq ~nflows;
    sfq_max_ms = simulate Disc.Sfq ~nflows;
    wfq_max_ms = simulate (Disc.Wfq { capacity }) ~nflows;
    scfq_bound_ms =
      1000.0 *. Bounds.scfq_departure ~eat:0.0 ~sum_other_lmax ~len ~rate:flow_rate ~capacity;
    sfq_bound_ms = 1000.0 *. Bounds.sfq_departure ~eat:0.0 ~sum_other_lmax ~len ~capacity ~delta:0.0;
  }

let print r =
  print_endline "== §2.3: SCFQ vs SFQ maximum delay (64 Kb/s flow, 200 B, 100 Mb/s) ==";
  Printf.printf "closed-form gap (eq. 57): %.1f ms/server, %.0f ms over 5 servers (paper: 24.4 / 122)\n"
    r.gap_one_server_ms r.gap_five_servers_ms;
  let t = Text_table.create [ "discipline"; "measured max delay ms"; "bound ms" ] in
  Text_table.add_row t
    [ "SCFQ"; Text_table.cell_f ~decimals:2 r.scfq_max_ms; Text_table.cell_f ~decimals:2 r.scfq_bound_ms ];
  Text_table.add_row t
    [ "SFQ"; Text_table.cell_f ~decimals:2 r.sfq_max_ms; Text_table.cell_f ~decimals:2 r.sfq_bound_ms ];
  Text_table.add_row t [ "WFQ"; Text_table.cell_f ~decimals:2 r.wfq_max_ms; "" ];
  Text_table.print t;
  print_newline ()
