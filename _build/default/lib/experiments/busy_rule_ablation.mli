(** Ablation: the busy-period rule (DESIGN.md "busy-period semantics").

    §2 step 2 sets v to the max serviced finish tag "at the end of a
    busy period". A packet implementation must decide when that is.
    Two readings:

    - {b idle-poll} (correct, the library default): the busy period
      ends when the server polls an empty queue after a completion;
    - {b on-empty} (the tempting shortcut): it ends the instant the
      queue becomes empty — even though a packet is still on the wire.

    The shortcut silently costs a factor of ~2 in measured fairness:
    any flow whose packets arrive while the queue is momentarily empty
    gets its start tag bumped past the in-service packet's finish tag.
    The experiment runs interleaved-arrival workloads (packets arriving
    during service — i.e., every real network) under both rules and
    reports the empirical H. This library had exactly this bug until
    the Example-1 reproduction caught it; the ablation keeps the cost
    of the wrong choice measurable. *)

type result = {
  h_idle_poll : float;
  h_on_empty : float;
  bound : float;  (** Theorem 1 *)
}

val run : ?seed:int -> unit -> result
val print : result -> unit
