(** §2.4 / Corollary 1: end-to-end delay through a tandem of SFQ
    servers.

    A (σ, ρ)-leaky-bucket flow with reserved rate ρ traverses K SFQ
    servers in series; each hop also carries backlogged cross traffic.
    §A.5 turns Corollary 1 into the closed-form bound
    [σ/ρ + Σ_k β_k + Σ τ] for such a flow; the experiment measures the
    worst end-to-end delay for K = 1..5 and reports it against the
    bound. The deterministic (FC with δ = 0) case must never violate
    the bound. *)

type point = { k : int; measured_max_ms : float; bound_ms : float }

type result = { points : point list }

val run : ?seed:int -> unit -> result
val print : result -> unit
