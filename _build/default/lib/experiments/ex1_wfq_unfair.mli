(** Example 1 (paper §1.2): WFQ's fairness measure is at least a factor
    of two from the lower bound.

    The paper's scenario, made tie-free by one-bit length perturbations
    so a real WFQ server (not an adversarial tie-break) produces the
    order [p_f^1, p_m^1, p_m^2, p_m^3, p_f^2]: flow [m] then receives
    ~2·l^max of service in a window where [f] — equally weighted and
    continuously backlogged — receives none. The same workload under
    SFQ stays within Theorem 1's bound with room to spare. *)

type result = {
  wfq_order : (int * int) list;  (** (flow, seq) service order under WFQ *)
  wfq_h : float;  (** measured sup |W_f/r_f − W_m/r_m|, seconds *)
  sfq_h : float;
  h_lower_bound : float;  (** ½(l_f^max/r_f + l_m^max/r_m) *)
  h_sfq_bound : float;  (** Theorem 1 bound = 2 × lower bound *)
}

val run : unit -> result
val print : result -> unit
