(** Fig. 3(b) of the paper: throughput of three weighted connections
    over a network interface whose realizable bandwidth fluctuates.

    The paper's Solaris/FORE-ATM testbed is replaced by a simulated
    interface (DESIGN.md §2): an FC rate process around 48 Mb/s. Three
    greedy connections with weights 1:2:3 each transmit a fixed number
    of 4 KB packets and terminate. Expected shape: throughput ratios
    1:2:3 while all three are active, 1:2 after the weight-3 connection
    finishes, then full bandwidth to the survivor. *)

type phase = {
  label : string;
  t1 : float;
  t2 : float;
  rates_mbps : float array;  (** per connection, index 0..2 *)
}

type result = {
  phases : phase list;
  finish_times : float array;
  series : (float * float array) list;  (** (window end, per-conn Mb/s) *)
}

val run : ?pkts_per_conn:int -> ?seed:int -> unit -> result
val print : result -> unit
