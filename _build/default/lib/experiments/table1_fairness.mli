(** Table 1 of the paper: fairness properties of WFQ, FQS, SCFQ, DRR
    (and, beyond the paper's table, Virtual Clock, WRR, Fair Airport
    and SFQ itself), measured empirically.

    Three workloads, each run under every discipline:

    - {b backlogged}: two equally weighted flows continuously
      backlogged on a constant-rate server — the baseline fairness
      scenario of §1.2;
    - {b variable-rate}: the same pair on a randomized Fluctuation
      Constrained server — the "fairness over variable rate servers"
      column (WFQ degrades; SFQ/SCFQ/DRR do not);
    - {b catch-up}: flow f uses idle bandwidth before flow m becomes
      backlogged — the scenario where Virtual Clock's unfairness is
      unbounded (§1.1) and where WFQ pays for its assumed-rate clock;
    - {b high-weight} (DRR column): two weight-100 flows plus one
      weight-1 flow, quantum pinned by the min-weight flow — the
      paper's "50 times larger than SCFQ" example.

    All H values are the empirical sup of |W_f/r_f − W_m/r_m| in
    seconds, comparable against Theorem 1's closed form. *)

type row = {
  disc : string;
  h_backlogged : float;
  h_variable : float;
  h_catch_up : float;
  h_high_weight : float;
}

type result = {
  rows : row list;
  h_bound_equal : float;  (** Theorem 1 bound for the equal-weight pair *)
  h_bound_high : float;  (** Theorem 1 bound for the weight-100 pair *)
}

val run : ?quick:bool -> unit -> result
val print : result -> unit
