open Sfq_base
open Sfq_core
open Sfq_netsim
open Sfq_analysis

type result = { h_idle_poll : float; h_on_empty : float; bound : float }

let pkt_len = 1_000
let rate = 100.0
let n = 30

(* The trigger: flow f's first packet enters service the instant it is
   injected (the queue is then momentarily empty while the packet is on
   the wire), and the rest of both flows' bursts arrive within that
   same instant. Under the on-empty shortcut v jumps to F(p_f^1) before
   flow m's first packet is stamped, so m loses its head start and the
   uid tie sends flow f twice in a row — one extra packet of
   unfairness, i.e. H doubles from l/r to 2l/r. *)
let measure busy_rule =
  let weights = Weights.uniform rate in
  let sim = Sim.create () in
  let server =
    Server.create sim ~name:"ablation" ~rate:(Rate_process.constant (4.0 *. rate))
      ~sched:(Sfq.sched (Sfq.create ~busy_rule weights)) ()
  in
  let log = Service_log.attach server in
  Sim.schedule sim ~at:0.0 (fun () ->
      Server.inject server (Packet.make ~flow:1 ~seq:1 ~len:pkt_len ~born:0.0 ());
      for seq = 2 to n do
        Server.inject server (Packet.make ~flow:1 ~seq ~len:pkt_len ~born:0.0 ())
      done;
      for seq = 1 to n do
        Server.inject server (Packet.make ~flow:2 ~seq ~len:pkt_len ~born:0.0 ())
      done);
  Sim.run_all sim ();
  Fairness.exact_h log ~f:1 ~m:2 ~r_f:rate ~r_m:rate ~until:(Sim.now sim)

let run ?seed:_ () =
  {
    h_idle_poll = measure Sfq.Idle_poll;
    h_on_empty = measure Sfq.On_empty;
    bound =
      Bounds.h_sfq ~lmax_f:(float_of_int pkt_len) ~r_f:rate
        ~lmax_m:(float_of_int pkt_len) ~r_m:rate;
  }

let print r =
  print_endline "== Ablation: busy-period rule (idle-poll vs on-empty) ==";
  Printf.printf
    "Theorem 1 bound: %.1f s\n\
     measured H, idle-poll rule (correct): %.1f s\n\
     measured H, on-empty shortcut:        %.1f s\n\
     (the shortcut bumps v while a packet is still in service; arrivals in that\n\
    \ window pay a full extra packet of normalized service — H doubles.)\n\n"
    r.bound r.h_idle_poll r.h_on_empty
