open Sfq_util
open Sfq_base
open Sfq_netsim
open Sfq_analysis

type result = {
  wfq_order : (int * int) list;
  wfq_h : float;
  sfq_h : float;
  h_lower_bound : float;
  h_sfq_bound : float;
}

let flow_f = 1
let flow_m = 2
let lmax = 10_000 (* bits *)

(* Both flows have weight 1 bit/s so normalized service is in seconds
   and l^max/r = 10000 s; the absolute scale is irrelevant to H. *)
let weights = Weights.uniform 1.0

let packets =
  (* f: 9999 then 10000 bits; m: 10000 then 4999 + 4999. Finish tags
     under WFQ: f → 9999, 19999; m → 10000, 14999, 19998. Strict order
     p_f^1 < p_m^1 < p_m^2 < p_m^3 < p_f^2: the paper's Example 1
     schedule, without relying on tie-breaking. *)
  [
    (flow_f, 1, lmax - 1);
    (flow_f, 2, lmax);
    (flow_m, 1, lmax);
    (flow_m, 2, (lmax / 2) - 1);
    (flow_m, 3, (lmax / 2) - 1);
  ]

let run_disc spec =
  let sim = Sim.create () in
  let server =
    Server.create sim ~name:"ex1" ~rate:(Rate_process.constant 10_000.0)
      ~sched:(Disc.make spec weights) ()
  in
  let log = Service_log.attach server in
  let order = ref [] in
  Server.on_depart server (fun p ~start:_ ~departed:_ ->
      order := (p.Packet.flow, p.Packet.seq) :: !order);
  Sim.schedule sim ~at:0.0 (fun () ->
      List.iter
        (fun (flow, seq, len) ->
          Server.inject server (Packet.make ~flow ~seq ~len ~born:0.0 ()))
        packets);
  Sim.run_all sim ();
  let h =
    Fairness.exact_h log ~f:flow_f ~m:flow_m ~r_f:1.0 ~r_m:1.0 ~until:(Sim.now sim)
  in
  (List.rev !order, h)

let run () =
  let wfq_order, wfq_h = run_disc (Disc.Wfq { capacity = 10_000.0 }) in
  let _, sfq_h = run_disc Disc.Sfq in
  let l = float_of_int lmax in
  {
    wfq_order;
    wfq_h;
    sfq_h;
    h_lower_bound = Sfq_core.Bounds.h_lower_bound ~lmax_f:l ~r_f:1.0 ~lmax_m:l ~r_m:1.0;
    h_sfq_bound = Sfq_core.Bounds.h_sfq ~lmax_f:l ~r_f:1.0 ~lmax_m:l ~r_m:1.0;
  }

let print r =
  print_endline "== Example 1: WFQ is at least 2x from the fairness lower bound ==";
  let order =
    String.concat ", "
      (List.map (fun (f, s) -> Printf.sprintf "p_%s^%d" (if f = flow_f then "f" else "m") s) r.wfq_order)
  in
  Printf.printf "WFQ service order: %s\n" order;
  let t = Text_table.create [ "quantity"; "value (s)"; "note" ] in
  Text_table.add_row t [ "lower bound on any H(f,m)"; Text_table.cell_f r.h_lower_bound; "Golestani" ];
  Text_table.add_row t [ "Theorem 1 bound (SFQ)"; Text_table.cell_f r.h_sfq_bound; "= 2x lower bound" ];
  Text_table.add_row t
    [ "measured H under WFQ"; Text_table.cell_f r.wfq_h; "~2x lower bound: Example 1" ];
  Text_table.add_row t [ "measured H under SFQ"; Text_table.cell_f r.sfq_h; "within Theorem 1" ];
  Text_table.print t;
  print_newline ()
