open Sfq_util
open Sfq_base
open Sfq_core
open Sfq_netsim

type row = { rule : string; low_avg_ms : float; low_max_ms : float; high_avg_ms : float }
type result = { rows : row list }

let capacity = 1.0e6
let pkt_len = 8 * 250
let n_low = 4
let n_high = 4
let low_rate = 50.0e3
let high_rate = (capacity -. (float_of_int n_low *. low_rate)) /. float_of_int n_high
let duration = 30.0

let weights =
  Weights.of_fun (fun f -> if f < n_low then low_rate else high_rate)

let run_rule (rule, tie) =
  let sim = Sim.create () in
  let sched = Sfq.sched (Sfq.create ?tie weights) in
  let server =
    Server.create sim ~name:"tie" ~rate:(Rate_process.constant capacity) ~sched ()
  in
  let low = Stats.create () and high = Stats.create () in
  Server.on_depart server (fun p ~start:_ ~departed ->
      let d = departed -. p.Packet.born in
      if p.Packet.flow < n_low then Stats.add low d else Stats.add high d);
  (* Synchronized pacing makes start-tag ties frequent: all flows emit
     at t = 0 and at rational multiples of each other's periods. *)
  for flow = 0 to n_low - 1 do
    ignore
      (Source.cbr sim ~target:(Server.inject server) ~flow ~len:pkt_len ~rate:low_rate
         ~start:0.0 ~stop:duration)
  done;
  for i = 0 to n_high - 1 do
    ignore
      (Source.greedy sim ~server ~flow:(n_low + i) ~len:pkt_len ~total:1_000_000 ~window:4
         ~start:0.0 ())
  done;
  Sim.run sim ~until:(duration +. 1.0);
  {
    rule;
    low_avg_ms = 1000.0 *. Stats.mean low;
    low_max_ms = 1000.0 *. Stats.max_value low;
    high_avg_ms = 1000.0 *. Stats.mean high;
  }

let run () =
  let w f = Weights.get weights f in
  let rules =
    [
      ("arrival order", None);
      ("low-rate first", Some (Sfq_sched.Tag_queue.Low_rate w));
      ("high-rate first", Some (Sfq_sched.Tag_queue.High_rate w));
    ]
  in
  { rows = List.map run_rule rules }

let print r =
  print_endline "== §2.3 tie-break ablation: 4 paced 50 Kb/s flows vs 4 backlogged flows ==";
  let t =
    Text_table.create [ "tie rule"; "low-rate avg ms"; "low-rate max ms"; "high-rate avg ms" ]
  in
  List.iter
    (fun row ->
      Text_table.add_row t
        [
          row.rule;
          Text_table.cell_f ~decimals:3 row.low_avg_ms;
          Text_table.cell_f ~decimals:3 row.low_max_ms;
          Text_table.cell_f ~decimals:3 row.high_avg_ms;
        ])
    r.rows;
  Text_table.print t;
  print_endline
    "(the delay guarantee is tie-independent — max delays agree; favouring low-rate\n\
    \ flows on ties trims their average, as §2.3 suggests.)";
  print_newline ()
