open Sfq_util
open Sfq_base
open Sfq_sched
open Sfq_netsim
open Sfq_analysis

type result = {
  c : float;
  wfq_v1 : float;
  wfq_wf : float;
  wfq_wm : float;
  sfq_wf : float;
  sfq_wm : float;
}

let flow_f = 1
let flow_m = 2
let pkt_len = 1_000 (* bits; weights 1000 bits/s = 1 pkt/s *)

let run_disc ~c sched_view vtime_probe =
  let sim = Sim.create () in
  let rate =
    (* 1 pkt/s during [0,1), C pkt/s afterwards. *)
    Rate_process.of_segments [ (1.0, float_of_int pkt_len) ] ~tail:(c *. float_of_int pkt_len)
  in
  let server = Server.create sim ~name:"ex2" ~rate ~sched:sched_view () in
  let log = Service_log.attach server in
  let npkts = int_of_float c + 1 in
  Sim.schedule sim ~at:0.0 (fun () ->
      for seq = 1 to npkts do
        Server.inject server (Packet.make ~flow:flow_f ~seq ~len:pkt_len ~born:0.0 ())
      done);
  let v1 = ref 0.0 in
  Sim.schedule sim ~at:1.0 (fun () ->
      v1 := vtime_probe ();
      for seq = 1 to npkts do
        Server.inject server (Packet.make ~flow:flow_m ~seq ~len:pkt_len ~born:1.0 ())
      done);
  Sim.run sim ~until:2.0;
  let pkts flow = Service_log.service log flow ~t1:1.0 ~t2:2.0 /. float_of_int pkt_len in
  (!v1, pkts flow_f, pkts flow_m)

let run ?(c = 10.0) () =
  if c < 2.0 then invalid_arg "Ex2_variable_rate.run: c must be >= 2";
  let weights = Weights.uniform (float_of_int pkt_len) in
  let wfq = Wfq.create ~capacity:(c *. float_of_int pkt_len) weights in
  let sim_probe () = Wfq.vtime wfq ~now:1.0 /. 1.0 in
  let wfq_v1, wfq_wf, wfq_wm = run_disc ~c (Wfq.sched wfq) sim_probe in
  let sfq_v1, sfq_wf, sfq_wm =
    run_disc ~c (Disc.make Disc.Sfq weights) (fun () -> 0.0)
  in
  ignore sfq_v1;
  { c; wfq_v1; wfq_wf; wfq_wm; sfq_wf; sfq_wm }

let print r =
  print_endline "== Example 2: fairness over a variable-rate server (actual 1 then C pkt/s) ==";
  Printf.printf "WFQ fluid virtual time v(1) = %.2f (paper predicts C = %.0f)\n" r.wfq_v1 r.c;
  let t = Text_table.create [ "discipline"; "W_f(1,2) pkts"; "W_m(1,2) pkts"; "fair share" ] in
  let fair = Printf.sprintf "%.1f each" (r.c /. 2.0) in
  Text_table.add_row t
    [ "WFQ"; Text_table.cell_f ~decimals:1 r.wfq_wf; Text_table.cell_f ~decimals:1 r.wfq_wm; fair ];
  Text_table.add_row t
    [ "SFQ"; Text_table.cell_f ~decimals:1 r.sfq_wf; Text_table.cell_f ~decimals:1 r.sfq_wm; fair ];
  Text_table.print t;
  print_newline ()
