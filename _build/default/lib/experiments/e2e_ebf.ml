open Sfq_util
open Sfq_base
open Sfq_core
open Sfq_netsim

type tail_point = { gamma_ms : float; empirical : float; bound : float }
type result = { k : int; base_ms : float; points : tail_point list; violations : int }

let capacity = 1.0e6
let pkt_len = 8 * 250
let flow = 0
let rho = 100.0e3
let sigma = 4.0 *. float_of_int pkt_len
let cross_per_hop = 2
let prop_delay = 0.001
let duration = 60.0

let beta =
  Bounds.sfq_beta
    ~sum_other_lmax:(float_of_int (cross_per_hop * pkt_len))
    ~len:(float_of_int pkt_len) ~capacity ~delta:0.0

(* Least-squares exponential-tail fit of per-hop slack samples:
   survival(γ) ≈ B e^{−λγ}. The fitted curve is then inflated so it
   upper-bounds every empirical survival point — eq. 62 needs a valid
   per-hop envelope, not a best fit. *)
let fit_tail slacks =
  let n = Array.length slacks in
  let sorted = Array.copy slacks in
  Array.sort compare sorted;
  let survival g =
    let rec count i acc = if i < 0 || sorted.(i) <= g then acc else count (i - 1) (acc + 1) in
    float_of_int (count (n - 1) 0) /. float_of_int n
  in
  let gmax = sorted.(n - 1) in
  let grid = List.init 10 (fun i -> float_of_int (i + 1) /. 12.0 *. Float.max gmax 1e-6) in
  let pts =
    List.filter_map
      (fun g ->
        let s = survival g in
        if s > 0.0 then Some (g, log s) else None)
      grid
  in
  match pts with
  | [] | [ _ ] -> (1.0, 1.0e9, survival) (* essentially no tail *)
  | _ ->
    let m = float_of_int (List.length pts) in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
    let slope = ((m *. sxy) -. (sx *. sy)) /. Float.max ((m *. sxx) -. (sx *. sx)) 1e-30 in
    let lambda = Float.max (-.slope) 1e-3 in
    let b0 = exp ((sy +. (lambda *. sx)) /. m) in
    (* Inflate B until the envelope dominates every sampled point. *)
    let b =
      List.fold_left
        (fun b g ->
          let s = survival g in
          if s > b *. exp (-.lambda *. g) then s /. exp (-.lambda *. g) else b)
        b0 grid
    in
    (Float.max b 1e-12, lambda, survival)

let run ?(seed = 29) ?(k = 3) () =
  let sim = Sim.create () in
  let rng = Rng.create seed in
  let weights =
    Weights.of_fun (fun f ->
        if f = flow then rho else (capacity -. rho) /. float_of_int cross_per_hop)
  in
  let servers =
    List.init k (fun h ->
        Server.create sim
          ~name:(Printf.sprintf "ebf%d" h)
          ~rate:(Rate_process.ebf ~c:capacity ~scale:(0.2 *. capacity) ~seg:0.01 ~rng:(Rng.split rng))
          ~sched:(Disc.make Disc.Sfq weights) ())
  in
  let tandem =
    Tandem.chain sim ~servers
      ~prop_delays:(List.init (Stdlib.max 0 (k - 1)) (fun _ -> prop_delay))
      ~forward:(fun p -> p.Packet.flow = flow)
      ()
  in
  List.iter
    (fun server ->
      for i = 1 to cross_per_hop do
        ignore
          (Source.greedy sim ~server ~flow:(100 + i) ~len:pkt_len ~total:1_000_000 ~window:4
             ~start:0.0 ())
      done)
    servers;
  (* Per-hop EAT chains (eq. 37 at each server) and slack samples. *)
  let hop_slacks = Array.init k (fun _ -> Vec.create ()) in
  let eat1 = Hashtbl.create 4096 in
  List.iteri
    (fun h server ->
      let eat = Sfq_sched.Eat.create () in
      let eat_of = Hashtbl.create 256 in
      Server.on_inject server (fun p ->
          if p.Packet.flow = flow then begin
            let e =
              Sfq_sched.Eat.on_arrival eat ~now:(Sim.now sim) ~flow ~len:p.Packet.len
                ~rate:rho
            in
            Hashtbl.replace eat_of p.Packet.seq e;
            if h = 0 then Hashtbl.replace eat1 p.Packet.seq e
          end);
      Server.on_depart server (fun p ~start:_ ~departed ->
          if p.Packet.flow = flow then begin
            match Hashtbl.find_opt eat_of p.Packet.seq with
            | None -> ()
            | Some e -> Vec.push hop_slacks.(h) (departed -. e -. beta)
          end))
    servers;
  (* End-to-end slack beyond the deterministic base. *)
  let base_from_eat1 =
    (float_of_int k *. beta) +. (float_of_int (k - 1) *. prop_delay)
  in
  let e2e_slacks = Vec.create () in
  Tandem.on_exit tandem (fun p ~departed ->
      if p.Packet.flow = flow then begin
        match Hashtbl.find_opt eat1 p.Packet.seq with
        | None -> ()
        | Some e1 -> Vec.push e2e_slacks (departed -. e1 -. base_from_eat1)
      end);
  ignore
    (Source.leaky_bucket sim ~target:(Tandem.inject tandem) ~flow ~len:pkt_len ~sigma
       ~rho ~flush_every:0.05 ~start:0.0 ~stop:duration);
  Sim.run sim ~until:(duration +. 2.0);
  (* Fit per-hop envelopes and compose per Corollary 1. *)
  let fits = Array.map (fun v -> fit_tail (Vec.to_array v)) hop_slacks in
  let sum_b = Array.fold_left (fun acc (b, _, _) -> acc +. b) 0.0 fits in
  let inv_lambda = Array.fold_left (fun acc (_, l, _) -> acc +. (1.0 /. l)) 0.0 fits in
  let e2e = Vec.to_array e2e_slacks in
  let n = Array.length e2e in
  Array.sort compare e2e;
  let empirical g =
    let rec count i acc = if i < 0 || e2e.(i) <= g then acc else count (i - 1) (acc + 1) in
    float_of_int (count (n - 1) 0) /. float_of_int n
  in
  let gmax = if n = 0 then 0.01 else Float.max e2e.(n - 1) 1e-4 in
  let points =
    List.init 8 (fun i ->
        let g = float_of_int (i + 1) /. 8.0 *. (1.5 *. gmax) in
        {
          gamma_ms = 1000.0 *. g;
          empirical = empirical g;
          bound = Bounds.ebf_tail ~b:sum_b ~alpha:(1.0 /. inv_lambda) ~gamma:g;
        })
  in
  let violations =
    List.length (List.filter (fun p -> p.bound < 1.0 && p.empirical > p.bound +. 1e-9) points)
  in
  {
    k;
    base_ms = 1000.0 *. ((sigma /. rho) +. base_from_eat1);
    points;
    violations;
  }

let print r =
  Printf.printf
    "== Theorem 5 / Corollary 1 (EBF): end-to-end tail through %d EBF servers ==\n" r.k;
  Printf.printf "deterministic base (sigma/rho + K*beta + taus): %.2f ms\n" r.base_ms;
  let t = Text_table.create [ "gamma ms"; "empirical P(slack>gamma)"; "composed bound" ] in
  List.iter
    (fun p ->
      Text_table.add_row t
        [
          Text_table.cell_f ~decimals:2 p.gamma_ms;
          Printf.sprintf "%.4f" p.empirical;
          Printf.sprintf "%.4f" (Float.min p.bound 1.0);
        ])
    r.points;
  Text_table.print t;
  Printf.printf "bound violations (where informative): %d\n\n" r.violations
