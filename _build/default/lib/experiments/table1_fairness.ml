open Sfq_util
open Sfq_base
open Sfq_netsim
open Sfq_analysis

type row = {
  disc : string;
  h_backlogged : float;
  h_variable : float;
  h_catch_up : float;
  h_high_weight : float;
}

type result = { rows : row list; h_bound_equal : float; h_bound_high : float }

let pkt_len = 1_000 (* bits *)
let rate = 100.0 (* bits/s reserved per flow in the equal scenarios *)
let assumed = 4.0 *. rate (* WFQ/FQS assumed capacity *)

(* Run [spec] over a scenario defined by an injection script and a rate
   process; measure H between flows 1 and 2. *)
let measure spec ~weights ~rates ~rate_process ~horizon ~script =
  let sim = Sim.create () in
  let server =
    Server.create sim ~name:"table1" ~rate:rate_process ~sched:(Disc.make spec weights) ()
  in
  let log = Service_log.attach server in
  script sim server;
  Sim.run sim ~until:horizon;
  Fairness.max_pairwise_h log ~rates ~until:(Sim.now sim) ~exact:true

let burst_at sim server ~flow ~n ~at ~len =
  Sim.schedule sim ~at (fun () ->
      for seq = 1 to n do
        Server.inject server (Packet.make ~flow ~seq ~len ~born:at ())
      done)

(* Scenario 1: both flows dump a backlog at t=0; constant server. *)
let backlogged spec ~n =
  measure spec
    ~weights:(Weights.uniform rate)
    ~rates:[ (1, rate); (2, rate) ]
    ~rate_process:(Rate_process.constant assumed)
    ~horizon:1.0e7
    ~script:(fun sim server ->
      burst_at sim server ~flow:1 ~n ~at:0.0 ~len:pkt_len;
      burst_at sim server ~flow:2 ~n ~at:0.0 ~len:pkt_len)

(* Scenario 2: Example-2 dynamics at Table-1 scale — the server is much
   slower than the assumed capacity at first, and flow 2 becomes
   backlogged only after the slow phase. Algorithms whose virtual time
   references the assumed capacity (WFQ, FQS) starve the late flow. *)
let variable spec ~n =
  let slow = rate and fast = 4.0 *. assumed in
  let t2 = float_of_int (n / 2) *. float_of_int pkt_len /. slow /. 10.0 in
  measure spec
    ~weights:(Weights.uniform rate)
    ~rates:[ (1, rate); (2, rate) ]
    ~rate_process:(Rate_process.of_segments [ (t2, slow) ] ~tail:fast)
    ~horizon:1.0e7
    ~script:(fun sim server ->
      burst_at sim server ~flow:1 ~n:(2 * n) ~at:0.0 ~len:pkt_len;
      burst_at sim server ~flow:2 ~n ~at:t2 ~len:pkt_len)

(* Scenario 3: flow 1 monopolizes the idle server, then flow 2 arrives;
   Virtual Clock's tags punish flow 1 without bound as n grows. *)
let catch_up spec ~n =
  let c = assumed in
  let t2 = float_of_int (n / 2) *. float_of_int pkt_len /. c in
  measure spec
    ~weights:(Weights.uniform rate)
    ~rates:[ (1, rate); (2, rate) ]
    ~rate_process:(Rate_process.constant c)
    ~horizon:1.0e7
    ~script:(fun sim server ->
      burst_at sim server ~flow:1 ~n:(2 * n) ~at:0.0 ~len:pkt_len;
      burst_at sim server ~flow:2 ~n ~at:t2 ~len:pkt_len)

(* Scenario 4: the paper's DRR blow-up — two weight-100 flows plus one
   weight-1 flow whose single-packet round pins the quantum at l^max
   per unit weight, so the weight-100 flows burst 100 packets per
   round. *)
let high_weight spec ~n =
  let w = Weights.of_list [ (1, 100.0); (2, 100.0); (3, 1.0) ] in
  measure spec ~weights:w
    ~rates:[ (1, 100.0); (2, 100.0) ]
    ~rate_process:(Rate_process.constant 402.0)
    ~horizon:1.0e7
    ~script:(fun sim server ->
      burst_at sim server ~flow:1 ~n ~at:0.0 ~len:pkt_len;
      burst_at sim server ~flow:2 ~n ~at:0.0 ~len:pkt_len;
      burst_at sim server ~flow:3 ~n:(Stdlib.max 1 (n / 50)) ~at:0.0 ~len:pkt_len)

type kind = KWfq | KWfqReal | KFqs | KWf2q | KScfq | KSfq | KDrr | KVc | KFa

let kinds = [ KWfq; KWfqReal; KFqs; KWf2q; KScfq; KSfq; KDrr; KVc; KFa ]

(* DRR's quantum is a configuration choice: in the equal-weight
   scenarios we give it the favourable one (one packet per flow per
   round); in the high-weight scenario the weight-1 flow pins the
   per-unit-weight quantum at l^max — the paper's point is exactly that
   no quantum choice fixes this. *)
let disc_of kind ~high =
  match kind with
  | KWfq -> Disc.Wfq { capacity = assumed }
  | KWfqReal -> Disc.Wfq_real { capacity = assumed }
  | KFqs -> Disc.Fqs { capacity = assumed }
  | KWf2q -> Disc.Wf2q { capacity = assumed }
  | KScfq -> Disc.Scfq
  | KSfq -> Disc.Sfq
  | KDrr -> Disc.Drr { quantum = (if high then float_of_int pkt_len else 10.0) }
  | KVc -> Disc.Virtual_clock
  | KFa -> Disc.Fair_airport

let run ?(quick = false) () =
  let n = if quick then 60 else 200 in
  let rows =
    List.map
      (fun kind ->
        let spec = disc_of kind ~high:false in
        {
          disc = Disc.name spec;
          h_backlogged = backlogged spec ~n;
          h_variable = variable spec ~n;
          h_catch_up = catch_up spec ~n;
          h_high_weight =
            high_weight (disc_of kind ~high:true) ~n:(if quick then 100 else 300);
        })
      kinds
  in
  let l = float_of_int pkt_len in
  {
    rows;
    h_bound_equal = Sfq_core.Bounds.h_sfq ~lmax_f:l ~r_f:rate ~lmax_m:l ~r_m:rate;
    h_bound_high = Sfq_core.Bounds.h_sfq ~lmax_f:l ~r_f:100.0 ~lmax_m:l ~r_m:100.0;
  }

let print r =
  print_endline "== Table 1: empirical fairness H(f,m), seconds of normalized service ==";
  Printf.printf
    "Theorem 1 bound: %.1f s (equal-weight scenarios) / %.1f s (high-weight scenario)\n"
    r.h_bound_equal r.h_bound_high;
  let t =
    Text_table.create
      [ "discipline"; "backlogged"; "variable-rate"; "catch-up"; "high-weight(DRR case)" ]
  in
  List.iter
    (fun row ->
      Text_table.add_row t
        [
          row.disc;
          Text_table.cell_f ~decimals:1 row.h_backlogged;
          Text_table.cell_f ~decimals:1 row.h_variable;
          Text_table.cell_f ~decimals:1 row.h_catch_up;
          Text_table.cell_f ~decimals:1 row.h_high_weight;
        ])
    r.rows;
  Text_table.print t;
  print_endline
    "(paper: SFQ/SCFQ stay within the bound everywhere; WFQ/FQS degrade on variable-rate;\n\
    \ Virtual Clock is unbounded on catch-up; DRR blows up on high-weight.)";
  print_newline ()
