open Sfq_util
open Sfq_core
open Sfq_netsim
open Sfq_analysis

type shares = { c : float; d : float; b : float }
type result = { phase1 : shares; phase2 : shares; phase3 : shares }

let flow_c = 1
let flow_d = 2
let flow_b = 3
let pkt_len = 8 * 500

let run ?(capacity = 1.0e6) ?(duration = 30.0) () =
  let sim = Sim.create () in
  let h = Hsfq.create () in
  let class_a = Hsfq.add_class h ~parent:(Hsfq.root h) ~weight:1.0 in
  let leaf_b =
    Hsfq.add_leaf h ~parent:(Hsfq.root h) ~weight:1.0 (Sfq_sched.Fifo.sched (Sfq_sched.Fifo.create ()))
  in
  let leaf_c =
    Hsfq.add_leaf h ~parent:class_a ~weight:1.0 (Sfq_sched.Fifo.sched (Sfq_sched.Fifo.create ()))
  in
  let leaf_d =
    Hsfq.add_leaf h ~parent:class_a ~weight:1.0 (Sfq_sched.Fifo.sched (Sfq_sched.Fifo.create ()))
  in
  Hsfq.set_classifier h
    (Hsfq.classifier_by_flow [ (flow_c, leaf_c); (flow_d, leaf_d); (flow_b, leaf_b) ]);
  let server =
    Server.create sim ~name:"link" ~rate:(Rate_process.constant capacity) ~sched:(Hsfq.sched h)
      ()
  in
  let log = Service_log.attach server in
  (* C and D backlogged throughout: paced slightly above their best-case
     share would starve the queue model, so use greedy windows. *)
  let total = int_of_float (capacity *. duration /. float_of_int pkt_len) + 100 in
  ignore (Source.greedy sim ~server ~flow:flow_c ~len:pkt_len ~total ~window:4 ~start:0.0 ());
  ignore (Source.greedy sim ~server ~flow:flow_d ~len:pkt_len ~total ~window:4 ~start:0.0 ());
  let third = duration /. 3.0 in
  (* B's budget equals its fair share (50%) over the middle third, so
     it terminates at roughly 2/3 of the run. *)
  ignore
    (Source.greedy sim ~server ~flow:flow_b ~len:pkt_len
       ~total:(int_of_float (0.5 *. capacity *. third /. float_of_int pkt_len))
       ~window:4 ~start:third ());
  Sim.run sim ~until:duration;
  let share flow ~t1 ~t2 = Service_log.service log flow ~t1 ~t2 /. (capacity *. (t2 -. t1)) in
  let phase ~t1 ~t2 =
    { c = share flow_c ~t1 ~t2; d = share flow_d ~t1 ~t2; b = share flow_b ~t1 ~t2 }
  in
  (* Trim phase edges to avoid boundary effects of B's start/stop. *)
  let eps = 0.5 in
  {
    phase1 = phase ~t1:0.0 ~t2:(third -. eps);
    phase2 = phase ~t1:(third +. eps) ~t2:((2.0 *. third) -. eps);
    phase3 = phase ~t1:((2.0 *. third) +. eps) ~t2:(duration -. eps);
  }

let print r =
  print_endline "== Example 3: hierarchical link sharing (root{A{C,D},B}, all weights 1) ==";
  let t =
    Text_table.create [ "phase"; "C share"; "D share"; "B share"; "expected C/D/B" ]
  in
  let row label s expect =
    Text_table.add_row t
      [
        label;
        Text_table.cell_pct s.c;
        Text_table.cell_pct s.d;
        Text_table.cell_pct s.b;
        expect;
      ]
  in
  row "B idle" r.phase1 "50% / 50% / 0%";
  row "B active" r.phase2 "25% / 25% / 50%";
  row "B idle again" r.phase3 "50% / 50% / 0%";
  Text_table.print t;
  print_newline ()
