open Sfq_util
open Sfq_base
open Sfq_netsim

type point = {
  n_low : int;
  utilization : float;
  wfq_avg_ms : float;
  sfq_avg_ms : float;
  ratio : float;
}

type result = { points : point list; duration : float }

let capacity = 1.0e6
let pkt_len = 8 * 200
let high_rate = 100.0e3
let n_high = 7
let low_rate = 32.0e3

let avg_low_delay spec ~n_low ~duration ~seed =
  let rng = Rng.create seed in
  let high_flows = List.init n_high (fun i -> i) in
  let low_flows = List.init n_low (fun i -> n_high + i) in
  let weights =
    Weights.of_list
      (List.map (fun f -> (f, high_rate)) high_flows
      @ List.map (fun f -> (f, low_rate)) low_flows)
  in
  let sim = Sim.create () in
  let server =
    Server.create sim ~name:"fig2b" ~rate:(Rate_process.constant capacity)
      ~sched:(Disc.make spec weights) ()
  in
  let stats = Stats.create () in
  Server.on_depart server (fun p ~start:_ ~departed ->
      if p.Packet.flow >= n_high then Stats.add stats (departed -. p.Packet.born));
  let spawn flow rate =
    ignore
      (Source.poisson sim ~target:(Server.inject server) ~flow ~len:pkt_len ~rate
         ~rng:(Rng.split rng) ~start:0.0 ~stop:duration)
  in
  List.iter (fun f -> spawn f high_rate) high_flows;
  List.iter (fun f -> spawn f low_rate) low_flows;
  Sim.run_all sim ();
  1000.0 *. Stats.mean stats

let run ?(duration = 200.0) ?(seed = 7) () =
  let points =
    List.map
      (fun n_low ->
        let offered = (float_of_int n_high *. high_rate) +. (float_of_int n_low *. low_rate) in
        let wfq = avg_low_delay (Disc.Wfq { capacity }) ~n_low ~duration ~seed in
        let sfq = avg_low_delay Disc.Sfq ~n_low ~duration ~seed in
        {
          n_low;
          utilization = offered /. capacity;
          wfq_avg_ms = wfq;
          sfq_avg_ms = sfq;
          ratio = (if sfq > 0.0 then wfq /. sfq else nan);
        })
      [ 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
  in
  { points; duration }

let print r =
  Printf.printf
    "== Fig 2(b): avg delay of 32 Kb/s flows, WFQ vs SFQ (1 Mb/s link, %gs sim) ==\n"
    r.duration;
  let t =
    Text_table.create
      [ "low flows"; "offered util"; "WFQ avg ms"; "SFQ avg ms"; "WFQ/SFQ" ]
  in
  List.iter
    (fun p ->
      Text_table.add_row t
        [
          string_of_int p.n_low;
          Text_table.cell_pct p.utilization;
          Text_table.cell_f ~decimals:2 p.wfq_avg_ms;
          Text_table.cell_f ~decimals:2 p.sfq_avg_ms;
          Text_table.cell_f ~decimals:2 p.ratio;
        ])
    r.points;
  Text_table.print t;
  print_endline "(paper: WFQ 53% higher at 80.81% utilization.)";
  print_newline ()
