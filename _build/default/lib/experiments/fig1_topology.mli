(** Fig. 1(a) on the full topology (E20).

    The flat Fig. 1(b) experiment ({!Fig1_tcp_fairness}) models only
    the bottleneck switch. This variant builds the paper's actual
    topology with {!Sfq_netsim.Net}: three source hosts with 10 Mb/s
    access links into the switch, the 2.5 Mb/s switch→destination
    bottleneck, and the video flow given strict priority at the
    bottleneck only. TCP runs end-to-end over the two-hop path
    ({!Sfq_netsim.Tcp.reno_over}). The result must show the same shape
    as the flat experiment — starvation of the late flow under WFQ, an
    even split under SFQ — demonstrating the conclusion is not an
    artifact of the single-server abstraction. *)

type run_stats = { src2_window : int; src3_window : int }

type result = { wfq : run_stats; sfq : run_stats }

val run : ?seed:int -> ?duration:float -> unit -> result
val print : result -> unit
