open Sfq_util
open Sfq_base
open Sfq_core
open Sfq_netsim
open Sfq_analysis

type result = {
  fa_max_ms : float;
  vc_max_ms : float;
  sfq_max_ms : float;
  wfq_bound_ms : float;
  fa_h : float;
  fa_h_bound : float;
  gsq_served : int;
  asq_served : int;
}

let capacity = 1.0e6
let pkt_len = 8 * 250
let tagged = 0
let tagged_rate = 50.0e3
let nothers = 4
let duration = 20.0

(* Delay scenario: tagged flow paced at its reservation among
   backlogged competitors; Σ r = C. *)
let delay_run spec =
  let other_rate = (capacity -. tagged_rate) /. float_of_int nothers in
  let weights =
    Weights.of_fun (fun f -> if f = tagged then tagged_rate else other_rate)
  in
  let sim = Sim.create () in
  let server =
    Server.create sim ~name:"fa-delay" ~rate:(Rate_process.constant capacity)
      ~sched:(Disc.make spec weights) ()
  in
  let trace = Trace.attach server in
  for i = 1 to nothers do
    ignore (Source.greedy sim ~server ~flow:i ~len:pkt_len ~total:1_000_000 ~window:4 ~start:0.0 ())
  done;
  ignore
    (Source.cbr sim ~target:(Server.inject server) ~flow:tagged ~len:pkt_len ~rate:tagged_rate
       ~start:0.0 ~stop:duration);
  Sim.run sim ~until:(duration +. 1.0);
  (1000.0 *. Trace.max_delay trace tagged, server)

(* Fairness scenario: two greedy flows on a fluctuating server whose
   rate never drops below [floor]. *)
let fairness_run ~seed =
  let floor_rate = 0.5 *. capacity in
  let rng = Rng.create seed in
  let rate =
    (* Uniform in [floor, capacity]: minimum capacity = floor, as
       Theorem 8 requires. *)
    Rate_process.fc_random ~c:(0.75 *. capacity) ~delta:1.0e9 ~seg:0.02
      ~spread:(0.25 *. capacity) ~rng
  in
  let r_f = 0.25 *. capacity and r_m = 0.25 *. capacity in
  let weights = Weights.uniform r_f in
  let fa = Fair_airport.create weights in
  let sim = Sim.create () in
  let server = Server.create sim ~name:"fa-fair" ~rate ~sched:(Fair_airport.sched fa) () in
  let log = Service_log.attach server in
  ignore (Source.greedy sim ~server ~flow:1 ~len:pkt_len ~total:1_000_000 ~window:4 ~start:0.0 ());
  ignore (Source.greedy sim ~server ~flow:2 ~len:pkt_len ~total:1_000_000 ~window:4 ~start:0.0 ());
  Sim.run sim ~until:duration;
  let h = Fairness.exact_h log ~f:1 ~m:2 ~r_f ~r_m ~until:(Sim.now sim) in
  let l = float_of_int pkt_len in
  let bound =
    Bounds.h_fair_airport ~lmax_f:l ~r_f ~lmax_m:l ~r_m ~lmax:l ~capacity:floor_rate
  in
  (h, bound, Fair_airport.gsq_served fa, Fair_airport.asq_served fa)

let run ?(seed = 23) () =
  let fa_max_ms, _ = delay_run Disc.Fair_airport in
  let vc_max_ms, _ = delay_run Disc.Virtual_clock in
  let sfq_max_ms, _ = delay_run Disc.Sfq in
  let fa_h, fa_h_bound, gsq_served, asq_served = fairness_run ~seed in
  let len = float_of_int pkt_len in
  {
    fa_max_ms;
    vc_max_ms;
    sfq_max_ms;
    wfq_bound_ms =
      1000.0 *. Bounds.wfq_departure ~eat:0.0 ~len ~rate:tagged_rate ~lmax:len ~capacity;
    fa_h;
    fa_h_bound;
    gsq_served;
    asq_served;
  }

let print r =
  print_endline "== Appendix B: Fair Airport ==";
  let t = Text_table.create [ "discipline"; "paced-flow max delay ms"; "Thm 9 / WFQ bound ms" ] in
  Text_table.add_row t
    [ "FairAirport"; Text_table.cell_f ~decimals:2 r.fa_max_ms; Text_table.cell_f ~decimals:2 r.wfq_bound_ms ];
  Text_table.add_row t [ "VirtualClock"; Text_table.cell_f ~decimals:2 r.vc_max_ms; "" ];
  Text_table.add_row t [ "SFQ"; Text_table.cell_f ~decimals:2 r.sfq_max_ms; "(different bound)" ];
  Text_table.print t;
  Printf.printf
    "fairness on fluctuating server: H = %.4f s (Theorem 8 bound %.4f s); GSQ/ASQ split: %d/%d\n\n"
    r.fa_h r.fa_h_bound r.gsq_served r.asq_served
