open Sfq_util
open Sfq_base
open Sfq_core
open Sfq_netsim

type result = {
  residual_fc_holds : bool;
  residual_worst_deficit : float;
  sigma : float;
  thm4_worst_slack_ms : float;
  packets_checked : int;
}

let capacity = 1.0e6
let rho = 0.4e6
let sigma = 20_000.0 (* bits *)
let pkt_len = 8 * 250
let n_low = 3
let low_rate = (capacity -. rho) /. float_of_int n_low (* Σ = C − ρ exactly *)
let duration = 60.0

let run ?(seed = 17) () =
  let sim = Sim.create () in
  ignore (Rng.create seed);
  let weights = Weights.uniform low_rate in
  let server =
    Server.create sim ~name:"prio" ~rate:(Rate_process.constant capacity)
      ~sched:(Disc.make Disc.Sfq weights) ()
  in
  (* High-priority aggregate: a violently bursty on-off source, tamed
     by the (σ, ρ) shaper before it reaches the priority queue. *)
  let shaper =
    Shaper.create sim ~sigma ~rho ~target:(Server.inject_priority server)
  in
  ignore
    (Source.on_off sim ~target:(Shaper.inject shaper) ~flow:99 ~len:pkt_len
       ~peak_rate:(2.0 *. capacity) ~on:0.03 ~off:0.02 ~start:0.0 ~stop:duration);
  (* Residual work tracking: every low-priority service completion adds
     to W_low; the FC claim is about this process. *)
  let low_events = Vec.create () in
  let eat = Sfq_sched.Eat.create () in
  let eat_of = Hashtbl.create 64 in
  let worst_slack = ref infinity and checked = ref 0 in
  Server.on_inject server (fun p ->
      if p.Packet.flow <> 99 then begin
        let e =
          Sfq_sched.Eat.on_arrival eat ~now:(Sim.now sim) ~flow:p.Packet.flow
            ~len:p.Packet.len ~rate:low_rate
        in
        Hashtbl.replace eat_of (p.Packet.flow, p.Packet.seq) e
      end);
  Server.on_depart server (fun p ~start:_ ~departed ->
      if p.Packet.flow <> 99 then begin
        Vec.push low_events (departed, float_of_int p.Packet.len);
        match Hashtbl.find_opt eat_of (p.Packet.flow, p.Packet.seq) with
        | None -> ()
        | Some e ->
          incr checked;
          (* Theorem 4 with the residual server (C−ρ, σ). *)
          let bound =
            Bounds.sfq_departure ~eat:e
              ~sum_other_lmax:(float_of_int ((n_low - 1) * pkt_len))
              ~len:(float_of_int p.Packet.len) ~capacity:(capacity -. rho) ~delta:sigma
          in
          worst_slack := Float.min !worst_slack (bound -. departed)
      end);
  for flow = 1 to n_low do
    ignore
      (Source.cbr sim ~target:(Server.inject server) ~flow ~len:pkt_len ~rate:low_rate
         ~start:0.0 ~stop:duration)
  done;
  Sim.run sim ~until:(duration +. 2.0);
  (* Definition 1 check of the residual work process on an interval
     grid, within the low-priority busy period (the paper's FC
     definition is per busy period; the low-priority queue here is
     continuously backlogged modulo pacing jitter, so a coarse grid
     over the middle of the run is the right probe). *)
  let completions = Vec.to_array low_events in
  let work t1 t2 =
    Array.fold_left
      (fun acc (at, len) -> if at > t1 && at <= t2 then acc +. len else acc)
      0.0 completions
  in
  let worst_deficit = ref 0.0 in
  let residual = capacity -. rho in
  let t = ref 2.0 in
  while !t < duration -. 4.0 do
    let spans = [ 0.5; 1.0; 2.0; 4.0 ] in
    List.iter
      (fun span ->
        let t2 = !t +. span in
        if t2 < duration -. 2.0 then begin
          let deficit = (residual *. span) -. work !t t2 in
          if deficit > !worst_deficit then worst_deficit := deficit
        end)
      spans;
    t := !t +. 0.25
  done;
  {
    residual_fc_holds = !worst_deficit <= sigma +. float_of_int pkt_len;
    residual_worst_deficit = !worst_deficit;
    sigma;
    thm4_worst_slack_ms = 1000.0 *. !worst_slack;
    packets_checked = !checked;
  }

let print r =
  print_endline "== §2.3 priority residual: shaped (sigma, rho) priority traffic over SFQ ==";
  Printf.printf
    "residual work process: worst deficit vs (C-rho)t = %.0f bits (sigma = %.0f, +1 pkt \
     tolerance) -> FC model %s\n"
    r.residual_worst_deficit r.sigma
    (if r.residual_fc_holds then "holds" else "VIOLATED");
  Printf.printf
    "Theorem 4 with the residual (C-rho, sigma) server: worst slack %.3f ms over %d \
     packets (>= 0 means the bound held)\n\n"
    r.thm4_worst_slack_ms r.packets_checked
