(** Fig. 2(b) of the paper: average packet delay of low-throughput
    flows, WFQ vs SFQ, at varying link utilization.

    Workload exactly as §2.3: a 1 Mb/s link, 200-byte packets, seven
    Poisson flows of 100 Kb/s plus n ∈ {2..10} Poisson flows of
    32 Kb/s; the switch is simulated for [duration] seconds and the
    mean delay over all low-throughput (32 Kb/s) flows' packets is
    reported. The paper's headline: at 80.81% utilization WFQ's average
    is 53% higher than SFQ's. *)

type point = {
  n_low : int;
  utilization : float;  (** offered load / capacity *)
  wfq_avg_ms : float;
  sfq_avg_ms : float;
  ratio : float;  (** wfq / sfq *)
}

type result = { points : point list; duration : float }

val run : ?duration:float -> ?seed:int -> unit -> result
val print : result -> unit
