open Sfq_util
open Sfq_base
open Sfq_core
open Sfq_netsim

type point = { k : int; measured_max_ms : float; bound_ms : float }
type result = { points : point list }

let capacity = 1.0e6
let pkt_len = 8 * 250
let flow = 0
let flow_rate = 100.0e3
let sigma = 4.0 *. float_of_int pkt_len
let cross_per_hop = 3
let prop_delay = 0.001
let duration = 30.0

let run_k ~k ~seed =
  let sim = Sim.create () in
  (* Cross-traffic flows are distinct per hop: ids 100*h + i. *)
  let weights =
    Weights.of_fun (fun f ->
        if f = flow then flow_rate else (capacity -. flow_rate) /. float_of_int cross_per_hop)
  in
  let servers =
    List.init k (fun h ->
        Server.create sim
          ~name:(Printf.sprintf "hop%d" h)
          ~rate:(Rate_process.constant capacity)
          ~sched:(Disc.make Disc.Sfq weights) ())
  in
  let delays = List.init (Stdlib.max 0 (k - 1)) (fun _ -> prop_delay) in
  (* Cross traffic exits at its own hop; only the tagged flow rides the
     whole chain. *)
  let tandem =
    Tandem.chain sim ~servers ~prop_delays:delays
      ~forward:(fun p -> p.Packet.flow = flow)
      ()
  in
  (* Backlogged cross traffic at every hop. *)
  List.iteri
    (fun h server ->
      for i = 1 to cross_per_hop do
        ignore
          (Source.greedy sim ~server ~flow:((100 * (h + 1)) + i) ~len:pkt_len
             ~total:1_000_000 ~window:4 ~start:0.0 ())
      done)
    servers;
  ignore seed;
  let worst = ref 0.0 in
  Tandem.on_exit tandem (fun p ~departed ->
      if p.Packet.flow = flow then worst := Float.max !worst (departed -. p.Packet.born));
  ignore
    (Source.leaky_bucket sim ~target:(Tandem.inject tandem) ~flow ~len:pkt_len ~sigma
       ~rho:flow_rate ~flush_every:0.05 ~start:0.0 ~stop:duration);
  Sim.run sim ~until:(duration +. 2.0);
  !worst

let bound ~k =
  let len = float_of_int pkt_len in
  let beta =
    Bounds.sfq_beta
      ~sum_other_lmax:(float_of_int (cross_per_hop * pkt_len))
      ~len ~capacity ~delta:0.0
  in
  let betas = List.init k (fun _ -> beta) in
  let taus = List.init (Stdlib.max 0 (k - 1)) (fun _ -> prop_delay) in
  Bounds.e2e_delay_leaky_bucket ~sigma ~rate:flow_rate ~betas ~taus

let run ?(seed = 13) () =
  let points =
    List.map
      (fun k ->
        { k; measured_max_ms = 1000.0 *. run_k ~k ~seed; bound_ms = 1000.0 *. bound ~k })
      [ 1; 2; 3; 4; 5 ]
  in
  { points }

let print r =
  print_endline
    "== Corollary 1: end-to-end delay, leaky-bucket flow through K SFQ servers ==";
  let t = Text_table.create [ "K servers"; "measured max ms"; "bound ms (eq. 115)" ] in
  List.iter
    (fun p ->
      Text_table.add_row t
        [
          string_of_int p.k;
          Text_table.cell_f ~decimals:2 p.measured_max_ms;
          Text_table.cell_f ~decimals:2 p.bound_ms;
        ])
    r.points;
  Text_table.print t;
  print_endline "(measured must stay below the bound; both grow roughly linearly in K.)";
  print_newline ()
