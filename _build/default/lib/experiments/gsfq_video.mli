(** §2.3 generalized SFQ: per-packet rate allocation (eq. 36).

    The paper generalizes SFQ so each packet [p_f^j] may carry its own
    rate [r_f^j] ([F = S + l/r_f^j]), motivated by VBR video whose
    bit-rate varies across time scales; the delay guarantee (Theorem 4)
    then holds relative to the per-packet-rate EAT (eq. 37) as long as
    the {e rate function} never oversubscribes the server
    ([Σ_n R_n(v) <= C]).

    The experiment allocates a synthetic video flow a per-frame-type
    rate — I-frame cells get 3x the rate of B-frame cells, mirroring an
    RCBR-style renegotiated reservation — alongside CBR cross traffic
    sized so the rate function stays below C. Every video packet's
    departure is checked against Theorem 4 with its own EAT; a
    fixed-rate SFQ run of the same traffic shows what the
    generalization buys (lower worst-case lateness for the big
    frames). *)

type result = {
  gsfq_worst_slack_ms : float;
      (** min over video packets of (Theorem 4 bound − departure); ≥ 0
          means the generalized guarantee held *)
  packets_checked : int;
  gsfq_iframe_max_ms : float;  (** worst I-frame cell delay, per-packet rates *)
  fixed_iframe_max_ms : float;  (** same under plain fixed-rate SFQ *)
}

val run : ?seed:int -> unit -> result
val print : result -> unit
