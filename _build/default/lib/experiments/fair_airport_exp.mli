(** Appendix B: Fair Airport = WFQ's delay guarantee + fairness on
    variable-rate servers.

    - Delay (Theorem 9): a paced flow among backlogged competitors on a
      constant-rate server; its max delay must stay within the WFQ
      bound [EAT + l/r + l^max/C] — compare against plain SFQ (whose
      bound is different) and Virtual Clock.
    - Fairness (Theorem 8): two greedy flows on a server whose rate
      fluctuates {e above} a floor C; H must stay within
      [3(l_f/r_f + l_m/r_m) + 2 l^max/C].
    - The GSQ/ASQ split shows the airport mechanism actually engages
      (both queues serve packets). *)

type result = {
  fa_max_ms : float;
  vc_max_ms : float;
  sfq_max_ms : float;
  wfq_bound_ms : float;  (** Theorem 9 rhs minus EAT *)
  fa_h : float;
  fa_h_bound : float;  (** Theorem 8 *)
  gsq_served : int;
  asq_served : int;
}

val run : ?seed:int -> unit -> result
val print : result -> unit
