open Sfq_util
open Sfq_base
open Sfq_netsim

type run_stats = {
  src2_window : int;
  src3_window : int;
  src3_first_435ms : int;
  src2_series : (float * int) list;
  src3_series : (float * int) list;
}

type result = {
  wfq_fluid : run_stats;
  wfq_real : run_stats;
  sfq : run_stats;
  video_rate_bps : float;
}

let capacity = 2.5e6
let video_rate = 1.21e6
let tcp_len = 8 * 200
let video_flow = 1
let src2 = 2
let src3 = 3

let run_disc spec ~seed ~duration =
  let sim = Sim.create () in
  let rng = Rng.create seed in
  let weights = Weights.of_list [ (src2, 1.0); (src3, 1.0) ] in
  let server =
    Server.create sim ~name:"switch" ~rate:(Rate_process.constant capacity)
      ~sched:(Disc.make spec weights) ~flow_buffer_limit:80 ()
  in
  let video =
    Mpeg.vbr sim
      ~target:(Server.inject_priority server)
      ~flow:video_flow ~avg_rate:video_rate ~rng:(Rng.split rng) ~start:0.0 ~stop:duration ()
  in
  let t2 =
    Tcp.reno sim ~server ~flow:src2 ~pkt_len:tcp_len ~start:0.0 ~rto:0.15 ()
  in
  let t3 =
    Tcp.reno sim ~server ~flow:src3 ~pkt_len:tcp_len ~start:(duration /. 2.0) ~rto:0.15 ()
  in
  Sim.run sim ~until:duration;
  let mid = duration /. 2.0 in
  let in_window t = Tcp.delivered_before t duration - Tcp.delivered_before t mid in
  let stats =
    {
      src2_window = in_window t2;
      src3_window = in_window t3;
      src3_first_435ms = Tcp.delivered_before t3 (mid +. 0.435);
      src2_series = Tcp.delivery_series t2;
      src3_series = Tcp.delivery_series t3;
    }
  in
  (stats, video.Mpeg.bits /. duration)

let run ?(seed = 11) ?(duration = 1.0) () =
  let wfq_fluid, video_rate_bps = run_disc (Disc.Wfq { capacity }) ~seed ~duration in
  let wfq_real, _ = run_disc (Disc.Wfq_real { capacity }) ~seed ~duration in
  let sfq, _ = run_disc Disc.Sfq ~seed ~duration in
  { wfq_fluid; wfq_real; sfq; video_rate_bps }

let print r =
  print_endline "== Fig 1(b): TCP packets delivered after source 3 starts (0.5s..1.0s) ==";
  Printf.printf "video average rate: %.2f Mb/s (target 1.21)\n" (r.video_rate_bps /. 1.0e6);
  let t =
    Text_table.create
      [ "discipline"; "src2 pkts"; "src3 pkts"; "src3 in first 435 ms"; "paper (src2/src3/435ms)" ]
  in
  Text_table.add_row t
    [
      "WFQ (fluid clock)";
      string_of_int r.wfq_fluid.src2_window;
      string_of_int r.wfq_fluid.src3_window;
      string_of_int r.wfq_fluid.src3_first_435ms;
      "342 / ~0 / 2";
    ];
  Text_table.add_row t
    [
      "WFQ (real clock)";
      string_of_int r.wfq_real.src2_window;
      string_of_int r.wfq_real.src3_window;
      string_of_int r.wfq_real.src3_first_435ms;
      "342 / ~0 / 2";
    ];
  Text_table.add_row t
    [
      "SFQ";
      string_of_int r.sfq.src2_window;
      string_of_int r.sfq.src3_window;
      string_of_int r.sfq.src3_first_435ms;
      "189 / 190 / 145";
    ];
  Text_table.print t;
  (* The figure itself: cumulative in-order packets at the destination,
     sampled every 100 ms (the paper plots sequence number vs time). *)
  let sample series at =
    List.fold_left (fun acc (t, n) -> if t <= at then Stdlib.max acc n else acc) 0 series
  in
  let ts = List.init 10 (fun i -> 0.1 *. float_of_int (i + 1)) in
  let curve = Text_table.create ("t (s)" :: List.map (fun t -> Printf.sprintf "%.1f" t) ts) in
  let row label series =
    Text_table.add_row curve (label :: List.map (fun t -> string_of_int (sample series t)) ts)
  in
  row "WFQfl src2" r.wfq_fluid.src2_series;
  row "WFQfl src3" r.wfq_fluid.src3_series;
  row "WFQre src2" r.wfq_real.src2_series;
  row "WFQre src3" r.wfq_real.src3_series;
  row "SFQ   src2" r.sfq.src2_series;
  row "SFQ   src3" r.sfq.src3_series;
  print_endline "cumulative in-order packets (the Fig 1(b) curves):";
  Text_table.print curve;
  print_newline ()
