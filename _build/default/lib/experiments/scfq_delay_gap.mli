(** §2.3's SCFQ-vs-SFQ maximum-delay comparison.

    Closed form (eq. 57): a packet can leave an SCFQ server
    [l/r − l/C] later than the SFQ bound allows — 24.4 ms for a
    200-byte packet of a 64 Kb/s flow on a 100 Mb/s link, growing to
    122 ms over five servers. Simulated part: the 64 Kb/s flow is paced
    at its reservation among backlogged competitors and its max delay is
    measured under SCFQ, SFQ and WFQ. *)

type result = {
  gap_one_server_ms : float;  (** eq. 57 at the paper's parameters *)
  gap_five_servers_ms : float;
  scfq_max_ms : float;
  sfq_max_ms : float;
  wfq_max_ms : float;
  scfq_bound_ms : float;  (** eq. 56 bound minus EAT *)
  sfq_bound_ms : float;  (** Theorem 4 bound minus EAT *)
}

val run : ?nflows:int -> unit -> result
val print : result -> unit
