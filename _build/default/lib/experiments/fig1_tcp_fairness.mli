(** Fig. 1 of the paper: TCP throughput fairness over a variable-rate
    server, WFQ vs SFQ.

    Topology 1(a): three sources share a 2.5 Mb/s switch output link.
    Source 1 is MPEG VBR video (1.21 Mb/s average, 50-byte cells) sent
    at strict priority, so the residual capacity seen by the other two
    is variable. Sources 2 and 3 are TCP Reno with 200-byte packets;
    source 3 starts 500 ms into the 1-second run. The WFQ scheduler
    computes tags against the full 2.5 Mb/s link capacity (as the
    paper's implementation did).

    Paper's numbers for the [0.5 s, 1.0 s] window: WFQ delivered 342
    packets of source 2 and almost none of source 3 (2 packets in the
    first 435 ms); SFQ delivered 189 and 190. The shape to reproduce:
    near-total starvation of the late flow under WFQ, a ~50/50 split
    under SFQ. *)

type run_stats = {
  src2_window : int;  (** in-order packets delivered in [0.5, 1.0] *)
  src3_window : int;
  src3_first_435ms : int;  (** delivered in [0.5, 0.935] *)
  src2_series : (float * int) list;
  src3_series : (float * int) list;
}

type result = {
  wfq_fluid : run_stats;  (** WFQ with the textbook fluid GPS clock *)
  wfq_real : run_stats;  (** WFQ with the practical backlogged-set clock *)
  sfq : run_stats;
  video_rate_bps : float;  (** measured average video rate *)
}

val run : ?seed:int -> ?duration:float -> unit -> result
val print : result -> unit
