lib/experiments/fig2b_avg_delay.mli:
