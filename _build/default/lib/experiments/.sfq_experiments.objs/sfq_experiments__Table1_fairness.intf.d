lib/experiments/table1_fairness.mli:
