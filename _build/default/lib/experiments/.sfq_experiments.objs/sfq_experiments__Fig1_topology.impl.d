lib/experiments/fig1_topology.ml: Disc Mpeg Net Packet Rate_process Rng Server Sfq_base Sfq_netsim Sfq_sched Sfq_util Sim Tcp Text_table Weights
