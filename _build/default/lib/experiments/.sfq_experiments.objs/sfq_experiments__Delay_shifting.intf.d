lib/experiments/delay_shifting.mli:
