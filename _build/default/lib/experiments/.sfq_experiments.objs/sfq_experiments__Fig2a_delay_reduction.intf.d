lib/experiments/fig2a_delay_reduction.mli:
