lib/experiments/priority_residual.mli:
