lib/experiments/priority_residual.ml: Array Bounds Disc Float Hashtbl List Packet Printf Rate_process Rng Server Sfq_base Sfq_core Sfq_netsim Sfq_sched Sfq_util Shaper Sim Source Vec Weights
