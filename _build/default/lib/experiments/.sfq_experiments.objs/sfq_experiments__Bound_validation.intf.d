lib/experiments/bound_validation.mli:
