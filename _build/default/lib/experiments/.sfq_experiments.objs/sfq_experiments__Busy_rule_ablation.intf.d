lib/experiments/busy_rule_ablation.mli:
