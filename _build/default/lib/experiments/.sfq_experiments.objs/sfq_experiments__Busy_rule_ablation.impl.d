lib/experiments/busy_rule_ablation.ml: Bounds Fairness Packet Printf Rate_process Server Service_log Sfq Sfq_analysis Sfq_base Sfq_core Sfq_netsim Sim Weights
