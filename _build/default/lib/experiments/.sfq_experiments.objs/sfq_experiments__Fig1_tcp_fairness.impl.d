lib/experiments/fig1_tcp_fairness.ml: Disc List Mpeg Printf Rate_process Rng Server Sfq_base Sfq_netsim Sfq_util Sim Stdlib Tcp Text_table Weights
