lib/experiments/fig3_link_sharing.mli:
