lib/experiments/gsfq_video.ml: Bounds Float Hashtbl Packet Printf Rate_process Server Sfq Sfq_base Sfq_core Sfq_netsim Sfq_sched Sim Source Weights
