lib/experiments/tie_break_ablation.mli:
