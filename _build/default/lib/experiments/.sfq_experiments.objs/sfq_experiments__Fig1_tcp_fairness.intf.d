lib/experiments/fig1_tcp_fairness.mli:
