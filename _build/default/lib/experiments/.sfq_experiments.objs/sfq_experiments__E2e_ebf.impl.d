lib/experiments/e2e_ebf.ml: Array Bounds Disc Float Hashtbl List Packet Printf Rate_process Rng Server Sfq_base Sfq_core Sfq_netsim Sfq_sched Sfq_util Sim Source Stdlib Tandem Text_table Vec Weights
