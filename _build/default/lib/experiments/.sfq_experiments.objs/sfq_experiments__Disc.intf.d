lib/experiments/disc.mli: Sched Sfq_base Weights
