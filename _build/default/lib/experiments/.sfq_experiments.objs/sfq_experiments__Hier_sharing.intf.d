lib/experiments/hier_sharing.mli:
