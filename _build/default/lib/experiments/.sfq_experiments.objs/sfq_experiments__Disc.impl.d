lib/experiments/disc.ml: Drr Fair_airport Fifo Fqs Scfq Sfq_core Sfq_sched Virtual_clock Wf2q Wfq Wrr
