lib/experiments/fig3_link_sharing.ml: Array Disc Float List Packet Printf Rate_process Rng Server Sfq_base Sfq_netsim Sfq_util Sim Source Text_table Weights
