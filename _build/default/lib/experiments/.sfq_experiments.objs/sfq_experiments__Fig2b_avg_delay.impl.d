lib/experiments/fig2b_avg_delay.ml: Disc List Packet Printf Rate_process Rng Server Sfq_base Sfq_netsim Sfq_util Sim Source Stats Text_table Weights
