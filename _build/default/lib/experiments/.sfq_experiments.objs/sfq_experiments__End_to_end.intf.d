lib/experiments/end_to_end.mli:
