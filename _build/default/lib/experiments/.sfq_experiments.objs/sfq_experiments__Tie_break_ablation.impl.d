lib/experiments/tie_break_ablation.ml: List Packet Rate_process Server Sfq Sfq_base Sfq_core Sfq_netsim Sfq_sched Sfq_util Sim Source Stats Text_table Weights
