lib/experiments/ex2_variable_rate.ml: Disc Packet Printf Rate_process Server Service_log Sfq_analysis Sfq_base Sfq_netsim Sfq_sched Sfq_util Sim Text_table Weights Wfq
