lib/experiments/fig2a_delay_reduction.ml: Bounds Disc List Packet Printf Rate_process Server Sfq_base Sfq_core Sfq_netsim Sfq_util Sim Source Text_table Trace Weights
