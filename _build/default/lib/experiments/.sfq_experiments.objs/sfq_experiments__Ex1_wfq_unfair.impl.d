lib/experiments/ex1_wfq_unfair.ml: Disc Fairness List Packet Printf Rate_process Server Service_log Sfq_analysis Sfq_base Sfq_core Sfq_netsim Sfq_util Sim String Text_table Weights
