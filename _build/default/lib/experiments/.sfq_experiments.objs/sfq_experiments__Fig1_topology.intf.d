lib/experiments/fig1_topology.mli:
