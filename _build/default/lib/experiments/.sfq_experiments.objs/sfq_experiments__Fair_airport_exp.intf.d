lib/experiments/fair_airport_exp.mli:
