lib/experiments/gsfq_video.mli:
