lib/experiments/table1_fairness.ml: Disc Fairness List Packet Printf Rate_process Server Service_log Sfq_analysis Sfq_base Sfq_core Sfq_netsim Sfq_util Sim Stdlib Text_table Weights
