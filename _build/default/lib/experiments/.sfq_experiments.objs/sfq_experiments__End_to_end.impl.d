lib/experiments/end_to_end.ml: Bounds Disc Float List Packet Printf Rate_process Server Sfq_base Sfq_core Sfq_netsim Sfq_util Sim Source Stdlib Tandem Text_table Weights
