lib/experiments/e2e_ebf.mli:
