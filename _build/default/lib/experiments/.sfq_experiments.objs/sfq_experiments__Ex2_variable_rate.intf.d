lib/experiments/ex2_variable_rate.mli:
