lib/experiments/ex1_wfq_unfair.mli:
