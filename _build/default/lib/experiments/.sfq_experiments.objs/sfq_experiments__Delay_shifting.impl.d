lib/experiments/delay_shifting.ml: Bounds Disc Hsfq List Printf Rate_process Server Sfq_base Sfq_core Sfq_netsim Sfq_sched Sfq_util Sim Source Text_table Trace Weights
