lib/experiments/scfq_delay_gap.mli:
