(** §3 delay shifting (eqs. 69–73): reduce the maximum delay of a
    partition of flows at the expense of the rest by scheduling the
    partitions hierarchically with a more-than-proportional rate for
    the favoured partition.

    Setup: |Q| equal flows with equal-length packets, each paced at its
    reserved rate. Flat SFQ gives every flow the eq. 69 bound. Then the
    flows are split into K partitions and partition 1 — satisfying
    eq. 73 — gets an outsized rate. Measured and predicted maximum
    delays are reported for a flow of partition 1 (should drop) and one
    of the others (should rise, staying within eq. 71). *)

type result = {
  flat_bound_ms : float;  (** eq. 69 rhs minus EAT *)
  flat_measured_fav_ms : float;
  flat_measured_other_ms : float;
  shifted_bound_fav_ms : float;  (** eq. 71 for partition 1 *)
  shifted_bound_other_ms : float;
  shifted_measured_fav_ms : float;
  shifted_measured_other_ms : float;
  eq73_satisfied : bool;
}

val run : unit -> result
val print : result -> unit
