(** §2.3's priority-residual model: "if the bandwidth requirement of
    flows that are given higher priority can be characterized by a
    leaky bucket with average rate ρ and burstiness σ ... then the
    residual bandwidth available to the lower priority flows can be
    modeled as fluctuation constrained with parameters (C − ρ, σ)".

    The experiment shapes a bursty high-priority aggregate through a
    (σ, ρ) leaky bucket ({!Sfq_netsim.Shaper}) into a server's strict
    priority queue, runs paced low-priority flows under SFQ below it,
    and checks every low-priority departure against Theorem 4
    instantiated with the residual FC server (C − ρ, σ). It also
    verifies the residual work process itself satisfies Definition 1
    with those parameters. *)

type result = {
  residual_fc_holds : bool;  (** Definition 1 with (C−ρ, σ) on a grid of intervals *)
  residual_worst_deficit : float;  (** bits; must be <= σ *)
  sigma : float;
  thm4_worst_slack_ms : float;  (** min over packets of bound − departure *)
  packets_checked : int;
}

val run : ?seed:int -> unit -> result
val print : result -> unit
