(** Fig. 2(a) of the paper: reduction in maximum delay under SFQ
    relative to WFQ, as a function of the number of flows and the
    flow's rate (eq. 59: [Δ = l/r_f − (|Q|−1)·l/C], 200-byte packets,
    C = 100 Mb/s).

    Two parts:
    - the closed-form surface exactly as plotted in the paper;
    - a simulated cross-check for a subset of points: one tagged flow
      of rate [r] paced at its reservation among [|Q|−1] continuously
      backlogged flows sharing the rest of the link, max packet delay
      measured under WFQ and under SFQ. *)

type point = { nflows : int; rate : float; delta_ms : float }

type sim_point = {
  nflows : int;
  rate : float;
  wfq_max_ms : float;
  sfq_max_ms : float;
  predicted_delta_ms : float;
}

type result = { closed_form : point list; simulated : sim_point list }

val run : ?quick:bool -> unit -> result
val print : result -> unit
