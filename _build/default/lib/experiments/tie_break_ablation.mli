(** §2.3 tie-breaking ablation.

    The paper proves SFQ's delay guarantee is independent of the rule
    used to break equal start tags, then remarks that "a tie-breaking
    rule may give higher priority to interactive, low-throughput
    applications to reduce the average delay". This experiment
    quantifies that design choice: low-rate paced flows and high-rate
    backlogged flows are arranged so start-tag ties are frequent
    (synchronized arrivals, equal packet sizes), and the low-rate
    flows' delays are measured under the three rules the library
    offers. The theorem-level check: the {e maximum} delay must match
    across rules (tie independence); the average should favour
    [Low_rate]. *)

type row = {
  rule : string;
  low_avg_ms : float;
  low_max_ms : float;
  high_avg_ms : float;
}

type result = { rows : row list }

val run : unit -> result
val print : result -> unit
