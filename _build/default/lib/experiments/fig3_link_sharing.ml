open Sfq_util
open Sfq_base
open Sfq_netsim

type phase = { label : string; t1 : float; t2 : float; rates_mbps : float array }

type result = {
  phases : phase list;
  finish_times : float array;
  series : (float * float array) list;
}

let capacity = 48.0e6
let pkt_len = 8 * 4096

let run ?(pkts_per_conn = 4000) ?(seed = 5) () =
  let sim = Sim.create () in
  let rng = Rng.create seed in
  let weights = Weights.of_list [ (1, 1.0); (2, 2.0); (3, 3.0) ] in
  let rate =
    Rate_process.fc_random ~c:capacity ~delta:(float_of_int (4 * pkt_len)) ~seg:0.01
      ~spread:(0.25 *. capacity) ~rng
  in
  let server =
    Server.create sim ~name:"atm-if" ~rate ~sched:(Disc.make Disc.Sfq weights) ()
  in
  (* Cumulative bits served per connection, sampled every window. *)
  let served = [| 0.0; 0.0; 0.0 |] in
  Server.on_depart server (fun p ~start:_ ~departed:_ ->
      served.(p.Packet.flow - 1) <- served.(p.Packet.flow - 1) +. float_of_int p.Packet.len);
  let counters =
    Array.init 3 (fun i ->
        Source.greedy sim ~server ~flow:(i + 1) ~len:pkt_len ~total:pkts_per_conn ~window:4
          ~start:0.0 ())
  in
  let window = 0.05 in
  let series = ref [] in
  let prev = [| 0.0; 0.0; 0.0 |] in
  let rec sample () =
    let rates =
      Array.init 3 (fun i ->
          let r = (served.(i) -. prev.(i)) /. window /. 1.0e6 in
          prev.(i) <- served.(i);
          r)
    in
    series := (Sim.now sim, rates) :: !series;
    if Array.exists (fun c -> c.Source.finished_at = None) counters then
      Sim.schedule_after sim ~delay:window sample
  in
  Sim.schedule sim ~at:window sample;
  Sim.run_all sim ();
  let finish_times =
    Array.map
      (fun c -> match c.Source.finished_at with Some t -> t | None -> Sim.now sim)
      counters
  in
  let series = List.rev !series in
  (* Phase boundaries: connection 3 (weight 3) finishes first, then 2. *)
  let fin = Array.copy finish_times in
  Array.sort compare fin;
  let rate_in t1 t2 =
    if t2 <= t1 then [| 0.0; 0.0; 0.0 |]
    else begin
      let acc = [| 0.0; 0.0; 0.0 |] in
      let prev_t = ref t1 in
      ignore prev_t;
      List.iter
        (fun (te, rates) ->
          if te > t1 +. 1e-9 && te <= t2 +. 1e-9 then
            Array.iteri (fun i r -> acc.(i) <- acc.(i) +. r) rates)
        series;
      let n =
        List.length
          (List.filter (fun (te, _) -> te > t1 +. 1e-9 && te <= t2 +. 1e-9) series)
      in
      if n = 0 then acc else Array.map (fun x -> x /. float_of_int n) acc
    end
  in
  let phases =
    [
      { label = "all three active"; t1 = 0.0; t2 = fin.(0); rates_mbps = rate_in 0.0 fin.(0) };
      {
        label = "two remaining";
        t1 = fin.(0);
        t2 = fin.(1);
        rates_mbps = rate_in fin.(0) fin.(1);
      };
      { label = "last one"; t1 = fin.(1); t2 = fin.(2); rates_mbps = rate_in fin.(1) fin.(2) };
    ]
  in
  { phases; finish_times; series }

let print r =
  print_endline "== Fig 3(b): weighted link sharing on a fluctuating ~48 Mb/s interface ==";
  let t =
    Text_table.create
      [ "phase"; "interval s"; "conn1 Mb/s"; "conn2 Mb/s"; "conn3 Mb/s"; "ratio (w=1:2:3)" ]
  in
  List.iter
    (fun p ->
      let r1 = p.rates_mbps.(0) and r2 = p.rates_mbps.(1) and r3 = p.rates_mbps.(2) in
      let base = if r1 > 0.01 then r1 else Float.max r2 r3 in
      let ratio =
        if base > 0.01 then
          Printf.sprintf "%.2f : %.2f : %.2f" (r1 /. base) (r2 /. base) (r3 /. base)
        else "-"
      in
      Text_table.add_row t
        [
          p.label;
          Printf.sprintf "%.2f-%.2f" p.t1 p.t2;
          Text_table.cell_f ~decimals:2 r1;
          Text_table.cell_f ~decimals:2 r2;
          Text_table.cell_f ~decimals:2 r3;
          ratio;
        ])
    r.phases;
  Text_table.print t;
  (* The figure itself: per-connection throughput in each sampling
     window (the paper plots throughput vs time). Print every 4th
     window to keep the series legible. *)
  let curve = Text_table.create [ "t (s)"; "conn1 Mb/s"; "conn2 Mb/s"; "conn3 Mb/s" ] in
  List.iteri
    (fun i (at, rates) ->
      if i mod 4 = 0 then
        Text_table.add_row curve
          [
            Printf.sprintf "%.2f" at;
            Text_table.cell_f ~decimals:1 rates.(0);
            Text_table.cell_f ~decimals:1 rates.(1);
            Text_table.cell_f ~decimals:1 rates.(2);
          ])
    r.series;
  print_endline "throughput over time (the Fig 3(b) curves):";
  Text_table.print curve;
  print_endline "(paper: 1:2:3 while all active, then 1:2, then full bandwidth to the survivor.)";
  print_newline ()
