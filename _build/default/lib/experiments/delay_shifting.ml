open Sfq_util
open Sfq_base
open Sfq_core
open Sfq_netsim

type result = {
  flat_bound_ms : float;
  flat_measured_fav_ms : float;
  flat_measured_other_ms : float;
  shifted_bound_fav_ms : float;
  shifted_bound_other_ms : float;
  shifted_measured_fav_ms : float;
  shifted_measured_other_ms : float;
  eq73_satisfied : bool;
}

let capacity = 1.0e6
let pkt_len = 8 * 250
let nflows = 12
let nparts = 2
let fav_size = 2 (* flows 1..2, partition rate half the link *)
let fav_rate = 0.5 *. capacity
let other_rate = capacity -. fav_rate
let flow_rate = capacity /. float_of_int nflows
let fav_flow = 1
let other_flow = 3 (* first flow of partition 2 *)
let duration = 20.0

let pace sim server =
  (* All flows paced at their reservation, synchronized at t=0 — the
     adversarial alignment for maximum delay. *)
  for flow = 1 to nflows do
    ignore
      (Source.cbr sim ~target:(Server.inject server) ~flow ~len:pkt_len ~rate:flow_rate
         ~start:0.0 ~stop:duration)
  done

let max_delays sched_view =
  let sim = Sim.create () in
  let server =
    Server.create sim ~name:"shift" ~rate:(Rate_process.constant capacity) ~sched:sched_view ()
  in
  let trace = Trace.attach server in
  pace sim server;
  Sim.run sim ~until:(duration +. 1.0);
  (1000.0 *. Trace.max_delay trace fav_flow, 1000.0 *. Trace.max_delay trace other_flow)

let flat () =
  max_delays (Disc.make Disc.Sfq (Weights.uniform flow_rate))

let shifted () =
  let h = Hsfq.create () in
  let part1 = Hsfq.add_class h ~parent:(Hsfq.root h) ~weight:fav_rate in
  let part2 = Hsfq.add_class h ~parent:(Hsfq.root h) ~weight:other_rate in
  let leaf_of parent flow =
    (flow, Hsfq.add_leaf h ~parent ~weight:flow_rate (Sfq_sched.Fifo.sched (Sfq_sched.Fifo.create ())))
  in
  let leaves =
    List.init nflows (fun i ->
        let flow = i + 1 in
        leaf_of (if flow <= fav_size then part1 else part2) flow)
  in
  Hsfq.set_classifier h (Hsfq.classifier_by_flow leaves);
  max_delays (Hsfq.sched h)

let run () =
  let len = float_of_int pkt_len in
  let flat_fav, flat_other = flat () in
  let sh_fav, sh_other = shifted () in
  {
    flat_bound_ms = 1000.0 *. Bounds.flat_departure_rhs ~nflows ~len ~capacity ~delta:0.0;
    flat_measured_fav_ms = flat_fav;
    flat_measured_other_ms = flat_other;
    shifted_bound_fav_ms =
      1000.0
      *. Bounds.shifted_departure_rhs ~partition_size:fav_size ~len ~partition_rate:fav_rate
           ~nparts ~capacity ~delta:0.0;
    shifted_bound_other_ms =
      1000.0
      *. Bounds.shifted_departure_rhs ~partition_size:(nflows - fav_size) ~len
           ~partition_rate:other_rate ~nparts ~capacity ~delta:0.0;
    shifted_measured_fav_ms = sh_fav;
    shifted_measured_other_ms = sh_other;
    eq73_satisfied =
      Bounds.delay_shift_improves ~partition_size:fav_size ~nflows ~nparts
        ~partition_rate:fav_rate ~capacity;
  }

let print r =
  print_endline "== §3 delay shifting: 12 paced flows, partition {1,2} gets half the link ==";
  Printf.printf "eq. 73 predicts the favoured partition improves: %b\n" r.eq73_satisfied;
  let t = Text_table.create [ "scheme"; "flow"; "measured max ms"; "bound ms" ] in
  Text_table.add_row t
    [
      "flat SFQ";
      "favoured";
      Text_table.cell_f ~decimals:2 r.flat_measured_fav_ms;
      Text_table.cell_f ~decimals:2 r.flat_bound_ms;
    ];
  Text_table.add_row t
    [
      "flat SFQ";
      "other";
      Text_table.cell_f ~decimals:2 r.flat_measured_other_ms;
      Text_table.cell_f ~decimals:2 r.flat_bound_ms;
    ];
  Text_table.add_row t
    [
      "hierarchical";
      "favoured";
      Text_table.cell_f ~decimals:2 r.shifted_measured_fav_ms;
      Text_table.cell_f ~decimals:2 r.shifted_bound_fav_ms;
    ];
  Text_table.add_row t
    [
      "hierarchical";
      "other";
      Text_table.cell_f ~decimals:2 r.shifted_measured_other_ms;
      Text_table.cell_f ~decimals:2 r.shifted_bound_other_ms;
    ];
  Text_table.print t;
  print_newline ()
