open Sfq_base
open Sfq_core
open Sfq_netsim

type result = {
  gsfq_worst_slack_ms : float;
  packets_checked : int;
  gsfq_iframe_max_ms : float;
  fixed_iframe_max_ms : float;
}

let capacity = 1.0e6
let cell = 2000 (* bits *)
let fps = 30.0
let gop = 12
let i_cells = 12
let b_cells = 4
(* RCBR-style allocation: each frame type's rate exactly sustains its
   cell demand within the frame interval — I frames 12×2000×30 =
   0.72 Mb/s, B frames 4×2000×30 = 0.24 Mb/s — so the EAT chain never
   drifts and Σ_n R_n(v) peaks at 0.72 + 0.25 < C. *)
let i_rate = 0.72e6
let b_rate = 0.24e6
let cross_rate = 0.25e6
let duration = 20.0

(* Average video rate, used as the flow weight in the fixed-rate run. *)
let avg_rate =
  float_of_int ((i_cells + ((gop - 1) * b_cells)) * cell) *. fps /. float_of_int gop

let video_flow = 0
let cross_flow = 1

(* Inject the GOP-structured video; [rated] selects per-packet rates
   (generalized SFQ) or none (plain SFQ). Returns a lookup of each
   cell's (arrival, is_iframe, rate_used). *)
let spawn_video sim server ~rated =
  let meta = Hashtbl.create 1024 in
  let seq = ref 0 in
  let frame = ref 0 in
  let rec next_frame () =
    if Sim.now sim +. (1.0 /. fps) <= duration then begin
      let is_i = !frame mod gop = 0 in
      incr frame;
      let cells = if is_i then i_cells else b_cells in
      let rate = if is_i then i_rate else b_rate in
      for _ = 1 to cells do
        incr seq;
        let now = Sim.now sim in
        Hashtbl.replace meta !seq (now, is_i, rate);
        let pkt =
          if rated then
            Packet.make ~rate ~flow:video_flow ~seq:!seq ~len:cell ~born:now ()
          else Packet.make ~flow:video_flow ~seq:!seq ~len:cell ~born:now ()
        in
        Server.inject server pkt
      done;
      Sim.schedule_after sim ~delay:(1.0 /. fps) next_frame
    end
  in
  Sim.schedule sim ~at:0.0 next_frame;
  meta

let run_once ~rated =
  let sim = Sim.create () in
  let weights =
    Weights.of_fun (fun f -> if f = video_flow then avg_rate else cross_rate)
  in
  let server =
    Server.create sim ~name:"gsfq" ~rate:(Rate_process.constant capacity)
      ~sched:(Sfq.sched (Sfq.create weights)) ()
  in
  (* Greedy cross traffic claiming its 0.25 Mb/s reservation: the rate
     function stays below C even during I frames (0.72 + 0.25 < 1). *)
  ignore
    (Source.greedy sim ~server ~flow:cross_flow ~len:cell ~total:1_000_000 ~window:4
       ~start:0.0 ());
  let meta = spawn_video sim server ~rated in
  (* eq. 37 with per-packet rates. *)
  let eat = Sfq_sched.Eat.create () in
  let eat_of = Hashtbl.create 1024 in
  Server.on_inject server (fun p ->
      if p.Packet.flow = video_flow then begin
        let _, _, rate = Hashtbl.find meta p.Packet.seq in
        let rate = if rated then rate else avg_rate in
        let e =
          Sfq_sched.Eat.on_arrival eat ~now:(Sim.now sim) ~flow:video_flow ~len:p.Packet.len
            ~rate
        in
        Hashtbl.replace eat_of p.Packet.seq e
      end);
  let worst_slack = ref infinity and checked = ref 0 and i_max = ref 0.0 in
  Server.on_depart server (fun p ~start:_ ~departed ->
      if p.Packet.flow = video_flow then begin
        let arrival, is_i, _ = Hashtbl.find meta p.Packet.seq in
        if is_i then i_max := Float.max !i_max (departed -. arrival);
        match Hashtbl.find_opt eat_of p.Packet.seq with
        | None -> ()
        | Some e ->
          incr checked;
          let bound =
            Bounds.sfq_departure ~eat:e ~sum_other_lmax:(float_of_int cell)
              ~len:(float_of_int p.Packet.len) ~capacity ~delta:0.0
          in
          worst_slack := Float.min !worst_slack (bound -. departed)
      end);
  Sim.run sim ~until:(duration +. 1.0);
  (1000.0 *. !worst_slack, !checked, 1000.0 *. !i_max)

let run ?seed:_ () =
  let gsfq_worst_slack_ms, packets_checked, gsfq_iframe_max_ms = run_once ~rated:true in
  let _, _, fixed_iframe_max_ms = run_once ~rated:false in
  { gsfq_worst_slack_ms; packets_checked; gsfq_iframe_max_ms; fixed_iframe_max_ms }

let print r =
  print_endline "== §2.3 generalized SFQ: per-packet rates for VBR video (eq. 36) ==";
  Printf.printf
    "Theorem 4 with per-packet-rate EAT: worst slack %.6f ms over %d video packets (>= 0 \
     means the bound held)\n"
    r.gsfq_worst_slack_ms r.packets_checked;
  Printf.printf
    "worst I-frame cell delay: %.2f ms with per-packet rates vs %.2f ms with the \
     fixed average rate\n\n"
    r.gsfq_iframe_max_ms r.fixed_iframe_max_ms
