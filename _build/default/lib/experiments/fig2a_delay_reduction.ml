open Sfq_util
open Sfq_base
open Sfq_core
open Sfq_netsim

type point = { nflows : int; rate : float; delta_ms : float }

type sim_point = {
  nflows : int;
  rate : float;
  wfq_max_ms : float;
  sfq_max_ms : float;
  predicted_delta_ms : float;
}

type result = { closed_form : point list; simulated : sim_point list }

let capacity = 100.0e6
let pkt_len = 8 * 200 (* 200 bytes *)
let rates = [ 32.0e3; 64.0e3; 128.0e3; 256.0e3 ]
let flow_counts = [ 10; 20; 30; 40; 50; 60; 70; 80; 90 ]

let closed_form () =
  List.concat_map
    (fun rate ->
      List.map
        (fun nflows ->
          let delta =
            Bounds.wfq_sfq_delta_uniform ~len:(float_of_int pkt_len) ~rate ~nflows
              ~capacity
          in
          { nflows; rate; delta_ms = 1000.0 *. delta })
        flow_counts)
    rates

(* One tagged flow paced at its reservation; the other |Q|-1 flows are
   continuously backlogged and share the remaining capacity. *)
let simulate spec ~nflows ~rate =
  let tagged = 0 in
  let others = List.init (nflows - 1) (fun i -> i + 1) in
  let other_rate = (capacity -. rate) /. float_of_int (nflows - 1) in
  let weights = Weights.of_list ((tagged, rate) :: List.map (fun f -> (f, other_rate)) others) in
  let sim = Sim.create () in
  let server =
    Server.create sim ~name:"fig2a" ~rate:(Rate_process.constant capacity)
      ~sched:(Disc.make spec weights) ()
  in
  let trace = Trace.attach server in
  let horizon = 0.5 in
  (* Backlogged competitors: enough packets to outlast the horizon. *)
  let backlog_pkts =
    int_of_float (capacity *. horizon /. float_of_int (pkt_len * (nflows - 1))) + 50
  in
  Sim.schedule sim ~at:0.0 (fun () ->
      List.iter
        (fun flow ->
          for seq = 1 to backlog_pkts do
            Server.inject server (Packet.make ~flow ~seq ~len:pkt_len ~born:0.0 ())
          done)
        others);
  ignore
    (Source.cbr sim ~target:(Server.inject server) ~flow:tagged ~len:pkt_len ~rate ~start:0.0
       ~stop:horizon);
  Sim.run sim ~until:(horizon +. 1.0);
  1000.0 *. Trace.max_delay trace tagged

let simulated ~quick =
  let points =
    if quick then [ (20, 64.0e3) ] else [ (10, 64.0e3); (30, 64.0e3); (50, 64.0e3); (50, 256.0e3) ]
  in
  List.map
    (fun (nflows, rate) ->
      let wfq_max_ms = simulate (Disc.Wfq { capacity }) ~nflows ~rate in
      let sfq_max_ms = simulate Disc.Sfq ~nflows ~rate in
      let predicted =
        Bounds.wfq_sfq_delta_uniform ~len:(float_of_int pkt_len) ~rate ~nflows ~capacity
      in
      { nflows; rate; wfq_max_ms; sfq_max_ms; predicted_delta_ms = 1000.0 *. predicted })
    points

let run ?(quick = false) () = { closed_form = closed_form (); simulated = simulated ~quick }

let print r =
  print_endline "== Fig 2(a): max-delay reduction of SFQ vs WFQ (eq. 59), ms ==";
  let t =
    Text_table.create
      ("flows" :: List.map (fun rate -> Printf.sprintf "%.0f Kb/s" (rate /. 1000.0)) rates)
  in
  List.iter
    (fun nflows ->
      let row =
        string_of_int nflows
        :: List.map
             (fun rate ->
               let p =
                 List.find
                   (fun (p : point) -> p.nflows = nflows && p.rate = rate)
                   r.closed_form
               in
               Text_table.cell_f ~decimals:2 p.delta_ms)
             rates
      in
      Text_table.add_row t row)
    flow_counts;
  Text_table.print t;
  print_endline "simulated cross-check (one paced flow among backlogged competitors):";
  let t2 =
    Text_table.create
      [ "flows"; "rate Kb/s"; "WFQ max delay ms"; "SFQ max delay ms"; "measured gap"; "eq.59 gap" ]
  in
  List.iter
    (fun p ->
      Text_table.add_row t2
        [
          string_of_int p.nflows;
          Printf.sprintf "%.0f" (p.rate /. 1000.0);
          Text_table.cell_f ~decimals:2 p.wfq_max_ms;
          Text_table.cell_f ~decimals:2 p.sfq_max_ms;
          Text_table.cell_f ~decimals:2 (p.wfq_max_ms -. p.sfq_max_ms);
          Text_table.cell_f ~decimals:2 p.predicted_delta_ms;
        ])
    r.simulated;
  Text_table.print t2;
  print_newline ()
