(** §3 / Example 3: hierarchical link sharing.

    Link-sharing structure: root has subclasses A and B; A has
    subclasses C and D; every class has weight 1. While B is idle, A
    holds the whole link and C, D get 50% each; when B becomes active, A
    drops to 50% and C, D must each get 25% — which requires the
    intra-A scheduler to stay fair while A's bandwidth varies, i.e.
    exactly SFQ's variable-rate fairness.

    Flows: C and D backlogged throughout; B's flow active only in the
    middle third of the run. *)

type shares = { c : float; d : float; b : float }
(** Fractions of link capacity received in a phase. *)

type result = {
  phase1 : shares;  (** B idle: expect C=D=0.5 *)
  phase2 : shares;  (** B active: expect C=D=0.25, B=0.5 *)
  phase3 : shares;  (** B idle again *)
}

val run : ?capacity:float -> ?duration:float -> unit -> result
val print : result -> unit
