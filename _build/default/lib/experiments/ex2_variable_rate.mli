(** Example 2 (paper §1.2): WFQ is unfair when the actual server rate
    differs from the assumed rate; SFQ is not.

    The server really serves 1 pkt/s during [0,1) and C pkt/s during
    [1,2); WFQ's GPS emulation assumes C throughout. Flow f dumps C+1
    packets at t=0; flow m becomes backlogged at t=1. Fair allocation
    would give each ~C/2 packets of service during [1,2]; WFQ gives
    flow f almost everything (its fluid clock already ran to v(1)=C, so
    f's queued finish tags all precede m's first). SFQ splits [1,2]
    evenly. *)

type result = {
  c : float;  (** the paper's C, in packets/s *)
  wfq_v1 : float;  (** WFQ virtual time at t=1 (paper predicts C) *)
  wfq_wf : float;  (** packets of f served in [1,2] under WFQ *)
  wfq_wm : float;
  sfq_wf : float;
  sfq_wm : float;
}

val run : ?c:float -> unit -> result
val print : result -> unit
