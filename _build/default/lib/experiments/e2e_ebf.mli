(** Theorem 5 / Corollary 1, stochastic version: end-to-end delay
    through Exponentially Bounded Fluctuation servers.

    The paper's most distinctive analysis composes {e probabilistic}
    per-hop guarantees: if each of K EBF servers promises
    [P(L <= EAT + β + γ) >= 1 − B e^{−λγ}], the network promises
    eq. 64's tail with [Σ B^n] and the harmonic-mean-style combined
    exponent. This experiment runs a leaky-bucket flow through K EBF
    servers with cross traffic, measures the empirical end-to-end delay
    tail at several γ, and checks it against the composed bound
    (which must upper-bound the empirical frequency at every γ where
    the bound is below 1 — the regime where it says anything). *)

type tail_point = {
  gamma_ms : float;
  empirical : float;  (** fraction of packets later than base + γ *)
  bound : float;  (** eq. 64 tail (may exceed 1 where vacuous) *)
}

type result = {
  k : int;
  base_ms : float;  (** deterministic part: σ/ρ + Σβ + Στ *)
  points : tail_point list;
  violations : int;  (** γ points where empirical > min(1, bound) *)
}

val run : ?seed:int -> ?k:int -> unit -> result
val print : result -> unit
