open Sfq_util
open Sfq_base
open Sfq_netsim

type run_stats = { src2_window : int; src3_window : int }
type result = { wfq : run_stats; sfq : run_stats }

let bottleneck = 2.5e6
let access = 10.0e6
let tcp_len = 8 * 200
let video_flow = 1
let src2 = 2
let src3 = 3

let run_disc spec ~seed ~duration =
  let sim = Sim.create () in
  let rng = Rng.create seed in
  let net = Net.create sim in
  let h1 = Net.add_node net "h1" and h2 = Net.add_node net "h2" in
  let h3 = Net.add_node net "h3" and sw = Net.add_node net "sw" in
  let dst = Net.add_node net "dst" in
  let fifo () = Sfq_sched.Fifo.sched (Sfq_sched.Fifo.create ()) in
  let weights = Weights.of_list [ (src2, 1.0); (src3, 1.0) ] in
  let acc node = Net.link net ~src:node ~dst:sw ~rate:(Rate_process.constant access)
      ~sched:(fifo ()) ~prop_delay:0.0005 () in
  let h1sw = acc h1 in
  let _h2sw = acc h2 and _h3sw = acc h3 in
  let swdst =
    Net.link net ~src:sw ~dst ~rate:(Rate_process.constant bottleneck)
      ~sched:(Disc.make spec weights) ~prop_delay:0.0005 ~flow_buffer_limit:80 ()
  in
  Net.route net ~flow:src2 [ h2; sw; dst ];
  Net.route net ~flow:src3 [ h3; sw; dst ];
  (* The video flow crosses its access link normally, then enters the
     bottleneck's strict-priority queue (it has no Net route: its hop
     off the access link is wired by hand). *)
  Server.on_depart h1sw (fun p ~start:_ ~departed:_ ->
      if p.Packet.flow = video_flow then
        Sim.schedule_after sim ~delay:0.0005 (fun () -> Server.inject_priority swdst p));
  ignore
    (Mpeg.vbr sim
       ~target:(Server.inject h1sw)
       ~flow:video_flow ~avg_rate:1.21e6 ~rng:(Rng.split rng) ~start:0.0 ~stop:duration ());
  let tcp flow start =
    Tcp.reno_over sim
      ~inject:(Net.inject net)
      ~subscribe:(fun handler -> Net.on_delivered net (fun p ~at:_ -> handler p))
      ~flow ~pkt_len:tcp_len ~start ~rto:0.15 ()
  in
  let t2 = tcp src2 0.0 in
  let t3 = tcp src3 (duration /. 2.0) in
  Sim.run sim ~until:duration;
  let mid = duration /. 2.0 in
  let in_window t = Tcp.delivered_before t duration - Tcp.delivered_before t mid in
  { src2_window = in_window t2; src3_window = in_window t3 }

let run ?(seed = 11) ?(duration = 1.0) () =
  {
    wfq = run_disc (Disc.Wfq_real { capacity = bottleneck }) ~seed ~duration;
    sfq = run_disc Disc.Sfq ~seed ~duration;
  }

let print r =
  print_endline
    "== E20: Fig 1(a) on the full host/switch topology (two-hop TCP paths) ==";
  let t =
    Text_table.create [ "discipline"; "src2 pkts (0.5-1.0s)"; "src3 pkts"; "expected shape" ]
  in
  Text_table.add_row t
    [
      "WFQ (real clock)";
      string_of_int r.wfq.src2_window;
      string_of_int r.wfq.src3_window;
      "late flow starved";
    ];
  Text_table.add_row t
    [ "SFQ"; string_of_int r.sfq.src2_window; string_of_int r.sfq.src3_window; "even split" ];
  Text_table.print t;
  print_newline ()
