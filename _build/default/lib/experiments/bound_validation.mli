(** Empirical validation of SFQ's analytical guarantees on
    variable-rate servers.

    - Theorem 2 (throughput, FC server): greedy flows on a randomized
      FC server; [W_f(t1,t2)] is checked against the bound on a grid of
      intervals. Reports the worst (smallest) slack.
    - Theorem 4 (delay, FC server): flows paced at their reservations
      (so EAT = arrival); every departure is checked against
      [EAT + Σ_{n≠f} l^max/C + l/C + δ/C]. Reports the worst slack.
    - Theorem 3/5 (EBF): on an EBF server, the frequency of throughput
      shortfalls beyond γ is tabulated for several γ, exhibiting the
      exponential tail. *)

type ebf_point = { gamma : float; violations : int; samples : int }

type result = {
  thm2_worst_slack_bits : float;  (** min over intervals of W_f − bound; ≥ 0 iff Theorem 2 holds *)
  thm2_intervals : int;
  thm4_worst_slack_ms : float;  (** min over packets of bound − departure *)
  thm4_packets : int;
  ebf_tail : ebf_point list;
}

val run : ?seed:int -> unit -> result
val print : result -> unit
