(** Empirical fairness index.

    The paper's fairness criterion: a discipline is fair with measure
    [H(f,m)] if for {e every} interval in which both flows are
    backlogged, [|W_f(t1,t2)/r_f − W_m(t1,t2)/r_m| <= H(f,m)]. This
    module measures the left-hand side's supremum from a
    {!Service_log}:

    - {!exact_h} maximizes over all candidate window boundaries
      (service starts × finishes) inside every both-backlogged
      interval — O(n²) in the number of completions, exact; used by the
      property tests against Theorem 1's bound;
    - {!approx_h} is a streaming drawdown over the normalized service
      difference sampled at completion instants — O(n); it attributes
      each packet to its finish time, so it can overshoot the exact
      index by at most one packet per flow ([l^max/r]); used by the
      large Table-1 workloads. *)

open Sfq_base

val intersect_intervals :
  (float * float) list -> (float * float) list -> (float * float) list
(** Pairwise intersection of two ordered disjoint interval lists. *)

val exact_h :
  Service_log.t -> f:Packet.flow -> m:Packet.flow -> r_f:float -> r_m:float -> until:float ->
  float
(** Supremum of [|W_f/r_f − W_m/r_m|] (seconds of normalized service)
    over windows within both-backlogged intervals. 0 when the flows
    are never simultaneously backlogged. *)

val approx_h :
  Service_log.t -> f:Packet.flow -> m:Packet.flow -> r_f:float -> r_m:float -> until:float ->
  float

val max_pairwise_h :
  Service_log.t -> rates:(Packet.flow * float) list -> until:float ->
  exact:bool -> float
(** Max of {!exact_h}/{!approx_h} over all flow pairs. *)

val throughput : Service_log.t -> Packet.flow -> t1:float -> t2:float -> float
(** Bits/s of service attributed to [\[t1,t2\]] windows (start+finish
    containment), i.e. [W_f(t1,t2)/(t2−t1)]. *)
