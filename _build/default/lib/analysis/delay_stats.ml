open Sfq_util
open Sfq_base
open Sfq_netsim

type summary = {
  flow : Packet.flow;
  count : int;
  mean : float;
  max : float;
  p50 : float;
  p99 : float;
  jitter : float;
}

let of_delays ~flow delays =
  let n = Array.length delays in
  if n = 0 then None
  else begin
    let s = Stats.create () in
    Array.iter (Stats.add s) delays;
    let jitter =
      if n < 2 then 0.0
      else begin
        let acc = ref 0.0 in
        for i = 1 to n - 1 do
          acc := !acc +. Float.abs (delays.(i) -. delays.(i - 1))
        done;
        !acc /. float_of_int (n - 1)
      end
    in
    Some
      {
        flow;
        count = n;
        mean = Stats.mean s;
        max = Stats.max_value s;
        p50 = Stats.percentile delays 50.0;
        p99 = Stats.percentile delays 99.0;
        jitter;
      }
  end

let of_trace trace flow = of_delays ~flow (Trace.delays trace flow)
let end_to_end trace flow = of_delays ~flow (Trace.end_to_end_delays trace flow)

let pp ppf s =
  Format.fprintf ppf
    "flow %d: n=%d mean=%.4fs max=%.4fs p50=%.4fs p99=%.4fs jitter=%.4fs" s.flow s.count
    s.mean s.max s.p50 s.p99 s.jitter
