lib/analysis/csv_out.mli:
