lib/analysis/csv_out.ml: Buffer Fun List Printf String
