lib/analysis/fairness.ml: Float List Service_log Sfq_util Vec
