lib/analysis/service_log.ml: Flow_table Packet Server Sfq_base Sfq_netsim Sfq_util Sim Vec
