lib/analysis/delay_stats.ml: Array Float Format Packet Sfq_base Sfq_netsim Sfq_util Stats Trace
