lib/analysis/delay_stats.mli: Format Packet Sfq_base Sfq_netsim Trace
