lib/analysis/fairness.mli: Packet Service_log Sfq_base
