lib/analysis/service_log.mli: Packet Server Sfq_base Sfq_netsim Sfq_util
