open Sfq_util

let intersect_intervals a b =
  let rec go a b acc =
    match (a, b) with
    | [], _ | _, [] -> List.rev acc
    | (a1, a2) :: arest, (b1, b2) :: brest ->
      let lo = Float.max a1 b1 and hi = Float.min a2 b2 in
      let acc = if lo < hi then (lo, hi) :: acc else acc in
      if a2 < b2 then go arest b acc else go a brest acc
  in
  go a b []

(* Completions of f or m inside [lo,hi], as signed normalized lengths,
   in finish order. *)
let window_events log ~f ~m ~r_f ~r_m ~lo ~hi =
  Vec.fold (Service_log.completions log) ~init:[] ~f:(fun acc c ->
      if c.Service_log.start >= lo && c.finish <= hi then begin
        if c.flow = f then (c.start, c.finish, float_of_int c.len /. r_f) :: acc
        else if c.flow = m then (c.start, c.finish, -.(float_of_int c.len /. r_m)) :: acc
        else acc
      end
      else acc)
  |> List.rev

let exact_h log ~f ~m ~r_f ~r_m ~until =
  let both =
    intersect_intervals
      (Service_log.busy_intervals log f ~until)
      (Service_log.busy_intervals log m ~until)
  in
  let worst_in (lo, hi) =
    let events = window_events log ~f ~m ~r_f ~r_m ~lo ~hi in
    let starts = lo :: List.map (fun (s, _, _) -> s) events in
    let worst_from t1 =
      let rec go acc best = function
        | [] -> best
        | (s, _, v) :: rest ->
          let acc = if s >= t1 then acc +. v else acc in
          go acc (Float.max best (Float.abs acc)) rest
      in
      go 0.0 0.0 events
    in
    List.fold_left (fun best t1 -> Float.max best (worst_from t1)) 0.0 starts
  in
  List.fold_left (fun best iv -> Float.max best (worst_in iv)) 0.0 both

let approx_h log ~f ~m ~r_f ~r_m ~until =
  let both =
    intersect_intervals
      (Service_log.busy_intervals log f ~until)
      (Service_log.busy_intervals log m ~until)
  in
  let worst_in (lo, hi) =
    (* Drawdown/draw-up of the running difference sampled at finishes. *)
    let min_seen = ref 0.0 and max_seen = ref 0.0 and acc = ref 0.0 and best = ref 0.0 in
    Vec.iter (Service_log.completions log) ~f:(fun c ->
        if c.Service_log.finish >= lo && c.finish <= hi then begin
          if c.flow = f then acc := !acc +. (float_of_int c.len /. r_f)
          else if c.flow = m then acc := !acc -. (float_of_int c.len /. r_m);
          if c.flow = f || c.flow = m then begin
            best := Float.max !best (Float.max (!acc -. !min_seen) (!max_seen -. !acc));
            min_seen := Float.min !min_seen !acc;
            max_seen := Float.max !max_seen !acc
          end
        end);
    !best
  in
  List.fold_left (fun best iv -> Float.max best (worst_in iv)) 0.0 both

let max_pairwise_h log ~rates ~until ~exact =
  let measure = if exact then exact_h else approx_h in
  let rec pairs acc = function
    | [] -> acc
    | (f, r_f) :: rest ->
      let acc =
        List.fold_left
          (fun acc (m, r_m) -> Float.max acc (measure log ~f ~m ~r_f ~r_m ~until))
          acc rest
      in
      pairs acc rest
  in
  pairs 0.0 rates

let throughput log flow ~t1 ~t2 =
  if t2 <= t1 then invalid_arg "Fairness.throughput: empty interval";
  Service_log.service log flow ~t1 ~t2 /. (t2 -. t1)
