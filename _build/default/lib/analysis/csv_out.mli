(** Minimal CSV writing (RFC-4180-style quoting) for exporting
    experiment series to external plotting tools. *)

val escape : string -> string
(** Quote a field if it contains commas, quotes or newlines. *)

val to_string : header:string list -> rows:string list list -> string
val write : path:string -> header:string list -> rows:string list list -> unit

val of_series : (float * float) list -> string list list
(** [(x, y)] pairs as printable rows. *)
