let escape field =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') field
  in
  if not needs_quoting then field
  else begin
    let buf = Buffer.create (String.length field + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let line fields = String.concat "," (List.map escape fields) ^ "\n"

let to_string ~header ~rows =
  line header ^ String.concat "" (List.map line rows)

let write ~path ~header ~rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~header ~rows))

let of_series pairs =
  List.map (fun (x, y) -> [ Printf.sprintf "%.9g" x; Printf.sprintf "%.9g" y ]) pairs
