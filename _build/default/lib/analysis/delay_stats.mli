(** Per-flow delay summaries.

    Thin aggregation over {!Sfq_netsim.Trace} records producing the
    quantities the paper's evaluation talks about: average and maximum
    delay (Figs. 2(a)/2(b)), percentiles, and delay jitter
    (consecutive-packet delay variation — the quantity Jitter EDD's
    regulation is supposed to crush). *)

open Sfq_base
open Sfq_netsim

type summary = {
  flow : Packet.flow;
  count : int;
  mean : float;
  max : float;
  p50 : float;
  p99 : float;
  jitter : float;  (** mean |delay_i − delay_{i−1}| in departure order *)
}

val of_trace : Trace.t -> Packet.flow -> summary option
(** Queueing+service delay at the traced server; [None] if the flow has
    no records. *)

val end_to_end : Trace.t -> Packet.flow -> summary option
(** Same, but measured from packet creation ([born]) — end-to-end when
    the trace sits on the last hop. *)

val of_delays : flow:Packet.flow -> float array -> summary option
(** Summarize an explicit delay series (departure order). *)

val pp : Format.formatter -> summary -> unit
