(** Packets and flows.

    A {e flow} is the sequence of packets transmitted by one source
    (Zhang's terminology, adopted by the paper). Flows are plain
    integers; per-flow configuration (weights, rates) lives in the
    schedulers, not here.

    Packet lengths are in {b bits} throughout the library — the paper's
    formulas divide lengths by rates in bits/s to obtain virtual times,
    so using bits avoids a factor-of-8 trap at every call site. Use
    {!bits_of_bytes} at the edges. *)

type flow = int

type t = private {
  flow : flow;
  seq : int;  (** per-flow sequence number, 1-based, assigned by the source *)
  len : int;  (** length in bits; positive *)
  born : float;
      (** creation time at the source; end-to-end delay is measured
          from here. Per-hop arrival times are the [now] arguments of
          the scheduler calls, not this field. *)
  rate : float option;
      (** per-packet rate override in bits/s, for the generalized SFQ
          of §2.3 (variable rate allocation) and for Delay EDD. [None]
          means "use the flow's configured weight/rate". *)
}

val make : ?rate:float -> flow:flow -> seq:int -> len:int -> born:float -> unit -> t
(** @raise Invalid_argument if [len <= 0], [seq <= 0] or [rate <= 0]. *)

val bits_of_bytes : int -> int
val bytes_of_bits : int -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val compare_by_flow_seq : t -> t -> int
(** Order by [(flow, seq)]; used by conservation tests. *)
