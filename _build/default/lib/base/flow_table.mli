(** Per-flow mutable state, keyed by {!Packet.flow}.

    A thin wrapper over [Hashtbl] that creates missing entries from a
    [default] function — every scheduler keeps per-flow tags/queues and
    must treat a never-seen flow as freshly initialized, per the
    paper's convention [F(p_f^0) = 0]. *)

type 'a t

val create : default:(Packet.flow -> 'a) -> 'a t
val find : 'a t -> Packet.flow -> 'a
(** Creates (and remembers) the default entry when absent. *)

val find_opt : 'a t -> Packet.flow -> 'a option
(** Does not create the entry. *)

val set : 'a t -> Packet.flow -> 'a -> unit
val remove : 'a t -> Packet.flow -> unit
val mem : 'a t -> Packet.flow -> bool
val iter : 'a t -> f:(Packet.flow -> 'a -> unit) -> unit
val fold : 'a t -> init:'b -> f:(Packet.flow -> 'a -> 'b -> 'b) -> 'b
val flows : 'a t -> Packet.flow list
(** Flows with a (created) entry, ascending. *)

val length : 'a t -> int
val clear : 'a t -> unit
