type t = { lookup : Packet.flow -> float }

let check w = if w <= 0.0 then invalid_arg "Weights: weight must be positive"

let uniform w =
  check w;
  { lookup = (fun _ -> w) }

let of_list ?(default = 1.0) assoc =
  check default;
  List.iter (fun (_, w) -> check w) assoc;
  let table = Hashtbl.create 16 in
  List.iter (fun (f, w) -> Hashtbl.replace table f w) assoc;
  { lookup = (fun f -> match Hashtbl.find_opt table f with Some w -> w | None -> default) }

let of_fun f = { lookup = f }

let get t flow =
  let w = t.lookup flow in
  check w;
  w

let set t flow w =
  check w;
  { lookup = (fun f -> if f = flow then w else t.lookup f) }

let total t flows = List.fold_left (fun acc f -> acc +. get t f) 0.0 flows
