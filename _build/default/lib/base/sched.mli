(** The scheduler interface.

    A scheduling discipline, to the rest of the library, is a record of
    closures over hidden state. Servers ({!Sfq_netsim.Server}), the
    hierarchical scheduler and the experiment harness are polymorphic
    over the discipline without functor plumbing: each concrete
    scheduler module ([Sfq], [Wfq], [Drr], ...) exposes its typed API
    plus a [sched : t -> Sched.t] view.

    Contract every discipline must honour (and that the conservation
    property tests check):
    - [enqueue] never drops a packet (queues are unbounded; losses are
      modeled above the scheduler if needed);
    - [dequeue ~now] returns [None] iff no packet is queued;
    - packets of one flow leave in FIFO order (all the paper's
      disciplines are per-flow FIFO);
    - [now] arguments are non-decreasing across calls — schedulers may
      assume time never runs backwards;
    - [peek] returns the packet the next [dequeue] at the same instant
      would return, without removing it (needed by hierarchical SFQ to
      stamp parent-level tags with the head packet's length). *)

type t = {
  name : string;
  enqueue : now:float -> Packet.t -> unit;
  dequeue : now:float -> Packet.t option;
  peek : unit -> Packet.t option;
  size : unit -> int;  (** total queued packets *)
  backlog : Packet.flow -> int;  (** queued packets of one flow *)
}

val is_empty : t -> bool

val drain : t -> now:float -> Packet.t list
(** Dequeue everything at time [now]; mainly for tests. *)

val drain_n : t -> now:float -> int -> Packet.t list
(** Dequeue at most [n] packets at time [now]. *)
