lib/base/flow_table.mli: Packet
