lib/base/sched.ml: List Packet
