lib/base/packet.ml: Format
