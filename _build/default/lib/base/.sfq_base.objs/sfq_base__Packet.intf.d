lib/base/packet.mli: Format
