lib/base/weights.mli: Packet
