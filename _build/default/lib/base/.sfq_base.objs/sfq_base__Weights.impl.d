lib/base/weights.ml: Hashtbl List Packet
