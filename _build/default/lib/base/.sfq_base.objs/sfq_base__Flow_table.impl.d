lib/base/flow_table.ml: Hashtbl List Packet
