lib/base/sched.mli: Packet
