type t = {
  name : string;
  enqueue : now:float -> Packet.t -> unit;
  dequeue : now:float -> Packet.t option;
  peek : unit -> Packet.t option;
  size : unit -> int;
  backlog : Packet.flow -> int;
}

let is_empty t = t.size () = 0

let drain t ~now =
  let rec loop acc =
    match t.dequeue ~now with None -> List.rev acc | Some p -> loop (p :: acc)
  in
  loop []

let drain_n t ~now n =
  let rec loop k acc =
    if k = 0 then List.rev acc
    else begin
      match t.dequeue ~now with None -> List.rev acc | Some p -> loop (k - 1) (p :: acc)
    end
  in
  loop n []
