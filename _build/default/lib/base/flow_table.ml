type 'a t = { table : (Packet.flow, 'a) Hashtbl.t; default : Packet.flow -> 'a }

let create ~default = { table = Hashtbl.create 16; default }

let find t flow =
  match Hashtbl.find_opt t.table flow with
  | Some v -> v
  | None ->
    let v = t.default flow in
    Hashtbl.replace t.table flow v;
    v

let find_opt t flow = Hashtbl.find_opt t.table flow
let set t flow v = Hashtbl.replace t.table flow v
let remove t flow = Hashtbl.remove t.table flow
let mem t flow = Hashtbl.mem t.table flow
let iter t ~f = Hashtbl.iter f t.table
let fold t ~init ~f = Hashtbl.fold f t.table init
let flows t = Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort compare
let length t = Hashtbl.length t.table
let clear t = Hashtbl.reset t.table
