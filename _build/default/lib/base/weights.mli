(** Flow weight assignments.

    The paper interprets the weight [r_f] of flow [f] as its reserved
    rate in bits/s once throughput and delay guarantees enter the
    picture (§2.2); before that it is just a share. Schedulers take a
    [Weights.t] at creation and look weights up per packet, so weights
    may also be changed between packets (used by the link-sharing
    examples). *)

type t

val uniform : float -> t
(** Every flow has the given weight. @raise Invalid_argument if not
    positive. *)

val of_list : ?default:float -> (Packet.flow * float) list -> t
(** Explicit per-flow weights; unlisted flows get [default] (default
    1.0). @raise Invalid_argument on a non-positive weight. *)

val of_fun : (Packet.flow -> float) -> t
(** Fully dynamic assignment. The function must return positive
    values. *)

val get : t -> Packet.flow -> float
val set : t -> Packet.flow -> float -> t
(** Functional update (shadows [of_fun]-backed assignments too). *)

val total : t -> Packet.flow list -> float
(** Sum of weights over the given flows. *)
