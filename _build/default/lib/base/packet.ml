type flow = int

type t = {
  flow : flow;
  seq : int;
  len : int;
  born : float;
  rate : float option;
}

let make ?rate ~flow ~seq ~len ~born () =
  if len <= 0 then invalid_arg "Packet.make: len must be positive";
  if seq <= 0 then invalid_arg "Packet.make: seq must be positive";
  (match rate with
  | Some r when r <= 0.0 -> invalid_arg "Packet.make: rate must be positive"
  | Some _ | None -> ());
  { flow; seq; len; born; rate }

let bits_of_bytes b = 8 * b
let bytes_of_bits b = b / 8

let pp ppf p =
  Format.fprintf ppf "pkt(flow=%d seq=%d len=%db born=%.6f)" p.flow p.seq p.len p.born

let to_string p = Format.asprintf "%a" pp p

let compare_by_flow_seq a b =
  match compare a.flow b.flow with 0 -> compare a.seq b.seq | c -> c
