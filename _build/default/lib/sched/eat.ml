open Sfq_base

(* Per flow we keep EAT(prev) + l_prev/r_prev, the floor for the next
   packet's EAT. *)
type t = { floor : float Flow_table.t }

let create () = { floor = Flow_table.create ~default:(fun _ -> neg_infinity) }

let on_arrival t ~now ~flow ~len ~rate =
  if rate <= 0.0 then invalid_arg "Eat.on_arrival: rate must be positive";
  let eat = Float.max now (Flow_table.find t.floor flow) in
  Flow_table.set t.floor flow (eat +. (float_of_int len /. rate));
  eat

let reset_flow t flow = Flow_table.remove t.floor flow
let reset t = Flow_table.clear t.floor
