(** Fair Queuing based on Start-time (Greenberg & Madras).

    Identical tag computation to WFQ — including the expensive fluid
    GPS virtual time and its assumed-capacity blind spot — but packets
    are transmitted in increasing {e start}-tag order. The paper's §2.5
    verdict, which Table 1 and the experiments reproduce: FQS has SFQ's
    scheduling order but WFQ's clock, hence all of WFQ's disadvantages
    and none of SFQ's efficiency. *)

open Sfq_base

type t

val create : capacity:float -> ?tie:Tag_queue.tie -> Weights.t -> t
val enqueue : t -> now:float -> Packet.t -> unit
val dequeue : t -> now:float -> Packet.t option
val peek : t -> Packet.t option
val size : t -> int
val backlog : t -> Packet.flow -> int
val sched : t -> Sched.t
