(** First-come first-served — the null discipline.

    Baseline for sanity checks and for modeling the per-class packet
    queues inside hierarchical link-sharing leaves when no intra-class
    discipline is wanted. *)

open Sfq_base

type t

val create : unit -> t
val enqueue : t -> now:float -> Packet.t -> unit
val dequeue : t -> now:float -> Packet.t option
val peek : t -> Packet.t option
val size : t -> int
val backlog : t -> Packet.flow -> int

val sched : t -> Sched.t
(** Discipline-agnostic view; see {!Sfq_base.Sched}. *)
