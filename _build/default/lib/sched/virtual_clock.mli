(** Virtual Clock (Zhang, SIGCOMM '90).

    Each packet is stamped [EAT + l/r] and packets are served in
    increasing stamp order. Provides the same delay guarantee as WFQ
    ([EAT + l/r + l^max/C], Theorem 9's ingredient) but is {e unfair}:
    a flow that used idle bandwidth accumulates stamps far in the
    future and is then locked out while competitors catch up — the
    paper's §1.1 argument for why real-time-but-unfair disciplines
    mistreat VBR video. Used here as a baseline and as the Guaranteed
    Service Queue inside {!Sfq_core.Fair_airport}. *)

open Sfq_base

type t

val create : ?tie:Tag_queue.tie -> Weights.t -> t
val enqueue : t -> now:float -> Packet.t -> unit
(** Packets with a [rate] override use it in place of the flow
    weight. *)

val dequeue : t -> now:float -> Packet.t option
val peek : t -> Packet.t option
val size : t -> int
val backlog : t -> Packet.flow -> int
val sched : t -> Sched.t
