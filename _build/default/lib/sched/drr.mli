(** Deficit Round Robin (Shreedhar & Varghese, SIGCOMM '95).

    O(1) per packet: flows are served in round-robin order; each visit
    credits the flow's deficit counter with [quantum * weight] bits and
    the flow transmits head packets while they fit in the deficit. The
    paper's Table 1 shows why DRR is a baseline and not the answer: its
    fairness measure [1 + l_f^max/r_f + l_m^max/r_m] (for min weight 1)
    deviates unboundedly from SFQ/SCFQ's as weights grow, and its
    maximum delay depends on every other flow's weight.

    Invariant (checked by the property tests): whenever a flow has
    queued packets, [0 <= deficit < quantum*weight + l^max]. *)

open Sfq_base

type t

val create : ?quantum:float -> Weights.t -> t
(** [quantum] is the per-round credit in bits for a weight-1.0 flow
    (default 8000.0 = 1000 bytes, a typical MTU). Flow [f] receives
    [quantum *. weight f] bits per round.
    @raise Invalid_argument if [quantum <= 0]. *)

val enqueue : t -> now:float -> Packet.t -> unit
val dequeue : t -> now:float -> Packet.t option
val peek : t -> Packet.t option
val size : t -> int
val backlog : t -> Packet.flow -> int

val deficit : t -> Packet.flow -> float
(** Current deficit counter in bits (0 for unseen flows); exposed for
    the invariant tests. *)

val sched : t -> Sched.t
