(** Worst-case Fair Weighted Fair Queuing (WF²Q, Bennett & Zhang,
    INFOCOM '96) — the contemporaneous repair of WFQ, included as the
    strongest GPS-referencing baseline.

    Like WFQ it stamps packets against the fluid GPS virtual time and
    serves smallest finish tag first, but only among {e eligible}
    packets — those whose start tag the fluid system has reached
    ([S <= v(now)]), i.e. packets GPS itself would have begun serving.
    Eligibility removes WFQ's ahead-of-fluid bursts (the source of
    Example 1's factor-two unfairness) at the price of keeping the
    expensive GPS clock, and it inherits WFQ's assumed-capacity blind
    spot on variable-rate servers — which is why the paper's SFQ, not
    WF²Q, is the variable-rate answer. The Table-1 workloads in this
    repository exercise exactly that contrast.

    If no packet is eligible at dequeue time the server must not idle
    (work conservation): the packet with the smallest start tag is
    served instead. *)

open Sfq_base

type t

val create : capacity:float -> ?tie:Tag_queue.tie -> Weights.t -> t
val enqueue : t -> now:float -> Packet.t -> unit
val dequeue : t -> now:float -> Packet.t option
val peek : t -> Packet.t option
(** Best-effort: evaluated at the last time the scheduler saw; exact
    whenever [peek] is called at the same instant as the next
    [dequeue] (the {!Sfq_base.Sched} contract). *)

val size : t -> int
val backlog : t -> Packet.flow -> int
val sched : t -> Sched.t
