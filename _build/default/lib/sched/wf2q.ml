open Sfq_util
open Sfq_base

type entry = { stag : float; ftag : float; uid : int; pkt : Packet.t }

type t = {
  gps : Gps.t;
  pending : entry Ds_heap.t;  (* not yet eligible, ordered by start tag *)
  eligible : entry Ds_heap.t;  (* ordered by finish tag *)
  counts : int Flow_table.t;
  tie : Tag_queue.tie;
  mutable last_now : float;
  mutable next_uid : int;
}

let tie_compare tie a b =
  let by_rate =
    match (tie : Tag_queue.tie) with
    | Arrival -> 0
    | Low_rate w -> compare (w a.pkt.Packet.flow) (w b.pkt.Packet.flow)
    | High_rate w -> compare (w b.pkt.Packet.flow) (w a.pkt.Packet.flow)
  in
  if by_rate <> 0 then by_rate else compare a.uid b.uid

let create ~capacity ?(tie = Tag_queue.Arrival) weights =
  let by_start a b =
    match compare a.stag b.stag with 0 -> tie_compare tie a b | c -> c
  in
  let by_finish a b =
    match compare a.ftag b.ftag with 0 -> tie_compare tie a b | c -> c
  in
  let pending = Ds_heap.create ~cmp:by_start () in
  let eligible = Ds_heap.create ~cmp:by_finish () in
  let real_system_empty () = Ds_heap.is_empty pending && Ds_heap.is_empty eligible in
  {
    gps = Gps.create ~capacity ~real_system_empty weights;
    pending;
    eligible;
    counts = Flow_table.create ~default:(fun _ -> 0);
    tie;
    last_now = 0.0;
    next_uid = 0;
  }

let enqueue t ~now pkt =
  t.last_now <- Float.max t.last_now now;
  let stag, ftag = Gps.on_arrival t.gps ~now pkt in
  t.next_uid <- t.next_uid + 1;
  Ds_heap.add t.pending { stag; ftag; uid = t.next_uid; pkt };
  Flow_table.set t.counts pkt.Packet.flow (Flow_table.find t.counts pkt.Packet.flow + 1)

(* Move packets the fluid system has started (S <= v) to the eligible
   heap. *)
let promote t ~now =
  let v = Gps.vtime t.gps ~now in
  let rec go () =
    match Ds_heap.min_elt t.pending with
    | Some e when e.stag <= v +. 1e-12 ->
      ignore (Ds_heap.pop_min t.pending);
      Ds_heap.add t.eligible e;
      go ()
    | Some _ | None -> ()
  in
  go ()

let take t e =
  Flow_table.set t.counts e.pkt.Packet.flow (Flow_table.find t.counts e.pkt.Packet.flow - 1);
  Some e.pkt

let dequeue t ~now =
  t.last_now <- Float.max t.last_now now;
  promote t ~now;
  match Ds_heap.pop_min t.eligible with
  | Some e -> take t e
  | None -> begin
    (* Work conservation: nothing eligible, serve the earliest start
       tag rather than idling. *)
    match Ds_heap.pop_min t.pending with Some e -> take t e | None -> None
  end

let peek t =
  promote t ~now:t.last_now;
  match Ds_heap.min_elt t.eligible with
  | Some e -> Some e.pkt
  | None -> begin
    match Ds_heap.min_elt t.pending with Some e -> Some e.pkt | None -> None
  end

let size t = Ds_heap.length t.pending + Ds_heap.length t.eligible
let backlog t flow = Flow_table.find t.counts flow

let sched t =
  {
    Sched.name = "wf2q";
    enqueue = (fun ~now pkt -> enqueue t ~now pkt);
    dequeue = (fun ~now -> dequeue t ~now);
    peek = (fun () -> peek t);
    size = (fun () -> size t);
    backlog = (fun flow -> backlog t flow);
  }
