(** Delay Earliest-Due-Date over Fluctuation Constrained servers
    (paper §3, eqs. 66–68).

    On arrival, packet [p_f^j] gets deadline [D = EAT(p_f^j) + d_f];
    packets are served earliest-deadline-first. Theorem 7: if the
    schedulability condition (eq. 67) holds and the server is
    [(C, δ(C))]-FC, every packet departs by
    [D + l^max/C + δ(C)/C]. The paper uses Delay EDD inside a
    hierarchical SFQ class to decouple delay from throughput
    allocation, which is why it must work over variable-rate
    (FC) servers — the class's bandwidth fluctuates. *)

open Sfq_base

type flow_spec = {
  rate : float;  (** reserved rate r_f, bits/s *)
  deadline : float;  (** d_f, seconds *)
  max_len : int;  (** l_f^max, bits; used by the schedulability test *)
}

type t

val create : (Packet.flow * flow_spec) list -> t
(** @raise Invalid_argument on non-positive rate/deadline/length or on
    a packet later arriving for an undeclared flow (Delay EDD requires
    admission control, so flows must be declared up front). *)

val enqueue : t -> now:float -> Packet.t -> unit
val dequeue : t -> now:float -> Packet.t option
val peek : t -> Packet.t option
val size : t -> int
val backlog : t -> Packet.flow -> int

val deadline_of_last : t -> Packet.flow -> float option
(** Deadline assigned to the flow's most recent arrival; for tests. *)

val schedulable : (Packet.flow * flow_spec) list -> capacity:float -> ?horizon:float -> unit -> bool
(** Eq. 67 checked at its critical points
    [t = d_n + k·l_n/r_n, k >= 0] up to [horizon] (default: the point
    past which the condition holds by a utilization argument; requires
    total utilization < 1, otherwise returns [false] unless the
    condition degenerates). *)

val sched : t -> Sched.t
