(** Weighted Fair Queuing (Demers–Keshav–Shenker), a.k.a. PGPS.

    Packets are stamped with start/finish tags against the virtual time
    of an {e assumed} constant capacity and transmitted in increasing
    finish-tag order. Two clock implementations are provided:

    - [`Fluid] (default): the textbook definition — eq. 3 over the
      hypothetical bit-by-bit round-robin (GPS) system, simulated
      exactly (see {!Gps});
    - [`Real]: the practical implementation found in routers and in the
      REAL simulator the paper used — the round number advances at
      [C / Σ_{j ∈ B(t)} r_j] over the set of {e really} backlogged
      flows, and resets when the real server idles.

    The two agree whenever the actual service rate matches the assumed
    capacity. They diverge on variable-rate servers — which is the
    paper's point. Under [`Real], a slow actual server lets the clock
    race ahead of the standing queue's tags, so a newly active flow
    (tagged at the current clock) waits behind the entire old backlog:
    the Fig. 1(b) starvation. Both clocks reproduce Example 2.

    What the paper establishes about WFQ, all reproduced by the
    experiment suite: fairness at least a factor 2 from the lower bound
    (Example 1); unfairness on variable-rate servers (Example 2,
    Fig. 1(b)); delay inversely coupled to the reserved rate
    (Fig. 2). *)

open Sfq_base

type t

val create :
  capacity:float -> ?clock:[ `Fluid | `Real ] -> ?tie:Tag_queue.tie -> Weights.t -> t
(** [capacity] is the assumed link rate in bits/s used by the virtual
    clock — deliberately {e not} necessarily the real server's rate. *)

val enqueue : t -> now:float -> Packet.t -> unit
val dequeue : t -> now:float -> Packet.t option
val peek : t -> Packet.t option
val size : t -> int
val backlog : t -> Packet.flow -> int

val vtime : t -> now:float -> float
(** Virtual time at [now] (advances the clock as a side effect);
    exposed for tests (Example 2 checks [v(1) = C] under both
    clocks). *)

val sched : t -> Sched.t
