open Sfq_base

type t = { queue : Packet.t Queue.t; counts : int Flow_table.t }

let create () = { queue = Queue.create (); counts = Flow_table.create ~default:(fun _ -> 0) }

let enqueue t ~now:_ pkt =
  Queue.push pkt t.queue;
  Flow_table.set t.counts pkt.Packet.flow (Flow_table.find t.counts pkt.Packet.flow + 1)

let dequeue t ~now:_ =
  match Queue.take_opt t.queue with
  | None -> None
  | Some p ->
    Flow_table.set t.counts p.Packet.flow (Flow_table.find t.counts p.Packet.flow - 1);
    Some p

let peek t = Queue.peek_opt t.queue
let size t = Queue.length t.queue
let backlog t flow = Flow_table.find t.counts flow

let sched t =
  {
    Sched.name = "fifo";
    enqueue = (fun ~now pkt -> enqueue t ~now pkt);
    dequeue = (fun ~now -> dequeue t ~now);
    peek = (fun () -> peek t);
    size = (fun () -> size t);
    backlog = (fun flow -> backlog t flow);
  }
