open Sfq_util
open Sfq_base

type tie = Arrival | Low_rate of (Packet.flow -> float) | High_rate of (Packet.flow -> float)

type entry = { tag : float; uid : int; pkt : Packet.t }

type t = {
  heap : entry Ds_heap.t;
  counts : int Flow_table.t;
  mutable next_uid : int;
}

let compare_entry tie a b =
  match compare a.tag b.tag with
  | 0 ->
    let by_rate =
      match tie with
      | Arrival -> 0
      | Low_rate w -> compare (w a.pkt.Packet.flow) (w b.pkt.Packet.flow)
      | High_rate w -> compare (w b.pkt.Packet.flow) (w a.pkt.Packet.flow)
    in
    if by_rate <> 0 then by_rate else compare a.uid b.uid
  | c -> c

let create ?(tie = Arrival) () =
  {
    heap = Ds_heap.create ~cmp:(compare_entry tie) ();
    counts = Flow_table.create ~default:(fun _ -> 0);
    next_uid = 0;
  }

let push t ~tag pkt =
  Ds_heap.add t.heap { tag; uid = t.next_uid; pkt };
  t.next_uid <- t.next_uid + 1;
  Flow_table.set t.counts pkt.Packet.flow (Flow_table.find t.counts pkt.Packet.flow + 1)

let pop t =
  match Ds_heap.pop_min t.heap with
  | None -> None
  | Some e ->
    Flow_table.set t.counts e.pkt.Packet.flow (Flow_table.find t.counts e.pkt.Packet.flow - 1);
    Some (e.tag, e.pkt)

let peek t =
  match Ds_heap.min_elt t.heap with None -> None | Some e -> Some (e.tag, e.pkt)

let size t = Ds_heap.length t.heap
let backlog t flow = Flow_table.find t.counts flow
let is_empty t = Ds_heap.is_empty t.heap
