open Sfq_base

type t = { queues : Packet.t Queue.t Flow_table.t; mutable total : int }

let create () = { queues = Flow_table.create ~default:(fun _ -> Queue.create ()); total = 0 }

let push t pkt =
  Queue.push pkt (Flow_table.find t.queues pkt.Packet.flow);
  t.total <- t.total + 1

let head t flow = Queue.peek_opt (Flow_table.find t.queues flow)

let pop t flow =
  match Queue.take_opt (Flow_table.find t.queues flow) with
  | None -> None
  | Some p ->
    t.total <- t.total - 1;
    Some p

let flow_is_empty t flow = Queue.is_empty (Flow_table.find t.queues flow)
let backlog t flow = Queue.length (Flow_table.find t.queues flow)
let size t = t.total
