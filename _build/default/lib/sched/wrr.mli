(** Weighted Round Robin over packets.

    Each active flow may transmit up to [credits f] packets per round,
    in round-robin order. With equal-length packets this is the server
    the paper uses to lower-bound DRR's maximum delay (§1.2, limitation
    2); with variable-length packets it is unfair — which is exactly
    why DRR exists. Kept as a baseline and as a teaching foil. *)

open Sfq_base

type t

val create : ?credits:(Packet.flow -> int) -> Weights.t -> t
(** [credits] is the number of packets flow [f] may send per round
    (must be >= 1); the default rounds the flow's weight up to an
    integer. *)

val enqueue : t -> now:float -> Packet.t -> unit
val dequeue : t -> now:float -> Packet.t option
val peek : t -> Packet.t option
val size : t -> int
val backlog : t -> Packet.flow -> int
val sched : t -> Sched.t
