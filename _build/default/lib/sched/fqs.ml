open Sfq_base

type t = { gps : Gps.t; queue : Tag_queue.t }

let create ~capacity ?tie weights =
  let queue = Tag_queue.create ?tie () in
  {
    gps =
      Gps.create ~capacity ~real_system_empty:(fun () -> Tag_queue.is_empty queue) weights;
    queue;
  }

let enqueue t ~now pkt =
  let start_tag, _finish_tag = Gps.on_arrival t.gps ~now pkt in
  Tag_queue.push t.queue ~tag:start_tag pkt

let dequeue t ~now:_ =
  match Tag_queue.pop t.queue with None -> None | Some (_, p) -> Some p

let peek t = match Tag_queue.peek t.queue with None -> None | Some (_, p) -> Some p
let size t = Tag_queue.size t.queue
let backlog t flow = Tag_queue.backlog t.queue flow

let sched t =
  {
    Sched.name = "fqs";
    enqueue = (fun ~now pkt -> enqueue t ~now pkt);
    dequeue = (fun ~now -> dequeue t ~now);
    peek = (fun () -> peek t);
    size = (fun () -> size t);
    backlog = (fun flow -> backlog t flow);
  }
