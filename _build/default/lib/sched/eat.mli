(** Expected Arrival Time bookkeeping (paper eq. 37).

    [EAT(p^j) = max(A(p^j), EAT(p^{j-1}) + l^{j-1}/r^{j-1})], with
    [EAT(p^0) = -∞]: the arrival time the packet {e would} have had if
    the flow had sent at exactly its reserved rate. Virtual Clock
    stamps packets with [EAT + l/r]; Delay EDD assigns deadlines
    [EAT + d_f]; the Fair Airport rate regulator releases packets at
    their EAT; and all of the paper's delay guarantees (Theorems 4–9)
    are stated relative to it. *)

open Sfq_base

type t

val create : unit -> t

val on_arrival : t -> now:float -> flow:Packet.flow -> len:int -> rate:float -> float
(** EAT of the arriving packet; updates the flow's state. [len]/[rate]
    are the {e arriving} packet's, used as the floor for the next
    packet. *)

val reset_flow : t -> Packet.flow -> unit
val reset : t -> unit
