lib/sched/tag_queue.mli: Packet Sfq_base
