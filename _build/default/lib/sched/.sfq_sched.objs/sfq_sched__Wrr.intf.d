lib/sched/wrr.mli: Packet Sched Sfq_base Weights
