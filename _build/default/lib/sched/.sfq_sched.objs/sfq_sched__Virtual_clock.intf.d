lib/sched/virtual_clock.mli: Packet Sched Sfq_base Tag_queue Weights
