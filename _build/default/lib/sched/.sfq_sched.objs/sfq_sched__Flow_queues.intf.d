lib/sched/flow_queues.mli: Packet Sfq_base
