lib/sched/delay_edd.ml: Eat Float Flow_table Hashtbl List Packet Printf Sched Sfq_base Tag_queue
