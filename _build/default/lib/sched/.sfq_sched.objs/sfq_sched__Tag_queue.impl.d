lib/sched/tag_queue.ml: Ds_heap Flow_table Packet Sfq_base Sfq_util
