lib/sched/delay_edd.mli: Packet Sched Sfq_base
