lib/sched/drr.ml: Flow_queues Flow_table Hashtbl Packet Queue Sched Sfq_base Weights
