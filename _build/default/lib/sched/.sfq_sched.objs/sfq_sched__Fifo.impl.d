lib/sched/fifo.ml: Flow_table Packet Queue Sched Sfq_base
