lib/sched/scfq.ml: Float Flow_table Packet Sched Sfq_base Tag_queue Weights
