lib/sched/gps.mli: Packet Sfq_base Weights
