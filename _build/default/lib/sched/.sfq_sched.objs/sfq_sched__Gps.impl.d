lib/sched/gps.ml: Ds_heap Float Flow_table Hashtbl Packet Sfq_base Sfq_util Weights
