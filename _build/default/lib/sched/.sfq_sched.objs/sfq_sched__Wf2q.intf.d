lib/sched/wf2q.mli: Packet Sched Sfq_base Tag_queue Weights
