lib/sched/drr.mli: Packet Sched Sfq_base Weights
