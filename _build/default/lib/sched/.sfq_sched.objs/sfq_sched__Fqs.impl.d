lib/sched/fqs.ml: Gps Sched Sfq_base Tag_queue
