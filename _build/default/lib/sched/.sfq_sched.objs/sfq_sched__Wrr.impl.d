lib/sched/wrr.ml: Float Flow_queues Flow_table Packet Queue Sched Sfq_base Stdlib Weights
