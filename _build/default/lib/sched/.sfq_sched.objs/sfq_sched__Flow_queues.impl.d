lib/sched/flow_queues.ml: Flow_table Packet Queue Sfq_base
