lib/sched/wf2q.ml: Ds_heap Float Flow_table Gps Packet Sched Sfq_base Sfq_util Tag_queue
