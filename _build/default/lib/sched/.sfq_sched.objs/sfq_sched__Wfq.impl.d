lib/sched/wfq.ml: Float Flow_table Gps Packet Sched Sfq_base Tag_queue Weights
