lib/sched/eat.ml: Float Flow_table Sfq_base
