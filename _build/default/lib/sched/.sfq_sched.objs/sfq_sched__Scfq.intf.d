lib/sched/scfq.mli: Packet Sched Sfq_base Tag_queue Weights
