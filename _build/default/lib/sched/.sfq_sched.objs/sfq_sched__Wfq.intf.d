lib/sched/wfq.mli: Packet Sched Sfq_base Tag_queue Weights
