lib/sched/fifo.mli: Packet Sched Sfq_base
