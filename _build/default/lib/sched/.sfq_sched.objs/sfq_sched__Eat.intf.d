lib/sched/eat.mli: Packet Sfq_base
