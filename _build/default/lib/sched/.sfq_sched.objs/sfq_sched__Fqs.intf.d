lib/sched/fqs.mli: Packet Sched Sfq_base Tag_queue Weights
