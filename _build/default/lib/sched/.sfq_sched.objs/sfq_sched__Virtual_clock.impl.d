lib/sched/virtual_clock.ml: Eat Packet Sched Sfq_base Tag_queue Weights
