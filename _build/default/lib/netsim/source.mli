(** Traffic sources.

    Every source is a generator of {!Sfq_base.Packet.t} wired to a
    [target] (usually [Server.inject]) through simulator events. All
    take [start]/[stop] bounds in seconds and manage their own per-flow
    sequence numbers. *)

open Sfq_base

type counter = { mutable sent : int; mutable finished_at : float option }
(** Mutable view of a source's progress (packets injected; when the
    source completed its budget, for budget-limited sources). *)

val cbr :
  Sim.t -> target:(Packet.t -> unit) -> flow:Packet.flow -> len:int -> rate:float ->
  start:float -> stop:float -> counter
(** Constant bit rate: one [len]-bit packet every [len/rate] seconds. *)

val poisson :
  Sim.t -> target:(Packet.t -> unit) -> flow:Packet.flow -> len:int -> rate:float ->
  rng:Sfq_util.Rng.t -> start:float -> stop:float -> counter
(** Poisson arrivals with mean rate [rate] bits/s (exponential
    interarrivals of mean [len/rate]); the Fig. 2(b) workload. *)

val on_off :
  Sim.t -> target:(Packet.t -> unit) -> flow:Packet.flow -> len:int -> peak_rate:float ->
  on:float -> off:float -> start:float -> stop:float -> counter
(** CBR at [peak_rate] during on-periods, silent during off-periods. *)

val burst :
  Sim.t -> target:(Packet.t -> unit) -> flow:Packet.flow -> len:int -> burst_size:int ->
  interval:float -> start:float -> stop:float -> counter
(** [burst_size] back-to-back packets every [interval] seconds. *)

val leaky_bucket :
  Sim.t -> target:(Packet.t -> unit) -> flow:Packet.flow -> len:int -> sigma:float ->
  rho:float -> flush_every:float -> start:float -> stop:float -> counter
(** Greedy but (σ, ρ)-conforming: a token bucket (burst [sigma] bits,
    rate [rho] bits/s) is flushed into whole packets every
    [flush_every] seconds. Used by the end-to-end delay experiment,
    whose bound (§A.5) assumes leaky-bucket conformance. *)

val greedy :
  Sim.t -> server:Server.t -> ?priority:bool -> flow:Packet.flow -> len:int ->
  total:int -> window:int -> start:float -> unit -> counter
(** Backlogging source: keeps [window] packets outstanding at [server]
    until [total] have been injected — the Fig. 3 "connection
    transmitting N packets". [finished_at] is set when the last packet
    {e departs} the server. *)
