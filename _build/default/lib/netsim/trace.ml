open Sfq_util
open Sfq_base

type record = {
  flow : Packet.flow;
  seq : int;
  len : int;
  born : float;
  arrived : float;
  start : float;
  departed : float;
}

type t = { records : record Vec.t; pending : float Queue.t Flow_table.t }

let attach server =
  let t =
    {
      records = Vec.create ();
      pending = Flow_table.create ~default:(fun _ -> Queue.create ());
    }
  in
  let sim = Server.sim server in
  Server.on_inject server (fun p ->
      Queue.push (Sim.now sim) (Flow_table.find t.pending p.Packet.flow));
  Server.on_depart server (fun p ~start ~departed ->
      match Queue.take_opt (Flow_table.find t.pending p.Packet.flow) with
      | None -> () (* packet injected before the trace was attached *)
      | Some arrived ->
        Vec.push t.records
          {
            flow = p.Packet.flow;
            seq = p.Packet.seq;
            len = p.Packet.len;
            born = p.Packet.born;
            arrived;
            start;
            departed;
          });
  t

let records t = t.records
let to_list t = Vec.to_list t.records
let of_flow t flow = List.filter (fun r -> r.flow = flow) (to_list t)
let count t = Vec.length t.records

let delays t flow =
  of_flow t flow |> List.map (fun r -> r.departed -. r.arrived) |> Array.of_list

let end_to_end_delays t flow =
  of_flow t flow |> List.map (fun r -> r.departed -. r.born) |> Array.of_list

let max_delay t flow = Array.fold_left Float.max 0.0 (delays t flow)
