(** Jitter EDD — the non-work-conserving rate-controlled EDF discipline
    Appendix B cites as Fair Airport's complexity class.

    Each packet is {e held} by a regulator until its expected arrival
    time (eq. 37) and only then competes, earliest-deadline-first
    (deadline = EAT + d_f), for the link. Holding reconstructs the
    flow's reserved-rate spacing at every hop, which removes the
    jitter upstream queueing introduced — the property the
    [jitter removal] test demonstrates — at the cost of idling the
    link while packets wait (non-work-conserving).

    Because a dequeue can legitimately return [None] while packets are
    held, the discipline needs a way to wake its server when the next
    packet matures: it schedules a simulator event that calls the
    registered notifier (wire it to {!Server.kick}). *)

open Sfq_base

type t

val create : Sim.t -> (Packet.flow * Sfq_sched.Delay_edd.flow_spec) list -> t
(** Flow specs as for {!Sfq_sched.Delay_edd} (rate, deadline, max_len);
    flows must be declared up front.
    @raise Invalid_argument on malformed specs or later on an
    undeclared flow. *)

val set_notifier : t -> (unit -> unit) -> unit
(** Called (from a simulator event) when a held packet becomes
    eligible while the queue was otherwise empty. Typically
    [fun () -> Server.kick server]. *)

val enqueue : t -> now:float -> Packet.t -> unit
val dequeue : t -> now:float -> Packet.t option
(** [None] when nothing is {e eligible} — held packets may exist; the
    notifier will fire when the earliest matures. *)

val peek : t -> Packet.t option
val size : t -> int
(** Held + eligible. *)

val held : t -> int
val backlog : t -> Packet.flow -> int
val sched : t -> Sched.t
