(** Time-varying server capacity.

    A rate process is a lazily generated piecewise-constant rate
    function [r(t)] (bits/s). A {!Server} integrates it to find packet
    completion times, which is how this library models the paper's
    variable-rate servers:

    - {!constant} — the classical fixed-capacity link;
    - {!square}, {!fc_random} — Fluctuation Constrained servers
      (Definition 1): in any interval the work done is at least
      [C(t2−t1) − δ(C)]. [fc_random] draws random segment rates but
      clamps them against the remaining drawdown budget of
      [X(t) = C·t − W(t)], so Definition 1 holds {e by construction}
      for every interval (Definition 1 ⟺ the drawdown of [X] never
      exceeds δ);
    - {!ebf} — Exponentially Bounded Fluctuation (Definition 2):
      per-segment Laplace rate noise, whose iid sum has an
      exponentially bounded lower tail;
    - {!on_off}, {!of_segments} — deterministic shapes for targeted
      tests (Example 2 uses [of_segments]).

    All processes are defined from t = 0 and never end. *)

type t

val constant : float -> t
(** @raise Invalid_argument if the rate is not positive. *)

val square : c:float -> swing:float -> period:float -> t
(** Alternates [c+swing] and [c−swing], each for [period/2], high phase
    first. FC with parameters [(c, swing·period/2)].
    @raise Invalid_argument unless [0 <= swing < c] and [period > 0]. *)

val fc_random : c:float -> delta:float -> seg:float -> spread:float -> rng:Sfq_util.Rng.t -> t
(** Segments of duration [seg] with rates uniform in [[c−spread,
    c+spread]], clamped so the drawdown of [C·t − W(t)] stays below
    [delta]. FC with parameters [(c, delta)].
    @raise Invalid_argument unless [0 < spread <= c], [delta > 0],
    [seg > 0]. *)

val ebf : c:float -> scale:float -> seg:float -> rng:Sfq_util.Rng.t -> t
(** Segments of duration [seg] with rate [max(0.01·c, c + Laplace(0,
    scale))]. EBF around average rate [c]; the [ebf] experiment
    measures the empirical [(B, α)]. *)

val on_off : on_rate:float -> on:float -> off:float -> ?start_on:bool -> unit -> t
(** Alternates [on_rate] and 0. *)

val of_segments : (float * float) list -> tail:float -> t
(** Explicit [(duration, rate)] list, then [tail] forever.
    @raise Invalid_argument on negative durations/rates or
    non-positive [tail]. *)

val rate_at : t -> float -> float
val work : t -> t1:float -> t2:float -> float
(** [∫_{t1}^{t2} r]. Requires [t1 <= t2]. *)

val time_to_serve : t -> from:float -> amount:float -> float
(** Earliest [te] with [work ~t1:from ~t2:te = amount]. [amount] in
    bits, must be positive. *)

val nominal_rate : t -> float
(** The average/assumed rate [C] the process was built around. *)

val nominal_delta : t -> float option
(** The FC burstiness δ(C) when the process is FC by construction. *)
