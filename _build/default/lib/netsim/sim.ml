open Sfq_util

type event = { at : float; seq : int; fn : unit -> unit }

type t = {
  queue : event Ds_heap.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable fired : int;
}

let compare_event a b =
  match compare a.at b.at with 0 -> compare a.seq b.seq | c -> c

let create () =
  { queue = Ds_heap.create ~cmp:compare_event (); clock = 0.0; next_seq = 0; fired = 0 }

let now t = t.clock

let schedule t ~at fn =
  if at < t.clock then
    invalid_arg (Printf.sprintf "Sim.schedule: at=%g is before now=%g" at t.clock);
  Ds_heap.add t.queue { at; seq = t.next_seq; fn };
  t.next_seq <- t.next_seq + 1

let schedule_after t ~delay fn =
  if delay < 0.0 then invalid_arg "Sim.schedule_after: negative delay";
  schedule t ~at:(t.clock +. delay) fn

let fire t e =
  t.clock <- e.at;
  t.fired <- t.fired + 1;
  e.fn ()

let run t ~until =
  let rec loop () =
    match Ds_heap.min_elt t.queue with
    | Some e when e.at <= until ->
      ignore (Ds_heap.pop_min t.queue);
      fire t e;
      loop ()
    | Some _ | None -> ()
  in
  loop ();
  if until > t.clock then t.clock <- until

let run_all t ?(limit = 100_000_000) () =
  let rec loop n =
    if n < limit then begin
      match Ds_heap.pop_min t.queue with
      | Some e ->
        fire t e;
        loop (n + 1)
      | None -> ()
    end
  in
  loop 0

let pending t = Ds_heap.length t.queue
let events_fired t = t.fired
