lib/netsim/net.mli: Packet Rate_process Sched Server Sfq_base Sim
