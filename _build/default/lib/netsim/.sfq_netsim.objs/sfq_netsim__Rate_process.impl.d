lib/netsim/rate_process.ml: Float List Rng Running_min Sfq_util Vec
