lib/netsim/net.ml: Array Hashtbl List Packet Printf Server Sfq_base Sim
