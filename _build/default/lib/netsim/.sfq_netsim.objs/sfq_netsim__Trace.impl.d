lib/netsim/trace.ml: Array Float Flow_table List Packet Queue Server Sfq_base Sfq_util Sim Vec
