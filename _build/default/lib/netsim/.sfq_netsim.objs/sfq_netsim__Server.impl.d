lib/netsim/server.ml: List Packet Queue Rate_process Sched Sfq_base Sim
