lib/netsim/server.mli: Packet Rate_process Sched Sfq_base Sim
