lib/netsim/policer.ml: Float Packet Sfq_base Sim
