lib/netsim/tandem.ml: Array List Server Sim
