lib/netsim/mpeg.mli: Packet Sfq_base Sfq_util Sim
