lib/netsim/tcp.mli: Packet Server Sfq_base Sim
