lib/netsim/tandem.mli: Packet Server Sfq_base Sim
