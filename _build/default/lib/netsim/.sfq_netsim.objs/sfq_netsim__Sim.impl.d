lib/netsim/sim.ml: Ds_heap Printf Sfq_util
