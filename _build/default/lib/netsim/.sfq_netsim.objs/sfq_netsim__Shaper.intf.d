lib/netsim/shaper.mli: Packet Sfq_base Sim
