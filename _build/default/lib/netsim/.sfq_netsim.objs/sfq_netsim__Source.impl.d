lib/netsim/source.ml: Float Packet Rng Server Sfq_base Sfq_util Sim Stdlib
