lib/netsim/trace.mli: Packet Server Sfq_base Sfq_util
