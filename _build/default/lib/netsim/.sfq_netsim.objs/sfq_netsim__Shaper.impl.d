lib/netsim/shaper.ml: Float Packet Queue Sfq_base Sim
