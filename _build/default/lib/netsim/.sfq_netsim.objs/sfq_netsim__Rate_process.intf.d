lib/netsim/rate_process.mli: Sfq_util
