lib/netsim/tcp.ml: Float Hashtbl Packet Server Sfq_base Sfq_util Sim Stdlib Vec
