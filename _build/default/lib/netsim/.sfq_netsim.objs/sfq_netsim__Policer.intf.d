lib/netsim/policer.mli: Packet Sfq_base Sim
