lib/netsim/jitter_edd.mli: Packet Sched Sfq_base Sfq_sched Sim
