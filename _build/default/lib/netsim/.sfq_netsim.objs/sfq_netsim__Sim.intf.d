lib/netsim/sim.mli:
