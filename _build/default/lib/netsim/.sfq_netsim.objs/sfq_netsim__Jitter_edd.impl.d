lib/netsim/jitter_edd.ml: Ds_heap Float Flow_table Hashtbl List Packet Printf Sched Sfq_base Sfq_sched Sfq_util Sim
