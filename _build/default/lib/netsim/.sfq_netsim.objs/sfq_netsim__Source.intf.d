lib/netsim/source.mli: Packet Server Sfq_base Sfq_util Sim
