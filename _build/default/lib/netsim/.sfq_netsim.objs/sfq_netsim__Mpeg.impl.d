lib/netsim/mpeg.ml: Array Float Packet Rng Sfq_base Sfq_util Sim Stdlib
