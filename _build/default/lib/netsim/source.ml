open Sfq_util
open Sfq_base

type counter = { mutable sent : int; mutable finished_at : float option }

let check_common ~len ~start ~stop =
  if len <= 0 then invalid_arg "Source: len must be positive";
  if start < 0.0 || stop < start then invalid_arg "Source: need 0 <= start <= stop"

let emit sim target ~flow ~len counter =
  counter.sent <- counter.sent + 1;
  let pkt = Packet.make ~flow ~seq:counter.sent ~len ~born:(Sim.now sim) () in
  target pkt

(* Generic clocked source: [next_gap] yields the delay to the next
   packet (None to stop early). *)
let clocked sim ~target ~flow ~len ~start ~stop next_gap =
  check_common ~len ~start ~stop;
  let counter = { sent = 0; finished_at = None } in
  let rec tick () =
    if Sim.now sim <= stop then begin
      emit sim target ~flow ~len counter;
      match next_gap () with
      | Some gap when Sim.now sim +. gap <= stop -> Sim.schedule_after sim ~delay:gap tick
      | Some _ | None -> counter.finished_at <- Some (Sim.now sim)
    end
  in
  Sim.schedule sim ~at:start tick;
  counter

let cbr sim ~target ~flow ~len ~rate ~start ~stop =
  if rate <= 0.0 then invalid_arg "Source.cbr: rate must be positive";
  let gap = float_of_int len /. rate in
  clocked sim ~target ~flow ~len ~start ~stop (fun () -> Some gap)

let poisson sim ~target ~flow ~len ~rate ~rng ~start ~stop =
  if rate <= 0.0 then invalid_arg "Source.poisson: rate must be positive";
  let mean = float_of_int len /. rate in
  clocked sim ~target ~flow ~len ~start ~stop (fun () -> Some (Rng.exponential rng ~mean))

let on_off sim ~target ~flow ~len ~peak_rate ~on ~off ~start ~stop =
  if peak_rate <= 0.0 || on <= 0.0 || off < 0.0 then invalid_arg "Source.on_off: bad parameters";
  let gap = float_of_int len /. peak_rate in
  let in_burst_left = ref (Float.max 1.0 (Float.round (on /. gap))) in
  let next_gap () =
    in_burst_left := !in_burst_left -. 1.0;
    if !in_burst_left > 0.0 then Some gap
    else begin
      in_burst_left := Float.max 1.0 (Float.round (on /. gap));
      Some (gap +. off)
    end
  in
  clocked sim ~target ~flow ~len ~start ~stop next_gap

let burst sim ~target ~flow ~len ~burst_size ~interval ~start ~stop =
  if burst_size <= 0 || interval <= 0.0 then invalid_arg "Source.burst: bad parameters";
  check_common ~len ~start ~stop;
  let counter = { sent = 0; finished_at = None } in
  let rec tick () =
    if Sim.now sim <= stop then begin
      for _ = 1 to burst_size do
        emit sim target ~flow ~len counter
      done;
      if Sim.now sim +. interval <= stop then Sim.schedule_after sim ~delay:interval tick
      else counter.finished_at <- Some (Sim.now sim)
    end
  in
  Sim.schedule sim ~at:start tick;
  counter

let leaky_bucket sim ~target ~flow ~len ~sigma ~rho ~flush_every ~start ~stop =
  if sigma < float_of_int len || rho <= 0.0 || flush_every <= 0.0 then
    invalid_arg "Source.leaky_bucket: bad parameters";
  check_common ~len ~start ~stop;
  let counter = { sent = 0; finished_at = None } in
  let tokens = ref sigma (* bucket starts full *) in
  let last = ref start in
  let rec tick () =
    let now = Sim.now sim in
    tokens := Float.min sigma (!tokens +. (rho *. (now -. !last)));
    last := now;
    let flen = float_of_int len in
    while !tokens >= flen do
      emit sim target ~flow ~len counter;
      tokens := !tokens -. flen
    done;
    if now +. flush_every <= stop then Sim.schedule_after sim ~delay:flush_every tick
    else counter.finished_at <- Some now
  in
  Sim.schedule sim ~at:start tick;
  counter

let greedy sim ~server ?(priority = false) ~flow ~len ~total ~window ~start () =
  if total <= 0 || window <= 0 then invalid_arg "Source.greedy: bad parameters";
  if len <= 0 then invalid_arg "Source.greedy: len must be positive";
  let counter = { sent = 0; finished_at = None } in
  let inject = if priority then Server.inject_priority else Server.inject in
  let send_next () =
    counter.sent <- counter.sent + 1;
    let pkt = Packet.make ~flow ~seq:counter.sent ~len ~born:(Sim.now sim) () in
    inject server pkt
  in
  Server.on_depart server (fun p ~start:_ ~departed ->
      if p.Packet.flow = flow then begin
        if counter.sent < total then send_next ()
        else if p.Packet.seq = total then counter.finished_at <- Some departed
      end);
  Sim.schedule sim ~at:start (fun () ->
      let initial = Stdlib.min window total in
      for _ = 1 to initial do
        send_next ()
      done);
  counter
