(** Tandem (chain) topologies for the end-to-end experiments.

    Wires [server_i]'s departures into [server_{i+1}]'s input after a
    fixed propagation delay — the network of K servers of §2.4 and
    Corollary 1. Inject traffic at [first]; observe deliveries with
    {!on_exit}. *)

open Sfq_base

type t

val chain :
  Sim.t -> servers:Server.t list -> prop_delays:float list ->
  ?forward:(Packet.t -> bool) -> unit -> t
(** [prop_delays] must have one entry per hop, i.e.
    [List.length servers - 1] entries. [forward] selects which
    departures continue to the next hop (default: all); hop-local cross
    traffic should return [false] so it exits at its own hop.
    @raise Invalid_argument on a length mismatch or empty chain. *)

val first : t -> Server.t
val last : t -> Server.t
val inject : t -> Packet.t -> unit

val on_exit : t -> (Packet.t -> departed:float -> unit) -> unit
(** Fires when a packet finishes service at the last server. *)
