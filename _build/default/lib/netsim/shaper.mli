(** Leaky-bucket traffic shaper.

    Delays packets so the output conforms to a (σ, ρ) envelope: at most
    [σ + ρ·(t2−t1)] bits leave in any interval. §2.3 of the paper uses
    exactly this device — "such a characterization may be enforced by
    shaping the higher priority flows through a leaky bucket" — to turn
    a priority-sharing link into an FC server of parameters
    [(C − ρ, σ)] for the lower-priority traffic; the [residual]
    experiment validates that model.

    The shaper is a token bucket drained by departures: a packet leaves
    as soon as [len] tokens are available, in FIFO order. Tokens accrue
    at ρ bits/s up to a cap of σ. *)

open Sfq_base

type t

val create : Sim.t -> sigma:float -> rho:float -> target:(Packet.t -> unit) -> t
(** @raise Invalid_argument unless [sigma > 0] and [rho > 0]. Packets
    longer than [sigma] bits would never conform and raise at
    {!inject} time. *)

val inject : t -> Packet.t -> unit
val backlog : t -> int
(** Packets currently held back. *)

val released : t -> int
