open Sfq_base

type t = {
  sim : Sim.t;
  sigma : float;
  rho : float;
  target : Packet.t -> unit;
  on_drop : Packet.t -> unit;
  mutable tokens : float;
  mutable refilled_at : float;
  mutable passed : int;
  mutable dropped : int;
}

let create sim ~sigma ~rho ~target ?(on_drop = fun _ -> ()) () =
  if sigma <= 0.0 || rho <= 0.0 then
    invalid_arg "Policer.create: sigma and rho must be positive";
  {
    sim;
    sigma;
    rho;
    target;
    on_drop;
    tokens = sigma;
    refilled_at = 0.0;
    passed = 0;
    dropped = 0;
  }

let inject t p =
  let now = Sim.now t.sim in
  t.tokens <- Float.min t.sigma (t.tokens +. (t.rho *. (now -. t.refilled_at)));
  t.refilled_at <- now;
  let need = float_of_int p.Packet.len in
  if t.tokens >= need -. 1e-9 then begin
    t.tokens <- t.tokens -. need;
    t.passed <- t.passed + 1;
    t.target p
  end
  else begin
    t.dropped <- t.dropped + 1;
    t.on_drop p
  end

let passed t = t.passed
let dropped t = t.dropped
