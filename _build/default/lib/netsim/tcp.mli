(** Simplified TCP Reno over the simulator.

    Substitutes the REAL simulator's TCP Reno sources used by the
    paper's Fig. 1 (DESIGN.md §2). The control loop is faithful where
    it matters for that experiment — throughput adapts to whatever
    bandwidth the scheduler grants:

    - slow start / congestion avoidance over a packet-granularity
      congestion window;
    - three duplicate acks trigger fast retransmit with
      [ssthresh = cwnd/2];
    - a retransmission timeout collapses to [cwnd = 1] and go-back-N
      resend;
    - the receiver buffers out-of-order segments and acks cumulatively
      (so a fast retransmit repairs a single hole in one round trip).

    Simplifications: acks travel on an uncongested reverse path with
    fixed delay; sequence numbers count packets; the source always has
    data. Packet losses arise from the bottleneck server's per-flow
    drop-tail buffer. *)

open Sfq_base

type t

val reno :
  Sim.t ->
  server:Server.t ->
  flow:Packet.flow ->
  pkt_len:int ->
  start:float ->
  ?fwd_delay:float ->
  ?ack_delay:float ->
  ?rto:float ->
  ?init_ssthresh:float ->
  unit ->
  t
(** Single-bottleneck form: inject at [server], receive on its
    departures after [fwd_delay]. Defaults: [fwd_delay] and
    [ack_delay] 1 ms, [rto] 200 ms, [init_ssthresh] 64 packets. The
    connection starts sending at [start] and never finishes (stop the
    simulation instead). *)

val reno_over :
  Sim.t ->
  inject:(Packet.t -> unit) ->
  subscribe:(((Packet.t -> unit) -> unit)) ->
  flow:Packet.flow ->
  pkt_len:int ->
  start:float ->
  ?ack_delay:float ->
  ?rto:float ->
  ?init_ssthresh:float ->
  unit ->
  t
(** Topology-agnostic form: [inject] sends a data packet into the
    network; [subscribe] registers the receiver's packet handler at
    the network egress (e.g. wrap {!Net.on_delivered}). Used to run
    TCP across multi-hop {!Net} topologies. *)

val delivered : t -> int
(** Packets received in order at the destination so far. *)

val delivery_series : t -> (float * int) list
(** [(time, cumulative in-order packets)] samples, one per in-order
    arrival — the paper's Fig. 1(b) y-axis. *)

val delivered_before : t -> float -> int
(** In-order packets delivered strictly before the given time. *)

val sent : t -> int
val retransmits : t -> int
val timeouts : t -> int
val cwnd : t -> float
