(** Synthetic MPEG VBR video source.

    Substitutes the paper's digitized "Frasier" trace (1.21 Mb/s
    average, 50-byte packets) with a GOP-structured model: a 12-frame
    IBBPBBPBBPBB group of pictures at [fps] frames/s, frame sizes drawn
    lognormally around per-type means in the classical I:P:B ≈ 5:2.5:1
    ratio, scaled so the long-run average matches [avg_rate]. Each
    frame is packetized into [pkt_len]-bit cells spread evenly over the
    frame interval.

    Why the substitution preserves the experiment (DESIGN.md §2): the
    Fig. 1 experiment only needs a high-priority flow with unpredictable
    multiple-time-scale rate variation so that the residual capacity
    seen by the TCP flows fluctuates; GOP structure (frame scale) plus
    lognormal size noise (scene scale) reproduces exactly that. *)

open Sfq_base

type t = { mutable frames : int; mutable packets : int; mutable bits : float }

val vbr :
  Sim.t ->
  target:(Packet.t -> unit) ->
  flow:Packet.flow ->
  avg_rate:float ->
  ?fps:float ->
  ?pkt_len:int ->
  ?sigma:float ->
  rng:Sfq_util.Rng.t ->
  start:float ->
  stop:float ->
  unit ->
  t
(** Defaults: [fps] 30, [pkt_len] 400 bits (50 bytes, the paper's cell
    size), lognormal shape [sigma] 0.3. *)
