type t = { sim : Sim.t; servers : Server.t array }

let chain sim ~servers ~prop_delays ?(forward = fun _ -> true) () =
  (match servers with [] -> invalid_arg "Tandem.chain: empty chain" | _ :: _ -> ());
  if List.length prop_delays <> List.length servers - 1 then
    invalid_arg "Tandem.chain: need one propagation delay per hop";
  List.iter
    (fun d -> if d < 0.0 then invalid_arg "Tandem.chain: negative propagation delay")
    prop_delays;
  let arr = Array.of_list servers in
  List.iteri
    (fun i delay ->
      let next = arr.(i + 1) in
      Server.on_depart arr.(i) (fun p ~start:_ ~departed:_ ->
          if forward p then Sim.schedule_after sim ~delay (fun () -> Server.inject next p)))
    prop_delays;
  { sim; servers = arr }

let first t = t.servers.(0)
let last t = t.servers.(Array.length t.servers - 1)
let inject t p = Server.inject t.servers.(0) p

let on_exit t h =
  Server.on_depart (last t) (fun p ~start:_ ~departed -> h p ~departed)
