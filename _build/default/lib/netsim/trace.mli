(** Per-server packet life-cycle recording.

    Attach to a {!Server} to get one record per served packet with its
    arrival (inject), service-start and departure times. Arrival and
    departure are matched per-flow FIFO — sound for every discipline in
    this library (all are per-flow FIFO), including under drops (dropped
    packets are never recorded as arrivals). *)

open Sfq_base

type record = {
  flow : Packet.flow;
  seq : int;
  len : int;  (** bits *)
  born : float;
  arrived : float;  (** inject time at this server *)
  start : float;  (** service start at this server *)
  departed : float;
}

type t

val attach : Server.t -> t
val records : t -> record Sfq_util.Vec.t
val to_list : t -> record list
val of_flow : t -> Packet.flow -> record list
val count : t -> int

val delays : t -> Packet.flow -> float array
(** Per-packet [departed − arrived] for one flow, in departure order. *)

val end_to_end_delays : t -> Packet.flow -> float array
(** Per-packet [departed − born]; meaningful at the last server of a
    tandem. *)

val max_delay : t -> Packet.flow -> float
(** Max queueing+service delay at this server; 0 if no packets. *)
