open Sfq_base

type t = {
  sim : Sim.t;
  sigma : float;
  rho : float;
  target : Packet.t -> unit;
  queue : Packet.t Queue.t;
  mutable tokens : float;
  mutable refilled_at : float;
  mutable release_scheduled : bool;
  mutable released : int;
}

let create sim ~sigma ~rho ~target =
  if sigma <= 0.0 || rho <= 0.0 then invalid_arg "Shaper.create: sigma and rho must be positive";
  {
    sim;
    sigma;
    rho;
    target;
    queue = Queue.create ();
    tokens = sigma (* bucket starts full *);
    refilled_at = 0.0;
    release_scheduled = false;
    released = 0;
  }

let refill t =
  let now = Sim.now t.sim in
  t.tokens <- Float.min t.sigma (t.tokens +. (t.rho *. (now -. t.refilled_at)));
  t.refilled_at <- now

let rec release t =
  refill t;
  match Queue.peek_opt t.queue with
  | None -> ()
  | Some p ->
    let need = float_of_int p.Packet.len in
    (* The microbit tolerance and the floor on the retry delay guard
       against a float livelock: with an exact comparison the residual
       token deficit can shrink below the clock's ULP, making the
       computed delay round to zero and the release event re-fire at
       the same instant forever. *)
    if t.tokens >= need -. 1e-6 then begin
      ignore (Queue.take t.queue);
      t.tokens <- t.tokens -. need;
      t.released <- t.released + 1;
      t.target p;
      release t
    end
    else if not t.release_scheduled then begin
      t.release_scheduled <- true;
      Sim.schedule_after t.sim
        ~delay:(Float.max ((need -. t.tokens) /. t.rho) 1e-9)
        (fun () ->
          t.release_scheduled <- false;
          release t)
    end

let inject t p =
  if float_of_int p.Packet.len > t.sigma then
    invalid_arg "Shaper.inject: packet longer than sigma can never conform";
  Queue.push p t.queue;
  release t

let backlog t = Queue.length t.queue
let released t = t.released
