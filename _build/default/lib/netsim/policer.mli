(** Leaky-bucket policer.

    The enforcement-side counterpart of {!Shaper}: instead of delaying
    non-conforming packets it {e drops} them, which is how a network
    ingress holds a source to the (σ, ρ) characterization its
    admission-control contract assumed (§2.3's leaky-bucket
    characterizations are only meaningful if somebody enforces them).
    Conforming packets pass through unchanged and undelayed. *)

open Sfq_base

type t

val create :
  Sim.t -> sigma:float -> rho:float -> target:(Packet.t -> unit) ->
  ?on_drop:(Packet.t -> unit) -> unit -> t
(** @raise Invalid_argument unless [sigma > 0] and [rho > 0]. *)

val inject : t -> Packet.t -> unit
val passed : t -> int
val dropped : t -> int
