open Sfq_util
open Sfq_base

type t = { mutable frames : int; mutable packets : int; mutable bits : float }

type frame_kind = I | P | B

let gop = [| I; B; B; P; B; B; P; B; B; P; B; B |]
let relative_mean = function I -> 5.0 | P -> 2.5 | B -> 1.0

(* Mean relative frame size over one GOP: (5 + 3*2.5 + 8*1) / 12. *)
let gop_mean = Array.fold_left (fun acc k -> acc +. relative_mean k) 0.0 gop /. 12.0

let vbr sim ~target ~flow ~avg_rate ?(fps = 30.0) ?(pkt_len = 400) ?(sigma = 0.3) ~rng ~start
    ~stop () =
  if avg_rate <= 0.0 || fps <= 0.0 || pkt_len <= 0 || sigma < 0.0 then
    invalid_arg "Mpeg.vbr: bad parameters";
  let stats = { frames = 0; packets = 0; bits = 0.0 } in
  let frame_interval = 1.0 /. fps in
  let mean_frame_bits = avg_rate /. fps in
  (* E[lognormal(mu, sigma)] = exp(mu + sigma^2/2); correct the mean so
     the long-run rate hits avg_rate despite the noise. *)
  let correction = exp (-.(sigma *. sigma) /. 2.0) in
  let seq = ref 0 in
  let frame_index = ref 0 in
  let emit_cell () =
    incr seq;
    target (Packet.make ~flow ~seq:!seq ~len:pkt_len ~born:(Sim.now sim) ())
  in
  let rec next_frame () =
    if Sim.now sim +. frame_interval <= stop then begin
      let kind = gop.(!frame_index mod Array.length gop) in
      incr frame_index;
      let rel = relative_mean kind /. gop_mean in
      let noise = if sigma = 0.0 then 1.0 else Rng.lognormal rng ~mu:0.0 ~sigma *. correction in
      let frame_bits = mean_frame_bits *. rel *. noise in
      let cells = Stdlib.max 1 (int_of_float (Float.round (frame_bits /. float_of_int pkt_len))) in
      stats.frames <- stats.frames + 1;
      stats.packets <- stats.packets + cells;
      stats.bits <- stats.bits +. float_of_int (cells * pkt_len);
      (* Spread the frame's cells evenly over the frame interval. *)
      let gap = frame_interval /. float_of_int cells in
      for k = 0 to cells - 1 do
        Sim.schedule_after sim ~delay:(float_of_int k *. gap) emit_cell
      done;
      Sim.schedule_after sim ~delay:frame_interval next_frame
    end
  in
  Sim.schedule sim ~at:start next_frame;
  stats
