open Sfq_util
open Sfq_base

type t = {
  sim : Sim.t;
  inject : Packet.t -> unit;
  flow : Packet.flow;
  pkt_len : int;
  ack_delay : float;
  rto : float;
  (* sender *)
  mutable send_max : int;  (* edge of the current send window *)
  mutable high_water : int;  (* highest sequence number ever sent *)
  mutable highest_acked : int;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable dupacks : int;
  mutable timer_gen : int;
  mutable sent : int;
  mutable retransmits : int;
  mutable timeouts : int;
  (* receiver *)
  mutable next_expected : int;
  out_of_order : (int, unit) Hashtbl.t;
  deliveries : (float * int) Vec.t;
}

let send_packet t seq ~retransmit =
  t.sent <- t.sent + 1;
  if retransmit then t.retransmits <- t.retransmits + 1;
  let pkt = Packet.make ~flow:t.flow ~seq ~len:t.pkt_len ~born:(Sim.now t.sim) () in
  t.inject pkt

let rec arm_timer t =
  t.timer_gen <- t.timer_gen + 1;
  let gen = t.timer_gen in
  Sim.schedule_after t.sim ~delay:t.rto (fun () ->
      if gen = t.timer_gen && t.highest_acked < t.send_max then on_timeout t)

and on_timeout t =
  t.timeouts <- t.timeouts + 1;
  t.ssthresh <- Float.max (t.cwnd /. 2.0) 2.0;
  t.cwnd <- 1.0;
  t.dupacks <- 0;
  (* Go-back-N: resend from the first unacknowledged segment. *)
  t.send_max <- t.highest_acked;
  try_send t;
  arm_timer t

and try_send t =
  let window_edge = t.highest_acked + int_of_float t.cwnd in
  while t.send_max < window_edge do
    t.send_max <- t.send_max + 1;
    (* A send below the previous send_max only happens after a timeout
       rewound it, i.e. it is a go-back-N retransmission. *)
    send_packet t t.send_max ~retransmit:(t.send_max <= t.high_water)
  done;
  if t.send_max > t.high_water then t.high_water <- t.send_max

let on_ack t ackno =
  if ackno > t.highest_acked then begin
    t.highest_acked <- ackno;
    t.dupacks <- 0;
    if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. 1.0
    else t.cwnd <- t.cwnd +. (1.0 /. t.cwnd);
    arm_timer t;
    try_send t
  end
  else begin
    t.dupacks <- t.dupacks + 1;
    if t.dupacks = 3 then begin
      (* Fast retransmit; simplified recovery (no window inflation). *)
      t.ssthresh <- Float.max (t.cwnd /. 2.0) 2.0;
      t.cwnd <- t.ssthresh;
      t.dupacks <- 0;
      send_packet t (t.highest_acked + 1) ~retransmit:true;
      arm_timer t
    end
  end

let receiver_receive t seq =
  if seq >= t.next_expected then begin
    Hashtbl.replace t.out_of_order seq ();
    (* Advance over any contiguous buffered run (TCP receivers buffer
       out-of-order segments; the cumulative ack jumps once the hole is
       filled). *)
    while Hashtbl.mem t.out_of_order t.next_expected do
      Hashtbl.remove t.out_of_order t.next_expected;
      t.next_expected <- t.next_expected + 1
    done;
    if seq < t.next_expected then Vec.push t.deliveries (Sim.now t.sim, t.next_expected - 1)
  end;
  (* Cumulative ack regardless (duplicate ack on out-of-order data). *)
  let ackno = t.next_expected - 1 in
  Sim.schedule_after t.sim ~delay:t.ack_delay (fun () -> on_ack t ackno)

let reno_over sim ~inject ~subscribe ~flow ~pkt_len ~start ?(ack_delay = 0.001)
    ?(rto = 0.2) ?(init_ssthresh = 64.0) () =
  if pkt_len <= 0 then invalid_arg "Tcp.reno: pkt_len must be positive";
  if rto <= 0.0 || ack_delay < 0.0 then invalid_arg "Tcp.reno: bad delays";
  let t =
    {
      sim;
      inject;
      flow;
      pkt_len;
      ack_delay;
      rto;
      send_max = 0;
      high_water = 0;
      highest_acked = 0;
      cwnd = 1.0;
      ssthresh = init_ssthresh;
      dupacks = 0;
      timer_gen = 0;
      sent = 0;
      retransmits = 0;
      timeouts = 0;
      next_expected = 1;
      out_of_order = Hashtbl.create 64;
      deliveries = Vec.create ();
    }
  in
  subscribe (fun p -> if p.Packet.flow = flow then receiver_receive t p.Packet.seq);
  Sim.schedule sim ~at:start (fun () ->
      try_send t;
      arm_timer t);
  t

let reno sim ~server ~flow ~pkt_len ~start ?(fwd_delay = 0.001) ?ack_delay ?rto
    ?init_ssthresh () =
  if fwd_delay < 0.0 then invalid_arg "Tcp.reno: bad delays";
  reno_over sim
    ~inject:(fun p -> Server.inject server p)
    ~subscribe:(fun handler ->
      Server.on_depart server (fun p ~start:_ ~departed:_ ->
          Sim.schedule_after sim ~delay:fwd_delay (fun () -> handler p)))
    ~flow ~pkt_len ~start ?ack_delay ?rto ?init_ssthresh ()

let delivered t = t.next_expected - 1
let delivery_series t = Vec.to_list t.deliveries

let delivered_before t time =
  Vec.fold t.deliveries ~init:0 ~f:(fun acc (at, n) -> if at < time then Stdlib.max acc n else acc)

let sent t = t.sent
let retransmits t = t.retransmits
let timeouts t = t.timeouts
let cwnd t = t.cwnd
