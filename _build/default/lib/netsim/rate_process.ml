open Sfq_util

type seg = { t0 : float; rate : float; w0 : float }

type t = {
  segs : seg Vec.t;
  gen : unit -> float * float;  (* next (duration, rate); duration may be infinite *)
  mutable horizon : float;  (* end time of the last generated segment *)
  nominal_rate : float;
  nominal_delta : float option;
}

let make ~nominal_rate ?nominal_delta gen =
  { segs = Vec.create (); gen; horizon = 0.0; nominal_rate; nominal_delta }

let extend_once t =
  let duration, rate = t.gen () in
  if duration <= 0.0 || rate < 0.0 then invalid_arg "Rate_process: bad generated segment";
  let w0, t0 =
    match Vec.last t.segs with
    | None -> (0.0, 0.0)
    | Some s -> (s.w0 +. (s.rate *. (t.horizon -. s.t0)), t.horizon)
  in
  Vec.push t.segs { t0; rate; w0 };
  t.horizon <- t0 +. duration

let ensure t time = while t.horizon <= time do extend_once t done

let seg_index t time =
  ensure t time;
  match Vec.binary_search_last_le t.segs ~key:(fun s -> s.t0) time with
  | Some i -> i
  | None -> invalid_arg "Rate_process: time before 0"

let rate_at t time =
  if time < 0.0 then invalid_arg "Rate_process.rate_at: negative time";
  (Vec.get t.segs (seg_index t time)).rate

let cum t time =
  let s = Vec.get t.segs (seg_index t time) in
  s.w0 +. (s.rate *. (time -. s.t0))

let work t ~t1 ~t2 =
  if t1 > t2 then invalid_arg "Rate_process.work: t1 > t2";
  if t1 < 0.0 then invalid_arg "Rate_process.work: negative t1";
  cum t t2 -. cum t t1

let time_to_serve t ~from ~amount =
  if amount <= 0.0 then invalid_arg "Rate_process.time_to_serve: amount must be positive";
  if from < 0.0 then invalid_arg "Rate_process.time_to_serve: negative from";
  let rec go i remaining tcur =
    let s = Vec.get t.segs i in
    let seg_end = if i + 1 < Vec.length t.segs then (Vec.get t.segs (i + 1)).t0 else t.horizon in
    if s.rate > 0.0 && remaining <= s.rate *. (seg_end -. tcur) then
      tcur +. (remaining /. s.rate)
    else begin
      let served = s.rate *. (seg_end -. tcur) in
      if i + 1 >= Vec.length t.segs then extend_once t;
      go (i + 1) (remaining -. served) seg_end
    end
  in
  go (seg_index t from) amount from

let nominal_rate t = t.nominal_rate
let nominal_delta t = t.nominal_delta

let constant rate =
  if rate <= 0.0 then invalid_arg "Rate_process.constant: rate must be positive";
  make ~nominal_rate:rate ~nominal_delta:0.0 (fun () -> (infinity, rate))

let square ~c ~swing ~period =
  if swing < 0.0 || swing >= c then invalid_arg "Rate_process.square: need 0 <= swing < c";
  if period <= 0.0 then invalid_arg "Rate_process.square: period must be positive";
  let high = ref true in
  let gen () =
    let rate = if !high then c +. swing else c -. swing in
    high := not !high;
    (period /. 2.0, rate)
  in
  make ~nominal_rate:c ~nominal_delta:(swing *. period /. 2.0) gen

let fc_random ~c ~delta ~seg ~spread ~rng =
  if spread <= 0.0 || spread > c then invalid_arg "Rate_process.fc_random: need 0 < spread <= c";
  if delta <= 0.0 then invalid_arg "Rate_process.fc_random: delta must be positive";
  if seg <= 0.0 then invalid_arg "Rate_process.fc_random: seg must be positive";
  let x = Running_min.create () in
  Running_min.observe x 0.0;
  let last_x = ref 0.0 in
  let gen () =
    (* X(t) = c·t − W(t) is piecewise linear, so bounding its drawdown
       at segment boundaries bounds it everywhere. Keep 10% margin. *)
    let headroom = Running_min.headroom x ~budget:delta in
    let min_rate = Float.max (c -. spread) (c -. (0.9 *. headroom /. seg)) in
    let max_rate = c +. spread in
    let rate = if min_rate >= max_rate then max_rate else Rng.uniform rng ~lo:min_rate ~hi:max_rate in
    last_x := !last_x +. ((c -. rate) *. seg);
    Running_min.observe x !last_x;
    (seg, rate)
  in
  make ~nominal_rate:c ~nominal_delta:delta gen

let ebf ~c ~scale ~seg ~rng =
  if scale <= 0.0 || seg <= 0.0 then invalid_arg "Rate_process.ebf: bad parameters";
  let gen () =
    let rate = Float.max (0.01 *. c) (c +. Rng.laplace rng ~mu:0.0 ~b:scale) in
    (seg, rate)
  in
  make ~nominal_rate:c gen

let on_off ~on_rate ~on ~off ?(start_on = true) () =
  if on_rate <= 0.0 || on <= 0.0 || off <= 0.0 then
    invalid_arg "Rate_process.on_off: bad parameters";
  let is_on = ref start_on in
  let gen () =
    let r = if !is_on then (on, on_rate) else (off, 0.0) in
    is_on := not !is_on;
    r
  in
  make ~nominal_rate:(on_rate *. on /. (on +. off)) gen

let of_segments list ~tail =
  if tail <= 0.0 then invalid_arg "Rate_process.of_segments: tail must be positive";
  List.iter
    (fun (d, r) ->
      if d <= 0.0 || r < 0.0 then invalid_arg "Rate_process.of_segments: bad segment")
    list;
  let remaining = ref list in
  let gen () =
    match !remaining with
    | (d, r) :: rest ->
      remaining := rest;
      (d, r)
    | [] -> (infinity, tail)
  in
  let total_time = List.fold_left (fun acc (d, _) -> acc +. d) 0.0 list in
  let total_work = List.fold_left (fun acc (d, r) -> acc +. (d *. r)) 0.0 list in
  let avg = if total_time > 0.0 then total_work /. total_time else tail in
  make ~nominal_rate:avg gen
