lib/cpu/cpu_sched.ml: Float Hashtbl List Packet Server Sfq_base Sfq_core Sfq_netsim Sim Stdlib Weights
