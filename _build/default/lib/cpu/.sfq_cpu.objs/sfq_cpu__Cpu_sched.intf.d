lib/cpu/cpu_sched.mli: Packet Sfq_base Sfq_netsim
