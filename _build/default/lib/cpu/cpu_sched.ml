open Sfq_base
open Sfq_netsim

type thread = {
  name : string;
  flow : Packet.flow;
  mutable pending : float;  (* work-units owed *)
  mutable queued : bool;  (* a quantum of this thread is in the scheduler *)
  mutable seq : int;
  mutable cpu_time : float;
  mutable completions : int;
  owner : t;
}

and t = {
  sim : Sim.t;
  server : Server.t;
  quantum : int;
  threads : (Packet.flow, thread) Hashtbl.t;
  weight_table : (Packet.flow, float) Hashtbl.t;
  mutable next_flow : int;
  mutable slice_handlers : (thread -> start:float -> finished:float -> work:int -> unit) list;
}

(* At most one quantum per thread is in the scheduler: the next one is
   requested only when the previous completes, so SFQ's per-flow tag
   chain paces the thread at its weight and a waking thread re-enters
   at the current virtual time. *)
let enqueue_slice t thread =
  if not thread.queued then begin
    thread.queued <- true;
    thread.seq <- thread.seq + 1;
    let len =
      Stdlib.min t.quantum (Stdlib.max 1 (int_of_float (Float.ceil thread.pending)))
    in
    Server.inject t.server
      (Packet.make ~flow:thread.flow ~seq:thread.seq ~len ~born:(Sim.now t.sim) ())
  end

let create sim ~speed ?(quantum = 1000) () =
  if quantum <= 0 then invalid_arg "Cpu_sched.create: quantum must be positive";
  let weight_table = Hashtbl.create 16 in
  let weights =
    Weights.of_fun (fun flow ->
        match Hashtbl.find_opt weight_table flow with Some w -> w | None -> 1.0)
  in
  let sched = Sfq_core.Sfq.sched (Sfq_core.Sfq.create weights) in
  let server = Server.create sim ~name:"cpu" ~rate:speed ~sched () in
  let t =
    {
      sim;
      server;
      quantum;
      threads = Hashtbl.create 16;
      weight_table;
      next_flow = 0;
      slice_handlers = [];
    }
  in
  Server.on_depart server (fun p ~start ~departed ->
      match Hashtbl.find_opt t.threads p.Packet.flow with
      | None -> ()
      | Some thread ->
        thread.queued <- false;
        thread.cpu_time <- thread.cpu_time +. float_of_int p.Packet.len;
        thread.pending <- Float.max 0.0 (thread.pending -. float_of_int p.Packet.len);
        List.iter
          (fun h -> h thread ~start ~finished:departed ~work:p.Packet.len)
          (List.rev t.slice_handlers);
        if thread.pending > 0.0 then enqueue_slice t thread
        else thread.completions <- thread.completions + 1);
  t

let spawn t ~name ~weight =
  if weight <= 0.0 then invalid_arg "Cpu_sched.spawn: weight must be positive";
  t.next_flow <- t.next_flow + 1;
  let flow = t.next_flow in
  Hashtbl.replace t.weight_table flow weight;
  let thread =
    {
      name;
      flow;
      pending = 0.0;
      queued = false;
      seq = 0;
      cpu_time = 0.0;
      completions = 0;
      owner = t;
    }
  in
  Hashtbl.replace t.threads flow thread;
  thread

let add_work thread w =
  if w <= 0.0 then invalid_arg "Cpu_sched.add_work: work must be positive";
  thread.pending <- thread.pending +. w;
  enqueue_slice thread.owner thread

let on_slice t h = t.slice_handlers <- h :: t.slice_handlers
let cpu_time thread = thread.cpu_time
let pending_work thread = thread.pending
let completions thread = thread.completions
let thread_name thread = thread.name
let thread_flow thread = thread.flow
