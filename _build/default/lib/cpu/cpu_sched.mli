(** Proportional-share CPU scheduling with SFQ — the paper's own
    extension direction.

    §4 closes by demonstrating "the feasibility of employing SFQ for
    scheduling [a] network interface in operating systems where the
    processing capacity available ... varies over time", and the
    authors' follow-up (Goyal, Guo & Vin, OSDI '96) applied exactly
    this algorithm to CPU scheduling. This module packages that use:
    threads are flows, quanta are packets, and the CPU is a server
    whose effective speed is any {!Sfq_netsim.Rate_process} (interrupt
    load, frequency scaling, hypervisor stealing — the variable-rate
    server again, which is why SFQ and not WFQ is the right arbiter).

    Work is measured in {b microseconds at nominal speed}: a CPU whose
    rate process sits at [0.5e6] work-units/s runs at half nominal.
    Each thread keeps at most one quantum in the scheduler at a time,
    so a thread that wakes after sleeping re-enters at the current
    virtual time (SFQ's [max(v, F_prev)]) — it neither hoards credit
    nor gets punished, the property round-robin and Virtual-Clock-style
    schedulers miss. *)

open Sfq_base

type t
type thread

val create :
  Sfq_netsim.Sim.t -> speed:Sfq_netsim.Rate_process.t -> ?quantum:int -> unit -> t
(** [quantum] is the maximum contiguous slice in work-units (default
    1000 = 1 ms at nominal speed). *)

val spawn : t -> name:string -> weight:float -> thread
(** Register a thread with a CPU share weight.
    @raise Invalid_argument if [weight <= 0]. *)

val add_work : thread -> float -> unit
(** Give the thread [w] work-units to execute; it becomes (or stays)
    runnable. Callable from simulator events (e.g. to model periodic
    wakeups). *)

val on_slice : t -> (thread -> start:float -> finished:float -> work:int -> unit) -> unit
(** Observe every completed slice. *)

val cpu_time : thread -> float
(** Work-units completed so far. *)

val pending_work : thread -> float
(** Work-units still owed (runnable if positive). *)

val completions : thread -> int
(** Number of times the thread ran out of work (went to sleep). *)

val thread_name : thread -> string
val thread_flow : thread -> Packet.flow
