let per_flow_terms ~lmax_f ~r_f ~lmax_m ~r_m = (lmax_f /. r_f) +. (lmax_m /. r_m)

let h_lower_bound ~lmax_f ~r_f ~lmax_m ~r_m = 0.5 *. per_flow_terms ~lmax_f ~r_f ~lmax_m ~r_m
let h_sfq ~lmax_f ~r_f ~lmax_m ~r_m = per_flow_terms ~lmax_f ~r_f ~lmax_m ~r_m
let h_scfq = h_sfq
let h_wfq_lower = h_sfq
let h_drr ~lmax_f ~r_f ~lmax_m ~r_m = 1.0 +. per_flow_terms ~lmax_f ~r_f ~lmax_m ~r_m

let h_fair_airport ~lmax_f ~r_f ~lmax_m ~r_m ~lmax ~capacity =
  (3.0 *. per_flow_terms ~lmax_f ~r_f ~lmax_m ~r_m) +. (2.0 *. lmax /. capacity)

let sfq_departure ~eat ~sum_other_lmax ~len ~capacity ~delta =
  eat +. (sum_other_lmax /. capacity) +. (len /. capacity) +. (delta /. capacity)

let scfq_departure ~eat ~sum_other_lmax ~len ~rate ~capacity =
  eat +. (sum_other_lmax /. capacity) +. (len /. rate)

let wfq_departure ~eat ~len ~rate ~lmax ~capacity = eat +. (len /. rate) +. (lmax /. capacity)

let edd_departure ~deadline ~lmax ~capacity ~delta =
  deadline +. (lmax /. capacity) +. (delta /. capacity)

let scfq_sfq_gap ~len ~rate ~capacity = (len /. rate) -. (len /. capacity)

let wfq_sfq_delta ~len ~rate ~lmax ~sum_other_lmax ~capacity =
  (len /. rate) +. (lmax /. capacity) -. (sum_other_lmax /. capacity) -. (len /. capacity)

let wfq_sfq_delta_uniform ~len ~rate ~nflows ~capacity =
  (len /. rate) -. (float_of_int (nflows - 1) *. len /. capacity)

let sfq_throughput_lower ~rate ~t1 ~t2 ~sum_lmax ~lmax_f ~capacity ~delta =
  (rate *. (t2 -. t1))
  -. (rate *. sum_lmax /. capacity)
  -. (rate *. delta /. capacity)
  -. lmax_f

let fc_virtual_server ~rate ~sum_lmax ~lmax_f ~capacity ~delta =
  (rate, (rate *. sum_lmax /. capacity) +. (rate *. delta /. capacity) +. lmax_f)

let flat_departure_rhs ~nflows ~len ~capacity ~delta =
  (float_of_int (nflows - 1) *. len /. capacity) +. (delta /. capacity) +. (len /. capacity)

let shifted_departure_rhs ~partition_size ~len ~partition_rate ~nparts ~capacity ~delta =
  (float_of_int (partition_size + 1) *. len /. partition_rate)
  +. ((delta +. (float_of_int nparts *. len)) /. capacity)

let delay_shift_improves ~partition_size ~nflows ~nparts ~partition_rate ~capacity =
  float_of_int (partition_size + 1) /. float_of_int (nflows - nparts)
  < partition_rate /. capacity

let sfq_beta ~sum_other_lmax ~len ~capacity ~delta =
  (sum_other_lmax /. capacity) +. (len /. capacity) +. (delta /. capacity)

let e2e_departure ~eat_first ~betas ~taus =
  eat_first +. List.fold_left ( +. ) 0.0 betas +. List.fold_left ( +. ) 0.0 taus

let e2e_delay_leaky_bucket ~sigma ~rate ~betas ~taus =
  (sigma /. rate) +. List.fold_left ( +. ) 0.0 betas +. List.fold_left ( +. ) 0.0 taus

let ebf_tail ~b ~alpha ~gamma = b *. exp (-.alpha *. gamma)
