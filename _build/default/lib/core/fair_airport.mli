(** Fair Airport scheduling (paper Appendix B).

    Goal: WFQ's delay guarantee {e and} fairness over variable-rate
    servers, at Virtual-Clock cost. Every arriving packet joins a
    per-flow rate regulator and an Auxiliary Service Queue (ASQ, an
    SFQ); when the regulator releases it (at its expected arrival time
    [EAT^RC]) it joins the Guaranteed Service Queue (GSQ, a Virtual
    Clock) unless the ASQ already served it. The server is
    work-conserving and gives the GSQ priority.

    Rules implemented (numbering as in the paper):
    2. a packet leaves the regulator at [EAT^RC], computed over the
       subsequence of the flow's packets that went through the GSQ —
       packets the ASQ served out of idle bandwidth do {e not} advance
       the flow's regulator clock;
    4. a packet is removed from the regulator when the ASQ serves it;
    5. a GSQ-eligible packet leaves the ASQ only once the GSQ has
       served it, and on removal the next ASQ packet of the flow
       inherits its start tag.

    Guarantees reproduced by the test-suite and the [fair-airport]
    experiment: departure by [EAT + l/r + l^max/C] (Theorem 9, the WFQ
    bound) and fairness within
    [3(l_f^max/r_f + l_m^max/r_m) + 2 l^max/C] (Theorem 8), the latter
    on servers with fluctuating capacity ≥ C.

    Weights are interpreted as reserved rates in bits/s. *)

open Sfq_base

type t

val create : Weights.t -> t
val enqueue : t -> now:float -> Packet.t -> unit
val dequeue : t -> now:float -> Packet.t option

val peek : t -> Packet.t option
(** Best-effort: exact unless a regulator release is pending at the
    current instant (the release chain is not simulated). The
    experiments never use Fair Airport as a hierarchy leaf, where
    exactness would matter. *)

val size : t -> int
val backlog : t -> Packet.flow -> int

val gsq_served : t -> int
(** Packets served through the Guaranteed Service Queue so far. *)

val asq_served : t -> int
(** Packets served through the Auxiliary Service Queue so far. *)

val sched : t -> Sched.t
