open Sfq_base

type flow_spec = { flow : Packet.flow; rate : float; max_len : int }
type server = { capacity : float; delta : float }

type guarantee = {
  spec : flow_spec;
  delay_bound : float;
  throughput_deficit : float;
  fairness_vs : (Packet.flow * float) list;
}

let validate specs =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if s.rate <= 0.0 || s.max_len <= 0 then
        invalid_arg (Printf.sprintf "Admission: invalid spec for flow %d" s.flow);
      if Hashtbl.mem seen s.flow then
        invalid_arg (Printf.sprintf "Admission: duplicate flow %d" s.flow);
      Hashtbl.replace seen s.flow ())
    specs

let admissible server specs =
  validate specs;
  if server.capacity <= 0.0 || server.delta < 0.0 then
    invalid_arg "Admission: invalid server parameters";
  List.fold_left (fun acc s -> acc +. s.rate) 0.0 specs <= server.capacity +. 1e-9

let guarantee_of server specs spec =
  let sum_lmax = List.fold_left (fun acc s -> acc +. float_of_int s.max_len) 0.0 specs in
  let sum_other_lmax = sum_lmax -. float_of_int spec.max_len in
  let delay_bound =
    Bounds.sfq_departure ~eat:0.0 ~sum_other_lmax ~len:(float_of_int spec.max_len)
      ~capacity:server.capacity ~delta:server.delta
  in
  (* Theorem 2 rearranged: W_f >= r_f (t2-t1) - deficit. *)
  let throughput_deficit =
    (spec.rate *. sum_lmax /. server.capacity)
    +. (spec.rate *. server.delta /. server.capacity)
    +. float_of_int spec.max_len
  in
  let fairness_vs =
    List.filter_map
      (fun other ->
        if other.flow = spec.flow then None
        else
          Some
            ( other.flow,
              Bounds.h_sfq
                ~lmax_f:(float_of_int spec.max_len)
                ~r_f:spec.rate
                ~lmax_m:(float_of_int other.max_len)
                ~r_m:other.rate ))
      specs
  in
  { spec; delay_bound; throughput_deficit; fairness_vs }

let admit server specs =
  if admissible server specs then Some (List.map (guarantee_of server specs) specs)
  else None

let max_admissible_rate server specs =
  validate specs;
  Float.max 0.0 (server.capacity -. List.fold_left (fun acc s -> acc +. s.rate) 0.0 specs)

let e2e_guarantee ~servers ~per_hop_others_lmax ~spec ~prop_delays ~sigma =
  let k = List.length servers in
  if List.length per_hop_others_lmax <> k then
    invalid_arg "Admission.e2e_guarantee: one others-lmax per server required";
  if List.length prop_delays <> Stdlib.max 0 (k - 1) then
    invalid_arg "Admission.e2e_guarantee: one propagation delay per hop required";
  let betas =
    List.map2
      (fun server others ->
        Bounds.sfq_beta ~sum_other_lmax:others ~len:(float_of_int spec.max_len)
          ~capacity:server.capacity ~delta:server.delta)
      servers per_hop_others_lmax
  in
  Bounds.e2e_delay_leaky_bucket ~sigma ~rate:spec.rate ~betas ~taus:prop_delays
