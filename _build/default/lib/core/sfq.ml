open Sfq_util
open Sfq_base
open Sfq_sched

type entry = { stag : float; ftag : float; uid : int; pkt : Packet.t }

type busy_rule = Idle_poll | On_empty

type t = {
  weights : Weights.t;
  busy_rule : busy_rule;
  heap : entry Ds_heap.t;
  counts : int Flow_table.t;
  finish : float Flow_table.t;  (* F(p_f^{j-1}); never reset — see §2 step 2 *)
  mutable v : float;
  mutable max_finish_served : float;
  mutable next_uid : int;
}

let compare_entry tie a b =
  match compare a.stag b.stag with
  | 0 ->
    let by_rate =
      match (tie : Tag_queue.tie) with
      | Arrival -> 0
      | Low_rate w -> compare (w a.pkt.Packet.flow) (w b.pkt.Packet.flow)
      | High_rate w -> compare (w b.pkt.Packet.flow) (w a.pkt.Packet.flow)
    in
    if by_rate <> 0 then by_rate else compare a.uid b.uid
  | c -> c

let create ?(tie = Tag_queue.Arrival) ?(busy_rule = Idle_poll) weights =
  {
    weights;
    busy_rule;
    heap = Ds_heap.create ~cmp:(compare_entry tie) ();
    counts = Flow_table.create ~default:(fun _ -> 0);
    finish = Flow_table.create ~default:(fun _ -> 0.0);
    v = 0.0;
    max_finish_served = 0.0;
    next_uid = 0;
  }

let packet_rate t pkt =
  match pkt.Packet.rate with Some r -> r | None -> Weights.get t.weights pkt.Packet.flow

let enqueue_tagged t ~now:_ pkt =
  let flow = pkt.Packet.flow in
  let stag = Float.max t.v (Flow_table.find t.finish flow) in
  let ftag = stag +. (float_of_int pkt.Packet.len /. packet_rate t pkt) in
  Flow_table.set t.finish flow ftag;
  Ds_heap.add t.heap { stag; ftag; uid = t.next_uid; pkt };
  t.next_uid <- t.next_uid + 1;
  Flow_table.set t.counts flow (Flow_table.find t.counts flow + 1);
  (stag, ftag)

let enqueue t ~now pkt = ignore (enqueue_tagged t ~now pkt)

let dequeue t ~now:_ =
  match Ds_heap.pop_min t.heap with
  | None ->
    (* The server asked for work and found none: the busy period is
       over (the queue being momentarily empty while a packet is still
       in service does NOT end it — the server only calls dequeue after
       a completion or an arrival). Per §2 step 2, v becomes the max
       finish tag of serviced packets, so a reactivating flow's old
       F(p^{j-1}) can never lag v. *)
    t.v <- Float.max t.v t.max_finish_served;
    None
  | Some e ->
    t.v <- e.stag;
    if e.ftag > t.max_finish_served then t.max_finish_served <- e.ftag;
    Flow_table.set t.counts e.pkt.Packet.flow (Flow_table.find t.counts e.pkt.Packet.flow - 1);
    if t.busy_rule = On_empty && Ds_heap.is_empty t.heap then
      (* The deliberately wrong variant for the ablation: treats a
         momentarily empty queue as the end of the busy period. *)
      t.v <- t.max_finish_served;
    Some e.pkt

let peek t = match Ds_heap.min_elt t.heap with None -> None | Some e -> Some e.pkt
let size t = Ds_heap.length t.heap
let backlog t flow = Flow_table.find t.counts flow
let vtime t = t.v

let sched t =
  {
    Sched.name = "sfq";
    enqueue = (fun ~now pkt -> enqueue t ~now pkt);
    dequeue = (fun ~now -> dequeue t ~now);
    peek = (fun () -> peek t);
    size = (fun () -> size t);
    backlog = (fun flow -> backlog t flow);
  }
