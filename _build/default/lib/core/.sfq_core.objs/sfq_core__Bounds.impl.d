lib/core/bounds.ml: List
