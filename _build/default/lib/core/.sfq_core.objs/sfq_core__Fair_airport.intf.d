lib/core/fair_airport.mli: Packet Sched Sfq_base Weights
