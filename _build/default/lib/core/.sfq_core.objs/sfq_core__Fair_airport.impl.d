lib/core/fair_airport.ml: Ds_heap Float Flow_table Packet Queue Sched Sfq_base Sfq_util Weights
