lib/core/hsfq.ml: Float Hashtbl List Packet Sched Sfq_base
