lib/core/admission.mli: Packet Sfq_base
