lib/core/sfq.mli: Packet Sched Sfq_base Sfq_sched Tag_queue Weights
