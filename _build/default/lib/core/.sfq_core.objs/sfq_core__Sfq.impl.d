lib/core/sfq.ml: Ds_heap Float Flow_table Packet Sched Sfq_base Sfq_sched Sfq_util Tag_queue Weights
