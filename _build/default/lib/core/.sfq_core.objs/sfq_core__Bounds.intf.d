lib/core/bounds.mli:
