lib/core/admission.ml: Bounds Float Hashtbl List Packet Printf Sfq_base Stdlib
