lib/core/hsfq.mli: Packet Sched Sfq_base
