(** Closed-form bounds from the paper, used by Table 1, Fig. 2(a), the
    §2.3 delay-gap numbers, the delay-shifting analysis and the
    bound-validation experiments. All lengths in bits, rates in bits/s,
    times in seconds. *)

(** {1 Fairness measures H(f,m) (Table 1)} *)

val h_lower_bound : lmax_f:float -> r_f:float -> lmax_m:float -> r_m:float -> float
(** Golestani's lower bound [1/2 (l_f^max/r_f + l_m^max/r_m)] on any
    packet algorithm's fairness measure. *)

val h_sfq : lmax_f:float -> r_f:float -> lmax_m:float -> r_m:float -> float
(** Theorem 1: [l_f^max/r_f + l_m^max/r_m]. Also SCFQ's measure. *)

val h_scfq : lmax_f:float -> r_f:float -> lmax_m:float -> r_m:float -> float

val h_wfq_lower : lmax_f:float -> r_f:float -> lmax_m:float -> r_m:float -> float
(** Example 1's lower bound on WFQ's measure (same expression as
    {!h_sfq}, but for WFQ it is only a {e lower} bound). *)

val h_drr : lmax_f:float -> r_f:float -> lmax_m:float -> r_m:float -> float
(** [1 + l_f^max/r_f + l_m^max/r_m], valid when the minimum weight in
    the system is 1 (§1.2). *)

val h_fair_airport :
  lmax_f:float -> r_f:float -> lmax_m:float -> r_m:float -> lmax:float -> capacity:float -> float
(** Theorem 8: [3(l_f^max/r_f + l_m^max/r_m) + 2 l^max/C]. *)

(** {1 Single-server departure bounds} *)

val sfq_departure :
  eat:float -> sum_other_lmax:float -> len:float -> capacity:float -> delta:float -> float
(** Theorem 4: [EAT + Σ_{n≠f} l_n^max/C + l/C + δ(C)/C]. *)

val scfq_departure : eat:float -> sum_other_lmax:float -> len:float -> rate:float -> capacity:float -> float
(** Eq. 56 (tight bound for a constant-rate SCFQ server):
    [EAT + Σ_{n≠f} l_n^max/C + l/r]. *)

val wfq_departure : eat:float -> len:float -> rate:float -> lmax:float -> capacity:float -> float
(** [EAT + l/r + l^max/C] (§2.3; also Theorem 9's Fair Airport
    bound). *)

val edd_departure : deadline:float -> lmax:float -> capacity:float -> delta:float -> float
(** Theorem 7: [D + l^max/C + δ(C)/C]. *)

val scfq_sfq_gap : len:float -> rate:float -> capacity:float -> float
(** Eq. 57, per server: [l/r − l/C]; the extra delay SCFQ can add over
    SFQ. 24.4 ms for l = 200 B, r = 64 Kb/s, C = 100 Mb/s. *)

val wfq_sfq_delta :
  len:float -> rate:float -> lmax:float -> sum_other_lmax:float -> capacity:float -> float
(** Eq. 58: max-delay reduction of SFQ over WFQ for one packet:
    [l/r + l^max/C − Σ_{n≠f} l_n^max/C − l/C]. *)

val wfq_sfq_delta_uniform : len:float -> rate:float -> nflows:int -> capacity:float -> float
(** Eq. 59 (all packets of length [len]):
    [l/r − (|Q|−1) l/C]. Positive iff the flow uses at most a
    [1/(|Q|−1)] share (eq. 60) — Fig. 2(a)'s quantity. *)

(** {1 Throughput guarantees} *)

val sfq_throughput_lower :
  rate:float -> t1:float -> t2:float -> sum_lmax:float -> lmax_f:float -> capacity:float -> delta:float -> float
(** Theorem 2: a continuously backlogged flow receives at least
    [r_f(t2−t1) − r_f Σ_n l_n^max/C − r_f δ(C)/C − l_f^max]. *)

val fc_virtual_server :
  rate:float -> sum_lmax:float -> lmax_f:float -> capacity:float -> delta:float -> float * float
(** Eq. 65: the virtual server seen by a class with rate [r_f] under an
    FC [(C, δ)] parent is FC with parameters
    [(r_f, r_f Σ l^max/C + r_f δ/C + l_f^max)]. Returns
    [(rate, delta')]. *)

(** {1 Hierarchical delay shifting (§3)} *)

val flat_departure_rhs : nflows:int -> len:float -> capacity:float -> delta:float -> float
(** Eq. 69's bound minus EAT: [(|Q|−1)l/C + δ/C + l/C], equal packet
    lengths. *)

val shifted_departure_rhs :
  partition_size:int -> len:float -> partition_rate:float -> nparts:int -> capacity:float -> delta:float -> float
(** Eq. 71's bound minus EAT: [(|Q_i|+1)l/C_i + (δ(C)+Kl)/C]. *)

val delay_shift_improves :
  partition_size:int -> nflows:int -> nparts:int -> partition_rate:float -> capacity:float -> bool
(** Eq. 73: hierarchical scheduling lowers the bound iff
    [(|Q_i|+1)/(|Q|−K) < C_i/C]. *)

(** {1 End-to-end delay (Corollary 1, §A.5)} *)

val sfq_beta : sum_other_lmax:float -> len:float -> capacity:float -> delta:float -> float
(** The per-server constant [β = Σ_{n≠f} l_n^max/C + l/C + δ/C] of
    eq. 61. *)

val e2e_departure : eat_first:float -> betas:float list -> taus:float list -> float
(** Deterministic Corollary 1: [EAT^1 + Σ_n max β^n + Σ τ^{n,n+1}]
    (each [betas] element should already be the per-server max over
    packets seen so far). [taus] has one entry per hop between
    consecutive servers. *)

val e2e_delay_leaky_bucket :
  sigma:float -> rate:float -> betas:float list -> taus:float list -> float
(** §A.5: end-to-end delay bound for a [(σ, ρ)]-leaky-bucket flow with
    reserved rate [rate ≥ ρ] at every server:
    [σ/rate − l/rate + Σβ + Στ + l/rate = σ/rate + Σβ + Στ]. *)

(** {1 EBF tail (Theorems 3 and 5)} *)

val ebf_tail : b:float -> alpha:float -> gamma:float -> float
(** [B e^{−α γ}], the probability the EBF deviation exceeds [γ]. *)
