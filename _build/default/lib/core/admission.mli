(** Admission control and guarantee computation.

    The paper's guarantees are conditional on admission control:
    Theorems 2–5 require [Σ_n r_n <= C] (or [Σ_n R_n(v) <= C] with
    variable rates), Theorem 7 requires the eq.-67 schedulability test,
    and the end-to-end bound composes per-server constants. This module
    packages those checks and evaluates the resulting contractual
    bounds for an admitted flow set, so callers can answer "if I admit
    this set, what can I promise each flow?" before any packet flows.

    All lengths in bits, rates in bits/s, times in seconds. *)

open Sfq_base

type flow_spec = {
  flow : Packet.flow;
  rate : float;  (** reserved rate r_f *)
  max_len : int;  (** l_f^max *)
}

type server = {
  capacity : float;  (** average rate C of the (possibly FC) server *)
  delta : float;  (** δ(C); 0 for a constant-rate server *)
}

type guarantee = {
  spec : flow_spec;
  delay_bound : float;
      (** Theorem 4: departure within this of the packet's EAT *)
  throughput_deficit : float;
      (** Theorem 2: bits by which [W_f(t1,t2)] may lag
          [r_f (t2 - t1)] in any backlogged interval *)
  fairness_vs : (Packet.flow * float) list;
      (** Theorem 1 H(f,m) against every other admitted flow *)
}

val admissible : server -> flow_spec list -> bool
(** [Σ r <= C], with distinct flow ids and positive parameters.
    @raise Invalid_argument on malformed specs (non-positive rate or
    length, duplicate flow id). *)

val admit : server -> flow_spec list -> guarantee list option
(** [None] if not admissible; otherwise the per-flow contracts an SFQ
    server of these parameters provides. *)

val max_admissible_rate : server -> flow_spec list -> float
(** Spare capacity: the largest rate a new flow could reserve. *)

val e2e_guarantee :
  servers:server list ->
  per_hop_others_lmax:float list ->
  spec:flow_spec ->
  prop_delays:float list ->
  sigma:float ->
  float
(** End-to-end delay bound (Corollary 1 / §A.5) for a
    (σ, [spec.rate])-leaky-bucket flow crossing the given servers,
    where [per_hop_others_lmax] is Σ_{n≠f} l_n^max at each hop.
    @raise Invalid_argument on list-length mismatches. *)
