bin/sfq_demo.mli:
