(* CLI driver: run any single experiment from DESIGN.md's index.
   `sfq-demo list` shows the experiment ids; `sfq-demo run <id>` runs
   one; `sfq-demo all` runs everything (what bench/main.exe also does,
   minus the Bechamel micro-benchmarks). *)

open Sfq_experiments

let experiments : (string * string * (quick:bool -> unit)) list =
  [
    ( "example-1",
      "Example 1: WFQ >= 2x from the fairness lower bound",
      fun ~quick:_ -> Ex1_wfq_unfair.(print (run ())) );
    ( "example-2",
      "Example 2: WFQ unfair on a variable-rate server",
      fun ~quick:_ -> Ex2_variable_rate.(print (run ())) );
    ( "fig-1b",
      "Fig 1(b): TCP fairness under VBR-induced variable rate",
      fun ~quick:_ -> Fig1_tcp_fairness.(print (run ())) );
    ( "table-1",
      "Table 1: empirical fairness of all disciplines",
      fun ~quick -> Table1_fairness.(print (run ~quick ())) );
    ( "fig-2a",
      "Fig 2(a): max-delay reduction of SFQ vs WFQ",
      fun ~quick -> Fig2a_delay_reduction.(print (run ~quick ())) );
    ( "fig-2b",
      "Fig 2(b): average delay of low-throughput flows",
      fun ~quick ->
        Fig2b_avg_delay.(print (run ~duration:(if quick then 50.0 else 200.0) ())) );
    ( "scfq-gap",
      "SCFQ vs SFQ maximum delay gap (Sec 2.3)",
      fun ~quick:_ -> Scfq_delay_gap.(print (run ())) );
    ( "fig-3b",
      "Fig 3(b): weighted link sharing over a fluctuating interface",
      fun ~quick ->
        Fig3_link_sharing.(print (run ~pkts_per_conn:(if quick then 1500 else 4000) ())) );
    ( "hier-sharing",
      "Example 3: hierarchical link sharing",
      fun ~quick:_ -> Hier_sharing.(print (run ())) );
    ( "delay-shift",
      "Sec 3: delay shifting via hierarchical scheduling",
      fun ~quick:_ -> Delay_shifting.(print (run ())) );
    ( "bounds",
      "Theorems 2/3/4/5 bound validation on FC and EBF servers",
      fun ~quick:_ -> Bound_validation.(print (run ())) );
    ( "e2e",
      "Corollary 1: end-to-end delay through K SFQ servers",
      fun ~quick:_ -> End_to_end.(print (run ())) );
    ( "fair-airport",
      "Appendix B: Fair Airport delay + fairness",
      fun ~quick:_ -> Fair_airport_exp.(print (run ())) );
    ( "residual",
      "Sec 2.3: shaped priority traffic => FC residual server",
      fun ~quick:_ -> Priority_residual.(print (run ())) );
    ( "tie-break",
      "Sec 2.3: tie-breaking rule ablation",
      fun ~quick:_ -> Tie_break_ablation.(print (run ())) );
    ( "gsfq",
      "Sec 2.3: generalized SFQ with per-packet rates (eq. 36)",
      fun ~quick:_ -> Gsfq_video.(print (run ())) );
    ( "fig-1-topology",
      "Fig 1(a) on the full host/switch topology (E20)",
      fun ~quick:_ -> Fig1_topology.(print (run ())) );
    ( "busy-rule",
      "Ablation: busy-period rule (idle-poll vs on-empty shortcut)",
      fun ~quick:_ -> Busy_rule_ablation.(print (run ())) );
    ( "e2e-ebf",
      "Theorem 5 / Corollary 1: stochastic end-to-end tail over EBF servers",
      fun ~quick:_ -> E2e_ebf.(print (run ())) );
  ]

let list_cmd () =
  List.iter (fun (id, doc, _) -> Printf.printf "%-14s %s\n" id doc) experiments

let run_one ~quick id =
  match List.find_opt (fun (i, _, _) -> i = id) experiments with
  | Some (_, _, f) ->
    f ~quick;
    0
  | None ->
    Printf.eprintf "unknown experiment %S; try `sfq_demo list`\n" id;
    1

let run_all ~quick = List.iter (fun (_, _, f) -> f ~quick) experiments

open Cmdliner

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Smaller workloads (for smoke tests).")

let list_t = Term.(const list_cmd $ const ())
let list_cmd_t = Cmd.v (Cmd.info "list" ~doc:"List experiment ids") list_t

let run_t =
  let id = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID") in
  Term.(const (fun quick id -> Stdlib.exit (run_one ~quick id)) $ quick $ id)

let run_cmd_t = Cmd.v (Cmd.info "run" ~doc:"Run one experiment") run_t

let all_t = Term.(const (fun quick -> run_all ~quick) $ quick)
let all_cmd_t = Cmd.v (Cmd.info "all" ~doc:"Run every experiment") all_t

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info = Cmd.info "sfq-demo" ~doc:"SFQ paper experiment driver" in
  exit (Cmd.eval (Cmd.group ~default info [ list_cmd_t; run_cmd_t; all_cmd_t ]))
