(* sfq-calc: the paper's closed forms as a command-line calculator.

   Answers the provisioning questions an operator of an SFQ link would
   ask without running a simulation:

     sfq-calc delay --capacity 100e6 --len 1600 --flows 20 --delta 0
     sfq-calc fairness --lmax-f 1600 --rate-f 64e3 --lmax-m 1600 --rate-m 1e6
     sfq-calc admit --capacity 1e6 --flow 64e3:1600 --flow 300e3:8000
     sfq-calc e2e --hops 5 --capacity 1e6 --len 2000 --others-lmax 6000 \
                  --rate 100e3 --sigma 8000 --prop 0.001
     sfq-calc compare --capacity 100e6 --len 1600 --rate 64e3 --flows 20 *)

open Sfq_core
open Cmdliner

let ms x = Printf.sprintf "%.3f ms" (1000.0 *. x)

(* ------------------------------------------------------------------ *)
(* delay: Theorem 4 for one flow on an SFQ FC server                    *)

let delay capacity len flows delta =
  let sum_other = float_of_int (flows - 1) *. len in
  let bound = Bounds.sfq_departure ~eat:0.0 ~sum_other_lmax:sum_other ~len ~capacity ~delta in
  Printf.printf
    "Theorem 4: a packet departs within %s of its expected arrival time\n\
     (C = %g b/s, l = %g bits, %d flows of equal max length, delta = %g bits)\n"
    (ms bound) capacity len flows delta;
  0

let delay_cmd =
  let capacity = Arg.(required & opt (some float) None & info [ "capacity" ] ~doc:"Server rate, bits/s.") in
  let len = Arg.(required & opt (some float) None & info [ "len" ] ~doc:"Packet length, bits.") in
  let flows = Arg.(value & opt int 2 & info [ "flows" ] ~doc:"Number of flows (for the sum of other flows' max lengths).") in
  let delta = Arg.(value & opt float 0.0 & info [ "delta" ] ~doc:"FC burstiness delta(C), bits.") in
  Cmd.v
    (Cmd.info "delay" ~doc:"SFQ delay guarantee (Theorem 4)")
    Term.(const delay $ capacity $ len $ flows $ delta)

(* ------------------------------------------------------------------ *)
(* fairness: Theorem 1 H(f,m) plus the competition                      *)

let fairness lmax_f rate_f lmax_m rate_m =
  let sfq = Bounds.h_sfq ~lmax_f ~r_f:rate_f ~lmax_m ~r_m:rate_m in
  let lower = Bounds.h_lower_bound ~lmax_f ~r_f:rate_f ~lmax_m ~r_m:rate_m in
  let drr = Bounds.h_drr ~lmax_f ~r_f:rate_f ~lmax_m ~r_m:rate_m in
  Printf.printf
    "lower bound on any packet algorithm : %.6f s\n\
     SFQ / SCFQ (Theorem 1)              : %.6f s\n\
     WFQ (at least, Example 1)           : %.6f s\n\
     DRR (min weight 1, Sec 1.2)         : %.6f s\n"
    lower sfq sfq drr;
  0

let fairness_cmd =
  let f name doc = Arg.(required & opt (some float) None & info [ name ] ~doc) in
  Cmd.v
    (Cmd.info "fairness" ~doc:"Fairness measures H(f,m) (Table 1)")
    Term.(
      const fairness
      $ f "lmax-f" "Max packet length of flow f, bits."
      $ f "rate-f" "Rate of flow f, bits/s."
      $ f "lmax-m" "Max packet length of flow m, bits."
      $ f "rate-m" "Rate of flow m, bits/s.")

(* ------------------------------------------------------------------ *)
(* admit: admission control and per-flow contracts                     *)

let parse_flow s =
  match String.split_on_char ':' s with
  | [ rate; len ] -> begin
    try Ok (float_of_string rate, int_of_string len)
    with _ -> Error (`Msg (Printf.sprintf "bad flow spec %S (want RATE:MAXLEN)" s))
  end
  | _ -> Error (`Msg (Printf.sprintf "bad flow spec %S (want RATE:MAXLEN)" s))

let flow_conv = Arg.conv (parse_flow, fun ppf (r, l) -> Format.fprintf ppf "%g:%d" r l)

let admit capacity delta flows =
  let specs =
    List.mapi (fun i (rate, max_len) -> { Admission.flow = i; rate; max_len }) flows
  in
  let server = { Admission.capacity; delta } in
  match Admission.admit server specs with
  | None ->
    Printf.printf "REJECT: total reserved rate %g b/s exceeds capacity %g b/s\n"
      (List.fold_left (fun a s -> a +. s.Admission.rate) 0.0 specs)
      capacity;
    1
  | Some guarantees ->
    Printf.printf "ADMIT (spare capacity %g b/s). Contracts (Theorems 1, 2, 4):\n"
      (Admission.max_admissible_rate server specs);
    List.iter
      (fun g ->
        Printf.printf
          "  flow %d (r=%g, lmax=%d): delay-to-EAT <= %s; throughput deficit <= %.0f bits\n"
          g.Admission.spec.Admission.flow g.Admission.spec.Admission.rate
          g.Admission.spec.Admission.max_len (ms g.Admission.delay_bound)
          g.Admission.throughput_deficit)
      guarantees;
    0

let admit_cmd =
  let capacity = Arg.(required & opt (some float) None & info [ "capacity" ] ~doc:"Server rate, bits/s.") in
  let delta = Arg.(value & opt float 0.0 & info [ "delta" ] ~doc:"FC burstiness, bits.") in
  let flows =
    Arg.(non_empty & opt_all flow_conv [] & info [ "flow" ] ~doc:"Flow spec RATE:MAXLEN (repeatable).")
  in
  Cmd.v
    (Cmd.info "admit" ~doc:"Admission control with per-flow contracts")
    Term.(const admit $ capacity $ delta $ flows)

(* ------------------------------------------------------------------ *)
(* e2e: Corollary 1 for a leaky-bucket flow over identical hops         *)

let e2e hops capacity len others rate sigma prop =
  let spec = { Admission.flow = 0; rate; max_len = int_of_float len } in
  let servers = List.init hops (fun _ -> { Admission.capacity; delta = 0.0 }) in
  let bound =
    Admission.e2e_guarantee ~servers
      ~per_hop_others_lmax:(List.init hops (fun _ -> others))
      ~spec
      ~prop_delays:(List.init (max 0 (hops - 1)) (fun _ -> prop))
      ~sigma
  in
  Printf.printf
    "Corollary 1 / Sec A.5: end-to-end delay <= %s for a (sigma=%g, rho=%g) flow\n\
     over %d SFQ hops of %g b/s (others' lmax sum %g bits/hop, prop %gs/hop)\n"
    (ms bound) sigma rate hops capacity others prop;
  0

let e2e_cmd =
  let i name doc = Arg.(required & opt (some float) None & info [ name ] ~doc) in
  let hops = Arg.(value & opt int 1 & info [ "hops" ] ~doc:"Number of SFQ servers on the path.") in
  let prop = Arg.(value & opt float 0.0 & info [ "prop" ] ~doc:"Propagation delay per hop, s.") in
  Cmd.v
    (Cmd.info "e2e" ~doc:"End-to-end delay bound (Corollary 1)")
    Term.(
      const e2e $ hops
      $ i "capacity" "Per-hop rate, bits/s."
      $ i "len" "Packet length, bits."
      $ i "others-lmax" "Sum of other flows' max lengths per hop, bits."
      $ i "rate" "Reserved rate rho, bits/s."
      $ i "sigma" "Leaky-bucket burst, bits."
      $ prop)

(* ------------------------------------------------------------------ *)
(* compare: the Fig 2(a) / Sec 2.3 discipline comparison at a point     *)

let compare_disc capacity len rate flows =
  let sum_other = float_of_int (flows - 1) *. len in
  let sfq = Bounds.sfq_departure ~eat:0.0 ~sum_other_lmax:sum_other ~len ~capacity ~delta:0.0 in
  let scfq = Bounds.scfq_departure ~eat:0.0 ~sum_other_lmax:sum_other ~len ~rate ~capacity in
  let wfq = Bounds.wfq_departure ~eat:0.0 ~len ~rate ~lmax:len ~capacity in
  Printf.printf
    "delay-to-EAT bounds for a %g b/s flow of %g-bit packets among %d flows on %g b/s:\n\
    \  SFQ  (Thm 4)  : %s\n\
    \  SCFQ (eq. 56) : %s  (gap to SFQ: %s, eq. 57)\n\
    \  WFQ           : %s\n\
     SFQ wins for this flow iff its share is below 1/(Q-1) (eq. 60): %b\n"
    rate len flows capacity (ms sfq) (ms scfq)
    (ms (Bounds.scfq_sfq_gap ~len ~rate ~capacity))
    (ms wfq)
    (Bounds.wfq_sfq_delta_uniform ~len ~rate ~nflows:flows ~capacity > 0.0);
  0

let compare_cmd =
  let i name doc = Arg.(required & opt (some float) None & info [ name ] ~doc) in
  let flows = Arg.(value & opt int 2 & info [ "flows" ] ~doc:"Number of flows.") in
  Cmd.v
    (Cmd.info "compare" ~doc:"SFQ vs SCFQ vs WFQ delay bounds at one point")
    Term.(
      const compare_disc
      $ i "capacity" "Server rate, bits/s."
      $ i "len" "Packet length, bits."
      $ i "rate" "The flow's reserved rate, bits/s."
      $ flows)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info = Cmd.info "sfq-calc" ~doc:"Closed-form SFQ guarantees calculator" in
  exit
    (Cmd.eval'
       (Cmd.group ~default info [ delay_cmd; fairness_cmd; admit_cmd; e2e_cmd; compare_cmd ]))
