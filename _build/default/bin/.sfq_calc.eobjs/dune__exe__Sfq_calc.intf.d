bin/sfq_calc.mli:
