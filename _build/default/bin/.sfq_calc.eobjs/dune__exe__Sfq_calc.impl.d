bin/sfq_calc.ml: Admission Arg Bounds Cmd Cmdliner Format List Printf Sfq_core String Term
