(* Quickstart: the SFQ scheduler in isolation.

   Build a scheduler, push packets from two weighted flows, and watch
   the start-tag order interleave them in proportion to their weights.
   Run with: dune exec examples/quickstart.exe *)

open Sfq_base
open Sfq_core

let () =
  (* Flow 1 reserves twice flow 2's rate. Weights are bits/s; tags are
     seconds of normalized service. *)
  let weights = Weights.of_list [ (1, 2000.0); (2, 1000.0) ] in
  let sched = Sfq.create weights in

  (* Both flows dump four 1000-bit packets at t = 0. *)
  let now = 0.0 in
  List.iter
    (fun flow ->
      for seq = 1 to 4 do
        let pkt = Packet.make ~flow ~seq ~len:1000 ~born:now () in
        let start_tag, finish_tag = Sfq.enqueue_tagged sched ~now pkt in
        Printf.printf "enqueue flow %d seq %d: S = %.2f  F = %.2f\n" flow seq start_tag
          finish_tag
      done)
    [ 1; 2 ];

  (* Dequeue in SFQ order: smallest start tag first. Flow 1 should get
     two slots for every one of flow 2's. *)
  print_endline "\nservice order (note the 2:1 interleaving):";
  let rec drain () =
    match Sfq.dequeue sched ~now with
    | None -> ()
    | Some p ->
      Printf.printf "  serve flow %d seq %d   (v = %.2f)\n" p.Packet.flow p.Packet.seq
        (Sfq.vtime sched);
      drain ()
  in
  drain ();

  (* The same scheduler driving a simulated 1 Mb/s link. *)
  print_endline "\nnow on a simulated server:";
  let open Sfq_netsim in
  let sim = Sim.create () in
  let server =
    Server.create sim ~name:"link"
      ~rate:(Rate_process.constant 1.0e6)
      ~sched:(Sfq.sched (Sfq.create weights))
      ()
  in
  Server.on_depart server (fun p ~start:_ ~departed ->
      Printf.printf "  t=%.4fs  delivered flow %d seq %d\n" departed p.Packet.flow
        p.Packet.seq);
  Sim.schedule sim ~at:0.0 (fun () ->
      List.iter
        (fun flow ->
          for seq = 1 to 3 do
            Server.inject server (Packet.make ~flow ~seq ~len:1000 ~born:0.0 ())
          done)
        [ 1; 2 ]);
  Sim.run_all sim ()
