(* A small mesh network with per-link SFQ — the "network of servers" of
   §2.4 on a topology rather than a chain.

        src1 ──a          d── sink1
               \          /
                s1 ───── s2
               /          \
        src2 ──b          e── sink2

   Two reserved flows cross the shared s1→s2 backbone in opposite
   directions of entry but the same bottleneck, next to backbone-only
   cross traffic. The example prints each flow's measured end-to-end
   delay against the Corollary-1 contract computed by the Admission
   module from the same topology description.

   Run with: dune exec examples/mesh.exe *)

open Sfq_base
open Sfq_util
open Sfq_core
open Sfq_netsim

let backbone = 2.0e6
let edge = 5.0e6
let pkt_len = 8 * 500
let flow1 = 1
let flow2 = 2
let r1 = 300.0e3
let r2 = 500.0e3
let sigma = 3.0 *. float_of_int pkt_len
let cross_rate = backbone -. r1 -. r2 (* backbone fully reserved *)
let duration = 30.0

let () =
  let sim = Sim.create () in
  let net = Net.create sim in
  let a = Net.add_node net "a" and b = Net.add_node net "b" in
  let s1 = Net.add_node net "s1" and s2 = Net.add_node net "s2" in
  let d = Net.add_node net "d" and e = Net.add_node net "e" in
  let weights = Weights.of_list ~default:cross_rate [ (flow1, r1); (flow2, r2) ] in
  let sfq () = Sfq.sched (Sfq.create weights) in
  let mk src dst rate = ignore (Net.link net ~src ~dst ~rate:(Rate_process.constant rate) ~sched:(sfq ()) ~prop_delay:0.001 ()) in
  mk a s1 edge;
  mk b s1 edge;
  mk s1 s2 backbone;
  mk s2 d edge;
  mk s2 e edge;
  Net.route net ~flow:flow1 [ a; s1; s2; d ];
  Net.route net ~flow:flow2 [ b; s1; s2; e ];

  (* Cross traffic that lives only on the backbone. *)
  let bb = Net.server net ~src:s1 ~dst:s2 in
  ignore
    (Source.greedy sim ~server:bb ~flow:99 ~len:pkt_len ~total:1_000_000 ~window:4
       ~start:0.0 ());

  (* Leaky-bucket conformant sources for the reserved flows. *)
  let worst = Hashtbl.create 4 in
  Net.on_delivered net (fun p ~at ->
      let w = try Hashtbl.find worst p.Packet.flow with Not_found -> 0.0 in
      Hashtbl.replace worst p.Packet.flow (Float.max w (at -. p.Packet.born)));
  ignore
    (Source.leaky_bucket sim ~target:(Net.inject net) ~flow:flow1 ~len:pkt_len ~sigma
       ~rho:r1 ~flush_every:0.02 ~start:0.0 ~stop:duration);
  ignore
    (Source.leaky_bucket sim ~target:(Net.inject net) ~flow:flow2 ~len:pkt_len ~sigma
       ~rho:r2 ~flush_every:0.02 ~start:0.0 ~stop:duration);
  Sim.run sim ~until:(duration +. 1.0);

  (* The contract, from the same description: three hops per flow. The
     edge links carry at most one competing reserved flow; the backbone
     carries two others. *)
  let contract rate =
    Admission.e2e_guarantee
      ~servers:
        [
          { Admission.capacity = edge; delta = 0.0 };
          { Admission.capacity = backbone; delta = 0.0 };
          { Admission.capacity = edge; delta = 0.0 };
        ]
      ~per_hop_others_lmax:
        [ 0.0; float_of_int (2 * pkt_len); float_of_int pkt_len ]
      ~spec:{ Admission.flow = 0; rate; max_len = pkt_len }
      ~prop_delays:[ 0.001; 0.001 ] ~sigma
  in
  let table = Text_table.create [ "flow"; "measured worst e2e"; "Corollary 1 contract" ] in
  let row name flow rate =
    Text_table.add_row table
      [
        name;
        Printf.sprintf "%.2f ms" (1000.0 *. (try Hashtbl.find worst flow with Not_found -> nan));
        Printf.sprintf "%.2f ms" (1000.0 *. contract rate);
      ]
  in
  row "flow 1 (300 Kb/s, a->d)" flow1 r1;
  row "flow 2 (500 Kb/s, b->e)" flow2 r2;
  print_endline "Mesh with per-link SFQ and a fully reserved 2 Mb/s backbone:";
  Text_table.print table;
  Printf.printf "backbone cross traffic served: %d packets (greedy, weight %g b/s)\n"
    (Server.departed bb) cross_rate
