(* An integrated-services gateway: the paper's §1.1 motivation as a
   runnable scenario.

   A 10 Mb/s output link carries:
   - 8 interactive audio flows, 64 Kb/s CBR, 200-byte packets (want low
     delay);
   - 2 VBR video flows, ~1.2 Mb/s average (want fairness, may use idle
     bandwidth);
   - 4 greedy ftp transfers (want throughput, must not starve anyone).

   The example runs the same traffic through FIFO, WFQ and SFQ and
   prints per-class delay and throughput — the comparison behind the
   paper's claim that SFQ suits all three application classes at once.

   Run with: dune exec examples/video_gateway.exe *)

open Sfq_base
open Sfq_util
open Sfq_netsim

let capacity = 10.0e6
let duration = 20.0
let audio_flows = List.init 8 (fun i -> i)
let video_flows = [ 100; 101 ]
let ftp_flows = [ 200; 201; 202; 203 ]
let audio_rate = 64.0e3
let video_rate = 1.2e6

let weights =
  Weights.of_fun (fun f ->
      if List.mem f audio_flows then audio_rate
      else if List.mem f video_flows then video_rate
      else (* ftp: share what remains *)
        (capacity -. (8.0 *. audio_rate) -. (2.0 *. video_rate)) /. 4.0)

let run name sched =
  let sim = Sim.create () in
  let rng = Rng.create 42 in
  let server =
    Server.create sim ~name ~rate:(Rate_process.constant capacity) ~sched ()
  in
  let delay = Hashtbl.create 16 and bits = Hashtbl.create 16 in
  let class_of f = if f < 100 then "audio" else if f < 200 then "video" else "ftp" in
  Server.on_depart server (fun p ~start:_ ~departed ->
      let c = class_of p.Packet.flow in
      let s = try Hashtbl.find delay c with Not_found -> Stats.create () in
      Stats.add s (departed -. p.Packet.born);
      Hashtbl.replace delay c s;
      Hashtbl.replace bits c
        ((try Hashtbl.find bits c with Not_found -> 0.0) +. float_of_int p.Packet.len));
  List.iter
    (fun f ->
      ignore
        (Source.cbr sim ~target:(Server.inject server) ~flow:f ~len:1600 ~rate:audio_rate
           ~start:0.0 ~stop:duration))
    audio_flows;
  List.iter
    (fun f ->
      ignore
        (Mpeg.vbr sim ~target:(Server.inject server) ~flow:f ~avg_rate:video_rate
           ~rng:(Rng.split rng) ~start:0.0 ~stop:duration ()))
    video_flows;
  List.iter
    (fun f ->
      ignore
        (Source.greedy sim ~server ~flow:f ~len:(8 * 1000) ~total:1_000_000 ~window:4
           ~start:0.0 ()))
    ftp_flows;
  Sim.run sim ~until:duration;
  (name, delay, bits)

let () =
  let weights' = weights in
  let runs =
    [
      run "FIFO" (Sfq_sched.Fifo.sched (Sfq_sched.Fifo.create ()));
      run "WFQ" (Sfq_sched.Wfq.sched (Sfq_sched.Wfq.create ~capacity weights'));
      run "SFQ" (Sfq_core.Sfq.sched (Sfq_core.Sfq.create weights'));
    ]
  in
  let table =
    Text_table.create
      [
        "discipline"; "audio avg ms"; "audio max ms"; "video avg ms"; "ftp Mb/s total";
      ]
  in
  List.iter
    (fun (name, delay, bits) ->
      let stats c = try Hashtbl.find delay c with Not_found -> Stats.create () in
      let tput c = (try Hashtbl.find bits c with Not_found -> 0.0) /. duration /. 1.0e6 in
      Text_table.add_row table
        [
          name;
          Text_table.cell_f ~decimals:2 (1000.0 *. Stats.mean (stats "audio"));
          Text_table.cell_f ~decimals:2 (1000.0 *. Stats.max_value (stats "audio"));
          Text_table.cell_f ~decimals:2 (1000.0 *. Stats.mean (stats "video"));
          Text_table.cell_f ~decimals:2 (tput "ftp");
        ])
    runs;
  print_endline
    "Integrated services gateway: 8 audio + 2 VBR video + 4 greedy ftp on 10 Mb/s";
  Text_table.print table;
  print_endline
    "(expect: FIFO lets ftp bursts inflate audio delay; WFQ delays low-rate audio\n\
    \ by ~l/r; SFQ keeps audio delay low while ftp still gets the leftover link.)"
