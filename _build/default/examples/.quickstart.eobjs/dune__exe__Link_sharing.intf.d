examples/link_sharing.mli:
