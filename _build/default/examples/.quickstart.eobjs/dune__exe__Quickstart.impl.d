examples/quickstart.ml: List Packet Printf Rate_process Server Sfq Sfq_base Sfq_core Sfq_netsim Sim Weights
