examples/quickstart.mli:
