examples/link_sharing.ml: Hsfq Rate_process Server Service_log Sfq_analysis Sfq_core Sfq_netsim Sfq_sched Sfq_util Sim Source Text_table
