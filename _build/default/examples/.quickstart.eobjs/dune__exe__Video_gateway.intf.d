examples/video_gateway.mli:
