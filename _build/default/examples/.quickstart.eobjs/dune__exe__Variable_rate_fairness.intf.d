examples/variable_rate_fairness.mli:
