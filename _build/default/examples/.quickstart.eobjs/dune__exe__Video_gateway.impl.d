examples/video_gateway.ml: Hashtbl List Mpeg Packet Rate_process Rng Server Sfq_base Sfq_core Sfq_netsim Sfq_sched Sfq_util Sim Source Stats Text_table Weights
