examples/variable_rate_fairness.ml: Fairness List Printf Rate_process Rng Server Service_log Sfq_analysis Sfq_base Sfq_core Sfq_netsim Sfq_sched Sfq_util Sim Source Text_table Weights
