examples/mesh.ml: Admission Float Hashtbl Net Packet Printf Rate_process Server Sfq Sfq_base Sfq_core Sfq_netsim Sfq_util Sim Source Text_table Weights
