examples/cpu_scheduler.mli:
