examples/mesh.mli:
