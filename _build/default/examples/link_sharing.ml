(* Hierarchical link sharing (§3): an ISP access link shared by two
   organizations, each running multiple service classes.

      root (45 Mb/s)
      ├── org A (weight 3)
      │   ├── A.realtime (weight 1, Delay EDD inside)
      │   └── A.bulk     (weight 2, FIFO inside)
      └── org B (weight 2)
          ├── B.web      (weight 1)
          └── B.bulk     (weight 1)

   Org B's traffic comes and goes; the hierarchy must (a) split the
   link 3:2 between the orgs while both are active, (b) give each org's
   classes their configured split of whatever the org currently holds,
   and (c) let an idle org's bandwidth flow to the other — all of which
   requires the intra-node scheduler to be fair at a fluctuating rate,
   i.e. SFQ (Example 3).

   Run with: dune exec examples/link_sharing.exe *)

open Sfq_util
open Sfq_core
open Sfq_netsim
open Sfq_analysis

let capacity = 45.0e6
let pkt_len = 8 * 1500

let () =
  let sim = Sim.create () in
  let h = Hsfq.create () in
  let org_a = Hsfq.add_class h ~parent:(Hsfq.root h) ~weight:3.0 in
  let org_b = Hsfq.add_class h ~parent:(Hsfq.root h) ~weight:2.0 in
  let fifo () = Sfq_sched.Fifo.sched (Sfq_sched.Fifo.create ()) in
  let a_rt =
    (* Real-time class: EDF inside, decoupling its delay from its
       throughput share (§3 "separation of delay and throughput"). *)
    Hsfq.add_leaf h ~parent:org_a ~weight:1.0
      (Sfq_sched.Delay_edd.sched
         (Sfq_sched.Delay_edd.create
            [ (1, { Sfq_sched.Delay_edd.rate = 2.0e6; deadline = 0.005; max_len = pkt_len }) ]))
  in
  let a_bulk = Hsfq.add_leaf h ~parent:org_a ~weight:2.0 (fifo ()) in
  let b_web = Hsfq.add_leaf h ~parent:org_b ~weight:1.0 (fifo ()) in
  let b_bulk = Hsfq.add_leaf h ~parent:org_b ~weight:1.0 (fifo ()) in
  Hsfq.set_classifier h
    (Hsfq.classifier_by_flow [ (1, a_rt); (2, a_bulk); (3, b_web); (4, b_bulk) ]);

  let server = Server.create sim ~name:"access" ~rate:(Rate_process.constant capacity)
      ~sched:(Hsfq.sched h) () in
  let log = Service_log.attach server in

  (* Org A busy the whole run; org B only during [10, 20). *)
  let total = 1_000_000 in
  ignore
    (Source.cbr sim ~target:(Server.inject server) ~flow:1 ~len:pkt_len ~rate:2.0e6
       ~start:0.0 ~stop:30.0);
  ignore (Source.greedy sim ~server ~flow:2 ~len:pkt_len ~total ~window:8 ~start:0.0 ());
  let b_budget = int_of_float (0.4 *. capacity *. 10.0 /. float_of_int pkt_len) in
  ignore (Source.greedy sim ~server ~flow:3 ~len:pkt_len ~total:(b_budget / 2) ~window:8 ~start:10.0 ());
  ignore (Source.greedy sim ~server ~flow:4 ~len:pkt_len ~total:(b_budget / 2) ~window:8 ~start:10.0 ());
  Sim.run sim ~until:30.0;

  let share flow ~t1 ~t2 =
    Service_log.service log flow ~t1 ~t2 /. (capacity *. (t2 -. t1))
  in
  let table =
    Text_table.create
      [ "phase"; "A.rt"; "A.bulk"; "B.web"; "B.bulk"; "expectation" ]
  in
  let row label t1 t2 expectation =
    Text_table.add_row table
      [
        label;
        Text_table.cell_pct (share 1 ~t1 ~t2);
        Text_table.cell_pct (share 2 ~t1 ~t2);
        Text_table.cell_pct (share 3 ~t1 ~t2);
        Text_table.cell_pct (share 4 ~t1 ~t2);
        expectation;
      ]
  in
  row "B idle [0,10)" 0.5 9.5 "A.rt ~4.4% (its offered load), A.bulk takes the rest";
  row "B active [10,20)" 10.5 19.5 "orgs 3:2; inside B 50/50 of B's 40%";
  row "B idle again" 20.5 29.5 "A recovers the full link";
  print_endline "Hierarchical link sharing on a 45 Mb/s access link (org A : org B = 3 : 2)";
  Text_table.print table
