(* SFQ as a CPU scheduler.

   The paper's authors went on to use start-time fair queueing for
   CPU scheduling (Goyal, Guo & Vin, OSDI '96) precisely because of the
   property demonstrated here: the "server" is a CPU whose capacity
   available to applications fluctuates (interrupts, kernel work), and
   SFQ's fairness needs no assumption about capacity.

   Model: "packets" are 1 ms work quanta; each thread is a flow with a
   weight (its CPU share). The CPU's effective speed fluctuates around
   80% of nominal. An interactive thread (low weight, intermittent)
   competes with batch threads — its scheduling latency is what an
   interactive user feels.

   Run with: dune exec examples/cpu_scheduler.exe *)

open Sfq_base
open Sfq_util
open Sfq_netsim

(* One "bit" = 1 us of work at nominal speed; a quantum is 1000 us. *)
let quantum = 1000
let duration = 5.0

let cpu seed =
  (* Effective speed wanders between 0.5x and 1.0x nominal: 1e6 us of
     work per second at full speed. *)
  Rate_process.fc_random ~c:0.75e6 ~delta:50_000.0 ~seg:0.005 ~spread:0.25e6
    ~rng:(Rng.create seed)

let run (name, sched) =
  let sim = Sim.create () in
  let server = Server.create sim ~name ~rate:(cpu 31) ~sched () in
  let latency = Stats.create () in
  let batch_done = ref 0 in
  Server.on_depart server (fun p ~start:_ ~departed ->
      if p.Packet.flow = 0 then Stats.add latency (departed -. p.Packet.born)
      else incr batch_done);
  (* Interactive thread: wakes every 50 ms, needs one quantum. *)
  ignore
    (Source.cbr sim ~target:(Server.inject server) ~flow:0 ~len:quantum
       ~rate:(float_of_int quantum /. 0.05)
       ~start:0.0 ~stop:duration);
  (* Three batch threads, always runnable. *)
  for flow = 1 to 3 do
    ignore
      (Source.greedy sim ~server ~flow ~len:quantum ~total:1_000_000 ~window:2 ~start:0.0 ())
  done;
  Sim.run sim ~until:duration;
  (name, Stats.mean latency, Stats.max_value latency, !batch_done)

let () =
  (* The interactive thread's weight is provisioned ABOVE its 2% demand
     (5% share) so its finish tags never run ahead of the virtual time;
     that is how a real system reserves for latency-sensitive work. *)
  let weights = Weights.of_fun (fun f -> if f = 0 then 0.05e6 else 0.2333e6) in
  let disciplines =
    [
      ("FIFO (run queue)", Sfq_sched.Fifo.sched (Sfq_sched.Fifo.create ()));
      ("round robin", Sfq_sched.Wrr.sched (Sfq_sched.Wrr.create ~credits:(fun _ -> 1) weights));
      ("SFQ", Sfq_core.Sfq.sched (Sfq_core.Sfq.create weights));
      ( "SFQ + interactive tie-break",
        Sfq_core.Sfq.sched
          (Sfq_core.Sfq.create
             ~tie:(Sfq_sched.Tag_queue.Low_rate (fun f -> Weights.get weights f))
             weights) );
    ]
  in
  let table =
    Text_table.create
      [ "scheduler"; "interactive avg ms"; "interactive max ms"; "batch quanta done" ]
  in
  List.iter
    (fun d ->
      let name, avg, max_v, batch = run d in
      Text_table.add_row table
        [
          name;
          Text_table.cell_f ~decimals:2 (1000.0 *. avg);
          Text_table.cell_f ~decimals:2 (1000.0 *. max_v);
          string_of_int batch;
        ])
    disciplines;
  print_endline
    "CPU with fluctuating effective speed; 1 interactive + 3 batch threads:";
  Text_table.print table;
  print_endline
    "(SFQ keeps interactive latency near one quantum without costing batch\n\
    \ throughput; the §2.3 low-rate tie-break shaves the tail further.)"
