(* Fairness over a variable-rate server — the property that sets SFQ
   apart (Theorem 1 holds with no assumption on capacity).

   The "link" models a shared wireless channel: its realizable rate
   wanders between 2 and 10 Mb/s (a Fluctuation Constrained process).
   Three stations with weights 1:1:2 are always backlogged. For each
   discipline the example prints the received throughput split and the
   empirical fairness index vs Theorem 1's bound.

   Run with: dune exec examples/variable_rate_fairness.exe *)

open Sfq_base
open Sfq_util
open Sfq_netsim
open Sfq_analysis

let duration = 30.0
let pkt_len = 8 * 1000
let rates = [ (1, 1.0e6); (2, 1.0e6); (3, 2.0e6) ]
let weights = Weights.of_list rates

let channel seed =
  Rate_process.fc_random ~c:6.0e6 ~delta:(float_of_int (20 * pkt_len)) ~seg:0.02
    ~spread:4.0e6 ~rng:(Rng.create seed)

let run (name, sched) =
  let sim = Sim.create () in
  let server = Server.create sim ~name ~rate:(channel 9) ~sched () in
  let log = Service_log.attach server in
  List.iter
    (fun (flow, _) ->
      ignore
        (Source.greedy sim ~server ~flow ~len:pkt_len ~total:1_000_000 ~window:8 ~start:0.0 ()))
    rates;
  Sim.run sim ~until:duration;
  let tput flow = Service_log.service log flow ~t1:0.0 ~t2:duration /. duration /. 1.0e6 in
  let h = Fairness.max_pairwise_h log ~rates ~until:duration ~exact:false in
  (name, tput 1, tput 2, tput 3, h)

let () =
  let l = float_of_int pkt_len in
  let bound = Sfq_core.Bounds.h_sfq ~lmax_f:l ~r_f:1.0e6 ~lmax_m:l ~r_m:1.0e6 in
  let disciplines =
    [
      ("SFQ", Sfq_core.Sfq.sched (Sfq_core.Sfq.create weights));
      ("WFQ(6Mb/s assumed)", Sfq_sched.Wfq.sched (Sfq_sched.Wfq.create ~capacity:6.0e6 weights));
      ("SCFQ", Sfq_sched.Scfq.sched (Sfq_sched.Scfq.create weights));
      ("DRR", Sfq_sched.Drr.sched (Sfq_sched.Drr.create ~quantum:(l /. 1.0e6) weights));
      ("VirtualClock", Sfq_sched.Virtual_clock.sched (Sfq_sched.Virtual_clock.create weights));
    ]
  in
  let table =
    Text_table.create
      [ "discipline"; "sta1 Mb/s"; "sta2 Mb/s"; "sta3 Mb/s"; "H (s)"; "Thm 1 bound (s)" ]
  in
  List.iter
    (fun d ->
      let name, t1, t2, t3, h = run d in
      Text_table.add_row table
        [
          name;
          Text_table.cell_f ~decimals:2 t1;
          Text_table.cell_f ~decimals:2 t2;
          Text_table.cell_f ~decimals:2 t3;
          Printf.sprintf "%.4f" h;
          Printf.sprintf "%.4f" bound;
        ])
    disciplines;
  print_endline
    "Three always-backlogged stations (weights 1:1:2) on a 2-10 Mb/s wireless channel:";
  Text_table.print table;
  print_endline "(all work-conserving disciplines split 1:1:2 over long windows;\n\
                 the H column shows who also keeps short windows fair.)"
