(* Strict JSON parsing + schema checks for BENCH_sched.json. See the
   mli for why this is hand-rolled and strict. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Bad of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/') ->
          Buffer.add_char b (Option.get (peek ()));
          advance ()
        | Some 'n' ->
          Buffer.add_char b '\n';
          advance ()
        | Some 't' ->
          Buffer.add_char b '\t';
          advance ()
        | Some ('b' | 'f' | 'r') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done
        | _ -> fail "bad escape");
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let chunk = String.sub s start (!pos - start) in
    match float_of_string_opt chunk with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" chunk)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or } in object"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected , or ] in array"
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field name = function
  | Obj kvs -> (
    match List.assoc_opt name kvs with
    | Some v -> v
    | None -> raise (Bad (Printf.sprintf "missing field %S" name)))
  | _ -> raise (Bad (Printf.sprintf "expected object around %S" name))

let check_ns ~series ~name row =
  match field name row with
  | Num ns when ns > 0.0 -> ()
  | Null -> ()  (* a failed estimate is allowed, but must be explicit *)
  | _ -> raise (Bad (Printf.sprintf "%s: %s must be positive or null" series name))

let check_pos_int ~series ~name row =
  match field name row with
  | Num f when Float.is_integer f && f > 0.0 -> ()
  | _ -> raise (Bad (Printf.sprintf "%s: %s must be a positive integer" series name))

let check_rows ~series ~depth rows =
  match rows with
  | List [] -> raise (Bad (Printf.sprintf "%s is empty" series))
  | List rows ->
    List.iter
      (fun row ->
        (match field "discipline" row with
        | Str _ -> ()
        | _ -> raise (Bad (series ^ ": discipline must be a string")));
        check_pos_int ~series ~name:"flows" row;
        check_ns ~series ~name:"ns_per_packet" row;
        check_ns ~series ~name:"ns_p50" row;
        check_ns ~series ~name:"ns_p99" row;
        if depth then check_pos_int ~series ~name:"depth" row)
      rows
  | _ -> raise (Bad (Printf.sprintf "%s must be an array" series))

let check_meta meta =
  List.iter
    (fun name ->
      match field name meta with
      | Str s when s <> "" -> ()
      | _ -> raise (Bad (Printf.sprintf "meta: %s must be a non-empty string" name)))
    [ "git_sha"; "timestamp_utc"; "hostname" ];
  match field "domains" meta with
  | Num f when Float.is_integer f && f >= 1.0 -> ()
  | _ -> raise (Bad "meta: domains must be a positive integer")

(* The observability contract: tracing must be attachable everywhere,
   so a disabled tracer on the hot path has to be nearly free. The
   checked-in trajectory (and every CI bench run) carries the proof,
   and this check fails the file if the proof ever degrades. *)
let disabled_overhead_limit_pct = 5.0

let check_overhead rows =
  let series = "tracing_overhead" in
  match rows with
  | List [] -> raise (Bad (Printf.sprintf "%s is empty" series))
  | List rows ->
    List.iter
      (fun row ->
        (match field "mode" row with
        | Str ("untraced" | "disabled" | "ring" | "jsonl") -> ()
        | Str s -> raise (Bad (Printf.sprintf "%s: unknown mode %S" series s))
        | _ -> raise (Bad (series ^ ": mode must be a string")));
        check_pos_int ~series ~name:"flows" row;
        check_pos_int ~series ~name:"depth" row;
        check_ns ~series ~name:"ns_per_packet" row;
        check_ns ~series ~name:"ns_p50" row;
        check_ns ~series ~name:"ns_p99" row;
        match (field "mode" row, field "overhead_pct" row) with
        | Str "untraced", Null -> ()
        | Str "untraced", _ ->
          raise (Bad (series ^ ": untraced overhead_pct must be null"))
        | Str "disabled", Num pct when pct >= disabled_overhead_limit_pct ->
          raise
            (Bad
               (Printf.sprintf
                  "%s: disabled-tracer overhead %.1f%% breaches the %.0f%% budget"
                  series pct disabled_overhead_limit_pct))
        | _, Num _ -> ()
        | Str "disabled", _ ->
          raise (Bad (series ^ ": disabled overhead_pct must be a number"))
        | _, Null -> ()
        | _ -> raise (Bad (series ^ ": overhead_pct must be a number or null")))
      rows;
    let has mode =
      List.exists (fun row -> field "mode" row = Str mode) rows
    in
    List.iter
      (fun mode ->
        if not (has mode) then
          raise (Bad (Printf.sprintf "%s: missing mode %S" series mode)))
      [ "untraced"; "disabled"; "ring"; "jsonl" ]
  | _ -> raise (Bad (Printf.sprintf "%s must be an array" series))

(* The fastpath series carries three hard promises of the fixed-point
   layer, and the file is rejected the moment any of them decays:
   - sfq-fast allocates nothing per packet in steady state (the column
     is the measured minor-words rate, emitted at 1e-3 resolution, so
     "zero" means exactly 0.000);
   - sfq-fast is actually faster than float sfq at the largest flow
     count — a fast path that stops being fast is a regression, not a
     wobble;
   - every sp-pifo row carries its measured fairness budget (worst
     Theorem-1 H and the exact-SFQ bound it is compared against), so
     the cost of approximate rank order is never reported without its
     price tag. *)
let check_fastpath rows =
  let series = "fastpath" in
  match rows with
  | List [] -> raise (Bad (Printf.sprintf "%s is empty" series))
  | List rows ->
    List.iter
      (fun row ->
        (match field "discipline" row with
        | Str _ -> ()
        | _ -> raise (Bad (series ^ ": discipline must be a string")));
        check_pos_int ~series ~name:"flows" row;
        check_ns ~series ~name:"ns_per_packet" row;
        check_ns ~series ~name:"ns_p50" row;
        check_ns ~series ~name:"ns_p99" row;
        (match field "allocations_per_packet" row with
        | Num a when a >= 0.0 -> ()
        | _ ->
          raise (Bad (series ^ ": allocations_per_packet must be a non-negative number")));
        match field "discipline" row with
        | Str "sfq-fast" -> (
          match field "allocations_per_packet" row with
          | Num 0.0 -> ()
          | Num a ->
            raise
              (Bad
                 (Printf.sprintf
                    "%s: sfq-fast allocates %.3f words/packet — the zero-allocation \
                     contract is broken"
                    series a))
          | _ -> raise (Bad (series ^ ": sfq-fast allocations_per_packet must be a number")))
        | Str "sp-pifo" ->
          (match field "measured_unfairness" row with
          | Num h when h > 0.0 -> ()
          | _ ->
            raise
              (Bad
                 (series
                ^ ": sp-pifo rows must carry a positive measured_unfairness budget")));
          (match field "fairness_bound" row with
          | Num b when b > 0.0 -> ()
          | _ -> raise (Bad (series ^ ": sp-pifo rows must carry a positive fairness_bound")))
        | _ -> ())
      rows;
    let ns_of disc flows =
      List.find_map
        (fun row ->
          if field "discipline" row = Str disc && field "flows" row = Num flows then
            match field "ns_per_packet" row with Num ns -> Some ns | _ -> None
          else None)
        rows
    in
    let max_flows =
      List.fold_left
        (fun acc row -> match field "flows" row with Num f -> Float.max acc f | _ -> acc)
        0.0 rows
    in
    (match (ns_of "sfq" max_flows, ns_of "sfq-fast" max_flows) with
    | Some slow, Some fast when fast >= slow ->
      raise
        (Bad
           (Printf.sprintf
              "%s: sfq-fast (%.0f ns) does not beat sfq (%.0f ns) at %.0f flows — the \
               fast path is not fast"
              series fast slow max_flows))
    | Some _, Some _ -> ()
    | _ ->
      raise
        (Bad
           (Printf.sprintf "%s: missing sfq or sfq-fast row at %.0f flows" series max_flows)));
    List.iter
      (fun disc ->
        if not (List.exists (fun row -> field "discipline" row = Str disc) rows) then
          raise (Bad (Printf.sprintf "%s: missing discipline %S" series disc)))
      [ "sfq"; "sfq-fast"; "scfq"; "scfq-fast"; "virtual-clock"; "vc-fast"; "sp-pifo" ]
  | _ -> raise (Bad (Printf.sprintf "%s must be an array" series))

(* The pifo series prices the programmable runtime against the
   hand-written fast path it absorbs. Generality is allowed to cost a
   bounded dispatch premium, never an allocation: pifo-sfq must report
   exactly zero allocations per packet, and its ns/packet must stay
   within [pifo_overhead_limit] of sfq-fast's at the largest flow
   count the series measures (the sfq-fast reference comes from the
   fastpath series of the same file). *)
let pifo_overhead_limit = 1.15

let check_pifo ~fastpath rows =
  let series = "pifo" in
  let ns_of rows disc flows =
    List.find_map
      (fun row ->
        if field "discipline" row = Str disc && field "flows" row = Num flows then
          match field "ns_per_packet" row with Num ns -> Some ns | _ -> None
        else None)
      rows
  in
  match rows with
  | List [] -> raise (Bad (Printf.sprintf "%s is empty" series))
  | List rows ->
    List.iter
      (fun row ->
        (match field "discipline" row with
        | Str _ -> ()
        | _ -> raise (Bad (series ^ ": discipline must be a string")));
        check_pos_int ~series ~name:"flows" row;
        check_ns ~series ~name:"ns_per_packet" row;
        check_ns ~series ~name:"ns_p50" row;
        check_ns ~series ~name:"ns_p99" row;
        (match field "allocations_per_packet" row with
        | Num a when a >= 0.0 -> ()
        | _ ->
          raise (Bad (series ^ ": allocations_per_packet must be a non-negative number")));
        match field "discipline" row with
        | Str "pifo-sfq" -> (
          match field "allocations_per_packet" row with
          | Num 0.0 -> ()
          | Num a ->
            raise
              (Bad
                 (Printf.sprintf
                    "%s: pifo-sfq allocates %.3f words/packet — the rank-program \
                     zero-allocation contract is broken"
                    series a))
          | _ -> raise (Bad (series ^ ": pifo-sfq allocations_per_packet must be a number")))
        | _ -> ())
      rows;
    List.iter
      (fun disc ->
        if not (List.exists (fun row -> field "discipline" row = Str disc) rows) then
          raise (Bad (Printf.sprintf "%s: missing discipline %S" series disc)))
      [ "pifo-sfq"; "pifo-scfq"; "pifo-vc" ];
    let max_flows =
      List.fold_left
        (fun acc row -> match field "flows" row with Num f -> Float.max acc f | _ -> acc)
        0.0 rows
    in
    let fast_ns =
      match fastpath with List frows -> ns_of frows "sfq-fast" max_flows | _ -> None
    in
    (match (ns_of rows "pifo-sfq" max_flows, fast_ns) with
    | Some p, Some f when p > pifo_overhead_limit *. f ->
      raise
        (Bad
           (Printf.sprintf
              "%s: pifo-sfq (%.0f ns) exceeds the %.0f%% budget over sfq-fast (%.0f \
               ns) at %.0f flows — the runtime premium is over budget"
              series p
              (100.0 *. (pifo_overhead_limit -. 1.0))
              f max_flows))
    | Some _, Some _ -> ()
    | None, _ ->
      raise (Bad (Printf.sprintf "%s: missing pifo-sfq row at %.0f flows" series max_flows))
    | _, None ->
      raise
        (Bad
           (Printf.sprintf
              "%s: no sfq-fast reference row in fastpath at %.0f flows" series max_flows)))
  | _ -> raise (Bad (Printf.sprintf "%s must be an array" series))

(* The parallel series is the trajectory's record of the sfq.par
   harness: wall time of the oracle acceptance sweep serially and
   through the pool. [identical] is the determinism witness — the two
   runs' outcome digests matched — and a file claiming a speedup
   without it is rejected: the contract is "same bytes, less time",
   never "less time". *)
let check_parallel rows =
  let series = "parallel" in
  match rows with
  | List [] -> raise (Bad (Printf.sprintf "%s is empty" series))
  | List rows ->
    List.iter
      (fun row ->
        (match field "series" row with
        | Str s when s <> "" -> ()
        | _ -> raise (Bad (series ^ ": series must be a non-empty string")));
        check_pos_int ~series ~name:"cells" row;
        check_pos_int ~series ~name:"domains" row;
        (match field "serial_s" row with
        | Num s when s > 0.0 -> ()
        | _ -> raise (Bad (series ^ ": serial_s must be positive")));
        (match field "parallel_s" row with
        | Num s when s > 0.0 -> ()
        | _ -> raise (Bad (series ^ ": parallel_s must be positive")));
        (match field "speedup" row with
        | Num s when s > 0.0 -> ()
        | _ -> raise (Bad (series ^ ": speedup must be positive")));
        match field "identical" row with
        | Bool true -> ()
        | Bool false ->
          raise
            (Bad
               (series
              ^ ": identical is false — the parallel sweep diverged from the \
                 serial reference"))
        | _ -> raise (Bad (series ^ ": identical must be a boolean")))
      rows
  | _ -> raise (Bad (Printf.sprintf "%s must be an array" series))

(* The netsim series records whole-network simulation scale (E27): a
   churned star draining 10^5-10^6 flows per discipline. Two promises
   are gated: the three disciplines that share the composed Thm 8/9
   oracle are all present (a row that silently vanishes would hide a
   scale regression), and the recorded peak RSS stays under the bound
   the row itself carries — the "memory is bounded by the window, not
   the flow count" claim, checked on every trajectory. peak_rss_kb may
   be null only when /proc is unavailable (non-Linux), never silently
   absent. *)
let check_netsim rows =
  let series = "netsim" in
  match rows with
  | List [] -> raise (Bad (Printf.sprintf "%s is empty" series))
  | List rows ->
    List.iter
      (fun row ->
        (match field "discipline" row with
        | Str _ -> ()
        | _ -> raise (Bad (series ^ ": discipline must be a string")));
        check_pos_int ~series ~name:"flows" row;
        check_pos_int ~series ~name:"hops" row;
        (match field "packets_per_sec" row with
        | Num pps when pps > 0.0 -> ()
        | _ -> raise (Bad (series ^ ": packets_per_sec must be positive")));
        check_pos_int ~series ~name:"rss_bound_kb" row;
        match (field "peak_rss_kb" row, field "rss_bound_kb" row) with
        | Null, _ -> ()  (* /proc unavailable: allowed, but explicit *)
        | Num peak, Num bound when Float.is_integer peak && peak > 0.0 ->
          if peak > bound then
            raise
              (Bad
                 (Printf.sprintf
                    "%s: peak_rss_kb %.0f exceeds the %.0f kB bound — netsim memory \
                     is no longer window-bounded"
                    series peak bound))
        | _ -> raise (Bad (series ^ ": peak_rss_kb must be a positive integer or null")))
      rows;
    List.iter
      (fun disc ->
        if not (List.exists (fun row -> field "discipline" row = Str disc) rows) then
          raise (Bad (Printf.sprintf "%s: missing discipline %S" series disc)))
      [ "sfq"; "sfq-fast"; "pifo-sfq" ]
  | _ -> raise (Bad (Printf.sprintf "%s must be an array" series))

(* The replay series is E28's universality scoreboard: per-tier cell
   and ok counts from the schedule-replay harness. The counts are
   deterministic (frozen pools, fixed grid seeds), so the gates are
   exact: the single/net/kills tiers must be all-ok — LSTF replays
   every recording and both seeded mutants die — and the control tier
   (SFQ re-running DRR recordings) must have at least one diverging
   cell, or the negative control is vacuous and the net rows prove
   nothing. *)
let check_replay rows =
  let series = "replay" in
  match rows with
  | List [] -> raise (Bad (Printf.sprintf "%s is empty" series))
  | List rows ->
    List.iter
      (fun row ->
        (match field "tier" row with
        | Str ("single" | "net" | "control" | "kills") -> ()
        | Str s -> raise (Bad (Printf.sprintf "%s: unknown tier %S" series s))
        | _ -> raise (Bad (series ^ ": tier must be a string")));
        check_pos_int ~series ~name:"cells" row;
        let ok =
          match field "ok" row with
          | Num f when Float.is_integer f && f >= 0.0 -> f
          | _ -> raise (Bad (series ^ ": ok must be a non-negative integer"))
        in
        let cells = match field "cells" row with Num f -> f | _ -> 0.0 in
        if ok > cells then
          raise (Bad (series ^ ": ok exceeds cells"));
        match field "tier" row with
        | Str "control" ->
          if ok < 1.0 then
            raise
              (Bad
                 (series
                ^ ": no control cell diverged — the negative control is \
                   vacuous and the replay rows prove nothing"))
        | Str tier ->
          if ok <> cells then
            raise
              (Bad
                 (Printf.sprintf
                    "%s: %s tier has %.0f/%.0f cells ok — a replay \
                     regression or a surviving mutant"
                    series tier ok cells))
        | _ -> ())
      rows;
    List.iter
      (fun tier ->
        if not (List.exists (fun row -> field "tier" row = Str tier) rows) then
          raise (Bad (Printf.sprintf "%s: missing tier %S" series tier)))
      [ "single"; "net"; "control"; "kills" ]
  | _ -> raise (Bad (Printf.sprintf "%s must be an array" series))

let validate contents =
  match
    let json = parse contents in
    (match field "schema" json with
    | Str "sfq-bench-sched/7" -> ()
    | Str "sfq-bench-sched/6" ->
      raise (Bad "stale schema sfq-bench-sched/6: regenerate with bench main.exe micro")
    | _ -> raise (Bad "unexpected schema"));
    check_meta (field "meta" json);
    check_rows ~series:"flow_scaling" ~depth:false (field "flow_scaling" json);
    check_rows ~series:"depth_scaling" ~depth:true (field "depth_scaling" json);
    check_fastpath (field "fastpath" json);
    check_pifo ~fastpath:(field "fastpath" json) (field "pifo" json);
    check_overhead (field "tracing_overhead" json);
    check_parallel (field "parallel" json);
    check_netsim (field "netsim" json);
    check_replay (field "replay" json)
  with
  | () -> Ok ()
  | exception Bad msg -> Error msg
