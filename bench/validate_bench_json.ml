(* Smoke validator for BENCH_sched.json (the `bench-quick` alias runs
   it after `main.exe micro quick`): thin CLI over Bench_json, which
   holds the strict parser and the schema checks so the test suite can
   exercise them directly.

   Usage: validate_bench_json.exe FILE *)

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_sched.json" in
  let ic =
    try open_in_bin path
    with Sys_error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1
  in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  match Bench_json.validate contents with
  | Ok () -> Printf.printf "%s: ok\n" path
  | Error msg ->
    Printf.eprintf "%s: INVALID: %s\n" path msg;
    exit 1
