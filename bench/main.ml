(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md's experiment index E1-E13), then
   runs the micro-benchmarks behind Table 1's computational-efficiency
   column (E14) and writes the machine-readable perf trajectory
   BENCH_sched.json (see EXPERIMENTS.md, "E14 methodology").

   dune exec bench/main.exe                -- everything
   dune exec bench/main.exe -- quick       -- smaller workloads
   dune exec bench/main.exe -- micro       -- only the Bechamel suite
   dune exec bench/main.exe -- micro quick -- bench smoke (tiny quota)
   dune exec bench/main.exe -- micro domains=4   -- fan the matrix out

   domains=N (or the SFQ_DOMAINS environment variable; the token wins)
   runs the flow/depth measurement matrix through the sfq.par pool, N
   rows concurrently, and sizes the parallel leg of the oracle-sweep
   timing series. The tracing-overhead series never parallelizes: the
   5% disabled-tracer gate is a ratio of co-scheduled timings and stays
   honest only when nothing else competes for the core (audit: pinned
   to the submitting domain below).

   The micro suite always writes BENCH_sched.json to the working
   directory: ns/packet per discipline x flow count ("flow_scaling"),
   plus a fixed-flow-count series over growing per-flow backlogs
   ("depth_scaling") that shows per-packet cost is flat in queued
   packets and logarithmic in flows for the Flow_heap schedulers —
   the paper's O(log F) claim (S2.2, Table 1) — against the frozen
   seed O(log Q) implementation (`sfq-ref`).

   Timing is a bare monotonic-clock loop (median over several timed
   batches, Gc.compact before sampling, workload-induced GC inside the
   window). A sampling harness that stabilizes the GC between samples
   would shift the collector work caused by one discipline's allocation
   pattern out of its own measurement — exactly the cost a per-packet
   boxed-entry heap pays and a structure-of-arrays heap avoids. *)

open Sfq_util
open Sfq_base
open Sfq_sched
open Sfq_experiments

let line = String.make 78 '='

let section title =
  Printf.printf "%s\n%s\n%s\n\n" line title line

(* ------------------------------------------------------------------ *)
(* E1-E13: the paper's tables and figures                               *)

let run_experiments ~quick =
  section "SFQ paper reproduction: tables and figures (DESIGN.md E1-E13)";
  Ex1_wfq_unfair.(print (run ()));
  Ex2_variable_rate.(print (run ()));
  Fig1_tcp_fairness.(print (run ()));
  Table1_fairness.(print (run ~quick ()));
  Fig2a_delay_reduction.(print (run ~quick ()));
  Fig2b_avg_delay.(print (run ~duration:(if quick then 50.0 else 200.0) ()));
  Scfq_delay_gap.(print (run ()));
  Fig3_link_sharing.(print (run ~pkts_per_conn:(if quick then 1500 else 4000) ()));
  Hier_sharing.(print (run ()));
  Delay_shifting.(print (run ()));
  Bound_validation.(print (run ()));
  End_to_end.(print (run ()));
  Fair_airport_exp.(print (run ()));
  Priority_residual.(print (run ()));
  Tie_break_ablation.(print (run ()));
  Gsfq_video.(print (run ()));
  E2e_ebf.(print (run ()));
  Busy_rule_ablation.(print (run ()));
  Fig1_topology.(print (run ()))

(* ------------------------------------------------------------------ *)
(* E14: per-packet cost of each discipline (Table 1, complexity column) *)

let flow_counts = [ 4; 64; 512 ]
let depth_flow_count = 512
let depths = [ 1; 4; 16; 64 ]

(* The frozen seed SFQ (single per-packet heap, closure comparator,
   O(log Q)) as a Sched.t, so the JSON trajectory always carries the
   old-vs-new comparison. *)
let sfq_ref_sched weights =
  let t = Ref_sched.Sfq_ref.create weights in
  {
    Sched.name = "sfq-ref";
    enqueue = (fun ~now pkt -> Ref_sched.Sfq_ref.enqueue t ~now pkt);
    dequeue = (fun ~now -> Ref_sched.Sfq_ref.dequeue t ~now);
    peek = (fun () -> Ref_sched.Sfq_ref.peek t);
    size = (fun () -> Ref_sched.Sfq_ref.size t);
    backlog = (fun flow -> Ref_sched.Sfq_ref.backlog t flow);
    evict = Sched.no_evict;
    close_flow = (fun ~now:_ _ -> []);
  }

let disciplines nflows =
  let weights = Weights.uniform 1000.0 in
  let capacity = 1000.0 *. float_of_int nflows in
  [
    ("fifo", fun () -> Disc.make Disc.Fifo weights);
    ("sfq", fun () -> Disc.make Disc.Sfq weights);
    ("sfq-ref", fun () -> sfq_ref_sched weights);
    ("scfq", fun () -> Disc.make Disc.Scfq weights);
    ("wfq-fluid", fun () -> Disc.make (Disc.Wfq { capacity }) weights);
    ("wfq-real", fun () -> Disc.make (Disc.Wfq_real { capacity }) weights);
    ("fqs", fun () -> Disc.make (Disc.Fqs { capacity }) weights);
    ("wf2q", fun () -> Disc.make (Disc.Wf2q { capacity }) weights);
    ("drr", fun () -> Disc.make (Disc.Drr { quantum = 1000.0 }) weights);
    ("wrr", fun () -> Disc.make Disc.Wrr weights);
    ("virtual-clock", fun () -> Disc.make Disc.Virtual_clock weights);
    ("fair-airport", fun () -> Disc.make Disc.Fair_airport weights);
    ("sfq-fast", fun () -> Disc.make Disc.Sfq_fast weights);
    ("scfq-fast", fun () -> Disc.make Disc.Scfq_fast weights);
    ("vc-fast", fun () -> Disc.make Disc.Virtual_clock_fast weights);
    ("sp-pifo", fun () -> Disc.make (Disc.Sp_pifo { banks = 8 }) weights);
  ]

(* Only the tag-ordered O(log .) disciplines are interesting for the
   backlog-depth series; round-robin and FIFO are O(1) by construction
   and WFQ variants are dominated by the fluid simulation. *)
let depth_disciplines =
  let weights = Weights.uniform 1000.0 in
  [
    ("sfq", fun () -> Disc.make Disc.Sfq weights);
    ("sfq-ref", fun () -> sfq_ref_sched weights);
    ("scfq", fun () -> Disc.make Disc.Scfq weights);
    ("virtual-clock", fun () -> Disc.make Disc.Virtual_clock weights);
    ("sfq-fast", fun () -> Disc.make Disc.Sfq_fast weights);
    ("sp-pifo", fun () -> Disc.make (Disc.Sp_pifo { banks = 8 }) weights);
  ]

type measurement = {
  disc : string;
  flows : int;
  depth : int;
  ns : float;  (** median over timed batches *)
  p50 : float;
  p99 : float;
}

let elapsed_ns t0 t1 = Int64.to_float (Int64.sub t1 t0)

let median samples =
  let a = Array.of_list samples in
  Array.sort Float.compare a;
  a.(Array.length a / 2)

(* median + interpolated batch percentiles; p99 over a handful of
   batches is effectively the worst batch — a noise indicator, kept in
   the JSON so trajectory diffs can tell a real regression from a
   wobbly run *)
let stats_of samples =
  let a = Array.of_list samples in
  (median samples, Stats.percentile a 50.0, Stats.percentile a 99.0)

(* Steady state: the queue holds [depth] packets per flow; one measured
   op enqueues one packet (round-robin over flows) and dequeues one,
   preserving the backlog. The clock passed in advances so time-driven
   disciplines do real work. [steady_stepper] prefills the backlog and
   returns the per-op closure; the tracing-overhead series reuses it
   against wrapped schedulers. *)
let steady_stepper ~nflows ~depth sched =
  let seqs = Array.make nflows 0 in
  let now = ref 0.0 in
  let flow = ref 0 in
  let step () =
    let f = !flow in
    flow := (f + 1) mod nflows;
    seqs.(f) <- seqs.(f) + 1;
    now := !now +. 1e-4;
    sched.Sched.enqueue ~now:!now (Packet.make ~flow:f ~seq:seqs.(f) ~len:1000 ~born:!now ());
    ignore (sched.Sched.dequeue ~now:!now)
  in
  for f = 0 to nflows - 1 do
    for _ = 1 to depth do
      seqs.(f) <- seqs.(f) + 1;
      sched.Sched.enqueue ~now:0.0 (Packet.make ~flow:f ~seq:seqs.(f) ~len:1000 ~born:0.0 ())
    done
  done;
  step

let timed_batch step batch_ops =
  let t0 = Monotonic_clock.now () in
  for _ = 1 to batch_ops do
    step ()
  done;
  let t1 = Monotonic_clock.now () in
  elapsed_ns t0 t1 /. float_of_int batch_ops

(* Batch ns/op samples, reported as median (headline) + p50/p99. *)
let steady_samples ~quick ~nflows ~depth make_sched =
  let batches, batch_ops = if quick then (3, 1_000) else (5, 20_000) in
  let step = steady_stepper ~nflows ~depth (make_sched ()) in
  for _ = 1 to batch_ops do
    step ()
  done;
  Gc.compact ();
  let samples = ref [] in
  for _ = 1 to batches do
    samples := timed_batch step batch_ops :: !samples
  done;
  !samples

(* Fill/drain: enqueue nflows x depth packets, then drain the queue —
   every packet pays one enqueue and one dequeue against the full
   backlog, the per-packet cost of the paper's Table 1. One untimed
   round first so rings and heaps reach their final capacity. *)
let fill_drain_samples ~quick ~nflows ~depth make_sched =
  let rounds = if quick then 2 else 7 in
  let sched = make_sched () in
  let npk = nflows * depth in
  let round () =
    let now = ref 0.0 in
    for f = 0 to nflows - 1 do
      for s = 1 to depth do
        now := !now +. 1e-5;
        sched.Sched.enqueue ~now:!now (Packet.make ~flow:f ~seq:s ~len:1000 ~born:!now ())
      done
    done;
    for _ = 1 to npk do
      now := !now +. 1e-5;
      ignore (sched.Sched.dequeue ~now:!now)
    done
  in
  round ();
  Gc.compact ();
  let samples = ref [] in
  for _ = 1 to rounds do
    let t0 = Monotonic_clock.now () in
    round ();
    let t1 = Monotonic_clock.now () in
    samples := (elapsed_ns t0 t1 /. float_of_int npk) :: !samples
  done;
  !samples

(* ------------------------------------------------------------------ *)
(* E25: the fixed-point fast path — ns/packet and allocations/packet,
   and the measured fairness budget of the approximate sp-pifo.        *)

type fastpath_row = {
  fp_disc : string;
  fp_flows : int;
  fp_ns : float;
  fp_p50 : float;
  fp_p99 : float;
  fp_allocs : float;  (* minor-heap words per enqueue+dequeue *)
  fp_budget : Sfq_oracle.Monitor.fairness_budget option;  (* sp-pifo only *)
}

let fastpath_flow_counts = [ 64; 512 ]

(* Native steppers: preallocated packets, constant clock, exn-based
   dequeues where the module offers them. The float schedulers run
   through the very same stepper shape (their own native
   enqueue/dequeue), so the sfq-vs-sfq-fast rows isolate the scheduler
   interior — tag arithmetic, heap, per-flow state, option boxes — and
   never charge packet construction to either side. Depth-1 prefill
   matches the flow_scaling series. *)
let fastpath_steppers nflows =
  let weights = Weights.uniform 1000.0 in
  let native enq deq =
    let pkts =
      Array.init nflows (fun f -> Packet.make ~flow:f ~seq:1 ~len:1000 ~born:0.0 ())
    in
    Array.iter enq pkts;
    let flow = ref 0 in
    fun () ->
      let f = !flow in
      flow := (f + 1) mod nflows;
      enq pkts.(f);
      deq ()
  in
  let open Sfq_fastpath in
  [
    ( "sfq",
      fun () ->
        let t = Sfq_core.Sfq.create weights in
        native
          (fun p -> Sfq_core.Sfq.enqueue t ~now:0.0 p)
          (fun () -> ignore (Sfq_core.Sfq.dequeue t ~now:0.0)) );
    ( "sfq-fast",
      fun () ->
        let t = Sfq_fast.create weights in
        native
          (fun p -> Sfq_fast.enqueue t ~now:0.0 p)
          (fun () -> ignore (Sfq_fast.dequeue_exn t)) );
    ( "scfq",
      fun () ->
        let t = Scfq.create weights in
        native
          (fun p -> Scfq.enqueue t ~now:0.0 p)
          (fun () -> ignore (Scfq.dequeue t ~now:0.0)) );
    ( "scfq-fast",
      fun () ->
        let t = Scfq_fast.create weights in
        native
          (fun p -> Scfq_fast.enqueue t ~now:0.0 p)
          (fun () -> ignore (Scfq_fast.dequeue_exn t)) );
    ( "virtual-clock",
      fun () ->
        let t = Virtual_clock.create weights in
        native
          (fun p -> Virtual_clock.enqueue t ~now:0.0 p)
          (fun () -> ignore (Virtual_clock.dequeue t ~now:0.0)) );
    ( "vc-fast",
      fun () ->
        let t = Virtual_clock_fast.create weights in
        native
          (fun p -> Virtual_clock_fast.enqueue t ~now:0.0 p)
          (fun () -> ignore (Virtual_clock_fast.dequeue_exn t)) );
    ( "sp-pifo",
      fun () ->
        let t = Sp_pifo.create weights in
        native
          (fun p -> Sp_pifo.enqueue t ~now:0.0 p)
          (fun () -> ignore (Sp_pifo.dequeue_exn t)) );
  ]

(* E26: the same disciplines as rank programs on the shared PIFO
   runtime (lib/pifo). Identical stepper shape and flow counts as the
   fastpath series, so pifo-sfq vs sfq-fast isolates the runtime
   premium — closure dispatch per rank call, the regs cell, the
   runtime's own tie cache — on top of the very same tag arithmetic
   and heap. The validator holds this premium to 15% and the
   allocation column to exactly zero. *)
let pifo_steppers nflows =
  let weights = Weights.uniform 1000.0 in
  let open Sfq_pifo in
  let native prog =
    let t = Pifo_sched.create prog in
    let pkts =
      Array.init nflows (fun f -> Packet.make ~flow:f ~seq:1 ~len:1000 ~born:0.0 ())
    in
    Array.iter (fun p -> Pifo_sched.enqueue t ~now:0.0 p) pkts;
    let flow = ref 0 in
    fun () ->
      let f = !flow in
      flow := (f + 1) mod nflows;
      Pifo_sched.enqueue t ~now:0.0 pkts.(f);
      ignore (Pifo_sched.dequeue_exn t)
  in
  [
    ("pifo-sfq", fun () -> native (Programs.sfq weights));
    ("pifo-scfq", fun () -> native (Programs.scfq weights));
    ("pifo-vc", fun () -> native (Programs.virtual_clock weights));
  ]

(* Allocation rate measured over its own window, after warmup and a
   compaction: cumulative minor words divided by ops. Gc.minor_words
   itself boxes one float per call — a constant ~3 words across the
   whole window, which the per-op division pushes below the 1e-3
   resolution the JSON reports. A genuinely zero-allocation stepper
   therefore prints 0.000 exactly; anything that allocates even one
   word per op prints >= 1.000. *)
let allocs_per_op step ops =
  let w0 = Gc.minor_words () in
  for _ = 1 to ops do
    step ()
  done;
  let w1 = Gc.minor_words () in
  (w1 -. w0) /. float_of_int ops

(* The measured fairness budget of the approximate scheduler: replay
   sp-pifo over frozen theorem-pool workloads under the relaxed
   Theorem-1 oracle and keep the worst pair. This is the number the
   trajectory carries next to sp-pifo's ns/packet — the price of the
   approximation in the same file as its speed. *)
let sp_pifo_budget ~quick () =
  let module O = Sfq_oracle in
  let pool = O.Suite.theorem_pool in
  let n = if quick then 12 else List.length pool in
  let worst = ref O.Monitor.empty_budget in
  List.iteri
    (fun i (w : O.Workload.t) ->
      if i < n then begin
        let s =
          Sfq_fastpath.Sp_pifo.create (Weights.of_list ~default:1.0 w.O.Workload.weights)
        in
        let m, budget = O.Monitor.fairness_measured ~rate:(O.Workload.rate_of w) () in
        ignore (O.Run.fixed_rate ~sched:(Sfq_fastpath.Sp_pifo.sched s) ~monitors:[ m ] w);
        let b = budget () in
        if b.O.Monitor.max_excess > !worst.O.Monitor.max_excess then worst := b
      end)
    pool;
  !worst

let fastpath_rows ~quick () =
  let batches, batch_ops = if quick then (3, 1_000) else (5, 20_000) in
  let alloc_ops = if quick then 10_000 else 100_000 in
  let budget = sp_pifo_budget ~quick () in
  List.concat_map
    (fun nflows ->
      List.map
        (fun (name, make_step) ->
          let step = make_step () in
          for _ = 1 to batch_ops do
            step ()
          done;
          Gc.compact ();
          let allocs = allocs_per_op step alloc_ops in
          let samples = ref [] in
          for _ = 1 to batches do
            samples := timed_batch step batch_ops :: !samples
          done;
          let ns, p50, p99 = stats_of !samples in
          {
            fp_disc = name;
            fp_flows = nflows;
            fp_ns = ns;
            fp_p50 = p50;
            fp_p99 = p99;
            fp_allocs = allocs;
            fp_budget = (if name = "sp-pifo" then Some budget else None);
          })
        (fastpath_steppers nflows))
    fastpath_flow_counts

let pifo_rows ~quick () =
  let batches, batch_ops = if quick then (3, 1_000) else (5, 20_000) in
  let alloc_ops = if quick then 10_000 else 100_000 in
  List.concat_map
    (fun nflows ->
      List.map
        (fun (name, make_step) ->
          let step = make_step () in
          for _ = 1 to batch_ops do
            step ()
          done;
          Gc.compact ();
          let allocs = allocs_per_op step alloc_ops in
          let samples = ref [] in
          for _ = 1 to batches do
            samples := timed_batch step batch_ops :: !samples
          done;
          let ns, p50, p99 = stats_of !samples in
          {
            fp_disc = name;
            fp_flows = nflows;
            fp_ns = ns;
            fp_p50 = p50;
            fp_p99 = p99;
            fp_allocs = allocs;
            fp_budget = None;
          })
        (pifo_steppers nflows))
    fastpath_flow_counts

(* ------------------------------------------------------------------ *)
(* E22: cost of the sfq.obs tracer on the SFQ hot path                  *)

type overhead_row = {
  mode : string;
  o_ns : float;
  o_p50 : float;
  o_p99 : float;
  overhead_pct : float option;  (** None for the untraced baseline *)
}

let overhead_flows = 512
let overhead_depth = 64

(* SFQ at 512 flows x 64-deep backlog under four tracer configurations:
   no wrapper at all, a disabled tracer (the always-on production
   shape: one branch per record call, vtime never sampled), a live ring
   sink, and a live JSONL sink streaming to a scratch file.

   Two noise defenses, both of which this series needs because the
   validator enforces a hard budget on the "disabled" row:
   - the modes are timed interleaved — one batch of each per round — so
     clock drift and thermal throttling land on every mode equally
     rather than biasing whichever ran last;
   - each mode runs several independent scheduler instances and reports
     the fastest one (by median batch). Two instances of the very same
     code routinely differ by several percent from allocation-order
     cache/TLB layout alone; that penalty only ever inflates, so
     min-over-instances estimates the intrinsic cost. *)
let tracing_overhead ~quick () =
  let instances = 5 in
  let batches, batch_ops = if quick then (10, 20_000) else (10, 25_000) in
  let weights = Weights.uniform 1000.0 in
  let traced tracer =
    let t = Sfq_core.Sfq.create weights in
    Sfq_core.Sfq.set_tag_hook t
      ~active:(Sfq_obs.Tracer.active_flag tracer)
      (Sfq_obs.Tracer.tag_hook tracer);
    Sfq_obs.Tracer.wrap
      ~vtime:(fun () -> Sfq_core.Sfq.vtime t)
      tracer
      (Sfq_core.Sfq.sched t)
  in
  let scratch = Filename.temp_file "sfq_bench_trace" ".jsonl" in
  let scratch_oc = open_out scratch in
  let modes =
    [
      ("untraced", fun () -> Disc.make Disc.Sfq weights);
      ("disabled", fun () -> traced (Sfq_obs.Tracer.disabled ()));
      ("ring", fun () -> traced (Sfq_obs.Tracer.create ~capacity:65536 ()));
      ("jsonl",
       fun () -> traced (Sfq_obs.Tracer.create ~sink:(Sfq_obs.Tracer.Jsonl scratch_oc) ()));
    ]
  in
  (* instance-major creation order so same-mode instances do not sit in
     adjacent allocations *)
  let states =
    List.concat_map
      (fun _ ->
        List.map
          (fun (mode, make) ->
            let step =
              steady_stepper ~nflows:overhead_flows ~depth:overhead_depth (make ())
            in
            for _ = 1 to batch_ops do
              step ()
            done;
            (mode, step, ref []))
          modes)
      (List.init instances (fun i -> i))
  in
  Gc.compact ();
  for _ = 1 to batches do
    List.iter
      (fun (_, step, samples) -> samples := timed_batch step batch_ops :: !samples)
      states
  done;
  close_out scratch_oc;
  (try Sys.remove scratch with Sys_error _ -> ());
  let all_samples mode =
    List.concat_map
      (fun (m, _, samples) -> if m = mode then !samples else [])
      states
  in
  let base = ref Float.nan in
  List.map
    (fun (mode, _) ->
      let samples = all_samples mode in
      (* the headline is the fastest batch of the fastest instance:
         measurement noise (scheduler preemption, cache eviction by a
         neighboring instance, frequency excursions) is strictly
         additive, so the minimum is the robust estimator of intrinsic
         cost — medians of identical code were seen several percent
         apart on a contended host. p50/p99 over every batch keep the
         noise picture honest. *)
      let ns = List.fold_left Float.min Float.infinity samples in
      let a = Array.of_list samples in
      let p50 = Stats.percentile a 50.0 and p99 = Stats.percentile a 99.0 in
      if mode = "untraced" then base := ns;
      let overhead_pct =
        if mode = "untraced" then None
        else Some (100.0 *. (ns -. !base) /. !base)
      in
      { mode; o_ns = ns; o_p50 = p50; o_p99 = p99; overhead_pct })
    modes

(* ------------------------------------------------------------------ *)
(* E23: serial vs parallel wall time of the oracle acceptance sweep     *)

type parallel_row = {
  p_series : string;
  p_cells : int;
  p_domains : int;
  serial_s : float;
  parallel_s : float;
  speedup : float;
  identical : bool;  (** parallel sweep digest == serial sweep digest *)
}

(* The full oracle acceptance sweep (every (discipline, workload) cell
   behind test_oracle) timed twice: once serially, once through an
   [domains]-wide pool. The digest comparison rides along so the
   trajectory file itself witnesses the determinism contract — a
   speedup bought by reordering results would flip [identical] and fail
   validation. Wall times, not per-op medians: the sweep is one
   irregular bag of tasks and elapsed seconds is the quantity the
   parallel harness exists to shrink. *)
let parallel_sweep ~domains () =
  let cells = Sfq_oracle.Suite.all_cells () in
  let digest_of outcomes =
    Digest.to_hex (Digest.string (Sfq_oracle.Run.sweep_digest cells outcomes))
  in
  let timed f =
    let t0 = Monotonic_clock.now () in
    let v = f () in
    (digest_of v, elapsed_ns t0 (Monotonic_clock.now ()) /. 1e9)
  in
  let serial_digest, serial_s = timed (fun () -> Sfq_oracle.Run.sweep cells) in
  let par_digest, parallel_s =
    timed (fun () -> Sfq_oracle.Run.sweep ~domains cells)
  in
  {
    p_series = "oracle-sweep";
    p_cells = List.length cells;
    p_domains = domains;
    serial_s;
    parallel_s;
    speedup = serial_s /. parallel_s;
    identical = String.equal serial_digest par_digest;
  }

(* ------------------------------------------------------------------ *)
(* E27: network-scale simulation throughput and memory (netsim)        *)

type netsim_row = {
  nt_disc : string;
  nt_flows : int;
  nt_hops : int;
  nt_pps : float;  (** delivered packets per wall-clock second *)
  nt_peak_rss_kb : int option;  (** VmRSS after the run ([None] off Linux) *)
  nt_bound_kb : int;
}

(* The RSS ceiling the netsim rows are gated against (validator:
   peak_rss_kb <= rss_bound_kb). Live state is bounded by the churn
   window, not the flow count; the slack above it is GC pacing at the
   netsim allocation rate — measured ~110 MB for the 10^5-flow star,
   so 1 GiB holds with an order of magnitude to spare. *)
let netsim_rss_bound_kb = 1_048_576

let vm_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    let rec go () =
      match input_line ic with
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmRSS:" then
          Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d" Option.some
        else go ()
      | exception End_of_file -> None
    in
    let r = go () in
    close_in ic;
    r

(* One churned scaling star per discipline (the E27 cell with the
   composed Thm 8/9 oracle attached): wall-clock throughput of the
   whole network simulation — event loop, two hops of scheduling,
   monitors, registry churn — not a scheduler-interior stepper. Rows
   run serially: RSS is a process-global reading. A monitor violation
   fails the bench run outright; a trajectory must never record
   throughput from a simulation that broke its own oracle. *)
let netsim_rows ~quick () =
  let flows = if quick then 20_000 else 100_000 in
  List.map
    (fun (name, disc) ->
      let s = Net_sweep.scale_star ~flows ~disc () in
      Gc.compact ();
      let t0 = Monotonic_clock.now () in
      let o = Net_sweep.run_scenario s in
      let wall_s = elapsed_ns t0 (Monotonic_clock.now ()) /. 1e9 in
      (match o.Net_sweep.violations with
      | [] -> ()
      | v :: _ ->
        failwith
          (Printf.sprintf "netsim %s: monitor violation at %g: %s: %s" s.Net_sweep.label
             v.Sfq_oracle.Monitor.at v.Sfq_oracle.Monitor.monitor
             v.Sfq_oracle.Monitor.what));
      Gc.compact ();
      {
        nt_disc = name;
        nt_flows = flows;
        nt_hops = 2;  (* star: access link + core link *)
        nt_pps = float_of_int o.Net_sweep.delivered /. Float.max wall_s 1e-9;
        nt_peak_rss_kb = vm_rss_kb ();
        nt_bound_kb = netsim_rss_bound_kb;
      })
    [ ("sfq", Disc.Sfq); ("sfq-fast", Disc.Sfq_fast); ("pifo-sfq", Disc.Pifo_sfq) ]

(* ------------------------------------------------------------------ *)
(* E28: schedule-replay universality scoreboard (replay)               *)

type replay_row = {
  rp_tier : string;  (** single | net | control | kills *)
  rp_cells : int;
  rp_ok : int;
}

(* One row per E28 tier: how many cells ran and how many met the
   tier's expectation (single/net/kills: replay succeeds, mutants die;
   control: SFQ delivers late). The counts are deterministic — the
   same frozen pools and grid seeds as the golden corpus — so the
   trajectory gates on them exactly: single, net and kills must be
   all-ok, and at least one control cell must diverge, or the
   universality claim (and its negative control) has regressed. *)
let replay_rows () =
  let r = Lstf_replay.run () in
  let count rows = (List.length rows, List.length (List.filter (fun (x : Lstf_replay.row) -> x.Lstf_replay.ok) rows)) in
  List.map
    (fun (tier, rows) ->
      let cells, ok = count rows in
      { rp_tier = tier; rp_cells = cells; rp_ok = ok })
    [
      ("single", r.Lstf_replay.single);
      ("net", r.Lstf_replay.net);
      ("control", r.Lstf_replay.control);
      ("kills", r.Lstf_replay.kills);
    ]

(* --- JSON emission (by hand: no JSON library in the allowed set) --- *)

(* JSON numbers cannot be NaN/inf; a failed estimate becomes null. *)
let json_float ns =
  if Float.is_nan ns || not (Float.is_finite ns) then "null"
  else Printf.sprintf "%.3f" ns

(* Provenance for trajectory diffs: which commit, when, on what box.
   Every lookup degrades to "unknown" rather than failing the run. *)
let git_sha () =
  try
    let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with Unix.Unix_error _ | Sys_error _ -> "unknown"

let utc_timestamp () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let hostname () = try Unix.gethostname () with Unix.Unix_error _ -> "unknown"

let emit_json ~quick ~domains ~flow_scaling ~depth_scaling ~fastpath ~pifo ~overhead
    ~parallel ~netsim ~replay path =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"schema\": \"sfq-bench-sched/7\",\n  \"quick\": %b,\n  \"unit\": \"ns per enqueue+dequeue\",\n"
       quick);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"meta\": {\"git_sha\": %S, \"timestamp_utc\": %S, \"hostname\": %S, \"domains\": %d},\n"
       (git_sha ()) (utc_timestamp ()) (hostname ()) domains);
  Buffer.add_string buf "  \"flow_scaling\": [\n";
  List.iteri
    (fun i m ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"discipline\": %S, \"flows\": %d, \"ns_per_packet\": %s, \
            \"ns_p50\": %s, \"ns_p99\": %s}"
           m.disc m.flows (json_float m.ns) (json_float m.p50) (json_float m.p99)))
    flow_scaling;
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf "  \"depth_scaling\": [\n";
  List.iteri
    (fun i m ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"discipline\": %S, \"flows\": %d, \"depth\": %d, \"queued_packets\": %d, \
            \"ns_per_packet\": %s, \"ns_p50\": %s, \"ns_p99\": %s}"
           m.disc m.flows m.depth (m.flows * m.depth) (json_float m.ns)
           (json_float m.p50) (json_float m.p99)))
    depth_scaling;
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf "  \"fastpath\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      let budget_fields =
        match r.fp_budget with
        | None -> ""
        | Some (b : Sfq_oracle.Monitor.fairness_budget) ->
          Printf.sprintf
            ", \"measured_unfairness\": %s, \"fairness_bound\": %s, \
             \"unfairness_excess\": %s, \"pairs_checked\": %d"
            (json_float b.Sfq_oracle.Monitor.max_h)
            (json_float b.Sfq_oracle.Monitor.max_bound)
            (json_float b.Sfq_oracle.Monitor.max_excess)
            b.Sfq_oracle.Monitor.pairs_checked
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"discipline\": %S, \"flows\": %d, \"ns_per_packet\": %s, \
            \"ns_p50\": %s, \"ns_p99\": %s, \"allocations_per_packet\": %s%s}"
           r.fp_disc r.fp_flows (json_float r.fp_ns) (json_float r.fp_p50)
           (json_float r.fp_p99) (json_float r.fp_allocs) budget_fields))
    fastpath;
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf "  \"pifo\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"discipline\": %S, \"flows\": %d, \"ns_per_packet\": %s, \
            \"ns_p50\": %s, \"ns_p99\": %s, \"allocations_per_packet\": %s}"
           r.fp_disc r.fp_flows (json_float r.fp_ns) (json_float r.fp_p50)
           (json_float r.fp_p99) (json_float r.fp_allocs)))
    pifo;
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf "  \"tracing_overhead\": [\n";
  List.iteri
    (fun i (r : overhead_row) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"mode\": %S, \"flows\": %d, \"depth\": %d, \"ns_per_packet\": %s, \
            \"ns_p50\": %s, \"ns_p99\": %s, \"overhead_pct\": %s}"
           r.mode overhead_flows overhead_depth (json_float r.o_ns)
           (json_float r.o_p50) (json_float r.o_p99)
           (match r.overhead_pct with
           | None -> "null"
           | Some p -> json_float p)))
    overhead;
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf "  \"parallel\": [\n";
  List.iteri
    (fun i (r : parallel_row) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"series\": %S, \"cells\": %d, \"domains\": %d, \"serial_s\": %s, \
            \"parallel_s\": %s, \"speedup\": %s, \"identical\": %b}"
           r.p_series r.p_cells r.p_domains (json_float r.serial_s)
           (json_float r.parallel_s) (json_float r.speedup) r.identical))
    parallel;
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf "  \"netsim\": [\n";
  List.iteri
    (fun i (r : netsim_row) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"discipline\": %S, \"flows\": %d, \"hops\": %d, \
            \"packets_per_sec\": %s, \"peak_rss_kb\": %s, \"rss_bound_kb\": %d}"
           r.nt_disc r.nt_flows r.nt_hops (json_float r.nt_pps)
           (match r.nt_peak_rss_kb with None -> "null" | Some kb -> string_of_int kb)
           r.nt_bound_kb))
    netsim;
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf "  \"replay\": [\n";
  List.iteri
    (fun i (r : replay_row) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf "    {\"tier\": %S, \"cells\": %d, \"ok\": %d}" r.rp_tier
           r.rp_cells r.rp_ok))
    replay;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "wrote %s\n\n" path

(* Fan a measurement matrix over the domain pool, one row per task.
   Results land by task index so the row order (and the emitted JSON)
   is identical at every domain count; only the timings themselves see
   the co-scheduling. audit (parallel safety): every row builds its own
   scheduler instance inside the task and the samplers touch no shared
   structure — Gc.compact inside a worker is process-global but only
   perturbs timing, never results. *)
let matrix_rows ~domains specs measure =
  if domains <= 1 then List.map measure specs
  else
    Array.to_list
      (Sfq_par.Pool.run ~domains ~f:(fun _ spec -> measure spec) (Array.of_list specs))

let run_micro ~quick ~domains () =
  section "E14: per-packet enqueue+dequeue cost (Table 1 complexity column)";
  let flow_specs =
    List.concat_map
      (fun nflows -> List.map (fun (name, make) -> (nflows, name, make)) (disciplines nflows))
      flow_counts
  in
  let flow_scaling =
    matrix_rows ~domains flow_specs (fun (nflows, name, make) ->
        let ns, p50, p99 = stats_of (steady_samples ~quick ~nflows ~depth:1 make) in
        { disc = name; flows = nflows; depth = 1; ns; p50; p99 })
  in
  let table = Text_table.create [ "discipline"; "flows"; "ns/packet" ] in
  List.iter
    (fun m ->
      Text_table.add_row table
        [ m.disc; string_of_int m.flows; Printf.sprintf "%.0f" m.ns ])
    flow_scaling;
  Text_table.print table;
  print_endline
    "(SFQ, SCFQ and Virtual Clock keep one heap entry per backlogged flow —\n\
    \ O(log F) per packet, the paper's Table 1 bound; sfq-ref is the seed\n\
    \ per-packet O(log Q) heap kept as a baseline. WFQ's fluid clock adds the\n\
    \ GPS simulation on top; DRR/WRR are O(1); Fair Airport runs two\n\
    \ schedulers. The paper's claim: SFQ has SCFQ's cost, below WFQ's.)";
  print_newline ();
  section
    (Printf.sprintf "E14b: fill/drain cost vs per-flow backlog depth (%d flows)"
       depth_flow_count);
  let depth_specs =
    List.concat_map
      (fun depth -> List.map (fun (name, make) -> (depth, name, make)) depth_disciplines)
      depths
  in
  let depth_scaling =
    matrix_rows ~domains depth_specs (fun (depth, name, make) ->
        let ns, p50, p99 =
          stats_of (fill_drain_samples ~quick ~nflows:depth_flow_count ~depth make)
        in
        { disc = name; flows = depth_flow_count; depth; ns; p50; p99 })
  in
  let dtable = Text_table.create [ "discipline"; "depth"; "queued pkts"; "ns/packet" ] in
  List.iter
    (fun m ->
      Text_table.add_row dtable
        [
          m.disc;
          string_of_int m.depth;
          string_of_int (m.flows * m.depth);
          Printf.sprintf "%.0f" m.ns;
        ])
    depth_scaling;
  Text_table.print dtable;
  print_endline
    "(Each packet pays one enqueue and one dequeue against the full backlog.\n\
    \ Per-flow-heap disciplines are flat in the backlog depth — their heap\n\
    \ holds one entry per flow regardless of queued packets; the seed sfq-ref\n\
    \ heap grows with every queued packet and pays O(log Q), plus the GC\n\
    \ tax of one boxed heap entry per packet.)";
  print_newline ();
  section "E25: fixed-point fast path — speed, allocations, fairness budget";
  (* audit (parallel safety): deliberately serial at any domain count —
     the allocation counter is a process-global Gc statistic, and the
     sfq-vs-sfq-fast ns gate in bench_json is only honest when the two
     rows contend with nothing but each other. *)
  let fastpath = fastpath_rows ~quick () in
  let ftable =
    Text_table.create
      [ "discipline"; "flows"; "ns/packet"; "allocs/packet"; "unfairness (bound)" ]
  in
  List.iter
    (fun r ->
      Text_table.add_row ftable
        [
          r.fp_disc;
          string_of_int r.fp_flows;
          Printf.sprintf "%.0f" r.fp_ns;
          Printf.sprintf "%.3f" r.fp_allocs;
          (match r.fp_budget with
          | None -> "-"
          | Some b ->
            Printf.sprintf "%.3f (%.3f)" b.Sfq_oracle.Monitor.max_h
              b.Sfq_oracle.Monitor.max_bound);
        ])
    fastpath;
  Text_table.print ftable;
  print_endline
    "(Native-API steppers: preallocated packets, constant clock, exn dequeues,\n\
    \ so the float-vs-fixed-point rows compare scheduler interiors only. The\n\
    \ fast schedulers allocate nothing in steady state — the validator fails\n\
    \ the file if sfq-fast's allocation column ever leaves 0.000, or if it\n\
    \ stops beating float sfq at 512 flows. sp-pifo's unfairness column is the\n\
    \ worst measured Theorem-1 excess over the frozen theorem pool: the price\n\
    \ of approximate rank order, recorded next to its speed.)";
  print_newline ();
  section "E26: PIFO rank-program runtime vs the hand-written fast path";
  (* audit (parallel safety): serial for the same reason as E25 — the
     allocation counter is process-global and the 15% pifo-sfq-vs-
     sfq-fast gate in bench_json needs an uncontended core. *)
  let pifo = pifo_rows ~quick () in
  let ptable0 =
    Text_table.create [ "discipline"; "flows"; "ns/packet"; "allocs/packet" ]
  in
  List.iter
    (fun r ->
      Text_table.add_row ptable0
        [
          r.fp_disc;
          string_of_int r.fp_flows;
          Printf.sprintf "%.0f" r.fp_ns;
          Printf.sprintf "%.3f" r.fp_allocs;
        ])
    pifo;
  Text_table.print ptable0;
  print_endline
    "(The same disciplines expressed as ~20-line rank programs on the shared\n\
    \ PIFO runtime (lib/pifo), under the same stepper as E25. The gap to the\n\
    \ corresponding -fast row is the price of programmability: one closure\n\
    \ dispatch per rank call against preallocated per-flow state. The\n\
    \ validator rejects the file if pifo-sfq drifts more than 15% above\n\
    \ sfq-fast at the largest flow count or ever allocates per packet.)";
  print_newline ();
  section
    (Printf.sprintf "E22: sfq.obs tracer overhead (SFQ, %d flows x %d deep)"
       overhead_flows overhead_depth);
  (* audit (parallel safety): deliberately NOT run through the pool,
     at any domain count. The series is a ratio of interleaved timings
     and the 5% disabled gate in bench_json only means something when
     the four modes contend with nothing but each other. *)
  let overhead = tracing_overhead ~quick () in
  let otable =
    Text_table.create [ "mode"; "ns/packet"; "p50"; "p99"; "overhead %" ]
  in
  List.iter
    (fun (r : overhead_row) ->
      Text_table.add_row otable
        [
          r.mode;
          Printf.sprintf "%.0f" r.o_ns;
          Printf.sprintf "%.0f" r.o_p50;
          Printf.sprintf "%.0f" r.o_p99;
          (match r.overhead_pct with
          | None -> "-"
          | Some p -> Printf.sprintf "%+.1f" p);
        ])
    overhead;
  Text_table.print otable;
  print_endline
    "(\"disabled\" is the shape a production build would ship: the wrapper\n\
    \ installed but the tracer off — one branch per record call, v(t) never\n\
    \ sampled. The validator fails the trajectory if its overhead reaches 5%.\n\
    \ \"ring\" adds SoA stores into the event ring; \"jsonl\" formats and\n\
    \ writes every event to a scratch file.)";
  print_newline ();
  section "E23: oracle acceptance sweep, serial vs parallel (sfq.par)";
  let parallel = [ parallel_sweep ~domains () ] in
  let ptable =
    Text_table.create
      [ "series"; "cells"; "domains"; "serial s"; "parallel s"; "speedup"; "identical" ]
  in
  List.iter
    (fun (r : parallel_row) ->
      Text_table.add_row ptable
        [
          r.p_series;
          string_of_int r.p_cells;
          string_of_int r.p_domains;
          Printf.sprintf "%.3f" r.serial_s;
          Printf.sprintf "%.3f" r.parallel_s;
          Printf.sprintf "%.2fx" r.speedup;
          string_of_bool r.identical;
        ])
    parallel;
  Text_table.print ptable;
  print_endline
    "(Wall time of the full oracle acceptance sweep — every (discipline,\n\
    \ workload) monitor cell — serially and through a domains-wide sfq.par\n\
    \ pool. \"identical\" is the determinism witness: both runs hash every\n\
    \ departure and monitor verdict to the same digest, so the speedup\n\
    \ column can only be bought with real parallelism, never reordering.\n\
    \ Speedup tracks the number of cores actually online, not domains.)";
  print_newline ();
  section "E27: network-scale simulation throughput (churned star, netsim)";
  (* audit (parallel safety): serial — the peak_rss_kb column is a
     process-global /proc reading and only means something when one
     simulation owns the heap at a time. *)
  let netsim = netsim_rows ~quick () in
  let ntable =
    Text_table.create [ "discipline"; "flows"; "hops"; "pkts/s"; "rss kB (bound)" ]
  in
  List.iter
    (fun (r : netsim_row) ->
      Text_table.add_row ntable
        [
          r.nt_disc;
          string_of_int r.nt_flows;
          string_of_int r.nt_hops;
          Printf.sprintf "%.0f" r.nt_pps;
          (match r.nt_peak_rss_kb with
          | None -> Printf.sprintf "- (%d)" r.nt_bound_kb
          | Some kb -> Printf.sprintf "%d (%d)" kb r.nt_bound_kb);
        ])
    netsim;
  Text_table.print ntable;
  print_endline
    "(Whole-simulation throughput: a 64-leaf star draining the given number of\n\
    \ churned flows through a 4096-id window, with the composed Thm 8/9 delay\n\
    \ oracle and the network conservation probes attached — a violation fails\n\
    \ the bench run. Live state is bounded by the window, not the flow count;\n\
    \ the validator rejects the file if peak RSS crosses the recorded bound.)";
  print_newline ();
  section "E28: LSTF schedule-replay universality scoreboard";
  let replay = replay_rows () in
  let rtable = Text_table.create [ "tier"; "cells"; "ok" ] in
  List.iter
    (fun (r : replay_row) ->
      Text_table.add_row rtable
        [ r.rp_tier; string_of_int r.rp_cells; string_of_int r.rp_ok ])
    replay;
  Text_table.print rtable;
  print_endline
    "(Each tier counts its E28 cells and how many met the tier's expectation:\n\
    \ single/net replays succeed, seeded mutants die, and at least one SFQ\n\
    \ negative-control cell delivers late. The counts are deterministic, so\n\
    \ the validator gates on them exactly — a replay regression or a vacuous\n\
    \ control flips the file to invalid.)";
  print_newline ();
  emit_json ~quick ~domains ~flow_scaling ~depth_scaling ~fastpath ~pifo ~overhead
    ~parallel ~netsim ~replay "BENCH_sched.json"

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "quick" args in
  let micro_only = List.mem "micro" args in
  (* domains=N token beats SFQ_DOMAINS beats 1; the CI parallel leg
     sets the environment variable rather than editing the command. *)
  let domains =
    let of_tok t = int_of_string_opt (String.sub t 8 (String.length t - 8)) in
    let tok =
      List.find_map
        (fun a ->
          if String.length a > 8 && String.sub a 0 8 = "domains=" then of_tok a else None)
        args
    in
    match tok with
    | Some d when d >= 1 -> d
    | Some _ ->
      prerr_endline "bench: domains= must be >= 1";
      exit 2
    | None -> (
      match Option.bind (Sys.getenv_opt "SFQ_DOMAINS") int_of_string_opt with
      | Some d when d >= 1 -> d
      | _ -> 1)
  in
  if not micro_only then run_experiments ~quick;
  run_micro ~quick ~domains ()
