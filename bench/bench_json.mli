(** Parser and schema checker for [BENCH_sched.json], the machine-readable
    bench trajectory emitted by [main.exe micro]. Split out of the
    [validate_bench_json] CLI so unit tests can exercise acceptance and
    rejection without spawning a process.

    The parser is a strict recursive-descent JSON reader — no JSON
    library is in the allowed dependency set. Strictness matters: a
    truncated file, a bare [nan] (illegal JSON, which
    [Printf "%f"]-style emitters can produce), or trailing garbage must
    all be rejected, because the bench harness's output is consumed by
    machines. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Bad of string

val parse : string -> json
(** Parse a complete JSON document.
    @raise Bad on any syntax error, including trailing garbage. *)

val field : string -> json -> json
(** [field name obj] extracts a member.
    @raise Bad if [obj] is not an object or lacks [name]. *)

val check_rows : series:string -> depth:bool -> json -> unit
(** Validate one scaling series: a non-empty array of rows, each with a
    string [discipline], a positive-integer [flows], positive-or-null
    [ns_per_packet]/[ns_p50]/[ns_p99], and (when [depth]) a
    positive-integer [depth].
    @raise Bad on the first offending row. *)

val disabled_overhead_limit_pct : float
(** The budget the disabled-tracer mode must stay under (5%): the
    observability layer's promise that leaving the wrapper installed in
    a production build costs nothing measurable. *)

val pifo_overhead_limit : float
(** The multiplicative budget the rank-program SFQ must stay within of
    hand-written sfq-fast ns/packet (1.15): programmability may cost a
    bounded dispatch premium, never more. *)

val validate : string -> (unit, string) result
(** [validate contents] checks a whole document: well-formed JSON,
    [schema = "sfq-bench-sched/7"] (the previous /6 is
    rejected as stale — a /7 file must carry the replay series), a [meta] block with non-empty
    [git_sha]/[timestamp_utc]/[hostname] and a positive-integer
    [domains], the [flow_scaling] and [depth_scaling] series, a
    [fastpath] series carrying all seven fixed-point-vs-float
    disciplines — in which sfq-fast must report exactly zero
    allocations per packet and a lower ns/packet than float sfq at the
    largest flow count, and every sp-pifo row must carry its positive
    measured-unfairness budget and fairness bound — a [pifo] series
    carrying the pifo-sfq/pifo-scfq/pifo-vc rank-program rows, in
    which pifo-sfq must report exactly zero allocations per packet and
    stay within {!pifo_overhead_limit} of the fastpath series'
    sfq-fast at the largest flow count, a [tracing_overhead] series
    carrying all four modes (untraced/disabled/ring/jsonl) whose
    disabled row must respect {!disabled_overhead_limit_pct}, and a
    [parallel] series (the serial-vs-pool oracle-sweep timing) every
    row of which must carry [identical = true] — the witness that the
    parallel sweep reproduced the serial digest byte for byte — and a
    [netsim] series (E27 whole-network scale: churned-star rows for
    sfq, sfq-fast and pifo-sfq, all three required) whose
    [packets_per_sec] must be positive and whose [peak_rss_kb] (a
    positive integer, or null only where /proc is unavailable) must
    not exceed the row's own [rss_bound_kb] — the "memory is bounded
    by the churn window, not the flow count" gate — and a [replay]
    series (E28's schedule-replay scoreboard: one row per tier with
    integer [cells]/[ok] counts, all four tiers
    single/net/control/kills required) in which the single, net and
    kills tiers must be all-ok (LSTF replays every recording; both
    seeded mutants die) and the control tier must have at least one
    diverging cell — a vacuous negative control invalidates the file.
    Returns [Error msg] instead of raising. *)
