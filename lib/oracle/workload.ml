type arrival = { at : float; flow : int; len : int; rate : float option }
type reweight = { at : float; flow : int; rate : float }
type churn = { at : float; flow : int }
type rate_change = { at : float; capacity : float }

type buffer = {
  per_flow : int option;
  aggregate : int option;
  policy : Sfq_base.Buffered.policy;
}

type t = {
  capacity : float;
  weights : (int * float) list;
  arrivals : arrival list;
  reweights : reweight list;
  churn : churn list;
  rate_changes : rate_change list;
  buffer : buffer option;
}

let flows t = List.map fst t.weights

let rate_of t flow =
  match List.assoc_opt flow t.weights with Some r -> r | None -> 0.0

let lmax t flow =
  List.fold_left
    (fun acc (a : arrival) ->
      if a.flow = flow then Float.max acc (float_of_int a.len) else acc)
    0.0 t.arrivals

let pp ppf t =
  Format.fprintf ppf "@[<v>capacity %g@," t.capacity;
  Format.fprintf ppf "weights %s@,"
    (String.concat ", "
       (List.map (fun (f, r) -> Printf.sprintf "%d:%g" f r) t.weights));
  List.iter
    (fun (a : arrival) ->
      Format.fprintf ppf "t=%-8g flow %d len %d%s@," a.at a.flow a.len
        (match a.rate with None -> "" | Some r -> Printf.sprintf " rate %g" r))
    t.arrivals;
  List.iter
    (fun (r : reweight) ->
      Format.fprintf ppf "t=%-8g reweight flow %d -> %g@," r.at r.flow r.rate)
    t.reweights;
  List.iter
    (fun (c : churn) -> Format.fprintf ppf "t=%-8g close flow %d@," c.at c.flow)
    t.churn;
  List.iter
    (fun (r : rate_change) ->
      Format.fprintf ppf "t=%-8g capacity -> %g@," r.at r.capacity)
    t.rate_changes;
  (match t.buffer with
  | None -> ()
  | Some b ->
    Format.fprintf ppf "buffer %s per_flow=%s aggregate=%s@,"
      (Sfq_base.Buffered.policy_name b.policy)
      (match b.per_flow with None -> "inf" | Some n -> string_of_int n)
      (match b.aggregate with None -> "inf" | Some n -> string_of_int n));
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t

let max_len = 1000
let len_choices = [ 100; 200; 500; 1000 ]

let gen ?(reweights = false) ?(rate_overrides = true) ?(churn = false)
    ?(overload = false) ?(rate_fluct = false) () =
  let open QCheck.Gen in
  let* capacity = oneofl [ 100.0; 1_000.0; 8_000.0 ] in
  let* nflows = int_range 1 5 in
  let* raw = list_repeat nflows (oneofl [ 0.5; 1.0; 2.0; 4.0; 8.0 ]) in
  let* util = float_range 0.5 0.95 in
  let total = List.fold_left ( +. ) 0.0 raw in
  let weights =
    List.mapi (fun i w -> (i + 1, w /. total *. util *. capacity)) raw
  in
  let flow_ids = List.map fst weights in
  let srv = float_of_int max_len /. capacity in
  let gap =
    frequency
      [
        (4, pure 0.0);
        (3, float_bound_inclusive srv);
        (2, float_bound_inclusive (5.0 *. srv));
        (1, float_range (5.0 *. srv) (20.0 *. srv));
      ]
  in
  let one =
    let* g = gap in
    let* flow = oneofl flow_ids in
    let* len = oneofl len_choices in
    let* scale =
      if rate_overrides then
        frequency
          [ (9, pure None); (1, map (fun s -> Some s) (float_range 0.3 1.0)) ]
      else pure None
    in
    pure (g, flow, len, scale)
  in
  let* n = int_range 5 80 in
  let* raws = list_repeat n one in
  let clock = ref 0.0 in
  let arrivals =
    List.map
      (fun (g, flow, len, scale) ->
        clock := !clock +. g;
        let rate = Option.map (fun s -> s *. List.assoc flow weights) scale in
        { at = !clock; flow; len; rate })
      raws
  in
  let horizon = !clock in
  let* rws =
    if not reweights then pure []
    else
      let one_rw =
        let* at = float_bound_inclusive (Float.max horizon srv) in
        let* flow = oneofl flow_ids in
        let* factor = oneofl [ 0.5; 2.0 ] in
        pure { at; flow; rate = factor *. List.assoc flow weights }
      in
      let* k = int_range 0 2 in
      map
        (List.sort (fun (a : reweight) b -> compare a.at b.at))
        (list_repeat k one_rw)
  in
  (* The stress draws come AFTER every pre-existing draw and consume no
     randomness when switched off ([pure]), so the frozen deterministic
     pools (fixed seeds) stay byte-identical. *)
  let span = Float.max horizon (5.0 *. srv) in
  let* ch =
    if not churn then pure []
    else
      let one_c =
        let* at = float_bound_inclusive span in
        let* flow = oneofl flow_ids in
        pure ({ at; flow } : churn)
      in
      let* k = int_range 1 4 in
      map (List.sort (fun (a : churn) b -> compare a.at b.at)) (list_repeat k one_c)
  in
  let* rcs =
    if not rate_fluct then pure []
    else
      let one_rc =
        let* at = float_bound_inclusive span in
        let* factor = oneofl [ 0.5; 0.8; 1.25 ] in
        pure { at; capacity = factor *. capacity }
      in
      let* k = int_range 0 2 in
      map
        (List.sort (fun (a : rate_change) b -> compare a.at b.at))
        (list_repeat k one_rc)
  in
  let* buffer =
    if not overload then pure None
    else
      let* per_flow = oneofl [ Some 1; Some 2; Some 4; None ] in
      let* aggregate = oneofl [ Some 4; Some 8; Some 16 ] in
      let* policy =
        oneofl
          Sfq_base.Buffered.[ Drop_tail; Drop_front; Longest_queue ]
      in
      pure (Some { per_flow; aggregate; policy })
  in
  pure
    { capacity; weights; arrivals; reweights = rws; churn = ch;
      rate_changes = rcs; buffer }

let shrink t yield =
  QCheck.Shrink.list t.arrivals (fun arrivals -> yield { t with arrivals });
  if t.reweights <> [] then yield { t with reweights = [] };
  if t.churn <> [] then yield { t with churn = [] };
  if t.rate_changes <> [] then yield { t with rate_changes = [] };
  if t.buffer <> None then yield { t with buffer = None };
  if List.exists (fun (a : arrival) -> a.rate <> None) t.arrivals then
    yield
      {
        t with
        arrivals =
          List.map (fun (a : arrival) -> { a with rate = None }) t.arrivals;
      }

let arbitrary ?reweights ?rate_overrides ?churn ?overload ?rate_fluct () =
  QCheck.make ~print:to_string ~shrink
    (gen ?reweights ?rate_overrides ?churn ?overload ?rate_fluct ())

let deterministic_pool ?reweights ?rate_overrides ?churn ?overload ?rate_fluct
    ~seed ~n () =
  QCheck.Gen.generate
    ~rand:(Random.State.make [| seed |])
    ~n
    (gen ?reweights ?rate_overrides ?churn ?overload ?rate_fluct ())
