(** Fixed-rate workload driver.

    Replays a {!Workload.t} against a scheduler behind
    {!Monitor.wrap}: a constant-rate server serving one packet at a
    time, delivering each arrival at its own timestamp, and — crucially
    for SFQ's §2 step 2 and SCFQ's restart — {e polling} the scheduler
    on every idle transition, so busy-period-end virtual-time updates
    actually fire. After draining, every monitor is finalized at the
    run's last instant. *)

open Sfq_base

type outcome = {
  violations : Monitor.violation list;  (** first violation per tripped monitor *)
  departures : int;
  finished_at : float;
}

val fixed_rate :
  sched:Sched.t ->
  ?on_reweight:(flow:Packet.flow -> rate:float -> unit) ->
  monitors:Monitor.t list ->
  Workload.t ->
  outcome
(** Packets are sequence-numbered per flow in arrival order.
    [on_reweight] fires at each {!Workload.reweight}'s timestamp
    (callers owning mutable weight tables apply the change there). A
    step cap (10× the trace length) bounds runs against mutants that
    stall or refuse to drain; monitors will already have latched the
    violation by then. *)
