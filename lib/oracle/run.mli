(** Fixed-rate workload driver.

    Replays a {!Workload.t} against a scheduler behind
    {!Monitor.wrap}: a constant-rate server serving one packet at a
    time, delivering each arrival at its own timestamp, and — crucially
    for SFQ's §2 step 2 and SCFQ's restart — {e polling} the scheduler
    on every idle transition, so busy-period-end virtual-time updates
    actually fire. After draining, every monitor is finalized at the
    run's last instant. *)

open Sfq_base

type outcome = {
  violations : Monitor.violation list;  (** first violation per tripped monitor *)
  departures : int;
  drops : int;  (** packets lost to the buffer policy or flow closures *)
  finished_at : float;
}

val fixed_rate :
  sched:Sched.t ->
  ?on_reweight:(flow:Packet.flow -> rate:float -> unit) ->
  monitors:Monitor.t list ->
  Workload.t ->
  outcome
(** Packets are sequence-numbered per flow in arrival order.
    [on_reweight] fires at each {!Workload.reweight}'s timestamp
    (callers owning mutable weight tables apply the change there).
    When the workload carries a {!Workload.buffer} config the
    scheduler is wrapped in {!Sfq_base.Buffered} and every drop is
    reported to the monitors ({!Monitor.drop_event}); each
    {!Workload.churn} event calls [close_flow] at its timestamp
    (flushed packets count as drops with reason [Closed]); each
    {!Workload.rate_change} retargets the serving rate from the next
    dequeue on (the packet in service finishes at the old rate). A
    step cap (10× the trace length) bounds runs against mutants that
    stall or refuse to drain; monitors will already have latched the
    violation by then. *)

(** {1 Domain-parallel sweeps}

    A sweep is an array of independent (discipline, workload) cells.
    Each cell carries a {e thunk} that builds the scheduler and its
    monitors, so all mutable state is created inside the executing
    task — domain-local by construction — and the immutable
    {!Workload.t} is the only shared input. Outcomes come back ordered
    by cell index: the result (and hence {!sweep_digest}) is
    byte-identical at every domain count. *)

type driver = {
  sched : Sched.t;
  monitors : Monitor.t list;
  on_reweight : (flow:Packet.flow -> rate:float -> unit) option;
}

type cell = { label : string; workload : Workload.t; driver : unit -> driver }

val run_cell : cell -> outcome
(** Build the cell's driver and replay its workload ({!fixed_rate}). *)

val sweep : ?domains:int -> ?pool:Sfq_par.Pool.t -> cell list -> outcome array
(** Run every cell, [outcomes.(i)] belonging to [List.nth cells i].
    [domains] defaults to 1 (serial, no domain spawned); [pool] reuses
    an existing executor instead (and ignores [domains]). *)

val outcome_digest : outcome -> string
(** One line, fully deterministic: departure count, finish time, the
    drop count (printed only when non-zero, so loss-free digests are
    byte-stable across versions) and every violation, floats rendered
    as hex ([%h]) so the digest is exact, not rounded. *)

val sweep_digest : cell list -> outcome array -> string
(** One [label | outcome] line per cell, in cell order — the byte
    string the determinism suite compares across domain counts. *)
