(** Deliberately-broken SFQ variants: the mutation self-check.

    A monitor suite that never fires is indistinguishable from one
    that checks nothing, so each mutant seeds one classic scheduler
    bug and ships with a crafted workload on which the bug is
    {e provably} outside the paper's guarantees — the test asserts the
    expected monitor trips. The unmutated disciplines passing the same
    monitors over the fuzzed pool is only meaningful evidence because
    of this check. *)

open Sfq_base

type mode =
  | Stale_vtime
      (** v(t) is never advanced (stuck at 0), so a flow that goes
          backlogged mid-busy-period re-enters at start tag ≈ 0 and
          steals service: breaks Theorem 1 (eq. 4's [max(v(A), F)] is
          what couples newly-active flows to the server's progress). *)
  | No_weight
      (** Finish tags use [l] instead of [l/r_f] (skipped weight
          normalization): equal service for unequal reservations,
          breaks Theorem 1. *)
  | Finish_key
      (** Serves in finish-tag order instead of start-tag order while
          still self-clocking v from the popped packet's start tag —
          the §2.3 discussion's point that serving by F forfeits SFQ's
          low-rate-flow latency: breaks Theorem 4. *)
  | Lifo  (** Serves the newest packet first: breaks per-flow FIFO. *)
  | Lazy_idle
      (** Returns [None] on every third poll despite backlog: breaks
          work conservation. *)
  | Wrong_queue_drop
      (** [evict] removes the victim from the requested flow's queue
          but reports a {e different} flow's packet as dropped — the
          blamed packet stays queued, so it is either blamed twice or
          departs after being declared lost: breaks per-flow FIFO
          (drop-aware). Its workload carries a finite-buffer config so
          the buffer layer actually calls [evict]. *)
  | Stale_reopen
      (** [close_flow] flushes the queue but keeps the flow's finish
          tag, so a reopened flow re-enters at [max(v, stale F)]
          instead of [v(t)] (eq. 4 after state discard) and is starved
          while the other flow drains: breaks Theorem 1. Its workload
          carries a churn event. *)
  | Pifo_wrong_rank
      (** Rank-program mutant (runs through the real
          {!Sfq_pifo.Pifo_sched} runtime): the SFQ rank program emits
          the {e finish} tag as the rank — the §2.3 serve-by-F pitfall
          as a one-token program edit: breaks Theorem 4. *)
  | Pifo_stale_state
      (** Rank-program mutant: the program never writes the per-flow
          finish tag back, so every packet re-enters at [S = v] and
          eq. 4's weight normalization is lost: breaks Theorem 1. *)
  | Pifo_no_vtime
      (** Rank-program mutant: the program drops the virtual-time
          update in its dequeue hook, so [v] sticks at 0 and a flow
          waking mid-busy-period steals service: breaks Theorem 1. *)

val all : mode list
val name : mode -> string

val sched : mode -> Weights.t -> Sched.t * (unit -> float)
(** The broken scheduler and its virtual-time accessor (for
    {!Monitor.tag_monotone}). *)

val workload : mode -> Workload.t
(** A crafted trace on which the mode's bug violates a theorem by a
    wide margin (no tolerance-edge flakiness). *)

val expected_monitor : mode -> string
(** Name of the monitor that must appear among the run's violations. *)
