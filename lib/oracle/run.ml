open Sfq_base

type outcome = {
  violations : Monitor.violation list;
  departures : int;
  drops : int;
  finished_at : float;
}

type op =
  | Arrive of Workload.arrival
  | Reweight of Workload.reweight
  | Close of Workload.churn
  | Rate of Workload.rate_change

let op_time = function
  | Arrive (a : Workload.arrival) -> a.at
  | Reweight (r : Workload.reweight) -> r.at
  | Close (c : Workload.churn) -> c.at
  | Rate (r : Workload.rate_change) -> r.at

let fixed_rate ~sched ?(on_reweight = fun ~flow:_ ~rate:_ -> ()) ~monitors
    (w : Workload.t) =
  (* The live link rate: read by the monitor wrapper's capacity thunk
     and by the loop's finish computation below — the same dereference,
     so both sides see identical floats. *)
  let cap = ref w.Workload.capacity in
  let drops = ref 0 in
  let buffered =
    match w.Workload.buffer with
    | None -> sched
    | Some (b : Workload.buffer) ->
      let cfg =
        { Buffered.per_flow = b.per_flow; aggregate = b.aggregate;
          policy = b.policy }
      in
      let on_drop ~now ~reason pkt =
        incr drops;
        Monitor.drop_event monitors ~now ~reason pkt
      in
      Buffered.sched (Buffered.wrap ~on_drop cfg sched)
  in
  let wrapped = Monitor.wrap buffered ~capacity:(fun () -> !cap) ~monitors in
  let merge = List.merge (fun a b -> compare (op_time a) (op_time b)) in
  let ops =
    merge
      (merge
         (List.map (fun a -> Arrive a) w.arrivals)
         (List.map (fun r -> Reweight r) w.reweights))
      (merge
         (List.map (fun c -> Close c) w.churn)
         (List.map (fun r -> Rate r) w.rate_changes))
  in
  let seq : (Packet.flow, int) Hashtbl.t = Hashtbl.create 16 in
  let next_seq flow =
    let s = Option.value (Hashtbl.find_opt seq flow) ~default:0 + 1 in
    Hashtbl.replace seq flow s;
    s
  in
  let deliver ops ~upto =
    let rec go = function
      | op :: rest when op_time op <= upto ->
        (match op with
        | Arrive a ->
          let pkt =
            Packet.make ?rate:a.rate ~flow:a.flow ~seq:(next_seq a.flow)
              ~len:a.len ~born:a.at ()
          in
          wrapped.Sched.enqueue ~now:a.at pkt
        | Reweight r -> on_reweight ~flow:r.flow ~rate:r.rate
        | Close c ->
          let flushed = wrapped.Sched.close_flow ~now:c.at c.flow in
          drops := !drops + List.length flushed
        | Rate r -> cap := r.capacity);
        go rest
      | rest -> rest
    in
    go ops
  in
  let departures = ref 0 in
  let max_steps = (10 * List.length w.arrivals) + 1000 in
  let steps = ref 0 in
  let rec loop now ops =
    incr steps;
    if !steps > max_steps then now
    else
      match wrapped.Sched.dequeue ~now with
      | Some p ->
        incr departures;
        let finish = now +. (float_of_int p.Packet.len /. !cap) in
        let ops = deliver ops ~upto:finish in
        loop finish ops
      | None -> (
        match ops with
        | [] -> if wrapped.Sched.size () > 0 then loop now ops else now
        | op :: _ ->
          let t = op_time op in
          let ops = deliver ops ~upto:t in
          loop (Float.max now t) ops)
  in
  let t0 = match ops with [] -> 0.0 | op :: _ -> op_time op in
  let rest = deliver ops ~upto:t0 in
  let finished_at = loop t0 rest in
  List.iter (fun m -> Monitor.finalize m ~until:finished_at) monitors;
  {
    violations = List.filter_map Monitor.result monitors;
    departures = !departures;
    drops = !drops;
    finished_at;
  }

(* ------------------------------------------------------------------ *)
(* Domain-parallel sweeps                                               *)

type driver = {
  sched : Sched.t;
  monitors : Monitor.t list;
  on_reweight : (flow:Packet.flow -> rate:float -> unit) option;
}

type cell = { label : string; workload : Workload.t; driver : unit -> driver }

let run_cell (c : cell) =
  (* Audit (parallel safety): the scheduler, its monitors and any
     scratch state are created here, inside the task, so every mutable
     structure a worker touches is domain-local. The workload is
     immutable shared data; the returned outcome is immutable. *)
  let d = c.driver () in
  fixed_rate ~sched:d.sched ?on_reweight:d.on_reweight ~monitors:d.monitors
    c.workload

let sweep ?(domains = 1) ?pool cells =
  let tasks = Array.of_list cells in
  let f _i c = run_cell c in
  match pool with
  | Some p -> Sfq_par.Pool.map p ~f tasks
  | None -> Sfq_par.Pool.run ~domains ~f tasks

let outcome_digest (o : outcome) =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "departures=%d finished_at=%h" o.departures o.finished_at);
  (* Printed only when non-zero: loss-free cells keep the exact digest
     bytes they had before drops existed (golden-corpus stability). *)
  if o.drops > 0 then Buffer.add_string b (Printf.sprintf " drops=%d" o.drops);
  List.iter
    (fun (v : Monitor.violation) ->
      Buffer.add_string b
        (Printf.sprintf " violation=%s@%h:%s" v.Monitor.monitor v.Monitor.at
           v.Monitor.what))
    o.violations;
  Buffer.contents b

let sweep_digest cells outcomes =
  let b = Buffer.create 256 in
  List.iteri
    (fun i (c : cell) ->
      Buffer.add_string b (Printf.sprintf "%s | %s\n" c.label (outcome_digest outcomes.(i))))
    cells;
  Buffer.contents b
