open Sfq_base

type flow_state = {
  mutable eat : float;  (* EAT of the previous packet (eq. 37) *)
  mutable len_prev : float;
  mutable seen : bool;
  pending : (int * float) Queue.t;  (* (seq, EAT at first server) *)
}

type t = {
  name : string;
  rate : Packet.flow -> float;
  betas : Packet.flow -> float list;
  taus : Packet.flow -> float list;
  flows : (Packet.flow, flow_state) Hashtbl.t;
  mutable violation : Monitor.violation option;
  mutable checked : int;
  mutable lost : int;
  mutable min_slack : float;
}

let create ~name ~rate ~betas ~taus () =
  {
    name;
    rate;
    betas;
    taus;
    flows = Hashtbl.create 16;
    violation = None;
    checked = 0;
    lost = 0;
    min_slack = infinity;
  }

let state t flow =
  match Hashtbl.find_opt t.flows flow with
  | Some s -> s
  | None ->
    let s = { eat = 0.0; len_prev = 0.0; seen = false; pending = Queue.create () } in
    Hashtbl.replace t.flows flow s;
    s

let violate t ~at what =
  if t.violation = None then t.violation <- Some { Monitor.monitor = t.name; at; what }

(* Same relative tolerance as the single-server monitors. *)
let slack b = 1e-9 *. Float.max 1.0 (Float.abs b)

let inject t (p : Packet.t) ~at =
  let s = state t p.Packet.flow in
  let r =
    match p.Packet.rate with Some r -> r | None -> t.rate p.Packet.flow
  in
  let eat = if s.seen then Float.max at (s.eat +. (s.len_prev /. r)) else at in
  s.eat <- eat;
  s.len_prev <- float_of_int p.Packet.len;
  s.seen <- true;
  Queue.push (p.Packet.seq, eat) s.pending

let deliver t (p : Packet.t) ~at =
  let s = state t p.Packet.flow in
  (* Per-flow FIFO delivery: pending packets with smaller seq than the
     one delivered were lost along the route (buffer drop / closure
     flush) — skip them, they have no delivery to bound. *)
  let rec pop () =
    match Queue.peek_opt s.pending with
    | None ->
      violate t ~at
        (Printf.sprintf "flow %d: delivery of seq %d was never injected" p.Packet.flow
           p.Packet.seq);
      None
    | Some (seq, _) when seq > p.Packet.seq ->
      violate t ~at
        (Printf.sprintf "flow %d: delivery of seq %d out of order (next pending %d)"
           p.Packet.flow p.Packet.seq seq);
      None
    | Some (seq, eat) ->
      ignore (Queue.pop s.pending);
      if seq = p.Packet.seq then Some eat
      else begin
        t.lost <- t.lost + 1;
        pop ()
      end
  in
  match pop () with
  | None -> ()
  | Some eat ->
    let bound =
      Sfq_core.Bounds.e2e_departure ~eat_first:eat ~betas:(t.betas p.Packet.flow)
        ~taus:(t.taus p.Packet.flow)
    in
    t.checked <- t.checked + 1;
    t.min_slack <- Float.min t.min_slack (bound -. at);
    if at > bound +. slack bound then
      violate t ~at
        (Printf.sprintf
           "flow %d seq %d: delivered at %.9g > composed bound %.9g (EAT %.9g)"
           p.Packet.flow p.Packet.seq at bound eat)

let finalize t ~until:_ =
  (* Packets still pending were dropped en route; they have no delivery
     time to check, only the loss count to report. *)
  Hashtbl.iter (fun _ s -> t.lost <- t.lost + Queue.length s.pending) t.flows

let checked t = t.checked
let lost t = t.lost
let min_slack t = t.min_slack
let result t = t.violation
