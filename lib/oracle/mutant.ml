open Sfq_base
open Sfq_util

type mode = Stale_vtime | No_weight | Finish_key | Lifo | Lazy_idle

let all = [ Stale_vtime; No_weight; Finish_key; Lifo; Lazy_idle ]

let name = function
  | Stale_vtime -> "stale_vtime"
  | No_weight -> "no_weight"
  | Finish_key -> "finish_key"
  | Lifo -> "lifo"
  | Lazy_idle -> "lazy_idle"

(* An SFQ clone small enough to break on purpose: a single Fheap over
   every queued packet (no per-flow rings — Flow_heap's FIFO structure
   would make the Lifo mutant unrepresentable). *)
let sched mode weights =
  let heap : (float * Packet.t) Fheap.t = Fheap.create () in
  let finish : (Packet.flow, float) Hashtbl.t = Hashtbl.create 16 in
  let counts : (Packet.flow, int) Hashtbl.t = Hashtbl.create 16 in
  let v = ref 0.0 in
  let uid = ref 0 in
  let polls = ref 0 in
  let bump flow d =
    Hashtbl.replace counts flow
      (Option.value (Hashtbl.find_opt counts flow) ~default:0 + d)
  in
  let enqueue ~now:_ pkt =
    let flow = pkt.Packet.flow in
    let r = match mode with No_weight -> 1.0 | _ -> Weights.get weights flow in
    let prev = Option.value (Hashtbl.find_opt finish flow) ~default:0.0 in
    let stag = Float.max !v prev in
    let ftag = stag +. (float_of_int pkt.Packet.len /. r) in
    Hashtbl.replace finish flow ftag;
    incr uid;
    bump flow 1;
    let key, u =
      match mode with
      | Finish_key -> (ftag, !uid)
      | Lifo -> (0.0, - !uid)
      | _ -> (stag, !uid)
    in
    Fheap.add heap ~key ~tie:0.0 ~uid:u (stag, pkt)
  in
  let dequeue ~now:_ =
    incr polls;
    if mode = Lazy_idle && !polls mod 3 = 0 then None
    else
      match Fheap.pop heap with
      | None ->
        (* busy period over: restart the clock like the real thing *)
        if mode <> Stale_vtime then begin
          v := 0.0;
          Hashtbl.reset finish
        end;
        None
      | Some (_key, (stag, pkt)) ->
        if mode <> Stale_vtime then v := Float.max !v stag;
        bump pkt.Packet.flow (-1);
        Some pkt
  in
  let s =
    {
      Sched.name = "sfq-mutant-" ^ name mode;
      enqueue;
      dequeue;
      peek = (fun () -> Option.map (fun (_, p) -> p) (Fheap.min_elt heap));
      size = (fun () -> Fheap.length heap);
      backlog =
        (fun flow -> Option.value (Hashtbl.find_opt counts flow) ~default:0);
    }
  in
  (s, fun () -> !v)

let burst ?rate ~at ~flow ~len n : Workload.arrival list =
  List.init n (fun _ -> { Workload.at; flow; len; rate })

let workload mode : Workload.t =
  match mode with
  | Stale_vtime ->
    (* f2 wakes at t=50 with v stuck at 0: its start tags restart at 0
       and it monopolizes the link until they catch up — during the
       both-backlogged window f1 gets nothing for ~5 packet times,
       |W1/r1 − W2/r2| ≈ 111 s >> bound 2·l/r = 44.4 s. *)
    {
      capacity = 100.0;
      weights = [ (1, 45.0); (2, 45.0) ];
      arrivals = burst ~at:0.0 ~flow:1 ~len:1000 20 @ burst ~at:50.0 ~flow:2 ~len:1000 20;
      reweights = [];
    }
  | No_weight ->
    (* 8:1 reservation served 1:1: drift reaches ~260 s, bound 11.25 s. *)
    {
      capacity = 1000.0;
      weights = [ (1, 800.0); (2, 100.0) ];
      arrivals = burst ~at:0.0 ~flow:1 ~len:1000 30 @ burst ~at:0.0 ~flow:2 ~len:1000 30;
      reweights = [];
    }
  | Finish_key ->
    (* The low-rate flow's lone packet has the largest finish tag, so
       finish-tag order serves it dead last (t = 310 s); Theorem 4
       promises EAT + l2max/C + l/C = 20 s. *)
    {
      capacity = 100.0;
      weights = [ (1, 2.0); (2, 90.0) ];
      arrivals = burst ~at:0.0 ~flow:2 ~len:1000 30 @ burst ~at:0.0 ~flow:1 ~len:1000 1;
      reweights = [];
    }
  | Lifo ->
    {
      capacity = 100.0;
      weights = [ (1, 50.0) ];
      arrivals = burst ~at:0.0 ~flow:1 ~len:1000 3;
      reweights = [];
    }
  | Lazy_idle ->
    {
      capacity = 100.0;
      weights = [ (1, 50.0) ];
      arrivals = burst ~at:0.0 ~flow:1 ~len:1000 6;
      reweights = [];
    }

let expected_monitor = function
  | Stale_vtime -> "fairness"
  | No_weight -> "fairness"
  | Finish_key -> "sfq_delay"
  | Lifo -> "flow_fifo"
  | Lazy_idle -> "work_conserving"
