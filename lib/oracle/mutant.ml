open Sfq_base
open Sfq_util

type mode =
  | Stale_vtime
  | No_weight
  | Finish_key
  | Lifo
  | Lazy_idle
  | Wrong_queue_drop
  | Stale_reopen
  | Pifo_wrong_rank
  | Pifo_stale_state
  | Pifo_no_vtime

let all =
  [ Stale_vtime; No_weight; Finish_key; Lifo; Lazy_idle; Wrong_queue_drop;
    Stale_reopen; Pifo_wrong_rank; Pifo_stale_state; Pifo_no_vtime ]

let name = function
  | Stale_vtime -> "stale_vtime"
  | No_weight -> "no_weight"
  | Finish_key -> "finish_key"
  | Lifo -> "lifo"
  | Lazy_idle -> "lazy_idle"
  | Wrong_queue_drop -> "wrong_queue_drop"
  | Stale_reopen -> "stale_reopen"
  | Pifo_wrong_rank -> "pifo_wrong_rank"
  | Pifo_stale_state -> "pifo_stale_state"
  | Pifo_no_vtime -> "pifo_no_vtime"

(* The rank-program mutants run through the real Pifo_sched runtime —
   each is Programs.sfq with exactly one line broken, so a kill here
   certifies that the oracle suite sees through the runtime, not just
   through the hand-written clone below. *)
let pifo_sched mode weights =
  let open Sfq_fastpath in
  let open Sfq_pifo in
  let fs = Flow_state.create weights in
  let v = ref 0 and mfs = ref 0 in
  let regs = Rank_program.regs () in
  let prog =
    {
      Rank_program.name = "pifo-mutant-" ^ name mode;
      regs;
      shaped = false;
      rank =
        (fun ~now:_ pkt ->
          let d = Flow_state.delta fs pkt in
          let fprev = Flow_state.get fs pkt.Packet.flow in
          let stag = if !v > fprev then !v else fprev in
          let ftag = Tag.sat_add stag d in
          (* the bug: Pifo_stale_state never advances the per-flow
             finish tag, so every packet re-enters at S = v and the
             weight normalization in eq. 4 is lost *)
          if mode <> Pifo_stale_state then Flow_state.set fs pkt.Packet.flow ftag;
          regs.aux <- ftag;
          (* the bug: Pifo_wrong_rank emits the finish tag as the rank
             — the §2.3 serve-by-F pitfall, now one token in a rank
             program instead of a heap-key rewrite *)
          if mode = Pifo_wrong_rank then ftag else stag);
      on_dequeue =
        (fun ~key ~aux ~empty:_ ->
          (* the bug: Pifo_no_vtime drops the virtual-time update, so
             v(t) sticks at 0 and late-waking flows re-enter at S ≈ 0 *)
          if mode <> Pifo_no_vtime then begin
            v := key;
            if aux > !mfs then mfs := aux
          end);
      on_idle =
        (fun () -> if mode <> Pifo_no_vtime && !mfs > !v then v := !mfs);
      horizon = Rank_program.no_horizon;
      attach = Rank_program.no_attach;
      on_close = (fun ~now:_ flow -> Flow_state.forget fs flow);
      vtime = (fun () -> Tag.decode (Flow_state.codec fs) !v);
    }
  in
  let s = Pifo_sched.create prog in
  (Pifo_sched.sched s, fun () -> Pifo_sched.vtime s)

(* An SFQ clone small enough to break on purpose: a single Fheap over
   every queued packet (no per-flow rings — Flow_heap's FIFO structure
   would make the Lifo mutant unrepresentable). *)
let float_sched mode weights =
  let heap : (float * Packet.t) Fheap.t = Fheap.create () in
  let finish : (Packet.flow, float) Hashtbl.t = Hashtbl.create 16 in
  let counts : (Packet.flow, int) Hashtbl.t = Hashtbl.create 16 in
  let v = ref 0.0 in
  let uid = ref 0 in
  let polls = ref 0 in
  let bump flow d =
    Hashtbl.replace counts flow
      (Option.value (Hashtbl.find_opt counts flow) ~default:0 + d)
  in
  let enqueue ~now:_ pkt =
    let flow = pkt.Packet.flow in
    let r = match mode with No_weight -> 1.0 | _ -> Weights.get weights flow in
    let prev = Option.value (Hashtbl.find_opt finish flow) ~default:0.0 in
    let stag = Float.max !v prev in
    let ftag = stag +. (float_of_int pkt.Packet.len /. r) in
    Hashtbl.replace finish flow ftag;
    incr uid;
    bump flow 1;
    let key, u =
      match mode with
      | Finish_key -> (ftag, !uid)
      | Lifo -> (0.0, - !uid)
      | _ -> (stag, !uid)
    in
    Fheap.add heap ~key ~tie:0.0 ~uid:u (stag, pkt)
  in
  let dequeue ~now:_ =
    incr polls;
    if mode = Lazy_idle && !polls mod 3 = 0 then None
    else
      match Fheap.pop heap with
      | None ->
        (* busy period over: restart the clock like the real thing *)
        if mode <> Stale_vtime then begin
          v := 0.0;
          Hashtbl.reset finish
        end;
        None
      | Some (_key, (stag, pkt)) ->
        if mode <> Stale_vtime then v := Float.max !v stag;
        bump pkt.Packet.flow (-1);
        Some pkt
  in
  let of_flow flow (_, p) = p.Packet.flow = flow in
  (* The oldest still-queued packet of any OTHER flow — the scapegoat
     the Wrong_queue_drop mutant blames for an eviction it performed on
     its own queue. Deterministic min over (stag, seq, flow), not heap
     layout, so parallel digests stay byte-identical. *)
  let scapegoat flow =
    let best = ref None in
    Fheap.iter heap ~f:(fun _ (stag, p) ->
        if p.Packet.flow <> flow then
          let better =
            match !best with
            | None -> true
            | Some (bs, bp) ->
              (stag, p.Packet.seq, p.Packet.flow)
              < (bs, bp.Packet.seq, bp.Packet.flow)
          in
          if better then best := Some (stag, p));
    Option.map snd !best
  in
  let evict ~now:_ victim flow =
    let newest = match victim with Sched.Newest -> true | Sched.Oldest -> false in
    match Fheap.remove_matching ~newest heap ~pred:(of_flow flow) with
    | None -> None
    | Some (_, (_, pkt)) ->
      bump flow (-1);
      (match mode with
      | Wrong_queue_drop -> (
        (* the bug: the victim came out of [flow]'s queue, but the drop
           is reported against another flow's packet — which stays
           queued and will depart (or be blamed again) later *)
        match scapegoat flow with None -> Some pkt | Some other -> Some other)
      | _ -> Some pkt)
  in
  let close_flow ~now:_ flow =
    let rec drain acc =
      match Fheap.remove_matching heap ~pred:(of_flow flow) with
      | None -> List.rev acc
      | Some (_, (_, pkt)) ->
        bump flow (-1);
        drain (pkt :: acc)
    in
    let flushed = drain [] in
    (* the bug: Stale_reopen keeps the closed flow's finish tag, so a
       reopened flow re-enters at max(v, stale F) instead of v(t) *)
    if mode <> Stale_reopen then Hashtbl.remove finish flow;
    flushed
  in
  let s =
    {
      Sched.name = "sfq-mutant-" ^ name mode;
      enqueue;
      dequeue;
      evict;
      close_flow;
      peek = (fun () -> Option.map (fun (_, p) -> p) (Fheap.min_elt heap));
      size = (fun () -> Fheap.length heap);
      backlog =
        (fun flow -> Option.value (Hashtbl.find_opt counts flow) ~default:0);
    }
  in
  (s, fun () -> !v)

let sched mode weights =
  match mode with
  | Pifo_wrong_rank | Pifo_stale_state | Pifo_no_vtime ->
    pifo_sched mode weights
  | _ -> float_sched mode weights

let burst ?rate ~at ~flow ~len n : Workload.arrival list =
  List.init n (fun _ -> { Workload.at; flow; len; rate })

let base ~capacity ~weights arrivals : Workload.t =
  {
    capacity;
    weights;
    arrivals;
    reweights = [];
    churn = [];
    rate_changes = [];
    buffer = None;
  }

let rec workload mode : Workload.t =
  match mode with
  (* Each rank-program mutant reproduces a classic bug whose crafted
     kill-trace already exists: reuse it, the violation margins carry
     over unchanged (the fixed-point quantization is ~1e-6 of them). *)
  | Pifo_wrong_rank -> workload Finish_key
  | Pifo_stale_state -> workload No_weight
  | Pifo_no_vtime -> workload Stale_vtime
  | Stale_vtime ->
    (* f2 wakes at t=50 with v stuck at 0: its start tags restart at 0
       and it monopolizes the link until they catch up — during the
       both-backlogged window f1 gets nothing for ~5 packet times,
       |W1/r1 − W2/r2| ≈ 111 s >> bound 2·l/r = 44.4 s. *)
    base ~capacity:100.0
      ~weights:[ (1, 45.0); (2, 45.0) ]
      (burst ~at:0.0 ~flow:1 ~len:1000 20 @ burst ~at:50.0 ~flow:2 ~len:1000 20)
  | No_weight ->
    (* 8:1 reservation served 1:1: drift reaches ~260 s, bound 11.25 s. *)
    base ~capacity:1000.0
      ~weights:[ (1, 800.0); (2, 100.0) ]
      (burst ~at:0.0 ~flow:1 ~len:1000 30 @ burst ~at:0.0 ~flow:2 ~len:1000 30)
  | Finish_key ->
    (* The low-rate flow's lone packet has the largest finish tag, so
       finish-tag order serves it dead last (t = 310 s); Theorem 4
       promises EAT + l2max/C + l/C = 20 s. *)
    base ~capacity:100.0
      ~weights:[ (1, 2.0); (2, 90.0) ]
      (burst ~at:0.0 ~flow:2 ~len:1000 30 @ burst ~at:0.0 ~flow:1 ~len:1000 1)
  | Lifo ->
    base ~capacity:100.0 ~weights:[ (1, 50.0) ] (burst ~at:0.0 ~flow:1 ~len:1000 3)
  | Lazy_idle ->
    base ~capacity:100.0 ~weights:[ (1, 50.0) ] (burst ~at:0.0 ~flow:1 ~len:1000 6)
  | Wrong_queue_drop ->
    (* Per-flow budget 3, Drop_front: f1's 4th arrival evicts f1's
       oldest, but the mutant reports f2's lone packet as the casualty.
       The first false report scan-removes f2#1 from flow_fifo's
       pending set; the second (f2#1 is still queued, so it is blamed
       again) or f2#1's real departure trips the monitor. *)
    {
      (base ~capacity:100.0
         ~weights:[ (1, 50.0); (2, 40.0) ]
         (burst ~at:0.0 ~flow:2 ~len:1000 1 @ burst ~at:0.0 ~flow:1 ~len:1000 6))
      with
      buffer =
        Some
          { Workload.per_flow = Some 3; aggregate = None;
            policy = Buffered.Drop_front };
    }
  | Stale_reopen ->
    (* f2 accumulates finish tag ≈ 2000 (10 × 1000/5), closes at t=10,
       reopens at t=12. Correct SFQ forgets F on close, so the reopened
       flow re-enters at S = v(t) ≈ tens; the mutant re-enters at
       max(v, 2000) and starves f2 for f1's whole backlog (~390 s):
       |W1/r1 − W2/r2| ≈ 780 s >> bound l1/r1 + l2/r2 = 220 s. *)
    {
      (base ~capacity:100.0
         ~weights:[ (1, 50.0); (2, 5.0) ]
         (burst ~at:0.0 ~flow:1 ~len:1000 40
         @ burst ~at:0.0 ~flow:2 ~len:1000 10
         @ burst ~at:12.0 ~flow:2 ~len:1000 20))
      with
      churn = [ { Workload.at = 10.0; flow = 2 } ];
    }

let expected_monitor = function
  | Stale_vtime -> "fairness"
  | No_weight -> "fairness"
  | Finish_key -> "sfq_delay"
  | Lifo -> "flow_fifo"
  | Lazy_idle -> "work_conserving"
  | Wrong_queue_drop -> "flow_fifo"
  | Stale_reopen -> "fairness"
  | Pifo_wrong_rank -> "sfq_delay"
  | Pifo_stale_state -> "fairness"
  | Pifo_no_vtime -> "fairness"
