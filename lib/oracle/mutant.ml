open Sfq_base
open Sfq_util

type mode =
  | Stale_vtime
  | No_weight
  | Finish_key
  | Lifo
  | Lazy_idle
  | Wrong_queue_drop
  | Stale_reopen

let all =
  [ Stale_vtime; No_weight; Finish_key; Lifo; Lazy_idle; Wrong_queue_drop;
    Stale_reopen ]

let name = function
  | Stale_vtime -> "stale_vtime"
  | No_weight -> "no_weight"
  | Finish_key -> "finish_key"
  | Lifo -> "lifo"
  | Lazy_idle -> "lazy_idle"
  | Wrong_queue_drop -> "wrong_queue_drop"
  | Stale_reopen -> "stale_reopen"

(* An SFQ clone small enough to break on purpose: a single Fheap over
   every queued packet (no per-flow rings — Flow_heap's FIFO structure
   would make the Lifo mutant unrepresentable). *)
let sched mode weights =
  let heap : (float * Packet.t) Fheap.t = Fheap.create () in
  let finish : (Packet.flow, float) Hashtbl.t = Hashtbl.create 16 in
  let counts : (Packet.flow, int) Hashtbl.t = Hashtbl.create 16 in
  let v = ref 0.0 in
  let uid = ref 0 in
  let polls = ref 0 in
  let bump flow d =
    Hashtbl.replace counts flow
      (Option.value (Hashtbl.find_opt counts flow) ~default:0 + d)
  in
  let enqueue ~now:_ pkt =
    let flow = pkt.Packet.flow in
    let r = match mode with No_weight -> 1.0 | _ -> Weights.get weights flow in
    let prev = Option.value (Hashtbl.find_opt finish flow) ~default:0.0 in
    let stag = Float.max !v prev in
    let ftag = stag +. (float_of_int pkt.Packet.len /. r) in
    Hashtbl.replace finish flow ftag;
    incr uid;
    bump flow 1;
    let key, u =
      match mode with
      | Finish_key -> (ftag, !uid)
      | Lifo -> (0.0, - !uid)
      | _ -> (stag, !uid)
    in
    Fheap.add heap ~key ~tie:0.0 ~uid:u (stag, pkt)
  in
  let dequeue ~now:_ =
    incr polls;
    if mode = Lazy_idle && !polls mod 3 = 0 then None
    else
      match Fheap.pop heap with
      | None ->
        (* busy period over: restart the clock like the real thing *)
        if mode <> Stale_vtime then begin
          v := 0.0;
          Hashtbl.reset finish
        end;
        None
      | Some (_key, (stag, pkt)) ->
        if mode <> Stale_vtime then v := Float.max !v stag;
        bump pkt.Packet.flow (-1);
        Some pkt
  in
  let of_flow flow (_, p) = p.Packet.flow = flow in
  (* The oldest still-queued packet of any OTHER flow — the scapegoat
     the Wrong_queue_drop mutant blames for an eviction it performed on
     its own queue. Deterministic min over (stag, seq, flow), not heap
     layout, so parallel digests stay byte-identical. *)
  let scapegoat flow =
    let best = ref None in
    Fheap.iter heap ~f:(fun _ (stag, p) ->
        if p.Packet.flow <> flow then
          let better =
            match !best with
            | None -> true
            | Some (bs, bp) ->
              (stag, p.Packet.seq, p.Packet.flow)
              < (bs, bp.Packet.seq, bp.Packet.flow)
          in
          if better then best := Some (stag, p));
    Option.map snd !best
  in
  let evict ~now:_ victim flow =
    let newest = match victim with Sched.Newest -> true | Sched.Oldest -> false in
    match Fheap.remove_matching ~newest heap ~pred:(of_flow flow) with
    | None -> None
    | Some (_, (_, pkt)) ->
      bump flow (-1);
      (match mode with
      | Wrong_queue_drop -> (
        (* the bug: the victim came out of [flow]'s queue, but the drop
           is reported against another flow's packet — which stays
           queued and will depart (or be blamed again) later *)
        match scapegoat flow with None -> Some pkt | Some other -> Some other)
      | _ -> Some pkt)
  in
  let close_flow ~now:_ flow =
    let rec drain acc =
      match Fheap.remove_matching heap ~pred:(of_flow flow) with
      | None -> List.rev acc
      | Some (_, (_, pkt)) ->
        bump flow (-1);
        drain (pkt :: acc)
    in
    let flushed = drain [] in
    (* the bug: Stale_reopen keeps the closed flow's finish tag, so a
       reopened flow re-enters at max(v, stale F) instead of v(t) *)
    if mode <> Stale_reopen then Hashtbl.remove finish flow;
    flushed
  in
  let s =
    {
      Sched.name = "sfq-mutant-" ^ name mode;
      enqueue;
      dequeue;
      evict;
      close_flow;
      peek = (fun () -> Option.map (fun (_, p) -> p) (Fheap.min_elt heap));
      size = (fun () -> Fheap.length heap);
      backlog =
        (fun flow -> Option.value (Hashtbl.find_opt counts flow) ~default:0);
    }
  in
  (s, fun () -> !v)

let burst ?rate ~at ~flow ~len n : Workload.arrival list =
  List.init n (fun _ -> { Workload.at; flow; len; rate })

let base ~capacity ~weights arrivals : Workload.t =
  {
    capacity;
    weights;
    arrivals;
    reweights = [];
    churn = [];
    rate_changes = [];
    buffer = None;
  }

let workload mode : Workload.t =
  match mode with
  | Stale_vtime ->
    (* f2 wakes at t=50 with v stuck at 0: its start tags restart at 0
       and it monopolizes the link until they catch up — during the
       both-backlogged window f1 gets nothing for ~5 packet times,
       |W1/r1 − W2/r2| ≈ 111 s >> bound 2·l/r = 44.4 s. *)
    base ~capacity:100.0
      ~weights:[ (1, 45.0); (2, 45.0) ]
      (burst ~at:0.0 ~flow:1 ~len:1000 20 @ burst ~at:50.0 ~flow:2 ~len:1000 20)
  | No_weight ->
    (* 8:1 reservation served 1:1: drift reaches ~260 s, bound 11.25 s. *)
    base ~capacity:1000.0
      ~weights:[ (1, 800.0); (2, 100.0) ]
      (burst ~at:0.0 ~flow:1 ~len:1000 30 @ burst ~at:0.0 ~flow:2 ~len:1000 30)
  | Finish_key ->
    (* The low-rate flow's lone packet has the largest finish tag, so
       finish-tag order serves it dead last (t = 310 s); Theorem 4
       promises EAT + l2max/C + l/C = 20 s. *)
    base ~capacity:100.0
      ~weights:[ (1, 2.0); (2, 90.0) ]
      (burst ~at:0.0 ~flow:2 ~len:1000 30 @ burst ~at:0.0 ~flow:1 ~len:1000 1)
  | Lifo ->
    base ~capacity:100.0 ~weights:[ (1, 50.0) ] (burst ~at:0.0 ~flow:1 ~len:1000 3)
  | Lazy_idle ->
    base ~capacity:100.0 ~weights:[ (1, 50.0) ] (burst ~at:0.0 ~flow:1 ~len:1000 6)
  | Wrong_queue_drop ->
    (* Per-flow budget 3, Drop_front: f1's 4th arrival evicts f1's
       oldest, but the mutant reports f2's lone packet as the casualty.
       The first false report scan-removes f2#1 from flow_fifo's
       pending set; the second (f2#1 is still queued, so it is blamed
       again) or f2#1's real departure trips the monitor. *)
    {
      (base ~capacity:100.0
         ~weights:[ (1, 50.0); (2, 40.0) ]
         (burst ~at:0.0 ~flow:2 ~len:1000 1 @ burst ~at:0.0 ~flow:1 ~len:1000 6))
      with
      buffer =
        Some
          { Workload.per_flow = Some 3; aggregate = None;
            policy = Buffered.Drop_front };
    }
  | Stale_reopen ->
    (* f2 accumulates finish tag ≈ 2000 (10 × 1000/5), closes at t=10,
       reopens at t=12. Correct SFQ forgets F on close, so the reopened
       flow re-enters at S = v(t) ≈ tens; the mutant re-enters at
       max(v, 2000) and starves f2 for f1's whole backlog (~390 s):
       |W1/r1 − W2/r2| ≈ 780 s >> bound l1/r1 + l2/r2 = 220 s. *)
    {
      (base ~capacity:100.0
         ~weights:[ (1, 50.0); (2, 5.0) ]
         (burst ~at:0.0 ~flow:1 ~len:1000 40
         @ burst ~at:0.0 ~flow:2 ~len:1000 10
         @ burst ~at:12.0 ~flow:2 ~len:1000 20))
      with
      churn = [ { Workload.at = 10.0; flow = 2 } ];
    }

let expected_monitor = function
  | Stale_vtime -> "fairness"
  | No_weight -> "fairness"
  | Finish_key -> "sfq_delay"
  | Lifo -> "flow_fifo"
  | Lazy_idle -> "work_conserving"
  | Wrong_queue_drop -> "flow_fifo"
  | Stale_reopen -> "fairness"
