open Sfq_base
module Service_log = Sfq_analysis.Service_log

type key = { flow : int; seq : int }

type schedule = {
  sorder : key array;
  out : (key, float) Hashtbl.t;
  cap : float;
}

type witness = {
  index : int;
  expected : key;
  got : key;
  at : float;
  hop : int;
  margin : float;
}

type verdict = Replayed of int | Diverged of witness

type mutant = Wrong_slack | Priority_tie

let mutant_name = function
  | Wrong_slack -> "lstf-wrong-slack"
  | Priority_tie -> "lstf-priority-tie"

let guard ~what (w : Workload.t) =
  if w.Workload.churn <> [] then
    invalid_arg (what ^ ": churned workloads recycle flow ids");
  if w.Workload.buffer <> None then
    invalid_arg (what ^ ": buffered workloads drop packets");
  if w.Workload.rate_changes <> [] then
    invalid_arg (what ^ ": rate fluctuation breaks the len/C residual")

(* Observe every service completion of [sched] without perturbing it:
   the tap sits below Monitor.wrap, exactly where the fixed-rate server
   computes the same finish time from the same capacity. *)
let tapped sched ~cap ~on_serve =
  {
    sched with
    Sched.dequeue =
      (fun ~now ->
        match sched.Sched.dequeue ~now with
        | Some p ->
          on_serve p ~start:now ~finish:(now +. (float_of_int p.Packet.len /. cap));
          Some p
        | None -> None);
  }

let record ~sched ?(monitors = []) (w : Workload.t) =
  guard ~what:"Replay.record" w;
  let cap = w.Workload.capacity in
  let slog = Service_log.create () in
  let recording =
    tapped sched ~cap ~on_serve:(fun p ~start ~finish ->
        Service_log.note_arrival slog ~at:p.Packet.born p.Packet.flow;
        Service_log.note_completion slog ~flow:p.Packet.flow ~start ~finish
          ~len:p.Packet.len)
  in
  let (_ : Run.outcome) = Run.fixed_rate ~sched:recording ~monitors w in
  (* Per-flow FIFO keys the log's anonymous completions back to
     sequence numbers: the k-th completion of a flow is its k-th
     packet. *)
  let out = Hashtbl.create 64 in
  let counts : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  Sfq_util.Vec.iter (Service_log.completions slog)
    ~f:(fun (c : Service_log.completion) ->
      let n = (match Hashtbl.find_opt counts c.flow with Some n -> n | None -> 0) + 1 in
      Hashtbl.replace counts c.flow n;
      let k = { flow = c.flow; seq = n } in
      Hashtbl.replace out k c.finish;
      order := k :: !order);
  { sorder = Array.of_list (List.rev !order); out; cap }

let of_table ~capacity table =
  if capacity <= 0.0 then invalid_arg "Replay.of_table: capacity must be positive";
  let out = Hashtbl.create (List.length table) in
  List.iter (fun (k, o) -> Hashtbl.replace out k o) table;
  { sorder = Array.of_list (List.map fst table); out; cap = capacity }

let output_time sch k = Hashtbl.find_opt sch.out k
let order sch = Array.copy sch.sorder
let capacity sch = sch.cap

let schedule_hash sch =
  Digest.to_hex
    (Digest.string
       (String.concat ";"
          (Array.to_list
             (Array.map (fun k -> Printf.sprintf "%d.%d" k.flow k.seq) sch.sorder))))

let deadline_fn sch (p : Packet.t) =
  match Hashtbl.find_opt sch.out { flow = p.Packet.flow; seq = p.Packet.seq } with
  | Some o -> o
  | None ->
    invalid_arg
      (Printf.sprintf "Replay: packet %d.%d absent from the recorded schedule"
         p.Packet.flow p.Packet.seq)

let lstf ?mutant sch =
  let deadline = deadline_fn sch in
  let residual (p : Packet.t) = float_of_int p.Packet.len /. sch.cap in
  let open Sfq_sched in
  match mutant with
  | None -> Lstf.sched (Lstf.create ~residual ~deadline ())
  | Some Wrong_slack ->
    (* The ingress slack o − i − tx, frozen at arrival: subtracting
       born from the deadline stops the slack from depleting while the
       packet queues, so a late-born packet with a later output time
       can overtake an early-born one. *)
    Lstf.sched
      (Lstf.create ~residual ~deadline:(fun p -> deadline p -. p.Packet.born) ())
  | Some Priority_tie ->
    (* FIFO tie order broken: among equal ranks the higher flow id is
       preferred instead of the earlier arrival. *)
    Lstf.sched
      (Lstf.create
         ~tie:(Tag_queue.High_rate (fun f -> float_of_int (f + 1)))
         ~residual ~deadline ())

(* Witness margin currency: the recorded output time. The schedule
   does not store packet lengths, so the margin compares deadlines
   rather than deadline − tx ranks; for the equal-length packets the
   divergence cells use, the tx terms cancel and the two orders
   agree. *)
let rank_of sch k = Hashtbl.find_opt sch.out k

let missing = { flow = -1; seq = -1 }

let compare_streams sch (got : (key * float) array) =
  let exp = sch.sorder in
  let n = min (Array.length exp) (Array.length got) in
  let rec go i =
    if i >= n then
      if Array.length exp = Array.length got then Replayed (Array.length got)
      else
        let index = n in
        let expected = if index < Array.length exp then exp.(index) else missing in
        let got_k, at =
          if index < Array.length got then got.(index) else (missing, nan)
        in
        Diverged { index; expected; got = got_k; at; hop = 0; margin = 0.0 }
    else begin
      let g, at = got.(i) in
      let e = exp.(i) in
      if e = g then go (i + 1)
      else
        let margin =
          match (rank_of sch g, rank_of sch e) with
          | Some rg, Some re -> rg -. re
          | _ -> 0.0
        in
        Diverged { index = i; expected = e; got = g; at; hop = 0; margin }
    end
  in
  go 0

let replay ~sched ?(monitors = []) sch (w : Workload.t) =
  guard ~what:"Replay.replay" w;
  let served = ref [] in
  let replaying =
    tapped sched ~cap:w.Workload.capacity ~on_serve:(fun p ~start ~finish:_ ->
        served := ({ flow = p.Packet.flow; seq = p.Packet.seq }, start) :: !served)
  in
  let (_ : Run.outcome) = Run.fixed_rate ~sched:replaying ~monitors w in
  compare_streams sch (Array.of_list (List.rev !served))

let replay_lstf ?mutant sch w = replay ~sched:(lstf ?mutant sch) sch w

let check ~make w =
  let sch = record ~sched:(make ()) w in
  replay_lstf sch w

let verdict_digest = function
  | Replayed n -> Printf.sprintf "replayed=%d" n
  | Diverged x ->
    Printf.sprintf "diverged@%d expected=%d.%d got=%d.%d at=%h hop=%d margin=%h"
      x.index x.expected.flow x.expected.seq x.got.flow x.got.seq x.at x.hop
      x.margin

(* ------------------------------------------------------------------ *)
(* Sweep cells                                                          *)

type cell = { label : string; run : unit -> verdict }

let weights_of (w : Workload.t) = Weights.of_list ~default:1.0 w.Workload.weights

let factories (w : Workload.t) =
  let open Sfq_sched in
  let cap = w.Workload.capacity in
  let specs () =
    List.map
      (fun (f, r) -> (f, { Delay_edd.rate = r; deadline = 1.0; max_len = 1000 }))
      w.Workload.weights
  in
  [
    ("sfq", fun () -> Sfq_core.Sfq.sched (Sfq_core.Sfq.create (weights_of w)));
    ("scfq", fun () -> Scfq.sched (Scfq.create (weights_of w)));
    ("vc", fun () -> Virtual_clock.sched (Virtual_clock.create (weights_of w)));
    ("drr", fun () -> Drr.sched (Drr.create (weights_of w)));
    ("edd", fun () -> Delay_edd.sched (Delay_edd.create (specs ())));
    ("fifo", fun () -> Fifo.sched (Fifo.create ()));
    ("wf2q", fun () -> Wf2q.sched (Wf2q.create ~capacity:cap (weights_of w)));
    ( "pifo-sfq",
      fun () ->
        Sfq_pifo.Pifo_sched.sched
          (Sfq_pifo.Pifo_sched.create (Sfq_pifo.Programs.sfq (weights_of w))) );
  ]

let suite_cells ?pool ?limit () =
  let pool = match pool with Some p -> p | None -> Suite.theorem_pool in
  let pool =
    match limit with
    | None -> pool
    | Some n -> List.filteri (fun i _ -> i < n) pool
  in
  List.concat
    (List.mapi
       (fun i w ->
         List.map
           (fun (name, make) ->
             {
               label = Printf.sprintf "replay/%s#%d" name i;
               run = (fun () -> check ~make w);
             })
           (factories w))
       pool)

(* ------------------------------------------------------------------ *)
(* Directed mutant kills                                                *)

let arr at flow len = { Workload.at; flow; len; rate = None }

let base_workload arrivals =
  {
    Workload.capacity = 1000.0;
    weights = [ (0, 300.0); (1, 300.0); (2, 300.0) ];
    arrivals;
    reweights = [];
    churn = [];
    rate_changes = [];
    buffer = None;
  }

let directed_kills () =
  [
    (* The crossing trace: an 8 s blocker holds the server while f1
       (born 0.5, due 9) and f2 (born 5, due 10) queue. Correct ranks
       8 < 9 serve f1 first, matching the schedule; the mutant's
       frozen ingress slacks 7.5 vs 4 serve f2 first. *)
    ( Wrong_slack,
      "lstf-wrong-slack/crossing",
      fun () ->
        let w =
          base_workload [ arr 0.0 0 8000; arr 0.5 1 1000; arr 5.0 2 1000 ]
        in
        let sch =
          of_table ~capacity:1000.0
            [
              ({ flow = 0; seq = 1 }, 8.0);
              ({ flow = 1; seq = 1 }, 9.0);
              ({ flow = 2; seq = 1 }, 10.0);
            ]
        in
        (replay_lstf sch w, replay_lstf ~mutant:Wrong_slack sch w) );
    (* The tied table: output times 9 (len 1000) and 10 (len 2000)
       imply the same latest start 8, a tie no serial recording can
       produce. Correct LSTF breaks it FIFO (f1 arrived first); the
       mutant prefers the higher flow id. *)
    ( Priority_tie,
      "lstf-priority-tie/tied-table",
      fun () ->
        let w =
          base_workload [ arr 0.0 0 8000; arr 0.5 1 1000; arr 0.6 2 2000 ]
        in
        let sch =
          of_table ~capacity:1000.0
            [
              ({ flow = 0; seq = 1 }, 8.0);
              ({ flow = 1; seq = 1 }, 9.0);
              ({ flow = 2; seq = 1 }, 10.0);
            ]
        in
        (replay_lstf sch w, replay_lstf ~mutant:Priority_tie sch w) );
  ]
