(** The composed end-to-end delay oracle: Corollary 1 (Thm 8/9's
    network-of-servers argument) as an executable invariant.

    A single SFQ server bounds a packet's departure by
    [EAT + Σ_{n≠f} l_n^max/C + l/C] (Theorem 4; eq. 56 is the SCFQ
    analogue). Corollary 1 composes the per-server constants: across a
    route of servers with per-hop constants [β^n] and propagation
    delays [τ^n], every packet of a reserved flow is delivered by
    [EAT¹(p) + Σ_n β^n + Σ_n τ^n], where [EAT¹] is the earliest
    arrival time at the {e first} hop (eq. 37, maintained here from
    injection times and the flow's reserved rate).

    The oracle is fed from the network edge only — {!inject} when the
    packet enters the first hop, {!deliver} from
    {!Sfq_netsim.Net.on_delivered} — so it cannot accidentally reuse
    the scheduler's own bookkeeping; the per-hop [β] list is supplied
    by the caller from the topology (capacities, competing-flow
    [l^max] sums: {!Sfq_core.Bounds.sfq_beta}) and must cover {e every}
    hop. A mutant that forgets one hop's [β] produces a bound short by
    at least that hop's service time, which a packet that actually
    crosses the hop must violate — the "forgets a hop's bound" kill
    the directed tests demand.

    Lost packets (buffer drops, closure flushes en route) have no
    delivery to bound; they are skipped per-flow-FIFO and counted in
    {!lost}. Like {!Monitor}, the first violation latches. *)

open Sfq_base

type t

val create :
  name:string ->
  rate:(Packet.flow -> float) ->
  betas:(Packet.flow -> float list) ->
  taus:(Packet.flow -> float list) ->
  unit ->
  t
(** [rate] is the reserved rate used for EAT chaining (a per-packet
    {!Packet.rate} override wins, mirroring generalized SFQ).
    [betas]/[taus] give the per-hop constants of the flow's route, in
    route order; [taus] includes the final hop's propagation to the
    sink (delivery fires after it). Both are consulted per delivery, so
    they may be closures over topology state. *)

val inject : t -> Packet.t -> at:float -> unit
(** Record the packet's arrival at the network edge and advance the
    flow's EAT (eq. 37). Call in injection order per flow. *)

val deliver : t -> Packet.t -> at:float -> unit
(** Check the composed bound for a delivered packet. Out-of-order or
    never-injected deliveries are violations in their own right. *)

val finalize : t -> until:float -> unit
(** Count never-delivered packets into {!lost}. Call once, after the
    simulation drains. *)

val checked : t -> int
(** Deliveries whose bound was checked. *)

val lost : t -> int
(** Injected packets that never reached the sink. *)

val min_slack : t -> float
(** Tightest observed [bound - measured] over checked deliveries
    ([infinity] before the first); negative iff a violation latched. *)

val result : t -> Monitor.violation option
