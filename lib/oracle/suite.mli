(** The standard acceptance sweep as data: every (discipline, workload)
    cell the oracle layer checks, phrased as {!Run.cell}s so one
    definition serves the serial test suite, the domain-parallel
    determinism suite, the parallel-speedup benchmark series and the
    [sfq-sweep] CLI.

    Monitor sets follow the applicability rules of DESIGN.md §7: the
    full SFQ set (Theorems 1/2/4 + structural) only on rate-pure SFQ
    runs, Theorem 4 alone under per-packet rate overrides, eq. 56 for
    SCFQ, structural invariants for every discipline. Workload pools are
    the frozen deterministic pools of [test_oracle] — fixed seeds, same
    traces on every machine.

    Every constructor returns cells whose driver thunks build the
    scheduler {e and} its monitors at execution time, inside the task:
    nothing mutable escapes a cell, which is what makes the sweep safe
    to fan out over domains (see {!Run.sweep}). *)

val theorem_pool : Workload.t list
(** 120 workloads, seed 0x5f9, no rate overrides. *)

val override_pool : Workload.t list
(** 120 workloads, seed 0xacd, with per-packet rate overrides. *)

val reweight_pool : Workload.t list
(** 60 workloads, seed 0xbee, with mid-run weight changes. *)

val stress_pool : Workload.t list
(** 40 workloads, seed 0xd1e, with flow churn, finite-buffer overload
    and server-rate fluctuation all enabled. *)

(** {1 Monitor sets} (exposed for directed tests) *)

val structural : unit -> Monitor.t list

val stress_set : Sfq_base.Sched.t -> Monitor.t list
(** {!structural} plus the packet-conservation law probing the given
    scheduler's backlog — the only monitors sound under drops,
    closures and rate fluctuation. *)

val sfq_set :
  ?allow_idle_reset:bool -> Workload.t -> vtime:(unit -> float) -> Monitor.t list

val scfq_set : Workload.t -> vtime:(unit -> float) -> Monitor.t list

val sfq_override_set : Workload.t -> vtime:(unit -> float) -> Monitor.t list

(** {1 Cells} *)

val sfq_cells : ?pool:Workload.t list -> unit -> Run.cell list
(** SFQ under the full theorem set over [pool] (default
    {!theorem_pool}); labels ["sfq#i"]. *)

val scfq_cells : ?pool:Workload.t list -> unit -> Run.cell list
(** SCFQ under Theorem 1 (with H_SCFQ) + eq. 56; labels ["scfq#i"]. *)

val sfq_override_cells : ?pool:Workload.t list -> unit -> Run.cell list
(** SFQ under Theorem 4 only, over the override pool by default. *)

val structural_cells : ?pool:Workload.t list -> unit -> Run.cell list
(** All nine disciplines under the structural invariants, over the
    override pool by default; labels ["<disc>#i"]. *)

val reweight_cells : ?pool:Workload.t list -> unit -> Run.cell list
(** SFQ and SCFQ with dynamic weight tables under the structural
    invariants, over the reweight pool by default. *)

val stress_cells : ?pool:Workload.t list -> unit -> Run.cell list
(** All nine disciplines under {!stress_set} over the churn/overload
    {!stress_pool} by default; labels ["<disc>+stress#i"]. *)

val fastpath_cells : ?pool:Workload.t list -> unit -> Run.cell list
(** The fixed-point fast path over [pool] (default {!theorem_pool}):
    sfq-fast under the full SFQ theorem set, scfq-fast under the SCFQ
    set, vc-fast under the structural invariants, and sp-pifo under
    structural + conservation + the {e relaxed} fairness oracle
    ({!Monitor.fairness_measured}, which records a budget and never
    fails). Labels ["sfq-fast#i"], ["scfq-fast#i"], ["vc-fast#i"],
    ["sp-pifo#i"]. *)

val pifo_cells : ?pool:Workload.t list -> unit -> Run.cell list
(** Every {!Sfq_pifo.Programs} rank program through the
    {!Sfq_pifo.Pifo_sched} runtime, over the first 90 traces of [pool]
    (default {!theorem_pool}): pifo-sfq under the full SFQ theorem
    set, pifo-scfq under the SCFQ set, and the clock-/GPS-driven ports
    (pifo-vc, pifo-edd, pifo-fqs, pifo-wf2q) under the structural
    invariants, mirroring their float originals' sets. Labels
    ["pifo-<disc>#i"]. *)

val all_cells : unit -> Run.cell list
(** The whole acceptance sweep, in a fixed order: {!sfq_cells},
    {!scfq_cells}, {!sfq_override_cells}, {!structural_cells},
    {!reweight_cells}, {!stress_cells}, {!fastpath_cells},
    {!pifo_cells} — 2700 cells. Cells are only ever appended, so
    registry indices (and the seeds derived from them) stay stable
    across versions. *)

val mutant_cells : unit -> (Mutant.mode * Run.cell) list
(** One cell per seeded bug: the mutant scheduler under the full SFQ
    set (idle resets allowed) plus the conservation law on its crafted
    workload — except [Wrong_queue_drop], whose lossy run only admits
    {!stress_set}. The expected verdict is [Mutant.expected_monitor]. *)
