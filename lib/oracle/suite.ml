open Sfq_base
open Sfq_sched
open Sfq_core

let weights_of (w : Workload.t) = Weights.of_list ~default:1.0 w.Workload.weights

(* ------------------------------------------------------------------ *)
(* Frozen pools (fixed seeds: same traces everywhere)                   *)

let theorem_pool =
  Workload.deterministic_pool ~rate_overrides:false ~seed:0x5f9 ~n:120 ()

let override_pool =
  Workload.deterministic_pool ~rate_overrides:true ~seed:0xacd ~n:120 ()

let reweight_pool =
  Workload.deterministic_pool ~reweights:true ~rate_overrides:false ~seed:0xbee
    ~n:60 ()

let stress_pool =
  Workload.deterministic_pool ~rate_overrides:false ~churn:true ~overload:true
    ~rate_fluct:true ~seed:0xd1e ~n:40 ()

(* ------------------------------------------------------------------ *)
(* Monitor sets                                                         *)

let structural () = [ Monitor.work_conserving (); Monitor.flow_fifo () ]

(* Structural invariants + the packet-conservation law, probing the
   given scheduler's own backlog count. The only set sound under
   drops, closures and server-rate fluctuation: the theorem monitors
   presuppose a loss-free constant-rate server. *)
let stress_set (s : Sched.t) =
  structural () @ [ Monitor.conservation ~size:s.Sched.size () ]

(* Full SFQ set: Theorems 1, 2 and 4 plus the structural invariants.
   Sound only when packets carry no rate overrides (Theorems 1 and 2
   are stated against the reserved rates). *)
let sfq_set ?(allow_idle_reset = false) (w : Workload.t) ~vtime =
  let rate = Workload.rate_of w and lmax = Workload.lmax w in
  let flows = Workload.flows w and capacity = w.Workload.capacity in
  structural ()
  @ [
      Monitor.tag_monotone ~name:"tag_monotone" ~allow_idle_reset ~vtime ();
      Monitor.fairness ~rate ();
      Monitor.sfq_delay ~flows ~lmax ~rate ~capacity ();
      Monitor.sfq_throughput ~flows ~lmax ~rate ~capacity ();
    ]

let scfq_set (w : Workload.t) ~vtime =
  let rate = Workload.rate_of w and lmax = Workload.lmax w in
  let flows = Workload.flows w and capacity = w.Workload.capacity in
  structural ()
  @ [
      Monitor.tag_monotone ~name:"tag_monotone" ~vtime ();
      Monitor.fairness ~bound:Bounds.h_scfq ~rate ();
      Monitor.scfq_delay ~flows ~lmax ~rate ~capacity ();
    ]

(* Theorem 4 survives per-packet rate overrides (generalized SFQ, §2.3)
   but Theorems 1/2 do not apply to override traffic. *)
let sfq_override_set (w : Workload.t) ~vtime =
  let rate = Workload.rate_of w and lmax = Workload.lmax w in
  let flows = Workload.flows w and capacity = w.Workload.capacity in
  structural ()
  @ [
      Monitor.tag_monotone ~name:"tag_monotone" ~allow_idle_reset:false ~vtime ();
      Monitor.sfq_delay ~flows ~lmax ~rate ~capacity ();
    ]

(* ------------------------------------------------------------------ *)
(* Cells. Every driver thunk builds its scheduler and monitors at
   execution time: all mutable state is task-local (see Run.sweep). *)

let cells ~what ~driver pool =
  List.mapi
    (fun i w ->
      {
        Run.label = Printf.sprintf "%s#%d" what i;
        workload = w;
        driver = (fun () -> driver w);
      })
    pool

let sfq_driver w =
  let s = Sfq.create (weights_of w) in
  {
    Run.sched = Sfq.sched s;
    monitors = sfq_set w ~vtime:(fun () -> Sfq.vtime s);
    on_reweight = None;
  }

let sfq_cells ?(pool = theorem_pool) () = cells ~what:"sfq" ~driver:sfq_driver pool

let scfq_cells ?(pool = theorem_pool) () =
  cells ~what:"scfq" pool ~driver:(fun w ->
      let s = Scfq.create (weights_of w) in
      {
        Run.sched = Scfq.sched s;
        monitors = scfq_set w ~vtime:(fun () -> Scfq.vtime s);
        on_reweight = None;
      })

let sfq_override_cells ?(pool = override_pool) () =
  cells ~what:"sfq+overrides" pool ~driver:(fun w ->
      let s = Sfq.create (weights_of w) in
      {
        Run.sched = Sfq.sched s;
        monitors = sfq_override_set w ~vtime:(fun () -> Sfq.vtime s);
        on_reweight = None;
      })

(* Factories, not schedulers: the Sched.t is only built inside the
   driver thunk, on the domain that runs the cell. *)
let discipline_factories (w : Workload.t) =
  let cap = w.Workload.capacity in
  let specs () =
    List.map
      (fun (f, r) -> (f, { Delay_edd.rate = r; deadline = 1.0; max_len = 1000 }))
      w.Workload.weights
  in
  [
    ("sfq", fun () -> Sfq.sched (Sfq.create (weights_of w)));
    ("scfq", fun () -> Scfq.sched (Scfq.create (weights_of w)));
    ("fqs", fun () -> Fqs.sched (Fqs.create ~capacity:cap (weights_of w)));
    ("vc", fun () -> Virtual_clock.sched (Virtual_clock.create (weights_of w)));
    ("wfq-fluid", fun () -> Wfq.sched (Wfq.create ~capacity:cap (weights_of w)));
    ("wfq-real", fun () -> Wfq.sched (Wfq.create ~capacity:cap ~clock:`Real (weights_of w)));
    ("wf2q", fun () -> Wf2q.sched (Wf2q.create ~capacity:cap (weights_of w)));
    ("drr", fun () -> Drr.sched (Drr.create (weights_of w)));
    ("edd", fun () -> Delay_edd.sched (Delay_edd.create (specs ())));
  ]

let structural_cells ?(pool = override_pool) () =
  List.concat
    (List.mapi
       (fun i w ->
         List.map
           (fun (name, make) ->
             {
               Run.label = Printf.sprintf "%s#%d" name i;
               workload = w;
               driver =
                 (fun () ->
                   { Run.sched = make (); monitors = structural (); on_reweight = None });
             })
           (discipline_factories w))
       pool)

let dyn_weights (w : Workload.t) =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (f, r) -> Hashtbl.replace tbl f r) w.Workload.weights;
  let wt =
    Weights.of_fun (fun f ->
        match Hashtbl.find_opt tbl f with Some r -> r | None -> 1.0)
  in
  (wt, fun ~flow ~rate -> Hashtbl.replace tbl flow rate)

let reweight_cells ?(pool = reweight_pool) () =
  List.concat
    (List.mapi
       (fun i w ->
         let cell name mk =
           {
             Run.label = Printf.sprintf "%s+reweight#%d" name i;
             workload = w;
             driver = mk;
           }
         in
         [
           cell "sfq" (fun () ->
               let wt, f = dyn_weights w in
               {
                 Run.sched = Sfq.sched (Sfq.create wt);
                 monitors = structural ();
                 on_reweight = Some f;
               });
           cell "scfq" (fun () ->
               let wt, f = dyn_weights w in
               {
                 Run.sched = Scfq.sched (Scfq.create wt);
                 monitors = structural ();
                 on_reweight = Some f;
               });
         ])
       pool)

let stress_cells ?(pool = stress_pool) () =
  List.concat
    (List.mapi
       (fun i w ->
         List.map
           (fun (name, make) ->
             {
               Run.label = Printf.sprintf "%s+stress#%d" name i;
               workload = w;
               driver =
                 (fun () ->
                   let s = make () in
                   { Run.sched = s; monitors = stress_set s; on_reweight = None });
             })
           (discipline_factories w))
       pool)

(* Fast-path cells: the exact fixed-point schedulers face the same
   theorem sets as their float originals (equivalence is the point, so
   any quantization-induced violation must surface); vc-fast, like the
   float Virtual Clock, only carries structural invariants; sp-pifo is
   approximate by design, so it gets the structural/conservation checks
   plus the *relaxed* fairness oracle, which measures a budget and
   never fails. *)
let fastpath_cells ?(pool = theorem_pool) () =
  let open Sfq_fastpath in
  cells ~what:"sfq-fast" pool ~driver:(fun w ->
      let s = Sfq_fast.create (weights_of w) in
      {
        Run.sched = Sfq_fast.sched s;
        monitors = sfq_set w ~vtime:(fun () -> Sfq_fast.vtime s);
        on_reweight = None;
      })
  @ cells ~what:"scfq-fast" pool ~driver:(fun w ->
        let s = Scfq_fast.create (weights_of w) in
        {
          Run.sched = Scfq_fast.sched s;
          monitors = scfq_set w ~vtime:(fun () -> Scfq_fast.vtime s);
          on_reweight = None;
        })
  @ cells ~what:"vc-fast" pool ~driver:(fun w ->
        let s = Virtual_clock_fast.create (weights_of w) in
        { Run.sched = Virtual_clock_fast.sched s; monitors = structural (); on_reweight = None })
  @ cells ~what:"sp-pifo" pool ~driver:(fun w ->
        let s = Sp_pifo.create (weights_of w) in
        let sched = Sp_pifo.sched s in
        let budget, _ = Monitor.fairness_measured ~rate:(Workload.rate_of w) () in
        {
          Run.sched = sched;
          monitors =
            [
              Monitor.work_conserving ();
              Monitor.conservation ~size:sched.Sched.size ();
              budget;
            ];
          on_reweight = None;
        })

(* Rank-program cells: every Programs port through the Pifo_sched
   runtime faces the same monitor set as its hand-written counterpart
   over a 90-trace slice of the theorem pool — pifo-sfq/pifo-scfq keep
   the full theorem sets (equivalence with the fast path is the
   point), the clock- and GPS-driven ports carry the structural
   invariants like their float originals in [structural_cells]. *)
let pifo_cells ?(pool = theorem_pool) () =
  let open Sfq_pifo in
  let pool = List.filteri (fun i _ -> i < 90) pool in
  let specs (w : Workload.t) =
    List.map
      (fun (f, r) -> (f, { Delay_edd.rate = r; deadline = 1.0; max_len = 1000 }))
      w.Workload.weights
  in
  let structural_cell what mk =
    cells ~what pool ~driver:(fun w ->
        {
          Run.sched = Pifo_sched.sched (Pifo_sched.create (mk w));
          monitors = structural ();
          on_reweight = None;
        })
  in
  cells ~what:"pifo-sfq" pool ~driver:(fun w ->
      let s = Pifo_sched.create (Programs.sfq (weights_of w)) in
      {
        Run.sched = Pifo_sched.sched s;
        monitors = sfq_set w ~vtime:(fun () -> Pifo_sched.vtime s);
        on_reweight = None;
      })
  @ cells ~what:"pifo-scfq" pool ~driver:(fun w ->
        let s = Pifo_sched.create (Programs.scfq (weights_of w)) in
        {
          Run.sched = Pifo_sched.sched s;
          monitors = scfq_set w ~vtime:(fun () -> Pifo_sched.vtime s);
          on_reweight = None;
        })
  @ structural_cell "pifo-vc" (fun w -> Programs.virtual_clock (weights_of w))
  @ structural_cell "pifo-edd" (fun w -> Programs.delay_edd (specs w))
  @ structural_cell "pifo-fqs" (fun w ->
        Programs.fqs ~capacity:w.Workload.capacity (weights_of w))
  @ structural_cell "pifo-wf2q" (fun w ->
        Programs.wf2q ~capacity:w.Workload.capacity (weights_of w))

let all_cells () =
  sfq_cells () @ scfq_cells () @ sfq_override_cells () @ structural_cells ()
  @ reweight_cells () @ stress_cells () @ fastpath_cells () @ pifo_cells ()

(* The full SFQ theorem set presupposes a loss-free run, so the
   buffer-overflow mutant gets the stress set (its expected monitor,
   flow_fifo, is structural); every other mutant keeps the theorems. *)
let mutant_monitors mode w ~vtime ~sched =
  match (mode : Mutant.mode) with
  | Wrong_queue_drop -> stress_set sched
  | _ ->
    sfq_set ~allow_idle_reset:true w ~vtime
    @ [ Monitor.conservation ~size:sched.Sched.size () ]

let mutant_cells () =
  List.map
    (fun mode ->
      let w = Mutant.workload mode in
      ( mode,
        {
          Run.label = "mutant-" ^ Mutant.name mode;
          workload = w;
          driver =
            (fun () ->
              let sched, vtime = Mutant.sched mode (weights_of w) in
              {
                Run.sched;
                monitors = mutant_monitors mode w ~vtime ~sched;
                on_reweight = None;
              });
        } ))
    Mutant.all
