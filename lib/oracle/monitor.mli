(** Online theorem oracles: the paper's guarantees as executable
    invariants.

    A monitor consumes the event stream of one scheduler run — every
    arrival, every (fixed-rate) service completion, every idle poll —
    and latches the {e first} violation of the property it encodes.
    {!wrap} turns any {!Sfq_base.Sched.t} into an observed scheduler
    that feeds a list of monitors, so the same workload driver
    exercises every discipline and every deliberately-broken mutant
    under the same set of oracles.

    Which theorem each monitor encodes:
    - {!work_conserving}: the work-conservation premise of §1/§2 — a
      non-empty scheduler must hand over a packet when the server asks;
    - {!flow_fifo}: packets of a flow depart in arrival order and
      none are fabricated, duplicated or dropped (the paper's model,
      §2.1);
    - {!tag_monotone}: the virtual time v(t) is non-decreasing within
      a busy period (lemmas behind eqs. 4–6);
    - {!fairness}: Theorem 1 —
      [|W_f(t1,t2)/r_f − W_m(t1,t2)/r_m| <= l_f^max/r_f + l_m^max/r_m]
      for every interval in which both flows are backlogged;
    - {!sfq_delay}: Theorem 4 at a constant-rate server (δ = 0) —
      [L_SFQ(p_f^j) <= EAT(p_f^j) + Σ_{n≠f} l_n^max/C + l_f^j/C];
    - {!scfq_delay}: eq. 56 —
      [L_SCFQ(p_f^j) <= EAT(p_f^j) + Σ_{n≠f} l_n^max/C + l_f^j/r_f];
    - {!sfq_throughput}: Theorem 2 with δ = 0 — a continuously
      backlogged flow receives at least
      [r_f(t2−t1) − r_f Σ_n l_n^max/C − l_f^max] bits.

    The delay and throughput bounds presuppose [Σ_n r_n <= C]; attach
    those monitors only to runs that satisfy it ({!Workload} never
    oversubscribes). Theorem 1 needs no such premise. *)

open Sfq_base

type drop_reason =
  | Rejected  (** refused admission by a buffer policy *)
  | Evicted  (** removed from the queue to make room *)
  | Closed  (** flushed by a flow closure *)

val drop_reason_name : drop_reason -> string

type event =
  | Arrival of { at : float; pkt : Packet.t }
  | Departure of { start : float; finish : float; pkt : Packet.t }
      (** Fixed-rate service: [finish = start + len/C]. *)
  | Drop of { at : float; pkt : Packet.t; reason : drop_reason }
      (** The packet left the system without service. *)
  | Idle of { at : float; backlog : int }
      (** A dequeue returned [None]; [backlog] probes the scheduler's
          own [size] at that instant. *)

type violation = { monitor : string; at : float; what : string }

type t

val name : t -> string

val observe : t -> event -> unit
(** Feed one event. After the first violation the monitor latches and
    ignores further events. *)

val finalize : t -> until:float -> unit
(** Run end-of-trace checks (the interval-quantified theorems measure
    over the whole run). Call exactly once, after the last event. *)

val result : t -> violation option
(** The first violation, if any. *)

val pp_violation : Format.formatter -> violation -> unit

(** {1 Structural monitors} *)

val work_conserving : unit -> t

val flow_fifo : unit -> t

val conservation : size:(unit -> int) -> unit -> t
(** The packet-conservation law: at every quiescent point (a
    {!Departure}, an {!Idle} poll, and {!finalize}),
    [arrived = departed + dropped + size ()] — no packet is created,
    duplicated, or silently lost, even under buffer drops and flow
    closures. [size] should probe the scheduler's own backlog count
    (e.g. the wrapped scheduler's [Sched.size]). *)

val tag_monotone : name:string -> ?allow_idle_reset:bool -> vtime:(unit -> float) -> unit -> t
(** Samples [vtime ()] after every event and requires it to be
    non-decreasing. [allow_idle_reset] (default [true]) permits an
    arbitrary jump at an {!Idle} event — SCFQ restarts v at 0 when a
    busy period ends; SFQ only ever raises it, so SFQ callers may pass
    [false] for the stricter check. *)

(** {1 Theorem monitors} *)

val fairness :
  ?name:string ->
  ?bound:(lmax_f:float -> r_f:float -> lmax_m:float -> r_m:float -> float) ->
  rate:(Packet.flow -> float) ->
  unit -> t
(** Theorem 1. At {!finalize}, computes {!Sfq_analysis.Fairness.exact_h}
    for every pair of flows seen and compares it against [bound]
    (default {!Sfq_core.Bounds.h_sfq}) instantiated with the largest
    packet length observed per flow. *)

type fairness_budget = {
  pairs_checked : int;  (** flow pairs with both rates positive *)
  max_h : float;  (** measured H of the worst pair *)
  max_bound : float;  (** Theorem 1 bound for that pair *)
  max_excess : float;
      (** worst [H - bound] over all pairs — negative means the run
          stayed inside the exact-SFQ bound; [neg_infinity] when no
          pair was checked *)
  worst_pair : (Packet.flow * Packet.flow) option;
}

val empty_budget : fairness_budget

val fairness_measured :
  ?name:string ->
  ?bound:(lmax_f:float -> r_f:float -> lmax_m:float -> r_m:float -> float) ->
  rate:(Packet.flow -> float) ->
  unit ->
  t * (unit -> fairness_budget)
(** Relaxed Theorem 1: identical bookkeeping to {!fairness}, but never
    reports a violation — instead, {!finalize} computes the worst
    measured unfairness relative to [bound] (default
    {!Sfq_core.Bounds.h_sfq}) and makes it available through the
    returned thunk (valid after {!finalize}; {!empty_budget} before).
    This is the audit channel for approximate schedulers such as
    {!Sfq_fastpath.Sp_pifo}, whose fairness loss is a measured budget
    rather than a guaranteed bound. *)

val sfq_delay :
  flows:Packet.flow list ->
  lmax:(Packet.flow -> float) ->
  rate:(Packet.flow -> float) ->
  capacity:float ->
  unit -> t
(** Theorem 4, δ = 0. EAT (eq. 37) is maintained from arrivals using
    the packet's own rate ([Packet.rate] override if present, the
    flow's reserved rate otherwise — generalized SFQ, §2.3). [lmax]
    gives each flow's maximum packet length (a static flow property in
    the theorem; use the workload-wide maximum). *)

val scfq_delay :
  flows:Packet.flow list ->
  lmax:(Packet.flow -> float) ->
  rate:(Packet.flow -> float) ->
  capacity:float ->
  unit -> t
(** Eq. 56. SCFQ has no per-packet rates: EAT and the [l/r] term both
    use the flow's reserved rate. *)

val sfq_throughput :
  flows:Packet.flow list ->
  lmax:(Packet.flow -> float) ->
  rate:(Packet.flow -> float) ->
  capacity:float ->
  unit -> t
(** Theorem 2, δ = 0, checked at {!finalize} over every window
    [\[t1,t2\]] whose endpoints are service boundaries (or the
    interval's own endpoints) inside a maximal backlogged interval of
    the flow. *)

(** {1 Attaching to a scheduler} *)

val drop_event : t list -> now:float -> reason:Buffered.reason -> Packet.t -> unit
(** Report a buffer drop to every monitor — the bridge from
    {!Sfq_base.Buffered.make}'s [on_drop] callback to the oracle layer
    ({!Buffered.Rejected} ↦ {!Rejected}, {!Buffered.Evicted} ↦
    {!Evicted}). *)

val wrap : Sched.t -> capacity:(unit -> float) -> monitors:t list -> Sched.t
(** An observed view of the scheduler: [enqueue] emits {!Arrival}
    (before the inner enqueue, so a buffer policy's synchronous drop
    is seen after the arrival it rejects), [dequeue] emits
    {!Departure} (with [finish = now + len/capacity ()]) or {!Idle};
    [capacity] is a thunk so server-rate fluctuation (§2.3) is
    reflected. [evict] emits {!Drop} with reason {!Evicted} and
    [close_flow] one {!Drop} with reason {!Closed} per flushed packet.
    [peek]/[size]/[backlog] pass through unobserved. *)
