open Sfq_base
open Sfq_sched
open Sfq_core
open Sfq_analysis

type drop_reason = Rejected | Evicted | Closed

let drop_reason_name = function
  | Rejected -> "rejected"
  | Evicted -> "evicted"
  | Closed -> "closed"

type event =
  | Arrival of { at : float; pkt : Packet.t }
  | Departure of { start : float; finish : float; pkt : Packet.t }
  | Drop of { at : float; pkt : Packet.t; reason : drop_reason }
  | Idle of { at : float; backlog : int }

type violation = { monitor : string; at : float; what : string }

type t = {
  name : string;
  first : violation option ref;
  observe_f : event -> unit;
  finalize_f : until:float -> unit;
}

let name t = t.name
let result t = !(t.first)
let observe t ev = if !(t.first) = None then t.observe_f ev
let finalize t ~until = if !(t.first) = None then t.finalize_f ~until

let pp_violation ppf v =
  Format.fprintf ppf "[%s] t=%g: %s" v.monitor v.at v.what

(* Floating-point slack for comparisons against closed-form bounds:
   absolute for small magnitudes, relative for large ones. *)
let slack b = 1e-9 *. Float.max 1.0 (Float.abs b)

let make ~name ?observe ?finalize () =
  let first = ref None in
  let report ~at what =
    if !first = None then first := Some { monitor = name; at; what }
  in
  let observe_f =
    match observe with None -> fun _ -> () | Some f -> f report
  in
  let finalize_f =
    match finalize with None -> fun ~until:_ -> () | Some f -> f report
  in
  { name; first; observe_f; finalize_f }

(* ------------------------------------------------------------------ *)
(* Structural monitors                                                  *)

let work_conserving () =
  let outstanding = ref 0 in
  make ~name:"work_conserving"
    ~observe:(fun report -> function
      | Arrival _ -> incr outstanding
      | Departure { finish; _ } ->
        decr outstanding;
        if !outstanding < 0 then report ~at:finish "more departures than arrivals"
      | Drop { at; _ } ->
        decr outstanding;
        if !outstanding < 0 then report ~at "more removals than arrivals"
      | Idle { at; _ } ->
        if !outstanding > 0 then
          report ~at
            (Printf.sprintf "idle poll with %d packet(s) queued" !outstanding))
    ()

(* The paper's implicit packet-conservation law, made explicit for the
   lossy setting: at every quiescent instant,
   arrived = departed + dropped + backlogged. Checked at departures,
   idle polls and finalize — not at Arrival/Drop, where the arriving
   packet is counted by the observer but not yet (or no longer) held by
   the scheduler (a one-packet transient inside [enqueue]). [size]
   probes the scheduler's own backlog so the two sides cannot share a
   bookkeeping bug. *)
let conservation ~size () =
  let arrived = ref 0 and departed = ref 0 and dropped = ref 0 in
  let check report ~at =
    let backlog = size () in
    if !arrived - !departed - !dropped <> backlog then
      report ~at
        (Printf.sprintf
           "conservation violated: arrived %d <> departed %d + dropped %d + \
            backlogged %d"
           !arrived !departed !dropped backlog)
  in
  make ~name:"conservation"
    ~observe:(fun report -> function
      | Arrival _ -> incr arrived
      | Departure { finish; _ } ->
        incr departed;
        check report ~at:finish
      | Drop _ -> incr dropped
      | Idle { at; _ } -> check report ~at)
    ~finalize:(fun report ~until -> check report ~at:until)
    ()

let flow_fifo () =
  let pending : (Packet.flow, int Queue.t) Hashtbl.t = Hashtbl.create 16 in
  let queue_of flow =
    match Hashtbl.find_opt pending flow with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.add pending flow q;
      q
  in
  make ~name:"flow_fifo"
    ~observe:(fun report -> function
      | Arrival { pkt; _ } -> Queue.push pkt.Packet.seq (queue_of pkt.Packet.flow)
      | Departure { finish; pkt; _ } -> (
        match Queue.take_opt (queue_of pkt.Packet.flow) with
        | None ->
          report ~at:finish
            (Printf.sprintf "flow %d: seq %d departed but never arrived"
               pkt.Packet.flow pkt.Packet.seq)
        | Some seq when seq <> pkt.Packet.seq ->
          report ~at:finish
            (Printf.sprintf "flow %d: expected seq %d to depart next, got %d"
               pkt.Packet.flow seq pkt.Packet.seq)
        | Some _ -> ())
      | Drop { at; pkt; reason } ->
        (* A drop may take any position in the flow's FIFO (front for
           drop-front, back for a rejected arrival, anywhere for a
           flush) — but it must name a packet that is actually pending.
           This is what catches a policy that debits one queue while
           evicting from another. *)
        let q = queue_of pkt.Packet.flow in
        let n = Queue.length q in
        let found = ref false in
        for _ = 1 to n do
          let s = Queue.pop q in
          if (not !found) && s = pkt.Packet.seq then found := true else Queue.push s q
        done;
        if not !found then
          report ~at
            (Printf.sprintf "flow %d: %s seq %d was not pending" pkt.Packet.flow
               (drop_reason_name reason) pkt.Packet.seq)
      | Idle _ -> ())
    ~finalize:(fun report ~until ->
      Hashtbl.iter
        (fun flow q ->
          if not (Queue.is_empty q) then
            report ~at:until
              (Printf.sprintf "flow %d: %d packet(s) never departed" flow
                 (Queue.length q)))
        pending)
    ()

let tag_monotone ~name ?(allow_idle_reset = true) ~vtime () =
  let prev = ref neg_infinity in
  make ~name
    ~observe:(fun report ev ->
      let v = vtime () in
      match ev with
      | Idle _ when allow_idle_reset -> prev := v
      | Arrival { at; _ }
      | Departure { finish = at; _ }
      | Drop { at; _ }
      | Idle { at; _ } ->
        if v < !prev -. slack !prev then
          report ~at
            (Printf.sprintf "virtual time went backwards: %g -> %g" !prev v)
        else prev := Float.max !prev v)
    ()

(* ------------------------------------------------------------------ *)
(* Theorem 1: fairness                                                  *)

let fairness ?(name = "fairness") ?(bound = Bounds.h_sfq) ~rate () =
  let log = Service_log.create () in
  let lmax : (Packet.flow, float) Hashtbl.t = Hashtbl.create 16 in
  make ~name
    ~observe:(fun _report -> function
      | Arrival { at; pkt } ->
        Service_log.note_arrival log ~at pkt.Packet.flow;
        let l = float_of_int pkt.Packet.len in
        let cur =
          Option.value (Hashtbl.find_opt lmax pkt.Packet.flow) ~default:0.0
        in
        if l > cur then Hashtbl.replace lmax pkt.Packet.flow l
      | Departure { start; finish; pkt } ->
        Service_log.note_completion log ~flow:pkt.Packet.flow ~start ~finish
          ~len:pkt.Packet.len
      | Drop { at; pkt; _ } ->
        (* restricts the guarantee to service actually rendered: the
           dropped packet stops counting as backlog, and W_f never sees
           it, so Theorem 1 is checked over the surviving traffic *)
        Service_log.note_removal log ~at pkt.Packet.flow
      | Idle _ -> ())
    ~finalize:(fun report ~until ->
      let flows = List.sort compare (Service_log.flows log) in
      let lmax_of f = Option.value (Hashtbl.find_opt lmax f) ~default:0.0 in
      let check f m =
        let r_f = rate f and r_m = rate m in
        if r_f > 0.0 && r_m > 0.0 then begin
          let h = Fairness.exact_h log ~f ~m ~r_f ~r_m ~until in
          let b = bound ~lmax_f:(lmax_of f) ~r_f ~lmax_m:(lmax_of m) ~r_m in
          if h > b +. slack b then
            report ~at:until
              (Printf.sprintf
                 "flows (%d,%d): H = %g exceeds the Theorem 1 bound %g" f m h b)
        end
      in
      let rec pairs = function
        | [] -> ()
        | f :: rest ->
          List.iter (check f) rest;
          pairs rest
      in
      pairs flows)
    ()

(* Relaxed Theorem 1: same service-log bookkeeping and pairwise H
   computation as [fairness], but instead of latching a violation it
   records the worst measured unfairness against the exact-SFQ bound.
   For approximate schedulers (Sp_pifo) the bound does not hold by
   construction; what matters is how far outside it the scheduler
   actually lands — the "fairness budget" the bench publishes. *)

type fairness_budget = {
  pairs_checked : int;
  max_h : float;
  max_bound : float;
  max_excess : float;
  worst_pair : (Packet.flow * Packet.flow) option;
}

let empty_budget =
  {
    pairs_checked = 0;
    max_h = 0.0;
    max_bound = 0.0;
    max_excess = neg_infinity;
    worst_pair = None;
  }

let fairness_measured ?(name = "fairness_budget") ?(bound = Bounds.h_sfq) ~rate ()
    =
  let log = Service_log.create () in
  let lmax : (Packet.flow, float) Hashtbl.t = Hashtbl.create 16 in
  let budget = ref empty_budget in
  let m =
    make ~name
      ~observe:(fun _report -> function
        | Arrival { at; pkt } ->
          Service_log.note_arrival log ~at pkt.Packet.flow;
          let l = float_of_int pkt.Packet.len in
          let cur =
            Option.value (Hashtbl.find_opt lmax pkt.Packet.flow) ~default:0.0
          in
          if l > cur then Hashtbl.replace lmax pkt.Packet.flow l
        | Departure { start; finish; pkt } ->
          Service_log.note_completion log ~flow:pkt.Packet.flow ~start ~finish
            ~len:pkt.Packet.len
        | Drop { at; pkt; _ } -> Service_log.note_removal log ~at pkt.Packet.flow
        | Idle _ -> ())
      ~finalize:(fun _report ~until ->
        let flows = List.sort compare (Service_log.flows log) in
        let lmax_of f = Option.value (Hashtbl.find_opt lmax f) ~default:0.0 in
        let acc = ref empty_budget in
        let check f m =
          let r_f = rate f and r_m = rate m in
          if r_f > 0.0 && r_m > 0.0 then begin
            let h = Fairness.exact_h log ~f ~m ~r_f ~r_m ~until in
            let b = bound ~lmax_f:(lmax_of f) ~r_f ~lmax_m:(lmax_of m) ~r_m in
            let excess = h -. b in
            let cur = !acc in
            let cur = { cur with pairs_checked = cur.pairs_checked + 1 } in
            let cur =
              if excess > cur.max_excess then
                {
                  cur with
                  max_h = h;
                  max_bound = b;
                  max_excess = excess;
                  worst_pair = Some (f, m);
                }
              else cur
            in
            acc := cur
          end
        in
        let rec pairs = function
          | [] -> ()
          | f :: rest ->
            List.iter (check f) rest;
            pairs rest
        in
        pairs flows;
        budget := !acc)
      ()
  in
  (m, fun () -> !budget)

(* ------------------------------------------------------------------ *)
(* Departure-time bounds (Theorem 4 / eq. 56)                           *)

let delay_monitor ~name ~flows ~lmax ~eat_rate ~bound () =
  let eat = Eat.create () in
  let eats : (Packet.flow * int, float) Hashtbl.t = Hashtbl.create 64 in
  let sum_all = List.fold_left (fun acc f -> acc +. lmax f) 0.0 flows in
  make ~name
    ~observe:(fun report -> function
      | Arrival { at; pkt } ->
        let r = eat_rate pkt in
        if r > 0.0 then
          let e =
            Eat.on_arrival eat ~now:at ~flow:pkt.Packet.flow ~len:pkt.Packet.len
              ~rate:r
          in
          Hashtbl.replace eats (pkt.Packet.flow, pkt.Packet.seq) e
      | Departure { finish; pkt; _ } -> (
        match Hashtbl.find_opt eats (pkt.Packet.flow, pkt.Packet.seq) with
        | None -> ()
        | Some e ->
          let sum_other = sum_all -. lmax pkt.Packet.flow in
          let b = bound ~eat:e ~sum_other_lmax:sum_other ~pkt in
          if finish > b +. slack b then
            report ~at:finish
              (Printf.sprintf
                 "flow %d seq %d: departed at %g, bound %g (EAT %g)"
                 pkt.Packet.flow pkt.Packet.seq finish b e))
      | Drop { pkt; _ } ->
        (* a dropped packet has no departure to bound; forget its EAT *)
        Hashtbl.remove eats (pkt.Packet.flow, pkt.Packet.seq)
      | Idle _ -> ())
    ()

let sfq_delay ~flows ~lmax ~rate ~capacity () =
  delay_monitor ~name:"sfq_delay" ~flows ~lmax
    ~eat_rate:(fun pkt ->
      match pkt.Packet.rate with Some r -> r | None -> rate pkt.Packet.flow)
    ~bound:(fun ~eat ~sum_other_lmax ~pkt ->
      Bounds.sfq_departure ~eat ~sum_other_lmax
        ~len:(float_of_int pkt.Packet.len) ~capacity ~delta:0.0)
    ()

let scfq_delay ~flows ~lmax ~rate ~capacity () =
  delay_monitor ~name:"scfq_delay" ~flows ~lmax
    ~eat_rate:(fun pkt -> rate pkt.Packet.flow)
    ~bound:(fun ~eat ~sum_other_lmax ~pkt ->
      Bounds.scfq_departure ~eat ~sum_other_lmax
        ~len:(float_of_int pkt.Packet.len) ~rate:(rate pkt.Packet.flow)
        ~capacity)
    ()

(* ------------------------------------------------------------------ *)
(* Theorem 2: throughput                                                *)

let sfq_throughput ~flows ~lmax ~rate ~capacity () =
  let log = Service_log.create () in
  let sum_lmax = List.fold_left (fun acc f -> acc +. lmax f) 0.0 flows in
  make ~name:"sfq_throughput"
    ~observe:(fun _report -> function
      | Arrival { at; pkt } -> Service_log.note_arrival log ~at pkt.Packet.flow
      | Departure { start; finish; pkt } ->
        Service_log.note_completion log ~flow:pkt.Packet.flow ~start ~finish
          ~len:pkt.Packet.len
      | Drop { at; pkt; _ } ->
        (* Theorem 2 presumes the backlog is eventually served; attach
           this monitor only to loss-free runs. The removal is still
           tracked so the busy-interval accounting stays consistent. *)
        Service_log.note_removal log ~at pkt.Packet.flow
      | Idle _ -> ())
    ~finalize:(fun report ~until ->
      (* For one flow, completions arrive in finish order and (per-flow
         FIFO service) also in start order, so W_f(t1,t2) — packets with
         start >= t1 and finish <= t2 — is a prefix-sum difference. *)
      let check_flow f =
        let r = rate f in
        if r > 0.0 then begin
          let comps =
            Sfq_util.Vec.fold (Service_log.completions log) ~init:[]
              ~f:(fun acc (c : Service_log.completion) ->
                if c.flow = f then c :: acc else acc)
            |> List.rev |> Array.of_list
          in
          let k = Array.length comps in
          let starts = Array.map (fun c -> c.Service_log.start) comps in
          let finishes = Array.map (fun c -> c.Service_log.finish) comps in
          let prefix = Array.make (k + 1) 0.0 in
          for i = 0 to k - 1 do
            prefix.(i + 1) <- prefix.(i) +. float_of_int comps.(i).Service_log.len
          done;
          (* first index with starts.(i) >= x *)
          let lower_bound x =
            let lo = ref 0 and hi = ref k in
            while !lo < !hi do
              let mid = (!lo + !hi) / 2 in
              if starts.(mid) >= x then hi := mid else lo := mid + 1
            done;
            !lo
          in
          (* number of indices with finishes.(i) <= x *)
          let upper_bound x =
            let lo = ref 0 and hi = ref k in
            while !lo < !hi do
              let mid = (!lo + !hi) / 2 in
              if finishes.(mid) <= x then lo := mid + 1 else hi := mid
            done;
            !lo
          in
          let work t1 t2 =
            let i1 = lower_bound t1 and i2 = upper_bound t2 in
            if i2 > i1 then prefix.(i2) -. prefix.(i1) else 0.0
          in
          let lmax_f = lmax f in
          List.iter
            (fun (a, b) ->
              let inside t = t >= a && t <= b in
              let boundaries =
                Array.to_list starts @ Array.to_list finishes
                |> List.filter inside
              in
              let t1s = a :: boundaries and t2s = b :: List.filter inside (Array.to_list finishes) in
              List.iter
                (fun t1 ->
                  List.iter
                    (fun t2 ->
                      if t2 > t1 then begin
                        let w = work t1 t2 in
                        let lo =
                          Bounds.sfq_throughput_lower ~rate:r ~t1 ~t2 ~sum_lmax
                            ~lmax_f ~capacity ~delta:0.0
                        in
                        if w < lo -. slack lo then
                          report ~at:t2
                            (Printf.sprintf
                               "flow %d: W(%g,%g) = %g below the Theorem 2 \
                                bound %g"
                               f t1 t2 w lo)
                      end)
                    t2s)
                t1s)
            (Service_log.busy_intervals log f ~until)
        end
      in
      List.iter check_flow flows)
    ()

(* ------------------------------------------------------------------ *)
(* Wrapper                                                              *)

let drop_event monitors ~now ~reason pkt =
  let reason =
    match (reason : Buffered.reason) with
    | Buffered.Rejected -> Rejected
    | Buffered.Evicted -> Evicted
  in
  List.iter (fun m -> observe m (Drop { at = now; pkt; reason })) monitors

let wrap inner ~capacity ~monitors =
  let emit ev = List.iter (fun m -> observe m ev) monitors in
  {
    Sched.name = inner.Sched.name ^ "+oracle";
    enqueue =
      (fun ~now pkt ->
        (* Arrival first: a buffer policy below may drop (the arrival
           itself, or an evicted victim) during this very enqueue, and
           those Drop events must follow the Arrival they answer. *)
        emit (Arrival { at = now; pkt });
        inner.Sched.enqueue ~now pkt);
    dequeue =
      (fun ~now ->
        match inner.Sched.dequeue ~now with
        | None ->
          (* probe the scheduler rather than keep a shadow count: drops
             inside a wrapped buffer layer would silently desync it *)
          emit (Idle { at = now; backlog = inner.Sched.size () });
          None
        | Some pkt ->
          let finish = now +. (float_of_int pkt.Packet.len /. capacity ()) in
          emit (Departure { start = now; finish; pkt });
          Some pkt);
    peek = inner.Sched.peek;
    size = inner.Sched.size;
    backlog = inner.Sched.backlog;
    evict =
      (fun ~now victim flow ->
        match inner.Sched.evict ~now victim flow with
        | None -> None
        | Some p ->
          emit (Drop { at = now; pkt = p; reason = Evicted });
          Some p);
    close_flow =
      (fun ~now flow ->
        let flushed = inner.Sched.close_flow ~now flow in
        List.iter (fun p -> emit (Drop { at = now; pkt = p; reason = Closed })) flushed;
        flushed);
  }
