(** Schedule-replay universality harness (single hop).

    Mittal et al., "Universal Packet Scheduling" (NSDI '16) ask whether
    one discipline can {e replay} the schedule of any other: record the
    output time [o(p)] of every packet under some discipline, hand each
    packet the slack [o(p) − i(p) − tx(p)] and re-run the same arrivals
    under Least-Slack-Time-First — if the reproduced schedule matches
    packet-for-packet, LSTF is universal for that trace. At a single
    fixed-rate server the LSTF rank [o(p) − tx(p)] is exactly the
    packet's recorded service-start time, so every work-conserving
    recording replays (starts are distinct and increasing in service
    order); the interest is in the oracle machinery this buys: any
    discipline × any frozen workload becomes a directed test of any
    other discipline, with a structured divergence witness when replay
    fails.

    Recording goes through {!Sfq_analysis.Service_log}: the tap notes
    every completion, and per-flow FIFO (a {!Monitor.flow_fifo}
    invariant of every shipped discipline) makes the k-th completion of
    a flow its k-th packet, which is how completions are keyed back to
    [(flow, seq)] without threading uids through the log.

    Replay runs drive {!Run.fixed_rate}, so monitors attach exactly as
    in the acceptance sweeps ([?monitors]); restrictions: no churn (id
    reuse breaks the keying), no finite buffer (a dropped packet has no
    output time) and no server-rate fluctuation (the residual [len/C]
    presumes a constant rate) — {!Suite.theorem_pool} satisfies all
    three. *)

open Sfq_base

type key = { flow : int; seq : int }

type schedule
(** A recorded departure schedule: delivery order plus per-packet
    output times, at a known link capacity. *)

type witness = {
  index : int;  (** position in the departure stream, 0-based *)
  expected : key;  (** what the recorded schedule serves there *)
  got : key;  (** what the replay served ([{flow = -1; seq = -1}]
                  when the replay ran out of packets early) *)
  at : float;  (** service-start time of the divergence in the replay *)
  hop : int;  (** 0 at a single server; network replays report the
                  mismatching packet's path length *)
  margin : float;
      (** correct-rank(got) − correct-rank(expected): how much later
          the served packet's true latest-start deadline was — positive
          is a priority inversion, 0 a pure tie-break divergence *)
}

type verdict =
  | Replayed of int  (** packet-for-packet, with the departure count *)
  | Diverged of witness

type mutant =
  | Wrong_slack
      (** ranks by the ingress-assigned slack, never depleting it
          while queued (rank = deadline − residual − born) — i.e. the
          queueing slack accrued at the hop is omitted, so a late-born
          packet with a later output time can overtake *)
  | Priority_tie
      (** breaks the FIFO tie order among equal ranks (prefers the
          higher flow id); only crafted deadline tables can exhibit
          it — a serial recording's implied start times are distinct *)

val mutant_name : mutant -> string
(** ["lstf-wrong-slack"] / ["lstf-priority-tie"]. *)

val record : sched:Sched.t -> ?monitors:Monitor.t list -> Workload.t -> schedule
(** Run the workload against [sched] under {!Run.fixed_rate} and
    record the departure schedule.
    @raise Invalid_argument on churned, buffered or rate-fluctuating
    workloads (see above). *)

val of_table : capacity:float -> (key * float) list -> schedule
(** A hand-crafted schedule: departure order as listed, output times
    from the table. The directed mutant-kill cells use this to build
    targets (e.g. tied implied start times) that no honest serial
    recording can produce. *)

val output_time : schedule -> key -> float option
val order : schedule -> key array
val capacity : schedule -> float

val schedule_hash : schedule -> string
(** MD5 of the ["flow.seq"] departure order — the digest-table
    currency. *)

val lstf : ?mutant:mutant -> schedule -> Sched.t
(** The replaying scheduler: {!Sfq_sched.Lstf} with deadline =
    recorded output time and residual = [len/capacity]. A packet
    absent from the schedule raises [Invalid_argument] at enqueue.
    [mutant] seeds the corresponding defect instead. *)

val replay :
  sched:Sched.t -> ?monitors:Monitor.t list -> schedule -> Workload.t -> verdict
(** Re-run the workload's arrivals under [sched] and compare the
    departure stream against the schedule, packet-for-packet. Same
    workload restrictions as {!record}. *)

val replay_lstf : ?mutant:mutant -> schedule -> Workload.t -> verdict
(** [replay ~sched:(lstf ?mutant schedule) schedule w]. *)

val check : make:(unit -> Sched.t) -> Workload.t -> verdict
(** The round trip: record a fresh [make ()] on the workload, then
    {!replay_lstf}. [Replayed _] is the universality claim for this
    (discipline, trace) cell. *)

val verdict_digest : verdict -> string
(** One deterministic token, [%h] floats: ["replayed=N"] or
    ["diverged@i expected=f.s got=f.s at=... hop=... margin=..."]. *)

(** {1 Sweep cells} *)

type cell = { label : string; run : unit -> verdict }
(** [run] builds all mutable state when called — domain-local by
    construction, so cells fan over {!Sfq_par.Pool} like every other
    sweep. *)

val suite_cells : ?pool:Workload.t list -> ?limit:int -> unit -> cell list
(** One {!check} cell per (discipline × workload): sfq, scfq, vc, drr,
    edd, fifo, wf2q and pifo-sfq over [pool] (default
    {!Suite.theorem_pool}), the pool truncated to [limit] workloads
    when given. Every verdict must be [Replayed]. *)

val directed_kills : unit -> (mutant * string * (unit -> verdict * verdict)) list
(** The seeded-mutant cells: each thunk replays a crafted feasible
    schedule under correct LSTF (fst — must come back [Replayed]) and
    under the named mutant (snd — must come back [Diverged]).
    [Wrong_slack] dies on a crossing trace (an early-born packet with
    a late output time meets a late-born packet with a slightly
    earlier one); [Priority_tie] on a tied-rank table. *)
