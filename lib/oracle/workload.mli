(** Adversarial workload generation for the theorem oracles.

    A workload is a complete description of one fixed-rate-server run:
    the link capacity, the per-flow reserved rates (never
    oversubscribed, so the paper's delay/throughput theorems apply),
    a time-ordered arrival trace mixing back-to-back bursts, sub-packet
    gaps and long idle periods, optional per-packet rate overrides
    (generalized SFQ, §2.3) and optional mid-run weight changes.

    The qcheck shrinker minimizes failing traces by dropping arrivals,
    clearing rate overrides and dropping reweight events — small
    counterexamples, not 80-packet walls of text. *)

type arrival = {
  at : float;  (** seconds; non-decreasing across the trace *)
  flow : int;
  len : int;  (** bits *)
  rate : float option;  (** per-packet rate override, bits/s *)
}

type reweight = { at : float; flow : int; rate : float }

type t = {
  capacity : float;  (** link rate, bits/s *)
  weights : (int * float) list;  (** reserved rates; [Σ r <= capacity] *)
  arrivals : arrival list;
  reweights : reweight list;
}

val flows : t -> int list
val rate_of : t -> int -> float
(** 0 for unknown flows. *)

val lmax : t -> int -> float
(** Largest packet length (bits) the flow sends; 0 if it never sends. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val gen : ?reweights:bool -> ?rate_overrides:bool -> unit -> t QCheck.Gen.t
(** 1–5 flows with weights drawn from a 16:1 spread and scaled to a
    50–95% total utilization; 5–80 arrivals whose inter-arrival gaps
    mix bursts (gap 0), fractions of a max-packet service time, a few
    service times, and long idle gaps (5–20 service times, forcing
    busy-period boundaries). [rate_overrides] (default [true]) lets
    ~10% of packets carry a rate override at 30–100% of the flow's
    reserved rate — never above it, so [Σ r <= C] is preserved.
    [reweights] (default [false]) adds 0–2 mid-run weight changes. *)

val shrink : t QCheck.Shrink.t
(** Candidates drop arrivals, clear rate overrides, drop reweights —
    never reorder or invent events. *)

val arbitrary : ?reweights:bool -> ?rate_overrides:bool -> unit -> t QCheck.arbitrary
(** {!gen} + printer + shrinker, for [QCheck.Test.make]. *)

val deterministic_pool :
  ?reweights:bool -> ?rate_overrides:bool -> seed:int -> n:int -> unit -> t list
(** [n] workloads from a private PRNG seeded with [seed] — the same
    list on every run, machine-independent; the acceptance sweeps use
    this so [dune runtest] is deterministic. *)
