(** Adversarial workload generation for the theorem oracles.

    A workload is a complete description of one fixed-rate-server run:
    the link capacity, the per-flow reserved rates (never
    oversubscribed, so the paper's delay/throughput theorems apply),
    a time-ordered arrival trace mixing back-to-back bursts, sub-packet
    gaps and long idle periods, optional per-packet rate overrides
    (generalized SFQ, §2.3) and optional mid-run weight changes.

    The qcheck shrinker minimizes failing traces by dropping arrivals,
    clearing rate overrides and dropping reweight events — small
    counterexamples, not 80-packet walls of text. *)

type arrival = {
  at : float;  (** seconds; non-decreasing across the trace *)
  flow : int;
  len : int;  (** bits *)
  rate : float option;  (** per-packet rate override, bits/s *)
}

type reweight = { at : float; flow : int; rate : float }

type churn = { at : float; flow : int }
(** Close the flow at [at]: its queued packets are flushed and its
    scheduler state discarded, so later arrivals of the same id are a
    {e reopened} flow that must re-enter at [S >= v(t)] (eq. 4). *)

type rate_change = { at : float; capacity : float }
(** Server-rate fluctuation (§2.3): from [at] on, the link serves at
    [capacity] bits/s. The delay/throughput theorems assume a constant
    rate — attach only structural monitors to fluctuating runs. *)

type buffer = {
  per_flow : int option;
  aggregate : int option;
  policy : Sfq_base.Buffered.policy;
}
(** Finite-buffer budgets for {!Run.fixed_rate} to enforce via
    {!Sfq_base.Buffered}; [None] budgets are infinite. *)

type t = {
  capacity : float;  (** link rate, bits/s *)
  weights : (int * float) list;  (** reserved rates; [Σ r <= capacity] *)
  arrivals : arrival list;
  reweights : reweight list;
  churn : churn list;  (** time-ordered flow closures *)
  rate_changes : rate_change list;  (** time-ordered capacity changes *)
  buffer : buffer option;  (** [None]: the paper's infinite buffers *)
}

val flows : t -> int list
val rate_of : t -> int -> float
(** 0 for unknown flows. *)

val lmax : t -> int -> float
(** Largest packet length (bits) the flow sends; 0 if it never sends. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val gen :
  ?reweights:bool ->
  ?rate_overrides:bool ->
  ?churn:bool ->
  ?overload:bool ->
  ?rate_fluct:bool ->
  unit -> t QCheck.Gen.t
(** 1–5 flows with weights drawn from a 16:1 spread and scaled to a
    50–95% total utilization; 5–80 arrivals whose inter-arrival gaps
    mix bursts (gap 0), fractions of a max-packet service time, a few
    service times, and long idle gaps (5–20 service times, forcing
    busy-period boundaries). [rate_overrides] (default [true]) lets
    ~10% of packets carry a rate override at 30–100% of the flow's
    reserved rate — never above it, so [Σ r <= C] is preserved.
    [reweights] (default [false]) adds 0–2 mid-run weight changes.
    [churn] (default [false]) adds 1–4 flow closures; [overload]
    (default [false]) attaches a finite-buffer config (per-flow budget
    1/2/4 or infinite, aggregate 4/8/16, any policy) so bursts actually
    overflow; [rate_fluct] (default [false]) adds 0–2 server-rate
    changes at 50–125% of nominal. The stress draws happen after every
    pre-existing draw and consume no randomness when off, so frozen
    pools keep their exact traces. *)

val shrink : t QCheck.Shrink.t
(** Candidates drop arrivals, clear rate overrides, drop reweights,
    drop churn/rate changes, lift the buffer limits — never reorder or
    invent events. *)

val arbitrary :
  ?reweights:bool ->
  ?rate_overrides:bool ->
  ?churn:bool ->
  ?overload:bool ->
  ?rate_fluct:bool ->
  unit -> t QCheck.arbitrary
(** {!gen} + printer + shrinker, for [QCheck.Test.make]. *)

val deterministic_pool :
  ?reweights:bool ->
  ?rate_overrides:bool ->
  ?churn:bool ->
  ?overload:bool ->
  ?rate_fluct:bool ->
  seed:int -> n:int -> unit -> t list
(** [n] workloads from a private PRNG seeded with [seed] — the same
    list on every run, machine-independent; the acceptance sweeps use
    this so [dune runtest] is deterministic. *)
