open Sfq_base
open Sfq_netsim
module Monitor = Sfq_oracle.Monitor
module E2e = Sfq_oracle.E2e_oracle
module Bounds = Sfq_core.Bounds
module Rng = Sfq_util.Rng

type scenario = {
  label : string;
  spec : Topo.spec;
  disc : Disc.spec;
  seed : int;
  flows : int;
  window : int;
  pkts_per_flow : int;
  len : int;
  reserved : int;
  reserved_pkts : int option;
  churn : bool;
  buffer : Buffered.config option;
  load : float;
  access_rate : float;
  core_rate : float;
  prop_delay : float;
  monitors : bool;
  checkpoints : int;
  skip_hop : int option;
}

let scenario ?(flows = 48) ?(window = 16) ?(pkts_per_flow = 2) ?(len = 8192)
    ?(reserved = 2) ?reserved_pkts ?(churn = false) ?buffer ?(load = 0.5)
    ?(access_rate = 1_048_576.0) ?(core_rate = 1_048_576.0)
    ?(prop_delay = 0.0009765625) ?(monitors = true) ?(checkpoints = 4) ?skip_hop
    ?(seed = 0x5eed) ~label ~spec ~disc () =
  if flows < 0 || window < 0 || pkts_per_flow < 1 || len < 1 || reserved < 0 then
    invalid_arg "Net_sweep.scenario: negative or empty sizing";
  if load <= 0.0 then invalid_arg "Net_sweep.scenario: load must be positive";
  if churn && window < 1 then
    invalid_arg "Net_sweep.scenario: churn needs a window >= 1";
  {
    label;
    spec;
    disc;
    seed;
    flows;
    window;
    pkts_per_flow;
    len;
    reserved;
    reserved_pkts;
    churn;
    buffer;
    load;
    access_rate;
    core_rate;
    prop_delay;
    monitors;
    checkpoints;
    skip_hop;
  }

let directed ?(disc = Disc.Sfq) ?skip_hop ~spec () =
  (* One reserved CBR flow per entry, no background population: the
     Thm 8/9 composition checked in isolation, where the per-hop
     constants are exact and a forgotten hop is guaranteed fatal. *)
  scenario ~flows:0 ~window:0 ~reserved:(Topo.spec_entries spec) ~reserved_pkts:8
    ?skip_hop
    ~label:(Printf.sprintf "directed/%s/%s" (Topo.spec_name spec) (Disc.name disc))
    ~spec ~disc ()

type outcome = {
  injected : int;
  delivered : int;
  dropped : int;
  closed : int;
  in_flight : int;
  finished_at : float;
  high_water : int;
  peak_live : int;
  order_hash : int64;
  e2e_checked : int;
  e2e_lost : int;
  min_slack : float;
  violations : Monitor.violation list;
}

(* FNV-1a over the little-endian bytes of each mixed word: an order-
   and value-sensitive hash of the delivery stream that needs no
   buffering (a million-flow run must not accumulate a digest
   transcript). *)
let fnv_prime = 0x100000001b3L

let mix h v =
  let h = ref h in
  for i = 0 to 7 do
    let byte = Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff in
    h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) fnv_prime
  done;
  !h

let bound_kind = function
  | Disc.Sfq | Disc.Sfq_fast | Disc.Pifo_sfq -> Some `Sfq
  | Disc.Scfq | Disc.Scfq_fast | Disc.Pifo_scfq -> Some `Scfq
  | _ -> None

(* [run_raw] is [run_scenario] with two replay hooks: [mk_link]
   overrides the inner discipline per link (by creation index — the
   deterministic order [Topo.build] calls [mk_sched], which is how an
   LSTF replay gives every hop its own residual), and [tap] observes
   the delivery stream (the schedule recorder). Monitors, oracles,
   churn and conservation probes are identical either way. *)
let run_raw ?mk_link ?(tap = fun (_ : Packet.t) ~at:(_ : float) -> ()) (s : scenario)
    =
  (* Audit (parallel safety): every mutable structure — simulator,
     topology, registry, RNG, monitors, hash state — is created here,
     inside the call, so scenarios can execute on worker domains
     concurrently; the returned outcome is immutable. *)
  let sim = Sim.create () in
  let rng = Rng.create s.seed in
  let reg = Flow_registry.create () in
  let len_f = float_of_int s.len in
  let bg_ids = if s.churn then min s.window s.flows else s.flows in
  let static_ids = s.reserved + bg_ids in
  (* Reservations are sized against the slowest link so the Σ r_n <= C
     premise of Thm 4 holds at every hop, not just the core. *)
  let c_min = Float.min s.access_rate s.core_rate in
  let r_res = if s.reserved = 0 then 0.0 else c_min /. (4.0 *. float_of_int s.reserved) in
  let r_bg = c_min /. (4.0 *. float_of_int (max 1 bg_ids)) in
  let weights =
    Weights.of_list ~default:r_bg (List.init s.reserved (fun i -> (i, r_res)))
  in
  let all_monitors = ref [] in
  let link_ix = ref (-1) in
  let mk_sched ~rate =
    incr link_ix;
    let inner =
      match mk_link with
      | None -> Disc.make s.disc weights
      | Some f -> f !link_ix ~rate
    in
    if not s.monitors then inner
    else begin
      let ms =
        [
          Monitor.flow_fifo ();
          Monitor.conservation ~size:(fun () -> inner.Sched.size ()) ();
        ]
      in
      all_monitors := ms :: !all_monitors;
      Monitor.wrap inner ~capacity:(fun () -> rate) ~monitors:ms
    end
  in
  let topo =
    Topo.build sim s.spec ~access_rate:s.access_rate ~core_rate:s.core_rate
      ~mk_sched ~prop_delay:s.prop_delay ?buffer:s.buffer ()
  in
  let net = Topo.net topo in
  let entries = Topo.entries topo in
  (* Reserved flows take ids 0..reserved-1 (opened first), entry i mod
     entries. *)
  for i = 0 to s.reserved - 1 do
    let f = Flow_registry.open_flow reg in
    assert (f = i);
    Topo.route_flow topo ~flow:f ~entry:(i mod entries)
  done;
  (* Composed-bound oracle: per-hop SFQ/SCFQ constants along the
     flow's route. |Q| is read live (never below the static sizing) so
     ids past the recycling window — draining flows — widen the bound
     instead of invalidating it. *)
  let oracle =
    match (bound_kind s.disc, s.reserved) with
    | None, _ | _, 0 -> None
    | Some kind, _ ->
      let sum_other () =
        float_of_int (max static_ids (Flow_registry.high_water reg) - 1) *. len_f
      in
      let betas flow =
        let hops = Topo.hops topo ~entry:(flow mod entries) in
        let all =
          List.map
            (fun (h : Topo.hop) ->
              match kind with
              | `Sfq ->
                Bounds.sfq_beta ~sum_other_lmax:(sum_other ()) ~len:len_f
                  ~capacity:h.Topo.capacity ~delta:0.0
              | `Scfq ->
                Bounds.scfq_departure ~eat:0.0 ~sum_other_lmax:(sum_other ())
                  ~len:len_f ~rate:r_res ~capacity:h.Topo.capacity)
            hops
        in
        match s.skip_hop with
        | None -> all
        | Some i ->
          let skip = i mod List.length all in
          List.filteri (fun j _ -> j <> skip) all
      in
      let taus flow =
        List.map (fun (h : Topo.hop) -> h.Topo.prop_delay)
          (Topo.hops topo ~entry:(flow mod entries))
      in
      Some
        (E2e.create ~name:"e2e-delay" ~rate:(fun f -> Weights.get weights f) ~betas
           ~taus ())
  in
  (* Background population: ids recycled through the registry, routes
     and scheduler state torn down only once the flow has nothing in
     flight — the conservation law stays exact under churn. *)
  let outstanding : (Packet.flow, int) Hashtbl.t = Hashtbl.create 64 in
  let draining : (Packet.flow, unit) Hashtbl.t = Hashtbl.create 16 in
  let recycle f =
    Hashtbl.remove outstanding f;
    Hashtbl.remove draining f;
    Net.unroute net ~flow:f;
    Flow_registry.close_flow reg f
  in
  let settle f n =
    if f >= s.reserved && n > 0 then
      match Hashtbl.find_opt outstanding f with
      | None -> ()
      | Some c ->
        let c = c - n in
        Hashtbl.replace outstanding f c;
        if c <= 0 && Hashtbl.mem draining f then recycle f
  in
  List.iter
    (fun srv -> Server.on_drop srv (fun p -> settle p.Packet.flow 1))
    (Topo.servers topo);
  let order_hash = ref 0xcbf29ce484222325L in
  Net.on_delivered net (fun p ~at ->
      tap p ~at;
      order_hash :=
        mix
          (mix (mix !order_hash (Int64.of_int p.Packet.flow)) (Int64.of_int p.Packet.seq))
          (Int64.bits_of_float at);
      match oracle with
      | Some o when p.Packet.flow < s.reserved -> E2e.deliver o p ~at
      | _ -> settle p.Packet.flow 1);
  let live : (Packet.flow * int) Queue.t = Queue.create () in
  let dt = float_of_int (s.pkts_per_flow * s.len) /. s.core_rate /. s.load in
  let rec open_next k () =
    if k < s.flows then begin
      if s.churn then
        while Queue.length live >= s.window do
          let f, entry = Queue.pop live in
          let flushed = Topo.close_flow topo ~flow:f ~entry in
          if
            flushed
            >= (match Hashtbl.find_opt outstanding f with Some c -> c | None -> 0)
          then recycle f
          else begin
            Hashtbl.replace draining f ();
            settle f flushed
          end
        done;
      let f = Flow_registry.open_flow reg in
      let entry = Rng.int rng entries in
      Topo.route_flow topo ~flow:f ~entry;
      Hashtbl.replace outstanding f s.pkts_per_flow;
      Queue.push (f, entry) live;
      let now = Sim.now sim in
      for j = 1 to s.pkts_per_flow do
        Net.inject net (Packet.make ~flow:f ~seq:j ~len:s.len ~born:now ())
      done;
      Sim.schedule_after sim ~delay:dt (open_next (k + 1))
    end
  in
  if s.flows > 0 then Sim.schedule sim ~at:0.0 (open_next 0);
  (* Reserved CBR sources: full reserved rate, so EAT tracks arrival. *)
  let t_open = float_of_int s.flows *. dt in
  let interval = if s.reserved = 0 then 0.0 else len_f /. r_res in
  let res_pkts =
    match s.reserved_pkts with
    | Some n -> n
    | None -> max 4 (int_of_float (t_open /. Float.max interval 1e-9))
  in
  for i = 0 to s.reserved - 1 do
    let rec send k () =
      if k < res_pkts then begin
        let now = Sim.now sim in
        let p = Packet.make ~flow:i ~seq:(k + 1) ~len:s.len ~born:now () in
        (match oracle with Some o -> E2e.inject o p ~at:now | None -> ());
        Net.inject net p;
        Sim.schedule_after sim ~delay:interval (send (k + 1))
      end
    in
    Sim.schedule sim ~at:0.0 (send 0)
  done;
  (* Network-wide conservation probes at quiesce points mid-run: the
     in-flight count derived from the edge counters can never be
     negative, nor smaller than the packets demonstrably queued. *)
  let net_violation = ref None in
  let check_conservation ~final () =
    let in_flight =
      Net.injected net - Net.delivered net - Topo.dropped topo - Topo.closed topo
    in
    let queued = Topo.queued topo in
    let bad =
      if in_flight < 0 then Some "in-flight negative"
      else if in_flight < queued then Some "in-flight below queued backlog"
      else if final && in_flight <> 0 then Some "packets left in flight after drain"
      else None
    in
    match bad with
    | Some what when !net_violation = None ->
      net_violation :=
        Some
          {
            Monitor.monitor = "net-conservation";
            at = Sim.now sim;
            what =
              Printf.sprintf "%s: injected=%d delivered=%d dropped=%d closed=%d queued=%d"
                what (Net.injected net) (Net.delivered net) (Topo.dropped topo)
                (Topo.closed topo) queued;
          }
    | _ -> ()
  in
  for i = 1 to s.checkpoints do
    if t_open > 0.0 then
      Sim.schedule sim
        ~at:(t_open *. float_of_int i /. float_of_int (s.checkpoints + 1))
        (check_conservation ~final:false)
  done;
  Sim.run_all sim ();
  let finished_at = Sim.now sim in
  check_conservation ~final:true ();
  (match oracle with Some o -> E2e.finalize o ~until:finished_at | None -> ());
  let hop_monitors = List.concat (List.rev !all_monitors) in
  List.iter (fun m -> Monitor.finalize m ~until:finished_at) hop_monitors;
  let violations =
    Option.to_list !net_violation
    @ (match oracle with Some o -> Option.to_list (E2e.result o) | None -> [])
    @ List.filter_map Monitor.result hop_monitors
  in
  {
    injected = Net.injected net;
    delivered = Net.delivered net;
    dropped = Topo.dropped topo;
    closed = Topo.closed topo;
    in_flight =
      Net.injected net - Net.delivered net - Topo.dropped topo - Topo.closed topo;
    finished_at;
    high_water = Flow_registry.high_water reg;
    peak_live = Flow_registry.peak_live reg;
    order_hash = !order_hash;
    e2e_checked = (match oracle with Some o -> E2e.checked o | None -> 0);
    e2e_lost = (match oracle with Some o -> E2e.lost o | None -> 0);
    min_slack = (match oracle with Some o -> E2e.min_slack o | None -> infinity);
    violations;
  }

let run_scenario s = run_raw s

(* ------------------------------------------------------------------ *)
(* Sharded sweeps: same contract as Sfq_oracle.Run.sweep — positional
   reduction over independent cells, digest-identical at every domain
   count. *)

let sweep ?(domains = 1) ?pool cells =
  let tasks = Array.of_list cells in
  let f _i c = run_scenario c in
  match pool with
  | Some p -> Sfq_par.Pool.map p ~f tasks
  | None -> Sfq_par.Pool.run ~domains ~f tasks

let outcome_digest (o : outcome) =
  let b = Buffer.create 96 in
  Buffer.add_string b
    (Printf.sprintf
       "injected=%d delivered=%d dropped=%d closed=%d finished=%h ids=%d hash=%016Lx"
       o.injected o.delivered o.dropped o.closed o.finished_at o.high_water
       o.order_hash);
  if o.in_flight <> 0 then
    Buffer.add_string b (Printf.sprintf " in_flight=%d" o.in_flight);
  if o.e2e_checked > 0 || o.e2e_lost > 0 then
    Buffer.add_string b
      (Printf.sprintf " e2e=%d lost=%d slack=%h" o.e2e_checked o.e2e_lost o.min_slack);
  List.iter
    (fun (v : Monitor.violation) ->
      Buffer.add_string b
        (Printf.sprintf " violation=%s@%h:%s" v.Monitor.monitor v.Monitor.at
           v.Monitor.what))
    o.violations;
  Buffer.contents b

let sweep_digest cells outcomes =
  let b = Buffer.create 512 in
  List.iteri
    (fun i (c : scenario) ->
      Buffer.add_string b
        (Printf.sprintf "%s | %s\n" c.label (outcome_digest outcomes.(i))))
    cells;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* The standard cell grid: (topology × discipline × seed replicate),
   plus one churn-heavy overloaded star. Append-only — test_par and the
   golden corpus digest these labels. *)

let grid_specs =
  [
    Topo.Star { leaves = 4 };
    Topo.Line { hops = 3 };
    Topo.Tree { arity = 2; depth = 2 };
    Topo.Dumbbell { left = 3; right = 2 };
  ]

let grid_discs =
  [
    Disc.Sfq;
    Disc.Scfq;
    Disc.Sfq_fast;
    Disc.Pifo_sfq;
    Disc.Drr { quantum = 8192.0 };
  ]

let default_cells ?(root = 0x7e57) () =
  let reps = 2 in
  let grid =
    List.concat_map
      (fun (ti, spec) ->
        List.concat_map
          (fun (di, disc) ->
            List.init reps (fun rep ->
                let index = (((ti * List.length grid_discs) + di) * reps) + rep in
                (* Access links at a quarter of the core rate: bursts
                   queue at the edge, so the seed's entry assignment is
                   visible in the digests (symmetric equal-rate shapes
                   would make every replicate identical). *)
                scenario
                  ~label:
                    (Printf.sprintf "%s/%s/r%d" (Topo.spec_name spec) (Disc.name disc)
                       rep)
                  ~spec ~disc ~access_rate:262_144.0
                  ~seed:(Sfq_par.Seed.derive ~root ~index)
                  ()))
          (List.mapi (fun i d -> (i, d)) grid_discs))
      (List.mapi (fun i t -> (i, t)) grid_specs)
  in
  let churn_star =
    scenario ~label:"star8/sfq-fast/churn" ~spec:(Topo.Star { leaves = 8 })
      ~disc:Disc.Sfq_fast ~churn:true ~flows:160 ~window:24 ~load:1.25
      ~buffer:(Buffered.config ~per_flow:8 ~aggregate:96 ~policy:Buffered.Drop_front ())
      ~seed:(Sfq_par.Seed.derive ~root ~index:1000)
      ()
  in
  grid @ [ churn_star ]

let scale_star ?(flows = 1_000_000) ?(window = 4096) ?(leaves = 64) ?(reserved = 4)
    ?(disc = Disc.Sfq_fast) ?(seed = 0x5ca1e) () =
  scenario
    ~label:(Printf.sprintf "scale/star%d/%s/%dflows" leaves (Disc.name disc) flows)
    ~spec:(Topo.Star { leaves }) ~disc ~churn:true ~flows ~window ~reserved
    ~pkts_per_flow:2 ~load:0.75 ~monitors:false ~checkpoints:8 ~seed ()

(* ------------------------------------------------------------------ *)
(* Multi-hop schedule replay: the network half of Replay's UPS
   harness. Record the delivery stream of any scenario, derive each
   packet's deadline (its recorded delivery time) and each link's
   residual (Topo.residuals — tx + propagation from that link to the
   sink), then re-run the same arrivals with every link scheduling by
   least slack. *)

module Replay = Sfq_oracle.Replay

type net_schedule = {
  rs : scenario;
  rorder : Replay.key array;
  rout : (Replay.key, float) Hashtbl.t;
  rresiduals : float array;
  rnhops : (int, int) Hashtbl.t;
}

type under =
  | Under_lstf
  | Under_mutant of Replay.mutant
  | Under_disc of Disc.spec

let replay_guard ~what (s : scenario) =
  if s.churn then invalid_arg (what ^ ": churned scenarios recycle flow ids");
  if s.buffer <> None then invalid_arg (what ^ ": buffered scenarios drop packets")

(* A scratch build of the same shape (FIFO links, nothing injected)
   yields the per-link residual table and the per-entry hop counts
   without disturbing the recording run. *)
let scratch_topo (s : scenario) =
  Topo.build (Sim.create ()) s.spec ~access_rate:s.access_rate
    ~core_rate:s.core_rate
    ~mk_sched:(fun ~rate:_ -> Sfq_sched.Fifo.sched (Sfq_sched.Fifo.create ()))
    ~prop_delay:s.prop_delay ()

(* Entry assignment is a pure function of the seed: reserved flow i
   enters at [i mod entries], and the k-th background flow (id
   reserved + k, never recycled — churn is guarded off) takes the k-th
   draw of the scenario RNG, which [run_raw] consumes for nothing
   else. *)
let flow_entries (s : scenario) ~entries =
  let rng = Rng.create s.seed in
  let tbl = Hashtbl.create 64 in
  for i = 0 to s.reserved - 1 do
    Hashtbl.replace tbl i (i mod entries)
  done;
  for k = 0 to s.flows - 1 do
    Hashtbl.replace tbl (s.reserved + k) (Rng.int rng entries)
  done;
  tbl

let record_net (s : scenario) =
  replay_guard ~what:"Net_sweep.record_net" s;
  let order = ref [] in
  let out : (Replay.key, float) Hashtbl.t = Hashtbl.create 256 in
  let outcome =
    run_raw s ~tap:(fun p ~at ->
        let k = { Replay.flow = p.Packet.flow; seq = p.Packet.seq } in
        Hashtbl.replace out k at;
        order := k :: !order)
  in
  let topo = scratch_topo s in
  let rnhops = Hashtbl.create 64 in
  Hashtbl.iter
    (fun f e -> Hashtbl.replace rnhops f (Topo.nhops topo ~entry:e))
    (flow_entries s ~entries:(Topo.entries topo));
  ( {
      rs = s;
      rorder = Array.of_list (List.rev !order);
      rout = out;
      rresiduals = Topo.residuals topo ~len:s.len;
      rnhops;
    },
    outcome )

let net_schedule_order ns = Array.copy ns.rorder
let net_schedule_scenario ns = ns.rs

let net_schedule_hash ns =
  Digest.to_hex
    (Digest.string
       (String.concat ";"
          (Array.to_list
             (Array.map
                (fun (k : Replay.key) -> Printf.sprintf "%d.%d" k.Replay.flow k.Replay.seq)
                ns.rorder))))

type net_verdict =
  | Exact of int
  | On_time of { delivered : int; swapped : Replay.witness }
  | Late of Replay.witness

let missing_key = { Replay.flow = -1; seq = -1 }

(* Two-tier comparison. Exact packet-for-packet order is the single-hop
   theorem's criterion, and 19 of the 20 E27 grid cells meet it; but no
   such theorem exists across hops (a later-deadline packet can reach a
   free server before its rival has crossed the upstream link), so the
   network criterion of record is the UPS paper's: the replay succeeds
   iff no packet is delivered {e later} than its recorded time. An
   order permutation among on-time packets is [On_time] with the first
   swap as witness; a genuinely late packet is [Late], witnessed by the
   packet with the largest lateness. All link rates, lengths and
   propagation delays are dyadic, so delivery times are exact floats
   and the lateness test needs no epsilon. *)
let compare_delivery ns got =
  let exp = ns.rorder in
  let nhops_of (k : Replay.key) =
    match Hashtbl.find_opt ns.rnhops k.Replay.flow with Some n -> n | None -> 0
  in
  let got_out : (Replay.key, float) Hashtbl.t = Hashtbl.create (Array.length got) in
  Array.iter (fun (k, at) -> Hashtbl.replace got_out k at) got;
  let late = ref None in
  Array.iteri
    (fun i k ->
      match (Hashtbl.find_opt ns.rout k, Hashtbl.find_opt got_out k) with
      | Some o, Some o' when o' > o ->
        let l = o' -. o in
        if match !late with Some (_, _, _, worst) -> l > worst | None -> true then
          late := Some (i, k, o', l)
      | Some _, Some _ -> ()
      | _, None | None, _ ->
        (* a packet of the recording absent from the replay (or vice
           versa) can only mean dropped traffic, which the guard
           excludes — treat as infinitely late *)
        late := Some (i, k, nan, infinity))
    exp;
  let first_swap () =
    let n = min (Array.length exp) (Array.length got) in
    let rec go i =
      if i >= n then
        if Array.length exp = Array.length got then None
        else
          let expected = if n < Array.length exp then exp.(n) else missing_key in
          let g, at = if n < Array.length got then got.(n) else (missing_key, nan) in
          let probe = if expected = missing_key then g else expected in
          Some
            { Replay.index = n; expected; got = g; at; hop = nhops_of probe; margin = 0.0 }
      else begin
        let g, at = got.(i) in
        let e = exp.(i) in
        if e = g then go (i + 1)
        else
          (* margin in recorded-delivery-time currency — positive
             means the replay served a packet whose true deadline was
             later *)
          let margin =
            match (Hashtbl.find_opt ns.rout g, Hashtbl.find_opt ns.rout e) with
            | Some rg, Some re -> rg -. re
            | _ -> 0.0
          in
          Some { Replay.index = i; expected = e; got = g; at; hop = nhops_of g; margin }
      end
    in
    go 0
  in
  match !late with
  | Some (index, k, at, lateness) ->
    Late { Replay.index; expected = k; got = k; at; hop = nhops_of k; margin = lateness }
  | None -> (
    match first_swap () with
    | None -> Exact (Array.length got)
    | Some swapped -> On_time { delivered = Array.length got; swapped })

let net_verdict_digest = function
  | Exact n -> Printf.sprintf "exact=%d" n
  | On_time { delivered; swapped = x } ->
    Printf.sprintf "on-time=%d swap@%d expected=%d.%d got=%d.%d margin=%h" delivered
      x.Replay.index x.Replay.expected.Replay.flow x.Replay.expected.Replay.seq
      x.Replay.got.Replay.flow x.Replay.got.Replay.seq x.Replay.margin
  | Late x ->
    Printf.sprintf "late@%d packet=%d.%d at=%h hop=%d lateness=%h" x.Replay.index
      x.Replay.expected.Replay.flow x.Replay.expected.Replay.seq x.Replay.at
      x.Replay.hop x.Replay.margin

let replay_net ns under =
  let s = ns.rs in
  let got = ref [] in
  let tap p ~at =
    got := ({ Replay.flow = p.Packet.flow; seq = p.Packet.seq }, at) :: !got
  in
  (match under with
  | Under_disc d -> ignore (run_raw { s with disc = d } ~tap : outcome)
  | Under_lstf | Under_mutant _ ->
    let mutant = match under with Under_mutant m -> Some m | _ -> None in
    let deadline (p : Packet.t) =
      match
        Hashtbl.find_opt ns.rout { Replay.flow = p.Packet.flow; seq = p.Packet.seq }
      with
      | Some o -> o
      | None ->
        invalid_arg
          (Printf.sprintf
             "Net_sweep.replay_net: packet %d.%d absent from the recorded schedule"
             p.Packet.flow p.Packet.seq)
    in
    let mk_link ix ~rate:(_ : float) =
      (* rank = deadline − residuals.(ix): the latest service-start
         time at this link that still meets the recorded delivery
         time, assuming no further queueing downstream. *)
      let residual (_ : Packet.t) = ns.rresiduals.(ix) in
      let open Sfq_sched in
      match mutant with
      | None -> Lstf.sched (Lstf.create ~residual ~deadline ())
      | Some Replay.Wrong_slack ->
        Lstf.sched
          (Lstf.create ~residual
             ~deadline:(fun p -> deadline p -. p.Packet.born)
             ())
      | Some Replay.Priority_tie ->
        Lstf.sched
          (Lstf.create
             ~tie:(Sfq_sched.Tag_queue.High_rate (fun f -> float_of_int (f + 1)))
             ~residual ~deadline ())
    in
    ignore (run_raw s ~mk_link ~tap : outcome));
  compare_delivery ns (Array.of_list (List.rev !got))
