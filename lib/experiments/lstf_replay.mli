(** E28: LSTF schedule-replay universality.

    The executable form of the UPS replay question (DESIGN.md §14)
    over this repo's corpus: every row records a schedule, replays it,
    and pins the verdict digest.

    - [single]: {!Sfq_oracle.Replay.suite_cells} — each shipped
      discipline recorded on frozen theorem-pool workloads and
      replayed under single-hop LSTF. All rows must come back
      [replayed] (the single-server replay argument is airtight:
      ranks are the recorded start times, distinct and increasing).
    - [net]: the E27 grid (first replicate, churn cell excluded)
      recorded via {!Net_sweep.record_net} and replayed with per-link
      LSTF on route-aware residuals. Success is the UPS criterion (no
      packet later than recorded — {!Net_sweep.net_verdict}); exact
      packet-for-packet order holds on 19 of the 20 cells and prints
      as its own tier. The empirical half of the claim — there is no
      multi-hop order theorem.
    - [control]: the same recordings replayed under plain SFQ instead
      of LSTF. SFQ is not universal: at least one cell must deliver a
      packet late ([ok] marks the rows that do), which is what makes
      the [net] rows evidence rather than tautology.
    - [kills]: the seeded-mutant cells — single-hop
      {!Sfq_oracle.Replay.directed_kills} (correct replays, mutant
      diverges) plus the grid's star4/sfq recording replayed under the
      wrong-slack LSTF mutant, which must turn a packet late.

    The golden corpus pins every verdict digest; a scheduling change
    that moves any recorded order, or a replay regression that breaks
    packet-for-packet fidelity, flips the text. *)

type row = {
  cell : string;
  verdict : string;  (** {!Sfq_oracle.Replay.verdict_digest} *)
  ok : bool;  (** verdict matches the row's expectation (see above) *)
}

type result = {
  single : row list;
  net : row list;
  control : row list;
  kills : row list;
}

val run : ?seed:int -> ?limit:int -> unit -> result
(** [seed] is the E27 grid root (default [0x7e57], matching E27 so the
    recordings digest identically); [limit] truncates the theorem pool
    for the single-hop rows (default 4 workloads). *)

val print : unit -> unit
