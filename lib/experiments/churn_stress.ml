open Sfq_base
open Sfq_core
open Sfq_oracle

(* E24: overload + churn robustness (not a paper figure). A 1000 bit/s
   SFQ link with reservations 400/300/200/100 is offered three bursts
   of 12 packets per flow against budgets of 8 per flow and 24
   aggregate, while flows 3 and 4 are closed mid-run and return later.
   One run per drop policy. Deterministic: no RNG anywhere, so the
   service order, drop count and per-flow departure counts are exact
   golden material. The conservation law (enqueued = departed +
   dropped + backlogged) is monitored online throughout. *)

type policy_run = {
  policy : string;
  departures : int;
  drops : int;  (* buffer-policy losses + closure flushes *)
  per_flow : (int * int) list;  (* flow, departures *)
  order_hash : string;  (* MD5 of the "flow.seq;" service order *)
  finished_at : float;
  violations : string list;
}

type result = { rows : policy_run list }

let capacity = 1000.0
let weights = [ (1, 400.0); (2, 300.0); (3, 200.0); (4, 100.0) ]

let workload policy : Workload.t =
  (* three waves of 12 packets per flow, 80 ms apart, arrivals within a
     wave staggered per flow so the admission order is unambiguous *)
  let wave w =
    List.concat_map
      (fun (f, _) ->
        List.init 12 (fun i ->
            {
              Workload.at = (0.08 *. float_of_int w) +. (1e-4 *. float_of_int ((12 * f) + i));
              flow = f;
              len = 1000;
              rate = None;
            }))
      weights
  in
  let arrivals =
    List.sort
      (fun (a : Workload.arrival) b -> compare (a.at, a.flow) (b.at, b.flow))
      (wave 0 @ wave 1 @ wave 2)
  in
  {
    Workload.capacity;
    weights;
    arrivals;
    reweights = [];
    churn = [ { Workload.at = 0.04; flow = 4 }; { Workload.at = 0.12; flow = 3 } ];
    rate_changes = [];
    buffer = Some { Workload.per_flow = Some 8; aggregate = Some 24; policy };
  }

let run_policy policy =
  let w = workload policy in
  let s = Sfq.create (Weights.of_list ~default:1.0 weights) in
  let sched = Sfq.sched s in
  let counts = Hashtbl.create 8 in
  let order = Buffer.create 1024 in
  let counted =
    {
      sched with
      Sched.dequeue =
        (fun ~now ->
          match sched.Sched.dequeue ~now with
          | Some p as r ->
            let f = p.Packet.flow in
            Hashtbl.replace counts f (Option.value (Hashtbl.find_opt counts f) ~default:0 + 1);
            Buffer.add_string order (Printf.sprintf "%d.%d;" f p.Packet.seq);
            r
          | None -> None);
    }
  in
  let monitors = Suite.stress_set sched in
  let o = Run.fixed_rate ~sched:counted ~monitors w in
  {
    policy = Buffered.policy_name policy;
    departures = o.Run.departures;
    drops = o.Run.drops;
    per_flow =
      List.map (fun (f, _) -> (f, Option.value (Hashtbl.find_opt counts f) ~default:0)) weights;
    order_hash = Digest.to_hex (Digest.string (Buffer.contents order));
    finished_at = o.Run.finished_at;
    violations =
      List.map (fun (v : Monitor.violation) -> v.Monitor.monitor) o.Run.violations;
  }

let run () =
  { rows = List.map run_policy Buffered.[ Drop_tail; Drop_front; Longest_queue ] }
