(** A uniform, machine-consumable index of every experiment module —
    the E1–E28 data behind EXPERIMENTS.md — so the domain-parallel
    sweep engine ([bin/sfq_sweep], DESIGN.md §9) can regenerate all of
    it from one place and digest the results.

    Each entry wraps the module's [run] behind a common signature:
    [quick] maps to whatever reduced-size knob the module has (ignored
    when it has none), and [seed], when given, overrides the module's
    baked-in default seed (entries without a seed parameter ignore it —
    their data is deterministic by construction). Running an entry
    returns the result record marshalled to bytes; {!digest} is its MD5,
    a content hash of everything the experiment computed. Two runs agree
    on the digest iff they agree on every number in the result, which is
    the property the parallel≡serial suite and the golden corpus both
    lean on.

    Parallel safety (audit): an entry's [run] builds its simulator,
    servers, RNGs and metrics inside the call — experiment modules hold
    no module-level mutable state — so entries can execute on worker
    domains concurrently. Keep [print] (stdout, process-global) out of
    workers: the CLI prints only after the barrier, in index order. *)

type entry = {
  id : string;  (** EXPERIMENTS.md slug, e.g. ["fig-1b"] *)
  title : string;
  run : ?seed:int -> quick:bool -> unit -> string;
      (** marshalled result record (content bytes for hashing) *)
}

val all : entry list
(** In EXPERIMENTS.md order, E1 first. Entry indices are stable: the
    per-experiment seeds the CLI derives with [Seed.derive ~index] name
    the same experiment forever. *)

val find : string -> entry option

val digest : entry -> ?seed:int -> quick:bool -> unit -> string
(** MD5 (hex) of the entry's marshalled result. *)

val compact : id:string -> ?seed:int -> quick:bool -> unit -> string option
(** The golden-trace regression form: a few lines of per-flow packet
    counts, order hashes and [%h]-rendered headline numbers — compact
    enough to check in, exact enough to catch silent behavioral drift.
    Provided for ["example-1"] (E1), ["fig-1b"] (E3), ["table-1"]
    (Table 1), ["churn-stress"] (E24), ["pifo-port"] (E26),
    ["net-sweep"] (E27, one delivery-order digest per topology cell)
    and ["lstf-replay"] (E28, one replay verdict per recorded
    schedule); [None] for other ids. *)

val golden_corpus : unit -> string
(** The checked-in golden block ([test/golden/digests.expected]):
    {!compact} of example-1, fig-1b, table-1, churn-stress, pifo-port,
    net-sweep and lstf-replay under their default seeds (table-1 in quick mode, so
    [dune runtest] stays fast), plus [#]-comment header lines. Regenerate with
    [sfq-sweep golden > test/golden/digests.expected]; the regression
    test compares everything except [#] lines. *)
