(** Discipline factory shared by the experiments: build any scheduler
    in the library from a uniform spec, so experiments can sweep over
    algorithms. *)

open Sfq_base

type spec =
  | Sfq
  | Wfq of { capacity : float }  (** assumed GPS capacity, bits/s; textbook fluid clock *)
  | Wfq_real of { capacity : float }
      (** WFQ with the practical really-backlogged-set clock (see {!Sfq_sched.Wfq}) *)
  | Fqs of { capacity : float }
  | Wf2q of { capacity : float }
      (** Bennett & Zhang's WF2Q: WFQ restricted to GPS-eligible packets *)
  | Scfq
  | Drr of { quantum : float }  (** bits per round per unit weight *)
  | Wrr
  | Virtual_clock
  | Fair_airport
  | Fifo
  | Sfq_fast  (** fixed-point SFQ ({!Sfq_fastpath.Sfq_fast}), default quantum *)
  | Scfq_fast
  | Virtual_clock_fast
  | Sp_pifo of { banks : int }
      (** approximate rank order on [banks] strict-priority FIFOs
          ({!Sfq_fastpath.Sp_pifo}) *)
  | Pifo_sfq  (** SFQ as a rank program on the PIFO runtime ({!Sfq_pifo.Programs}) *)
  | Pifo_scfq
  | Pifo_vc
  | Pifo_fqs of { capacity : float }
  | Pifo_wf2q of { capacity : float }
      (** shaped rank program: eligibility-gated by the GPS start tag *)
  | Lstf of {
      deadline : Sfq_base.Packet.t -> float;
      residual : Sfq_base.Packet.t -> float;
    }
      (** Least-Slack-Time-First ({!Sfq_sched.Lstf}): serves by
          [deadline − residual]. Ignores the weights — deadlines are
          the whole policy. Carries closures, so unlike the other
          specs it is not structurally comparable. *)
  | Pifo_lstf of {
      deadline : Sfq_base.Packet.t -> float;
      residual : Sfq_base.Packet.t -> float;
    }  (** the same discipline as a rank program on the PIFO runtime *)

val name : spec -> string
val make : spec -> Weights.t -> Sched.t
