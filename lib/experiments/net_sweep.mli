(** Network-scale scenario sweeps: topologies × disciplines × seeds,
    sharded over the domain pool with deterministic positional
    reduction (E27, DESIGN.md §13).

    A {e scenario cell} is one closed simulation: a {!Sfq_netsim.Topo}
    shape whose links all run one {!Disc} discipline, a churn-driven
    background flow population recycled through a
    {!Sfq_base.Flow_registry} (ids — and with them every dense per-flow
    array — bounded by the live window, not the total flow count), and
    a handful of {e reserved} CBR flows whose end-to-end delays are
    checked against the composed Thm 8/9 bound by
    {!Sfq_oracle.E2e_oracle}. Per-hop structural monitors (flow-FIFO,
    per-server conservation) ride along, plus network-wide conservation
    probes: at every checkpoint and after the final drain,
    [injected = delivered + dropped + closed + in-flight].

    Determinism contract (same as {!Sfq_oracle.Run.sweep}): a cell
    builds all of its mutable state inside {!run_scenario}, its RNG
    stream is a pure function of the cell's seed, and {!sweep} reduces
    positionally — so {!sweep_digest} is byte-identical at every domain
    count, which test_par and the netsim-scale CI job both enforce. *)

open Sfq_base
open Sfq_netsim
module Monitor = Sfq_oracle.Monitor

type scenario = {
  label : string;
  spec : Topo.spec;
  disc : Disc.spec;
  seed : int;
  flows : int;  (** background flows opened over the run *)
  window : int;  (** max concurrently-live background flows (churn) *)
  pkts_per_flow : int;
  len : int;  (** packet length, bits (also every flow's l^max) *)
  reserved : int;  (** CBR flows under the composed-delay oracle *)
  reserved_pkts : int option;  (** [None]: span the open phase *)
  churn : bool;  (** recycle ids once the window fills *)
  buffer : Buffered.config option;  (** per-link switch memory *)
  load : float;  (** offered background load on the core link *)
  access_rate : float;
  core_rate : float;
  prop_delay : float;
  monitors : bool;  (** attach per-hop monitors (off for scale runs) *)
  checkpoints : int;  (** mid-run network-conservation probes *)
  skip_hop : int option;
      (** mutant: forget hop [i mod nhops]'s β in the composed bound —
          the oracle must then report a violation *)
}

val scenario :
  ?flows:int ->
  ?window:int ->
  ?pkts_per_flow:int ->
  ?len:int ->
  ?reserved:int ->
  ?reserved_pkts:int ->
  ?churn:bool ->
  ?buffer:Buffered.config ->
  ?load:float ->
  ?access_rate:float ->
  ?core_rate:float ->
  ?prop_delay:float ->
  ?monitors:bool ->
  ?checkpoints:int ->
  ?skip_hop:int ->
  ?seed:int ->
  label:string ->
  spec:Topo.spec ->
  disc:Disc.spec ->
  unit ->
  scenario
(** Defaults: 48 flows, window 16, 2 pkts/flow of 8192 bits, 2 reserved
    flows, no churn, unbuffered, load 0.5 on a 2{^20} b/s core with
    equal access links, 2{^-10} s propagation, monitors on, 4
    checkpoints, seed [0x5eed]. Rates and lengths are dyadic so the
    fixed-point fast paths tag exactly. Reserved rates sum to C/4 and
    background reservations to at most C/4 — the [Σ r_n <= C] premise
    of Thm 4 holds with 2x headroom for draining ids.
    @raise Invalid_argument on degenerate sizing. *)

val directed : ?disc:Disc.spec -> ?skip_hop:int -> spec:Topo.spec -> unit -> scenario
(** The satellite Thm 8/9 cell: one reserved CBR flow per entry, no
    background population, 8 packets each. With no competitors every
    per-hop β is exact, so the composed bound holds with zero slack on
    a line — and a [skip_hop] mutant is short by at least the dropped
    hop's service time, which the oracle must flag. *)

type outcome = {
  injected : int;
  delivered : int;
  dropped : int;
  closed : int;
  in_flight : int;  (** 0 after a full drain — checked, and digested *)
  finished_at : float;
  high_water : int;  (** registry id bound — the RSS story at 10⁶ flows *)
  peak_live : int;
  order_hash : int64;  (** FNV-1a over the delivery stream *)
  e2e_checked : int;
  e2e_lost : int;
  min_slack : float;
  violations : Monitor.violation list;
}

val run_scenario : scenario -> outcome

val sweep : ?domains:int -> ?pool:Sfq_par.Pool.t -> scenario list -> outcome array
(** Fan the cells over the pool ({!Sfq_par.Pool.run}, or [pool] when
    given); results land positionally. [domains = 1] (default) runs
    serially with no spawn. *)

val outcome_digest : outcome -> string
(** Exact ([%h] floats, full hash) one-line rendering. *)

val sweep_digest : scenario list -> outcome array -> string
(** One [label | digest] line per cell, in cell order — the
    serial≡parallel witness. *)

val default_cells : ?root:int -> unit -> scenario list
(** The standard grid — {star4, line3, tree2x2, dumbbell3x2} × {sfq,
    scfq, sfq-fast, pifo-sfq, drr} × 2 seed replicates — plus one
    churn-heavy overloaded star8 cell with finite Drop_front buffers.
    Cell seeds derive from [root] (default [0x7e57]) by index.
    Append-only: test_par and the golden corpus digest these labels. *)

val scale_star :
  ?flows:int ->
  ?window:int ->
  ?leaves:int ->
  ?reserved:int ->
  ?disc:Disc.spec ->
  ?seed:int ->
  unit ->
  scenario
(** The E27 scaling cell: a churned star, default 10⁶ flows through a
    4096-id window on 64 leaves, per-hop monitors off (the composed
    oracle and the conservation probes stay on), load 0.75. Memory is
    bounded by the window, not the flow count — the CI job runs the
    10⁵-flow variant under an RSS ceiling. *)
