(** Network-scale scenario sweeps: topologies × disciplines × seeds,
    sharded over the domain pool with deterministic positional
    reduction (E27, DESIGN.md §13).

    A {e scenario cell} is one closed simulation: a {!Sfq_netsim.Topo}
    shape whose links all run one {!Disc} discipline, a churn-driven
    background flow population recycled through a
    {!Sfq_base.Flow_registry} (ids — and with them every dense per-flow
    array — bounded by the live window, not the total flow count), and
    a handful of {e reserved} CBR flows whose end-to-end delays are
    checked against the composed Thm 8/9 bound by
    {!Sfq_oracle.E2e_oracle}. Per-hop structural monitors (flow-FIFO,
    per-server conservation) ride along, plus network-wide conservation
    probes: at every checkpoint and after the final drain,
    [injected = delivered + dropped + closed + in-flight].

    Determinism contract (same as {!Sfq_oracle.Run.sweep}): a cell
    builds all of its mutable state inside {!run_scenario}, its RNG
    stream is a pure function of the cell's seed, and {!sweep} reduces
    positionally — so {!sweep_digest} is byte-identical at every domain
    count, which test_par and the netsim-scale CI job both enforce. *)

open Sfq_base
open Sfq_netsim
module Monitor = Sfq_oracle.Monitor

type scenario = {
  label : string;
  spec : Topo.spec;
  disc : Disc.spec;
  seed : int;
  flows : int;  (** background flows opened over the run *)
  window : int;  (** max concurrently-live background flows (churn) *)
  pkts_per_flow : int;
  len : int;  (** packet length, bits (also every flow's l^max) *)
  reserved : int;  (** CBR flows under the composed-delay oracle *)
  reserved_pkts : int option;  (** [None]: span the open phase *)
  churn : bool;  (** recycle ids once the window fills *)
  buffer : Buffered.config option;  (** per-link switch memory *)
  load : float;  (** offered background load on the core link *)
  access_rate : float;
  core_rate : float;
  prop_delay : float;
  monitors : bool;  (** attach per-hop monitors (off for scale runs) *)
  checkpoints : int;  (** mid-run network-conservation probes *)
  skip_hop : int option;
      (** mutant: forget hop [i mod nhops]'s β in the composed bound —
          the oracle must then report a violation *)
}

val scenario :
  ?flows:int ->
  ?window:int ->
  ?pkts_per_flow:int ->
  ?len:int ->
  ?reserved:int ->
  ?reserved_pkts:int ->
  ?churn:bool ->
  ?buffer:Buffered.config ->
  ?load:float ->
  ?access_rate:float ->
  ?core_rate:float ->
  ?prop_delay:float ->
  ?monitors:bool ->
  ?checkpoints:int ->
  ?skip_hop:int ->
  ?seed:int ->
  label:string ->
  spec:Topo.spec ->
  disc:Disc.spec ->
  unit ->
  scenario
(** Defaults: 48 flows, window 16, 2 pkts/flow of 8192 bits, 2 reserved
    flows, no churn, unbuffered, load 0.5 on a 2{^20} b/s core with
    equal access links, 2{^-10} s propagation, monitors on, 4
    checkpoints, seed [0x5eed]. Rates and lengths are dyadic so the
    fixed-point fast paths tag exactly. Reserved rates sum to C/4 and
    background reservations to at most C/4 — the [Σ r_n <= C] premise
    of Thm 4 holds with 2x headroom for draining ids.
    @raise Invalid_argument on degenerate sizing. *)

val directed : ?disc:Disc.spec -> ?skip_hop:int -> spec:Topo.spec -> unit -> scenario
(** The satellite Thm 8/9 cell: one reserved CBR flow per entry, no
    background population, 8 packets each. With no competitors every
    per-hop β is exact, so the composed bound holds with zero slack on
    a line — and a [skip_hop] mutant is short by at least the dropped
    hop's service time, which the oracle must flag. *)

type outcome = {
  injected : int;
  delivered : int;
  dropped : int;
  closed : int;
  in_flight : int;  (** 0 after a full drain — checked, and digested *)
  finished_at : float;
  high_water : int;  (** registry id bound — the RSS story at 10⁶ flows *)
  peak_live : int;
  order_hash : int64;  (** FNV-1a over the delivery stream *)
  e2e_checked : int;
  e2e_lost : int;
  min_slack : float;
  violations : Monitor.violation list;
}

val run_scenario : scenario -> outcome

val run_raw :
  ?mk_link:(int -> rate:float -> Sched.t) ->
  ?tap:(Packet.t -> at:float -> unit) ->
  scenario ->
  outcome
(** {!run_scenario} with the two replay hooks: [mk_link i ~rate]
    overrides the scenario's discipline on the i-th link created (the
    deterministic order {!Sfq_netsim.Topo.build} calls [mk_sched] —
    i.e. {!Sfq_netsim.Topo.servers} order), and [tap] observes every
    sink delivery before it is folded into [order_hash]. Monitors,
    oracles, churn and the conservation probes behave exactly as in
    {!run_scenario}. *)

val sweep : ?domains:int -> ?pool:Sfq_par.Pool.t -> scenario list -> outcome array
(** Fan the cells over the pool ({!Sfq_par.Pool.run}, or [pool] when
    given); results land positionally. [domains = 1] (default) runs
    serially with no spawn. *)

val outcome_digest : outcome -> string
(** Exact ([%h] floats, full hash) one-line rendering. *)

val sweep_digest : scenario list -> outcome array -> string
(** One [label | digest] line per cell, in cell order — the
    serial≡parallel witness. *)

val default_cells : ?root:int -> unit -> scenario list
(** The standard grid — {star4, line3, tree2x2, dumbbell3x2} × {sfq,
    scfq, sfq-fast, pifo-sfq, drr} × 2 seed replicates — plus one
    churn-heavy overloaded star8 cell with finite Drop_front buffers.
    Cell seeds derive from [root] (default [0x7e57]) by index.
    Append-only: test_par and the golden corpus digest these labels. *)

val scale_star :
  ?flows:int ->
  ?window:int ->
  ?leaves:int ->
  ?reserved:int ->
  ?disc:Disc.spec ->
  ?seed:int ->
  unit ->
  scenario
(** The E27 scaling cell: a churned star, default 10⁶ flows through a
    4096-id window on 64 leaves, per-hop monitors off (the composed
    oracle and the conservation probes stay on), load 0.75. Memory is
    bounded by the window, not the flow count — the CI job runs the
    10⁵-flow variant under an RSS ceiling. *)

(** {1 Multi-hop schedule replay}

    The network half of {!Sfq_oracle.Replay}'s UPS harness (DESIGN.md
    §14). {!record_net} runs a scenario and records its delivery
    stream; {!replay_net} re-runs the same arrivals with every link
    scheduling by least slack — rank = recorded delivery time −
    {!Sfq_netsim.Topo.residuals} of the link — and compares the two
    delivery streams. Restrictions: no churn (id recycling breaks
    keying) and no finite buffers (drops have no delivery time); the
    E27 grid minus its churn cell satisfies both.

    Unlike the single hop, exact packet-for-packet order is not a
    theorem across hops (a later-deadline packet can reach a free
    server before its rival has crossed the upstream link — observed
    on exactly one E27 cell), so the network success criterion is the
    UPS paper's: no packet delivered later than its recorded time,
    with exact order reported as the stronger {!Exact} tier. *)

type net_schedule
(** A recorded delivery schedule: the sink stream plus per-packet
    delivery times, the per-link residual table and per-flow path
    lengths of the shape, and the originating scenario (replay re-runs
    its arrivals verbatim). *)

type under =
  | Under_lstf  (** per-link LSTF on the recorded deadlines *)
  | Under_mutant of Sfq_oracle.Replay.mutant
      (** LSTF with the named seeded defect at every link *)
  | Under_disc of Disc.spec
      (** negative control: re-run under a plain discipline (e.g. SFQ
          replaying a DRR recording must diverge somewhere on the
          grid) *)

type net_verdict =
  | Exact of int  (** packet-for-packet, with the delivery count *)
  | On_time of { delivered : int; swapped : Sfq_oracle.Replay.witness }
      (** every packet delivered at or before its recorded time (the
          UPS replay criterion) but the order permuted; [swapped] is
          the first order mismatch ([margin] in recorded-delivery-time
          currency) *)
  | Late of Sfq_oracle.Replay.witness
      (** replay failed: some packet beyond its recorded delivery
          time. The witness carries the worst offender — [expected] =
          [got] = the late packet, [at] its replay delivery time,
          [margin] its lateness, [hop] its path length. *)

val record_net : scenario -> net_schedule * outcome
(** Run the scenario ({!run_raw} with a recording tap) and keep its
    delivery schedule. The outcome is the ordinary E27 outcome of the
    recording run — digests stay comparable with {!run_scenario}.
    @raise Invalid_argument on churned or buffered scenarios. *)

val replay_net : net_schedule -> under -> net_verdict
(** Re-run the recorded scenario's arrivals under [under] and compare
    delivery streams (see {!net_verdict}). *)

val net_verdict_digest : net_verdict -> string
(** One deterministic token, [%h] floats — ["exact=N"],
    ["on-time=N swap@i ..."] or ["late@i packet=f.s ..."]. *)

val net_schedule_order : net_schedule -> Sfq_oracle.Replay.key array
val net_schedule_scenario : net_schedule -> scenario

val net_schedule_hash : net_schedule -> string
(** MD5 of the ["flow.seq"] delivery order — same currency as
    {!Sfq_oracle.Replay.schedule_hash}. *)
