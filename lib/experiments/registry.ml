(* The experiment index. Keep ids and order in sync with EXPERIMENTS.md
   (E1 first); indices feed per-experiment seed derivation in the CLI,
   so reordering entries changes derived seeds — append, don't shuffle. *)

type entry = {
  id : string;
  title : string;
  run : ?seed:int -> quick:bool -> unit -> string;
}

let marshal r = Marshal.to_string r []

(* Most modules are deterministic with no size knob: ignore both. *)
let fixed run ?seed:_ ~quick:_ () = marshal (run ())

(* ?seed-taking modules: pass the override through, or let the module's
   default stand. *)
let seeded run ?seed ~quick:_ () = marshal (run ?seed ())

let all =
  [
    { id = "example-1"; title = "E1 Example 1: WFQ unfairness"; run = fixed Ex1_wfq_unfair.run };
    { id = "example-2"; title = "E2 Example 2: variable-rate server"; run = fixed (fun () -> Ex2_variable_rate.run ()) };
    {
      id = "fig-1b";
      title = "E3 Fig. 1(b): TCP fairness, WFQ vs SFQ";
      run = (fun ?seed ~quick:_ () -> marshal (Fig1_tcp_fairness.run ?seed ()));
    };
    {
      id = "table-1";
      title = "E4 Table 1: fairness across disciplines";
      run = (fun ?seed:_ ~quick () -> marshal (Table1_fairness.run ~quick ()));
    };
    {
      id = "fig-2a";
      title = "E5 Fig. 2(a): delay reduction";
      run = (fun ?seed:_ ~quick () -> marshal (Fig2a_delay_reduction.run ~quick ()));
    };
    {
      id = "fig-2b";
      title = "E6 Fig. 2(b): average delay";
      run =
        (fun ?seed ~quick () ->
          marshal (Fig2b_avg_delay.run ~duration:(if quick then 50.0 else 200.0) ?seed ()));
    };
    { id = "scfq-gap"; title = "E7 SCFQ delay gap"; run = fixed (fun () -> Scfq_delay_gap.run ()) };
    {
      id = "fig-3b";
      title = "E8 Fig. 3(b): link sharing";
      run =
        (fun ?seed ~quick () ->
          marshal
            (Fig3_link_sharing.run ~pkts_per_conn:(if quick then 1500 else 4000) ?seed ()));
    };
    { id = "hier-sharing"; title = "E9 Example 3: hierarchical sharing"; run = fixed (fun () -> Hier_sharing.run ()) };
    { id = "delay-shift"; title = "E10 §3 delay shifting"; run = fixed Delay_shifting.run };
    { id = "bounds"; title = "E11 Theorems 2/3/4/5 validation"; run = seeded Bound_validation.run };
    { id = "e2e"; title = "E12 Corollary 1 end-to-end"; run = seeded End_to_end.run };
    { id = "fair-airport"; title = "E13 Fair Airport"; run = seeded Fair_airport_exp.run };
    { id = "residual"; title = "E15 §2.3 priority residual"; run = seeded Priority_residual.run };
    { id = "tie-break"; title = "E16 §2.3 tie-breaking ablation"; run = fixed Tie_break_ablation.run };
    { id = "gsfq"; title = "E17 §2.3 generalized SFQ video"; run = seeded Gsfq_video.run };
    {
      id = "e2e-ebf";
      title = "E18 Theorem 5 stochastic end-to-end";
      run = (fun ?seed ~quick:_ () -> marshal (E2e_ebf.run ?seed ()));
    };
    { id = "busy-rule"; title = "E19 busy-period rule ablation"; run = seeded Busy_rule_ablation.run };
    {
      id = "fig-1-topology";
      title = "E20 Fig. 1(a) full topology";
      run = (fun ?seed ~quick:_ () -> marshal (Fig1_topology.run ?seed ()));
    };
    {
      id = "churn-stress";
      title = "E24 overload & churn robustness";
      run = fixed Churn_stress.run;
    };
    {
      id = "pifo-port";
      title = "E26 PIFO rank-program ports vs originals";
      run = seeded Pifo_port.run;
    };
    {
      id = "net-sweep";
      title = "E27 network-scale topology sweep";
      (* Registry entries already execute inside pool tasks when the CLI
         shards experiments, and Pool.map rejects nested submission — so
         this sweep always runs its cells serially. The sharded path is
         exercised by [sfq_sweep net] and test_par instead. *)
      run =
        (fun ?seed ~quick:_ () ->
          let cells = Net_sweep.default_cells ?root:seed () in
          marshal (Net_sweep.sweep_digest cells (Net_sweep.sweep cells)));
    };
    {
      id = "lstf-replay";
      title = "E28 LSTF schedule-replay universality";
      run = (fun ?seed ~quick:_ () -> marshal (Lstf_replay.run ?seed ()));
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let digest e ?seed ~quick () = Digest.to_hex (Digest.string (e.run ?seed ~quick ()))

(* ------------------------------------------------------------------ *)
(* Golden-trace compact digests: per-flow packet counts + order hashes
   for the service-order experiments, %h floats (exact, not rounded)
   for headline numbers. Small enough to check in, sharp enough that
   any behavioral drift — one swapped departure, one changed bit of an
   H value — changes the text. *)

let h = Printf.sprintf "%h"

let order_hash render items =
  Digest.to_hex (Digest.string (String.concat ";" (List.map render items)))

let compact_example1 () =
  let r = Ex1_wfq_unfair.run () in
  let count flow =
    List.length (List.filter (fun (f, _) -> f = flow) r.Ex1_wfq_unfair.wfq_order)
  in
  [
    Printf.sprintf "example-1 wfq_order_hash=%s flow1_pkts=%d flow2_pkts=%d"
      (order_hash
         (fun (f, s) -> Printf.sprintf "%d.%d" f s)
         r.Ex1_wfq_unfair.wfq_order)
      (count 1) (count 2);
    Printf.sprintf "example-1 wfq_h=%s sfq_h=%s lower=%s bound=%s"
      (h r.Ex1_wfq_unfair.wfq_h) (h r.Ex1_wfq_unfair.sfq_h)
      (h r.Ex1_wfq_unfair.h_lower_bound) (h r.Ex1_wfq_unfair.h_sfq_bound);
  ]

let compact_fig1b ?seed () =
  let r = Fig1_tcp_fairness.run ?seed () in
  let series_hash s = order_hash (fun (t, n) -> Printf.sprintf "%s,%d" (h t) n) s in
  let stats name (s : Fig1_tcp_fairness.run_stats) =
    Printf.sprintf
      "fig-1b.%s src2=%d src3=%d src3_first_435ms=%d src2_hash=%s src3_hash=%s" name
      s.Fig1_tcp_fairness.src2_window s.Fig1_tcp_fairness.src3_window
      s.Fig1_tcp_fairness.src3_first_435ms
      (series_hash s.Fig1_tcp_fairness.src2_series)
      (series_hash s.Fig1_tcp_fairness.src3_series)
  in
  [
    stats "wfq-fluid" r.Fig1_tcp_fairness.wfq_fluid;
    stats "wfq-real" r.Fig1_tcp_fairness.wfq_real;
    stats "sfq" r.Fig1_tcp_fairness.sfq;
    Printf.sprintf "fig-1b video_rate_bps=%s" (h r.Fig1_tcp_fairness.video_rate_bps);
  ]

let compact_table1 ~quick () =
  let r = Table1_fairness.run ~quick () in
  List.map
    (fun (row : Table1_fairness.row) ->
      Printf.sprintf "table-1.%s backlogged=%s variable=%s catch_up=%s high_weight=%s"
        row.Table1_fairness.disc
        (h row.Table1_fairness.h_backlogged)
        (h row.Table1_fairness.h_variable)
        (h row.Table1_fairness.h_catch_up)
        (h row.Table1_fairness.h_high_weight))
    r.Table1_fairness.rows
  @ [
      Printf.sprintf "table-1 h_bound_equal=%s h_bound_high=%s"
        (h r.Table1_fairness.h_bound_equal) (h r.Table1_fairness.h_bound_high);
    ]

let compact_churn () =
  let r = Churn_stress.run () in
  List.map
    (fun (row : Churn_stress.policy_run) ->
      Printf.sprintf
        "churn-stress.%s departures=%d drops=%d finished_at=%s order_hash=%s %s violations=%d"
        row.Churn_stress.policy row.Churn_stress.departures row.Churn_stress.drops
        (h row.Churn_stress.finished_at) row.Churn_stress.order_hash
        (String.concat " "
           (List.map (fun (f, n) -> Printf.sprintf "f%d=%d" f n) row.Churn_stress.per_flow))
        (List.length row.Churn_stress.violations))
    r.Churn_stress.rows

let compact_pifo ?seed () =
  let r = Pifo_port.run ?seed () in
  List.map
    (fun (row : Pifo_port.row) ->
      Printf.sprintf "pifo-port.%s departures=%d order_hash=%s identical=%b"
        row.Pifo_port.disc row.Pifo_port.departures row.Pifo_port.order_hash
        row.Pifo_port.identical)
    r.Pifo_port.rows

let compact_netsweep ?seed () =
  let cells = Net_sweep.default_cells ?root:seed () in
  let outcomes = Net_sweep.sweep cells in
  List.mapi
    (fun i (c : Net_sweep.scenario) ->
      Printf.sprintf "net-sweep.%s %s" c.Net_sweep.label
        (Net_sweep.outcome_digest outcomes.(i)))
    cells

let compact_lstf ?seed () =
  let r = Lstf_replay.run ?seed () in
  List.map
    (fun (x : Lstf_replay.row) ->
      Printf.sprintf "lstf-replay.%s %s ok=%b" x.Lstf_replay.cell
        x.Lstf_replay.verdict x.Lstf_replay.ok)
    (r.Lstf_replay.single @ r.Lstf_replay.net @ r.Lstf_replay.control
   @ r.Lstf_replay.kills)

let compact ~id ?seed ~quick () =
  match id with
  | "example-1" -> Some (String.concat "\n" (compact_example1 ()))
  | "fig-1b" -> Some (String.concat "\n" (compact_fig1b ?seed ()))
  | "table-1" -> Some (String.concat "\n" (compact_table1 ~quick ()))
  | "churn-stress" -> Some (String.concat "\n" (compact_churn ()))
  | "pifo-port" -> Some (String.concat "\n" (compact_pifo ?seed ()))
  | "net-sweep" -> Some (String.concat "\n" (compact_netsweep ?seed ()))
  | "lstf-replay" -> Some (String.concat "\n" (compact_lstf ?seed ()))
  | _ -> None

let golden_corpus () =
  String.concat "\n"
    ([
       "# Golden compact digests: E1 (example-1), E3/Fig-1(b) (fig-1b, default";
       "# seed), Table 1 (table-1, quick mode), E24 (churn-stress), E26";
       "# (pifo-port, one service-order hash + identity flag per rank-program";
       "# discipline), E27 (net-sweep, one delivery-order digest per topology";
       "# x discipline x seed cell), E28 (lstf-replay, one replay verdict per";
       "# recorded schedule: single-hop cells, grid cells, SFQ negative";
       "# controls and seeded-mutant kills). Per-flow packet counts, service";
       "# order hashes, drop counts and %h-exact headline numbers under the";
       "# default seeds.";
       "# Regenerate after an intentional behavioral change with:";
       "#   dune exec bin/sfq_sweep.exe -- golden > test/golden/digests.expected";
     ]
    @ compact_example1 ()
    @ compact_fig1b ()
    @ compact_table1 ~quick:true ()
    @ compact_churn ()
    @ compact_pifo ()
    @ compact_netsweep ()
    @ compact_lstf ())
  ^ "\n"
