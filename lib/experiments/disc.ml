open Sfq_sched
open Sfq_core

type spec =
  | Sfq
  | Wfq of { capacity : float }
  | Wfq_real of { capacity : float }
  | Fqs of { capacity : float }
  | Wf2q of { capacity : float }
  | Scfq
  | Drr of { quantum : float }
  | Wrr
  | Virtual_clock
  | Fair_airport
  | Fifo
  | Sfq_fast
  | Scfq_fast
  | Virtual_clock_fast
  | Sp_pifo of { banks : int }
  | Pifo_sfq
  | Pifo_scfq
  | Pifo_vc
  | Pifo_fqs of { capacity : float }
  | Pifo_wf2q of { capacity : float }
  | Lstf of {
      deadline : Sfq_base.Packet.t -> float;
      residual : Sfq_base.Packet.t -> float;
    }
  | Pifo_lstf of {
      deadline : Sfq_base.Packet.t -> float;
      residual : Sfq_base.Packet.t -> float;
    }

let name = function
  | Sfq -> "SFQ"
  | Wfq _ -> "WFQ"
  | Wfq_real _ -> "WFQ(real)"
  | Fqs _ -> "FQS"
  | Wf2q _ -> "WF2Q"
  | Scfq -> "SCFQ"
  | Drr _ -> "DRR"
  | Wrr -> "WRR"
  | Virtual_clock -> "VirtualClock"
  | Fair_airport -> "FairAirport"
  | Fifo -> "FIFO"
  | Sfq_fast -> "SFQ-fast"
  | Scfq_fast -> "SCFQ-fast"
  | Virtual_clock_fast -> "VirtualClock-fast"
  | Sp_pifo { banks } -> Printf.sprintf "SP-PIFO/%d" banks
  | Pifo_sfq -> "PIFO-SFQ"
  | Pifo_scfq -> "PIFO-SCFQ"
  | Pifo_vc -> "PIFO-VC"
  | Pifo_fqs _ -> "PIFO-FQS"
  | Pifo_wf2q _ -> "PIFO-WF2Q"
  | Lstf _ -> "LSTF"
  | Pifo_lstf _ -> "PIFO-LSTF"

let pifo prog = Sfq_pifo.Pifo_sched.sched (Sfq_pifo.Pifo_sched.create prog)

let make spec weights =
  match spec with
  | Sfq -> Sfq_core.Sfq.sched (Sfq_core.Sfq.create weights)
  | Wfq { capacity } -> Wfq.sched (Wfq.create ~capacity weights)
  | Wfq_real { capacity } -> Wfq.sched (Wfq.create ~capacity ~clock:`Real weights)
  | Fqs { capacity } -> Fqs.sched (Fqs.create ~capacity weights)
  | Wf2q { capacity } -> Wf2q.sched (Wf2q.create ~capacity weights)
  | Scfq -> Scfq.sched (Scfq.create weights)
  | Drr { quantum } -> Drr.sched (Drr.create ~quantum weights)
  | Wrr -> Wrr.sched (Wrr.create weights)
  | Virtual_clock -> Virtual_clock.sched (Virtual_clock.create weights)
  | Fair_airport -> Fair_airport.sched (Fair_airport.create weights)
  | Fifo -> Fifo.sched (Fifo.create ())
  | Sfq_fast -> Sfq_fastpath.Sfq_fast.sched (Sfq_fastpath.Sfq_fast.create weights)
  | Scfq_fast -> Sfq_fastpath.Scfq_fast.sched (Sfq_fastpath.Scfq_fast.create weights)
  | Virtual_clock_fast ->
    Sfq_fastpath.Virtual_clock_fast.sched (Sfq_fastpath.Virtual_clock_fast.create weights)
  | Sp_pifo { banks } ->
    Sfq_fastpath.Sp_pifo.sched (Sfq_fastpath.Sp_pifo.create ~banks weights)
  | Pifo_sfq -> pifo (Sfq_pifo.Programs.sfq weights)
  | Pifo_scfq -> pifo (Sfq_pifo.Programs.scfq weights)
  | Pifo_vc -> pifo (Sfq_pifo.Programs.virtual_clock weights)
  | Pifo_fqs { capacity } -> pifo (Sfq_pifo.Programs.fqs ~capacity weights)
  | Pifo_wf2q { capacity } -> pifo (Sfq_pifo.Programs.wf2q ~capacity weights)
  | Lstf { deadline; residual } -> Lstf.sched (Lstf.create ~residual ~deadline ())
  | Pifo_lstf { deadline; residual } ->
    pifo (Sfq_pifo.Programs.lstf ~residual ~deadline ())
