open Sfq_sched
open Sfq_core

type spec =
  | Sfq
  | Wfq of { capacity : float }
  | Wfq_real of { capacity : float }
  | Fqs of { capacity : float }
  | Wf2q of { capacity : float }
  | Scfq
  | Drr of { quantum : float }
  | Wrr
  | Virtual_clock
  | Fair_airport
  | Fifo
  | Sfq_fast
  | Scfq_fast
  | Virtual_clock_fast
  | Sp_pifo of { banks : int }

let name = function
  | Sfq -> "SFQ"
  | Wfq _ -> "WFQ"
  | Wfq_real _ -> "WFQ(real)"
  | Fqs _ -> "FQS"
  | Wf2q _ -> "WF2Q"
  | Scfq -> "SCFQ"
  | Drr _ -> "DRR"
  | Wrr -> "WRR"
  | Virtual_clock -> "VirtualClock"
  | Fair_airport -> "FairAirport"
  | Fifo -> "FIFO"
  | Sfq_fast -> "SFQ-fast"
  | Scfq_fast -> "SCFQ-fast"
  | Virtual_clock_fast -> "VirtualClock-fast"
  | Sp_pifo { banks } -> Printf.sprintf "SP-PIFO/%d" banks

let make spec weights =
  match spec with
  | Sfq -> Sfq_core.Sfq.sched (Sfq_core.Sfq.create weights)
  | Wfq { capacity } -> Wfq.sched (Wfq.create ~capacity weights)
  | Wfq_real { capacity } -> Wfq.sched (Wfq.create ~capacity ~clock:`Real weights)
  | Fqs { capacity } -> Fqs.sched (Fqs.create ~capacity weights)
  | Wf2q { capacity } -> Wf2q.sched (Wf2q.create ~capacity weights)
  | Scfq -> Scfq.sched (Scfq.create weights)
  | Drr { quantum } -> Drr.sched (Drr.create ~quantum weights)
  | Wrr -> Wrr.sched (Wrr.create weights)
  | Virtual_clock -> Virtual_clock.sched (Virtual_clock.create weights)
  | Fair_airport -> Fair_airport.sched (Fair_airport.create weights)
  | Fifo -> Fifo.sched (Fifo.create ())
  | Sfq_fast -> Sfq_fastpath.Sfq_fast.sched (Sfq_fastpath.Sfq_fast.create weights)
  | Scfq_fast -> Sfq_fastpath.Scfq_fast.sched (Sfq_fastpath.Scfq_fast.create weights)
  | Virtual_clock_fast ->
    Sfq_fastpath.Virtual_clock_fast.sched (Sfq_fastpath.Virtual_clock_fast.create weights)
  | Sp_pifo { banks } ->
    Sfq_fastpath.Sp_pifo.sched (Sfq_fastpath.Sp_pifo.create ~banks weights)
