open Sfq_base
module Tag_queue = Sfq_sched.Tag_queue

type row = {
  disc : string;
  departures : int;
  order_hash : string;
  identical : bool;
}

type result = { seed : int; rows : row list }

(* The dyadic scenario family of the equivalence harness
   (test/test_pifo_equiv.ml): rates and overrides from 100·2^k,
   lengths multiples of 100, clocks in quarter steps — inputs on which
   the fixed-point rank programs promise packet-for-packet identity
   with the float originals, here distilled into a golden-corpus
   experiment (one service-order hash per port). *)
let dyadic_rates = [| 100.0; 200.0; 400.0; 800.0; 1600.0; 3200.0 |]

type action =
  | Enq of Packet.t
  | Deq
  | Evict of Sched.victim * int
  | Close of int

let gen_scenario seed =
  let r = Sfq_util.Rng.create seed in
  let open Sfq_util in
  let nflows = 1 + Rng.int r 4 in
  let weights =
    List.init nflows (fun f -> (f, dyadic_rates.(Rng.int r (Array.length dyadic_rates))))
  in
  let seqs = Array.make nflows 0 in
  let now = ref 0.0 in
  let nops = 160 + Rng.int r 120 in
  let ops = ref [] in
  for _ = 1 to nops do
    now := !now +. (0.25 *. float_of_int (Rng.int r 5));
    let t = !now in
    let a =
      let roll = Rng.int r 100 in
      if roll < 55 then begin
        let f = Rng.int r nflows in
        seqs.(f) <- seqs.(f) + 1;
        let len = 100 * (1 + Rng.int r 15) in
        let rate =
          if Rng.int r 4 = 0 then
            Some dyadic_rates.(Rng.int r (Array.length dyadic_rates))
          else None
        in
        Enq (Packet.make ?rate ~flow:f ~seq:seqs.(f) ~len ~born:t ())
      end
      else if roll < 85 then Deq
      else if roll < 93 then
        Evict ((if Rng.bool r then Sched.Oldest else Sched.Newest), Rng.int r nflows)
      else Close (Rng.int r nflows)
    in
    ops := (t, a) :: !ops
  done;
  (weights, List.rev !ops, !now)

(* Service order over the whole lifetime: every successful dequeue in
   op order, then the final drain. *)
let replay sched ops final =
  let out = ref [] in
  List.iter
    (fun (now, a) ->
      match a with
      | Enq p -> sched.Sched.enqueue ~now p
      | Deq -> (
        match sched.Sched.dequeue ~now with Some p -> out := p :: !out | None -> ())
      | Evict (v, f) -> ignore (sched.Sched.evict ~now v f)
      | Close f -> ignore (sched.Sched.close_flow ~now f))
    ops;
  List.rev_append !out (Sched.drain sched ~now:final)

let order_hash pkts =
  Digest.to_hex
    (Digest.string
       (String.concat ";"
          (List.map (fun p -> Printf.sprintf "%d.%d" p.Packet.flow p.Packet.seq) pkts)))

let pair ~disc ~mk_float ~mk_pifo (weights, ops, final) =
  let w = Weights.of_list ~default:1.0 weights in
  let a = replay (mk_float w) ops final in
  let b = replay (mk_pifo w) ops final in
  {
    disc;
    departures = List.length b;
    order_hash = order_hash b;
    identical = List.length a = List.length b && List.for_all2 ( == ) a b;
  }

let edd_specs weights =
  List.map
    (fun (f, r) -> (f, { Sfq_sched.Delay_edd.rate = r; deadline = 1.0; max_len = 1500 }))
    weights

let capacity = 800.0

(* Two-level class tree, flows split odd/even, inner SFQ leaves: the
   float Hsfq walks child lists, the PIFO tree pops per-class heaps —
   same physical service order on dyadic input. *)
let split weights = List.partition (fun (f, _) -> f mod 2 = 0) weights

let float_hier weights =
  let open Sfq_core in
  let left, right = split weights in
  let h = Hsfq.create () in
  let root = Hsfq.root h in
  let leaves_under parent flows =
    List.map
      (fun (f, r) ->
        let w = Weights.of_list ~default:1.0 [ (f, r) ] in
        (f, Hsfq.add_leaf h ~parent ~weight:r (Sfq.sched (Sfq.create w))))
      flows
  in
  let leaves =
    (if left = [] then []
     else leaves_under (Hsfq.add_class h ~parent:root ~weight:200.0) left)
    @
    if right = [] then []
    else leaves_under (Hsfq.add_class h ~parent:root ~weight:100.0) right
  in
  Hsfq.set_classifier h (Hsfq.classifier_by_flow leaves);
  Hsfq.sched h

let pifo_hier weights =
  let open Sfq_pifo in
  let left, right = split weights in
  let h = Pifo_tree.create () in
  let root = Pifo_tree.root h in
  let leaves_under parent flows =
    List.map
      (fun (f, r) ->
        let w = Weights.of_list ~default:1.0 [ (f, r) ] in
        ( f,
          Pifo_tree.add_leaf h ~parent ~weight:r
            (Pifo_sched.sched (Pifo_sched.create (Programs.sfq w))) ))
      flows
  in
  let leaves =
    (if left = [] then []
     else leaves_under (Pifo_tree.add_class h ~parent:root ~weight:200.0) left)
    @
    if right = [] then []
    else leaves_under (Pifo_tree.add_class h ~parent:root ~weight:100.0) right
  in
  Pifo_tree.set_classifier h (Pifo_tree.classifier_by_flow leaves);
  Pifo_tree.sched h

let run ?(seed = 0x26) () =
  let open Sfq_pifo in
  let p prog = Pifo_sched.sched (Pifo_sched.create prog) in
  let rows =
    [
      pair ~disc:"sfq"
        ~mk_float:(fun w -> Sfq_core.Sfq.sched (Sfq_core.Sfq.create w))
        ~mk_pifo:(fun w -> p (Programs.sfq w))
        (gen_scenario seed);
      pair ~disc:"scfq"
        ~mk_float:(fun w -> Sfq_sched.Scfq.sched (Sfq_sched.Scfq.create w))
        ~mk_pifo:(fun w -> p (Programs.scfq w))
        (gen_scenario (seed + 1));
      pair ~disc:"vc"
        ~mk_float:(fun w ->
          Sfq_sched.Virtual_clock.sched (Sfq_sched.Virtual_clock.create w))
        ~mk_pifo:(fun w -> p (Programs.virtual_clock w))
        (gen_scenario (seed + 2));
      (let ((weights, _, _) as scenario) = gen_scenario (seed + 3) in
       let specs = edd_specs weights in
       pair ~disc:"edd"
         ~mk_float:(fun _ -> Sfq_sched.Delay_edd.sched (Sfq_sched.Delay_edd.create specs))
         ~mk_pifo:(fun _ -> p (Programs.delay_edd specs))
         scenario);
      pair ~disc:"fqs"
        ~mk_float:(fun w -> Sfq_sched.Fqs.sched (Sfq_sched.Fqs.create ~capacity w))
        ~mk_pifo:(fun w -> p (Programs.fqs ~capacity w))
        (gen_scenario (seed + 4));
      pair ~disc:"wf2q"
        ~mk_float:(fun w -> Sfq_sched.Wf2q.sched (Sfq_sched.Wf2q.create ~capacity w))
        ~mk_pifo:(fun w -> p (Programs.wf2q ~capacity w))
        (gen_scenario (seed + 5));
      (let ((weights, _, _) as scenario) = gen_scenario (seed + 6) in
       pair ~disc:"hsfq"
         ~mk_float:(fun _ -> float_hier weights)
         ~mk_pifo:(fun _ -> pifo_hier weights)
         scenario);
    ]
  in
  { seed; rows }

let print () =
  let r = run () in
  Printf.printf "E26: rank-program ports vs hand-written originals (seed %#x)\n" r.seed;
  List.iter
    (fun row ->
      Printf.printf "  %-5s departures=%-4d order_hash=%s identical=%b\n" row.disc
        row.departures row.order_hash row.identical)
    r.rows
