module Replay = Sfq_oracle.Replay

type row = { cell : string; verdict : string; ok : bool }

type result = {
  single : row list;
  net : row list;
  control : row list;
  kills : row list;
}

let replayed = function Replay.Replayed _ -> true | Replay.Diverged _ -> false
let diverged v = not (replayed v)

(* Network success per the UPS criterion: no packet late. Exact order
   is the common case (19 of 20 grid cells) and prints as its own
   tier, so an order regression still moves the golden text. *)
let on_time = function
  | Net_sweep.Exact _ | Net_sweep.On_time _ -> true
  | Net_sweep.Late _ -> false

let late v = not (on_time v)

let row ~cell ~expect ~digest v = { cell; verdict = digest v; ok = expect v }

let srow ~cell ~expect v = row ~cell ~expect ~digest:Replay.verdict_digest v
let nrow ~cell ~expect v = row ~cell ~expect ~digest:Net_sweep.net_verdict_digest v

(* First replicate of the E27 grid, churn/buffer cells excluded (the
   replay restrictions); one cell per topology × discipline. *)
let grid_r0 ~root () =
  List.filter
    (fun (c : Net_sweep.scenario) ->
      (not c.Net_sweep.churn)
      && c.Net_sweep.buffer = None
      && (let l = c.Net_sweep.label in
          String.length l >= 3 && String.sub l (String.length l - 3) 3 = "/r0"))
    (Net_sweep.default_cells ~root ())

let is_drr (c : Net_sweep.scenario) =
  match c.Net_sweep.disc with Disc.Drr _ -> true | _ -> false

let is_star4_sfq (c : Net_sweep.scenario) = c.Net_sweep.label = "star4/SFQ/r0"

let run ?(seed = 0x7e57) ?(limit = 4) () =
  let single =
    List.map
      (fun (c : Replay.cell) ->
        srow ~cell:c.Replay.label ~expect:replayed (c.Replay.run ()))
      (Replay.suite_cells ~limit ())
  in
  let grid = grid_r0 ~root:seed () in
  let net =
    List.map
      (fun (c : Net_sweep.scenario) ->
        let ns, _ = Net_sweep.record_net c in
        nrow
          ~cell:("net/" ^ c.Net_sweep.label)
          ~expect:on_time
          (Net_sweep.replay_net ns Net_sweep.Under_lstf))
      grid
  in
  (* Negative control: SFQ re-runs of the DRR recordings. Per-cell
     verdicts are pinned either way; the claim tests assert is that at
     least one comes back late. *)
  let control =
    List.filter_map
      (fun (c : Net_sweep.scenario) ->
        if not (is_drr c) then None
        else
          let ns, _ = Net_sweep.record_net c in
          Some
            (nrow
               ~cell:("control/sfq-replays-drr/" ^ c.Net_sweep.label)
               ~expect:late
               (Net_sweep.replay_net ns (Net_sweep.Under_disc Disc.Sfq))))
      grid
  in
  let kills =
    List.concat_map
      (fun (_, label, thunk) ->
        let correct, mutant = thunk () in
        [
          srow ~cell:(label ^ "/correct") ~expect:replayed correct;
          srow ~cell:(label ^ "/mutant") ~expect:diverged mutant;
        ])
      (Replay.directed_kills ())
    @
    (* The network-level wrong-slack kill: freezing the ingress slack
       at every hop of the star recording must push some packet past
       its recorded delivery. Priority_tie has no network cell here —
       honest recordings put no rank ties on these links, which is why
       its directed kill above uses a crafted table. *)
    match List.find_opt is_star4_sfq grid with
    | None -> []
    | Some c ->
      let ns, _ = Net_sweep.record_net c in
      [
        nrow
          ~cell:
            (Printf.sprintf "net/%s/%s"
               (Replay.mutant_name Replay.Wrong_slack)
               c.Net_sweep.label)
          ~expect:late
          (Net_sweep.replay_net ns (Net_sweep.Under_mutant Replay.Wrong_slack));
      ]
  in
  { single; net; control; kills }

let print () =
  let r = run () in
  Printf.printf "E28: LSTF schedule-replay universality\n";
  let section name rows =
    Printf.printf "  %s (%d rows, %d ok)\n" name (List.length rows)
      (List.length (List.filter (fun x -> x.ok) rows));
    List.iter
      (fun x -> Printf.printf "    %-40s %s ok=%b\n" x.cell x.verdict x.ok)
      rows
  in
  section "single-hop" r.single;
  section "network" r.net;
  section "control" r.control;
  section "kills" r.kills
