(** E24: overload and churn robustness (not a paper figure).

    SFQ on a 1000 bit/s link with reservations 400/300/200/100 is
    offered three 12-packet-per-flow bursts against buffer budgets of
    8 per flow and 24 aggregate, while flows 3 and 4 are closed
    mid-run (their later bursts re-admit them at [S >= v(t)], eq. 4).
    One run per {!Sfq_base.Buffered.policy}; each run is monitored by
    the structural suite plus the conservation law (enqueued =
    departed + dropped + backlogged). Fully deterministic — the
    service-order hash and the drop/departure counts are golden
    material. *)

type policy_run = {
  policy : string;
  departures : int;
  drops : int;  (** buffer-policy losses + closure flushes *)
  per_flow : (int * int) list;  (** flow, departures *)
  order_hash : string;  (** MD5 of the "flow.seq;" service order *)
  finished_at : float;
  violations : string list;  (** names of tripped monitors; expect [] *)
}

type result = { rows : policy_run list }

val run : unit -> result
