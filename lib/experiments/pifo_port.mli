(** E26: rank-program ports vs hand-written originals.

    Replays one frozen dyadic scenario per discipline (rates and
    overrides from 100·2^k, lengths multiples of 100, quarter-step
    clocks) through both the float original and its PIFO rank-program
    port, and records the port's service order as an MD5 hash plus a
    packet-for-packet physical-identity flag. The golden corpus pins
    these rows: a quantization regression in the runtime or any port
    flips [identical] or moves the hash. *)

type row = {
  disc : string;  (** sfq | scfq | vc | edd | fqs | wf2q | hsfq *)
  departures : int;
  order_hash : string;  (** MD5 of the "flow.seq" service order *)
  identical : bool;  (** port == original, by physical packet identity *)
}

type result = { seed : int; rows : row list }

val run : ?seed:int -> unit -> result
val print : unit -> unit
