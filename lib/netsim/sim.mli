(** Discrete-event simulation core.

    A simulation is a clock plus a priority queue of timestamped
    callbacks. Equal-time events fire in scheduling order, which makes
    every experiment deterministic given its RNG seed. This replaces
    the REAL simulator used by the paper's Figs. 1 and 2(b). *)

type t

val create : unit -> t
val now : t -> float

val schedule : t -> at:float -> (unit -> unit) -> unit
(** @raise Invalid_argument if [at] is in the past. Scheduling at
    exactly [now t] is allowed (the event fires in this or the next
    [run] call). *)

val schedule_after : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~at:(now t +. delay)]. [delay] must be >= 0. *)

val run : t -> until:float -> unit
(** Fire every event with timestamp [<= until] in order, then set the
    clock to [until]. Callbacks may schedule further events, including
    at the current instant. *)

val run_all : t -> ?limit:int -> unit -> unit
(** Fire events until the queue drains, or until [limit] events have
    fired (default 100 million — a runaway guard, not a tuning knob). *)

val pending : t -> int
(** Events currently queued. *)

val events_fired : t -> int

val set_metrics : t -> Sfq_obs.Metrics.t -> prefix:string -> unit
(** Register the simulator in a metrics registry: a counter
    [<prefix>.events] incremented per fired event, gauges
    [<prefix>.pending] (queue depth, with its high-water mark) and
    [<prefix>.now] (clock), updated as events fire. One registry per
    simulation (setting replaces). *)
