open Sfq_base

type t = {
  sim : Sim.t;
  name : string;
  rate : Rate_process.t;
  sched : Sched.t;
  (* The serving view: [sched] behind a {!Buffered} admission gate when
     budgets are configured, [sched] itself otherwise. *)
  mutable view : Sched.t;
  priority : Packet.t Queue.t;
  mutable arrival_rejected : bool;
  mutable busy : bool;
  mutable drops : int;
  mutable closed : int;
  mutable departed : int;
  mutable work_done : float;
  mutable inject_handlers : (Packet.t -> unit) list;
  mutable drop_handlers : (reason:Buffered.reason -> Packet.t -> unit) list;
  mutable close_handlers : (flow:Packet.flow -> Packet.t list -> unit) list;
  mutable depart_handlers : (Packet.t -> start:float -> departed:float -> unit) list;
}

let wire_metrics t m ~delay_range =
  let open Sfq_obs in
  let lo, hi = delay_range in
  let bins = 400 in
  let pfx = t.name ^ "." in
  let injected = Metrics.counter m (pfx ^ "injected") in
  let dropped = Metrics.counter m (pfx ^ "dropped") in
  let rejected = Metrics.counter m (pfx ^ "dropped.rejected") in
  let evicted = Metrics.counter m (pfx ^ "dropped.evicted") in
  let closed = Metrics.counter m (pfx ^ "closed") in
  let departed = Metrics.counter m (pfx ^ "departed") in
  let bits = Metrics.counter m (pfx ^ "bits") in
  (* per-flow arrival-time FIFOs for residence delay, and live backlog
     counts for the gauge; both only exist when metrics are wired *)
  let arrivals : float Queue.t Flow_table.t =
    Flow_table.create ~default:(fun _ -> Queue.create ())
  in
  let backlog : int ref Flow_table.t = Flow_table.create ~default:(fun _ -> ref 0) in
  t.inject_handlers <-
    (fun p ->
      let flow = p.Packet.flow in
      Metrics.incr injected;
      Metrics.incr (Metrics.counter m ~flow (pfx ^ "injected"));
      Queue.push (Sim.now t.sim) (Flow_table.find arrivals flow);
      let b = Flow_table.find backlog flow in
      incr b;
      Metrics.set_gauge (Metrics.gauge m ~flow (pfx ^ "backlog")) (float_of_int !b))
    :: t.inject_handlers;
  t.drop_handlers <-
    (fun ~reason p ->
      let flow = p.Packet.flow in
      Metrics.incr dropped;
      Metrics.incr (Metrics.counter m ~flow (pfx ^ "dropped"));
      match reason with
      | Buffered.Rejected -> Metrics.incr rejected
      | Buffered.Evicted ->
        (* the victim was admitted earlier: release its backlog slot and
           one arrival stamp (exact under Drop_front, which evicts the
           oldest; approximate under Longest_queue) *)
        Metrics.incr evicted;
        let b = Flow_table.find backlog flow in
        if !b > 0 then decr b;
        Metrics.set_gauge (Metrics.gauge m ~flow (pfx ^ "backlog")) (float_of_int !b);
        ignore (Queue.take_opt (Flow_table.find arrivals flow)))
    :: t.drop_handlers;
  t.close_handlers <-
    (fun ~flow flushed ->
      List.iter (fun _ -> Metrics.incr closed) flushed;
      let b = Flow_table.find backlog flow in
      b := 0;
      Metrics.set_gauge (Metrics.gauge m ~flow (pfx ^ "backlog")) 0.0;
      Queue.clear (Flow_table.find arrivals flow))
    :: t.close_handlers;
  t.depart_handlers <-
    (fun p ~start:_ ~departed:at ->
      let flow = p.Packet.flow in
      Metrics.incr departed;
      Metrics.incr (Metrics.counter m ~flow (pfx ^ "departed"));
      Metrics.add bits (float_of_int p.Packet.len);
      let b = Flow_table.find backlog flow in
      if !b > 0 then decr b;
      Metrics.set_gauge (Metrics.gauge m ~flow (pfx ^ "backlog")) (float_of_int !b);
      match Queue.take_opt (Flow_table.find arrivals flow) with
      | Some arrived ->
        Metrics.observe m ~flow ~lo ~hi ~bins (pfx ^ "delay") (at -. arrived)
      | None -> ())
    :: t.depart_handlers

let create sim ~name ~rate ~sched ?flow_buffer_limit ?buffer ?metrics
    ?(delay_range = (0.0, 10.0)) () =
  (match flow_buffer_limit with
  | Some n when n <= 0 -> invalid_arg "Server.create: flow_buffer_limit must be positive"
  | Some _ | None -> ());
  let cfg =
    match (buffer, flow_buffer_limit) with
    | Some _, Some _ ->
      invalid_arg "Server.create: pass either buffer or flow_buffer_limit, not both"
    | Some cfg, None -> Some cfg
    | None, Some n -> Some (Buffered.config ~per_flow:n ())
    | None, None -> None
  in
  let t =
    {
      sim;
      name;
      rate;
      sched;
      view = sched;
      priority = Queue.create ();
      arrival_rejected = false;
      busy = false;
      drops = 0;
      closed = 0;
      departed = 0;
      work_done = 0.0;
      inject_handlers = [];
      drop_handlers = [];
      close_handlers = [];
      depart_handlers = [];
    }
  in
  (match cfg with
  | None -> ()
  | Some cfg ->
    let on_drop ~now:_ ~reason pkt =
      t.drops <- t.drops + 1;
      if reason = Buffered.Rejected then t.arrival_rejected <- true;
      List.iter (fun h -> h ~reason pkt) (List.rev t.drop_handlers)
    in
    t.view <- Buffered.sched (Buffered.wrap ~on_drop cfg sched));
  (match metrics with None -> () | Some m -> wire_metrics t m ~delay_range);
  t

let next_packet t ~now =
  match Queue.take_opt t.priority with
  | Some p -> Some p
  | None -> t.view.Sched.dequeue ~now

let rec start_service t =
  if not t.busy then begin
    let now = Sim.now t.sim in
    match next_packet t ~now with
    | None -> ()
    | Some p ->
      t.busy <- true;
      let finish =
        Rate_process.time_to_serve t.rate ~from:now ~amount:(float_of_int p.Packet.len)
      in
      Sim.schedule t.sim ~at:finish (fun () -> complete t p ~start:now)
  end

and complete t p ~start =
  let departed = Sim.now t.sim in
  t.busy <- false;
  t.departed <- t.departed + 1;
  t.work_done <- t.work_done +. float_of_int p.Packet.len;
  List.iter (fun h -> h p ~start ~departed) (List.rev t.depart_handlers);
  start_service t

let accept t p =
  List.iter (fun h -> h p) (List.rev t.inject_handlers);
  start_service t

let inject t p =
  t.arrival_rejected <- false;
  t.view.Sched.enqueue ~now:(Sim.now t.sim) p;
  if t.arrival_rejected then t.arrival_rejected <- false else accept t p

let inject_priority t p =
  Queue.push p t.priority;
  accept t p

let close_flow t flow =
  let flushed = t.view.Sched.close_flow ~now:(Sim.now t.sim) flow in
  t.closed <- t.closed + List.length flushed;
  List.iter (fun h -> h ~flow flushed) (List.rev t.close_handlers);
  flushed

let kick t = start_service t

let on_inject t h = t.inject_handlers <- h :: t.inject_handlers
let on_drop t h = t.drop_handlers <- (fun ~reason:_ p -> h p) :: t.drop_handlers

let on_drop_reason t h = t.drop_handlers <- h :: t.drop_handlers
let on_close t h = t.close_handlers <- h :: t.close_handlers
let on_depart t h = t.depart_handlers <- h :: t.depart_handlers
let sched t = t.sched
let sim t = t.sim
let name t = t.name
let busy t = t.busy
let drops t = t.drops
let closed t = t.closed
let departed t = t.departed
let work_done t = t.work_done
