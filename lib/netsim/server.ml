open Sfq_base

type t = {
  sim : Sim.t;
  name : string;
  rate : Rate_process.t;
  sched : Sched.t;
  priority : Packet.t Queue.t;
  flow_buffer_limit : int option;
  mutable busy : bool;
  mutable drops : int;
  mutable departed : int;
  mutable work_done : float;
  mutable inject_handlers : (Packet.t -> unit) list;
  mutable drop_handlers : (Packet.t -> unit) list;
  mutable depart_handlers : (Packet.t -> start:float -> departed:float -> unit) list;
}

let wire_metrics t m ~delay_range =
  let open Sfq_obs in
  let lo, hi = delay_range in
  let bins = 400 in
  let pfx = t.name ^ "." in
  let injected = Metrics.counter m (pfx ^ "injected") in
  let dropped = Metrics.counter m (pfx ^ "dropped") in
  let departed = Metrics.counter m (pfx ^ "departed") in
  let bits = Metrics.counter m (pfx ^ "bits") in
  (* per-flow arrival-time FIFOs for residence delay, and live backlog
     counts for the gauge; both only exist when metrics are wired *)
  let arrivals : float Queue.t Flow_table.t =
    Flow_table.create ~default:(fun _ -> Queue.create ())
  in
  let backlog : int ref Flow_table.t = Flow_table.create ~default:(fun _ -> ref 0) in
  t.inject_handlers <-
    (fun p ->
      let flow = p.Packet.flow in
      Metrics.incr injected;
      Metrics.incr (Metrics.counter m ~flow (pfx ^ "injected"));
      Queue.push (Sim.now t.sim) (Flow_table.find arrivals flow);
      let b = Flow_table.find backlog flow in
      incr b;
      Metrics.set_gauge (Metrics.gauge m ~flow (pfx ^ "backlog")) (float_of_int !b))
    :: t.inject_handlers;
  t.drop_handlers <-
    (fun p ->
      Metrics.incr dropped;
      Metrics.incr (Metrics.counter m ~flow:p.Packet.flow (pfx ^ "dropped")))
    :: t.drop_handlers;
  t.depart_handlers <-
    (fun p ~start:_ ~departed:at ->
      let flow = p.Packet.flow in
      Metrics.incr departed;
      Metrics.incr (Metrics.counter m ~flow (pfx ^ "departed"));
      Metrics.add bits (float_of_int p.Packet.len);
      let b = Flow_table.find backlog flow in
      if !b > 0 then decr b;
      Metrics.set_gauge (Metrics.gauge m ~flow (pfx ^ "backlog")) (float_of_int !b);
      match Queue.take_opt (Flow_table.find arrivals flow) with
      | Some arrived ->
        Metrics.observe m ~flow ~lo ~hi ~bins (pfx ^ "delay") (at -. arrived)
      | None -> ())
    :: t.depart_handlers

let create sim ~name ~rate ~sched ?flow_buffer_limit ?metrics
    ?(delay_range = (0.0, 10.0)) () =
  (match flow_buffer_limit with
  | Some n when n <= 0 -> invalid_arg "Server.create: flow_buffer_limit must be positive"
  | Some _ | None -> ());
  let t =
    {
      sim;
      name;
      rate;
      sched;
      priority = Queue.create ();
      flow_buffer_limit;
      busy = false;
      drops = 0;
      departed = 0;
      work_done = 0.0;
      inject_handlers = [];
      drop_handlers = [];
      depart_handlers = [];
    }
  in
  (match metrics with None -> () | Some m -> wire_metrics t m ~delay_range);
  t

let next_packet t ~now =
  match Queue.take_opt t.priority with
  | Some p -> Some p
  | None -> t.sched.Sched.dequeue ~now

let rec start_service t =
  if not t.busy then begin
    let now = Sim.now t.sim in
    match next_packet t ~now with
    | None -> ()
    | Some p ->
      t.busy <- true;
      let finish =
        Rate_process.time_to_serve t.rate ~from:now ~amount:(float_of_int p.Packet.len)
      in
      Sim.schedule t.sim ~at:finish (fun () -> complete t p ~start:now)
  end

and complete t p ~start =
  let departed = Sim.now t.sim in
  t.busy <- false;
  t.departed <- t.departed + 1;
  t.work_done <- t.work_done +. float_of_int p.Packet.len;
  List.iter (fun h -> h p ~start ~departed) (List.rev t.depart_handlers);
  start_service t

let accept t p =
  List.iter (fun h -> h p) (List.rev t.inject_handlers);
  start_service t

let inject t p =
  let full =
    match t.flow_buffer_limit with
    | None -> false
    | Some limit -> t.sched.Sched.backlog p.Packet.flow >= limit
  in
  if full then begin
    t.drops <- t.drops + 1;
    List.iter (fun h -> h p) (List.rev t.drop_handlers)
  end
  else begin
    t.sched.Sched.enqueue ~now:(Sim.now t.sim) p;
    accept t p
  end

let inject_priority t p =
  Queue.push p t.priority;
  accept t p

let kick t = start_service t

let on_inject t h = t.inject_handlers <- h :: t.inject_handlers
let on_drop t h = t.drop_handlers <- h :: t.drop_handlers
let on_depart t h = t.depart_handlers <- h :: t.depart_handlers
let sched t = t.sched
let sim t = t.sim
let name t = t.name
let busy t = t.busy
let drops t = t.drops
let departed t = t.departed
let work_done t = t.work_done
