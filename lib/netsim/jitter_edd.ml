open Sfq_util
open Sfq_base

type entry = { eligible_at : float; deadline : float; uid : int; pkt : Packet.t }

type t = {
  sim : Sim.t;
  specs : (Packet.flow, Sfq_sched.Delay_edd.flow_spec) Hashtbl.t;
  eat : Sfq_sched.Eat.t;
  held : entry Ds_heap.t;  (* ordered by eligibility time *)
  ready : entry Ds_heap.t;  (* ordered by deadline *)
  counts : int Flow_table.t;
  mutable notifier : unit -> unit;
  mutable wakeup_at : float;  (* earliest scheduled wakeup; infinity if none *)
  mutable next_uid : int;
  mutable last_now : float;
}

let create sim specs =
  let table = Hashtbl.create 16 in
  List.iter
    (fun (flow, spec) ->
      let { Sfq_sched.Delay_edd.rate; deadline; max_len } = spec in
      if rate <= 0.0 || deadline <= 0.0 || max_len <= 0 then
        invalid_arg (Printf.sprintf "Jitter_edd: invalid spec for flow %d" flow);
      Hashtbl.replace table flow spec)
    specs;
  let by_eligibility a b =
    match compare a.eligible_at b.eligible_at with 0 -> compare a.uid b.uid | c -> c
  in
  let by_deadline a b =
    match compare a.deadline b.deadline with 0 -> compare a.uid b.uid | c -> c
  in
  {
    sim;
    specs = table;
    eat = Sfq_sched.Eat.create ();
    held = Ds_heap.create ~cmp:by_eligibility ();
    ready = Ds_heap.create ~cmp:by_deadline ();
    counts = Flow_table.create ~default:(fun _ -> 0);
    notifier = (fun () -> ());
    wakeup_at = infinity;
    next_uid = 0;
    last_now = 0.0;
  }

let set_notifier t f = t.notifier <- f

let promote t ~now =
  t.last_now <- Float.max t.last_now now;
  let rec go () =
    match Ds_heap.min_elt t.held with
    | Some e when e.eligible_at <= now +. 1e-12 ->
      ignore (Ds_heap.pop_min t.held);
      Ds_heap.add t.ready e;
      go ()
    | Some _ | None -> ()
  in
  go ()

(* Make sure a wakeup fires at the earliest held eligibility. The
   wakeup promotes matured packets itself before notifying, so a kick
   against a busy server can never re-arm a same-instant wakeup for the
   same packet (no event livelock). *)
let rec arm_wakeup t =
  match Ds_heap.min_elt t.held with
  | Some e when e.eligible_at < t.wakeup_at -. 1e-12 ->
    t.wakeup_at <- e.eligible_at;
    Sim.schedule t.sim
      ~at:(Float.max e.eligible_at (Sim.now t.sim))
      (fun () ->
        t.wakeup_at <- infinity;
        promote t ~now:(Sim.now t.sim);
        arm_wakeup t;
        t.notifier ())
  | Some _ | None -> ()

let enqueue t ~now pkt =
  let flow = pkt.Packet.flow in
  let spec =
    match Hashtbl.find_opt t.specs flow with
    | Some s -> s
    | None -> invalid_arg (Printf.sprintf "Jitter_edd: undeclared flow %d" flow)
  in
  let rate = match pkt.Packet.rate with Some r -> r | None -> spec.Sfq_sched.Delay_edd.rate in
  let eligible_at = Sfq_sched.Eat.on_arrival t.eat ~now ~flow ~len:pkt.Packet.len ~rate in
  let deadline = eligible_at +. spec.Sfq_sched.Delay_edd.deadline in
  let e = { eligible_at; deadline; uid = t.next_uid; pkt } in
  t.next_uid <- t.next_uid + 1;
  Flow_table.set t.counts flow (Flow_table.find t.counts flow + 1);
  if eligible_at <= now +. 1e-12 then Ds_heap.add t.ready e
  else begin
    Ds_heap.add t.held e;
    arm_wakeup t
  end;
  t.last_now <- Float.max t.last_now now

let dequeue t ~now =
  promote t ~now;
  match Ds_heap.pop_min t.ready with
  | Some e ->
    Flow_table.set t.counts e.pkt.Packet.flow (Flow_table.find t.counts e.pkt.Packet.flow - 1);
    Some e.pkt
  | None ->
    arm_wakeup t;
    None

let peek t =
  promote t ~now:t.last_now;
  match Ds_heap.min_elt t.ready with Some e -> Some e.pkt | None -> None

let size t = Ds_heap.length t.held + Ds_heap.length t.ready
let held t = Ds_heap.length t.held
let backlog t flow = Flow_table.find t.counts flow

(* Mid-queue eviction is not offered: holding-time regulation assumes
   the admitted sequence is delivered in full ({!Buffered} degrades to
   rejecting arrivals). Closing rebuilds both heaps — O(Q log Q), fine
   for a lifecycle event. *)
let close_flow t flow =
  let strip heap =
    let mine = ref [] and keep = ref [] in
    let rec drain () =
      match Ds_heap.pop_min heap with
      | None -> ()
      | Some e ->
        if e.pkt.Packet.flow = flow then mine := e :: !mine else keep := e :: !keep;
        drain ()
    in
    drain ();
    List.iter (Ds_heap.add heap) !keep;
    !mine
  in
  let taken = strip t.held @ strip t.ready in
  Flow_table.remove t.counts flow;
  Sfq_sched.Eat.reset_flow t.eat flow;
  (* uid is assigned in arrival order, so sorting restores oldest-first
     across the held/ready split *)
  List.sort (fun a b -> compare a.uid b.uid) taken |> List.map (fun e -> e.pkt)

let sched t =
  {
    Sched.name = "jitter-edd";
    enqueue = (fun ~now pkt -> enqueue t ~now pkt);
    dequeue = (fun ~now -> dequeue t ~now);
    peek = (fun () -> peek t);
    size = (fun () -> size t);
    backlog = (fun flow -> backlog t flow);
    evict = Sched.no_evict;
    close_flow = (fun ~now:_ flow -> close_flow t flow);
  }
