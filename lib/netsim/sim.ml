open Sfq_util

type metrics = {
  m_events : Sfq_obs.Metrics.counter;
  m_pending : Sfq_obs.Metrics.gauge;
  m_now : Sfq_obs.Metrics.gauge;
}

type t = {
  (* key = firing time, uid = scheduling order: equal-time events fire
     in scheduling order, and the monomorphic heap spares the netsim
     loop a closure call per comparison. *)
  queue : (unit -> unit) Fheap.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable fired : int;
  mutable metrics : metrics option;
}

let create () =
  { queue = Fheap.create ~capacity:64 (); clock = 0.0; next_seq = 0; fired = 0;
    metrics = None }

let now t = t.clock

let schedule t ~at fn =
  if at < t.clock then
    invalid_arg (Printf.sprintf "Sim.schedule: at=%g is before now=%g" at t.clock);
  Fheap.add t.queue ~key:at ~tie:0.0 ~uid:t.next_seq fn;
  t.next_seq <- t.next_seq + 1

let schedule_after t ~delay fn =
  if delay < 0.0 then invalid_arg "Sim.schedule_after: negative delay";
  schedule t ~at:(t.clock +. delay) fn

let fire t ~at fn =
  t.clock <- at;
  t.fired <- t.fired + 1;
  (match t.metrics with
  | None -> ()
  | Some m ->
    Sfq_obs.Metrics.incr m.m_events;
    Sfq_obs.Metrics.set_gauge m.m_pending (float_of_int (Fheap.length t.queue));
    Sfq_obs.Metrics.set_gauge m.m_now at);
  fn ()

let run t ~until =
  let rec loop () =
    if (not (Fheap.is_empty t.queue)) && Fheap.min_key_exn t.queue <= until then begin
      match Fheap.pop t.queue with
      | Some (at, fn) ->
        fire t ~at fn;
        loop ()
      | None -> ()
    end
  in
  loop ();
  if until > t.clock then t.clock <- until

let run_all t ?(limit = 100_000_000) () =
  let rec loop n =
    if n < limit then begin
      match Fheap.pop t.queue with
      | Some (at, fn) ->
        fire t ~at fn;
        loop (n + 1)
      | None -> ()
    end
  in
  loop 0

let pending t = Fheap.length t.queue
let events_fired t = t.fired

let set_metrics t m ~prefix =
  let open Sfq_obs in
  t.metrics <-
    Some
      {
        m_events = Metrics.counter m (prefix ^ ".events");
        m_pending = Metrics.gauge m (prefix ^ ".pending");
        m_now = Metrics.gauge m (prefix ^ ".now");
      }
