(** Topology generators over {!Net}: the multi-server setting of the
    paper's §2.4 end-to-end analysis, at generator scale.

    Each shape wires a {!Net.t} of constant-rate servers and
    pre-computes, per {e entry point} (the node where a flow may enter),
    the route to the sink and the ordered list of hops the route
    crosses. The per-hop record carries the link capacity and
    propagation delay — exactly the [C] and [τ] of Corollary 1's
    composed bound [EAT¹ + Σ β^n + Σ τ], so an end-to-end oracle can be
    parameterized straight off the topology.

    Shapes (all routes end at a single sink):
    - [Star leaves]: leaf_i → hub → sink; 2 hops. The ns2 basestation
      exemplar and the paper's Fig. 1(a) (three hosts into a switch).
    - [Line hops]: n_0 → n_1 → … → n_hops; one entry, [hops] hops — the
      tandem of §2.4.
    - [Tree arity depth]: a complete arity-ary aggregation tree; the
      [arity^depth] leaves are entries, the root forwards to the sink.
    - [Dumbbell left right]: src_i → router → router → dst_(i mod
      right); the shared middle link is the bottleneck.

    Determinism: nodes and links are created in a fixed order, so
    {!servers} (and everything folded over it) is reproducible across
    runs and domain counts. *)

open Sfq_base

type spec =
  | Star of { leaves : int }
  | Line of { hops : int }
  | Tree of { arity : int; depth : int }
  | Dumbbell of { left : int; right : int }

val spec_name : spec -> string
(** Label fragment, e.g. ["star8"], ["line3"], ["tree2x2"],
    ["dumbbell3x2"]. *)

val spec_entries : spec -> int
(** {!entries} of the built topology, computable without building it
    (scenario generators size their reserved-flow sets from this). *)

type hop = { server : Server.t; capacity : float; prop_delay : float }

type t

val build :
  Sim.t ->
  spec ->
  access_rate:float ->
  core_rate:float ->
  mk_sched:(rate:float -> Sched.t) ->
  ?prop_delay:float ->
  ?buffer:Buffered.config ->
  unit ->
  t
(** Wire the topology. [mk_sched] is called once per link with that
    link's capacity (so capacity-parametric disciplines, and monitor
    wrappers that need the rate, can be built per hop); edge links get
    [access_rate], interior/bottleneck links [core_rate]. [prop_delay]
    and [buffer] apply to every link.
    @raise Invalid_argument on a degenerate shape or non-positive
    rate. *)

val spec : t -> spec
val net : t -> Net.t
val sim : t -> Sim.t

val entries : t -> int
(** Number of entry points (1 for [Line]). *)

val path : t -> entry:int -> Net.node list
val hops : t -> entry:int -> hop list
(** The servers the route crosses, in route order, with capacity and
    propagation delay — the [β]/[τ] inputs of the composed bound. *)

val nhops : t -> entry:int -> int
val core : t -> Server.t
(** The designated bottleneck link (hub→sink, first line link,
    root→sink, the dumbbell middle). *)

val servers : t -> Server.t list
(** Every link's server, in creation order (deterministic). *)

val residuals : t -> len:int -> float array
(** Route-aware slack constants: [residuals.(i)] is the no-queueing
    time from the moment a packet of [len] bits starts service at the
    i-th link (in {!servers}' creation order — the order {!build}
    calls [mk_sched]) until its delivery at the sink: the link's own
    transmission and propagation plus those of every downstream hop.
    Well-defined because every generated shape is an in-tree — a
    link's downstream path is unique. This is the [residual] input an
    LSTF replay wants per hop: rank = deadline − residual is the
    latest service-start time that still meets the deadline. *)

val route_flow : t -> flow:Packet.flow -> entry:int -> unit
(** Register the flow's route with the {!Net}. *)

val close_flow : t -> flow:Packet.flow -> entry:int -> int
(** {!Server.close_flow} at every hop on the entry's route; returns the
    number of flushed packets. The caller still owns route removal
    ({!Net.unroute}) and registry recycling — and must delay both until
    the flow has nothing in flight. *)

val dropped : t -> int
(** Σ {!Server.drops} over all links. *)

val closed : t -> int
(** Σ {!Server.closed} over all links. *)

val queued : t -> int
(** Σ scheduler backlogs over all links (packets queued, excluding any
    in service or in propagation). *)
