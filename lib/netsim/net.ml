open Sfq_base

type node = { name : string; index : int }

type link_state = { server : Server.t; prop_delay : float }

type t = {
  sim : Sim.t;
  nodes : (string, node) Hashtbl.t;
  links : (int * int, link_state) Hashtbl.t;
  link_ends : (int * int, node * node) Hashtbl.t;
  routes : (Packet.flow, node array) Hashtbl.t;
  mutable delivered_handlers : (Packet.t -> at:float -> unit) list;
  mutable delivered : int;
  mutable injected : int;
  mutable next_index : int;
}

let create sim =
  {
    sim;
    nodes = Hashtbl.create 16;
    links = Hashtbl.create 16;
    link_ends = Hashtbl.create 16;
    routes = Hashtbl.create 16;
    delivered_handlers = [];
    delivered = 0;
    injected = 0;
    next_index = 0;
  }

let add_node t name =
  if Hashtbl.mem t.nodes name then
    invalid_arg (Printf.sprintf "Net.add_node: duplicate node %S" name);
  let node = { name; index = t.next_index } in
  t.next_index <- t.next_index + 1;
  Hashtbl.replace t.nodes name node;
  node

let node_name node = node.name

let find_link t ~src ~dst = Hashtbl.find_opt t.links (src.index, dst.index)

(* Position of [node] on the flow's route, if any. *)
let hop_index route node =
  let rec go i = if i >= Array.length route then None else if route.(i).index = node.index then Some i else go (i + 1) in
  go 0

let deliver t p =
  t.delivered <- t.delivered + 1;
  let at = Sim.now t.sim in
  List.iter (fun h -> h p ~at) (List.rev t.delivered_handlers)

(* Inject [p] into the link starting at route position [i]. *)
let rec send_from t route i p =
  if i >= Array.length route - 1 then deliver t p
  else begin
    let src = route.(i) and dst = route.(i + 1) in
    match find_link t ~src ~dst with
    | None -> assert false (* validated at [route] time *)
    | Some ls -> Server.inject ls.server p
  end

and forward t ls ~src ~dst p =
  (* Called when p finishes service on (src,dst): continue after the
     propagation delay. *)
  ignore src;
  match Hashtbl.find_opt t.routes p.Packet.flow with
  | None -> () (* local traffic injected directly at the server *)
  | Some route -> begin
    match hop_index route dst with
    | None -> ()
    | Some i ->
      Sim.schedule_after t.sim ~delay:ls.prop_delay (fun () -> send_from t route i p)
  end

let link t ~src ~dst ~rate ~sched ?(prop_delay = 0.0) ?flow_buffer_limit ?buffer () =
  if prop_delay < 0.0 then invalid_arg "Net.link: negative propagation delay";
  if Hashtbl.mem t.links (src.index, dst.index) then
    invalid_arg (Printf.sprintf "Net.link: %s->%s already exists" src.name dst.name);
  let server =
    Server.create t.sim
      ~name:(Printf.sprintf "%s->%s" src.name dst.name)
      ~rate ~sched ?flow_buffer_limit ?buffer ()
  in
  let ls = { server; prop_delay } in
  Hashtbl.replace t.links (src.index, dst.index) ls;
  Hashtbl.replace t.link_ends (src.index, dst.index) (src, dst);
  Server.on_depart server (fun p ~start:_ ~departed:_ -> forward t ls ~src ~dst p);
  server

let server t ~src ~dst =
  match find_link t ~src ~dst with Some ls -> ls.server | None -> raise Not_found

let route t ~flow path =
  (match path with
  | [] | [ _ ] -> invalid_arg "Net.route: a route needs at least two nodes"
  | _ -> ());
  let arr = Array.of_list path in
  for i = 0 to Array.length arr - 2 do
    if find_link t ~src:arr.(i) ~dst:arr.(i + 1) = None then
      invalid_arg
        (Printf.sprintf "Net.route: missing link %s->%s" arr.(i).name arr.(i + 1).name)
  done;
  Hashtbl.replace t.routes flow arr

let unroute t ~flow = Hashtbl.remove t.routes flow

let inject t p =
  match Hashtbl.find_opt t.routes p.Packet.flow with
  | None -> invalid_arg (Printf.sprintf "Net.inject: no route for flow %d" p.Packet.flow)
  | Some route ->
    t.injected <- t.injected + 1;
    send_from t route 0 p

let on_delivered t h = t.delivered_handlers <- h :: t.delivered_handlers
let delivered t = t.delivered
let injected t = t.injected

let iter_links t ~f =
  (* Hashtbl order depends on hashing internals; sort by the (src, dst)
     index pair so callers folding over links (digests, counter sums)
     see a deterministic sequence. *)
  Hashtbl.fold (fun key ls acc -> (key, ls) :: acc) t.links []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (key, ls) ->
         let src, dst = Hashtbl.find t.link_ends key in
         f ~src ~dst ls.server)
