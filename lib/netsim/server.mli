(** A packet server: one output link with a scheduling discipline and a
    (possibly fluctuating) service rate.

    The server is work-conserving and non-preemptive: whenever it is
    idle and a packet is queued it begins serving the discipline's
    choice, and the packet completes when the rate process has
    delivered [len] bits. An optional strict-priority queue sits above
    the discipline — the Fig. 1 experiment sends the MPEG video flow
    through it, which is exactly how the paper makes the output link
    "appear as a variable rate server" to the TCP flows scheduled
    below.

    Handlers observe the life cycle: [on_inject] fires at arrival (after
    a drop decision), [on_depart] at service completion with the
    service start time. Finite switch memory is modelled by a
    {!Sfq_base.Buffered} admission gate: pass a full [?buffer] config
    (per-flow and/or aggregate budgets, any drop policy) or the legacy
    [?flow_buffer_limit] shorthand (per-flow drop-tail, which the TCP
    experiments use); the default is unbounded. {!close_flow} ends a
    flow at the discipline, flushing its backlog.

    Passing [?metrics] registers the server in an
    {!Sfq_obs.Metrics.t}: per-hop counters
    [<name>.injected]/[.dropped]/[.departed] (total and per flow),
    the drop channel split by cause ([<name>.dropped.rejected] /
    [<name>.dropped.evicted] and [<name>.closed] for closure flushes),
    [<name>.bits] (work served), a per-flow [<name>.backlog] gauge
    (with high-water mark) and a per-flow [<name>.delay] residence-time
    histogram ([delay_range], default 0–10 s over 400 bins; values
    above saturate in the last bin — use a {!Trace} for exact order
    statistics). Arrivals and departures are matched per-flow FIFO —
    sound for every discipline here, provided a flow sticks to one
    path (scheduled or priority), as every experiment's flows do;
    under [Longest_queue] eviction the delay histogram is approximate
    (the stamp released is the oldest, the victim the newest). *)

open Sfq_base

type t

val create :
  Sim.t ->
  name:string ->
  rate:Rate_process.t ->
  sched:Sched.t ->
  ?flow_buffer_limit:int ->
  ?buffer:Buffered.config ->
  ?metrics:Sfq_obs.Metrics.t ->
  ?delay_range:float * float ->
  unit ->
  t
(** [flow_buffer_limit n] is shorthand for
    [~buffer:(Buffered.config ~per_flow:n ())]; passing both is an
    error. *)

val inject : t -> Packet.t -> unit
(** Enqueue at the discipline (through the buffer budgets, which may
    drop the arrival or evict a queued packet) and start service if
    idle. *)

val inject_priority : t -> Packet.t -> unit
(** Enqueue at the strict-priority FIFO (never dropped). *)

val kick : t -> unit
(** Re-poll the discipline if the server is idle. Work-conserving
    disciplines never need this; non-work-conserving ones (Jitter EDD's
    regulator) call it from a timer when a held packet becomes
    eligible. *)

val on_inject : t -> (Packet.t -> unit) -> unit
(** Add an arrival handler (fires for accepted packets only). *)

val on_drop : t -> (Packet.t -> unit) -> unit
(** Fires once per packet lost to the buffer policy (either cause). *)

val on_drop_reason : t -> (reason:Buffered.reason -> Packet.t -> unit) -> unit
(** Like {!on_drop}, with the cause. *)

val on_close : t -> (flow:Packet.flow -> Packet.t list -> unit) -> unit
(** Fires at each {!close_flow} with the flushed backlog. *)

val on_depart : t -> (Packet.t -> start:float -> departed:float -> unit) -> unit
(** Add a completion handler. [start] is when service began. Fires for
    priority packets too. *)

val close_flow : t -> Packet.flow -> Packet.t list
(** End the flow at the discipline: flush its queued packets (returned;
    counted in {!closed}, not {!drops}) and discard its scheduler
    state, so a later flow reusing the id re-enters at [S >= v(t)]
    (eq. 4). The packet in service, if any, still completes. *)

val sched : t -> Sched.t
(** The discipline itself (not the buffered admission view). *)

val sim : t -> Sim.t
val name : t -> string
val busy : t -> bool
val drops : t -> int
val closed : t -> int
(** Packets flushed by {!close_flow} so far. *)

val departed : t -> int
val work_done : t -> float
(** Total bits served so far (priority + scheduled). *)
