(** Multi-node networks: nodes, directed links, static per-flow routes.

    {!Tandem} wires a single chain; this module builds arbitrary
    topologies — the "network of servers" setting of §2.4, where each
    hop is an output link with its own scheduler and rate process (the
    paper's Fig. 1(a) topology is three hosts, a switch and a sink).

    Each directed link owns a {!Server} (the output queue of its source
    node) plus a propagation delay. Forwarding is per-flow source
    routing: a flow's route is the list of nodes it visits; when a
    packet finishes service on link (u,v) it is injected, after the
    propagation delay, into link (v,w) for the next node w on its
    route, until the route ends. *)

open Sfq_base

type t
type node

val create : Sim.t -> t
val add_node : t -> string -> node
(** @raise Invalid_argument on a duplicate name. *)

val node_name : node -> string

val link :
  t -> src:node -> dst:node -> rate:Rate_process.t -> sched:Sched.t ->
  ?prop_delay:float -> ?flow_buffer_limit:int -> ?buffer:Buffered.config ->
  unit -> Server.t
(** Create the directed link src→dst and return its server (for
    attaching traces, handlers, priority traffic). [buffer] is the
    link's finite switch memory ({!Server.create}'s admission gate);
    [flow_buffer_limit] is the per-flow drop-tail shorthand.
    @raise Invalid_argument if the link already exists or
    [prop_delay < 0]. *)

val server : t -> src:node -> dst:node -> Server.t
(** @raise Not_found if no such link. *)

val route : t -> flow:Packet.flow -> node list -> unit
(** Set the flow's path. Every consecutive pair must be linked.
    @raise Invalid_argument on a path shorter than 2 nodes or with a
    missing link. *)

val unroute : t -> flow:Packet.flow -> unit
(** Forget the flow's path (no-op when absent). Part of the flow-id
    recycling contract ({!Sfq_base.Flow_registry}): a closed id's route
    must not leak, and must not be visible to a later flow that reuses
    the id. Only call once the flow has no packets in flight — a packet
    between hops whose route has vanished would be dropped silently,
    breaking the conservation law the property tests check. *)

val inject : t -> Packet.t -> unit
(** Send a packet down its flow's route from the first node.
    @raise Invalid_argument if the flow has no route. *)

val on_delivered : t -> (Packet.t -> at:float -> unit) -> unit
(** Fires when a packet completes its route (after the last link's
    service and propagation). *)

val delivered : t -> int

val injected : t -> int
(** Total {!inject} calls — the left-hand side of the network-wide
    conservation law
    [injected = delivered + dropped + closed + in-flight]. *)

val iter_links : t -> f:(src:node -> dst:node -> Server.t -> unit) -> unit
(** Visit every link's server in deterministic (creation-index) order —
    for attaching monitors or summing per-hop counters without
    depending on hash-table iteration order. *)
