open Sfq_base

type spec =
  | Star of { leaves : int }
  | Line of { hops : int }
  | Tree of { arity : int; depth : int }
  | Dumbbell of { left : int; right : int }

let spec_name = function
  | Star { leaves } -> Printf.sprintf "star%d" leaves
  | Line { hops } -> Printf.sprintf "line%d" hops
  | Tree { arity; depth } -> Printf.sprintf "tree%dx%d" arity depth
  | Dumbbell { left; right } -> Printf.sprintf "dumbbell%dx%d" left right

let spec_entries = function
  | Star { leaves } -> leaves
  | Line _ -> 1
  | Tree { arity; depth } -> int_of_float (float_of_int arity ** float_of_int depth)
  | Dumbbell { left; _ } -> left

let validate = function
  | Star { leaves } -> if leaves < 1 then invalid_arg "Topo: star needs >= 1 leaf"
  | Line { hops } -> if hops < 1 then invalid_arg "Topo: line needs >= 1 hop"
  | Tree { arity; depth } ->
    if arity < 1 || depth < 1 then invalid_arg "Topo: tree needs arity, depth >= 1"
  | Dumbbell { left; right } ->
    if left < 1 || right < 1 then invalid_arg "Topo: dumbbell needs >= 1 host per side"

type hop = { server : Server.t; capacity : float; prop_delay : float }

type t = {
  spec : spec;
  net : Net.t;
  sim : Sim.t;
  paths : Net.node list array;
  hop_lists : hop list array;
  core : Server.t;
  servers : Server.t list;
}

let build sim spec ~access_rate ~core_rate ~mk_sched ?(prop_delay = 0.0) ?buffer () =
  validate spec;
  if access_rate <= 0.0 || core_rate <= 0.0 then
    invalid_arg "Topo.build: rates must be positive";
  let net = Net.create sim in
  let servers = ref [] in
  let mk_link ~src ~dst ~rate =
    let server =
      Net.link net ~src ~dst ~rate:(Rate_process.constant rate)
        ~sched:(mk_sched ~rate) ~prop_delay ?buffer ()
    in
    servers := server :: !servers;
    { server; capacity = rate; prop_delay }
  in
  let paths, hop_lists, core =
    match spec with
    | Star { leaves } ->
      let hub = Net.add_node net "hub" and sink = Net.add_node net "sink" in
      let leaf = Array.init leaves (fun i -> Net.add_node net (Printf.sprintf "leaf%d" i)) in
      let access = Array.map (fun l -> mk_link ~src:l ~dst:hub ~rate:access_rate) leaf in
      let core = mk_link ~src:hub ~dst:sink ~rate:core_rate in
      ( Array.init leaves (fun i -> [ leaf.(i); hub; sink ]),
        Array.init leaves (fun i -> [ access.(i); core ]),
        core )
    | Line { hops } ->
      let nodes = Array.init (hops + 1) (fun i -> Net.add_node net (Printf.sprintf "n%d" i)) in
      let links =
        Array.init hops (fun i -> mk_link ~src:nodes.(i) ~dst:nodes.(i + 1) ~rate:core_rate)
      in
      ( [| Array.to_list nodes |], [| Array.to_list links |], links.(0) )
    | Tree { arity; depth } ->
      (* levels.(j) holds the k^j nodes at depth j; leaves at depth
         [depth] are the entries, the root forwards to a sink. *)
      let levels =
        Array.init (depth + 1) (fun j ->
            let n = int_of_float (float_of_int arity ** float_of_int j) in
            Array.init n (fun m -> Net.add_node net (Printf.sprintf "t%d_%d" j m)))
      in
      let sink = Net.add_node net "sink" in
      (* up.(j).(m): the link from node m at level j toward its parent
         (level j-1); up.(0).(0) is root->sink. *)
      let up =
        Array.init (depth + 1) (fun j ->
            if j = 0 then [| mk_link ~src:levels.(0).(0) ~dst:sink ~rate:core_rate |]
            else
              Array.mapi
                (fun m node ->
                  let rate = if j = depth then access_rate else core_rate in
                  mk_link ~src:node ~dst:levels.(j - 1).(m / arity) ~rate)
                levels.(j))
      in
      let nleaves = Array.length levels.(depth) in
      let path_of i =
        let rec climb j m acc hops =
          let acc = levels.(j).(m) :: acc and hops = up.(j).(m) :: hops in
          if j = 0 then (List.rev acc, List.rev hops) else climb (j - 1) (m / arity) acc hops
        in
        let nodes, hops = climb depth i [] [] in
        (nodes @ [ sink ], hops)
      in
      let pairs = Array.init nleaves path_of in
      (Array.map fst pairs, Array.map snd pairs, up.(0).(0))
    | Dumbbell { left; right } ->
      let a = Net.add_node net "l-router" and b = Net.add_node net "r-router" in
      let srcs = Array.init left (fun i -> Net.add_node net (Printf.sprintf "src%d" i)) in
      let dsts = Array.init right (fun i -> Net.add_node net (Printf.sprintf "dst%d" i)) in
      let ups = Array.map (fun s -> mk_link ~src:s ~dst:a ~rate:access_rate) srcs in
      let core = mk_link ~src:a ~dst:b ~rate:core_rate in
      let downs = Array.map (fun d -> mk_link ~src:b ~dst:d ~rate:access_rate) dsts in
      ( Array.init left (fun i -> [ srcs.(i); a; b; dsts.(i mod right) ]),
        Array.init left (fun i -> [ ups.(i); core; downs.(i mod right) ]),
        core )
  in
  { spec; net; sim; paths; hop_lists; core = core.server; servers = List.rev !servers }

let spec t = t.spec
let net t = t.net
let sim t = t.sim
let entries t = Array.length t.paths
let path t ~entry = t.paths.(entry)
let hops t ~entry = t.hop_lists.(entry)
let nhops t ~entry = List.length t.hop_lists.(entry)
let core t = t.core
let servers t = t.servers

let route_flow t ~flow ~entry = Net.route t.net ~flow t.paths.(entry)

let close_flow t ~flow ~entry =
  List.fold_left
    (fun n (h : hop) -> n + List.length (Server.close_flow h.server flow))
    0 t.hop_lists.(entry)

(* Every generated shape is an in-tree toward one sink, so the
   downstream path of a link — and with it the no-queueing time from
   service start at that link to delivery — is a function of the link
   alone. Walking each entry's hop list right-to-left accumulates the
   suffix (tx + propagation) sums; shared links are visited once per
   entry but always receive the same value. *)
let residuals t ~len =
  let servers = Array.of_list t.servers in
  let n = Array.length servers in
  let res = Array.make n nan in
  let index srv =
    let rec go i =
      if i >= n then invalid_arg "Topo.residuals: unknown server"
      else if servers.(i) == srv then i
      else go (i + 1)
    in
    go 0
  in
  let len_f = float_of_int len in
  Array.iter
    (fun hops ->
      ignore
        (List.fold_right
           (fun (h : hop) acc ->
             let acc = acc +. (len_f /. h.capacity) +. h.prop_delay in
             res.(index h.server) <- acc;
             acc)
           hops 0.0
          : float))
    t.hop_lists;
  res

let dropped t = List.fold_left (fun n s -> n + Server.drops s) 0 t.servers
let closed t = List.fold_left (fun n s -> n + Server.closed s) 0 t.servers
let queued t = List.fold_left (fun n s -> n + (Server.sched s).Sched.size ()) 0 t.servers
