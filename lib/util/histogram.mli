(** Fixed-bin histograms with ASCII rendering.

    Used by experiment reports to show delay distributions (what the
    paper's averages and maxima summarize) without any plotting
    dependency. Values below/above the range land in saturating
    first/last bins. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** @raise Invalid_argument unless [lo < hi] and [bins > 0]. *)

val add : t -> float -> unit
val count : t -> int
val bin_counts : t -> int array
val bin_bounds : t -> int -> float * float
(** Bounds of bin [i]. @raise Invalid_argument out of range. *)

val quantile : t -> float -> float
(** [quantile t q] with [q] in [\[0,1\]]: the value below which a [q]
    fraction of the observations fall, interpolated linearly inside the
    containing bin (observations are assumed uniform within a bin). The
    saturating first/last bins make the estimate a lower/upper clamp
    for values outside [\[lo,hi)].
    @raise Invalid_argument if the histogram is empty or [q] is outside
    [\[0,1\]]. *)

val merge : t -> t -> t
(** A new histogram holding both inputs' observations. The inputs must
    have identical [lo], [hi] and bin count (same shape).
    @raise Invalid_argument on a shape mismatch. *)

val render : ?width:int -> t -> string
(** One line per bin: range, count, and a proportional bar. *)
