type 'a t = { mutable data : 'a array; mutable size : int }

let create () = { data = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

let push t x =
  if Array.length t.data = 0 then t.data <- Array.make 16 x
  else if t.size = Array.length t.data then begin
    let data = Array.make (2 * t.size) x in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let last t = if t.size = 0 then None else Some t.data.(t.size - 1)

let iter t ~f =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.init t.size (fun i -> t.data.(i))
let to_array t = Array.sub t.data 0 t.size
let clear t = t.size <- 0
let capacity t = Array.length t.data

let compact t =
  let cap = Array.length t.data in
  if t.size = 0 then t.data <- [||]
  else if t.size < cap then t.data <- Array.sub t.data 0 t.size

let binary_search_last_le t ~key x =
  if t.size = 0 || key t.data.(0) > x then None
  else begin
    (* Invariant: key data.(lo) <= x < key data.(hi) (hi may be size). *)
    let lo = ref 0 and hi = ref t.size in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if key t.data.(mid) <= x then lo := mid else hi := mid
    done;
    Some !lo
  end
