(** Monomorphic float-keyed binary min-heap (structure of arrays).

    The scheduling hot path orders every queue in this library by the
    same three-field key: a float tag, a float tie refinement, and an
    int arrival number. {!Ds_heap} pays for its generality there — one
    boxed entry per element, a closure comparator call per sift step,
    and (for tuple keys) polymorphic [compare]. This heap hard-codes
    the [(key, tie, uid)] lexicographic order and stores each field in
    its own unboxed array, so comparisons compile to inline float/int
    tests and insertion allocates nothing.

    Ordering: ascending [key], then ascending [tie], then ascending
    [uid]. The [tie] field is a float rather than an int because it
    carries flow weights — OCaml's 63-bit native ints cannot hold an
    order-preserving image of every positive double, while float
    arrays are unboxed anyway, so nothing is lost. Callers encoding
    "prefer the larger weight" negate the weight. [uid] must be unique
    per element whenever popping order must be deterministic; with
    distinct uids the order is total, so pop order is independent of
    insertion order. Keys and ties must not be NaN.

    [add] and [pop] are O(log n); [min]/[min_elt]/[min_key_exn] are
    O(1). Keep {!Ds_heap} for heterogeneous orderings (version counters,
    multi-field records) that do not fit this shape. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ()] is an empty heap. [capacity] (default 16) pre-sizes the
    backing arrays so a heap of known peak size never pays the
    grow-and-copy doubling. @raise Invalid_argument if [capacity < 1]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> key:float -> tie:float -> uid:int -> 'a -> unit
(** Insert a payload under the given ordering fields. *)

val min_key_exn : 'a t -> float
(** Smallest key, without allocation.
    @raise Invalid_argument on an empty heap. *)

val min_elt : 'a t -> 'a option
(** Payload of the smallest element, without removing it. *)

val min : 'a t -> (float * 'a) option
(** Key and payload of the smallest element, without removing it. *)

val pop : 'a t -> (float * 'a) option
(** Remove the smallest element; returns its key and payload. *)

val pop_elt : 'a t -> 'a option
(** Remove the smallest element; returns just the payload. *)

val remove_matching :
  ?newest:bool -> 'a t -> pred:('a -> bool) -> (float * 'a) option
(** Remove and return the matching element with the smallest [uid]
    (the oldest insertion) — or the largest when [newest] is set.
    O(n) scan plus an O(log n) repair: for eviction paths, which are
    off the per-packet hot path by construction. [None] if nothing
    matches. *)

val capacity : 'a t -> int
(** Allocated slots in the backing arrays (>= {!length}); 0 before the
    first {!add}. Exposed for capacity-leak tests. *)

val clear : 'a t -> unit
(** Remove every element (backing arrays are retained). *)

val iter : 'a t -> f:(float -> 'a -> unit) -> unit
(** Apply [f key payload] to every element in unspecified order. *)
