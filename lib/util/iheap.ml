(* Structure-of-arrays binary min-heap on (key, tie, uid) — all ints.

   The integer sibling of {!Fheap}: same hole-based sifts, same slab
   layout, but every ordering field is a native int, so a sift step is
   integer loads and compares only — no float compares, no boxing
   anywhere. Used by the fixed-point fast-path schedulers, whose tags
   are scaled int63 virtual times (see Sfq_fastpath.Tag).

   The root can be inspected and removed without constructing an
   option or a tuple ([min_key_exn] / [min_elt_exn] / [remove_root]),
   which is what lets Iflow_heap's pop run allocation-free. *)

type 'a t = {
  mutable keys : int array;
  mutable ties : int array;
  mutable uids : int array;
  mutable data : 'a array;  (* allocated lazily: no ['a] dummy exists *)
  mutable size : int;
  mutable hint : int;  (* requested initial capacity *)
}

let create ?(capacity = 16) () =
  if capacity < 1 then invalid_arg "Iheap.create: capacity must be >= 1";
  { keys = [||]; ties = [||]; uids = [||]; data = [||]; size = 0; hint = capacity }

let length h = h.size
let is_empty h = h.size = 0

let grow h x =
  if Array.length h.data = 0 then begin
    let cap = h.hint in
    h.keys <- Array.make cap 0;
    h.ties <- Array.make cap 0;
    h.uids <- Array.make cap 0;
    h.data <- Array.make cap x
  end
  else if h.size = Array.length h.data then begin
    let cap = 2 * h.size in
    let keys = Array.make cap 0
    and ties = Array.make cap 0
    and uids = Array.make cap 0
    and data = Array.make cap x in
    Array.blit h.keys 0 keys 0 h.size;
    Array.blit h.ties 0 ties 0 h.size;
    Array.blit h.uids 0 uids 0 h.size;
    Array.blit h.data 0 data 0 h.size;
    h.keys <- keys;
    h.ties <- ties;
    h.uids <- uids;
    h.data <- data
  end

(* Is the loose element (k, tie, uid) strictly below slot [j]? *)
let lt_slot h k tie uid j =
  let kj = h.keys.(j) in
  k < kj
  || k = kj
     &&
     let tj = h.ties.(j) in
     tie < tj || (tie = tj && uid < h.uids.(j))

(* Is slot [i] strictly below slot [j]? *)
let lt h i j = lt_slot h h.keys.(i) h.ties.(i) h.uids.(i) j

(* Is slot [j] strictly below the loose element (k, tie, uid)? *)
let slot_lt h j k tie uid =
  let kj = h.keys.(j) in
  kj < k
  || kj = k
     &&
     let tj = h.ties.(j) in
     tj < tie || (tj = tie && h.uids.(j) < uid)

(* Hole-based sifts, as in Fheap: carry the displaced element in
   registers, shift entries over the hole, write back once. *)

let sift_up h i0 =
  let k = h.keys.(i0) and tie = h.ties.(i0) and uid = h.uids.(i0) in
  let v = h.data.(i0) in
  let i = ref i0 in
  let moving = ref true in
  while !moving && !i > 0 do
    let p = (!i - 1) / 2 in
    if lt_slot h k tie uid p then begin
      h.keys.(!i) <- h.keys.(p);
      h.ties.(!i) <- h.ties.(p);
      h.uids.(!i) <- h.uids.(p);
      h.data.(!i) <- h.data.(p);
      i := p
    end
    else moving := false
  done;
  h.keys.(!i) <- k;
  h.ties.(!i) <- tie;
  h.uids.(!i) <- uid;
  h.data.(!i) <- v

let sift_down h i0 =
  let k = h.keys.(i0) and tie = h.ties.(i0) and uid = h.uids.(i0) in
  let v = h.data.(i0) in
  let i = ref i0 in
  let moving = ref true in
  while !moving do
    let l = (2 * !i) + 1 in
    if l >= h.size then moving := false
    else begin
      let r = l + 1 in
      let c = if r < h.size && lt h r l then r else l in
      if slot_lt h c k tie uid then begin
        h.keys.(!i) <- h.keys.(c);
        h.ties.(!i) <- h.ties.(c);
        h.uids.(!i) <- h.uids.(c);
        h.data.(!i) <- h.data.(c);
        i := c
      end
      else moving := false
    end
  done;
  h.keys.(!i) <- k;
  h.ties.(!i) <- tie;
  h.uids.(!i) <- uid;
  h.data.(!i) <- v

let add h ~key ~tie ~uid x =
  grow h x;
  let i = h.size in
  h.keys.(i) <- key;
  h.ties.(i) <- tie;
  h.uids.(i) <- uid;
  h.data.(i) <- x;
  h.size <- h.size + 1;
  sift_up h i

let min_key_exn h =
  if h.size = 0 then invalid_arg "Iheap.min_key_exn: empty heap";
  h.keys.(0)

let min_elt_exn h =
  if h.size = 0 then invalid_arg "Iheap.min_elt_exn: empty heap";
  h.data.(0)

let min_elt h = if h.size = 0 then None else Some h.data.(0)
let min h = if h.size = 0 then None else Some (h.keys.(0), h.data.(0))

let remove_root h =
  if h.size = 0 then invalid_arg "Iheap.remove_root: empty heap";
  h.size <- h.size - 1;
  if h.size > 0 then begin
    let n = h.size in
    h.keys.(0) <- h.keys.(n);
    h.ties.(0) <- h.ties.(n);
    h.uids.(0) <- h.uids.(n);
    h.data.(0) <- h.data.(n);
    sift_down h 0
  end

let pop h =
  if h.size = 0 then None
  else begin
    let k = h.keys.(0) and v = h.data.(0) in
    remove_root h;
    Some (k, v)
  end

let pop_elt h =
  if h.size = 0 then None
  else begin
    let v = h.data.(0) in
    remove_root h;
    Some v
  end

(* Delete slot [i]: move the last element into the hole and sift it
   whichever way restores the heap property. *)
let delete_at h i =
  let n = h.size - 1 in
  h.size <- n;
  if i < n then begin
    h.keys.(i) <- h.keys.(n);
    h.ties.(i) <- h.ties.(n);
    h.uids.(i) <- h.uids.(n);
    h.data.(i) <- h.data.(n);
    if i > 0 && lt h i ((i - 1) / 2) then sift_up h i else sift_down h i
  end

let remove_matching ?(newest = false) h ~pred =
  let best = ref (-1) in
  for i = 0 to h.size - 1 do
    if pred h.data.(i) then
      match !best with
      | -1 -> best := i
      | b ->
        let take =
          if newest then h.uids.(i) > h.uids.(b) else h.uids.(i) < h.uids.(b)
        in
        if take then best := i
  done;
  match !best with
  | -1 -> None
  | i ->
    let k = h.keys.(i) and v = h.data.(i) in
    delete_at h i;
    Some (k, v)

let capacity h = Array.length h.data

let clear h = h.size <- 0

let iter h ~f =
  for i = 0 to h.size - 1 do
    f h.keys.(i) h.data.(i)
  done
