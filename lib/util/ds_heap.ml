type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
  hint : int;
}

(* The backing array is allocated lazily on first [add] (we cannot
   conjure an ['a] dummy), but at the requested [capacity], so a
   pre-sized heap never pays the grow-doubling copies. *)
let create ?(capacity = 16) ~cmp () =
  if capacity < 1 then invalid_arg "Ds_heap.create: capacity must be >= 1";
  { cmp; data = [||]; size = 0; hint = capacity }

let length h = h.size
let is_empty h = h.size = 0

let grow h x =
  if Array.length h.data = 0 then h.data <- Array.make h.hint x
  else if h.size = Array.length h.data then begin
    let data = Array.make (2 * h.size) x in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.cmp h.data.(l) h.data.(!smallest) < 0 then smallest := l;
  if r < h.size && h.cmp h.data.(r) h.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let add h x =
  grow h x;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let min_elt h = if h.size = 0 then None else Some h.data.(0)

let pop_min h =
  if h.size = 0 then None
  else begin
    let root = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some root
  end

let pop_min_exn h =
  match pop_min h with
  | Some x -> x
  | None -> invalid_arg "Ds_heap.pop_min_exn: empty heap"

let clear h = h.size <- 0

let iter h ~f =
  for i = 0 to h.size - 1 do
    f h.data.(i)
  done

let to_sorted_list h =
  let copy = { cmp = h.cmp; data = Array.sub h.data 0 h.size; size = h.size; hint = h.hint } in
  let rec drain acc =
    match pop_min copy with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []
