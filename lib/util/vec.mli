(** Growable array (OCaml 5.1 predates [Dynarray]).

    Used for trace records and rate-process segments, where millions of
    small records would stress the GC as list cells and need random
    access for binary search. Amortized O(1) [push]. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
(** @raise Invalid_argument on out-of-bounds. *)

val last : 'a t -> 'a option
val iter : 'a t -> f:('a -> unit) -> unit
val fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val clear : 'a t -> unit

val capacity : 'a t -> int
(** Allocated slots (>= {!length}); 0 for a never-pushed vector. *)

val compact : 'a t -> unit
(** Shrink the backing array to exactly {!length} slots (drop it
    entirely when empty), releasing the doubling headroom — long-lived
    vectors that grew during a burst and then emptied ({!clear}) would
    otherwise pin their peak capacity forever. *)

val binary_search_last_le : 'a t -> key:('a -> float) -> float -> int option
(** Index of the last element whose [key] is [<= x], assuming keys are
    non-decreasing; [None] if even the first exceeds [x]. *)
