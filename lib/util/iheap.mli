(** Monomorphic int-keyed binary min-heap (structure of arrays).

    The integer sibling of {!Fheap}, built for the fixed-point fast
    path: tags are scaled int63 virtual times, ties are an
    order-preserving int encoding of the float tie value, and [uid] is
    the usual arrival counter. Every ordering field lives in its own
    [int array] slab, so a sift step compiles to integer loads and
    compares — no float compares, no boxing, no closure dispatch.

    Ordering: ascending [key], then ascending [tie], then ascending
    [uid]. As with {!Fheap}, [uid] must be unique per element whenever
    pop order must be deterministic; with distinct uids the order is
    total. Equal-[(key, tie)] elements therefore pop in ascending [uid]
    — i.e. insertion (FIFO) order when uids come from an arrival
    counter. This FIFO-stable tie order is part of the contract: the
    differential suite relies on int-tag ties resolving exactly like
    float-tag ties, and both heaps delegate that resolution to the same
    uid field.

    Beyond the {!Fheap} surface this heap exposes a non-allocating
    removal triple — {!min_key_exn} / {!min_elt_exn} / {!remove_root} —
    so callers on a zero-allocation budget can take the root without
    constructing an option or a tuple. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ()] is an empty heap. [capacity] (default 16) pre-sizes the
    backing arrays so a heap of known peak size never pays the
    grow-and-copy doubling. @raise Invalid_argument if [capacity < 1]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> key:int -> tie:int -> uid:int -> 'a -> unit
(** Insert a payload under the given ordering fields. Allocation-free
    once the backing arrays have reached their peak size. *)

val min_key_exn : 'a t -> int
(** Smallest key, without allocation.
    @raise Invalid_argument on an empty heap. *)

val min_elt_exn : 'a t -> 'a
(** Payload of the smallest element, without removing it and without
    allocation. @raise Invalid_argument on an empty heap. *)

val min_elt : 'a t -> 'a option
(** Payload of the smallest element, without removing it. *)

val min : 'a t -> (int * 'a) option
(** Key and payload of the smallest element, without removing it. *)

val remove_root : 'a t -> unit
(** Remove the smallest element without returning it (read it first via
    {!min_elt_exn}/{!min_key_exn}). The non-allocating companion of
    {!pop}. @raise Invalid_argument on an empty heap. *)

val pop : 'a t -> (int * 'a) option
(** Remove the smallest element; returns its key and payload. *)

val pop_elt : 'a t -> 'a option
(** Remove the smallest element; returns just the payload. *)

val remove_matching :
  ?newest:bool -> 'a t -> pred:('a -> bool) -> (int * 'a) option
(** Remove and return the matching element with the smallest [uid]
    (the oldest insertion) — or the largest when [newest] is set.
    O(n) scan plus an O(log n) repair: for eviction paths, which are
    off the per-packet hot path by construction. [None] if nothing
    matches. *)

val capacity : 'a t -> int
(** Allocated slots in the backing arrays (>= {!length}); 0 before the
    first {!add}. Exposed for capacity-leak tests. *)

val clear : 'a t -> unit
(** Remove every element (backing arrays are retained). *)

val iter : 'a t -> f:(int -> 'a -> unit) -> unit
(** Apply [f key payload] to every element in unspecified order. *)
