(** Imperative binary min-heap.

    The heap is parameterized by an explicit comparison function supplied
    at creation time, so ordering keys that combine a tag with an arrival
    sequence number (the deterministic tie-break used by every scheduler
    in this library) need no wrapper type. All operations are the
    standard array-backed sift-up/sift-down: [add] and [pop_min] are
    O(log n), [min_elt] is O(1). *)

type 'a t

val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
(** [create ~cmp ()] is an empty heap ordered by [cmp]. [capacity]
    (default 16) sizes the backing array on first insertion, so a heap
    whose peak size is known up front never re-allocates.
    @raise Invalid_argument if [capacity < 1]. *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit
(** [add h x] inserts [x]; the backing array grows as needed. *)

val min_elt : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop_min : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_min_exn : 'a t -> 'a
(** Like {!pop_min}. @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit
(** Remove every element (the backing array is retained). *)

val iter : 'a t -> f:('a -> unit) -> unit
(** Apply [f] to every element in unspecified order. *)

val to_sorted_list : 'a t -> 'a list
(** All elements, smallest first. Does not modify the heap; costs
    O(n log n). *)
