type t = { lo : float; hi : float; counts : int array; mutable total : int }

let create ~lo ~hi ~bins =
  if lo >= hi || bins <= 0 then invalid_arg "Histogram.create: need lo < hi and bins > 0";
  { lo; hi; counts = Array.make bins 0; total = 0 }

let nbins t = Array.length t.counts

let add t x =
  let bins = nbins t in
  let idx =
    if x < t.lo then 0
    else if x >= t.hi then bins - 1
    else begin
      let i = int_of_float (float_of_int bins *. (x -. t.lo) /. (t.hi -. t.lo)) in
      Stdlib.min i (bins - 1)
    end
  in
  t.counts.(idx) <- t.counts.(idx) + 1;
  t.total <- t.total + 1

let count t = t.total
let bin_counts t = Array.copy t.counts

let bin_bounds t i =
  if i < 0 || i >= nbins t then invalid_arg "Histogram.bin_bounds: out of range";
  let w = (t.hi -. t.lo) /. float_of_int (nbins t) in
  (t.lo +. (float_of_int i *. w), t.lo +. (float_of_int (i + 1) *. w))

let quantile t q =
  if t.total = 0 then invalid_arg "Histogram.quantile: empty histogram";
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: q outside [0,1]";
  let target = q *. float_of_int t.total in
  let bins = nbins t in
  let rec find i cum =
    let cum' = cum +. float_of_int t.counts.(i) in
    if (cum' >= target && t.counts.(i) > 0) || i = bins - 1 then begin
      let a, b = bin_bounds t i in
      if t.counts.(i) = 0 then a
      else begin
        let frac = (target -. cum) /. float_of_int t.counts.(i) in
        a +. ((b -. a) *. Float.max 0.0 (Float.min 1.0 frac))
      end
    end
    else find (i + 1) cum'
  in
  find 0 0.0

let merge a b =
  if a.lo <> b.lo || a.hi <> b.hi || nbins a <> nbins b then
    invalid_arg "Histogram.merge: shape mismatch";
  let m = create ~lo:a.lo ~hi:a.hi ~bins:(nbins a) in
  Array.iteri (fun i c -> m.counts.(i) <- c + b.counts.(i)) a.counts;
  m.total <- a.total + b.total;
  m

let render ?(width = 40) t =
  let peak = Array.fold_left Stdlib.max 1 t.counts in
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i c ->
      let a, b = bin_bounds t i in
      let bar = String.make (c * width / peak) '#' in
      Buffer.add_string buf (Printf.sprintf "%10.4f-%10.4f %7d %s\n" a b c bar))
    t.counts;
  Buffer.contents buf
