(** Start-time Fair Queuing — the paper's contribution (§2).

    Each packet gets a start tag and a finish tag:

    {v S(p_f^j) = max( v(A(p_f^j)), F(p_f^{j-1}) )        (eq. 4)
   F(p_f^j) = S(p_f^j) + l_f^j / r_f,  F(p_f^0) = 0    (eq. 5) v}

    Packets are transmitted in increasing {e start}-tag order, and the
    virtual time [v(t)] is simply the start tag of the packet in
    service — no fluid simulation, no assumed capacity. At the end of
    a busy period [v] is set to the largest finish tag of any serviced
    packet.

    Because the tags never reference the server's rate, Theorem 1's
    fairness bound

    {v |W_f(t1,t2)/r_f − W_m(t1,t2)/r_m| ≤ l_f^max/r_f + l_m^max/r_m v}

    holds {e regardless of how the server's capacity varies} — the
    property WFQ lacks and the reason SFQ can sit under a higher-
    priority traffic class, a flow-controlled link, or another SFQ in a
    link-sharing hierarchy.

    The generalized form of §2.3 (per-packet rates [r_f^j], eq. 36) is
    supported via {!Sfq_base.Packet.t}'s [rate] field. *)

open Sfq_base
open Sfq_sched

type t

type busy_rule =
  | Idle_poll
      (** the busy period ends when the server polls an empty queue
          after a completion — the correct reading of §2 step 2 for a
          packet server, and the default *)
  | On_empty
      (** the busy period "ends" the moment the queue becomes empty,
          even though a packet is still in service — a natural-looking
          but subtly wrong implementation shortcut, kept selectable for
          the [busy-rule] ablation experiment, which shows it silently
          doubles the measured unfairness *)

val create : ?tie:Tag_queue.tie -> ?busy_rule:busy_rule -> ?capacity:int -> Weights.t -> t
(** [tie] refines ordering among equal start tags (default arrival
    order); §2.3 notes the delay guarantee is tie-independent but a
    low-throughput-first rule improves average delay. [capacity]
    pre-sizes the flow-head heap (one slot per backlogged flow —
    packets are stored per-flow FIFO and enqueue/dequeue cost
    O(log F), the paper's Table 1 bound). *)

val enqueue : t -> now:float -> Packet.t -> unit

val enqueue_tagged : t -> now:float -> Packet.t -> float * float
(** Like {!enqueue} but returns the [(start_tag, finish_tag)] assigned;
    used by tests that check eqs. 4–5 directly. *)

val dequeue : t -> now:float -> Packet.t option
val peek : t -> Packet.t option
val size : t -> int
val backlog : t -> Packet.flow -> int

val vtime : t -> float
(** Current virtual time: start tag of the packet most recently put in
    service, or the busy-period-end value (max serviced finish tag). *)

type tag_hook =
  now:float -> pkt:Packet.t -> stag:float -> ftag:float -> vtime:float -> unit

val set_tag_hook : t -> ?active:bool ref -> tag_hook -> unit
(** Observe every tag assignment (eqs. 4–5) as it happens: the hook
    fires inside [enqueue] with the packet, its assigned start/finish
    tags and v(t) at assignment. One hook per scheduler (setting
    replaces); meant for tracers ([Sfq_obs.Tracer.tag_hook]) — keep it
    cheap, it is on the hot path. [active] (default: always) is
    dereferenced before every call; pass
    [Sfq_obs.Tracer.active_flag] so a disabled tracer skips the call —
    and the float boxing the call implies — for the cost of one
    load. *)

val clear_tag_hook : t -> unit
(** Back to no observation (and no per-enqueue overhead beyond one
    branch). *)

val evict : t -> Sched.victim -> Packet.flow -> Packet.t option
(** Remove one queued packet of [flow] without serving it (buffer
    overflow path). The flow's finish tag is {e not} rolled back: the
    evicted packet's virtual service stays charged to the flow, so its
    next start tag can only move later — eq. 4 monotonicity holds. *)

val close_flow : t -> Packet.flow -> Packet.t list
(** Flush [flow]'s backlog (oldest first) and forget its finish tag,
    so a recycled id re-enters via eq. 4 at [S = max(v, 0) = v(t)] —
    the fresh-flow rule of §2 step 1. *)

val sched : t -> Sched.t
