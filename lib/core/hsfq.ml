open Sfq_base

type node = {
  owner : int;  (* hierarchy id, to reject foreign class handles *)
  cid : int;  (* 0 = root, then creation order; stable trace identity *)
  mutable kind : kind;
  mutable edge : edge option;  (* None for the root *)
}

and kind = Internal of internal | Leaf of Sched.t

and internal = {
  mutable children : edge list;
  mutable v : float;
  mutable max_finish_served : float;
  mutable next_seq : int;
}

and edge = {
  child : node;
  weight : float;
  parent : node;
  mutable stag : float;
  mutable fprev : float;  (* finish tag of the child's previous emission *)
  mutable active : bool;
  mutable seq : int;  (* tie-break among equal start tags *)
}

type class_ = node

type tag_hook =
  now:float -> class_id:int -> seq:int -> len:int -> stag:float ->
  ftag:float -> vtime:float -> unit

type t = {
  id : int;
  root_node : node;
  mutable classifier : (Packet.t -> class_) option;
  mutable count : int;
  mutable next_cid : int;
  (* guard cell dereferenced once per dequeue before the hook is
     threaded through the recursion; see Sfq.set_tag_hook *)
  mutable tag_hook : (bool ref * tag_hook) option;
}

let next_id = ref 0

let fresh_internal () =
  Internal { children = []; v = 0.0; max_finish_served = 0.0; next_seq = 0 }

let create () =
  incr next_id;
  let id = !next_id in
  {
    id;
    root_node = { owner = id; cid = 0; kind = fresh_internal (); edge = None };
    classifier = None;
    count = 0;
    next_cid = 1;
    tag_hook = None;
  }

let root t = t.root_node

let internal_of node =
  match node.kind with
  | Internal i -> i
  | Leaf _ -> invalid_arg "Hsfq: parent class is a leaf"

let add_edge t ~parent ~weight child_kind =
  if weight <= 0.0 then invalid_arg "Hsfq: weight must be positive";
  if parent.owner <> t.id then invalid_arg "Hsfq: class from another hierarchy";
  let i = internal_of parent in
  let child = { owner = t.id; cid = t.next_cid; kind = child_kind; edge = None } in
  t.next_cid <- t.next_cid + 1;
  let edge = { child; weight; parent; stag = 0.0; fprev = 0.0; active = false; seq = 0 } in
  child.edge <- Some edge;
  i.children <- i.children @ [ edge ];
  child

let add_class t ~parent ~weight = add_edge t ~parent ~weight (fresh_internal ())
let add_leaf t ~parent ~weight inner = add_edge t ~parent ~weight (Leaf inner)

let set_classifier t f = t.classifier <- Some f

let classifier_by_flow assoc =
  let table = Hashtbl.create 16 in
  List.iter (fun (f, c) -> Hashtbl.replace table f c) assoc;
  fun pkt -> Hashtbl.find table pkt.Packet.flow

let rec node_peek node =
  match node.kind with
  | Leaf inner -> inner.Sched.peek ()
  | Internal i -> begin
    match min_active_edge i with None -> None | Some e -> node_peek e.child
  end

and min_active_edge i =
  List.fold_left
    (fun best e ->
      if not e.active then best
      else begin
        match best with
        | None -> Some e
        | Some b ->
          if e.stag < b.stag || (e.stag = b.stag && e.seq < b.seq) then Some e else best
      end)
    None i.children

let subtree_nonempty node =
  match node.kind with
  | Leaf inner -> inner.Sched.size () > 0
  | Internal i -> List.exists (fun e -> e.active) i.children

(* Walk from a leaf to the root activating edges whose subtree just
   became non-empty. Stops at the first already-active edge: its
   ancestors are necessarily active too. *)
let rec activate_upwards node =
  match node.edge with
  | None -> ()
  | Some e ->
    if not e.active then begin
      let i = internal_of e.parent in
      e.stag <- Float.max i.v e.fprev;
      e.seq <- i.next_seq;
      i.next_seq <- i.next_seq + 1;
      e.active <- true;
      activate_upwards e.parent
    end

let enqueue t ~now pkt =
  let classify =
    match t.classifier with
    | Some f -> f
    | None -> invalid_arg "Hsfq.enqueue: no classifier set"
  in
  let leaf = classify pkt in
  if leaf.owner <> t.id then invalid_arg "Hsfq.enqueue: class from another hierarchy";
  match leaf.kind with
  | Internal _ -> invalid_arg "Hsfq.enqueue: classifier returned a non-leaf class"
  | Leaf inner ->
    let was_empty = inner.Sched.size () = 0 in
    inner.Sched.enqueue ~now pkt;
    t.count <- t.count + 1;
    if was_empty then activate_upwards leaf

let rec node_dequeue hook node ~now =
  match node.kind with
  | Leaf inner -> inner.Sched.dequeue ~now
  | Internal i -> begin
    match min_active_edge i with
    | None -> None
    | Some e -> begin
      (* The emitted packet's length fixes this emission's finish tag;
         peek is guaranteed to agree with the recursive dequeue. *)
      match node_peek e.child with
      | None -> assert false (* active edge over an empty subtree *)
      | Some head ->
        let ftag = e.stag +. (float_of_int head.Packet.len /. e.weight) in
        i.v <- e.stag;
        (match hook with
        | None -> ()
        | Some h ->
          h ~now ~class_id:e.child.cid ~seq:e.seq ~len:head.Packet.len
            ~stag:e.stag ~ftag ~vtime:i.v);
        let p = node_dequeue hook e.child ~now in
        e.fprev <- ftag;
        if ftag > i.max_finish_served then i.max_finish_served <- ftag;
        if subtree_nonempty e.child then begin
          e.stag <- ftag;
          e.seq <- i.next_seq;
          i.next_seq <- i.next_seq + 1
        end
        else e.active <- false;
        (* When the subtree empties, [i.v] stays at the emission's
           start tag: the emitted packet is conceptually still in
           service, and bumping v to the max finish tag here would
           punish a same-instant refill and overtax newly activating
           siblings (it would replay, one level up, the busy-period bug
           the flat scheduler's idle-poll rule exists to avoid). A
           frozen v is safe: reactivating children take
           max(v, F_prev), so nobody mines stale credit. The root —
           where the real server genuinely polls an empty queue — bumps
           v in the None branch of [dequeue]. *)
        p
    end
  end

let dequeue t ~now =
  let hook =
    match t.tag_hook with
    | Some (active, h) when !active -> Some h
    | Some _ | None -> None
  in
  match node_dequeue hook t.root_node ~now with
  | None ->
    (match t.root_node.kind with
    | Internal i -> i.v <- Float.max i.v i.max_finish_served
    | Leaf _ -> ());
    None
  | Some p ->
    t.count <- t.count - 1;
    Some p

let peek t = node_peek t.root_node
let size t = t.count

let rec node_backlog node flow =
  match node.kind with
  | Leaf inner -> inner.Sched.backlog flow
  | Internal i -> List.fold_left (fun acc e -> acc + node_backlog e.child flow) 0 i.children

let backlog t flow = node_backlog t.root_node flow

let class_vtime t node =
  if node.owner <> t.id then invalid_arg "Hsfq.class_vtime: class from another hierarchy";
  match node.kind with Internal i -> i.v | Leaf _ -> 0.0

let class_id t node =
  if node.owner <> t.id then invalid_arg "Hsfq.class_id: class from another hierarchy";
  node.cid

let set_tag_hook t ?active h =
  let active = match active with Some r -> r | None -> ref true in
  t.tag_hook <- Some (active, h)

let clear_tag_hook t = t.tag_hook <- None

(* Inverse of [activate_upwards]: removals (evict/close) can empty a
   subtree without a dequeue, and an active edge over an empty subtree
   would break [node_peek]'s invariant. Stops at the first edge whose
   subtree is still non-empty. Tags are untouched: the class keeps its
   virtual-time charge, exactly like a flow under eq. 4. *)
let rec deactivate_upwards node =
  match node.edge with
  | None -> ()
  | Some e ->
    if e.active && not (subtree_nonempty node) then begin
      e.active <- false;
      deactivate_upwards e.parent
    end

let evict t ~now victim flow =
  let rec find node =
    match node.kind with
    | Leaf inner ->
      if inner.Sched.backlog flow = 0 then None
      else begin
        match inner.Sched.evict ~now victim flow with
        | None -> None
        | Some p ->
          t.count <- t.count - 1;
          deactivate_upwards node;
          Some p
      end
    | Internal i ->
      let rec among = function
        | [] -> None
        | e :: rest -> ( match find e.child with Some p -> Some p | None -> among rest)
      in
      among i.children
  in
  find t.root_node

let close_flow t ~now flow =
  let rec go node acc =
    match node.kind with
    | Leaf inner ->
      let flushed = inner.Sched.close_flow ~now flow in
      if flushed <> [] then begin
        t.count <- t.count - List.length flushed;
        deactivate_upwards node
      end;
      acc @ flushed
    | Internal i -> List.fold_left (fun acc e -> go e.child acc) acc i.children
  in
  go t.root_node []

let sched t =
  {
    Sched.name = "hsfq";
    enqueue = (fun ~now pkt -> enqueue t ~now pkt);
    dequeue = (fun ~now -> dequeue t ~now);
    peek = (fun () -> peek t);
    size = (fun () -> size t);
    backlog = (fun flow -> backlog t flow);
    evict = (fun ~now victim flow -> evict t ~now victim flow);
    close_flow = (fun ~now flow -> close_flow t ~now flow);
  }
