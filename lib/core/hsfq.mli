(** Hierarchical SFQ link sharing (paper §3).

    A link-sharing structure is a tree of weighted classes. Each
    internal class runs SFQ over its children, treating every child as
    a flow whose "packets" are whatever the child's subtree emits next;
    leaf classes hold an arbitrary inner discipline ({!Sfq_base.Sched}),
    so a class can internally run SFQ, Delay EDD (for the
    delay/throughput separation of §3), FIFO, or anything else.

    Scheduling recurses: the root picks the active child with the
    smallest start tag, that child picks among its children, and so on
    down to a leaf. Because SFQ is fair on variable-rate servers
    (Theorem 1 makes no assumption about capacity), each subtree sees a
    fair share of whatever fluctuating bandwidth its parent grants —
    Example 3's requirement — and by eq. 65 each virtual server is
    itself an FC/EBF server, so Theorems 2–5 apply at every level.

    Tag mechanics per child edge: on activation (subtree empty →
    non-empty) [S = max(v_parent, F_prev)]; when the child is selected,
    its emitted packet's length [l] fixes [F = S + l/w]; if the subtree
    stays non-empty the next emission gets [S' = F]. The parent's
    virtual time is the start tag of the child in service, and reverts
    to the largest serviced finish tag when the class goes idle —
    ordinary SFQ, one level up. *)

open Sfq_base

type t
type class_

val create : unit -> t

val root : t -> class_

val add_class : t -> parent:class_ -> weight:float -> class_
(** New internal class. @raise Invalid_argument if [parent] is a leaf
    or [weight <= 0]. *)

val add_leaf : t -> parent:class_ -> weight:float -> Sched.t -> class_
(** New leaf class with the given inner discipline. *)

val set_classifier : t -> (Packet.t -> class_) -> unit
(** Route packets to leaves. Required before the first [enqueue]. *)

val classifier_by_flow : (Packet.flow * class_) list -> Packet.t -> class_
(** Convenience classifier: flow-id table.
    @raise Not_found for an unlisted flow. *)

val enqueue : t -> now:float -> Packet.t -> unit
(** @raise Invalid_argument if no classifier is set, or
    [Invalid_argument] if the classifier returns a non-leaf class or a
    class from another hierarchy. *)

val dequeue : t -> now:float -> Packet.t option
val peek : t -> Packet.t option
val size : t -> int
val backlog : t -> Packet.flow -> int
val sched : t -> Sched.t

val class_vtime : t -> class_ -> float
(** Virtual time of an internal class (0 for leaves); for tests. *)

val class_id : t -> class_ -> int
(** Stable small-int identity of a class: 0 for the root, then in
    creation order. Trace events use it as the class's track id.
    @raise Invalid_argument for a class of another hierarchy. *)

type tag_hook =
  now:float -> class_id:int -> seq:int -> len:int -> stag:float ->
  ftag:float -> vtime:float -> unit

val set_tag_hook : t -> ?active:bool ref -> tag_hook -> unit
(** Observe every child-edge emission, at any level: when an internal
    class selects a child, the hook fires with the child's {!class_id},
    the edge's emission sequence number, the emitted head packet's
    length, the edge's start tag, the finish tag it fixes
    ([F = S + l/w], §3) and the parent's v after the selection. Tags at
    {e activation} are not reported — their finish tag does not exist
    until emission; the emission event carries the authoritative pair.
    One hook per hierarchy (setting replaces). [active] (default:
    always) is dereferenced once per dequeue; pass
    [Sfq_obs.Tracer.active_flag] so a disabled tracer costs one load,
    not a hook call per level. *)

val clear_tag_hook : t -> unit
