open Sfq_util
open Sfq_base

type record = { pkt : Packet.t; arrival : float; mutable stamp : float }

type flow_state = {
  flow : Packet.flow;
  rate : float;
  gsq_q : record Queue.t;  (* released packets, FIFO; front = oldest unserved *)
  wait_q : record Queue.t;  (* not-yet-released packets, FIFO *)
  mutable rc_floor : float;  (* EAT chain over the GSQ-released subsequence *)
  mutable stag : float;  (* ASQ start tag of the flow's oldest unserved packet *)
  mutable ftag_prev : float;  (* finish tag of the last ASQ-served packet *)
  mutable asq_version : int;
  mutable reg_version : int;
}

(* Heap entries carry a version; an entry is stale once the flow's
   corresponding version moved on. *)
type versioned = { key : float; uid : int; version : int; fs : flow_state }

type t = {
  weights : Weights.t;
  flows : flow_state Flow_table.t;
  gsq : versioned Ds_heap.t;  (* key = Virtual Clock stamp; never stale *)
  asq : versioned Ds_heap.t;  (* key = SFQ start tag; versioned *)
  regulator : versioned Ds_heap.t;  (* key = eligibility time; versioned *)
  mutable v_asq : float;
  mutable max_finish_asq : float;
  mutable count : int;
  mutable next_uid : int;
  mutable gsq_served : int;
  mutable asq_served : int;
}

let compare_versioned a b =
  match compare a.key b.key with 0 -> compare a.uid b.uid | c -> c

let create weights =
  {
    weights;
    flows =
      Flow_table.create ~default:(fun flow ->
          {
            flow;
            rate = Weights.get weights flow;
            gsq_q = Queue.create ();
            wait_q = Queue.create ();
            rc_floor = neg_infinity;
            stag = 0.0;
            ftag_prev = 0.0;
            asq_version = 0;
            reg_version = 0;
          });
    gsq = Ds_heap.create ~cmp:compare_versioned ();
    asq = Ds_heap.create ~cmp:compare_versioned ();
    regulator = Ds_heap.create ~cmp:compare_versioned ();
    v_asq = 0.0;
    max_finish_asq = 0.0;
    count = 0;
    next_uid = 0;
    gsq_served = 0;
    asq_served = 0;
  }

let uid t =
  let u = t.next_uid in
  t.next_uid <- t.next_uid + 1;
  u

let flow_front fs =
  match Queue.peek_opt fs.gsq_q with Some r -> Some r | None -> Queue.peek_opt fs.wait_q

(* The flow is ASQ-servable iff its oldest unserved packet has not been
   released to the GSQ (rule 5). *)
let push_asq_entry t fs =
  fs.asq_version <- fs.asq_version + 1;
  if Queue.is_empty fs.gsq_q then begin
    match Queue.peek_opt fs.wait_q with
    | Some _ ->
      Ds_heap.add t.asq { key = fs.stag; uid = uid t; version = fs.asq_version; fs }
    | None -> ()
  end

let push_regulator_entry t fs =
  fs.reg_version <- fs.reg_version + 1;
  match Queue.peek_opt fs.wait_q with
  | Some r ->
    let eligible = Float.max r.arrival fs.rc_floor in
    Ds_heap.add t.regulator { key = eligible; uid = uid t; version = fs.reg_version; fs }
  | None -> ()

let enqueue t ~now pkt =
  let fs = Flow_table.find t.flows pkt.Packet.flow in
  let flow_was_idle = flow_front fs = None in
  Queue.push { pkt; arrival = now; stamp = nan } fs.wait_q;
  t.count <- t.count + 1;
  if flow_was_idle then begin
    (* New ASQ busy period for the flow: eq. 4 with the ASQ clock. *)
    fs.stag <- Float.max t.v_asq fs.ftag_prev;
    push_asq_entry t fs;
    push_regulator_entry t fs
  end
  else if Queue.length fs.wait_q = 1 then
    (* Earlier packets are all In-GSQ; this one is the regulator head. *)
    push_regulator_entry t fs

(* Rule 2: move the flow's regulator head into the GSQ and advance the
   flow's regulator clock. *)
let release t fs ~eligible =
  match Queue.take_opt fs.wait_q with
  | None -> assert false
  | Some r ->
    r.stamp <- eligible +. (float_of_int r.pkt.Packet.len /. fs.rate);
    fs.rc_floor <- r.stamp;
    Queue.push r fs.gsq_q;
    Ds_heap.add t.gsq { key = r.stamp; uid = uid t; version = 0; fs };
    (* The flow's front may just have become GSQ-only. *)
    push_asq_entry t fs;
    push_regulator_entry t fs

let rec process_regulator t ~now =
  match Ds_heap.min_elt t.regulator with
  | Some e when e.key <= now ->
    ignore (Ds_heap.pop_min t.regulator);
    if e.version = e.fs.reg_version then release t e.fs ~eligible:e.key;
    process_regulator t ~now
  | Some _ | None -> ()

(* The ASQ busy period ends only when the server polls for work and
   finds none — not when the count momentarily hits zero while the last
   packet is still in service. *)
let on_idle_poll t = t.v_asq <- Float.max t.v_asq t.max_finish_asq

let serve_gsq t =
  let rec pop () =
    match Ds_heap.pop_min t.gsq with
    | None -> None
    | Some e -> begin
      (* GSQ entries are never stale: within a flow stamps are FIFO and
         only the GSQ dequeues gsq_q. *)
      match Queue.take_opt e.fs.gsq_q with
      | None -> pop () (* stale: the flow was closed and its state detached *)
      | Some r ->
        assert (r.stamp = e.key);
        Some (e.fs, r)
    end
  in
  match pop () with
  | None -> None
  | Some (fs, r) ->
    t.count <- t.count - 1;
    t.gsq_served <- t.gsq_served + 1;
    (* Rule 5: the next ASQ packet inherits the removed packet's start
       tag — fs.stag already holds it, so we only need to re-expose the
       flow to the ASQ if its new front is un-released. *)
    push_asq_entry t fs;
    Some r.pkt

let serve_asq t =
  let rec pop () =
    match Ds_heap.pop_min t.asq with
    | None -> None
    | Some e -> if e.version = e.fs.asq_version then Some e else pop ()
  in
  match pop () with
  | None -> None
  | Some e -> begin
    let fs = e.fs in
    match Queue.take_opt fs.wait_q with
    | None -> assert false
    | Some r ->
      t.count <- t.count - 1;
      t.asq_served <- t.asq_served + 1;
      t.v_asq <- fs.stag;
      let ftag = fs.stag +. (float_of_int r.pkt.Packet.len /. fs.rate) in
      fs.ftag_prev <- ftag;
      if ftag > t.max_finish_asq then t.max_finish_asq <- ftag;
      fs.stag <- ftag;
      (* Rule 4: the packet leaves the regulator without advancing the
         flow's regulator clock. *)
      push_regulator_entry t fs;
      push_asq_entry t fs;
      Some r.pkt
  end

let dequeue t ~now =
  process_regulator t ~now;
  match serve_gsq t with
  | Some p -> Some p
  | None -> begin
    match serve_asq t with
    | Some p -> Some p
    | None ->
      on_idle_poll t;
      None
  end

let peek t =
  let rec gsq_head () =
    match Ds_heap.min_elt t.gsq with
    | None -> None
    | Some e -> begin
      match Queue.peek_opt e.fs.gsq_q with
      | Some r when r.stamp = e.key -> Some r.pkt
      | Some _ | None ->
        ignore (Ds_heap.pop_min t.gsq);
        gsq_head ()
    end
  in
  let rec asq_head () =
    match Ds_heap.min_elt t.asq with
    | None -> None
    | Some e ->
      if e.version = e.fs.asq_version then
        match Queue.peek_opt e.fs.wait_q with Some r -> Some r.pkt | None -> None
      else begin
        ignore (Ds_heap.pop_min t.asq);
        asq_head ()
      end
  in
  match gsq_head () with Some p -> Some p | None -> asq_head ()

let size t = t.count

let backlog t flow =
  match Flow_table.find_opt t.flows flow with
  | None -> 0
  | Some fs -> Queue.length fs.gsq_q + Queue.length fs.wait_q

let gsq_served t = t.gsq_served
let asq_served t = t.asq_served

(* Mid-queue eviction is not offered: the regulator's EAT chain and the
   GSQ's never-stale stamp discipline both assume the released sequence
   is served in full. {!Buffered} degrades to rejecting arrivals. *)
let close_flow t flow =
  match Flow_table.find_opt t.flows flow with
  | None -> []
  | Some fs ->
    let taken =
      List.map
        (fun r -> r.pkt)
        (List.of_seq (Queue.to_seq fs.gsq_q) @ List.of_seq (Queue.to_seq fs.wait_q))
    in
    Queue.clear fs.gsq_q;
    Queue.clear fs.wait_q;
    (* invalidate queued ASQ/regulator entries pointing at this state *)
    fs.asq_version <- fs.asq_version + 1;
    fs.reg_version <- fs.reg_version + 1;
    t.count <- t.count - List.length taken;
    (* Detach the state: a recycled id starts from the fresh default
       (rc_floor = -inf, tags 0). Stale GSQ heap entries still hold the
       old record, whose queue is now empty forever — serve_gsq skips
       them. *)
    Flow_table.remove t.flows flow;
    taken

let sched t =
  {
    Sched.name = "fair-airport";
    enqueue = (fun ~now pkt -> enqueue t ~now pkt);
    dequeue = (fun ~now -> dequeue t ~now);
    peek = (fun () -> peek t);
    size = (fun () -> size t);
    backlog = (fun flow -> backlog t flow);
    evict = Sched.no_evict;
    close_flow = (fun ~now:_ flow -> close_flow t flow);
  }
