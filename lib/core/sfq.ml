open Sfq_base
open Sfq_sched

type busy_rule = Idle_poll | On_empty

type tag_hook =
  now:float -> pkt:Packet.t -> stag:float -> ftag:float -> vtime:float -> unit

type t = {
  (* the guard cell is dereferenced before the hook is called: a hook
     whose tracer is off costs one load, not five boxed floats *)
  mutable tag_hook : (bool ref * tag_hook) option;
  weights : Weights.t;
  busy_rule : busy_rule;
  tie : Tag_queue.tie;
  (* key = start tag, aux = finish tag. SFQ serves in start-tag order
     and start tags are non-decreasing within a flow (eq. 4), so only
     each flow's head packet sits in the heap: O(log F) per packet,
     the paper's Table 1 bound, instead of O(log Q). *)
  fh : Packet.t Flow_heap.t;
  finish : float Flow_table.t;  (* F(p_f^{j-1}); never reset — see §2 step 2 *)
  mutable v : float;
  mutable max_finish_served : float;
}

let tie_value tie flow =
  match (tie : Tag_queue.tie) with
  | Arrival -> 0.0
  | Low_rate w -> w flow
  | High_rate w -> -.w flow

let create ?(tie = Tag_queue.Arrival) ?(busy_rule = Idle_poll) ?capacity weights =
  {
    tag_hook = None;
    weights;
    busy_rule;
    tie;
    fh = Flow_heap.create ?capacity ();
    finish = Flow_table.create ~default:(fun _ -> 0.0);
    v = 0.0;
    max_finish_served = 0.0;
  }

let packet_rate t pkt =
  match pkt.Packet.rate with Some r -> r | None -> Weights.get t.weights pkt.Packet.flow

let enqueue_tagged t ~now pkt =
  let flow = pkt.Packet.flow in
  let stag = Float.max t.v (Flow_table.find t.finish flow) in
  let ftag = stag +. (float_of_int pkt.Packet.len /. packet_rate t pkt) in
  Flow_table.set t.finish flow ftag;
  Flow_heap.push t.fh ~flow ~key:stag ~aux:ftag ~tie:(tie_value t.tie flow) pkt;
  (match t.tag_hook with
  | Some (active, h) when !active -> h ~now ~pkt ~stag ~ftag ~vtime:t.v
  | Some _ | None -> ());
  (stag, ftag)

let enqueue t ~now pkt = ignore (enqueue_tagged t ~now pkt)

let dequeue t ~now:_ =
  match Flow_heap.pop t.fh with
  | None ->
    (* The server asked for work and found none: the busy period is
       over (the queue being momentarily empty while a packet is still
       in service does NOT end it — the server only calls dequeue after
       a completion or an arrival). Per §2 step 2, v becomes the max
       finish tag of serviced packets, so a reactivating flow's old
       F(p^{j-1}) can never lag v. *)
    t.v <- Float.max t.v t.max_finish_served;
    None
  | Some { key = stag; aux = ftag; value = pkt; _ } ->
    t.v <- stag;
    if ftag > t.max_finish_served then t.max_finish_served <- ftag;
    if t.busy_rule = On_empty && Flow_heap.is_empty t.fh then
      (* The deliberately wrong variant for the ablation: treats a
         momentarily empty queue as the end of the busy period. *)
      t.v <- t.max_finish_served;
    Some pkt

let set_tag_hook t ?active h =
  let active = match active with Some r -> r | None -> ref true in
  t.tag_hook <- Some (active, h)

let clear_tag_hook t = t.tag_hook <- None

let peek t = match Flow_heap.peek t.fh with None -> None | Some p -> Some p.Flow_heap.value
let size t = Flow_heap.size t.fh
let backlog t flow = Flow_heap.backlog t.fh flow
let vtime t = t.v

(* Eviction keeps the flow's finish tag: the dropped packet's virtual
   service stays charged to the flow (its next start tag only moves
   later), so eviction can never let a flow jump ahead of where it
   would have been — the paper's eq. 4 monotonicity is preserved. *)
let evict t victim flow =
  let popped =
    match (victim : Sched.victim) with
    | Sched.Oldest -> Flow_heap.evict_front t.fh flow
    | Sched.Newest -> Flow_heap.evict_back t.fh flow
  in
  match popped with None -> None | Some p -> Some p.Flow_heap.value

(* Closing forgets F(p_f^{j-1}), so a later open of the same id starts
   from the default 0 and eq. 4 gives S = max(v, 0) = v(t): the
   returning flow re-enters at the current virtual time, exactly the
   §2 step 1 rule for a freshly active flow. *)
let close_flow t flow =
  let flushed = List.map (fun p -> p.Flow_heap.value) (Flow_heap.flush_flow t.fh flow) in
  Flow_table.remove t.finish flow;
  flushed

let sched t =
  {
    Sched.name = "sfq";
    enqueue = (fun ~now pkt -> enqueue t ~now pkt);
    dequeue = (fun ~now -> dequeue t ~now);
    peek = (fun () -> peek t);
    size = (fun () -> size t);
    backlog = (fun flow -> backlog t flow);
    evict = (fun ~now:_ victim flow -> evict t victim flow);
    close_flow = (fun ~now:_ flow -> close_flow t flow);
  }
