open Sfq_base

type t = {
  quantum : float;
  weights : Weights.t;
  queues : Flow_queues.t;
  active : Packet.flow Queue.t;
  in_active : bool Flow_table.t;
  deficit : float Flow_table.t;
  mutable current : Packet.flow option;
}

(* The round-robin cursor state, abstracted so that the destructive
   [dequeue] and the non-destructive [peek] share one decision loop:
   [dequeue] runs it over the real state, [peek] over a copy/overlay. *)
type cursor = {
  get_deficit : Packet.flow -> float;
  set_deficit : Packet.flow -> float -> unit;
  take_active : unit -> Packet.flow option;
  push_active : Packet.flow -> unit;
  get_current : unit -> Packet.flow option;
  set_current : Packet.flow option -> unit;
}

let create ?(quantum = 8000.0) weights =
  if quantum <= 0.0 then invalid_arg "Drr.create: quantum must be positive";
  {
    quantum;
    weights;
    queues = Flow_queues.create ();
    active = Queue.create ();
    in_active = Flow_table.create ~default:(fun _ -> false);
    deficit = Flow_table.create ~default:(fun _ -> 0.0);
    current = None;
  }

let flow_quantum t f = t.quantum *. Weights.get t.weights f

let enqueue t ~now:_ pkt =
  let f = pkt.Packet.flow in
  Flow_queues.push t.queues pkt;
  let is_current = match t.current with Some c -> c = f | None -> false in
  if (not (Flow_table.find t.in_active f)) && not is_current then begin
    Queue.push f t.active;
    Flow_table.set t.in_active f true
  end

(* Advance the cursor until some flow's head packet fits its deficit.
   Returns the flow and packet that should be transmitted next, without
   removing the packet. Deficits are credited and the active list
   rotated as a side effect through the cursor. Terminates because each
   revisit of a non-empty flow credits a positive quantum. *)
let rec find_next t cur =
  match cur.get_current () with
  | Some f -> begin
    match Flow_queues.head t.queues f with
    | Some p when float_of_int p.Packet.len <= cur.get_deficit f -> Some (f, p)
    | Some _ ->
      (* Head does not fit: turn ends, deficit carries over. *)
      cur.push_active f;
      cur.set_current None;
      find_next t cur
    | None ->
      cur.set_current None;
      find_next t cur
  end
  | None -> begin
    match cur.take_active () with
    | None -> None
    | Some f ->
      if Flow_queues.flow_is_empty t.queues f then find_next t cur
      else begin
        cur.set_deficit f (cur.get_deficit f +. flow_quantum t f);
        cur.set_current (Some f);
        find_next t cur
      end
  end

let real_cursor t =
  {
    get_deficit = (fun f -> Flow_table.find t.deficit f);
    set_deficit = (fun f d -> Flow_table.set t.deficit f d);
    take_active =
      (fun () ->
        match Queue.take_opt t.active with
        | None -> None
        | Some f ->
          Flow_table.set t.in_active f false;
          Some f);
    push_active =
      (fun f ->
        Queue.push f t.active;
        Flow_table.set t.in_active f true);
    get_current = (fun () -> t.current);
    set_current = (fun c -> t.current <- c);
  }

let dequeue t ~now:_ =
  match find_next t (real_cursor t) with
  | None -> None
  | Some (f, p) ->
    ignore (Flow_queues.pop t.queues f);
    Flow_table.set t.deficit f (Flow_table.find t.deficit f -. float_of_int p.Packet.len);
    if Flow_queues.flow_is_empty t.queues f then begin
      Flow_table.set t.deficit f 0.0;
      t.current <- None
    end;
    Some p

let peek t =
  let deficit_overlay = Hashtbl.create 8 in
  let active = Queue.copy t.active in
  let current = ref t.current in
  let cur =
    {
      get_deficit =
        (fun f ->
          match Hashtbl.find_opt deficit_overlay f with
          | Some d -> d
          | None -> Flow_table.find t.deficit f);
      set_deficit = (fun f d -> Hashtbl.replace deficit_overlay f d);
      take_active = (fun () -> Queue.take_opt active);
      push_active = (fun f -> Queue.push f active);
      get_current = (fun () -> !current);
      set_current = (fun c -> current := c);
    }
  in
  match find_next t cur with None -> None | Some (_, p) -> Some p

let size t = Flow_queues.size t.queues
let backlog t flow = Flow_queues.backlog t.queues flow
let deficit t flow = Flow_table.find t.deficit flow

(* Mirrors dequeue's turn-ending rule when the flow empties; the
   stale entry a closed flow may leave in [active] is harmless —
   find_next skips empty flows, and in_active stays truthful. *)
let evict t victim flow =
  match Flow_queues.evict t.queues victim flow with
  | None -> None
  | Some p ->
    if Flow_queues.flow_is_empty t.queues flow then begin
      Flow_table.set t.deficit flow 0.0;
      if t.current = Some flow then t.current <- None
    end;
    Some p

let close_flow t flow =
  let flushed = Flow_queues.flush t.queues flow in
  Flow_table.remove t.deficit flow;
  if t.current = Some flow then t.current <- None;
  flushed

let sched t =
  {
    Sched.name = "drr";
    enqueue = (fun ~now pkt -> enqueue t ~now pkt);
    dequeue = (fun ~now -> dequeue t ~now);
    peek = (fun () -> peek t);
    size = (fun () -> size t);
    backlog = (fun flow -> backlog t flow);
    evict = (fun ~now:_ victim flow -> evict t victim flow);
    close_flow = (fun ~now:_ flow -> close_flow t flow);
  }
