(* Frozen copies of the seed per-packet-heap schedulers: one boxed
   entry per queued packet in a single closure-compared {!Sfq_util.Ds_heap},
   i.e. the O(log Q) structure the library shipped with before the
   per-flow {!Flow_heap} port. They exist as differential-testing
   oracles (test/test_order_equiv.ml asserts the production schedulers
   are packet-for-packet identical to these on randomized workloads)
   and as the benchmark baseline that quantifies the O(log Q) →
   O(log F) win (bench/main.ml's depth-scaling series). Do not
   optimize or simplify these modules — their entire value is
   preserving seed behaviour bit for bit. *)

open Sfq_util
open Sfq_base

(** Seed [Tag_queue]: every packet in one heap, tie rule evaluated by a
    closure comparator on every sift step. *)
module Tag_queue_ref = struct
  type entry = { tag : float; uid : int; pkt : Packet.t }

  type t = {
    heap : entry Ds_heap.t;
    counts : int Flow_table.t;
    mutable next_uid : int;
  }

  let compare_entry (tie : Tag_queue.tie) a b =
    match compare a.tag b.tag with
    | 0 ->
      let by_rate =
        match tie with
        | Arrival -> 0
        | Low_rate w -> compare (w a.pkt.Packet.flow) (w b.pkt.Packet.flow)
        | High_rate w -> compare (w b.pkt.Packet.flow) (w a.pkt.Packet.flow)
      in
      if by_rate <> 0 then by_rate else compare a.uid b.uid
    | c -> c

  let create ?(tie = Tag_queue.Arrival) () =
    {
      heap = Ds_heap.create ~cmp:(compare_entry tie) ();
      counts = Flow_table.create ~default:(fun _ -> 0);
      next_uid = 0;
    }

  let push t ~tag pkt =
    Ds_heap.add t.heap { tag; uid = t.next_uid; pkt };
    t.next_uid <- t.next_uid + 1;
    Flow_table.set t.counts pkt.Packet.flow (Flow_table.find t.counts pkt.Packet.flow + 1)

  let pop t =
    match Ds_heap.pop_min t.heap with
    | None -> None
    | Some e ->
      Flow_table.set t.counts e.pkt.Packet.flow
        (Flow_table.find t.counts e.pkt.Packet.flow - 1);
      Some (e.tag, e.pkt)

  let peek t =
    match Ds_heap.min_elt t.heap with None -> None | Some e -> Some (e.tag, e.pkt)

  let size t = Ds_heap.length t.heap
  let backlog t flow = Flow_table.find t.counts flow
  let is_empty t = Ds_heap.is_empty t.heap
end

(** Seed SFQ core (lib/core/sfq.ml before the Flow_heap port). *)
module Sfq_ref = struct
  type entry = { stag : float; ftag : float; uid : int; pkt : Packet.t }

  type busy_rule = Idle_poll | On_empty

  type t = {
    weights : Weights.t;
    busy_rule : busy_rule;
    heap : entry Ds_heap.t;
    counts : int Flow_table.t;
    finish : float Flow_table.t;
    mutable v : float;
    mutable max_finish_served : float;
    mutable next_uid : int;
  }

  let compare_entry (tie : Tag_queue.tie) a b =
    match compare a.stag b.stag with
    | 0 ->
      let by_rate =
        match tie with
        | Arrival -> 0
        | Low_rate w -> compare (w a.pkt.Packet.flow) (w b.pkt.Packet.flow)
        | High_rate w -> compare (w b.pkt.Packet.flow) (w a.pkt.Packet.flow)
      in
      if by_rate <> 0 then by_rate else compare a.uid b.uid
    | c -> c

  let create ?(tie = Tag_queue.Arrival) ?(busy_rule = Idle_poll) weights =
    {
      weights;
      busy_rule;
      heap = Ds_heap.create ~cmp:(compare_entry tie) ();
      counts = Flow_table.create ~default:(fun _ -> 0);
      finish = Flow_table.create ~default:(fun _ -> 0.0);
      v = 0.0;
      max_finish_served = 0.0;
      next_uid = 0;
    }

  let packet_rate t pkt =
    match pkt.Packet.rate with Some r -> r | None -> Weights.get t.weights pkt.Packet.flow

  let enqueue t ~now:_ pkt =
    let flow = pkt.Packet.flow in
    let stag = Float.max t.v (Flow_table.find t.finish flow) in
    let ftag = stag +. (float_of_int pkt.Packet.len /. packet_rate t pkt) in
    Flow_table.set t.finish flow ftag;
    Ds_heap.add t.heap { stag; ftag; uid = t.next_uid; pkt };
    t.next_uid <- t.next_uid + 1;
    Flow_table.set t.counts flow (Flow_table.find t.counts flow + 1)

  let dequeue t ~now:_ =
    match Ds_heap.pop_min t.heap with
    | None ->
      t.v <- Float.max t.v t.max_finish_served;
      None
    | Some e ->
      t.v <- e.stag;
      if e.ftag > t.max_finish_served then t.max_finish_served <- e.ftag;
      Flow_table.set t.counts e.pkt.Packet.flow
        (Flow_table.find t.counts e.pkt.Packet.flow - 1);
      if t.busy_rule = On_empty && Ds_heap.is_empty t.heap then t.v <- t.max_finish_served;
      Some e.pkt

  let peek t = match Ds_heap.min_elt t.heap with None -> None | Some e -> Some e.pkt
  let size t = Ds_heap.length t.heap
  let backlog t flow = Flow_table.find t.counts flow
  let vtime t = t.v
end

(** Seed SCFQ, on the seed tag queue. *)
module Scfq_ref = struct
  type t = {
    weights : Weights.t;
    queue : Tag_queue_ref.t;
    finish : float Flow_table.t;
    mutable v : float;
  }

  let create ?tie weights =
    {
      weights;
      queue = Tag_queue_ref.create ?tie ();
      finish = Flow_table.create ~default:(fun _ -> 0.0);
      v = 0.0;
    }

  let enqueue t ~now:_ pkt =
    let flow = pkt.Packet.flow in
    let rate = Weights.get t.weights flow in
    let start_tag = Float.max t.v (Flow_table.find t.finish flow) in
    let finish_tag = start_tag +. (float_of_int pkt.Packet.len /. rate) in
    Flow_table.set t.finish flow finish_tag;
    Tag_queue_ref.push t.queue ~tag:finish_tag pkt

  let dequeue t ~now:_ =
    match Tag_queue_ref.pop t.queue with
    | None ->
      t.v <- 0.0;
      Flow_table.clear t.finish;
      None
    | Some (finish_tag, p) ->
      t.v <- finish_tag;
      Some p

  let size t = Tag_queue_ref.size t.queue
  let backlog t flow = Tag_queue_ref.backlog t.queue flow
  let vtime t = t.v
end

(** Seed Virtual Clock, on the seed tag queue. *)
module Virtual_clock_ref = struct
  type t = { weights : Weights.t; eat : Eat.t; queue : Tag_queue_ref.t }

  let create ?tie weights =
    { weights; eat = Eat.create (); queue = Tag_queue_ref.create ?tie () }

  let packet_rate t pkt =
    match pkt.Packet.rate with Some r -> r | None -> Weights.get t.weights pkt.Packet.flow

  let enqueue t ~now pkt =
    let rate = packet_rate t pkt in
    let eat = Eat.on_arrival t.eat ~now ~flow:pkt.Packet.flow ~len:pkt.Packet.len ~rate in
    let stamp = eat +. (float_of_int pkt.Packet.len /. rate) in
    Tag_queue_ref.push t.queue ~tag:stamp pkt

  let dequeue t ~now:_ =
    match Tag_queue_ref.pop t.queue with None -> None | Some (_, p) -> Some p

  let size t = Tag_queue_ref.size t.queue
  let backlog t flow = Tag_queue_ref.backlog t.queue flow
end

(** Seed FQS, on the seed tag queue (shares the production {!Gps}). *)
module Fqs_ref = struct
  type t = { gps : Gps.t; queue : Tag_queue_ref.t }

  let create ~capacity ?tie weights =
    let queue = Tag_queue_ref.create ?tie () in
    {
      gps =
        Gps.create ~capacity
          ~real_system_empty:(fun () -> Tag_queue_ref.is_empty queue)
          weights;
      queue;
    }

  let enqueue t ~now pkt =
    let start_tag, _finish_tag = Gps.on_arrival t.gps ~now pkt in
    Tag_queue_ref.push t.queue ~tag:start_tag pkt

  let dequeue t ~now:_ =
    match Tag_queue_ref.pop t.queue with None -> None | Some (_, p) -> Some p

  let size t = Tag_queue_ref.size t.queue
  let backlog t flow = Tag_queue_ref.backlog t.queue flow
end

(** Seed WF²Q: two closure-compared per-packet heaps (shares the
    production {!Gps}). *)
module Wf2q_ref = struct
  type entry = { stag : float; ftag : float; uid : int; pkt : Packet.t }

  type t = {
    gps : Gps.t;
    pending : entry Ds_heap.t;
    eligible : entry Ds_heap.t;
    counts : int Flow_table.t;
    mutable last_now : float;
    mutable next_uid : int;
  }

  let tie_compare (tie : Tag_queue.tie) a b =
    let by_rate =
      match tie with
      | Arrival -> 0
      | Low_rate w -> compare (w a.pkt.Packet.flow) (w b.pkt.Packet.flow)
      | High_rate w -> compare (w b.pkt.Packet.flow) (w a.pkt.Packet.flow)
    in
    if by_rate <> 0 then by_rate else compare a.uid b.uid

  let create ~capacity ?(tie = Tag_queue.Arrival) weights =
    let by_start a b =
      match compare a.stag b.stag with 0 -> tie_compare tie a b | c -> c
    in
    let by_finish a b =
      match compare a.ftag b.ftag with 0 -> tie_compare tie a b | c -> c
    in
    let pending = Ds_heap.create ~cmp:by_start () in
    let eligible = Ds_heap.create ~cmp:by_finish () in
    let real_system_empty () = Ds_heap.is_empty pending && Ds_heap.is_empty eligible in
    {
      gps = Gps.create ~capacity ~real_system_empty weights;
      pending;
      eligible;
      counts = Flow_table.create ~default:(fun _ -> 0);
      last_now = 0.0;
      next_uid = 0;
    }

  let enqueue t ~now pkt =
    t.last_now <- Float.max t.last_now now;
    let stag, ftag = Gps.on_arrival t.gps ~now pkt in
    t.next_uid <- t.next_uid + 1;
    Ds_heap.add t.pending { stag; ftag; uid = t.next_uid; pkt };
    Flow_table.set t.counts pkt.Packet.flow (Flow_table.find t.counts pkt.Packet.flow + 1)

  let promote t ~now =
    let v = Gps.vtime t.gps ~now in
    let rec go () =
      match Ds_heap.min_elt t.pending with
      | Some e when e.stag <= v +. 1e-12 ->
        ignore (Ds_heap.pop_min t.pending);
        Ds_heap.add t.eligible e;
        go ()
      | Some _ | None -> ()
    in
    go ()

  let take t e =
    Flow_table.set t.counts e.pkt.Packet.flow
      (Flow_table.find t.counts e.pkt.Packet.flow - 1);
    Some e.pkt

  let dequeue t ~now =
    t.last_now <- Float.max t.last_now now;
    promote t ~now;
    match Ds_heap.pop_min t.eligible with
    | Some e -> take t e
    | None -> begin
      match Ds_heap.pop_min t.pending with Some e -> take t e | None -> None
    end

  let size t = Ds_heap.length t.pending + Ds_heap.length t.eligible
  let backlog t flow = Flow_table.find t.counts flow
end
