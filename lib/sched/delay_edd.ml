open Sfq_base

type flow_spec = { rate : float; deadline : float; max_len : int }

type t = {
  specs : (Packet.flow, flow_spec) Hashtbl.t;
  eat : Eat.t;
  queue : Tag_queue.t;
  last_deadline : float Flow_table.t;
}

let check_spec (flow, { rate; deadline; max_len }) =
  if rate <= 0.0 || deadline <= 0.0 || max_len <= 0 then
    invalid_arg (Printf.sprintf "Delay_edd: invalid spec for flow %d" flow)

let create specs =
  List.iter check_spec specs;
  let table = Hashtbl.create 16 in
  List.iter (fun (f, s) -> Hashtbl.replace table f s) specs;
  {
    specs = table;
    eat = Eat.create ();
    queue = Tag_queue.create ();
    last_deadline = Flow_table.create ~default:(fun _ -> nan);
  }

let spec t flow =
  match Hashtbl.find_opt t.specs flow with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Delay_edd: undeclared flow %d" flow)

let enqueue t ~now pkt =
  let { rate; deadline; _ } = spec t pkt.Packet.flow in
  let rate = match pkt.Packet.rate with Some r -> r | None -> rate in
  let eat = Eat.on_arrival t.eat ~now ~flow:pkt.Packet.flow ~len:pkt.Packet.len ~rate in
  let d = eat +. deadline in
  Flow_table.set t.last_deadline pkt.Packet.flow d;
  Tag_queue.push t.queue ~tag:d pkt

let dequeue t ~now:_ =
  match Tag_queue.pop t.queue with None -> None | Some (_, p) -> Some p

let peek t = match Tag_queue.peek t.queue with None -> None | Some (_, p) -> Some p
let size t = Tag_queue.size t.queue
let backlog t flow = Tag_queue.backlog t.queue flow

let deadline_of_last t flow =
  let d = Flow_table.find t.last_deadline flow in
  if Float.is_nan d then None else Some d

(* Eq. 67 demand, evaluated as a right-limit: the transmission time of
   packets of flow n that are due by [t + ε]. The demand function is a
   right-continuous step function that jumps at t = d_n + k·l_n/r_n;
   because the right-hand side of eq. 67 is increasing, checking the
   post-jump value at every jump point checks the whole line. *)
let demand_after specs ~capacity t =
  List.fold_left
    (fun acc (_, { rate; deadline; max_len }) ->
      let l = float_of_int max_len in
      if t < deadline -. 1e-12 then acc
      else begin
        let packets = Float.floor ((t -. deadline) *. rate /. l +. 1e-9) +. 1.0 in
        acc +. (packets *. l /. capacity)
      end)
    0.0 specs

let schedulable specs ~capacity ?horizon () =
  List.iter check_spec specs;
  if specs = [] then true
  else begin
    let utilization =
      List.fold_left (fun acc (_, s) -> acc +. s.rate) 0.0 specs /. capacity
    in
    if utilization >= 1.0 then false
    else begin
      let horizon =
        match horizon with
        | Some h -> h
        | None ->
          (* Past t*, demand(t) <= U*t + slack <= t by utilization < 1. *)
          let slack =
            List.fold_left (fun acc (_, s) -> acc +. (float_of_int s.max_len /. capacity)) 0.0 specs
          in
          slack /. (1.0 -. utilization)
      in
      let points =
        List.concat_map
          (fun (_, { rate; deadline; max_len }) ->
            let step = float_of_int max_len /. rate in
            let rec gen k acc =
              let t = deadline +. (float_of_int k *. step) in
              if t > horizon then acc else gen (k + 1) (t :: acc)
            in
            gen 0 [])
          specs
      in
      List.for_all (fun t -> demand_after specs ~capacity t <= t +. 1e-9) points
    end
  end

let evict t victim flow = Tag_queue.evict t.queue victim flow

(* The spec stays (it is configuration, not state); the EAT floor and
   last deadline reset so a reopened flow is re-admitted against real
   time, not its stale reserved-rate schedule. *)
let close_flow t flow =
  let flushed = Tag_queue.flush t.queue flow in
  Eat.reset_flow t.eat flow;
  Flow_table.remove t.last_deadline flow;
  flushed

let sched t =
  {
    Sched.name = "delay-edd";
    enqueue = (fun ~now pkt -> enqueue t ~now pkt);
    dequeue = (fun ~now -> dequeue t ~now);
    peek = (fun () -> peek t);
    size = (fun () -> size t);
    backlog = (fun flow -> backlog t flow);
    evict = (fun ~now:_ victim flow -> evict t victim flow);
    close_flow = (fun ~now:_ flow -> close_flow t flow);
  }
