open Sfq_base

type t = { queue : Packet.t Queue.t; counts : int Flow_table.t }

let create () = { queue = Queue.create (); counts = Flow_table.create ~default:(fun _ -> 0) }

let enqueue t ~now:_ pkt =
  Queue.push pkt t.queue;
  Flow_table.set t.counts pkt.Packet.flow (Flow_table.find t.counts pkt.Packet.flow + 1)

let dequeue t ~now:_ =
  match Queue.take_opt t.queue with
  | None -> None
  | Some p ->
    Flow_table.set t.counts p.Packet.flow (Flow_table.find t.counts p.Packet.flow - 1);
    Some p

let peek t = Queue.peek_opt t.queue
let size t = Queue.length t.queue
let backlog t flow = Flow_table.find t.counts flow

(* The single shared queue has no per-flow structure, so eviction is a
   rebuild — O(Q), acceptable off the hot path. *)
let evict t victim flow =
  if Flow_table.find t.counts flow = 0 then None
  else begin
    let items = Array.of_seq (Queue.to_seq t.queue) in
    let n = Array.length items in
    let target = ref (-1) in
    (match (victim : Sched.victim) with
    | Sched.Oldest ->
      let i = ref 0 in
      while !target < 0 && !i < n do
        if items.(!i).Packet.flow = flow then target := !i;
        incr i
      done
    | Sched.Newest ->
      let i = ref (n - 1) in
      while !target < 0 && !i >= 0 do
        if items.(!i).Packet.flow = flow then target := !i;
        decr i
      done);
    if !target < 0 then None
    else begin
      Queue.clear t.queue;
      Array.iteri (fun i p -> if i <> !target then Queue.push p t.queue) items;
      Flow_table.set t.counts flow (Flow_table.find t.counts flow - 1);
      Some items.(!target)
    end
  end

let close_flow t flow =
  let mine, rest =
    List.partition (fun p -> p.Packet.flow = flow) (List.of_seq (Queue.to_seq t.queue))
  in
  Queue.clear t.queue;
  List.iter (fun p -> Queue.push p t.queue) rest;
  Flow_table.remove t.counts flow;
  mine

let sched t =
  {
    Sched.name = "fifo";
    enqueue = (fun ~now pkt -> enqueue t ~now pkt);
    dequeue = (fun ~now -> dequeue t ~now);
    peek = (fun () -> peek t);
    size = (fun () -> size t);
    backlog = (fun flow -> backlog t flow);
    evict = (fun ~now:_ victim flow -> evict t victim flow);
    close_flow = (fun ~now:_ flow -> close_flow t flow);
  }
