(** Self-Clocked Fair Queuing (Golestani).

    Like WFQ, schedules in increasing finish-tag order, but replaces
    the fluid GPS clock with a self-clock: [v(t)] is the finish tag of
    the packet in service. Fairness measure
    [l_f^max/r_f + l_m^max/r_m] (same as SFQ); the cost is delay — a
    packet can wait [Σ_{n≠f} l_n^max / C] longer than under WFQ
    (eq. 56), which §2.3 quantifies at 24.4 ms for a 64 Kb/s flow on a
    100 Mb/s link. The [scfq-gap] experiment reproduces that number. *)

open Sfq_base

type t

val create : ?tie:Tag_queue.tie -> ?capacity:int -> Weights.t -> t
(** [capacity] pre-sizes the tag queue (entries, not bits), like
    {!Sfq_core.Sfq.create}'s. *)

val enqueue : t -> now:float -> Packet.t -> unit
val dequeue : t -> now:float -> Packet.t option
val peek : t -> Packet.t option
val size : t -> int
val backlog : t -> Packet.flow -> int

val vtime : t -> float
(** Current self-clock value; exposed for tests. *)

val sched : t -> Sched.t
