open Sfq_base

type t = {
  deadline : Packet.t -> float;
  residual : Packet.t -> float;
  queue : Tag_queue.t;
  (* Monotone per-flow rank floor (nan = unset). Caller-supplied
     deadlines carry no ordering promise, but Tag_queue's Flow_heap
     backing requires non-decreasing tags within a flow; clamping to
     the flow's last rank restores the invariant and per-flow FIFO. *)
  floor : float Flow_table.t;
}

let create ?tie ?(residual = fun _ -> 0.0) ~deadline () =
  {
    deadline;
    residual;
    queue = Tag_queue.create ?tie ();
    floor = Flow_table.create ~default:(fun _ -> nan);
  }

let rank t pkt =
  let r = t.deadline pkt -. t.residual pkt in
  match Flow_table.find_opt t.floor pkt.Packet.flow with
  | Some f when r < f -> f
  | _ -> r

let enqueue t ~now:_ pkt =
  let r = rank t pkt in
  Flow_table.set t.floor pkt.Packet.flow r;
  Tag_queue.push t.queue ~tag:r pkt

let dequeue t ~now:_ =
  match Tag_queue.pop t.queue with None -> None | Some (_, p) -> Some p

let peek t = match Tag_queue.peek t.queue with None -> None | Some (_, p) -> Some p
let size t = Tag_queue.size t.queue
let backlog t flow = Tag_queue.backlog t.queue flow

let last_rank t flow = Flow_table.find_opt t.floor flow

(* The floor stays: the evicted packet's rank remains the flow's
   monotone watermark, so later enqueues cannot slip in front of where
   it would have served (tags never roll back, as in eq. 4's treatment
   of the finish tag). *)
let evict t victim flow = Tag_queue.evict t.queue victim flow

let close_flow t flow =
  let flushed = Tag_queue.flush t.queue flow in
  Flow_table.remove t.floor flow;
  flushed

let sched t =
  {
    Sched.name = "lstf";
    enqueue = (fun ~now pkt -> enqueue t ~now pkt);
    dequeue = (fun ~now -> dequeue t ~now);
    peek = (fun () -> peek t);
    size = (fun () -> size t);
    backlog = (fun flow -> backlog t flow);
    evict = (fun ~now:_ victim flow -> evict t victim flow);
    close_flow = (fun ~now:_ flow -> close_flow t flow);
  }
