open Sfq_base

type t = { queues : Packet.t Queue.t Flow_table.t; mutable total : int }

let create () = { queues = Flow_table.create ~default:(fun _ -> Queue.create ()); total = 0 }

let push t pkt =
  Queue.push pkt (Flow_table.find t.queues pkt.Packet.flow);
  t.total <- t.total + 1

let head t flow = Queue.peek_opt (Flow_table.find t.queues flow)

let pop t flow =
  match Queue.take_opt (Flow_table.find t.queues flow) with
  | None -> None
  | Some p ->
    t.total <- t.total - 1;
    Some p

let flow_is_empty t flow = Queue.is_empty (Flow_table.find t.queues flow)
let backlog t flow = Queue.length (Flow_table.find t.queues flow)
let size t = t.total

let evict t victim flow =
  match Flow_table.find_opt t.queues flow with
  | None -> None
  | Some q when Queue.is_empty q -> None
  | Some q ->
    let p =
      match (victim : Sched.victim) with
      | Sched.Oldest -> Queue.pop q
      | Sched.Newest ->
        (* Stdlib.Queue has no take-from-back: rebuild, O(backlog), off
           the hot path. *)
        let n = Queue.length q in
        let keep = Queue.create () in
        for _ = 1 to n - 1 do
          Queue.push (Queue.pop q) keep
        done;
        let last = Queue.pop q in
        Queue.transfer keep q;
        last
    in
    t.total <- t.total - 1;
    Some p

let flush t flow =
  match Flow_table.find_opt t.queues flow with
  | None -> []
  | Some q ->
    let out = List.of_seq (Queue.to_seq q) in
    t.total <- t.total - Queue.length q;
    (* drop the queue so a recycled id starts from a fresh (empty) one *)
    Flow_table.remove t.queues flow;
    out
