(** Priority queue of packets keyed by a scheduling tag.

    Shared engine of every tag-based discipline (SFQ, WFQ, FQS, SCFQ,
    Virtual Clock, Delay EDD): the discipline computes a float tag per
    packet at enqueue time; this queue orders by [(tag, arrival
    order)]. The arrival-order tie-break makes every discipline
    deterministic and, because all the paper's disciplines assign
    non-decreasing tags within a flow, preserves per-flow FIFO order.

    An optional [tie] comparator refines ordering {e between equal
    tags} before the arrival-order fallback — §2.3 of the paper notes
    that SFQ's delay guarantee is tie-break independent but that a rule
    favouring low-throughput flows reduces their average delay.

    Because tags are non-decreasing within a flow, the queue is backed
    by {!Flow_heap}: per-flow FIFOs with only each flow's head packet
    in the heap, so [push]/[pop] cost O(log F) in backlogged flows
    rather than O(log Q) in queued packets (§2.2, Table 1). The tie
    weight function is evaluated at push time and must be fixed for
    the life of the queue. *)

open Sfq_base

type t

type tie = Arrival | Low_rate of (Packet.flow -> float) | High_rate of (Packet.flow -> float)
(** [Arrival]: FIFO among equal tags. [Low_rate w]/[High_rate w]:
    among equal tags prefer the flow with the smaller/larger weight
    under [w], then arrival order. *)

val create : ?tie:tie -> ?capacity:int -> unit -> t
(** [capacity] pre-sizes the flow-head heap. *)

val push : t -> tag:float -> Packet.t -> unit
val pop : t -> (float * Packet.t) option
(** Smallest-tag packet and its tag. *)

val peek : t -> (float * Packet.t) option
val size : t -> int
val backlog : t -> Packet.flow -> int
val is_empty : t -> bool

val evict : t -> Sched.victim -> Packet.flow -> Packet.t option
(** Remove one queued packet of [flow] — its oldest ([Oldest]) or
    newest ([Newest]) — without serving it. [None] when the flow has
    no backlog. Off the hot path (O(F) heap repair). *)

val flush : t -> Packet.flow -> Packet.t list
(** Remove all of [flow]'s queued packets, oldest first, releasing the
    flow's ring storage. *)
