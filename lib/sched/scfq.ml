open Sfq_base

type t = {
  weights : Weights.t;
  queue : Tag_queue.t;
  finish : float Flow_table.t;
  mutable v : float;
}

let create ?tie ?capacity weights =
  {
    weights;
    queue = Tag_queue.create ?tie ?capacity ();
    finish = Flow_table.create ~default:(fun _ -> 0.0);
    v = 0.0;
  }

let enqueue t ~now:_ pkt =
  let flow = pkt.Packet.flow in
  let rate = Weights.get t.weights flow in
  let start_tag = Float.max t.v (Flow_table.find t.finish flow) in
  let finish_tag = start_tag +. (float_of_int pkt.Packet.len /. rate) in
  Flow_table.set t.finish flow finish_tag;
  Tag_queue.push t.queue ~tag:finish_tag pkt

let dequeue t ~now:_ =
  match Tag_queue.pop t.queue with
  | None ->
    (* The server found no work after a completion: busy period over.
       Restart the clock and the per-flow tags (an empty queue while a
       packet is still in service does not end the busy period — the
       server only calls dequeue when it needs the next packet). *)
    t.v <- 0.0;
    Flow_table.clear t.finish;
    None
  | Some (finish_tag, p) ->
    (* Self-clocking: v(t) is the finish tag of the packet in service. *)
    t.v <- finish_tag;
    Some p

let peek t = match Tag_queue.peek t.queue with None -> None | Some (_, p) -> Some p
let size t = Tag_queue.size t.queue
let backlog t flow = Tag_queue.backlog t.queue flow
let vtime t = t.v

(* Same policy as SFQ: the evicted packet's virtual service stays
   charged (finish tag untouched); closing forgets the tag so a
   recycled id restarts from F = 0, i.e. start tag max(v, 0) = v. *)
let evict t victim flow = Tag_queue.evict t.queue victim flow

let close_flow t flow =
  let flushed = Tag_queue.flush t.queue flow in
  Flow_table.remove t.finish flow;
  flushed

let sched t =
  {
    Sched.name = "scfq";
    enqueue = (fun ~now pkt -> enqueue t ~now pkt);
    dequeue = (fun ~now -> dequeue t ~now);
    peek = (fun () -> peek t);
    size = (fun () -> size t);
    backlog = (fun flow -> backlog t flow);
    evict = (fun ~now:_ victim flow -> evict t victim flow);
    close_flow = (fun ~now:_ flow -> close_flow t flow);
  }
