open Sfq_base

type tie = Arrival | Low_rate of (Packet.flow -> float) | High_rate of (Packet.flow -> float)

type t = { fh : Packet.t Flow_heap.t; tie : tie }

(* The tie rule collapses to one float per flow, compared ascending:
   weights are positive, so [<] on them (or on their negation for
   High_rate) agrees exactly with the closure comparators the seed
   implementation evaluated on every sift step. Evaluated once per
   push; weight functions are fixed for the life of a queue. *)
let tie_value tie flow =
  match tie with
  | Arrival -> 0.0
  | Low_rate w -> w flow
  | High_rate w -> -.w flow

let create ?(tie = Arrival) ?capacity () = { fh = Flow_heap.create ?capacity (); tie }

let push t ~tag pkt =
  let flow = pkt.Packet.flow in
  Flow_heap.push t.fh ~flow ~key:tag ~tie:(tie_value t.tie flow) pkt

let pop t =
  match Flow_heap.pop t.fh with
  | None -> None
  | Some p -> Some (p.Flow_heap.key, p.Flow_heap.value)

let peek t =
  match Flow_heap.peek t.fh with
  | None -> None
  | Some p -> Some (p.Flow_heap.key, p.Flow_heap.value)

let size t = Flow_heap.size t.fh
let backlog t flow = Flow_heap.backlog t.fh flow
let is_empty t = Flow_heap.is_empty t.fh

let evict t victim flow =
  let popped =
    match (victim : Sched.victim) with
    | Sched.Oldest -> Flow_heap.evict_front t.fh flow
    | Sched.Newest -> Flow_heap.evict_back t.fh flow
  in
  match popped with None -> None | Some p -> Some p.Flow_heap.value

let flush t flow = List.map (fun p -> p.Flow_heap.value) (Flow_heap.flush_flow t.fh flow)
