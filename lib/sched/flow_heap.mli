(** Tag-ordered packet store with per-flow FIFOs: the paper's O(log F)
    structure (§2.2, Table 1).

    Every discipline in this library assigns tags that are
    {e non-decreasing within a flow} (eqs. 4–5 and their SCFQ / Virtual
    Clock / EDD analogues), so the globally smallest queued tag is
    always carried by the {e head} packet of some flow. Exploiting
    that, this container keeps one FIFO ring per flow and enters only
    each flow's head in a {!Sfq_util.Fheap}; a dequeue pops the heap
    and promotes the flow's successor. Heap operations therefore cost
    O(log F) in the number of {e backlogged flows} — flat in the number
    of queued packets — while pushes into a backlogged flow are O(1)
    ring appends. Pop order is exactly ascending [(key, tie, uid)]
    over all queued entries, bit-for-bit what a single global heap
    over every packet would produce (uids are assigned in push order).

    Precondition: keys pushed to the {e same flow} must be
    non-decreasing, and [tie] must be constant per flow while the flow
    is backlogged; violating either reorders that flow relative to the
    global-heap semantics. Keys and ties must not be NaN. *)

open Sfq_base

type 'a t

type 'a popped = {
  key : float;  (** ordering tag the entry was pushed with *)
  aux : float;  (** caller's auxiliary float (e.g. SFQ's finish tag) *)
  uid : int;  (** push-order number, unique across the whole store *)
  flow : Packet.flow;
  value : 'a;
}

val create : ?capacity:int -> unit -> 'a t
(** [capacity] pre-sizes the flow-head heap (one slot per backlogged
    flow, not per packet). *)

val push : 'a t -> flow:Packet.flow -> key:float -> ?aux:float -> tie:float -> 'a -> unit
(** Append to [flow]'s FIFO. [tie] refines ordering among equal keys of
    different flows (ascending, then push order); [aux] (default 0.)
    is stored and returned untouched. *)

val pop : 'a t -> 'a popped option
(** Remove and return the entry with the smallest [(key, tie, uid)]. *)

val peek : 'a t -> 'a popped option
(** Like {!pop} without removing. *)

val size : 'a t -> int
(** Total queued entries across all flows. *)

val is_empty : 'a t -> bool

val backlog : 'a t -> Packet.flow -> int
(** Queued entries of one flow. *)

val active_flows : 'a t -> int
(** Number of backlogged flows (= current heap size). *)

val evict_front : 'a t -> Packet.flow -> 'a popped option
(** Remove [flow]'s oldest queued entry (its head), promoting the
    successor into the heap; [None] if the flow has nothing queued.
    O(F) heap scan — eviction is a buffer-overflow path, not the
    per-packet hot path. *)

val evict_back : 'a t -> Packet.flow -> 'a popped option
(** Remove [flow]'s newest queued entry (its tail). O(1) unless the
    flow empties (then its heap entry is removed, O(F)). *)

val flush_flow : 'a t -> Packet.flow -> 'a popped list
(** Remove every queued entry of [flow], oldest first, and discard the
    flow's ring entirely so a recycled id re-grows from scratch.
    Returns [[]] for an unknown or empty flow. *)

val ring_capacity : 'a t -> Packet.flow -> int
(** Allocated ring slots for [flow] (0 when it holds no ring) — exposed
    so churn tests can assert {!flush_flow} releases burst capacity. *)
