open Sfq_util
open Sfq_base

(* Int-keyed sibling of Flow_heap for the fixed-point fast path: same
   per-flow circular rings + heads-only heap, but every ordering field
   is an int (scaled tag / encoded tie / arrival uid) and the pop path
   deposits the removed entry's fields into scratch slots instead of
   allocating a [popped] record. Steady-state push/pop therefore
   allocate nothing once rings and heap have reached peak capacity. *)
type 'a ring = {
  mutable rkeys : int array;
  mutable raux : int array;
  mutable rties : int array;
  mutable ruids : int array;
  mutable rdata : 'a array;  (* allocated lazily: no ['a] dummy exists *)
  mutable head : int;
  mutable len : int;
}

let ring_make () =
  {
    rkeys = [||];
    raux = [||];
    rties = [||];
    ruids = [||];
    rdata = [||];
    head = 0;
    len = 0;
  }

let ring_grow r v =
  let cur = Array.length r.rdata in
  if cur = 0 then begin
    r.rkeys <- Array.make 8 0;
    r.raux <- Array.make 8 0;
    r.rties <- Array.make 8 0;
    r.ruids <- Array.make 8 0;
    r.rdata <- Array.make 8 v
  end
  else if r.len = cur then begin
    let cap = 2 * cur in
    let rkeys = Array.make cap 0
    and raux = Array.make cap 0
    and rties = Array.make cap 0
    and ruids = Array.make cap 0
    and rdata = Array.make cap v in
    (* Unwrap: oldest entry moves to index 0. *)
    let tail = cur - r.head in
    Array.blit r.rkeys r.head rkeys 0 tail;
    Array.blit r.raux r.head raux 0 tail;
    Array.blit r.rties r.head rties 0 tail;
    Array.blit r.ruids r.head ruids 0 tail;
    Array.blit r.rdata r.head rdata 0 tail;
    Array.blit r.rkeys 0 rkeys tail r.head;
    Array.blit r.raux 0 raux tail r.head;
    Array.blit r.rties 0 rties tail r.head;
    Array.blit r.ruids 0 ruids tail r.head;
    Array.blit r.rdata 0 rdata tail r.head;
    r.rkeys <- rkeys;
    r.raux <- raux;
    r.rties <- rties;
    r.ruids <- ruids;
    r.rdata <- rdata;
    r.head <- 0
  end

let ring_push r ~key ~aux ~tie ~uid v =
  ring_grow r v;
  let i = (r.head + r.len) land (Array.length r.rdata - 1) in
  r.rkeys.(i) <- key;
  r.raux.(i) <- aux;
  r.rties.(i) <- tie;
  r.ruids.(i) <- uid;
  r.rdata.(i) <- v;
  r.len <- r.len + 1

type 'a popped = { key : int; aux : int; uid : int; flow : Packet.flow; value : 'a }

type 'a t = {
  heap : Packet.flow Iheap.t;  (* one entry per backlogged flow: its head *)
  rings : 'a ring Flow_table.t;
  mutable next_uid : int;
  mutable total : int;
  (* Scratch slots holding the fields of the entry removed by the last
     [pop_exn]; read them via [last_key]/[last_aux]/[last_uid]/[last_flow]
     before the next pop. This is what keeps the hot dequeue path free
     of [popped] record allocation. *)
  mutable last_key : int;
  mutable last_aux : int;
  mutable last_uid : int;
  mutable last_flow : Packet.flow;
}

let create ?capacity () =
  {
    heap = Iheap.create ?capacity ();
    rings = Flow_table.create ~default:(fun _ -> ring_make ());
    next_uid = 0;
    total = 0;
    last_key = 0;
    last_aux = 0;
    last_uid = 0;
    last_flow = 0;
  }

(* [aux] is a required label: an optional argument would box its value
   in [Some] at every call site, which the zero-allocation gate on the
   fast schedulers cannot afford. *)
let push t ~flow ~key ~aux ~tie v =
  let uid = t.next_uid in
  t.next_uid <- uid + 1;
  t.total <- t.total + 1;
  let r = Flow_table.find t.rings flow in
  let was_empty = r.len = 0 in
  ring_push r ~key ~aux ~tie ~uid v;
  (* Only an idle flow's arrival enters the heap: a backlogged flow is
     already represented by its head packet, and this library's
     disciplines assign non-decreasing tags within a flow, so the head
     stays the flow's minimum. *)
  if was_empty then Iheap.add t.heap ~key ~tie ~uid flow

let pop_exn t =
  let flow = Iheap.min_elt_exn t.heap in
  Iheap.remove_root t.heap;
  let r = Flow_table.find t.rings flow in
  let i = r.head in
  t.last_key <- r.rkeys.(i);
  t.last_aux <- r.raux.(i);
  t.last_uid <- r.ruids.(i);
  t.last_flow <- flow;
  let v = r.rdata.(i) in
  r.head <- (i + 1) land (Array.length r.rdata - 1);
  r.len <- r.len - 1;
  t.total <- t.total - 1;
  (* Promote the successor: it becomes the flow's representative. *)
  if r.len > 0 then begin
    let j = r.head in
    Iheap.add t.heap ~key:r.rkeys.(j) ~tie:r.rties.(j) ~uid:r.ruids.(j) flow
  end;
  v

let last_key t = t.last_key
let last_aux t = t.last_aux
let last_uid t = t.last_uid
let last_flow t = t.last_flow

let pop t =
  if t.total = 0 then None
  else begin
    let v = pop_exn t in
    Some { key = t.last_key; aux = t.last_aux; uid = t.last_uid;
           flow = t.last_flow; value = v }
  end

let peek t =
  match Iheap.min t.heap with
  | None -> None
  | Some (key, flow) ->
    let r = Flow_table.find t.rings flow in
    let i = r.head in
    Some { key; aux = r.raux.(i); uid = r.ruids.(i); flow; value = r.rdata.(i) }

let size t = t.total
let is_empty t = t.total = 0
let backlog t flow = match Flow_table.find_opt t.rings flow with None -> 0 | Some r -> r.len
let active_flows t = Iheap.length t.heap

(* ------------------------------------------------------------------ *)
(* Eviction and flow teardown. All off the per-packet hot path: the
   O(F) heap scan only runs when a buffer policy or a flow closure
   actually removes something. *)

let heap_remove t flow =
  ignore (Iheap.remove_matching t.heap ~pred:(fun f -> f = flow))

let evict_front t flow =
  match Flow_table.find_opt t.rings flow with
  | None -> None
  | Some r when r.len = 0 -> None
  | Some r ->
    let i = r.head in
    let key = r.rkeys.(i) and aux = r.raux.(i) and uid = r.ruids.(i) and v = r.rdata.(i) in
    r.head <- (i + 1) land (Array.length r.rdata - 1);
    r.len <- r.len - 1;
    t.total <- t.total - 1;
    (* the head was the flow's heap representative: replace it *)
    heap_remove t flow;
    if r.len > 0 then begin
      let j = r.head in
      Iheap.add t.heap ~key:r.rkeys.(j) ~tie:r.rties.(j) ~uid:r.ruids.(j) flow
    end;
    Some { key; aux; uid; flow; value = v }

let evict_back t flow =
  match Flow_table.find_opt t.rings flow with
  | None -> None
  | Some r when r.len = 0 -> None
  | Some r ->
    let i = (r.head + r.len - 1) land (Array.length r.rdata - 1) in
    let key = r.rkeys.(i) and aux = r.raux.(i) and uid = r.ruids.(i) and v = r.rdata.(i) in
    r.len <- r.len - 1;
    t.total <- t.total - 1;
    (* the tail is the heap representative only when it was alone *)
    if r.len = 0 then heap_remove t flow;
    Some { key; aux; uid; flow; value = v }

let flush_flow t flow =
  match Flow_table.find_opt t.rings flow with
  | None -> []
  | Some r ->
    let n = r.len in
    let out =
      if n = 0 then []
      else begin
        let mask = Array.length r.rdata - 1 in
        List.init n (fun k ->
            let i = (r.head + k) land mask in
            { key = r.rkeys.(i); aux = r.raux.(i); uid = r.ruids.(i); flow;
              value = r.rdata.(i) })
      end
    in
    if n > 0 then begin
      t.total <- t.total - n;
      heap_remove t flow
    end;
    (* drop the ring itself: a recycled id re-grows from scratch and a
       burst's peak capacity is not pinned forever *)
    Flow_table.remove t.rings flow;
    out

let ring_capacity t flow =
  match Flow_table.find_opt t.rings flow with
  | None -> 0
  | Some r -> Array.length r.rdata
