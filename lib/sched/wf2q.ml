open Sfq_util
open Sfq_base

(* Both stages run on monomorphic float-keyed heaps. Packets wait in
   per-flow FIFOs ({!Flow_heap}): only each flow's oldest unreleased
   packet sits in [pending] (start tags are non-decreasing within a
   flow, eq. 4), so the pending stage costs O(log F). Released packets
   move to [eligible] keyed by finish tag, carrying their original
   push-order uid so the (tag, tie, uid) order is exactly the seed
   per-packet-heap order. *)
type t = {
  gps : Gps.t;
  pending : Packet.t Flow_heap.t;  (* key = start tag, aux = finish tag *)
  eligible : Packet.t Fheap.t;  (* key = finish tag *)
  counts : int Flow_table.t;
  tie : Tag_queue.tie;
  mutable last_now : float;
}

let tie_value tie flow =
  match (tie : Tag_queue.tie) with
  | Arrival -> 0.0
  | Low_rate w -> w flow
  | High_rate w -> -.w flow

let create ~capacity ?(tie = Tag_queue.Arrival) weights =
  let pending = Flow_heap.create () in
  let eligible = Fheap.create () in
  let real_system_empty () = Flow_heap.is_empty pending && Fheap.is_empty eligible in
  {
    gps = Gps.create ~capacity ~real_system_empty weights;
    pending;
    eligible;
    counts = Flow_table.create ~default:(fun _ -> 0);
    tie;
    last_now = 0.0;
  }

let enqueue t ~now pkt =
  t.last_now <- Float.max t.last_now now;
  let flow = pkt.Packet.flow in
  let stag, ftag = Gps.on_arrival t.gps ~now pkt in
  Flow_heap.push t.pending ~flow ~key:stag ~aux:ftag ~tie:(tie_value t.tie flow) pkt;
  Flow_table.set t.counts flow (Flow_table.find t.counts flow + 1)

(* Move packets the fluid system has started (S <= v) to the eligible
   heap. Releasing a flow's head exposes its successor in [pending], so
   the loop drains exactly the packets a global start-tag heap would. *)
let promote t ~now =
  let v = Gps.vtime t.gps ~now in
  let rec go () =
    match Flow_heap.peek t.pending with
    | Some e when e.Flow_heap.key <= v +. 1e-12 ->
      let e = Option.get (Flow_heap.pop t.pending) in
      Fheap.add t.eligible ~key:e.Flow_heap.aux
        ~tie:(tie_value t.tie e.Flow_heap.flow)
        ~uid:e.Flow_heap.uid e.Flow_heap.value;
      go ()
    | Some _ | None -> ()
  in
  go ()

let take t pkt =
  Flow_table.set t.counts pkt.Packet.flow (Flow_table.find t.counts pkt.Packet.flow - 1);
  Some pkt

let dequeue t ~now =
  t.last_now <- Float.max t.last_now now;
  promote t ~now;
  match Fheap.pop_elt t.eligible with
  | Some pkt -> take t pkt
  | None -> begin
    (* Work conservation: nothing eligible, serve the earliest start
       tag rather than idling. *)
    match Flow_heap.pop t.pending with
    | Some e -> take t e.Flow_heap.value
    | None -> None
  end

let peek t =
  promote t ~now:t.last_now;
  match Fheap.min_elt t.eligible with
  | Some pkt -> Some pkt
  | None -> begin
    match Flow_heap.peek t.pending with
    | Some e -> Some e.Flow_heap.value
    | None -> None
  end

let size t = Flow_heap.size t.pending + Fheap.length t.eligible
let backlog t flow = Flow_table.find t.counts flow

(* A flow's packets released to [eligible] are strictly older than its
   packets still in [pending] (promotion pops the flow's FIFO head),
   so Oldest looks in [eligible] first and Newest in [pending] first. *)
let evict t victim flow =
  let pred p = p.Packet.flow = flow in
  let found =
    match (victim : Sched.victim) with
    | Sched.Oldest -> (
      match Fheap.remove_matching t.eligible ~pred with
      | Some (_, p) -> Some p
      | None -> (
        match Flow_heap.evict_front t.pending flow with
        | Some e -> Some e.Flow_heap.value
        | None -> None))
    | Sched.Newest -> (
      match Flow_heap.evict_back t.pending flow with
      | Some e -> Some e.Flow_heap.value
      | None -> (
        match Fheap.remove_matching ~newest:true t.eligible ~pred with
        | Some (_, p) -> Some p
        | None -> None))
  in
  (match found with
  | Some _ -> Flow_table.set t.counts flow (Flow_table.find t.counts flow - 1)
  | None -> ());
  found

let close_flow t ~now flow =
  let pred p = p.Packet.flow = flow in
  let rec drain_eligible acc =
    match Fheap.remove_matching t.eligible ~pred with
    | Some (_, p) -> drain_eligible (p :: acc)
    | None -> List.rev acc
  in
  (* remove_matching takes ascending uid, so [released] is oldest
     first, and everything released precedes everything pending *)
  let released = drain_eligible [] in
  let waiting = List.map (fun e -> e.Flow_heap.value) (Flow_heap.flush_flow t.pending flow) in
  Flow_table.remove t.counts flow;
  Gps.forget_flow t.gps ~now flow;
  released @ waiting

let sched t =
  {
    Sched.name = "wf2q";
    enqueue = (fun ~now pkt -> enqueue t ~now pkt);
    dequeue = (fun ~now -> dequeue t ~now);
    peek = (fun () -> peek t);
    size = (fun () -> size t);
    backlog = (fun flow -> backlog t flow);
    evict = (fun ~now:_ victim flow -> evict t victim flow);
    close_flow = (fun ~now flow -> close_flow t ~now flow);
  }
