(** Int-keyed sibling of {!Flow_heap} for the fixed-point fast path.

    Same structure — one FIFO ring per flow, heads-only min-heap, O(log
    F) pops flat in queued packets — but every ordering field is an int
    (a {!Sfq_fastpath.Tag} scaled virtual time, an order-preserving int
    encoding of the tie value, and the push-order uid), and the hot
    dequeue path is allocation-free: {!pop_exn} returns the payload
    directly and deposits the removed entry's ordering fields in
    scratch slots readable via {!last_key} / {!last_aux} / {!last_uid}
    / {!last_flow}.

    Tie order is FIFO-stable exactly as in {!Flow_heap}: pop order is
    ascending [(key, tie, uid)] with uids assigned in push order, so
    entries equal on [(key, tie)] leave in arrival order. The
    differential suite relies on this matching the float heap's order.

    Precondition: keys pushed to the {e same flow} must be
    non-decreasing, and [tie] must be constant per flow while the flow
    is backlogged. *)

open Sfq_base

type 'a t

type 'a popped = {
  key : int;  (** ordering tag the entry was pushed with *)
  aux : int;  (** caller's auxiliary int (e.g. SFQ's finish tag) *)
  uid : int;  (** push-order number, unique across the whole store *)
  flow : Packet.flow;
  value : 'a;
}

val create : ?capacity:int -> unit -> 'a t
(** [capacity] pre-sizes the flow-head heap (one slot per backlogged
    flow, not per packet). *)

val push : 'a t -> flow:Packet.flow -> key:int -> aux:int -> tie:int -> 'a -> unit
(** Append to [flow]'s FIFO. [tie] refines ordering among equal keys of
    different flows (ascending, then push order); [aux] is stored and
    returned untouched ([aux] is required rather than optional because
    an optional int argument boxes at every call site). Allocation-free
    once the flow's ring and the heap have reached peak capacity. *)

val pop_exn : 'a t -> 'a
(** Remove the entry with the smallest [(key, tie, uid)] and return its
    payload without allocating. Its ordering fields are left in the
    scratch slots ({!last_key}, {!last_aux}, {!last_uid}, {!last_flow})
    until the next pop. @raise Invalid_argument on an empty store. *)

val last_key : 'a t -> int
(** Key of the entry removed by the most recent {!pop_exn}. *)

val last_aux : 'a t -> int
(** Aux of the entry removed by the most recent {!pop_exn}. *)

val last_uid : 'a t -> int
(** Uid of the entry removed by the most recent {!pop_exn}. *)

val last_flow : 'a t -> Packet.flow
(** Flow of the entry removed by the most recent {!pop_exn}. *)

val pop : 'a t -> 'a popped option
(** Allocating convenience wrapper over {!pop_exn}. *)

val peek : 'a t -> 'a popped option
(** Like {!pop} without removing. *)

val size : 'a t -> int
(** Total queued entries across all flows. *)

val is_empty : 'a t -> bool

val backlog : 'a t -> Packet.flow -> int
(** Queued entries of one flow. *)

val active_flows : 'a t -> int
(** Number of backlogged flows (= current heap size). *)

val evict_front : 'a t -> Packet.flow -> 'a popped option
(** Remove [flow]'s oldest queued entry (its head), promoting the
    successor into the heap; [None] if the flow has nothing queued.
    O(F) heap scan — eviction is a buffer-overflow path, not the
    per-packet hot path. *)

val evict_back : 'a t -> Packet.flow -> 'a popped option
(** Remove [flow]'s newest queued entry (its tail). O(1) unless the
    flow empties (then its heap entry is removed, O(F)). *)

val flush_flow : 'a t -> Packet.flow -> 'a popped list
(** Remove every queued entry of [flow], oldest first, and discard the
    flow's ring entirely so a recycled id re-grows from scratch.
    Returns [[]] for an unknown or empty flow. *)

val ring_capacity : 'a t -> Packet.flow -> int
(** Allocated ring slots for [flow] (0 when it holds no ring) — exposed
    so churn tests can assert {!flush_flow} releases burst capacity. *)
