(** Per-flow FIFO packet queues.

    Shared engine of the round-robin disciplines (WRR, DRR), which keep
    one FIFO per flow and rotate among flows rather than tagging
    individual packets. *)

open Sfq_base

type t

val create : unit -> t
val push : t -> Packet.t -> unit
val head : t -> Packet.flow -> Packet.t option
val pop : t -> Packet.flow -> Packet.t option
val flow_is_empty : t -> Packet.flow -> bool
val backlog : t -> Packet.flow -> int
val size : t -> int
(** Total packets across all flows. *)

val evict : t -> Sched.victim -> Packet.flow -> Packet.t option
(** Remove [flow]'s oldest or newest queued packet without serving it;
    [None] when the flow has no backlog. [Newest] rebuilds the queue
    (O(backlog)) — fine off the hot path. *)

val flush : t -> Packet.flow -> Packet.t list
(** Remove all of [flow]'s packets, oldest first, discarding its queue
    so a recycled id starts empty. *)
