open Sfq_util
open Sfq_base

type t = {
  capacity : float;
  weights : Weights.t;
  real_system_empty : unit -> bool;
  mutable v : float;
  mutable updated : float;  (* real time at which [v] was last correct *)
  mutable sum_active : float;  (* Σ r_j over the fluid-backlogged set *)
  backlogged : (Packet.flow, unit) Hashtbl.t;
  finish : float Flow_table.t;  (* per-flow largest finish tag this busy period *)
  (* Fluid departure events: key = finish tag, payload (and uid, for
     the explicit finish-then-flow order) = flow. Entries go stale when
     a flow receives more packets (its departure moves later); stale
     entries are detected on pop by comparing against [finish]. *)
  departures : Packet.flow Fheap.t;
}

let create ~capacity ?(real_system_empty = fun () -> true) weights =
  if capacity <= 0.0 then invalid_arg "Gps.create: capacity must be positive";
  {
    capacity;
    weights;
    real_system_empty;
    v = 0.0;
    updated = 0.0;
    sum_active = 0.0;
    backlogged = Hashtbl.create 16;
    finish = Flow_table.create ~default:(fun _ -> 0.0);
    departures = Fheap.create ();
  }

let depart t flow =
  Hashtbl.remove t.backlogged flow;
  t.sum_active <- t.sum_active -. Weights.get t.weights flow;
  if Hashtbl.length t.backlogged = 0 then t.sum_active <- 0.0

let rec advance t ~now =
  if t.sum_active > 0.0 then begin
    match Fheap.min t.departures with
    | Some (tag, flow)
      when (not (Hashtbl.mem t.backlogged flow)) || tag < Flow_table.find t.finish flow ->
      (* Stale event: the flow already departed, or received more
         packets and will depart later (a fresher event is queued). *)
      ignore (Fheap.pop t.departures);
      advance t ~now
    | Some (tag, flow) ->
      let dt = (tag -. t.v) *. t.sum_active /. t.capacity in
      if t.updated +. dt <= now then begin
        ignore (Fheap.pop t.departures);
        t.v <- tag;
        t.updated <- t.updated +. dt;
        depart t flow;
        advance t ~now
      end
      else begin
        t.v <- t.v +. ((now -. t.updated) *. t.capacity /. t.sum_active);
        t.updated <- now
      end
    | None ->
      (* sum_active > 0 but no events: impossible by construction. *)
      assert false
  end
  else t.updated <- now

let on_arrival t ~now pkt =
  advance t ~now;
  if Hashtbl.length t.backlogged = 0 && t.real_system_empty () then begin
    (* New busy period (fluid AND real systems drained): the round
       number restarts. If real packets were still queued, a reset
       would give this arrival a smaller tag than its flow's queued
       predecessors. *)
    t.v <- 0.0;
    Flow_table.clear t.finish;
    Fheap.clear t.departures
  end;
  let flow = pkt.Packet.flow in
  let rate = Weights.get t.weights flow in
  let prev_finish = Flow_table.find t.finish flow in
  let start_tag = Float.max t.v prev_finish in
  let finish_tag = start_tag +. (float_of_int pkt.Packet.len /. rate) in
  Flow_table.set t.finish flow finish_tag;
  if not (Hashtbl.mem t.backlogged flow) then begin
    Hashtbl.replace t.backlogged flow ();
    t.sum_active <- t.sum_active +. rate
  end;
  Fheap.add t.departures ~key:finish_tag ~tie:0.0 ~uid:flow flow;
  (start_tag, finish_tag)

let vtime t ~now =
  advance t ~now;
  t.v

let backlogged_flows t = Hashtbl.length t.backlogged

let forget_flow t ~now flow =
  advance t ~now;
  (* Remaining fluid backlog of the flow vanishes (the flow closed);
     its queued departure events go stale and are skipped on pop — a
     later reuse of the id re-enters with finish tag 0, i.e. start tag
     max(v, 0) = v. *)
  if Hashtbl.mem t.backlogged flow then depart t flow;
  Flow_table.remove t.finish flow
