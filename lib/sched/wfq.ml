open Sfq_base

(* Practical clock: dv/dt = capacity / Σ weights of really-backlogged
   flows; frozen while the queue is empty, reset when the server polls
   an empty queue (end of the real busy period). *)
type real_clock = {
  capacity : float;
  weights : Weights.t;
  mutable v : float;
  mutable updated : float;
  mutable sum : float;
  counts : int Flow_table.t;
  finish : float Flow_table.t;
}

type clock = Fluid of Gps.t | Real of real_clock

type t = { clock : clock; queue : Tag_queue.t }

let create ~capacity ?(clock = `Fluid) ?tie weights =
  let queue = Tag_queue.create ?tie () in
  let clock =
    match clock with
    | `Fluid ->
      Fluid
        (Gps.create ~capacity
           ~real_system_empty:(fun () -> Tag_queue.is_empty queue)
           weights)
    | `Real ->
      if capacity <= 0.0 then invalid_arg "Wfq.create: capacity must be positive";
      Real
        {
          capacity;
          weights;
          v = 0.0;
          updated = 0.0;
          sum = 0.0;
          counts = Flow_table.create ~default:(fun _ -> 0);
          finish = Flow_table.create ~default:(fun _ -> 0.0);
        }
  in
  { clock; queue }

let advance_real rc ~now =
  if rc.sum > 0.0 then rc.v <- rc.v +. ((now -. rc.updated) *. rc.capacity /. rc.sum);
  rc.updated <- now

let enqueue t ~now pkt =
  let finish_tag =
    match t.clock with
    | Fluid gps ->
      let _start_tag, finish_tag = Gps.on_arrival gps ~now pkt in
      finish_tag
    | Real rc ->
      advance_real rc ~now;
      let flow = pkt.Packet.flow in
      let rate = Weights.get rc.weights flow in
      let start_tag = Float.max rc.v (Flow_table.find rc.finish flow) in
      let finish_tag = start_tag +. (float_of_int pkt.Packet.len /. rate) in
      Flow_table.set rc.finish flow finish_tag;
      let n = Flow_table.find rc.counts flow in
      Flow_table.set rc.counts flow (n + 1);
      if n = 0 then rc.sum <- rc.sum +. rate;
      finish_tag
  in
  Tag_queue.push t.queue ~tag:finish_tag pkt

let dequeue t ~now =
  match Tag_queue.pop t.queue with
  | None ->
    (match t.clock with
    | Fluid _ -> () (* the fluid system resets itself per fluid busy period *)
    | Real rc ->
      (* Real busy period over: restart the clock. *)
      advance_real rc ~now;
      rc.v <- 0.0;
      rc.updated <- now;
      Flow_table.clear rc.finish);
    None
  | Some (_, p) ->
    (match t.clock with
    | Fluid _ -> ()
    | Real rc ->
      advance_real rc ~now;
      let flow = p.Packet.flow in
      let n = Flow_table.find rc.counts flow - 1 in
      Flow_table.set rc.counts flow n;
      if n = 0 then begin
        rc.sum <- rc.sum -. Weights.get rc.weights flow;
        if rc.sum < 1e-9 then rc.sum <- 0.0
      end);
    Some p

let peek t = match Tag_queue.peek t.queue with None -> None | Some (_, p) -> Some p
let size t = Tag_queue.size t.queue
let backlog t flow = Tag_queue.backlog t.queue flow

let vtime t ~now =
  match t.clock with
  | Fluid gps -> Gps.vtime gps ~now
  | Real rc ->
    advance_real rc ~now;
    rc.v

(* Removing a packet without serving it must mirror dequeue's
   backlogged-set bookkeeping for the real clock, or [sum] would keep
   counting a drained flow forever and v would run slow. *)
let real_forget_one rc ~now flow =
  advance_real rc ~now;
  let n = Flow_table.find rc.counts flow - 1 in
  Flow_table.set rc.counts flow n;
  if n = 0 then begin
    rc.sum <- rc.sum -. Weights.get rc.weights flow;
    if rc.sum < 1e-9 then rc.sum <- 0.0
  end

let evict t ~now victim flow =
  match Tag_queue.evict t.queue victim flow with
  | None -> None
  | Some p ->
    (match t.clock with Fluid _ -> () | Real rc -> real_forget_one rc ~now flow);
    Some p

let close_flow t ~now flow =
  let flushed = Tag_queue.flush t.queue flow in
  (match t.clock with
  | Fluid gps -> Gps.forget_flow gps ~now flow
  | Real rc ->
    List.iter (fun _ -> real_forget_one rc ~now flow) flushed;
    Flow_table.remove rc.finish flow);
  flushed

let sched t =
  {
    Sched.name = "wfq";
    enqueue = (fun ~now pkt -> enqueue t ~now pkt);
    dequeue = (fun ~now -> dequeue t ~now);
    peek = (fun () -> peek t);
    size = (fun () -> size t);
    backlog = (fun flow -> backlog t flow);
    evict = (fun ~now victim flow -> evict t ~now victim flow);
    close_flow = (fun ~now flow -> close_flow t ~now flow);
  }
