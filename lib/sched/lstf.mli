(** Least-Slack-Time-First (Mittal et al., "Universal Packet
    Scheduling", NSDI '16).

    Every packet carries a {e deadline} — the absolute time by which it
    should be delivered under some target schedule — and a {e residual}
    — the remaining no-queueing time between the moment it starts
    service here and its delivery (its own transmission plus every
    downstream transmission and propagation). The slack of a queued
    packet at time [t] is [deadline − residual − t]: the queueing time
    it can still afford. Serving the smallest slack first is, at any
    single instant, the same order as serving the smallest
    [deadline − residual], so the discipline reduces to a static
    per-packet priority — which is what makes it expressible both here
    (a {!Tag_queue} tag) and as a {!Sfq_pifo.Rank_program} rank.

    The replay-universality result motivating the port: with deadlines
    set to the output times of a recorded schedule and residuals
    computed over the route, LSTF re-produces that schedule
    packet-for-packet (see {!Sfq_oracle.Replay} for the single-hop
    harness and [Net_sweep] for the multi-hop one).

    Deadlines are caller-supplied, so nothing forces them to be
    non-decreasing within a flow. To honor the {!Sfq_base.Sched}
    contract (per-flow FIFO; the {!Sfq_sched.Flow_heap} monotone-tag
    invariant), each flow's rank is clamped to a monotone floor: a
    packet whose raw rank would undercut its flow's last rank enters at
    that floor instead. Eviction keeps the floor (tags never roll
    back); {!close_flow} forgets it, so a reopened flow re-enters on
    its raw deadlines. *)

open Sfq_base

type t

val create :
  ?tie:Tag_queue.tie ->
  ?residual:(Packet.t -> float) ->
  deadline:(Packet.t -> float) ->
  unit ->
  t
(** [deadline] and [residual] are evaluated once per packet, at
    enqueue. [residual] defaults to [fun _ -> 0.0] (a pure
    earliest-deadline order); [tie] refines ordering among equal ranks
    of different flows (default [Arrival] — FIFO, which the replay
    contract requires). *)

val enqueue : t -> now:float -> Packet.t -> unit
val dequeue : t -> now:float -> Packet.t option
val peek : t -> Packet.t option
val size : t -> int
val backlog : t -> Packet.flow -> int

val rank : t -> Packet.t -> float
(** The rank the packet would enqueue at right now —
    [max (deadline − residual) floor] — without enqueueing it. *)

val last_rank : t -> Packet.flow -> float option
(** The flow's monotone floor: the rank of its most recent enqueue.
    [None] before the first enqueue or after {!close_flow}. *)

val evict : t -> Sched.victim -> Packet.flow -> Packet.t option
(** Remove one queued packet without serving it. The flow's rank floor
    is untouched: tags never roll back. *)

val close_flow : t -> Packet.flow -> Packet.t list
(** Flush the flow's queued packets (oldest first) and forget its rank
    floor — a reopened flow re-enters on its raw deadlines. *)

val sched : t -> Sched.t
(** The {!Sfq_base.Sched} view, named ["lstf"]. *)
