open Sfq_base

type t = { gps : Gps.t; queue : Tag_queue.t }

let create ~capacity ?tie weights =
  let queue = Tag_queue.create ?tie () in
  {
    gps =
      Gps.create ~capacity ~real_system_empty:(fun () -> Tag_queue.is_empty queue) weights;
    queue;
  }

let enqueue t ~now pkt =
  let start_tag, _finish_tag = Gps.on_arrival t.gps ~now pkt in
  Tag_queue.push t.queue ~tag:start_tag pkt

let dequeue t ~now:_ =
  match Tag_queue.pop t.queue with None -> None | Some (_, p) -> Some p

let peek t = match Tag_queue.peek t.queue with None -> None | Some (_, p) -> Some p
let size t = Tag_queue.size t.queue
let backlog t flow = Tag_queue.backlog t.queue flow

(* The fluid system is not told about evictions: the evicted packet's
   fluid service stays charged to the flow (conservative, tags only
   move later). Closing does forget the flow fluid-side. *)
let evict t victim flow = Tag_queue.evict t.queue victim flow

let close_flow t ~now flow =
  let flushed = Tag_queue.flush t.queue flow in
  Gps.forget_flow t.gps ~now flow;
  flushed

let sched t =
  {
    Sched.name = "fqs";
    enqueue = (fun ~now pkt -> enqueue t ~now pkt);
    dequeue = (fun ~now -> dequeue t ~now);
    peek = (fun () -> peek t);
    size = (fun () -> size t);
    backlog = (fun flow -> backlog t flow);
    evict = (fun ~now:_ victim flow -> evict t victim flow);
    close_flow = (fun ~now flow -> close_flow t ~now flow);
  }
