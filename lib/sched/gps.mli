(** Fluid bit-by-bit weighted round-robin (GPS) virtual time.

    WFQ (a.k.a. PGPS) stamps packets with start/finish tags computed
    against the round number [v(t)] of a hypothetical fluid server of
    {e assumed} capacity [c] (paper eq. 3):

    {v dv/dt = c / Σ_{j ∈ B(t)} r_j v}

    where [B(t)] is the set of fluid-backlogged flows. This module
    simulates that fluid system in real time: [v] advances piecewise
    linearly between fluid departure events (a flow leaves [B] when [v]
    reaches the flow's largest finish tag). This is the computation the
    paper calls "computationally expensive", and its reliance on the
    {e assumed} capacity is exactly what breaks WFQ on variable-rate
    servers (Example 2) — the fluid clock keeps running at [c] no
    matter how fast the real server drains packets.

    [v] resets to 0 (and all per-flow tags clear) at the start of a new
    busy period — but only when the {e real} packet system is also
    empty ([real_system_empty]). When the actual server is slower than
    the assumed capacity the fluid system can drain while real packets
    (carrying old tags) are still queued; resetting then would hand
    later packets smaller tags than earlier queued ones of the same
    flow, breaking per-flow FIFO. With matching rates the two systems
    share busy periods and the guard never fires, so the textbook
    behaviour is unchanged. *)

open Sfq_base

type t

val create : capacity:float -> ?real_system_empty:(unit -> bool) -> Weights.t -> t
(** [real_system_empty] (default: always [true]) tells the clock
    whether the real packet queue has drained; see above.
    @raise Invalid_argument if [capacity <= 0]. *)

val on_arrival : t -> now:float -> Packet.t -> float * float
(** Advance the fluid system to [now], register the packet's arrival in
    it, and return the packet's [(start_tag, finish_tag)] per eqs. 1–2.
    Calls must have non-decreasing [now]. *)

val vtime : t -> now:float -> float
(** [v(now)] (advances the fluid simulation as a side effect). *)

val backlogged_flows : t -> int
(** Size of the fluid backlogged set [B]; exposed for tests. *)

val forget_flow : t -> now:float -> Packet.flow -> unit
(** Flow closure: advance to [now], drop the flow from the fluid
    backlogged set (its remaining fluid backlog vanishes) and forget
    its finish tag, so a recycled id re-enters as a fresh flow. Stale
    departure events are detected and skipped on pop. *)
