open Sfq_base

type t = { weights : Weights.t; eat : Eat.t; queue : Tag_queue.t }

let create ?tie weights = { weights; eat = Eat.create (); queue = Tag_queue.create ?tie () }

let packet_rate t pkt =
  match pkt.Packet.rate with Some r -> r | None -> Weights.get t.weights pkt.Packet.flow

let enqueue t ~now pkt =
  let rate = packet_rate t pkt in
  let eat = Eat.on_arrival t.eat ~now ~flow:pkt.Packet.flow ~len:pkt.Packet.len ~rate in
  let stamp = eat +. (float_of_int pkt.Packet.len /. rate) in
  Tag_queue.push t.queue ~tag:stamp pkt

let dequeue t ~now:_ =
  match Tag_queue.pop t.queue with None -> None | Some (_, p) -> Some p

let peek t = match Tag_queue.peek t.queue with None -> None | Some (_, p) -> Some p
let size t = Tag_queue.size t.queue
let backlog t flow = Tag_queue.backlog t.queue flow

let evict t victim flow = Tag_queue.evict t.queue victim flow

(* Forgetting the EAT floor is what re-admits a returning flow at real
   time instead of its stale reserved-rate schedule — Virtual Clock's
   well-known memory of past idleness does not survive a close. *)
let close_flow t flow =
  let flushed = Tag_queue.flush t.queue flow in
  Eat.reset_flow t.eat flow;
  flushed

let sched t =
  {
    Sched.name = "virtual-clock";
    enqueue = (fun ~now pkt -> enqueue t ~now pkt);
    dequeue = (fun ~now -> dequeue t ~now);
    peek = (fun () -> peek t);
    size = (fun () -> size t);
    backlog = (fun flow -> backlog t flow);
    evict = (fun ~now:_ victim flow -> evict t victim flow);
    close_flow = (fun ~now:_ flow -> close_flow t flow);
  }
