open Sfq_base

type t = {
  credits : Packet.flow -> int;
  queues : Flow_queues.t;
  active : Packet.flow Queue.t;
  in_active : bool Flow_table.t;
  mutable current : (Packet.flow * int) option;  (* flow, remaining credits *)
}

let create ?credits weights =
  let credits =
    match credits with
    | Some f -> f
    | None -> fun flow -> Stdlib.max 1 (int_of_float (Float.ceil (Weights.get weights flow)))
  in
  {
    credits;
    queues = Flow_queues.create ();
    active = Queue.create ();
    in_active = Flow_table.create ~default:(fun _ -> false);
    current = None;
  }

let enqueue t ~now:_ pkt =
  let f = pkt.Packet.flow in
  Flow_queues.push t.queues pkt;
  let is_current = match t.current with Some (c, _) -> c = f | None -> false in
  if (not (Flow_table.find t.in_active f)) && not is_current then begin
    Queue.push f t.active;
    Flow_table.set t.in_active f true
  end

let rec dequeue t ~now =
  match t.current with
  | Some (f, credits) when credits > 0 -> begin
    match Flow_queues.pop t.queues f with
    | Some p ->
      if Flow_queues.flow_is_empty t.queues f then t.current <- None
      else t.current <- Some (f, credits - 1);
      Some p
    | None ->
      t.current <- None;
      dequeue t ~now
  end
  | Some (f, _) ->
    (* Credits exhausted: back of the line if still backlogged. *)
    if not (Flow_queues.flow_is_empty t.queues f) then begin
      Queue.push f t.active;
      Flow_table.set t.in_active f true
    end;
    t.current <- None;
    dequeue t ~now
  | None -> begin
    match Queue.take_opt t.active with
    | None -> None
    | Some f ->
      Flow_table.set t.in_active f false;
      if Flow_queues.flow_is_empty t.queues f then dequeue t ~now
      else begin
        t.current <- Some (f, t.credits f);
        dequeue t ~now
      end
  end

let peek t =
  (* The next packet is always the head of some flow's FIFO; replaying
     the cursor decisions on copies finds which one. *)
  let active = Queue.copy t.active in
  let rec go current =
    match current with
    | Some (f, credits) when credits > 0 -> begin
      match Flow_queues.head t.queues f with
      | Some p -> Some p
      | None -> go None
    end
    | Some (f, _) ->
      if not (Flow_queues.flow_is_empty t.queues f) then Queue.push f active;
      go None
    | None -> begin
      match Queue.take_opt active with
      | None -> None
      | Some f ->
        if Flow_queues.flow_is_empty t.queues f then go None
        else go (Some (f, t.credits f))
    end
  in
  go t.current

let size t = Flow_queues.size t.queues
let backlog t flow = Flow_queues.backlog t.queues flow

let end_turn_if_empty t flow =
  if Flow_queues.flow_is_empty t.queues flow then begin
    match t.current with Some (c, _) when c = flow -> t.current <- None | _ -> ()
  end

let evict t victim flow =
  match Flow_queues.evict t.queues victim flow with
  | None -> None
  | Some p ->
    end_turn_if_empty t flow;
    Some p

let close_flow t flow =
  let flushed = Flow_queues.flush t.queues flow in
  (match t.current with Some (c, _) when c = flow -> t.current <- None | _ -> ());
  flushed

let sched t =
  {
    Sched.name = "wrr";
    enqueue = (fun ~now pkt -> enqueue t ~now pkt);
    dequeue = (fun ~now -> dequeue t ~now);
    peek = (fun () -> peek t);
    size = (fun () -> size t);
    backlog = (fun flow -> backlog t flow);
    evict = (fun ~now:_ victim flow -> evict t victim flow);
    close_flow = (fun ~now:_ flow -> close_flow t flow);
  }
