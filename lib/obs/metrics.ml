open Sfq_util

type counter = { mutable c : float }
type gauge = { mutable g : float; mutable g_max : float }

type instrument =
  | I_counter of counter
  | I_gauge of gauge
  | I_histo of Histogram.t

type t = { table : (string * int option, instrument) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let register t ~name ~flow ~make ~cast =
  let key = (name, flow) in
  match Hashtbl.find_opt t.table key with
  | Some i -> cast i
  | None ->
    let i = make () in
    Hashtbl.add t.table key i;
    cast i

let counter t ?flow name =
  register t ~name ~flow
    ~make:(fun () -> I_counter { c = 0.0 })
    ~cast:(function
      | I_counter c -> c
      | _ -> invalid_arg (Printf.sprintf "Metrics.counter: %S is not a counter" name))

let incr c = c.c <- c.c +. 1.0

let add c x =
  if x < 0.0 then invalid_arg "Metrics.add: negative increment";
  c.c <- c.c +. x

let counter_value c = c.c

let gauge t ?flow name =
  register t ~name ~flow
    ~make:(fun () -> I_gauge { g = 0.0; g_max = neg_infinity })
    ~cast:(function
      | I_gauge g -> g
      | _ -> invalid_arg (Printf.sprintf "Metrics.gauge: %S is not a gauge" name))

let set_gauge g x =
  g.g <- x;
  if x > g.g_max then g.g_max <- x

let gauge_value g = g.g
let gauge_max g = g.g_max

let histogram t ?flow ~lo ~hi ~bins name =
  register t ~name ~flow
    ~make:(fun () -> I_histo (Histogram.create ~lo ~hi ~bins))
    ~cast:(function
      | I_histo h -> h
      | _ -> invalid_arg (Printf.sprintf "Metrics.histogram: %S is not a histogram" name))

let observe t ?flow ~lo ~hi ~bins name x =
  Histogram.add (histogram t ?flow ~lo ~hi ~bins name) x

type value =
  | Counter of float
  | Gauge of { value : float; max : float }
  | Histo of Histogram.t

type sample = { name : string; flow : int option; value : value }

let snapshot t =
  Hashtbl.fold
    (fun (name, flow) i acc ->
      let value =
        match i with
        | I_counter c -> Counter c.c
        | I_gauge g -> Gauge { value = g.g; max = g.g_max }
        | I_histo h -> Histo h
      in
      { name; flow; value } :: acc)
    t.table []
  |> List.sort (fun a b ->
         match String.compare a.name b.name with
         | 0 -> compare a.flow b.flow
         | c -> c)

let render t =
  let table = Text_table.create [ "metric"; "flow"; "kind"; "value" ] in
  List.iter
    (fun s ->
      let flow = match s.flow with None -> "-" | Some f -> string_of_int f in
      let kind, value =
        match s.value with
        | Counter c -> ("counter", Printf.sprintf "%.0f" c)
        | Gauge { value; max } ->
          ( "gauge",
            if max = neg_infinity then "unset"
            else Printf.sprintf "%g (max %g)" value max )
        | Histo h ->
          ( "histogram",
            if Histogram.count h = 0 then "empty"
            else
              Printf.sprintf "n=%d p50=%.6g p99=%.6g" (Histogram.count h)
                (Histogram.quantile h 0.5) (Histogram.quantile h 0.99) )
      in
      Text_table.add_row table [ s.name; flow; kind; value ])
    (snapshot t);
  Text_table.render table
