(** Metrics registry: named counters, gauges and histograms with an
    optional per-flow label.

    One registry typically spans a whole experiment; instruments are
    named hierarchically by convention ("server.injected",
    "sim.events") and a flow label distinguishes per-flow series of the
    same name. Registering the same (name, flow) twice returns the same
    instrument — wiring code can re-register per packet without
    bookkeeping, at the cost of one hash lookup (hold on to the
    instrument where that matters).

    Instruments are deliberately primitive:
    - a {e counter} is a monotonically growing float (packets, bits);
    - a {e gauge} is a last-value-wins float with a high-water mark
      ({!gauge_max}) — backlogs, queue depths;
    - a {e histogram} is an {!Sfq_util.Histogram} (fixed bins,
      saturating ends), quantile-queryable via
      [Sfq_util.Histogram.quantile].

    {!snapshot} returns every instrument in a stable order (name, then
    unlabelled before labelled, then flow id) for rendering or export;
    {!render} is the ready-made text table. *)

type t

val create : unit -> t

type counter
type gauge

val counter : t -> ?flow:int -> string -> counter
val incr : counter -> unit
val add : counter -> float -> unit
(** @raise Invalid_argument on a negative increment. *)

val counter_value : counter -> float

val gauge : t -> ?flow:int -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val gauge_max : gauge -> float
(** Largest value ever set; [neg_infinity] before the first set. *)

val histogram :
  t -> ?flow:int -> lo:float -> hi:float -> bins:int -> string ->
  Sfq_util.Histogram.t
(** Re-registering an existing (name, flow) returns the existing
    histogram; its shape wins over the arguments. *)

val observe : t -> ?flow:int -> lo:float -> hi:float -> bins:int -> string ->
  float -> unit
(** [histogram] + [Histogram.add] in one call. *)

(** {1 Snapshots} *)

type value =
  | Counter of float
  | Gauge of { value : float; max : float }
  | Histo of Sfq_util.Histogram.t

type sample = { name : string; flow : int option; value : value }

val snapshot : t -> sample list
(** Sorted by [(name, flow)], unlabelled first. The histogram in a
    sample is the live instrument — copy before mutating. *)

val render : t -> string
(** Text table: name, flow, kind, value (count / value+max /
    count+p50+p99). *)
