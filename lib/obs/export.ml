let jsonl t =
  let b = Buffer.create 4096 in
  Tracer.iter t ~f:(fun e ->
      Buffer.add_string b (Event.to_jsonl e);
      Buffer.add_char b '\n');
  Buffer.contents b

let write_file ~path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let write_jsonl t ~path = write_file ~path (jsonl t)

(* --- Chrome trace_event ------------------------------------------- *)

let num f = if Float.is_finite f then Printf.sprintf "%.12g" f else "0"
let us s = num (s *. 1e6)

let chrome ?(name = "sfq") t =
  let b = Buffer.create 8192 in
  let first = ref true in
  let emit line =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b ("    " ^ line)
  in
  Buffer.add_string b "{\n  \"traceEvents\": [\n";
  emit
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":%S}}"
       name);
  emit
    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"scheduler\"}}";
  (* first pass: discover flows (for track naming) and per-packet tag
     assignments; remember each packet's arrival so dequeues close a
     slice. Keys are (flow, seq) — unique per packet for the flat
     schedulers this exporter is built for. *)
  let flows = Hashtbl.create 16 in
  let tags : (int * int, float * float) Hashtbl.t = Hashtbl.create 256 in
  Tracer.iter t ~f:(fun (e : Event.t) ->
      if e.flow >= 0 && not (Hashtbl.mem flows e.flow) then
        Hashtbl.add flows e.flow ();
      if e.kind = Tag then Hashtbl.replace tags (e.flow, e.seq) (e.stag, e.ftag));
  Hashtbl.fold (fun f () acc -> f :: acc) flows []
  |> List.sort compare
  |> List.iter (fun f ->
         emit
           (Printf.sprintf
              "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"flow %d\"}}"
              (f + 1) f));
  let pkt_args flow seq len =
    match Hashtbl.find_opt tags (flow, seq) with
    | Some (stag, ftag) ->
      Printf.sprintf "{\"len\":%d,\"stag\":%s,\"ftag\":%s}" len (num stag) (num ftag)
    | None -> Printf.sprintf "{\"len\":%d}" len
  in
  let arrivals : (int * int, float * int) Hashtbl.t = Hashtbl.create 256 in
  let counter_point ~at v =
    if not (Float.is_nan v) then
      emit
        (Printf.sprintf
           "{\"name\":\"v(t)\",\"ph\":\"C\",\"ts\":%s,\"pid\":1,\"args\":{\"v\":%s}}"
           (us at) (num v))
  in
  Tracer.iter t ~f:(fun (e : Event.t) ->
      match e.kind with
      | Arrival -> Hashtbl.replace arrivals (e.flow, e.seq) (e.time, e.len)
      | Tag -> counter_point ~at:e.time e.vtime
      | Dequeue -> begin
        counter_point ~at:e.time e.vtime;
        match Hashtbl.find_opt arrivals (e.flow, e.seq) with
        | Some (arrived, _) ->
          Hashtbl.remove arrivals (e.flow, e.seq);
          emit
            (Printf.sprintf
               "{\"name\":\"f%d#%d\",\"cat\":\"packet\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":%d,\"args\":%s}"
               e.flow e.seq (us arrived)
               (us (e.time -. arrived))
               (e.flow + 1)
               (pkt_args e.flow e.seq e.len))
        | None ->
          (* its arrival was overwritten by ring wrap-around: an
             instant at the dequeue is all we can place *)
          emit
            (Printf.sprintf
               "{\"name\":\"f%d#%d dequeue\",\"cat\":\"packet\",\"ph\":\"i\",\"ts\":%s,\"pid\":1,\"tid\":%d,\"s\":\"t\",\"args\":%s}"
               e.flow e.seq (us e.time) (e.flow + 1)
               (pkt_args e.flow e.seq e.len))
      end
      | Drop ->
        Hashtbl.remove arrivals (e.flow, e.seq);
        emit
          (Printf.sprintf
             "{\"name\":\"f%d#%d drop\",\"cat\":\"packet\",\"ph\":\"i\",\"ts\":%s,\"pid\":1,\"tid\":%d,\"s\":\"t\",\"args\":%s}"
             e.flow e.seq (us e.time) (e.flow + 1)
             (pkt_args e.flow e.seq e.len))
      | Busy | Idle ->
        emit
          (Printf.sprintf
             "{\"name\":%S,\"cat\":\"server\",\"ph\":\"i\",\"ts\":%s,\"pid\":1,\"tid\":0,\"s\":\"t\"}"
             (Event.kind_to_string e.kind) (us e.time)));
  (* packets still queued at export: instants at their arrival *)
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) arrivals []
  |> List.sort compare
  |> List.iter (fun ((flow, seq), (at, len)) ->
         emit
           (Printf.sprintf
              "{\"name\":\"f%d#%d queued\",\"cat\":\"packet\",\"ph\":\"i\",\"ts\":%s,\"pid\":1,\"tid\":%d,\"s\":\"t\",\"args\":%s}"
              flow seq (us at) (flow + 1) (pkt_args flow seq len)));
  Buffer.add_string b "\n  ],\n  \"displayTimeUnit\": \"ms\"\n}\n";
  Buffer.contents b

let write_chrome ?name t ~path = write_file ~path (chrome ?name t)
