(** The trace event vocabulary of {!Tracer}.

    One record per scheduler-level occurrence. The set is deliberately
    small and flat — every event carries the same fixed fields so the
    tracer can store them in monomorphic column arrays (no per-event
    allocation on the hot path) and the exporters can map them 1:1 onto
    JSONL rows and Chrome [trace_event] entries:

    - [Arrival]: a packet was handed to [enqueue]; [flow]/[seq]/[len]
      identify it, tags are 0 and [vtime] is NaN (not sampled).
    - [Tag]: the scheduler assigned start/finish tags (eqs. 4–5) —
      emitted from inside {!Sfq_core.Sfq}/{!Sfq_core.Hsfq} via their
      tag hooks, so these are the {e real} tags, not reconstructions.
      [vtime] is v(t) at assignment. For Hsfq, [flow] is the class id
      and [seq] the emission sequence of the class edge.
    - [Dequeue]: a packet left the scheduler (service starts now).
    - [Busy]: an enqueue made the queue non-empty (busy period may
      begin per §2's step 2 — the authoritative end is [Idle]).
    - [Idle]: a dequeue found the queue empty — the idle poll that ends
      a busy period.
    - [Drop]: a packet was removed without service — rejected or
      evicted by a buffer policy ({!Sfq_base.Buffered}) or flushed by a
      flow closure. [flow]/[seq]/[len] identify the victim.

    Times are simulation seconds, as passed to the scheduler. *)

type kind = Arrival | Tag | Dequeue | Busy | Idle | Drop

type t = {
  kind : kind;
  time : float;
  flow : int;  (** -1 when not packet-related (Busy/Idle) *)
  seq : int;
  len : int;  (** bits *)
  stag : float;  (** start tag; 0 unless [kind = Tag] *)
  ftag : float;  (** finish tag; 0 unless [kind = Tag] *)
  vtime : float;  (** v(t) at the event; NaN when not sampled *)
}

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

val to_jsonl : t -> string
(** One JSON object, no trailing newline. NaN [vtime] is omitted
    (JSON has no NaN); all other fields are always present, so a line
    is self-describing:
    [{"ev":"tag","t":1.5,"flow":3,"seq":7,"len":1000,"stag":2.0,
      "ftag":2.5,"v":1.75}]. *)

val pp : Format.formatter -> t -> unit
