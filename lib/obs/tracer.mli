(** Low-overhead per-packet event tracer.

    A tracer is a fixed-capacity ring of {!Event.t} records stored as
    monomorphic column arrays ([float array]s are unboxed in OCaml):
    recording an event is a handful of array stores and {e zero}
    allocations, so tracing can stay attached to the
    {!Sfq_util.Fheap}-backed hot path. When the ring is full the oldest
    records are overwritten — a flight recorder, not an unbounded log;
    {!dropped} says how much history was lost.

    Three operating modes, selectable at creation and at runtime:
    - {b disabled} ({!disabled}, or {!set_enabled}[ t false]): every
      [record_*] call is one branch on a mutable bool and returns.
      This is the mode whose cost the tracing-overhead benchmark (E22)
      bounds at < 5% against the untraced scheduler;
    - {b ring} (default): events land in the ring only;
    - {b JSONL streaming} ([~sink:(Jsonl oc)]): each event is also
      formatted with {!Event.to_jsonl} and written to [oc] as it
      happens — full history at full cost, for offline analysis.

    {!wrap} attaches a tracer to any {!Sfq_base.Sched.t} in the style
    of [Sfq_oracle.Monitor.wrap]: arrivals, dequeues and idle/busy
    transitions are recorded at the wrapper; tag-assignment events come
    from the scheduler itself via {!tag_hook} plugged into
    [Sfq_core.Sfq.set_tag_hook] / [Sfq_core.Hsfq.set_tag_hook], so the
    trace carries the real eq. 4–5 tags and v(t). *)

type sink = Ring | Jsonl of out_channel

type t

val create : ?capacity:int -> ?sink:sink -> unit -> t
(** Default [capacity] 65536 events, default sink {!Ring}.
    @raise Invalid_argument if [capacity <= 0]. *)

val disabled : unit -> t
(** A tracer that is off from birth (capacity 1; enable at will). *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val active_flag : t -> bool ref
(** The live enabled flag itself (shared with {!set_enabled}), for
    [Sfq_core.Sfq.set_tag_hook]'s [~active] guard: the scheduler
    dereferences it before calling the hook, so a disabled tracer costs
    one load instead of a hook invocation that boxes every float tag. *)

val capacity : t -> int

(** {1 Recording} — each is a no-op when disabled *)

val record_arrival : t -> now:float -> Sfq_base.Packet.t -> unit
val record_dequeue : t -> now:float -> ?vtime:float -> Sfq_base.Packet.t -> unit
val record_busy : t -> now:float -> unit
val record_idle : t -> now:float -> unit

val record_drop : t -> now:float -> Sfq_base.Packet.t -> unit
(** A packet removed without service (buffer policy or flow closure). *)

val record_tag :
  t -> now:float -> flow:int -> seq:int -> len:int -> stag:float -> ftag:float ->
  vtime:float -> unit

val tag_hook :
  t -> now:float -> pkt:Sfq_base.Packet.t -> stag:float -> ftag:float ->
  vtime:float -> unit
(** Shaped to plug directly into [Sfq_core.Sfq.set_tag_hook]. *)

val class_tag_hook :
  t -> now:float -> class_id:int -> seq:int -> len:int -> stag:float ->
  ftag:float -> vtime:float -> unit
(** Shaped to plug directly into [Sfq_core.Hsfq.set_tag_hook]; the
    class id is recorded in the event's [flow] field. *)

(** {1 Reading the ring} *)

val length : t -> int
(** Events currently held (≤ capacity). *)

val total : t -> int
(** Events ever recorded. *)

val dropped : t -> int
(** [total - length]: events overwritten by ring wrap-around. *)

val get : t -> int -> Event.t
(** [get t i] is the [i]-th oldest retained event, [0 ≤ i < length t].
    @raise Invalid_argument out of range. *)

val iter : t -> f:(Event.t -> unit) -> unit
(** Oldest to newest. *)

val to_list : t -> Event.t list
val clear : t -> unit

(** {1 Attaching to a scheduler} *)

val wrap : ?vtime:(unit -> float) -> t -> Sfq_base.Sched.t -> Sfq_base.Sched.t
(** A traced view: [enqueue] records {!Event.Arrival} (plus
    {!Event.Busy} when the queue was empty), [dequeue] records
    {!Event.Dequeue} or — on an empty poll — {!Event.Idle}.
    [vtime], when given (e.g. [Sfq.vtime]), is sampled at each dequeue
    and stored in the event. [evict]/[close_flow] record {!Event.Drop}
    per removed packet. [peek]/[size]/[backlog] pass through untraced.
    The wrapper keeps its own arrivals-minus-departures count, so
    [size] is never called on the hot path. *)
