(** Per-flow summaries computed from a trace ring.

    The quantities a debugging session otherwise re-derives by hand
    from the paper's definitions:
    - scheduler residence delay (dequeue − arrival) p50/p99/max per
      flow, from exact order statistics over the ring (not histogram
      bins);
    - tag lag: [S(p) − v(t)] at tag assignment — how far ahead of
      virtual time a flow's start tags run (eq. 4's [max] picks the
      [F(p^{j-1})] branch exactly when this is positive), needing Tag
      events (an SFQ/HSFQ tracer with the tag hook attached);
    - max backlog: high-water arrivals-minus-dequeues per flow.

    Only packets whose arrival {e and} dequeue are both retained in the
    ring contribute delays; with ring wrap-around the oldest packets
    drop out, exactly like the flight-recorder semantics of the tracer
    itself. *)

type flow_summary = {
  flow : int;
  departed : int;  (** packets with both arrival and dequeue in the ring *)
  queued : int;  (** arrivals never dequeued (still backlogged at capture) *)
  delay_p50 : float;
  delay_p99 : float;
  delay_max : float;  (** all 0 when [departed = 0] *)
  max_backlog : int;
  tag_lag_max : float;  (** 0 when the trace has no Tag events for the flow *)
}

val per_flow : Tracer.t -> flow_summary list
(** Ascending flow id; flows that only appear in Tag events (Hsfq
    class ids) are excluded. *)

val render : Tracer.t -> string
(** Text table of {!per_flow}, plus a one-line trace header (events
    retained / dropped, time span). *)
