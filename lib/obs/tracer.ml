open Sfq_base

type sink = Ring | Jsonl of out_channel

(* Column arrays, not an Event.t array: recording stores into unboxed
   float/int arrays and allocates nothing; Event.t records are only
   materialized on read. *)
type t = {
  (* a ref, not a mutable field: schedulers guard their tag-hook call
     on this exact cell ([active_flag]), one load with no closure call *)
  on : bool ref;
  cap : int;
  kinds : int array;
  times : float array;
  flows : int array;
  seqs : int array;
  lens : int array;
  stags : float array;
  ftags : float array;
  vts : float array;
  mutable count : int;  (* total ever recorded; write cursor = count mod cap *)
  sink : sink;
}

(* codes used by [store] call sites: 0 Arrival, 1 Tag, 2 Dequeue,
   3 Busy, 4 Idle, 5 Drop *)
let code_kind : int -> Event.kind = function
  | 0 -> Arrival
  | 1 -> Tag
  | 2 -> Dequeue
  | 3 -> Busy
  | 4 -> Idle
  | _ -> Drop

let create ?(capacity = 65536) ?(sink = Ring) () =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity must be positive";
  {
    on = ref true;
    cap = capacity;
    kinds = Array.make capacity 0;
    times = Array.make capacity 0.0;
    flows = Array.make capacity 0;
    seqs = Array.make capacity 0;
    lens = Array.make capacity 0;
    stags = Array.make capacity 0.0;
    ftags = Array.make capacity 0.0;
    vts = Array.make capacity 0.0;
    count = 0;
    sink;
  }

let disabled () =
  let t = create ~capacity:1 () in
  t.on := false;
  t

let enabled t = !(t.on)
let set_enabled t on = t.on := on
let active_flag t = t.on
let capacity t = t.cap

let event_at t i =
  {
    Event.kind = code_kind t.kinds.(i);
    time = t.times.(i);
    flow = t.flows.(i);
    seq = t.seqs.(i);
    len = t.lens.(i);
    stag = t.stags.(i);
    ftag = t.ftags.(i);
    vtime = t.vts.(i);
  }

let store t kind ~time ~flow ~seq ~len ~stag ~ftag ~vt =
  let i = t.count mod t.cap in
  t.kinds.(i) <- kind;
  t.times.(i) <- time;
  t.flows.(i) <- flow;
  t.seqs.(i) <- seq;
  t.lens.(i) <- len;
  t.stags.(i) <- stag;
  t.ftags.(i) <- ftag;
  t.vts.(i) <- vt;
  t.count <- t.count + 1;
  match t.sink with
  | Ring -> ()
  | Jsonl oc ->
    output_string oc (Event.to_jsonl (event_at t i));
    output_char oc '\n'

let record_arrival t ~now (pkt : Packet.t) =
  if !(t.on) then
    store t 0 ~time:now ~flow:pkt.flow ~seq:pkt.seq ~len:pkt.len ~stag:0.0
      ~ftag:0.0 ~vt:Float.nan

let record_dequeue t ~now ?(vtime = Float.nan) (pkt : Packet.t) =
  if !(t.on) then
    store t 2 ~time:now ~flow:pkt.flow ~seq:pkt.seq ~len:pkt.len ~stag:0.0
      ~ftag:0.0 ~vt:vtime

let record_busy t ~now =
  if !(t.on) then
    store t 3 ~time:now ~flow:(-1) ~seq:0 ~len:0 ~stag:0.0 ~ftag:0.0 ~vt:Float.nan

let record_idle t ~now =
  if !(t.on) then
    store t 4 ~time:now ~flow:(-1) ~seq:0 ~len:0 ~stag:0.0 ~ftag:0.0 ~vt:Float.nan

let record_drop t ~now (pkt : Packet.t) =
  if !(t.on) then
    store t 5 ~time:now ~flow:pkt.flow ~seq:pkt.seq ~len:pkt.len ~stag:0.0
      ~ftag:0.0 ~vt:Float.nan

let record_tag t ~now ~flow ~seq ~len ~stag ~ftag ~vtime =
  if !(t.on) then store t 1 ~time:now ~flow ~seq ~len ~stag ~ftag ~vt:vtime

let tag_hook t ~now ~pkt:(p : Packet.t) ~stag ~ftag ~vtime =
  record_tag t ~now ~flow:p.flow ~seq:p.seq ~len:p.len ~stag ~ftag ~vtime

let class_tag_hook t ~now ~class_id ~seq ~len ~stag ~ftag ~vtime =
  record_tag t ~now ~flow:class_id ~seq ~len ~stag ~ftag ~vtime

let length t = Stdlib.min t.count t.cap
let total t = t.count
let dropped t = t.count - length t

let get t i =
  let n = length t in
  if i < 0 || i >= n then invalid_arg "Tracer.get: out of range";
  (* oldest retained event sits at [count mod cap] once the ring has
     wrapped, at 0 before. *)
  let base = if t.count > t.cap then t.count mod t.cap else 0 in
  event_at t ((base + i) mod t.cap)

let iter t ~f =
  for i = 0 to length t - 1 do
    f (get t i)
  done

let to_list t =
  let acc = ref [] in
  for i = length t - 1 downto 0 do
    acc := get t i :: !acc
  done;
  !acc

let clear t = t.count <- 0

let wrap ?vtime t (inner : Sched.t) =
  let outstanding = ref 0 in
  (* hoist the inner closures out of the per-op path: the disabled-mode
     budget (E22: < 5% over the bare scheduler) leaves no room for a
     record-field load per call *)
  let inner_enqueue = inner.Sched.enqueue in
  let inner_dequeue = inner.Sched.dequeue in
  {
    Sched.name = inner.Sched.name ^ "+trace";
    enqueue =
      (fun ~now pkt ->
        (* record before the inner enqueue so a Tag event fired from
           inside the scheduler's hook lands after its Arrival; one
           [t.on] load covers the whole disabled path *)
        if !(t.on) then begin
          if !outstanding = 0 then record_busy t ~now;
          record_arrival t ~now pkt
        end;
        incr outstanding;
        inner_enqueue ~now pkt);
    dequeue =
      (fun ~now ->
        let r = inner_dequeue ~now in
        (match r with
        | None -> if !(t.on) then record_idle t ~now
        | Some pkt ->
          decr outstanding;
          (* sample v(t) only when actually recording: when the tracer
             is off a dequeue must cost one branch, not a closure call
             plus a boxed float *)
          if !(t.on) then begin
            let vt = match vtime with None -> Float.nan | Some v -> v () in
            store t 2 ~time:now ~flow:pkt.Packet.flow ~seq:pkt.Packet.seq
              ~len:pkt.Packet.len ~stag:0.0 ~ftag:0.0 ~vt
          end);
        (* hand back the inner scheduler's own option — re-wrapping the
           packet would put an allocation on the disabled path *)
        r);
    peek = inner.Sched.peek;
    size = inner.Sched.size;
    backlog = inner.Sched.backlog;
    evict =
      (fun ~now victim flow ->
        match inner.Sched.evict ~now victim flow with
        | None -> None
        | Some p ->
          (* a removal leaves the queue like a dequeue does, so the
             busy/idle bookkeeping must see it *)
          decr outstanding;
          record_drop t ~now p;
          Some p);
    close_flow =
      (fun ~now flow ->
        let flushed = inner.Sched.close_flow ~now flow in
        List.iter
          (fun p ->
            decr outstanding;
            record_drop t ~now p)
          flushed;
        flushed);
  }
