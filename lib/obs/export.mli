(** Trace exporters: JSONL and Chrome [trace_event] (Perfetto).

    JSONL is one {!Event.to_jsonl} object per line, in ring order — the
    same format the tracer's streaming sink writes, so an offline dump
    of the ring and an online stream are interchangeable.

    The Chrome export produces the JSON-object flavour of the Trace
    Event Format ([{"traceEvents": [...]}]) that {{:https://ui.perfetto.dev}Perfetto}
    and [chrome://tracing] open directly:
    - one thread track per flow ([pid] 1, [tid] = flow id + 1, named
      via [thread_name] metadata events), carrying a complete ("X")
      slice per packet from its arrival to its dequeue — the residence
      time in the scheduler — with [len]/[stag]/[ftag] as args;
    - packets still queued at export time appear as instant ("i")
      events at their arrival;
    - virtual time as a counter ("C") track, one point per event that
      sampled v(t) (Tag events, and Dequeue events when the tracer was
      wrapped with [~vtime]);
    - busy/idle transitions as instants on the scheduler track
      ([tid] 0).

    Timestamps are microseconds (the format's unit), simulation time
    × 1e6. *)

val jsonl : Tracer.t -> string
(** The ring as JSONL, one event per line, oldest first. *)

val write_jsonl : Tracer.t -> path:string -> unit

val chrome : ?name:string -> Tracer.t -> string
(** [name] labels the process track (default ["sfq"]). *)

val write_chrome : ?name:string -> Tracer.t -> path:string -> unit
