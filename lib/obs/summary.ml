open Sfq_util

type flow_summary = {
  flow : int;
  departed : int;
  queued : int;
  delay_p50 : float;
  delay_p99 : float;
  delay_max : float;
  max_backlog : int;
  tag_lag_max : float;
}

type acc = {
  mutable arrivals : (int, float) Hashtbl.t;  (* seq -> arrival time *)
  delays : float Vec.t;
  mutable backlog : int;
  mutable max_backlog : int;
  mutable tag_lag_max : float;
  mutable seen_packet : bool;  (* appears in Arrival/Dequeue, not only Tag *)
}

let per_flow t =
  let flows : (int, acc) Hashtbl.t = Hashtbl.create 16 in
  let acc_of flow =
    match Hashtbl.find_opt flows flow with
    | Some a -> a
    | None ->
      let a =
        {
          arrivals = Hashtbl.create 16;
          delays = Vec.create ();
          backlog = 0;
          max_backlog = 0;
          tag_lag_max = 0.0;
          seen_packet = false;
        }
      in
      Hashtbl.add flows flow a;
      a
  in
  Tracer.iter t ~f:(fun (e : Event.t) ->
      match e.kind with
      | Arrival ->
        let a = acc_of e.flow in
        a.seen_packet <- true;
        Hashtbl.replace a.arrivals e.seq e.time;
        a.backlog <- a.backlog + 1;
        if a.backlog > a.max_backlog then a.max_backlog <- a.backlog
      | Dequeue ->
        let a = acc_of e.flow in
        a.seen_packet <- true;
        if a.backlog > 0 then a.backlog <- a.backlog - 1;
        (match Hashtbl.find_opt a.arrivals e.seq with
        | Some arrived ->
          Hashtbl.remove a.arrivals e.seq;
          Vec.push a.delays (e.time -. arrived)
        | None -> ())
      | Tag ->
        if not (Float.is_nan e.vtime) then begin
          let a = acc_of e.flow in
          let lag = e.stag -. e.vtime in
          if lag > a.tag_lag_max then a.tag_lag_max <- lag
        end
      | Drop ->
        (* left without service: not a delay sample, but no longer
           backlogged either *)
        let a = acc_of e.flow in
        if a.backlog > 0 then a.backlog <- a.backlog - 1;
        Hashtbl.remove a.arrivals e.seq
      | Busy | Idle -> ());
  Hashtbl.fold (fun flow a acc -> (flow, a) :: acc) flows []
  |> List.filter (fun (_, a) -> a.seen_packet)
  |> List.sort (fun (f, _) (g, _) -> compare f g)
  |> List.map (fun (flow, a) ->
         let delays = Vec.to_array a.delays in
         let departed = Array.length delays in
         let p q = if departed = 0 then 0.0 else Stats.percentile delays q in
         {
           flow;
           departed;
           queued = Hashtbl.length a.arrivals;
           delay_p50 = p 50.0;
           delay_p99 = p 99.0;
           delay_max = (if departed = 0 then 0.0 else Array.fold_left Float.max neg_infinity delays);
           max_backlog = a.max_backlog;
           tag_lag_max = a.tag_lag_max;
         })

let render t =
  let b = Buffer.create 1024 in
  let n = Tracer.length t in
  let span =
    if n = 0 then 0.0 else (Tracer.get t (n - 1)).Event.time -. (Tracer.get t 0).Event.time
  in
  Buffer.add_string b
    (Printf.sprintf "trace: %d event(s) retained, %d dropped, %.6g s span\n"
       n (Tracer.dropped t) span);
  let table =
    Text_table.create
      [ "flow"; "departed"; "queued"; "delay p50"; "delay p99"; "delay max";
        "max backlog"; "tag lag max" ]
  in
  List.iter
    (fun s ->
      Text_table.add_row table
        [
          string_of_int s.flow;
          string_of_int s.departed;
          string_of_int s.queued;
          Printf.sprintf "%.6g" s.delay_p50;
          Printf.sprintf "%.6g" s.delay_p99;
          Printf.sprintf "%.6g" s.delay_max;
          string_of_int s.max_backlog;
          Printf.sprintf "%.6g" s.tag_lag_max;
        ])
    (per_flow t);
  Buffer.add_string b (Text_table.render table);
  Buffer.contents b
