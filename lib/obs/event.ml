type kind = Arrival | Tag | Dequeue | Busy | Idle | Drop

type t = {
  kind : kind;
  time : float;
  flow : int;
  seq : int;
  len : int;
  stag : float;
  ftag : float;
  vtime : float;
}

let kind_to_string = function
  | Arrival -> "arrival"
  | Tag -> "tag"
  | Dequeue -> "dequeue"
  | Busy -> "busy"
  | Idle -> "idle"
  | Drop -> "drop"

let kind_of_string = function
  | "arrival" -> Some Arrival
  | "tag" -> Some Tag
  | "dequeue" -> Some Dequeue
  | "busy" -> Some Busy
  | "idle" -> Some Idle
  | "drop" -> Some Drop
  | _ -> None

(* JSON numbers cannot be NaN or infinite; callers keep times/tags
   finite, and a non-finite value here would corrupt a machine-read
   file, so turn it into null defensively. *)
let num f =
  if Float.is_finite f then Printf.sprintf "%.12g" f else "null"

let to_jsonl e =
  let b = Buffer.create 96 in
  Buffer.add_string b
    (Printf.sprintf "{\"ev\":%S,\"t\":%s,\"flow\":%d,\"seq\":%d,\"len\":%d"
       (kind_to_string e.kind) (num e.time) e.flow e.seq e.len);
  Buffer.add_string b (Printf.sprintf ",\"stag\":%s,\"ftag\":%s" (num e.stag) (num e.ftag));
  if not (Float.is_nan e.vtime) then
    Buffer.add_string b (Printf.sprintf ",\"v\":%s" (num e.vtime));
  Buffer.add_char b '}';
  Buffer.contents b

let pp ppf e =
  Format.fprintf ppf "%s t=%g flow=%d seq=%d len=%d" (kind_to_string e.kind)
    e.time e.flow e.seq e.len;
  if e.kind = Tag then Format.fprintf ppf " S=%g F=%g" e.stag e.ftag;
  if not (Float.is_nan e.vtime) then Format.fprintf ppf " v=%g" e.vtime
