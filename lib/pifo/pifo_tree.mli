(** Hierarchical SFQ as a tree of PIFOs (Sivaraman et al. §3 tree
    model).

    The float {!Sfq_core.Hsfq} walks each internal class's child list
    to find the minimum start tag; here every internal class {e is} a
    PIFO — an int-keyed heap of its active child edges ordered by
    (fixed-point start tag, activation sequence). A dequeue is one
    scheduling transaction per level, exactly the PIFO-tree model: pop
    the root PIFO's minimum edge, recurse into that child, and push
    the edge back with its next start tag if its subtree is still
    non-empty.

    Tag mechanics per child edge are {!Sfq_core.Hsfq}'s, in
    {!Sfq_fastpath.Tag} fixed point: on activation
    [S = max (v_parent, F_prev)]; on emission the head packet's length
    fixes [F = S + l/w] and [v_parent <- S]; a still-backlogged child
    re-enters at [S' = F]. A class whose subtree empties leaves its
    parent's [v] frozen at the emission's start tag; only the root —
    where the real server genuinely polls an empty queue — bumps [v]
    to the largest serviced finish tag when idle. On dyadic workloads
    the tags are exact and the dequeue order matches the float
    hierarchy packet-for-packet (the equivalence harness checks this).

    Leaves hold any inner {!Sfq_base.Sched.t} — in the HSFQ
    composition, {!Pifo_sched} instances running the
    {!Programs.sfq} rank program. *)

open Sfq_base

type t
type class_

val create : ?frac_bits:int -> unit -> t
val root : t -> class_

val add_class : t -> parent:class_ -> weight:float -> class_
(** New internal class (a PIFO over its children).
    @raise Invalid_argument if [parent] is a leaf or [weight <= 0]. *)

val add_leaf : t -> parent:class_ -> weight:float -> Sched.t -> class_
(** New leaf class with the given inner discipline. *)

val set_classifier : t -> (Packet.t -> class_) -> unit
(** Route packets to leaves. Required before the first [enqueue]. *)

val classifier_by_flow : (Packet.flow * class_) list -> Packet.t -> class_
(** Convenience classifier: flow-id table.
    @raise Not_found for an unlisted flow. *)

val enqueue : t -> now:float -> Packet.t -> unit
val dequeue : t -> now:float -> Packet.t option
val peek : t -> Packet.t option
val size : t -> int
val backlog : t -> Packet.flow -> int
val sched : t -> Sched.t

val class_vtime : t -> class_ -> float
(** Decoded virtual time of an internal class (0 for leaves). *)

val class_id : t -> class_ -> int
(** Stable small-int identity: 0 for the root, then creation order.
    @raise Invalid_argument for a class of another hierarchy. *)
