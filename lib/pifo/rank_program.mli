(** A scheduling discipline as a {e rank program}.

    Sivaraman et al., "Programmable Packet Scheduling at Line Rate"
    observe that most per-flow scheduling disciplines decompose into
    (a) a tiny per-packet {e rank computation} executed at enqueue and
    (b) one shared priority-queue runtime that serves packets in rank
    order. This module is the interface of part (a); {!Pifo_sched} is
    part (b). A discipline port is a value of {!t}: a record of
    closures over the program's hidden per-flow state, mirroring the
    repo's {!Sfq_base.Sched} convention so the runtime can call the
    hooks without functor plumbing and — critically for the SFQ fast
    path — without allocating.

    The hot contract: {!t.rank} returns the packet's int service rank
    (a {!Sfq_fastpath.Tag}-scaled virtual time in every shipped
    program, though the runtime only requires ranks to be
    order-meaningful ints). Additional per-packet outputs travel
    through the pre-allocated {!regs} cell rather than a result record,
    so a rank call is closure dispatch + int stores — no tuple, no
    boxing. The runtime clamps returned ranks into [[0, Tag.max_tag]]
    (saturate, never wrap; see the {!Sfq_fastpath.Tag} overflow
    discussion).

    Virtual-time bookkeeping happens in {!t.on_dequeue} (called with
    the served entry's ordering fields — SFQ sets [v] to the served
    start tag here) and {!t.on_idle} (called whenever the runtime is
    polled while empty — the busy-period rules of §2 of the paper).
    The PR 5 lifecycle arrives through {!t.on_close}; eviction needs no
    hook because no shipped discipline rolls tags back on evict.

    Two-stage (shaped) disciplines such as WF²Q set {!t.shaped}: the
    rank call then also deposits an {e eligibility} rank in
    [regs.eligible], and the runtime holds the packet in a shaper stage
    until {!t.horizon} (e.g. the GPS virtual time) passes that rank. *)

open Sfq_base

type regs = {
  mutable aux : int;
      (** second per-packet output of {!t.rank}: stored next to the
          packet and handed back to {!t.on_dequeue} (SFQ's finish
          tag). *)
  mutable eligible : int;
      (** eligibility rank, read only when the program is {!t.shaped}
          (WF²Q's start tag). *)
}

type t = {
  name : string;  (** becomes [Sched.name] of the runtime instance *)
  regs : regs;  (** out-parameter cell written by [rank] *)
  shaped : bool;
      (** two-stage discipline: packets wait in a shaper until
          [horizon] reaches their [regs.eligible] rank *)
  rank : now:float -> Packet.t -> int;
      (** per-packet rank computation (enqueue time). Returns the
          service rank; may write {!regs}. *)
  on_dequeue : key:int -> aux:int -> empty:bool -> unit;
      (** served-packet hook: [key] is the entry's service rank, [aux]
          the value [rank] left in [regs.aux] at enqueue, [empty]
          whether the queue drained with this removal. *)
  on_idle : unit -> unit;
      (** the runtime was polled ([dequeue]) while empty — busy period
          over. *)
  horizon : now:float -> int;
      (** shaped programs: the current eligibility horizon; entries
          with [regs.eligible <= horizon ~now] may be served. Consulted
          once per dequeue/peek, never for unshaped programs. *)
  attach : (unit -> int) -> unit;
      (** called once by {!Pifo_sched.create} with the runtime's
          [size] thunk, for programs whose clock needs to observe real
          queue occupancy (the GPS busy-period guard). *)
  on_close : now:float -> Packet.flow -> unit;
      (** forget the flow's per-flow state (finish tag, EAT floor,
          fluid backlog) after the runtime flushed its packets. *)
  vtime : unit -> float;
      (** decoded virtual time, for the oracle monitors; programs
          without a virtual clock return 0. *)
}

val regs : unit -> regs
(** A fresh zeroed out-parameter cell. *)

val no_dequeue : key:int -> aux:int -> empty:bool -> unit
val no_idle : unit -> unit

val no_horizon : now:float -> int
(** Always 0; placeholder for unshaped programs. *)

val no_attach : (unit -> int) -> unit
val no_close : now:float -> Packet.flow -> unit
val no_vtime : unit -> float
