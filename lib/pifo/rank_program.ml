open Sfq_base

type regs = { mutable aux : int; mutable eligible : int }

type t = {
  name : string;
  regs : regs;
  shaped : bool;
  rank : now:float -> Packet.t -> int;
  on_dequeue : key:int -> aux:int -> empty:bool -> unit;
  on_idle : unit -> unit;
  horizon : now:float -> int;
  attach : (unit -> int) -> unit;
  on_close : now:float -> Packet.flow -> unit;
  vtime : unit -> float;
}

let regs () = { aux = 0; eligible = 0 }
let no_dequeue ~key:_ ~aux:_ ~empty:_ = ()
let no_idle () = ()
let no_horizon ~now:_ = 0
let no_attach _ = ()
let no_close ~now:_ (_ : Packet.flow) = ()
let no_vtime () = 0.0
