(** The paper's disciplines as rank programs.

    Each constructor below is the ~20-line port of one hand-written
    scheduler onto the {!Pifo_sched} runtime; the equivalence harness
    ([test/test_pifo_equiv.ml]) holds every port to its original —
    packet-for-packet on dyadic workloads for the pure fixed-point
    programs, outcome-digest over the frozen pools for the GPS-clocked
    ones (whose tags involve non-dyadic fluid divisions).

    Quantization and rate-snapshot caveats are those of the fixed-point
    fast path (see {!Sfq_fastpath.Tag} and {!Flow_state}). Tie-breaking
    configuration ([Tag_queue.tie]) belongs to the runtime, not the
    program: pass it to {!Pifo_sched.create}. *)

open Sfq_base

val sfq :
  ?busy_rule:Sfq_core.Sfq.busy_rule -> ?frac_bits:int -> Weights.t -> Rank_program.t
(** Start-time fair queueing, eqs. 4–5: rank = start tag
    [max (v, F_prev)], [v] follows the served start tag, busy rule as
    in the float original (default [Idle_poll]). Honors per-packet
    rate overrides. Name ["pifo-sfq"]. *)

val scfq : ?frac_bits:int -> Weights.t -> Rank_program.t
(** Self-clocked fair queueing (eq. 56): rank = finish tag, [v] =
    finish tag in service, idle reset clears [v] and every per-flow
    finish tag. Ignores rate overrides. Name ["pifo-scfq"]. *)

val virtual_clock : ?frac_bits:int -> Weights.t -> Rank_program.t
(** Virtual Clock: rank = [max (now, EAT_floor) + len/rate], the floor
    advancing to the rank. Reads real time; no virtual clock to
    expose. Name ["pifo-vc"]. *)

val delay_edd :
  ?frac_bits:int -> (Packet.flow * Sfq_sched.Delay_edd.flow_spec) list -> Rank_program.t
(** Delay EDD: rank = [EAT + deadline] against each flow's declared
    spec; the spec is configuration and survives close, the EAT floor
    does not.
    @raise Invalid_argument on an invalid spec, or (at enqueue) on a
    packet of an undeclared flow. Name ["pifo-edd"]. *)

val lstf :
  ?frac_bits:int ->
  ?residual:(Packet.t -> float) ->
  deadline:(Packet.t -> float) ->
  unit ->
  Rank_program.t
(** Least-Slack-Time-First ({!Sfq_sched.Lstf} as a rank program): rank
    = [deadline − residual], quantized through the codec and clamped to
    a per-flow monotone floor (forgotten on close, kept on evict) so
    the runtime's within-flow rank invariant holds under arbitrary
    caller-supplied deadlines. [residual] defaults to [fun _ -> 0.0].
    Name ["pifo-lstf"]. *)

val fqs : capacity:float -> ?frac_bits:int -> Weights.t -> Rank_program.t
(** Fair queueing based on start time: rank = the GPS fluid start tag
    (eq. 1). The program attaches the runtime's size thunk as the
    fluid clock's busy-period guard. Name ["pifo-fqs"]. *)

val wf2q : capacity:float -> ?frac_bits:int -> Weights.t -> Rank_program.t
(** Worst-case fair weighted fair queueing, as a {e shaped} program:
    service rank = GPS finish tag, eligibility rank = GPS start tag,
    horizon = the GPS virtual time — the runtime's shaper stage
    reproduces the hand-written two-stage scheduler. Name
    ["pifo-wf2q"]. *)
