(** Dense fixed-point per-flow state for rank programs.

    The factored-out array layout of {!Sfq_fastpath.Sfq_fast}: one int
    tag slot per flow (finish tag, EAT floor — whatever the program
    stores) and a cached [scale /. rate] float so a packet's virtual
    length is one multiply + round. Every operation keeps its floats
    internal — arguments and results are ints or pointers — so a rank
    program built on this module stays allocation-free in steady state
    even across the module boundary (nothing here forces a float box).

    Growth, activation (first packet of a flow since creation or
    close) and the [Weights.get] snapshot behave exactly as in the
    hand-written fast-path schedulers: the weight function is read
    once per flow activation and cached until {!forget}, which is the
    documented fast-path divergence from the float originals under
    mid-backlog reweighting. *)

open Sfq_base

type t

val create : ?frac_bits:int -> Weights.t -> t
(** Fresh state over a {!Sfq_fastpath.Tag} codec with [frac_bits]
    fractional bits (default 20). *)

val codec : t -> Sfq_fastpath.Tag.t

val delta : t -> Packet.t -> int
(** The packet's tag increment [round (len * scale / rate)], clamped to
    [[1, Tag.max_tag]]. Uses the cached flow rate, activating the flow
    (one [Weights.get] call) if this is its first packet; a per-packet
    rate override ([pkt.rate = Some r]) replaces the flow rate for this
    packet only. Grows the arrays as needed.
    @raise Invalid_argument if the flow's rate is [<= 0]. *)

val delta_reserved : t -> Packet.t -> int
(** Like {!delta} but ignoring per-packet rate overrides — SCFQ prices
    every packet at the flow's reserved rate, as the float original
    does. *)

val advance : t -> floor:int -> Packet.t -> int
(** Fused SFQ-shape update in one call: grow/activate as needed,
    compute the packet's {!delta} [d] (honouring a per-packet rate
    override), read the flow's previous tag [fprev], take
    [stag = max floor fprev], store [sat_add stag d] back into the
    slot, and return [stag]. The stored finish tag is readable via
    {!last}. Semantically identical to
    [delta]/[get]/[max]/[sat_add]/[set] but one module-boundary call
    and one bounds check instead of three of each — the rank-program
    hot path's answer to the hand-written schedulers' inlined
    enqueue. *)

val advance_reserved : t -> floor:int -> Packet.t -> int
(** {!advance} pricing every packet at the flow's reserved rate
    (ignoring per-packet overrides) — the SCFQ convention. *)

val advance_eat : t -> now:float -> Packet.t -> int
(** Fused Virtual-Clock-shape update: compute [d] (honouring rate
    overrides) and [nt = now_tag now], read the flow's EAT floor
    [fl], take [eat = max nt fl], store [sat_add eat d], and return
    [eat]. The stored stamp is readable via {!last}. *)

val last : t -> int
(** The tag stored by the most recent [advance]/[advance_reserved]/
    [advance_eat] call (0 before the first) — lets a rank program
    publish the secondary output without tupling. *)

val get : t -> Packet.flow -> int
(** The flow's tag slot (0 if never written — matching the float
    schedulers' [F = 0] / clamped EAT-floor defaults). *)

val set : t -> Packet.flow -> int -> unit

val now_tag : t -> float -> int
(** Real time encoded as a tag: [round (now * scale)], negative clocks
    clamping to 0 (the slot default) and the rail saturating — the
    {!Sfq_fastpath.Virtual_clock_fast} convention. *)

val clear : t -> unit
(** Zero every tag slot, keeping rate caches — SCFQ's idle reset. *)

val forget : t -> Packet.flow -> unit
(** Flow closure: zero the flow's tag slot and drop its cached rate so
    a reopened id re-reads the weight function. *)
