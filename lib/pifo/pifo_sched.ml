open Sfq_util
open Sfq_base
open Sfq_sched
open Sfq_fastpath

type t = {
  prog : Rank_program.t;
  regs : Rank_program.regs;  (* prog.regs, cached to skip a load *)
  (* The per-packet program hooks, cached out of [prog] at creation:
     [t.prog.Rank_program.rank] is two dependent loads per packet,
     [t.rank] is one — the kind of indirection the bench validator's
     dispatch-premium budget charges for. *)
  rank : now:float -> Packet.t -> int;
  on_dequeue : key:int -> aux:int -> empty:bool -> unit;
  on_idle : unit -> unit;
  horizon : now:float -> int;
  shaped : bool;
  tie : Tag_queue.tie;
  arrival : bool;  (* tie = Arrival: the encoded tie is always 0 *)
  main : Packet.t Iflow_heap.t;  (* unshaped service stage *)
  shaper : Packet.t Iflow_heap.t;  (* shaped: eligibility stage *)
  eligible : Packet.t Iheap.t;  (* shaped: service stage *)
  mutable counts : int array;  (* shaped per-flow backlog *)
  (* Per-flow encoded tie cache, filled on first use and reset by
     close_flow — the same activation snapshot the hand-written fast
     path takes. *)
  mutable ties : int array;
  mutable tie_ok : bool array;
  mutable high : int;  (* largest clamped rank ever admitted *)
  mutable last_now : float;  (* shaped: clock for now-less peek *)
}

let tie_value tie flow =
  match (tie : Tag_queue.tie) with
  | Arrival -> 0.0
  | Low_rate w -> w flow
  | High_rate w -> -.w flow

let grow_ties t flow =
  let n = Array.length t.ties in
  let cap = Stdlib.max 16 (Stdlib.max (2 * n) (flow + 1)) in
  let ties = Array.make cap 0 in
  Array.blit t.ties 0 ties 0 n;
  t.ties <- ties;
  let ok = Array.make cap false in
  Array.blit t.tie_ok 0 ok 0 n;
  t.tie_ok <- ok

let tie_of t flow =
  if t.arrival then 0
  else begin
    if flow >= Array.length t.ties then grow_ties t flow;
    if t.tie_ok.(flow) then t.ties.(flow)
    else begin
      let e = Tag.tie_encode (tie_value t.tie flow) in
      t.ties.(flow) <- e;
      t.tie_ok.(flow) <- true;
      e
    end
  end

let grow_counts t flow =
  let n = Array.length t.counts in
  let cap = Stdlib.max 16 (Stdlib.max (2 * n) (flow + 1)) in
  let counts = Array.make cap 0 in
  Array.blit t.counts 0 counts 0 n;
  t.counts <- counts

let bump t flow d =
  if flow >= Array.length t.counts then grow_counts t flow;
  t.counts.(flow) <- t.counts.(flow) + d

let size t =
  if t.shaped then Iflow_heap.size t.shaper + Iheap.length t.eligible
  else Iflow_heap.size t.main

let is_empty t = size t = 0

let backlog t flow =
  if t.shaped then
    if flow >= 0 && flow < Array.length t.counts then t.counts.(flow) else 0
  else Iflow_heap.backlog t.main flow

let create ?(tie = Tag_queue.Arrival) ?capacity prog =
  let t =
    {
      prog;
      regs = prog.Rank_program.regs;
      rank = prog.Rank_program.rank;
      on_dequeue = prog.Rank_program.on_dequeue;
      on_idle = prog.Rank_program.on_idle;
      horizon = prog.Rank_program.horizon;
      shaped = prog.Rank_program.shaped;
      tie;
      arrival = (match tie with Tag_queue.Arrival -> true | _ -> false);
      main = Iflow_heap.create ?capacity ();
      shaper = Iflow_heap.create ?capacity ();
      eligible = Iheap.create ();
      counts = [||];
      ties = [||];
      tie_ok = [||];
      high = 0;
      last_now = 0.0;
    }
  in
  prog.Rank_program.attach (fun () -> size t);
  t

(* Ranks saturate at the Tag rail and clamp below at 0 — a user rank
   program can never wrap the ordering, only degrade it to (tie,
   arrival) at the rail, exactly like the fixed-point schedulers. *)
let clamp_rank k = if k < 0 then 0 else if k > Tag.max_tag then Tag.max_tag else k

let enqueue t ~now pkt =
  let flow = pkt.Packet.flow in
  if flow < 0 then invalid_arg "Pifo_sched.enqueue: flow id must be >= 0";
  let tie = if t.arrival then 0 else tie_of t flow in
  let key = clamp_rank (t.rank ~now pkt) in
  if key > t.high then t.high <- key;
  if t.shaped then begin
    if now > t.last_now then t.last_now <- now;
    let ekey = clamp_rank t.regs.Rank_program.eligible in
    Iflow_heap.push t.shaper ~flow ~key:ekey ~aux:key ~tie pkt;
    bump t flow 1
  end
  else Iflow_heap.push t.main ~flow ~key ~aux:t.regs.Rank_program.aux ~tie pkt

(* Shaped stage transfer: entries whose eligibility rank the horizon
   has passed move to the service heap keyed by their service rank
   (stored as the shaper's aux), carrying their original push uid so
   equal (rank, tie) entries still serve in arrival order. The horizon
   is consulted unconditionally — for GPS-clocked programs the call
   itself advances the fluid simulation, exactly as the hand-written
   WF²Q promotes on every dequeue and peek. *)
let promote t ~now =
  let h = t.horizon ~now in
  let rec go () =
    match Iflow_heap.peek t.shaper with
    | Some e when e.Iflow_heap.key <= h ->
      let pkt = Iflow_heap.pop_exn t.shaper in
      Iheap.add t.eligible
        ~key:(Iflow_heap.last_aux t.shaper)
        ~tie:(tie_of t (Iflow_heap.last_flow t.shaper))
        ~uid:(Iflow_heap.last_uid t.shaper)
        pkt;
      go ()
    | Some _ | None -> ()
  in
  go ()

let dequeue_shaped t ~now =
  promote t ~now;
  if Iheap.length t.eligible > 0 then begin
    let key = Iheap.min_key_exn t.eligible in
    let pkt = Iheap.min_elt_exn t.eligible in
    Iheap.remove_root t.eligible;
    bump t pkt.Packet.flow (-1);
    t.on_dequeue ~key ~aux:0
      ~empty:(Iheap.length t.eligible = 0 && Iflow_heap.is_empty t.shaper);
    Some pkt
  end
  else if not (Iflow_heap.is_empty t.shaper) then begin
    (* Work conservation: nothing eligible, serve the earliest
       eligibility rank rather than idling. *)
    let pkt = Iflow_heap.pop_exn t.shaper in
    bump t pkt.Packet.flow (-1);
    t.on_dequeue
      ~key:(Iflow_heap.last_aux t.shaper)
      ~aux:0
      ~empty:(Iflow_heap.is_empty t.shaper);
    Some pkt
  end
  else begin
    t.on_idle ();
    None
  end

(* Unshaped non-allocating hot path; pair with [is_empty]. *)
let dequeue_unshaped_exn t =
  let pkt = Iflow_heap.pop_exn t.main in
  t.on_dequeue
    ~key:(Iflow_heap.last_key t.main)
    ~aux:(Iflow_heap.last_aux t.main)
    ~empty:(Iflow_heap.is_empty t.main);
  pkt

let dequeue_exn t =
  if t.shaped then
    match dequeue_shaped t ~now:t.last_now with
    | Some pkt -> pkt
    | None -> invalid_arg "Pifo_sched.dequeue_exn: empty"
  else dequeue_unshaped_exn t

let dequeue t ~now =
  if t.shaped then begin
    if now > t.last_now then t.last_now <- now;
    dequeue_shaped t ~now
  end
  else if Iflow_heap.is_empty t.main then begin
    t.on_idle ();
    None
  end
  else Some (dequeue_unshaped_exn t)

let peek t =
  if t.shaped then begin
    promote t ~now:t.last_now;
    match Iheap.min_elt t.eligible with
    | Some pkt -> Some pkt
    | None -> (
      match Iflow_heap.peek t.shaper with
      | Some e -> Some e.Iflow_heap.value
      | None -> None)
  end
  else
    match Iflow_heap.peek t.main with
    | None -> None
    | Some p -> Some p.Iflow_heap.value

(* Eviction keeps every tag the program assigned: dropped virtual
   service stays charged to the flow (eq. 4, conservative). A flow's
   promoted entries are strictly older than its shaper entries, so
   Oldest looks in the service heap first and Newest in the shaper
   first. *)
let evict t victim flow =
  if t.shaped then begin
    let pred p = p.Packet.flow = flow in
    let found =
      match (victim : Sched.victim) with
      | Sched.Oldest -> (
        match Iheap.remove_matching t.eligible ~pred with
        | Some (_, p) -> Some p
        | None -> (
          match Iflow_heap.evict_front t.shaper flow with
          | Some e -> Some e.Iflow_heap.value
          | None -> None))
      | Sched.Newest -> (
        match Iflow_heap.evict_back t.shaper flow with
        | Some e -> Some e.Iflow_heap.value
        | None -> (
          match Iheap.remove_matching ~newest:true t.eligible ~pred with
          | Some (_, p) -> Some p
          | None -> None))
    in
    (match found with Some _ -> bump t flow (-1) | None -> ());
    found
  end
  else
    let popped =
      match (victim : Sched.victim) with
      | Sched.Oldest -> Iflow_heap.evict_front t.main flow
      | Sched.Newest -> Iflow_heap.evict_back t.main flow
    in
    match popped with None -> None | Some p -> Some p.Iflow_heap.value

let close_flow t ~now flow =
  let flushed =
    if t.shaped then begin
      let pred p = p.Packet.flow = flow in
      let rec drain acc =
        match Iheap.remove_matching t.eligible ~pred with
        | Some (_, p) -> drain (p :: acc)
        | None -> List.rev acc
      in
      (* remove_matching takes ascending uid, so promoted entries come
         out oldest first and precede everything still in the shaper *)
      let released = drain [] in
      let waiting =
        List.map (fun e -> e.Iflow_heap.value) (Iflow_heap.flush_flow t.shaper flow)
      in
      if flow >= 0 && flow < Array.length t.counts then t.counts.(flow) <- 0;
      released @ waiting
    end
    else
      List.map (fun p -> p.Iflow_heap.value) (Iflow_heap.flush_flow t.main flow)
  in
  if flow >= 0 && flow < Array.length t.ties then begin
    t.ties.(flow) <- 0;
    t.tie_ok.(flow) <- false
  end;
  t.prog.Rank_program.on_close ~now flow;
  flushed

let vtime t = t.prog.Rank_program.vtime ()
let high_tag t = t.high
let saturated t = Tag.is_saturated t.high
let program t = t.prog

let sched t =
  {
    Sched.name = t.prog.Rank_program.name;
    enqueue = (fun ~now pkt -> enqueue t ~now pkt);
    dequeue = (fun ~now -> dequeue t ~now);
    peek = (fun () -> peek t);
    size = (fun () -> size t);
    backlog = (fun flow -> backlog t flow);
    evict = (fun ~now:_ victim flow -> evict t victim flow);
    close_flow = (fun ~now flow -> close_flow t ~now flow);
  }
