open Sfq_util
open Sfq_base
open Sfq_fastpath

type node = {
  owner : int;  (* hierarchy id, to reject foreign class handles *)
  cid : int;  (* 0 = root, then creation order *)
  mutable kind : kind;
  mutable edge : edge option;  (* None for the root *)
}

and kind = Internal of internal | Leaf of Sched.t

and internal = {
  (* The class's PIFO: its *active* child edges, ordered by (start
     tag, activation/emission sequence). The seq doubles as the heap
     uid so equal start tags pop in activation order, exactly the
     float hierarchy's (stag, seq) scan. The children list keeps every
     edge reachable for the traversal paths (backlog, evict, close —
     closing must reset inner per-flow state even in a currently-empty
     leaf). *)
  pifo : edge Iheap.t;
  mutable children : edge list;
  mutable v : int;
  mutable max_finish_served : int;
  mutable next_seq : int;
}

and edge = {
  child : node;
  sor : float;  (* Tag.scale / weight, fixed at creation *)
  parent : node;
  mutable stag : int;
  mutable fprev : int;  (* finish tag of the child's previous emission *)
  mutable active : bool;
  mutable seq : int;
}

type class_ = node

type t = {
  id : int;
  codec : Tag.t;
  root_node : node;
  mutable classifier : (Packet.t -> class_) option;
  mutable count : int;
  mutable next_cid : int;
}

let next_id = ref 0

let fresh_internal () =
  Internal
    { pifo = Iheap.create (); children = []; v = 0; max_finish_served = 0; next_seq = 0 }

let create ?frac_bits () =
  incr next_id;
  let id = !next_id in
  {
    id;
    codec = Tag.make ?frac_bits ();
    root_node = { owner = id; cid = 0; kind = fresh_internal (); edge = None };
    classifier = None;
    count = 0;
    next_cid = 1;
  }

let root t = t.root_node

let internal_of node =
  match node.kind with
  | Internal i -> i
  | Leaf _ -> invalid_arg "Pifo_tree: parent class is a leaf"

let add_edge t ~parent ~weight child_kind =
  if weight <= 0.0 then invalid_arg "Pifo_tree: weight must be positive";
  if parent.owner <> t.id then invalid_arg "Pifo_tree: class from another hierarchy";
  let i = internal_of parent in
  let child = { owner = t.id; cid = t.next_cid; kind = child_kind; edge = None } in
  t.next_cid <- t.next_cid + 1;
  let edge =
    {
      child;
      sor = Tag.scale_over t.codec ~rate:weight;
      parent;
      stag = 0;
      fprev = 0;
      active = false;
      seq = 0;
    }
  in
  child.edge <- Some edge;
  i.children <- i.children @ [ edge ];
  child

let add_class t ~parent ~weight = add_edge t ~parent ~weight (fresh_internal ())
let add_leaf t ~parent ~weight inner = add_edge t ~parent ~weight (Leaf inner)

let set_classifier t f = t.classifier <- Some f

let classifier_by_flow assoc =
  let table = Hashtbl.create 16 in
  List.iter (fun (f, c) -> Hashtbl.replace table f c) assoc;
  fun pkt -> Hashtbl.find table pkt.Packet.flow

let rec node_peek node =
  match node.kind with
  | Leaf inner -> inner.Sched.peek ()
  | Internal i -> (
    match Iheap.min_elt i.pifo with None -> None | Some e -> node_peek e.child)

let subtree_nonempty node =
  match node.kind with
  | Leaf inner -> inner.Sched.size () > 0
  | Internal i -> not (Iheap.is_empty i.pifo)

(* Walk from a leaf to the root activating edges whose subtree just
   became non-empty: push into the parent PIFO at S = max(v, F_prev).
   Stops at the first already-active edge. *)
let rec activate_upwards node =
  match node.edge with
  | None -> ()
  | Some e ->
    if not e.active then begin
      let i = internal_of e.parent in
      e.stag <- (if i.v > e.fprev then i.v else e.fprev);
      e.seq <- i.next_seq;
      i.next_seq <- i.next_seq + 1;
      e.active <- true;
      Iheap.add i.pifo ~key:e.stag ~tie:0 ~uid:e.seq e;
      activate_upwards e.parent
    end

let enqueue t ~now pkt =
  let classify =
    match t.classifier with
    | Some f -> f
    | None -> invalid_arg "Pifo_tree.enqueue: no classifier set"
  in
  let leaf = classify pkt in
  if leaf.owner <> t.id then invalid_arg "Pifo_tree.enqueue: class from another hierarchy";
  match leaf.kind with
  | Internal _ -> invalid_arg "Pifo_tree.enqueue: classifier returned a non-leaf class"
  | Leaf inner ->
    let was_empty = inner.Sched.size () = 0 in
    inner.Sched.enqueue ~now pkt;
    t.count <- t.count + 1;
    if was_empty then activate_upwards leaf

(* One scheduling transaction per level: pop the PIFO's minimum edge,
   emit from its subtree, push the edge back (rank = next start tag)
   if the subtree is still non-empty. *)
let rec node_dequeue node ~now =
  match node.kind with
  | Leaf inner -> inner.Sched.dequeue ~now
  | Internal i -> (
    match Iheap.min_elt i.pifo with
    | None -> None
    | Some e -> (
      Iheap.remove_root i.pifo;
      match node_peek e.child with
      | None -> assert false (* active edge over an empty subtree *)
      | Some head ->
        (* the emitted head packet's length fixes this emission's
           finish tag, F = S + l/w *)
        let ftag = Tag.sat_add e.stag (Tag.delta ~sor:e.sor ~len:head.Packet.len) in
        i.v <- e.stag;
        let p = node_dequeue e.child ~now in
        e.fprev <- ftag;
        if ftag > i.max_finish_served then i.max_finish_served <- ftag;
        if subtree_nonempty e.child then begin
          e.stag <- ftag;
          e.seq <- i.next_seq;
          i.next_seq <- i.next_seq + 1;
          Iheap.add i.pifo ~key:e.stag ~tie:0 ~uid:e.seq e
        end
        else e.active <- false;
        (* v stays frozen at the emission's start tag when the subtree
           empties — see Hsfq for why bumping here would overtax
           same-instant refills; only the root bumps below. *)
        p))

let dequeue t ~now =
  match node_dequeue t.root_node ~now with
  | None ->
    (match t.root_node.kind with
    | Internal i -> if i.max_finish_served > i.v then i.v <- i.max_finish_served
    | Leaf _ -> ());
    None
  | Some p ->
    t.count <- t.count - 1;
    Some p

let peek t = node_peek t.root_node
let size t = t.count

let rec node_backlog node flow =
  match node.kind with
  | Leaf inner -> inner.Sched.backlog flow
  | Internal i ->
    List.fold_left (fun acc e -> acc + node_backlog e.child flow) 0 i.children

let backlog t flow = node_backlog t.root_node flow

let class_vtime t node =
  if node.owner <> t.id then invalid_arg "Pifo_tree.class_vtime: class from another hierarchy";
  match node.kind with Internal i -> Tag.decode t.codec i.v | Leaf _ -> 0.0

let class_id t node =
  if node.owner <> t.id then invalid_arg "Pifo_tree.class_id: class from another hierarchy";
  node.cid

(* Inverse of activate_upwards: removals can empty a subtree without a
   dequeue; the edge must then leave its parent's PIFO or node_peek's
   invariant breaks. Tags are untouched — the class keeps its
   virtual-time charge, like a flow under eq. 4. *)
let rec deactivate_upwards node =
  match node.edge with
  | None -> ()
  | Some e ->
    if e.active && not (subtree_nonempty node) then begin
      e.active <- false;
      let i = internal_of e.parent in
      ignore (Iheap.remove_matching i.pifo ~pred:(fun e' -> e' == e));
      deactivate_upwards e.parent
    end

let evict t ~now victim flow =
  let rec find node =
    match node.kind with
    | Leaf inner ->
      if inner.Sched.backlog flow = 0 then None
      else begin
        match inner.Sched.evict ~now victim flow with
        | None -> None
        | Some p ->
          t.count <- t.count - 1;
          deactivate_upwards node;
          Some p
      end
    | Internal i ->
      let rec among = function
        | [] -> None
        | e :: rest -> ( match find e.child with Some p -> Some p | None -> among rest)
      in
      among i.children
  in
  find t.root_node

let close_flow t ~now flow =
  let rec go node acc =
    match node.kind with
    | Leaf inner ->
      let flushed = inner.Sched.close_flow ~now flow in
      if flushed <> [] then begin
        t.count <- t.count - List.length flushed;
        deactivate_upwards node
      end;
      acc @ flushed
    | Internal i -> List.fold_left (fun acc e -> go e.child acc) acc i.children
  in
  go t.root_node []

let sched t =
  {
    Sched.name = "pifo-hsfq";
    enqueue = (fun ~now pkt -> enqueue t ~now pkt);
    dequeue = (fun ~now -> dequeue t ~now);
    peek = (fun () -> peek t);
    size = (fun () -> size t);
    backlog = (fun flow -> backlog t flow);
    evict = (fun ~now victim flow -> evict t ~now victim flow);
    close_flow = (fun ~now flow -> close_flow t ~now flow);
  }
