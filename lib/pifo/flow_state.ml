open Sfq_base
open Sfq_fastpath

type t = {
  weights : Weights.t;
  codec : Tag.t;
  scale : float;  (* Tag.scale codec, cached for the override branch *)
  mutable tag : int array;
  mutable sor : float array;  (* scale/rate, 0.0 = unseen since create/forget *)
  mutable last : int;  (* stored tag of the latest advance_* call *)
}

let create ?frac_bits weights =
  let codec = Tag.make ?frac_bits () in
  { weights; codec; scale = Tag.scale codec; tag = [||]; sor = [||]; last = 0 }

let codec t = t.codec

let grow t flow =
  let n = Array.length t.tag in
  let cap = Stdlib.max 16 (Stdlib.max (2 * n) (flow + 1)) in
  let tag = Array.make cap 0 in
  Array.blit t.tag 0 tag 0 n;
  t.tag <- tag;
  let sor = Array.make cap 0.0 in
  Array.blit t.sor 0 sor 0 n;
  t.sor <- sor

(* Cold path: first packet of a flow activation (see Sfq_fast). *)
let activate t flow =
  t.sor.(flow) <- Tag.scale_over t.codec ~rate:(Weights.get t.weights flow)

(* Unit-returning on purpose: callers re-read [t.sor.(flow)] locally.
   A float-returning helper would box its result on every call
   (ocamlopt only unboxes floats within a body), costing 2 minor words
   per enqueue — the alloc gate in test_pifo_equiv watches this. *)
let ensure t flow =
  if flow >= Array.length t.tag then grow t flow;
  if t.sor.(flow) <= 0.0 then activate t flow

(* The delta multiply+round is written out inline in both branches, as
   in the hand-written fast-path schedulers, so no float crosses a
   function boundary on the steady path. *)
let delta t pkt =
  ensure t pkt.Packet.flow;
  let sor = t.sor.(pkt.Packet.flow) in
  match pkt.Packet.rate with
  | None ->
    let x = Float.round (float_of_int pkt.Packet.len *. sor) in
    if x >= Tag.max_tag_f then Tag.max_tag
    else
      let i = int_of_float x in
      if i < 1 then 1 else i
  | Some r ->
    let x = Float.round (float_of_int pkt.Packet.len *. (t.scale /. r)) in
    if x >= Tag.max_tag_f then Tag.max_tag
    else
      let i = int_of_float x in
      if i < 1 then 1 else i

let delta_reserved t pkt =
  ensure t pkt.Packet.flow;
  let sor = t.sor.(pkt.Packet.flow) in
  let x = Float.round (float_of_int pkt.Packet.len *. sor) in
  if x >= Tag.max_tag_f then Tag.max_tag
  else
    let i = int_of_float x in
    if i < 1 then 1 else i

(* Fused per-packet updates for the common rank-program shapes. Each
   does the whole grow/activate/delta/read/max/add/store sequence in
   one body behind a single module-boundary call, mirroring the
   hand-written fast-path enqueues — the separate delta/get/set
   entry points above cost three calls and three bounds checks per
   packet, which is most of the rank-program dispatch premium the
   bench validator budgets. The stored tag lands in [t.last] so the
   caller can publish it (e.g. into [regs.aux]) without a tuple. *)

let advance t ~floor pkt =
  let flow = pkt.Packet.flow in
  if flow >= Array.length t.tag then grow t flow;
  if t.sor.(flow) <= 0.0 then activate t flow;
  let d =
    match pkt.Packet.rate with
    | None ->
      let x = Float.round (float_of_int pkt.Packet.len *. t.sor.(flow)) in
      if x >= Tag.max_tag_f then Tag.max_tag
      else
        let i = int_of_float x in
        if i < 1 then 1 else i
    | Some r ->
      let x = Float.round (float_of_int pkt.Packet.len *. (t.scale /. r)) in
      if x >= Tag.max_tag_f then Tag.max_tag
      else
        let i = int_of_float x in
        if i < 1 then 1 else i
  in
  let fprev = t.tag.(flow) in
  let stag = if floor > fprev then floor else fprev in
  let ftag = Tag.sat_add stag d in
  t.tag.(flow) <- ftag;
  t.last <- ftag;
  stag

let advance_reserved t ~floor pkt =
  let flow = pkt.Packet.flow in
  if flow >= Array.length t.tag then grow t flow;
  if t.sor.(flow) <= 0.0 then activate t flow;
  let d =
    let x = Float.round (float_of_int pkt.Packet.len *. t.sor.(flow)) in
    if x >= Tag.max_tag_f then Tag.max_tag
    else
      let i = int_of_float x in
      if i < 1 then 1 else i
  in
  let fprev = t.tag.(flow) in
  let stag = if floor > fprev then floor else fprev in
  let ftag = Tag.sat_add stag d in
  t.tag.(flow) <- ftag;
  t.last <- ftag;
  stag

let advance_eat t ~now pkt =
  let flow = pkt.Packet.flow in
  if flow >= Array.length t.tag then grow t flow;
  if t.sor.(flow) <= 0.0 then activate t flow;
  let d =
    match pkt.Packet.rate with
    | None ->
      let x = Float.round (float_of_int pkt.Packet.len *. t.sor.(flow)) in
      if x >= Tag.max_tag_f then Tag.max_tag
      else
        let i = int_of_float x in
        if i < 1 then 1 else i
    | Some r ->
      let x = Float.round (float_of_int pkt.Packet.len *. (t.scale /. r)) in
      if x >= Tag.max_tag_f then Tag.max_tag
      else
        let i = int_of_float x in
        if i < 1 then 1 else i
  in
  let nt =
    let x = Float.round (now *. t.scale) in
    if x >= Tag.max_tag_f then Tag.max_tag else if x <= 0.0 then 0 else int_of_float x
  in
  let fl = t.tag.(flow) in
  let eat = if nt > fl then nt else fl in
  let stamp = Tag.sat_add eat d in
  t.tag.(flow) <- stamp;
  t.last <- stamp;
  eat

let last t = t.last

let get t flow = if flow < Array.length t.tag then t.tag.(flow) else 0

let set t flow v =
  if flow >= Array.length t.tag then grow t flow;
  t.tag.(flow) <- v

let now_tag t now =
  let x = Float.round (now *. t.scale) in
  if x >= Tag.max_tag_f then Tag.max_tag else if x <= 0.0 then 0 else int_of_float x

let clear t = Array.fill t.tag 0 (Array.length t.tag) 0

let forget t flow =
  if flow >= 0 && flow < Array.length t.tag then begin
    t.tag.(flow) <- 0;
    t.sor.(flow) <- 0.0
  end
