open Sfq_base
open Sfq_sched
open Sfq_fastpath
open Rank_program

let sfq ?(busy_rule = Sfq_core.Sfq.Idle_poll) ?frac_bits weights =
  let fs = Flow_state.create ?frac_bits weights in
  let v = ref 0 and mfs = ref 0 in
  let on_empty = busy_rule = Sfq_core.Sfq.On_empty in
  let regs = Rank_program.regs () in
  {
    name = "pifo-sfq";
    regs;
    shaped = false;
    rank =
      (fun ~now:_ pkt ->
        let stag = Flow_state.advance fs ~floor:!v pkt in
        regs.aux <- Flow_state.last fs;
        stag);
    on_dequeue =
      (fun ~key ~aux ~empty ->
        v := key;
        if aux > !mfs then mfs := aux;
        (* The deliberately wrong ablation variant, as in the float Sfq. *)
        if on_empty && empty then v := !mfs);
    on_idle = (fun () -> if !mfs > !v then v := !mfs);
    horizon = no_horizon;
    attach = no_attach;
    on_close = (fun ~now:_ flow -> Flow_state.forget fs flow);
    vtime = (fun () -> Tag.decode (Flow_state.codec fs) !v);
  }

let scfq ?frac_bits weights =
  let fs = Flow_state.create ?frac_bits weights in
  let v = ref 0 in
  let regs = Rank_program.regs () in
  {
    name = "pifo-scfq";
    regs;
    shaped = false;
    rank =
      (fun ~now:_ pkt ->
        ignore (Flow_state.advance_reserved fs ~floor:!v pkt : int);
        let ftag = Flow_state.last fs in
        regs.aux <- ftag;
        (* SCFQ serves in finish-tag order: the finish tag is the rank. *)
        ftag);
    on_dequeue = (fun ~key ~aux:_ ~empty:_ -> v := key);
    on_idle =
      (fun () ->
        (* Busy period over: restart the clock and the per-flow tags. *)
        v := 0;
        Flow_state.clear fs);
    horizon = no_horizon;
    attach = no_attach;
    on_close = (fun ~now:_ flow -> Flow_state.forget fs flow);
    vtime = (fun () -> Tag.decode (Flow_state.codec fs) !v);
  }

let virtual_clock ?frac_bits weights =
  let fs = Flow_state.create ?frac_bits weights in
  let regs = Rank_program.regs () in
  {
    name = "pifo-vc";
    regs;
    shaped = false;
    rank =
      (fun ~now pkt ->
        let eat = Flow_state.advance_eat fs ~now pkt in
        regs.aux <- eat;
        Flow_state.last fs);
    on_dequeue = no_dequeue;
    on_idle = no_idle;
    horizon = no_horizon;
    attach = no_attach;
    on_close = (fun ~now:_ flow -> Flow_state.forget fs flow);
    vtime = no_vtime;
  }

let delay_edd ?frac_bits specs =
  List.iter
    (fun (flow, { Delay_edd.rate; deadline; max_len }) ->
      if rate <= 0.0 || deadline <= 0.0 || max_len <= 0 then
        invalid_arg (Printf.sprintf "Delay_edd: invalid spec for flow %d" flow))
    specs;
  let table = Hashtbl.create 16 in
  List.iter (fun (f, s) -> Hashtbl.replace table f s) specs;
  let weights =
    Weights.of_fun (fun f ->
        match Hashtbl.find_opt table f with
        | Some s -> s.Delay_edd.rate
        | None -> invalid_arg (Printf.sprintf "Delay_edd: undeclared flow %d" f))
  in
  let fs = Flow_state.create ?frac_bits weights in
  let codec = Flow_state.codec fs in
  let dl = Hashtbl.create 16 in
  List.iter
    (fun (f, s) -> Hashtbl.replace dl f (Tag.encode codec s.Delay_edd.deadline))
    specs;
  let regs = Rank_program.regs () in
  {
    name = "pifo-edd";
    regs;
    shaped = false;
    rank =
      (fun ~now pkt ->
        (* activation happens first inside advance_eat, so an
           undeclared flow raises before any state moves, as in the
           float original *)
        let eat = Flow_state.advance_eat fs ~now pkt in
        regs.aux <- eat;
        Tag.sat_add eat (Hashtbl.find dl pkt.Packet.flow));
    on_dequeue = no_dequeue;
    on_idle = no_idle;
    horizon = no_horizon;
    attach = no_attach;
    (* the spec stays (configuration, not state); the EAT floor resets *)
    on_close = (fun ~now:_ flow -> Flow_state.forget fs flow);
    vtime = no_vtime;
  }

let lstf ?frac_bits ?(residual = fun _ -> 0.0) ~deadline () =
  let codec = Tag.make ?frac_bits () in
  (* Monotone per-flow rank floor, mirroring the float Lstf: deadlines
     are caller data with no ordering promise, and the runtime's
     Iflow_heap needs non-decreasing ranks within a flow. *)
  let floor : (Packet.flow, int) Hashtbl.t = Hashtbl.create 16 in
  let regs = Rank_program.regs () in
  {
    name = "pifo-lstf";
    regs;
    shaped = false;
    rank =
      (fun ~now:_ pkt ->
        let r = Tag.encode codec (deadline pkt -. residual pkt) in
        let r =
          match Hashtbl.find_opt floor pkt.Packet.flow with
          | Some f when f > r -> f
          | _ -> r
        in
        Hashtbl.replace floor pkt.Packet.flow r;
        r);
    on_dequeue = no_dequeue;
    on_idle = no_idle;
    horizon = no_horizon;
    attach = no_attach;
    (* evict needs no hook (the floor stays — tags never roll back);
       closing forgets it so a reopened flow re-enters on raw
       deadlines *)
    on_close = (fun ~now:_ flow -> Hashtbl.remove floor flow);
    vtime = no_vtime;
  }

let fqs ~capacity ?frac_bits weights =
  let codec = Tag.make ?frac_bits () in
  let size_ref = ref (fun () -> 0) in
  let gps =
    Gps.create ~capacity ~real_system_empty:(fun () -> !size_ref () = 0) weights
  in
  let regs = Rank_program.regs () in
  {
    name = "pifo-fqs";
    regs;
    shaped = false;
    rank =
      (fun ~now pkt ->
        let stag, _ftag = Gps.on_arrival gps ~now pkt in
        Tag.encode codec stag);
    on_dequeue = no_dequeue;
    on_idle = no_idle;
    horizon = no_horizon;
    attach = (fun f -> size_ref := f);
    (* the fluid system is not told about evictions; closing does
       forget the flow fluid-side *)
    on_close = (fun ~now flow -> Gps.forget_flow gps ~now flow);
    vtime = no_vtime;
  }

let wf2q ~capacity ?frac_bits weights =
  let codec = Tag.make ?frac_bits () in
  let size_ref = ref (fun () -> 0) in
  let gps =
    Gps.create ~capacity ~real_system_empty:(fun () -> !size_ref () = 0) weights
  in
  let regs = Rank_program.regs () in
  {
    name = "pifo-wf2q";
    regs;
    shaped = true;
    rank =
      (fun ~now pkt ->
        let stag, ftag = Gps.on_arrival gps ~now pkt in
        regs.eligible <- Tag.encode codec stag;
        Tag.encode codec ftag);
    on_dequeue = no_dequeue;
    on_idle = no_idle;
    (* the float two-stage scheduler promotes while S <= v + 1e-12 *)
    horizon = (fun ~now -> Tag.encode codec (Gps.vtime gps ~now +. 1e-12));
    attach = (fun f -> size_ref := f);
    on_close = (fun ~now flow -> Gps.forget_flow gps ~now flow);
    vtime = no_vtime;
  }
