(** The shared PIFO runtime: one push-in-first-out queue serving any
    {!Rank_program}.

    The runtime owns everything that is {e not} discipline logic —
    which, per Alcoz & Vass et al. ("Everything Matters in Programmable
    Packet Scheduling"), is where scheduler correctness actually
    lives: admission (rank clamping at the {!Sfq_fastpath.Tag}
    saturation rail — ranks saturate, never wrap), FIFO-stable tie
    resolution (the {!Sfq_sched.Iflow_heap} [(key, tie, uid)] contract,
    with per-flow tie values cached at activation exactly like the
    hand-written fast path), the PR 5 evict/close lifecycle, and the
    optional two-stage shaper for {!Rank_program.shaped} disciplines.

    Layout per stage:
    - unshaped: a single {!Sfq_sched.Iflow_heap} (per-flow FIFO rings,
      heads-only int heap). [enqueue]/[dequeue_exn] allocate nothing in
      steady state — the rank call is closure dispatch with int
      arguments, per-packet outputs travel through the program's
      pre-allocated {!Rank_program.regs} cell.
    - shaped (WF²Q): packets wait in a shaper [Iflow_heap] keyed by
      eligibility rank and move to a service {!Sfq_util.Iheap} keyed by
      service rank once {!Rank_program.t.horizon} passes their
      eligibility — carrying their original arrival uid, so ties
      resolve exactly as in the hand-written two-stage scheduler. When
      nothing is eligible the earliest eligibility rank is served
      instead (work conservation).

    Eviction removes packets without rolling tags back (the flow keeps
    its virtual-time charge, eq. 4); closing flushes the flow, resets
    the runtime's tie cache and then hands the flow id to the
    program's [on_close]. *)

open Sfq_base

type t

val create :
  ?tie:Sfq_sched.Tag_queue.tie -> ?capacity:int -> Rank_program.t -> t
(** Build a runtime instance around a rank program. [tie] refines
    ordering among equal ranks of different flows (default
    [Arrival]); [capacity] pre-sizes the flow-head heap. Calls the
    program's [attach] hook with this instance's [size] thunk. *)

val enqueue : t -> now:float -> Packet.t -> unit
(** Rank and admit one packet.
    @raise Invalid_argument if [pkt.flow < 0]. *)

val dequeue : t -> now:float -> Packet.t option
(** Serve the smallest [(rank, tie, uid)] entry; [None] (after firing
    the program's [on_idle] busy-period hook) when empty. *)

val dequeue_exn : t -> Packet.t
(** Non-allocating dequeue for callers that already know the queue is
    non-empty (pair with {!is_empty}); shaped programs promote against
    the last observed clock. @raise Invalid_argument if empty. *)

val peek : t -> Packet.t option
val size : t -> int
val is_empty : t -> bool
val backlog : t -> Packet.flow -> int

val evict : t -> Sched.victim -> Packet.flow -> Packet.t option
val close_flow : t -> now:float -> Packet.flow -> Packet.t list

val vtime : t -> float
(** The program's decoded virtual time (0 for clockless programs). *)

val high_tag : t -> int
(** Largest (clamped) rank ever admitted. *)

val saturated : t -> bool
(** Has any admitted rank hit the {!Sfq_fastpath.Tag.max_tag} rail? *)

val program : t -> Rank_program.t

val sched : t -> Sched.t
(** The full {!Sched.t} surface under the program's name, so [Disc],
    the netsim server, sweeps, tracing and [Buffered] work unchanged. *)
