(* Domain pool with caller participation. One mutex/condvar pair
   synchronizes job hand-off and the completion barrier; the task loop
   itself is lock-free (one Atomic.fetch_and_add per chunk). Results
   are written into per-index slots, so reduction order is the task
   order by construction and the output cannot depend on domain count
   or interleaving. *)

type job = unit -> unit

type t = {
  n_domains : int;
  mutex : Mutex.t;
  wake : Condition.t;  (* workers: a new epoch or shutdown *)
  barrier : Condition.t;  (* submitter: all workers finished the epoch *)
  mutable job : job option;
  mutable epoch : int;
  mutable active : int;  (* workers still inside the current epoch's job *)
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

(* True while the current domain is executing pool tasks — set in
   workers for their whole life and in the submitter around its
   participation — so nested submission is detected across pools. *)
let inside_task : bool ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref false)

let worker_main t =
  Domain.DLS.get inside_task := true;
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while (not t.closed) && t.epoch = !seen do
      Condition.wait t.wake t.mutex
    done;
    if t.closed then Mutex.unlock t.mutex
    else begin
      seen := t.epoch;
      let job = t.job in
      Mutex.unlock t.mutex;
      (match job with Some f -> f () | None -> ());
      Mutex.lock t.mutex;
      t.active <- t.active - 1;
      if t.active = 0 then Condition.signal t.barrier;
      Mutex.unlock t.mutex;
      loop ()
    end
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      n_domains = domains;
      mutex = Mutex.create ();
      wake = Condition.create ();
      barrier = Condition.create ();
      job = None;
      epoch = 0;
      active = 0;
      closed = false;
      workers = [];
    }
  in
  t.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_main t));
  t

let domains t = t.n_domains

let shutdown t =
  let ws =
    Mutex.lock t.mutex;
    let ws = t.workers in
    t.closed <- true;
    t.workers <- [];
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex;
    ws
  in
  List.iter Domain.join ws

(* Keep the smallest-index failure: with no cancellation every task
   runs, so the winning entry is the global minimum — deterministic. *)
let record_error slot entry =
  let idx, _, _ = entry in
  let rec go () =
    match Atomic.get slot with
    | Some (j, _, _) when j <= idx -> ()
    | cur -> if not (Atomic.compare_and_set slot cur (Some entry)) then go ()
  in
  go ()

let map ?(chunk = 1) t ~f tasks =
  if !(Domain.DLS.get inside_task) then
    invalid_arg "Pool.map: nested submit from inside a pool task";
  if t.closed then invalid_arg "Pool.map: pool is shut down";
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let chunk = max 1 chunk in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let error = Atomic.make None in
    let job () =
      let rec go () =
        let lo = Atomic.fetch_and_add next chunk in
        if lo < n then begin
          let hi = min n (lo + chunk) in
          for i = lo to hi - 1 do
            match f i tasks.(i) with
            | v -> results.(i) <- Some v
            | exception e ->
              record_error error (i, e, Printexc.get_raw_backtrace ())
          done;
          go ()
        end
      in
      go ()
    in
    Mutex.lock t.mutex;
    t.job <- Some job;
    t.epoch <- t.epoch + 1;
    t.active <- List.length t.workers;
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex;
    (* the submitting domain is a worker too *)
    let flag = Domain.DLS.get inside_task in
    flag := true;
    Fun.protect ~finally:(fun () -> flag := false) job;
    Mutex.lock t.mutex;
    while t.active > 0 do
      Condition.wait t.barrier t.mutex
    done;
    t.job <- None;
    Mutex.unlock t.mutex;
    match Atomic.get error with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      Array.map (function Some v -> v | None -> assert false) results
  end

let run ?chunk ~domains ~f tasks =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> map ?chunk t ~f tasks)

let default_domains () = Domain.recommended_domain_count ()
