(** Fixed-size domain-pool executor with deterministic ordered reduction.

    A pool owns [domains - 1] worker domains (the submitting domain is
    the remaining worker: a pool of 1 runs everything inline, no spawn).
    {!map} fans an indexed task array out over the pool through a
    chunked atomic task queue and writes each result into its task's
    slot, so the returned array is ordered by task index — byte-identical
    output at every domain count and under every interleaving. Nothing
    about a task's inputs may depend on execution order either; derive
    per-task randomness with {!Seed.derive}, never from a shared stream.

    Concurrency contract: tasks run on arbitrary domains and must not
    share mutable state with each other or with the submitter (build
    scratch structures — schedulers, monitors, metrics registries,
    tracers — inside the task, domain-locally; merge by returning
    values). The pool itself synchronizes only at submission and at the
    final barrier; there are no locks inside the task loop beyond one
    atomic fetch-and-add per chunk.

    Error discipline: if tasks raise, every task still runs (no
    cancellation — partial sweeps would make the failure set depend on
    timing), and {!map} re-raises the raising task with the {e smallest
    index}, which is therefore as deterministic as the tasks
    themselves. *)

type t

val create : domains:int -> t
(** A pool that executes with [domains]-way parallelism ([domains - 1]
    spawned workers). [domains = 1] spawns nothing.
    @raise Invalid_argument if [domains < 1]. *)

val domains : t -> int

val map : ?chunk:int -> t -> f:(int -> 'a -> 'b) -> 'a array -> 'b array
(** [map t ~f tasks] computes [[| f 0 tasks.(0); f 1 tasks.(1); … |]],
    distributing index ranges of size [chunk] (default 1; clamped to
    >= 1) over the pool. Returns [[||]] immediately for an empty array.
    More domains than tasks is fine — surplus workers find the queue
    drained and park at the barrier.

    @raise Invalid_argument when called from inside a pool task
    (including a task of {e another} pool): nested submission would
    deadlock a caller-participates executor, so it is rejected
    eagerly.
    @raise Invalid_argument if the pool has been shut down. *)

val shutdown : t -> unit
(** Join and release the worker domains. Idempotent. The pool rejects
    further {!map} calls. *)

val run : ?chunk:int -> domains:int -> f:(int -> 'a -> 'b) -> 'a array -> 'b array
(** One-shot [create] / [map] / [shutdown] (shutdown runs even when a
    task raises). *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], the hardware-sized default
    for CLI [--domains 0] conventions. *)
