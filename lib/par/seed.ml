(* Splitmix64 finalizer (same constants as Sfq_util.Rng, duplicated
   here so sfq.par depends on nothing but the stdlib). *)

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let derive64 ~root ~index =
  if index < 0 then invalid_arg "Seed.derive: negative index";
  (* advance the splitmix state by (index + 1) gammas from the mixed
     root, then finalize: the (root, index) grid maps to distinct,
     well-separated points of the splitmix sequence *)
  let base = mix64 (Int64.add root golden_gamma) in
  mix64 (Int64.add base (Int64.mul (Int64.of_int (index + 1)) golden_gamma))

let derive ~root ~index =
  let s = derive64 ~root:(Int64.of_int root) ~index in
  (* keep 62 bits: Int64.to_int truncates to the 63-bit native int, so
     bit 62 would land in the sign position — seeds feed APIs that
     expect a plain non-negative int *)
  Int64.to_int (Int64.logand s 0x3FFFFFFFFFFFFFFFL)
