(** Deterministic per-task seed derivation.

    The parallel sweep engine gives every task its own RNG stream,
    derived from the root seed and the task's {e index} — never from
    execution order, domain id, or any other scheduling artifact — so
    the stream a task sees is a pure function of [(root, index)] and the
    sweep's output is identical at every domain count.

    The derivation is a splitmix64-style finalizer over the two inputs
    (the same mixer as {!Sfq_util.Rng}), so neighboring indices yield
    statistically independent seeds: [derive ~root ~index:0] and
    [~index:1] differ in about half their bits, and feeding the result
    to [Sfq_util.Rng.create] gives streams with no detectable
    cross-correlation (splitmix64's golden-gamma sequence is exactly the
    construction its authors designed for parallel stream splitting). *)

val derive : root:int -> index:int -> int
(** A non-negative seed for task [index] of a sweep rooted at [root].
    Pure: equal arguments give equal results on every run, machine and
    domain count. [index] must be >= 0.
    @raise Invalid_argument on a negative index. *)

val derive64 : root:int64 -> index:int -> int64
(** The full-width derivation behind {!derive}. *)
