(** SP-PIFO-style approximate-rank scheduler over SFQ start tags.

    Maps fixed-point SFQ ranks onto [banks] strict-priority FIFO banks
    with the SP-PIFO push-up/push-down bound adaptation (Alcoz et al.,
    NSDI'20): admission scans from the lowest-priority bank for the
    first bound <= rank and raises that bound to the rank; when even
    the top bank's bound exceeds the rank, the packet enters the top
    bank and all bounds drop by the overshoot. Service pops the first
    non-empty bank, FIFO within a bank.

    This is an {e approximation}: rank inversions occur, including
    within a flow, so this discipline carries no Thm-1 guarantee and is
    audited by the relaxed fairness oracle
    ({!Sfq_oracle.Monitor.fairness_measured}), which reports its
    measured unfairness against the exact-SFQ bound as a budget instead
    of a pass/fail verdict. With [banks = 1] it degenerates to plain
    FIFO; more banks buy a finer rank approximation at O(banks)
    admission cost.

    Tag bookkeeping (eq. 4, cached scale/rate, saturation) matches
    {!Sfq_fast}, as do the zero-allocation steady path and the PR 5
    evict/close semantics. Flow ids must be non-negative. *)

open Sfq_base

type t

val create : ?banks:int -> ?frac_bits:int -> Weights.t -> t
(** [banks] defaults to 8. @raise Invalid_argument if [banks < 1]. *)

val enqueue : t -> now:float -> Packet.t -> unit
(** @raise Invalid_argument on a negative flow id. *)

val dequeue : t -> now:float -> Packet.t option

val dequeue_exn : t -> Packet.t
(** Non-allocating strict-priority pop. @raise Invalid_argument on an
    empty queue (pair with {!is_empty}). *)

val peek : t -> Packet.t option
val size : t -> int
val is_empty : t -> bool
val backlog : t -> Packet.flow -> int

val vtag : t -> int
val vtime : t -> float
val codec : t -> Tag.t

val banks : t -> int
val bounds : t -> int array
(** Snapshot of the current admission bounds, ascending by priority
    index (index 0 = highest priority). For tests and introspection. *)

val pushups : t -> int
(** Admissions that raised a bank bound. *)

val pushdowns : t -> int
(** Unavoidable inversions that triggered the collective bound drop. *)

val saturated : t -> bool
val headroom : t -> float

val evict : t -> Sched.victim -> Packet.flow -> Packet.t option
val close_flow : t -> Packet.flow -> Packet.t list

val sched : t -> Sched.t
(** The discipline view, named ["sp-pifo"]. *)
