(** Fixed-point SCFQ: self-clocked fair queueing on int tags.

    Mirrors {!Sfq_sched.Scfq} — service in finish-tag order, v(t) =
    finish tag of the packet in service, idle reset of the clock and
    every per-flow finish tag, PR 5 evict/close semantics — with the
    same fixed-point representation, zero-allocation steady path, and
    caveats (quantization, per-activation rate snapshot, saturation)
    as {!Sfq_fast}. Flow ids must be non-negative. *)

open Sfq_base
open Sfq_sched

type t

val create : ?tie:Tag_queue.tie -> ?capacity:int -> ?frac_bits:int -> Weights.t -> t

val enqueue : t -> now:float -> Packet.t -> unit
(** @raise Invalid_argument on a negative flow id. *)

val dequeue : t -> now:float -> Packet.t option
val dequeue_exn : t -> Packet.t
(** Non-allocating dequeue; pair with {!is_empty}.
    @raise Invalid_argument on an empty queue. *)

val peek : t -> Packet.t option
val size : t -> int
val is_empty : t -> bool
val backlog : t -> Packet.flow -> int

val vtag : t -> int
val vtime : t -> float
val codec : t -> Tag.t
val saturated : t -> bool
val headroom : t -> float

val evict : t -> Sched.victim -> Packet.flow -> Packet.t option
val close_flow : t -> Packet.flow -> Packet.t list

val sched : t -> Sched.t
(** The discipline view, named ["scfq-fast"]. *)
