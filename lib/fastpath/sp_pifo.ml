open Sfq_base

(* SP-PIFO-style approximation of SFQ (Alcoz, Dietmüller, Vanbever,
   NSDI'20): ranks — here SFQ start tags, fixed-point — are mapped onto
   N strict-priority FIFO banks whose admission bounds adapt online.

   Admission of a packet with rank r scans banks from lowest priority
   (index n-1) to highest (index 0) and picks the first whose bound is
   <= r, then raises that bound to r ("push-up"). If even the top
   bank's bound exceeds r, the inversion is unavoidable: the packet
   enters the top bank and every bound is decreased by (bound_0 - r)
   ("push-down"), so subsequent small ranks regain headroom. Bounds
   stay sorted ascending by construction: push-up at index i only
   happens after indices > i were rejected (their bounds exceed r), and
   push-down shifts all bounds by a constant.

   Service is strict priority: pop the head of the first non-empty
   bank. Within a bank, FIFO. The result approximates rank order with
   O(number of banks) admission and O(1)-per-bank service, at the cost
   of rank inversions — including within a flow, which is why this
   scheduler is monitored by the *relaxed* fairness oracle (a measured
   budget) rather than the theorem monitors, and is excluded from the
   per-flow FIFO invariant checks.

   Tag bookkeeping matches Sfq_fast (eq. 4 with cached scale/rate); the
   virtual clock v is advanced monotonically to the rank in service so
   reactivating flows keep entering at a sane point even after
   inversions. Steady-state enqueue/dequeue allocate nothing. *)

type bank = {
  mutable branks : int array;  (* rank (start tag) of each queued packet *)
  mutable bftags : int array;  (* finish tag, for v bookkeeping *)
  mutable buids : int array;   (* global arrival number *)
  mutable bdata : Packet.t array;
  mutable bhead : int;
  mutable blen : int;
}

let bank_make () =
  { branks = [||]; bftags = [||]; buids = [||]; bdata = [||]; bhead = 0; blen = 0 }

let bank_grow b v =
  let cur = Array.length b.bdata in
  if cur = 0 then begin
    b.branks <- Array.make 8 0;
    b.bftags <- Array.make 8 0;
    b.buids <- Array.make 8 0;
    b.bdata <- Array.make 8 v
  end
  else if b.blen = cur then begin
    let cap = 2 * cur in
    let branks = Array.make cap 0
    and bftags = Array.make cap 0
    and buids = Array.make cap 0
    and bdata = Array.make cap v in
    let tail = cur - b.bhead in
    Array.blit b.branks b.bhead branks 0 tail;
    Array.blit b.bftags b.bhead bftags 0 tail;
    Array.blit b.buids b.bhead buids 0 tail;
    Array.blit b.bdata b.bhead bdata 0 tail;
    Array.blit b.branks 0 branks tail b.bhead;
    Array.blit b.bftags 0 bftags tail b.bhead;
    Array.blit b.buids 0 buids tail b.bhead;
    Array.blit b.bdata 0 bdata tail b.bhead;
    b.branks <- branks;
    b.bftags <- bftags;
    b.buids <- buids;
    b.bdata <- bdata;
    b.bhead <- 0
  end

let bank_push b ~rank ~ftag ~uid pkt =
  bank_grow b pkt;
  let i = (b.bhead + b.blen) land (Array.length b.bdata - 1) in
  b.branks.(i) <- rank;
  b.bftags.(i) <- ftag;
  b.buids.(i) <- uid;
  b.bdata.(i) <- pkt;
  b.blen <- b.blen + 1

(* Remove the k-th queued entry (0 = head) by shifting the tail left.
   Off the hot path: only eviction/closure use it. *)
let bank_remove_at b k =
  let mask = Array.length b.bdata - 1 in
  for j = k to b.blen - 2 do
    let dst = (b.bhead + j) land mask in
    let src = (b.bhead + j + 1) land mask in
    b.branks.(dst) <- b.branks.(src);
    b.bftags.(dst) <- b.bftags.(src);
    b.buids.(dst) <- b.buids.(src);
    b.bdata.(dst) <- b.bdata.(src)
  done;
  b.blen <- b.blen - 1

type t = {
  weights : Weights.t;
  codec : Tag.t;
  nbanks : int;
  bounds : int array;
  banks : bank array;
  mutable finish : int array;
  mutable sor : float array;
  mutable counts : int array;  (* per-flow backlog *)
  mutable v : int;
  mutable max_finish_served : int;
  mutable total : int;
  mutable next_uid : int;
  mutable high : int;
  mutable pushups : int;
  mutable pushdowns : int;
}

let create ?(banks = 8) ?frac_bits weights =
  if banks < 1 then invalid_arg "Sp_pifo.create: banks must be >= 1";
  {
    weights;
    codec = Tag.make ?frac_bits ();
    nbanks = banks;
    bounds = Array.make banks 0;
    banks = Array.init banks (fun _ -> bank_make ());
    finish = [||];
    sor = [||];
    counts = [||];
    v = 0;
    max_finish_served = 0;
    total = 0;
    next_uid = 0;
    high = 0;
    pushups = 0;
    pushdowns = 0;
  }

let grow t flow =
  let n = Array.length t.finish in
  let cap = Stdlib.max 16 (Stdlib.max (2 * n) (flow + 1)) in
  let finish = Array.make cap 0 in
  Array.blit t.finish 0 finish 0 n;
  t.finish <- finish;
  let sor = Array.make cap 0.0 in
  Array.blit t.sor 0 sor 0 n;
  t.sor <- sor;
  let counts = Array.make cap 0 in
  Array.blit t.counts 0 counts 0 n;
  t.counts <- counts

let activate t flow =
  let s = Tag.scale_over t.codec ~rate:(Weights.get t.weights flow) in
  t.sor.(flow) <- s;
  s

let enqueue t ~now:_ pkt =
  let flow = pkt.Packet.flow in
  if flow < 0 then invalid_arg "Sp_pifo.enqueue: flow id must be >= 0";
  if flow >= Array.length t.finish then grow t flow;
  let sor = t.sor.(flow) in
  let sor = if sor > 0.0 then sor else activate t flow in
  let d =
    match pkt.Packet.rate with
    | None ->
      let x = Float.round (float_of_int pkt.Packet.len *. sor) in
      if x >= Tag.max_tag_f then Tag.max_tag
      else
        let i = int_of_float x in
        if i < 1 then 1 else i
    | Some r ->
      let x = Float.round (float_of_int pkt.Packet.len *. (Tag.scale t.codec /. r)) in
      if x >= Tag.max_tag_f then Tag.max_tag
      else
        let i = int_of_float x in
        if i < 1 then 1 else i
  in
  let fprev = t.finish.(flow) in
  let rank = if t.v > fprev then t.v else fprev in
  let ftag =
    let s = rank + d in
    if s > Tag.max_tag then Tag.max_tag else s
  in
  t.finish.(flow) <- ftag;
  if ftag > t.high then t.high <- ftag;
  t.counts.(flow) <- t.counts.(flow) + 1;
  t.total <- t.total + 1;
  let uid = t.next_uid in
  t.next_uid <- uid + 1;
  (* scan lowest priority -> highest for the first bound <= rank *)
  let i = ref (t.nbanks - 1) in
  while !i >= 0 && t.bounds.(!i) > rank do
    decr i
  done;
  if !i >= 0 then begin
    (* push-up: the admitting bank's bound rises to the admitted rank *)
    t.bounds.(!i) <- rank;
    t.pushups <- t.pushups + 1;
    bank_push t.banks.(!i) ~rank ~ftag ~uid pkt
  end
  else begin
    (* unavoidable inversion: admit at top, relax every bound down *)
    let cost = t.bounds.(0) - rank in
    for j = 0 to t.nbanks - 1 do
      t.bounds.(j) <- t.bounds.(j) - cost
    done;
    t.pushdowns <- t.pushdowns + 1;
    bank_push t.banks.(0) ~rank ~ftag ~uid pkt
  end

let dequeue_exn t =
  if t.total = 0 then invalid_arg "Sp_pifo.dequeue_exn: empty queue";
  let i = ref 0 in
  while t.banks.(!i).blen = 0 do
    incr i
  done;
  let b = t.banks.(!i) in
  let j = b.bhead in
  let rank = b.branks.(j) and ftag = b.bftags.(j) in
  let pkt = b.bdata.(j) in
  b.bhead <- (j + 1) land (Array.length b.bdata - 1);
  b.blen <- b.blen - 1;
  t.total <- t.total - 1;
  t.counts.(pkt.Packet.flow) <- t.counts.(pkt.Packet.flow) - 1;
  (* monotone advance: inversions may serve an older (smaller) rank
     after a newer one; v never moves backwards *)
  if rank > t.v then t.v <- rank;
  if ftag > t.max_finish_served then t.max_finish_served <- ftag;
  pkt

let dequeue t ~now:_ =
  if t.total = 0 then begin
    (* idle poll, as in SFQ: a reactivating flow must not lag v *)
    if t.max_finish_served > t.v then t.v <- t.max_finish_served;
    None
  end
  else Some (dequeue_exn t)

let peek t =
  if t.total = 0 then None
  else begin
    let i = ref 0 in
    while t.banks.(!i).blen = 0 do
      incr i
    done;
    let b = t.banks.(!i) in
    Some b.bdata.(b.bhead)
  end

let size t = t.total
let is_empty t = t.total = 0

let backlog t flow =
  if flow >= 0 && flow < Array.length t.counts then t.counts.(flow) else 0

let vtag t = t.v
let vtime t = Tag.decode t.codec t.v
let codec t = t.codec
let banks t = t.nbanks
let bounds t = Array.copy t.bounds
let pushups t = t.pushups
let pushdowns t = t.pushdowns
let saturated t = Tag.is_saturated t.high
let headroom t = Tag.headroom t.codec t.high

(* Find flow's oldest (or newest) queued entry across all banks; return
   (bank index, position) or (-1, _). O(total queued) — eviction path. *)
let find_extreme t ~newest flow =
  let bi = ref (-1) and bk = ref 0 and best_uid = ref 0 in
  for i = 0 to t.nbanks - 1 do
    let b = t.banks.(i) in
    let mask = if Array.length b.bdata = 0 then 0 else Array.length b.bdata - 1 in
    for k = 0 to b.blen - 1 do
      let s = (b.bhead + k) land mask in
      if b.bdata.(s).Packet.flow = flow then begin
        let u = b.buids.(s) in
        let take =
          !bi < 0 || if newest then u > !best_uid else u < !best_uid
        in
        if take then begin
          bi := i;
          bk := k;
          best_uid := u
        end
      end
    done
  done;
  (!bi, !bk)

let evict t victim flow =
  if flow < 0 || flow >= Array.length t.counts || t.counts.(flow) = 0 then None
  else begin
    let newest = match (victim : Sched.victim) with Sched.Oldest -> false | Sched.Newest -> true in
    let bi, bk = find_extreme t ~newest flow in
    if bi < 0 then None
    else begin
      let b = t.banks.(bi) in
      let s = (b.bhead + bk) land (Array.length b.bdata - 1) in
      let pkt = b.bdata.(s) in
      bank_remove_at b bk;
      t.total <- t.total - 1;
      t.counts.(flow) <- t.counts.(flow) - 1;
      (* finish tag untouched: dropped virtual service stays charged *)
      Some pkt
    end
  end

let close_flow t flow =
  if flow < 0 || flow >= Array.length t.counts || t.counts.(flow) = 0 then begin
    if flow >= 0 && flow < Array.length t.finish then begin
      t.finish.(flow) <- 0;
      t.sor.(flow) <- 0.0
    end;
    []
  end
  else begin
    (* collect (uid, pkt) across banks, then compact each bank in place *)
    let acc = ref [] in
    for i = 0 to t.nbanks - 1 do
      let b = t.banks.(i) in
      let mask = if Array.length b.bdata = 0 then 0 else Array.length b.bdata - 1 in
      let k = ref 0 in
      while !k < b.blen do
        let s = (b.bhead + !k) land mask in
        if b.bdata.(s).Packet.flow = flow then begin
          acc := (b.buids.(s), b.bdata.(s)) :: !acc;
          bank_remove_at b !k
        end
        else incr k
      done
    done;
    let n = List.length !acc in
    t.total <- t.total - n;
    t.counts.(flow) <- 0;
    t.finish.(flow) <- 0;
    t.sor.(flow) <- 0.0;
    (* oldest first, as the other disciplines' close_flow returns *)
    List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) !acc)
  end

let sched t =
  {
    Sched.name = "sp-pifo";
    enqueue = (fun ~now pkt -> enqueue t ~now pkt);
    dequeue = (fun ~now -> dequeue t ~now);
    peek = (fun () -> peek t);
    size = (fun () -> size t);
    backlog = (fun flow -> backlog t flow);
    evict = (fun ~now:_ victim flow -> evict t victim flow);
    close_flow = (fun ~now:_ flow -> close_flow t flow);
  }
