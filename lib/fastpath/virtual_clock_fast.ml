open Sfq_base
open Sfq_sched

(* Fixed-point Virtual Clock: per-flow EAT floors as int tags, stamp =
   eat + len/rate, service in stamp order. Unlike the virtual-time
   disciplines this one reads real time, so enqueue also encodes [now]
   (one multiply + round, inline). The float original's floor default
   is -infinity; here it is 0, which is equivalent for the non-negative
   clocks every driver in this repo uses (documented in the mli). *)

type t = {
  weights : Weights.t;
  tie : Tag_queue.tie;
  codec : Tag.t;
  fh : Packet.t Iflow_heap.t;
  mutable floor : int array;  (* EAT(prev) + l_prev/r_prev, 0 = unset *)
  mutable sor : float array;
  mutable ties : int array;
  mutable high : int;
}

let create ?(tie = Tag_queue.Arrival) ?capacity ?frac_bits weights =
  {
    weights;
    tie;
    codec = Tag.make ?frac_bits ();
    fh = Iflow_heap.create ?capacity ();
    floor = [||];
    sor = [||];
    ties = [||];
    high = 0;
  }

let tie_value tie flow =
  match (tie : Tag_queue.tie) with
  | Arrival -> 0.0
  | Low_rate w -> w flow
  | High_rate w -> -.w flow

let grow t flow =
  let n = Array.length t.floor in
  let cap = Stdlib.max 16 (Stdlib.max (2 * n) (flow + 1)) in
  let floor = Array.make cap 0 in
  Array.blit t.floor 0 floor 0 n;
  t.floor <- floor;
  let sor = Array.make cap 0.0 in
  Array.blit t.sor 0 sor 0 n;
  t.sor <- sor;
  let ties = Array.make cap 0 in
  Array.blit t.ties 0 ties 0 n;
  t.ties <- ties

let activate t flow =
  let s = Tag.scale_over t.codec ~rate:(Weights.get t.weights flow) in
  t.sor.(flow) <- s;
  t.ties.(flow) <- Tag.tie_encode (tie_value t.tie flow);
  s

let enqueue t ~now pkt =
  let flow = pkt.Packet.flow in
  if flow < 0 then invalid_arg "Virtual_clock_fast.enqueue: flow id must be >= 0";
  if flow >= Array.length t.floor then grow t flow;
  let sor = t.sor.(flow) in
  let sor = if sor > 0.0 then sor else activate t flow in
  let d =
    match pkt.Packet.rate with
    | None ->
      let x = Float.round (float_of_int pkt.Packet.len *. sor) in
      if x >= Tag.max_tag_f then Tag.max_tag
      else
        let i = int_of_float x in
        if i < 1 then 1 else i
    | Some r ->
      let x = Float.round (float_of_int pkt.Packet.len *. (Tag.scale t.codec /. r)) in
      if x >= Tag.max_tag_f then Tag.max_tag
      else
        let i = int_of_float x in
        if i < 1 then 1 else i
  in
  (* encode now inline (negative clocks clamp to 0, the floor default) *)
  let nt =
    let x = Float.round (now *. Tag.scale t.codec) in
    if x >= Tag.max_tag_f then Tag.max_tag
    else if x <= 0.0 then 0
    else int_of_float x
  in
  let fl = t.floor.(flow) in
  let eat = if nt > fl then nt else fl in
  let stamp =
    let s = eat + d in
    if s > Tag.max_tag then Tag.max_tag else s
  in
  t.floor.(flow) <- stamp;
  if stamp > t.high then t.high <- stamp;
  Iflow_heap.push t.fh ~flow ~key:stamp ~aux:eat ~tie:t.ties.(flow) pkt

let dequeue_exn t = Iflow_heap.pop_exn t.fh

let dequeue t ~now:_ =
  if Iflow_heap.is_empty t.fh then None else Some (Iflow_heap.pop_exn t.fh)

let peek t =
  match Iflow_heap.peek t.fh with None -> None | Some p -> Some p.Iflow_heap.value

let size t = Iflow_heap.size t.fh
let is_empty t = Iflow_heap.is_empty t.fh
let backlog t flow = Iflow_heap.backlog t.fh flow

let codec t = t.codec
let saturated t = Tag.is_saturated t.high
let headroom t = Tag.headroom t.codec t.high

let evict t victim flow =
  let popped =
    match (victim : Sched.victim) with
    | Sched.Oldest -> Iflow_heap.evict_front t.fh flow
    | Sched.Newest -> Iflow_heap.evict_back t.fh flow
  in
  match popped with None -> None | Some p -> Some p.Iflow_heap.value

(* Forgetting the EAT floor re-admits a returning flow at real time —
   Virtual Clock's memory of past idleness does not survive a close. *)
let close_flow t flow =
  let flushed =
    List.map (fun p -> p.Iflow_heap.value) (Iflow_heap.flush_flow t.fh flow)
  in
  if flow >= 0 && flow < Array.length t.floor then begin
    t.floor.(flow) <- 0;
    t.sor.(flow) <- 0.0;
    t.ties.(flow) <- 0
  end;
  flushed

let sched t =
  {
    Sched.name = "vc-fast";
    enqueue = (fun ~now pkt -> enqueue t ~now pkt);
    dequeue = (fun ~now -> dequeue t ~now);
    peek = (fun () -> peek t);
    size = (fun () -> size t);
    backlog = (fun flow -> backlog t flow);
    evict = (fun ~now:_ victim flow -> evict t victim flow);
    close_flow = (fun ~now:_ flow -> close_flow t flow);
  }
