(** Fixed-point SFQ: the zero-allocation fast path for eqs. 4–5.

    Algorithmically identical to {!Sfq_core.Sfq} — start/finish tags
    per eq. 4–5, service in start-tag order, v(t) = start tag of the
    packet in service, configurable busy rule, PR 5 eviction/closure
    semantics (evict keeps the finish tag, close forgets it) — but all
    tags are {!Tag} fixed-point ints, per-flow state lives in dense
    monomorphic arrays, and the queue is {!Sfq_sched.Iflow_heap}. The
    steady-state [enqueue] / [dequeue_exn] pair allocates nothing once
    rings and tables reach peak capacity, which the bench's
    [allocations_per_packet = 0] gate enforces.

    Equivalence contract (exercised by the differential suite): on
    workloads whose arrival times, lengths and rates are dyadic
    rationals representable in [frac_bits], the served sequence is
    packet-for-packet identical to the float scheduler under every tie
    rule and busy rule, including across evictions and closures.
    Caveats: (1) non-dyadic values quantize to the nearest 2{^-frac}
    — two float tags closer than a quantum may collapse into an exact
    int tie, resolved FIFO by uid exactly as float ties are; (2) the
    weight function is read once per flow activation and cached
    (re-read after [close_flow]), whereas the float scheduler consults
    it on every packet, so mid-backlog reweighting diverges; (3) past
    {!Tag.max_tag} tags saturate and ordering degrades to
    (tie, arrival) — see [saturated]/[headroom].

    Flow ids must be non-negative (dense array indexing). *)

open Sfq_base
open Sfq_sched

type busy_rule = Sfq_core.Sfq.busy_rule = Idle_poll | On_empty

type t

val create :
  ?tie:Tag_queue.tie ->
  ?busy_rule:busy_rule ->
  ?capacity:int ->
  ?frac_bits:int ->
  Weights.t ->
  t
(** Defaults mirror {!Sfq_core.Sfq.create}: [Arrival] ties, [Idle_poll]
    busy rule; [frac_bits] defaults to {!Tag.make}'s 20. *)

val enqueue : t -> now:float -> Packet.t -> unit
(** Tag per eqs. 4–5 (fixed-point) and queue. Zero allocations on the
    steady-state path. @raise Invalid_argument on a negative flow id. *)

val dequeue : t -> now:float -> Packet.t option
(** Serve the minimum start tag; updates v(t). Allocates the [Some]
    box only — use [is_empty] + {!dequeue_exn} on an allocation
    budget. *)

val dequeue_exn : t -> Packet.t
(** Non-allocating dequeue. @raise Invalid_argument on an empty queue
    (pair with {!is_empty}). *)

val peek : t -> Packet.t option
val size : t -> int
val is_empty : t -> bool
val backlog : t -> Packet.flow -> int

val vtag : t -> int
(** Current virtual time as a raw fixed-point tag. *)

val vtime : t -> float
(** Current virtual time in virtual-time units ({!Tag.decode} of
    [vtag]) — comparable with {!Sfq_core.Sfq.vtime}. *)

val codec : t -> Tag.t

val saturated : t -> bool
(** True once any issued tag has hit {!Tag.max_tag}; from then on tag
    order degrades to (tie, arrival). *)

val headroom : t -> float
(** Virtual-time units between the largest issued tag and the
    saturation rail. *)

val evict : t -> Sched.victim -> Packet.flow -> Packet.t option
(** Drop one queued packet; the flow's finish tag is kept (virtual
    service stays charged), as in the float scheduler. *)

val close_flow : t -> Packet.flow -> Packet.t list
(** Flush the flow and forget its finish tag {e and} its cached
    weight, so a reopened id re-enters at v(t) with a fresh rate. *)

val sched : t -> Sched.t
(** The discipline view, named ["sfq-fast"]. Its [dequeue] pays the
    option box; the zero-allocation contract applies to the native
    API. *)
