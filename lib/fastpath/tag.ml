(* Fixed-point codec for virtual time.

   A tag is a scaled int: [round (v * 2^frac_bits)]. With the default
   20 fractional bits the quantum is ~1e-6 virtual-time units — far
   below the per-packet tag increment l/r of every workload in this
   repo — and an int63 leaves ~2^41 whole units of range before the
   saturation rail. All tag arithmetic in the fast schedulers is then
   integer adds and compares; the only float operations left on the
   hot path are one multiply + round per packet (length times the
   cached scale/rate), done inline by the schedulers themselves so no
   float crosses a non-inlined function boundary. *)

type t = { frac : int; scale : float; inv_scale : float }

(* Saturation rail: half of max_int, so that the sum of two in-range
   tags — the largest intermediate the schedulers form — cannot wrap
   (max_tag + max_tag = max_int - 1). *)
let max_tag = max_int / 2
let max_tag_f = float_of_int max_tag

let make ?(frac_bits = 20) () =
  if frac_bits < 0 || frac_bits > 52 then
    invalid_arg "Tag.make: frac_bits must be in [0, 52]";
  {
    frac = frac_bits;
    scale = Float.ldexp 1.0 frac_bits;
    inv_scale = Float.ldexp 1.0 (-frac_bits);
  }

let frac_bits c = c.frac
let scale c = c.scale

let encode c f =
  if f <= 0.0 then 0
  else
    let x = Float.round (f *. c.scale) in
    if x >= max_tag_f then max_tag else int_of_float x

let decode c i = float_of_int i *. c.inv_scale

let scale_over c ~rate =
  if rate <= 0.0 then invalid_arg "Tag.scale_over: rate must be positive";
  c.scale /. rate

let delta ~sor ~len =
  let x = Float.round (float_of_int len *. sor) in
  if x >= max_tag_f then max_tag
  else
    let i = int_of_float x in
    if i < 1 then 1 else i

let sat_add a b =
  let s = a + b in
  if s > max_tag then max_tag else s

let is_saturated tag = tag >= max_tag

let headroom c tag =
  let left = max_tag - tag in
  if left <= 0 then 0.0 else float_of_int left *. c.inv_scale

(* Order-preserving int encoding of a float tie value.

   For non-negative doubles the IEEE-754 bit pattern is monotone in the
   value; shifting the 63 significant bits right by one makes the image
   fit a 63-bit OCaml int, and negating for negative inputs restores
   the global order. The shift collapses doubles that differ only in
   the lowest mantissa bit (1 ulp) onto the same int — such "ties that
   weren't quite ties" then fall through to the uid, i.e. arrival
   order. Every tie value this repo uses (flow weights and their
   negations) is either exactly equal or separated by far more than an
   ulp, so the collapse is unobservable in practice; it is the
   documented caveat for exotic callers. *)
let tie_encode f =
  if f = 0.0 then 0
  else if f <> f then invalid_arg "Tag.tie_encode: NaN tie"
  else
    let m =
      Int64.to_int (Int64.shift_right_logical (Int64.bits_of_float (Float.abs f)) 1)
    in
    if f > 0.0 then m else -m
