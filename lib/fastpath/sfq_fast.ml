open Sfq_base
open Sfq_sched

(* Fixed-point SFQ. Same algorithm as Sfq_core.Sfq — eqs. 4–5, serve in
   start-tag order, v(t) = start tag of the packet in service, idle-poll
   busy rule — but every tag is a Tag-scaled int and all per-flow state
   lives in dense monomorphic arrays, so the steady-state enqueue and
   dequeue paths allocate nothing:

   - finish tags and ties are [int array]s, virtual lengths come from a
     cached [float array] of scale/rate ([Flow_table] would box every
     float read at a polymorphic 'a = float instantiation);
   - the delta multiply+round is inlined here rather than calling
     through Tag, so no float crosses a function boundary;
   - the queue is Iflow_heap (pop via scratch slots, no option/record).

   Divergences from the float original, both documented in the mli:
   quantization (beyond-frac_bits precision rounds; dyadic workloads
   are exact) and rate snapshotting (Weights.get is consulted once per
   flow activation and cached; the float scheduler re-reads it per
   packet, so mid-backlog reweights apply there immediately and here
   only after close_flow). *)

type busy_rule = Sfq_core.Sfq.busy_rule = Idle_poll | On_empty

type t = {
  weights : Weights.t;
  busy_rule : busy_rule;
  tie : Tag_queue.tie;
  codec : Tag.t;
  fh : Packet.t Iflow_heap.t;
  (* Dense per-flow state, indexed by flow id (ids must be >= 0).
     sor.(f) = scale/rate, 0.0 when the flow has not been seen since
     creation/close; finish.(f) and ties.(f) are valid alongside it
     (finish's 0 default matches the float scheduler's F = 0.0). *)
  mutable finish : int array;
  mutable sor : float array;
  mutable ties : int array;
  mutable v : int;
  mutable max_finish_served : int;
  mutable high : int;  (* largest finish tag ever issued *)
}

let create ?(tie = Tag_queue.Arrival) ?(busy_rule = Idle_poll) ?capacity
    ?frac_bits weights =
  {
    weights;
    busy_rule;
    tie;
    codec = Tag.make ?frac_bits ();
    fh = Iflow_heap.create ?capacity ();
    finish = [||];
    sor = [||];
    ties = [||];
    v = 0;
    max_finish_served = 0;
    high = 0;
  }

let tie_value tie flow =
  match (tie : Tag_queue.tie) with
  | Arrival -> 0.0
  | Low_rate w -> w flow
  | High_rate w -> -.w flow

let grow t flow =
  let n = Array.length t.finish in
  let cap = Stdlib.max 16 (Stdlib.max (2 * n) (flow + 1)) in
  let finish = Array.make cap 0 in
  Array.blit t.finish 0 finish 0 n;
  t.finish <- finish;
  let sor = Array.make cap 0.0 in
  Array.blit t.sor 0 sor 0 n;
  t.sor <- sor;
  let ties = Array.make cap 0 in
  Array.blit t.ties 0 ties 0 n;
  t.ties <- ties

(* Cold path: first packet of a flow activation. Reads the weight
   function (a boxed-float closure call — allowed here, never on the
   steady path) and caches scale/rate plus the encoded tie. *)
let activate t flow =
  let s = Tag.scale_over t.codec ~rate:(Weights.get t.weights flow) in
  t.sor.(flow) <- s;
  t.ties.(flow) <- Tag.tie_encode (tie_value t.tie flow);
  s

let enqueue t ~now:_ pkt =
  let flow = pkt.Packet.flow in
  if flow < 0 then invalid_arg "Sfq_fast.enqueue: flow id must be >= 0";
  if flow >= Array.length t.finish then grow t flow;
  let sor = t.sor.(flow) in
  let sor = if sor > 0.0 then sor else activate t flow in
  let d =
    match pkt.Packet.rate with
    | None ->
      (* inline Tag.delta: one multiply + round, clamped to [1, max_tag] *)
      let x = Float.round (float_of_int pkt.Packet.len *. sor) in
      if x >= Tag.max_tag_f then Tag.max_tag
      else
        let i = int_of_float x in
        if i < 1 then 1 else i
    | Some r ->
      let x = Float.round (float_of_int pkt.Packet.len *. (Tag.scale t.codec /. r)) in
      if x >= Tag.max_tag_f then Tag.max_tag
      else
        let i = int_of_float x in
        if i < 1 then 1 else i
  in
  let fprev = t.finish.(flow) in
  let stag = if t.v > fprev then t.v else fprev in
  let ftag =
    let s = stag + d in
    if s > Tag.max_tag then Tag.max_tag else s
  in
  t.finish.(flow) <- ftag;
  if ftag > t.high then t.high <- ftag;
  Iflow_heap.push t.fh ~flow ~key:stag ~aux:ftag ~tie:t.ties.(flow) pkt

(* Non-allocating dequeue for callers that already know the queue is
   non-empty (pair with [is_empty]). @raise Invalid_argument if empty. *)
let dequeue_exn t =
  let pkt = Iflow_heap.pop_exn t.fh in
  let stag = Iflow_heap.last_key t.fh in
  let ftag = Iflow_heap.last_aux t.fh in
  t.v <- stag;
  if ftag > t.max_finish_served then t.max_finish_served <- ftag;
  if t.busy_rule = On_empty && Iflow_heap.is_empty t.fh then
    (* The deliberately wrong ablation variant, as in the float Sfq. *)
    t.v <- t.max_finish_served;
  pkt

let dequeue t ~now:_ =
  if Iflow_heap.is_empty t.fh then begin
    (* Busy period over (§2 step 2): v jumps to the max finish tag of
       serviced packets so a reactivating flow can never lag v. *)
    if t.max_finish_served > t.v then t.v <- t.max_finish_served;
    None
  end
  else Some (dequeue_exn t)

let peek t =
  match Iflow_heap.peek t.fh with None -> None | Some p -> Some p.Iflow_heap.value

let size t = Iflow_heap.size t.fh
let is_empty t = Iflow_heap.is_empty t.fh
let backlog t flow = Iflow_heap.backlog t.fh flow

let vtag t = t.v
let vtime t = Tag.decode t.codec t.v
let codec t = t.codec
let saturated t = Tag.is_saturated t.high
let headroom t = Tag.headroom t.codec t.high

(* Eviction keeps the flow's finish tag, exactly as in the float
   scheduler: dropped virtual service stays charged to the flow. *)
let evict t victim flow =
  let popped =
    match (victim : Sched.victim) with
    | Sched.Oldest -> Iflow_heap.evict_front t.fh flow
    | Sched.Newest -> Iflow_heap.evict_back t.fh flow
  in
  match popped with None -> None | Some p -> Some p.Iflow_heap.value

(* Closing forgets F(p_f^{j-1}) — and, unlike the float scheduler which
   has nothing cached, also the scale/rate + tie snapshot, so a
   reopened id re-reads the weight function. *)
let close_flow t flow =
  let flushed =
    List.map (fun p -> p.Iflow_heap.value) (Iflow_heap.flush_flow t.fh flow)
  in
  if flow >= 0 && flow < Array.length t.finish then begin
    t.finish.(flow) <- 0;
    t.sor.(flow) <- 0.0;
    t.ties.(flow) <- 0
  end;
  flushed

let sched t =
  {
    Sched.name = "sfq-fast";
    enqueue = (fun ~now pkt -> enqueue t ~now pkt);
    dequeue = (fun ~now -> dequeue t ~now);
    peek = (fun () -> peek t);
    size = (fun () -> size t);
    backlog = (fun flow -> backlog t flow);
    evict = (fun ~now:_ victim flow -> evict t victim flow);
    close_flow = (fun ~now:_ flow -> close_flow t flow);
  }
