open Sfq_base
open Sfq_sched

(* Fixed-point SCFQ: tag = finish tag, v(t) = finish tag of the packet
   in service, and — SCFQ's signature — an idle server resets v to 0
   and forgets every per-flow finish tag. Same array/ring layout as
   Sfq_fast; see that module for the zero-allocation reasoning and the
   quantization / rate-snapshot caveats. *)

type t = {
  weights : Weights.t;
  tie : Tag_queue.tie;
  codec : Tag.t;
  fh : Packet.t Iflow_heap.t;
  mutable finish : int array;
  mutable sor : float array;
  mutable ties : int array;
  mutable v : int;
  mutable high : int;
}

let create ?(tie = Tag_queue.Arrival) ?capacity ?frac_bits weights =
  {
    weights;
    tie;
    codec = Tag.make ?frac_bits ();
    fh = Iflow_heap.create ?capacity ();
    finish = [||];
    sor = [||];
    ties = [||];
    v = 0;
    high = 0;
  }

let tie_value tie flow =
  match (tie : Tag_queue.tie) with
  | Arrival -> 0.0
  | Low_rate w -> w flow
  | High_rate w -> -.w flow

let grow t flow =
  let n = Array.length t.finish in
  let cap = Stdlib.max 16 (Stdlib.max (2 * n) (flow + 1)) in
  let finish = Array.make cap 0 in
  Array.blit t.finish 0 finish 0 n;
  t.finish <- finish;
  let sor = Array.make cap 0.0 in
  Array.blit t.sor 0 sor 0 n;
  t.sor <- sor;
  let ties = Array.make cap 0 in
  Array.blit t.ties 0 ties 0 n;
  t.ties <- ties

let activate t flow =
  let s = Tag.scale_over t.codec ~rate:(Weights.get t.weights flow) in
  t.sor.(flow) <- s;
  t.ties.(flow) <- Tag.tie_encode (tie_value t.tie flow);
  s

let enqueue t ~now:_ pkt =
  let flow = pkt.Packet.flow in
  if flow < 0 then invalid_arg "Scfq_fast.enqueue: flow id must be >= 0";
  if flow >= Array.length t.finish then grow t flow;
  let sor = t.sor.(flow) in
  let sor = if sor > 0.0 then sor else activate t flow in
  (* SCFQ ignores per-packet rate overrides, as the float original does. *)
  let d =
    let x = Float.round (float_of_int pkt.Packet.len *. sor) in
    if x >= Tag.max_tag_f then Tag.max_tag
    else
      let i = int_of_float x in
      if i < 1 then 1 else i
  in
  let fprev = t.finish.(flow) in
  let stag = if t.v > fprev then t.v else fprev in
  let ftag =
    let s = stag + d in
    if s > Tag.max_tag then Tag.max_tag else s
  in
  t.finish.(flow) <- ftag;
  if ftag > t.high then t.high <- ftag;
  (* SCFQ serves in finish-tag order: the finish tag is the key. *)
  Iflow_heap.push t.fh ~flow ~key:ftag ~aux:ftag ~tie:t.ties.(flow) pkt

let dequeue_exn t =
  let pkt = Iflow_heap.pop_exn t.fh in
  (* Self-clocking: v(t) is the finish tag of the packet in service. *)
  t.v <- Iflow_heap.last_key t.fh;
  pkt

let dequeue t ~now:_ =
  if Iflow_heap.is_empty t.fh then begin
    (* Busy period over: restart the clock and the per-flow tags (the
       float original's Flow_table.clear, as an O(capacity) fill). The
       cached scale/rate and ties survive — they depend only on the
       weight function, not on the busy period. *)
    t.v <- 0;
    Array.fill t.finish 0 (Array.length t.finish) 0;
    None
  end
  else Some (dequeue_exn t)

let peek t =
  match Iflow_heap.peek t.fh with None -> None | Some p -> Some p.Iflow_heap.value

let size t = Iflow_heap.size t.fh
let is_empty t = Iflow_heap.is_empty t.fh
let backlog t flow = Iflow_heap.backlog t.fh flow

let vtag t = t.v
let vtime t = Tag.decode t.codec t.v
let codec t = t.codec
let saturated t = Tag.is_saturated t.high
let headroom t = Tag.headroom t.codec t.high

let evict t victim flow =
  let popped =
    match (victim : Sched.victim) with
    | Sched.Oldest -> Iflow_heap.evict_front t.fh flow
    | Sched.Newest -> Iflow_heap.evict_back t.fh flow
  in
  match popped with None -> None | Some p -> Some p.Iflow_heap.value

let close_flow t flow =
  let flushed =
    List.map (fun p -> p.Iflow_heap.value) (Iflow_heap.flush_flow t.fh flow)
  in
  if flow >= 0 && flow < Array.length t.finish then begin
    t.finish.(flow) <- 0;
    t.sor.(flow) <- 0.0;
    t.ties.(flow) <- 0
  end;
  flushed

let sched t =
  {
    Sched.name = "scfq-fast";
    enqueue = (fun ~now pkt -> enqueue t ~now pkt);
    dequeue = (fun ~now -> dequeue t ~now);
    peek = (fun () -> peek t);
    size = (fun () -> size t);
    backlog = (fun flow -> backlog t flow);
    evict = (fun ~now:_ victim flow -> evict t victim flow);
    close_flow = (fun ~now:_ flow -> close_flow t flow);
  }
