(** Fixed-point virtual-time tags: scaled int63 with saturation.

    The fast-path schedulers ({!Sfq_fast}, {!Scfq_fast},
    {!Virtual_clock_fast}, {!Sp_pifo}) keep every start/finish tag as
    [round (v * 2^frac_bits)] in a native int, so tag arithmetic is
    integer adds and the priority queue ({!Sfq_util.Iheap}) compares
    ints only. A codec value fixes the number of fractional bits; the
    default of 20 gives a quantum of 2{^-20} ≈ 1e-6 virtual-time units
    and leaves ≈ 2{^41} whole units before {!max_tag}.

    Quantization: encoding rounds to nearest, so an encoded tag differs
    from the real-valued one by at most half a quantum, and per-packet
    increments ([delta]) by at most half a quantum per hop. Workloads
    whose times, lengths and rates are dyadic rationals representable
    within [frac_bits] encode {e exactly}, which is what the
    differential equivalence suite exploits.

    Overflow: tags saturate at {!max_tag} (half of [max_int], so one
    further add cannot wrap). Once a scheduler's virtual time reaches
    the rail, every subsequent tag is [max_tag] and ordering degrades
    to (tie, arrival) — still a total, work-conserving order, but no
    longer SFQ. Schedulers expose the condition via their [saturated] /
    [headroom] accessors; at the default 20 fractional bits the rail is
    ≈ 2.2e12 virtual-time units away, i.e. unreachable in any bounded
    run. *)

type t
(** A codec (scale factor). Immutable; shareable between schedulers. *)

val make : ?frac_bits:int -> unit -> t
(** [make ()] builds a codec with [frac_bits] fractional bits
    (default 20). @raise Invalid_argument unless [0 <= frac_bits <= 52]. *)

val frac_bits : t -> int

val scale : t -> float
(** [2.0 ** frac_bits] — exposed so schedulers can fold it into a
    per-flow [scale /. rate] cache and keep all per-packet float math
    inline. *)

val max_tag : int
(** The saturation rail. [max_int / 2]: the sum of two in-range tags
    cannot wrap around. *)

val max_tag_f : float
(** [float_of_int max_tag] — exposed so schedulers can clamp their
    inlined delta computation without re-deriving the constant. *)

val encode : t -> float -> int
(** Round-to-nearest scaling. Negative inputs clamp to 0, values at or
    beyond the rail to {!max_tag}. *)

val decode : t -> int -> float
(** Exact (the scale is a power of two and tags have at most 62
    significant bits). *)

val scale_over : t -> rate:float -> float
(** [scale c /. rate], validated. The per-flow constant the schedulers
    cache so a packet's tag increment is one multiply + round.
    @raise Invalid_argument if [rate <= 0]. *)

val delta : sor:float -> len:int -> int
(** Tag increment for a packet of [len] bytes given the cached
    [sor = scale/rate]: [round (len * sor)], clamped to [[1, max_tag]].
    The lower clamp keeps tags strictly increasing within a flow even
    when a packet's virtual length underflows the quantum. *)

val sat_add : int -> int -> int
(** Saturating add: clamps at {!max_tag}. Both operands must already be
    in [[0, max_tag]]. *)

val is_saturated : int -> bool
(** Has this tag hit the rail? *)

val headroom : t -> int -> float
(** Virtual-time units left before a tag reaches {!max_tag}; 0 at or
    past the rail. *)

val tie_encode : float -> int
(** Order-preserving int image of a float tie value, for {!Iheap} tie
    slots. Non-strict: doubles 1 ulp apart may collapse onto the same
    int, in which case ordering falls through to the uid (arrival
    order).

    Saturation boundary: the image never wraps. The encoding shifts
    the IEEE-754 bit pattern into 62 significant bits, so even
    [infinity] (the largest representable input) maps to a positive
    int above every finite image, [neg_infinity] to its exact
    negation below every finite image, and [-0.0] to [0] — monotone
    order is preserved across the whole extended real line rather
    than overflowing to the opposite sign. The only rejected input is
    NaN, which has no place in a total order.
    @raise Invalid_argument on NaN. *)
