(** Fixed-point Virtual Clock: EAT floors and stamps as int tags.

    Mirrors {!Sfq_sched.Virtual_clock} — eat = max(now, floor), stamp =
    eat + len/rate, service in stamp order, close forgets the floor —
    with the {!Sfq_fast} representation and caveats. Two extra notes:
    arrival clocks are encoded at [frac_bits] precision (dyadic clocks
    are exact), and the unset-floor default is tag 0 rather than
    -infinity, equivalent for the non-negative clocks all drivers in
    this repo produce (negative [now] values clamp to 0). Flow ids
    must be non-negative. *)

open Sfq_base
open Sfq_sched

type t

val create : ?tie:Tag_queue.tie -> ?capacity:int -> ?frac_bits:int -> Weights.t -> t

val enqueue : t -> now:float -> Packet.t -> unit
(** @raise Invalid_argument on a negative flow id. *)

val dequeue : t -> now:float -> Packet.t option
val dequeue_exn : t -> Packet.t
(** Non-allocating dequeue; pair with {!is_empty}.
    @raise Invalid_argument on an empty queue. *)

val peek : t -> Packet.t option
val size : t -> int
val is_empty : t -> bool
val backlog : t -> Packet.flow -> int

val codec : t -> Tag.t
val saturated : t -> bool
val headroom : t -> float

val evict : t -> Sched.victim -> Packet.flow -> Packet.t option
val close_flow : t -> Packet.flow -> Packet.t list

val sched : t -> Sched.t
(** The discipline view, named ["vc-fast"]. *)
