(* Flow ids are small dense non-negative ints in every workload this
   library generates (sources number their flows 0, 1, 2, …), so the
   common case is served by a direct array index: one bounds check and
   one byte test instead of a hash + bucket walk per lookup. Negative
   or very large ids fall back to a hashtable so the API keeps
   accepting any int. *)

let dense_limit = 1 lsl 20
(* Flows in [0, dense_limit) use the array; beyond that, spending
   O(id) memory on one flow would be absurd, so they go to the
   hashtable. *)

type 'a t = {
  default : Packet.flow -> 'a;
  mutable dense : 'a array;  (* allocated lazily: no ['a] dummy exists *)
  mutable present : Bytes.t;  (* 1 iff the dense slot holds a live entry *)
  mutable dense_count : int;
  sparse : (Packet.flow, 'a) Hashtbl.t;
}

let create ~default =
  {
    default;
    dense = [||];
    present = Bytes.empty;
    dense_count = 0;
    sparse = Hashtbl.create 16;
  }

let is_dense flow = flow >= 0 && flow < dense_limit

(* Make sure [dense.(flow)] exists, using [v] as the fill for fresh
   slots (never observed: [present] guards every read). *)
let ensure t flow v =
  let cur = Array.length t.dense in
  if flow >= cur then begin
    let cap = ref (if cur = 0 then 64 else 2 * cur) in
    while !cap <= flow do
      cap := 2 * !cap
    done;
    let cap = Stdlib.min !cap dense_limit in
    let dense = Array.make cap v in
    let present = Bytes.make cap '\000' in
    Array.blit t.dense 0 dense 0 cur;
    Bytes.blit t.present 0 present 0 cur;
    t.dense <- dense;
    t.present <- present
  end

let dense_mem t flow =
  flow < Array.length t.dense && Bytes.unsafe_get t.present flow <> '\000'

let set t flow v =
  if is_dense flow then begin
    ensure t flow v;
    if Bytes.unsafe_get t.present flow = '\000' then begin
      Bytes.unsafe_set t.present flow '\001';
      t.dense_count <- t.dense_count + 1
    end;
    Array.unsafe_set t.dense flow v
  end
  else Hashtbl.replace t.sparse flow v

let find t flow =
  if is_dense flow then
    if dense_mem t flow then Array.unsafe_get t.dense flow
    else begin
      let v = t.default flow in
      set t flow v;
      v
    end
  else begin
    match Hashtbl.find_opt t.sparse flow with
    | Some v -> v
    | None ->
      let v = t.default flow in
      Hashtbl.replace t.sparse flow v;
      v
  end

let find_opt t flow =
  if is_dense flow then
    if dense_mem t flow then Some (Array.unsafe_get t.dense flow) else None
  else Hashtbl.find_opt t.sparse flow

let remove t flow =
  if is_dense flow then begin
    if dense_mem t flow then begin
      Bytes.unsafe_set t.present flow '\000';
      t.dense_count <- t.dense_count - 1
    end
  end
  else Hashtbl.remove t.sparse flow

let mem t flow = if is_dense flow then dense_mem t flow else Hashtbl.mem t.sparse flow

let iter t ~f =
  for flow = 0 to Array.length t.dense - 1 do
    if Bytes.unsafe_get t.present flow <> '\000' then f flow (Array.unsafe_get t.dense flow)
  done;
  Hashtbl.iter f t.sparse

let fold t ~init ~f =
  let acc = ref init in
  for flow = 0 to Array.length t.dense - 1 do
    if Bytes.unsafe_get t.present flow <> '\000' then
      acc := f flow (Array.unsafe_get t.dense flow) !acc
  done;
  Hashtbl.fold f t.sparse !acc

let flows t = fold t ~init:[] ~f:(fun flow _ acc -> flow :: acc) |> List.sort compare
let length t = t.dense_count + Hashtbl.length t.sparse
let dense_capacity t = Array.length t.dense

let clear t =
  Bytes.fill t.present 0 (Bytes.length t.present) '\000';
  t.dense_count <- 0;
  Hashtbl.reset t.sparse
