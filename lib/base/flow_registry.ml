type t = {
  mutable next : int;  (* smallest never-issued id *)
  mutable free : int list;  (* closed ids, most recently closed first *)
  open_ : bool Flow_table.t;
  mutable live : int;
  mutable peak_live : int;
  mutable opened : int;
}

let create () =
  {
    next = 0;
    free = [];
    open_ = Flow_table.create ~default:(fun _ -> false);
    live = 0;
    peak_live = 0;
    opened = 0;
  }

let open_flow t =
  let id =
    match t.free with
    | id :: rest ->
      t.free <- rest;
      id
    | [] ->
      let id = t.next in
      t.next <- id + 1;
      id
  in
  Flow_table.set t.open_ id true;
  t.live <- t.live + 1;
  t.opened <- t.opened + 1;
  if t.live > t.peak_live then t.peak_live <- t.live;
  id

let close_flow t id =
  if not (Flow_table.find t.open_ id) then
    invalid_arg (Printf.sprintf "Flow_registry.close_flow: flow %d is not open" id);
  Flow_table.set t.open_ id false;
  t.live <- t.live - 1;
  t.free <- id :: t.free

let is_open t id = Flow_table.find t.open_ id
let live t = t.live
let peak_live t = t.peak_live
let opened t = t.opened
let high_water t = t.next
