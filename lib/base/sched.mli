(** The scheduler interface.

    A scheduling discipline, to the rest of the library, is a record of
    closures over hidden state. Servers ({!Sfq_netsim.Server}), the
    hierarchical scheduler and the experiment harness are polymorphic
    over the discipline without functor plumbing: each concrete
    scheduler module ([Sfq], [Wfq], [Drr], ...) exposes its typed API
    plus a [sched : t -> Sched.t] view.

    Contract every discipline must honour (and that the conservation
    property tests check):
    - [enqueue] never drops a packet on its own — queues are unbounded
      at this layer; finite buffers and loss policies live {e above}
      the scheduler, in {!Buffered}, which calls back into [evict];
    - [dequeue ~now] returns [None] iff no packet is queued;
    - packets of one flow leave in FIFO order (all the paper's
      disciplines are per-flow FIFO);
    - [now] arguments are non-decreasing across calls — schedulers may
      assume time never runs backwards;
    - [peek] returns the packet the next [dequeue] at the same instant
      would return, without removing it (needed by hierarchical SFQ to
      stamp parent-level tags with the head packet's length);
    - every packet removed by [evict]/[close_flow] is returned to the
      caller, exactly once — the conservation law
      (enqueued = departed + dropped + backlogged) is checkable from
      the outside only if removals are never silent. *)

type victim = Oldest | Newest
(** Which end of a flow's FIFO an eviction takes: [Oldest] is the
    flow's head (drop-front), [Newest] its most recent arrival
    (drop-tail of that flow's queue). *)

type t = {
  name : string;
  enqueue : now:float -> Packet.t -> unit;
  dequeue : now:float -> Packet.t option;
  peek : unit -> Packet.t option;
  size : unit -> int;  (** total queued packets *)
  backlog : Packet.flow -> int;  (** queued packets of one flow *)
  evict : now:float -> victim -> Packet.flow -> Packet.t option;
      (** Remove and return one queued packet of the flow ([None] if it
          has none, or if the discipline cannot evict — see
          {!no_evict}). Bookkeeping for the {e remaining} packets stays
          consistent; already-assigned tags/virtual time are {e not}
          rolled back, i.e. the flow keeps the virtual-time charge for
          the dropped packet (conservative, per eq. 4 the next start
          tag can only move later). [now] lets clock-driven disciplines
          (WFQ's real clock) advance before adjusting their
          backlogged-set bookkeeping. *)
  close_flow : now:float -> Packet.flow -> Packet.t list;
      (** Flush every queued packet of the flow (oldest first) and
          forget its per-flow scheduler state (finish tags, EAT floors,
          deficits), so a later reuse of the id starts as a fresh flow:
          with [F(p^0) = 0], eq. 4 re-admits it at [S = max(v(t), 0) =
          v(t)]. Virtual time itself is untouched. *)
}

val is_empty : t -> bool

val drain : t -> now:float -> Packet.t list
(** Dequeue everything at time [now]; mainly for tests. *)

val drain_n : t -> now:float -> int -> Packet.t list
(** Dequeue at most [n] packets at time [now]. *)

val no_evict : now:float -> victim -> Packet.flow -> Packet.t option
(** Always [None]: for disciplines that cannot remove mid-queue
    packets (e.g. rate-controlled two-stage schedulers). {!Buffered}
    degrades to rejecting the arrival instead. *)

val close_via_evict :
  (now:float -> victim -> Packet.flow -> Packet.t option) ->
  now:float ->
  Packet.flow ->
  Packet.t list
(** Default [close_flow] for disciplines whose only per-flow state is
    the queue itself: evict [Oldest] until empty. *)
