(** Per-flow mutable state, keyed by {!Packet.flow}.

    Creates missing entries from a [default] function — every scheduler
    keeps per-flow tags/queues and must treat a never-seen flow as
    freshly initialized, per the paper's convention [F(p_f^0) = 0].

    Flow ids are dense small non-negative ints in practice, so lookups
    for ids in [0, 2^20) are a direct array index (O(1), no hashing);
    other ids transparently fall back to a hashtable. [iter]/[fold]
    visit dense flows in ascending order, then fallback flows in
    unspecified order — as before, only [flows] guarantees an order. *)

type 'a t

val create : default:(Packet.flow -> 'a) -> 'a t
val find : 'a t -> Packet.flow -> 'a
(** Creates (and remembers) the default entry when absent. *)

val find_opt : 'a t -> Packet.flow -> 'a option
(** Does not create the entry. *)

val set : 'a t -> Packet.flow -> 'a -> unit
val remove : 'a t -> Packet.flow -> unit
val mem : 'a t -> Packet.flow -> bool
val iter : 'a t -> f:(Packet.flow -> 'a -> unit) -> unit
val fold : 'a t -> init:'b -> f:(Packet.flow -> 'a -> 'b -> 'b) -> 'b
val flows : 'a t -> Packet.flow list
(** Flows with a (created) entry, ascending. *)

val length : 'a t -> int
val clear : 'a t -> unit

val dense_capacity : 'a t -> int
(** Allocated dense-array slots — grows with the largest id ever seen,
    never shrinks. Exposed so churn tests can assert that id recycling
    ({!Flow_registry}) keeps it bounded by peak concurrency. *)
