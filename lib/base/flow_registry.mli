(** Flow-id allocation with recycling: the dynamic-lifecycle front end.

    Every per-flow structure in this library ({!Flow_table} dense
    arrays, {!Sfq_sched.Flow_heap} rings) is indexed by flow id and
    sized by the largest id ever seen, so a million-flow churn run with
    monotonically increasing ids would grow without bound even though
    only a handful of flows are live at once. The registry issues ids
    from a LIFO free list of closed ids, falling back to a fresh id
    only when none is free: {!high_water} — and with it every dense
    per-flow array — is bounded by the {e peak concurrent} flow count,
    not the total number of flows ever opened.

    Scheduler-state hygiene is the other half of the contract: callers
    must invoke {!Sched.t.close_flow} on the scheduler when closing the
    id here, so the recycled id re-enters with [F(p^0) = 0] and eq. 4
    admits it at [S = max(v(t), 0) = v(t)] — the paper's §2 argument
    for why flows can join and leave without a global reset. *)

type t

val create : unit -> t

val open_flow : t -> Packet.flow
(** The most recently closed id if any, else a fresh one. *)

val close_flow : t -> Packet.flow -> unit
(** Return the id to the free list.
    @raise Invalid_argument if the id is not currently open. *)

val is_open : t -> Packet.flow -> bool

val live : t -> int
(** Currently open flows. *)

val peak_live : t -> int
(** Maximum of {!live} over the registry's lifetime. *)

val opened : t -> int
(** Total [open_flow] calls ever. *)

val high_water : t -> int
(** Smallest never-issued id = size bound for dense per-flow state.
    Equals {!peak_live} when every close recycles (the bounded-memory
    invariant the churn-stress CI job asserts). *)
